// Command heapmd-vm drives the binary pipeline on an assembly file:
// assemble, instrument Vulcan-style, train a heap model over several
// seeded executions, and check further executions — the standalone
// face of the paper's input.exe -> output.exe workflow.
//
// Usage:
//
//	heapmd-vm -src prog.asm                     # train + self-check
//	heapmd-vm -src prog.asm -flag 1             # check with r15=1 (buggy path)
//	heapmd-vm -src prog.asm -disasm             # print instrumented code
//
// The assembly format is documented in internal/machine. Register r15
// is conventionally the program's mode flag (its argv); -flag sets it
// for the checked executions only, so a bug hidden behind an
// input-dependent code path can be exposed.
package main

import (
	"flag"
	"fmt"
	"os"

	"heapmd/internal/detect"
	"heapmd/internal/instrument"
	"heapmd/internal/logger"
	"heapmd/internal/machine"
	"heapmd/internal/model"
)

func main() {
	src := flag.String("src", "", "assembly source file")
	trainN := flag.Int("train", 8, "number of seeded training executions")
	checkN := flag.Int("check", 2, "number of seeded checking executions")
	flagReg := flag.Uint64("flag", 0, "r15 value for the checking executions")
	freq := flag.Uint64("frq", 8, "metric sampling frequency (function entries)")
	disasm := flag.Bool("disasm", false, "print the instrumented program and exit")
	flag.Parse()

	if *src == "" {
		flag.Usage()
		os.Exit(2)
	}
	text, err := os.ReadFile(*src)
	if err != nil {
		fatal(err)
	}
	prog, err := machine.Assemble(string(text))
	if err != nil {
		fatal(err)
	}
	inst, sym, err := instrument.Instrument(prog)
	if err != nil {
		fatal(err)
	}
	if *disasm {
		fmt.Print(machine.Disassemble(inst, sym))
		return
	}

	runOnce := func(seed, r15 uint64) (*logger.Report, error) {
		l := logger.New(logger.Options{Frequency: *freq, Symtab: sym})
		l.SetRun(*src, fmt.Sprintf("seed-%d", seed), 1)
		vm := machine.New(inst, sym,
			machine.WithSeed(seed),
			machine.WithSink(l),
			machine.WithReg(15, r15))
		if err := vm.Run(); err != nil {
			return nil, err
		}
		return l.Report(), nil
	}

	var reports []*logger.Report
	for seed := uint64(1); seed <= uint64(*trainN); seed++ {
		rep, err := runOnce(seed, 0)
		if err != nil {
			fatal(fmt.Errorf("training execution %d: %w", seed, err))
		}
		reports = append(reports, rep)
	}
	build, err := model.Build(reports, model.Defaults())
	if err != nil {
		fatal(err)
	}
	fmt.Printf("trained on %d executions: %d globally stable metrics\n",
		len(reports), build.StableCount())
	for name, rng := range build.Model.Stable {
		fmt.Printf("  %-9s [%.2f%%, %.2f%%]\n", name, rng.Min, rng.Max)
	}

	total := 0
	for i := 0; i < *checkN; i++ {
		seed := uint64(1000 + i)
		rep, err := runOnce(seed, *flagReg)
		if err != nil {
			fmt.Printf("check seed-%d: execution crashed: %v\n", seed, err)
			continue
		}
		findings := detect.CheckReport(build.Model, rep, detect.Options{})
		fmt.Printf("check seed-%d (r15=%d): %d findings\n", seed, *flagReg, len(findings))
		for _, f := range findings {
			fmt.Printf("  %s\n", f.Describe(sym))
		}
		total += len(findings)
	}
	if total > 0 {
		os.Exit(1) // findings -> nonzero, usable in CI
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "heapmd-vm:", err)
	os.Exit(1)
}
