// The replay subcommand ingests a recorded trace file: the paper's
// post-mortem usage mode, hardened for production operation. Reads
// are retried with bounded exponential backoff (traces often live on
// network filesystems), and -salvage recovers the longest valid
// prefix of a trace left truncated or corrupted by a crashed run.
package main

import (
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"
	"runtime/pprof"
	"time"

	"heapmd"
	"heapmd/internal/metrics"
	"heapmd/internal/model"
)

func cmdReplay(args []string) error {
	fs := flag.NewFlagSet("replay", flag.ExitOnError)
	tracePath := fs.String("trace", "", "trace file recorded with heapmd.RecordTrace")
	modelPath := fs.String("model", "", "optional model file: check the replayed report against it")
	salvage := fs.Bool("salvage", false, "recover the longest valid prefix of a damaged trace")
	pipelined := fs.Bool("pipelined", false, "decode and apply the trace on separate goroutines (identical report, better throughput)")
	workers := fs.Int("metric-workers", 0, "compute expensive extension metrics on this many workers (0 = inline)")
	extended := fs.Bool("extended", false, "compute the extended metric suite (adds WCC/SCC structure metrics)")
	freq := fs.Uint64("freq", 0, "sampling frequency; must match the recording (0 = simulation default)")
	retries := fs.Int("retries", 3, "max retries per read/seek on transient I/O errors")
	program := fs.String("program", "replayed", "program name recorded in the report")
	input := fs.String("input", "trace", "input name recorded in the report")
	cpuProfile := fs.String("cpuprofile", "", "write a CPU profile of the replay to this file")
	memProfile := fs.String("memprofile", "", "write a heap profile taken after the replay to this file")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *tracePath == "" {
		return errors.New("replay: -trace is required")
	}
	if *cpuProfile != "" {
		pf, err := os.Create(*cpuProfile)
		if err != nil {
			return err
		}
		defer pf.Close()
		if err := pprof.StartCPUProfile(pf); err != nil {
			return err
		}
		defer pprof.StopCPUProfile()
	}
	if *memProfile != "" {
		defer func() {
			pf, err := os.Create(*memProfile)
			if err != nil {
				fmt.Fprintf(os.Stderr, "memprofile: %v\n", err)
				return
			}
			defer pf.Close()
			runtime.GC() // settle the heap so the profile shows live replay state
			if err := pprof.WriteHeapProfile(pf); err != nil {
				fmt.Fprintf(os.Stderr, "memprofile: %v\n", err)
			}
		}()
	}
	f, err := os.Open(*tracePath)
	if err != nil {
		return err
	}
	defer f.Close()
	rr := &retryReader{r: f, maxRetries: *retries, backoff: 50 * time.Millisecond}

	var suite metrics.Suite
	if *extended {
		suite = metrics.ExtendedSuite()
	}
	rep, sym, info, err := heapmd.ReplayTraceWith(rr, *program, *input, heapmd.ReplayOptions{
		Frequency:     *freq,
		Salvage:       *salvage,
		Pipelined:     *pipelined,
		MetricWorkers: *workers,
		Suite:         suite,
	})
	if err != nil {
		if *salvage {
			return fmt.Errorf("unsalvageable trace: %w", err)
		}
		return fmt.Errorf("%w (rerun with -salvage to recover a damaged trace)", err)
	}
	fmt.Printf("replayed %d events (%d snapshots, %d symbols) from %s\n",
		info.EventsRecovered, len(rep.Snapshots), sym.Len(), *tracePath)
	if info.Salvaged() {
		fmt.Printf("salvage: %s\n", info)
	}
	if rr.retried > 0 {
		fmt.Printf("transient read errors retried: %d\n", rr.retried)
	}
	if h := rep.Health; !h.Zero() {
		fmt.Printf("instrumentation health: %s\n", h.String())
	}
	if *modelPath == "" {
		return nil
	}
	mf, err := os.Open(*modelPath)
	if err != nil {
		return err
	}
	mdl, err := model.Load(mf)
	mf.Close()
	if err != nil {
		return err
	}
	findings := heapmd.Check(mdl, rep)
	if len(findings) == 0 {
		fmt.Println("check: clean")
		return nil
	}
	fmt.Printf("check: %d findings\n", len(findings))
	for _, fd := range findings {
		fmt.Printf("  %s\n", fd.Describe(sym))
	}
	return nil
}

// retryReader wraps an io.ReadSeeker with bounded retry and
// exponential backoff on transient errors. EOF conditions are data,
// not faults — salvage handles those — so they pass through
// untouched; everything else (a flaky NFS mount, a device hiccup)
// gets maxRetries further attempts per call.
type retryReader struct {
	r          io.ReadSeeker
	maxRetries int
	backoff    time.Duration
	retried    int // total transient errors retried, for reporting
}

func transient(err error) bool {
	return err != nil && err != io.EOF && !errors.Is(err, io.ErrUnexpectedEOF)
}

func (rr *retryReader) Read(p []byte) (int, error) {
	var n int
	var err error
	delay := rr.backoff
	for attempt := 0; ; attempt++ {
		n, err = rr.r.Read(p)
		if n > 0 || !transient(err) || attempt >= rr.maxRetries {
			return n, err
		}
		rr.retried++
		time.Sleep(delay)
		delay *= 2
	}
}

func (rr *retryReader) Seek(offset int64, whence int) (int64, error) {
	var pos int64
	var err error
	delay := rr.backoff
	for attempt := 0; ; attempt++ {
		pos, err = rr.r.Seek(offset, whence)
		if !transient(err) || attempt >= rr.maxRetries {
			return pos, err
		}
		rr.retried++
		time.Sleep(delay)
		delay *= 2
	}
}
