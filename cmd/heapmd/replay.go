// The replay subcommand ingests recorded trace files: the paper's
// post-mortem usage mode, hardened for production operation. Reads
// are retried with bounded exponential backoff (traces often live on
// network filesystems), and -salvage recovers the longest valid
// prefix of a trace left truncated or corrupted by a crashed run.
// Several traces — listed as extra arguments, or a directory passed
// to -trace — replay concurrently on a bounded worker pool, with
// per-trace summaries printed in argument order and instrumentation
// health aggregated across the batch.
package main

import (
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"runtime"
	"runtime/pprof"
	"sort"
	"strings"
	"time"

	"heapmd"
	"heapmd/internal/health"
	"heapmd/internal/metrics"
	"heapmd/internal/model"
	"heapmd/internal/sched"
)

// replayConfig carries the per-trace replay settings of cmdReplay.
type replayConfig struct {
	opts    heapmd.ReplayOptions
	mdl     *model.Model
	retries int
	program string
	input   string
}

func cmdReplay(args []string) error {
	fs := flag.NewFlagSet("replay", flag.ExitOnError)
	tracePath := fs.String("trace", "", "trace file recorded with heapmd.RecordTrace, or a directory of traces")
	modelPath := fs.String("model", "", "optional model file: check each replayed report against it")
	salvage := fs.Bool("salvage", false, "recover the longest valid prefix of a damaged trace")
	pipelined := fs.Bool("pipelined", false, "decode and apply the trace on separate goroutines (identical report, better throughput)")
	decodeWorkersFlag := fs.Int("decode-workers", 0, "frame decode workers per trace: 0 = auto (all cores; synchronous on a single core), 1 = read-ahead, n = scanner + n-worker pipeline (identical report at any setting)")
	ingestWorkersFlag := fs.Int("ingest-workers", 0, "ingest workers per trace: 0 = auto (serial on a single core), 1 = serial, n >= 2 = in-order mutator + n-1 speculative pre-resolvers (identical report at any setting)")
	readAhead := fs.Bool("readahead", heapmd.DefaultReadAhead(), "deprecated alias for -decode-workers=1 (or 0 when false); ignored when -decode-workers is set")
	workers := fs.Int("metric-workers", 0, "compute expensive extension metrics on this many workers (0 = inline)")
	extended := fs.Bool("extended", false, "compute the extended metric suite (adds WCC/SCC structure metrics)")
	connectivity := fs.String("connectivity", "snapshot", "WCC metric path: snapshot|incremental|verify (verify runs both and panics on divergence)")
	sccPath := fs.String("scc", "snapshot", "SCC metric path: snapshot|incremental|verify (verify runs both and panics on divergence)")
	freq := fs.Uint64("freq", 0, "sampling frequency; must match the recording (0 = simulation default)")
	retries := fs.Int("retries", 3, "max retries per read/seek on transient I/O errors")
	parallel := fs.Int("parallel", 0, "traces replayed in flight (0 = all cores, 1 = serial; output is identical)")
	program := fs.String("program", "replayed", "program name recorded in the report")
	input := fs.String("input", "trace", "input name recorded in the report (single trace; multi-trace uses file names)")
	cpuProfile := fs.String("cpuprofile", "", "write a CPU profile of the replay to this file")
	memProfile := fs.String("memprofile", "", "write a heap profile taken after the replay to this file")
	if err := fs.Parse(args); err != nil {
		return err
	}
	paths, err := collectTracePaths(*tracePath, fs.Args())
	if err != nil {
		return err
	}
	if *cpuProfile != "" {
		pf, err := os.Create(*cpuProfile)
		if err != nil {
			return err
		}
		defer pf.Close()
		if err := pprof.StartCPUProfile(pf); err != nil {
			return err
		}
		defer pprof.StopCPUProfile()
	}
	if *memProfile != "" {
		defer func() {
			pf, err := os.Create(*memProfile)
			if err != nil {
				fmt.Fprintf(os.Stderr, "memprofile: %v\n", err)
				return
			}
			defer pf.Close()
			runtime.GC() // settle the heap so the profile shows live replay state
			if err := pprof.WriteHeapProfile(pf); err != nil {
				fmt.Fprintf(os.Stderr, "memprofile: %v\n", err)
			}
		}()
	}
	replayWorkers, err := sched.ParseParallel(*parallel)
	if err != nil {
		return err
	}
	metricWorkers, err := sched.ParseMetricWorkers(*workers)
	if err != nil {
		return err
	}
	decodeWorkers, err := sched.ParseDecodeWorkers(*decodeWorkersFlag)
	if err != nil {
		return err
	}
	ingestWorkers, err := sched.ParseIngestWorkers(*ingestWorkersFlag)
	if err != nil {
		return err
	}
	// -readahead is a deprecation alias: honored only when the user set
	// it explicitly and left -decode-workers at its default.
	var readAheadSet, decodeWorkersSet bool
	fs.Visit(func(f *flag.Flag) {
		switch f.Name {
		case "readahead":
			readAheadSet = true
		case "decode-workers":
			decodeWorkersSet = true
		}
	})
	if readAheadSet && !decodeWorkersSet {
		fmt.Fprintln(os.Stderr, "replay: -readahead is deprecated; use -decode-workers (1 = read-ahead, 0 = auto)")
		if *readAhead {
			decodeWorkers = 1
		} else {
			decodeWorkers = -1 // explicit -readahead=false: force synchronous
		}
	}
	conn, err := heapmd.ParseConnectivity(*connectivity)
	if err != nil {
		return err
	}
	sccMode, err := heapmd.ParseSCC(*sccPath)
	if err != nil {
		return err
	}
	var suite metrics.Suite
	if *extended {
		suite = metrics.ExtendedSuite()
	}
	cfg := replayConfig{
		opts: heapmd.ReplayOptions{
			Frequency:     *freq,
			Salvage:       *salvage,
			Pipelined:     *pipelined,
			DecodeWorkers: decodeWorkers,
			IngestWorkers: ingestWorkers,
			MetricWorkers: metricWorkers,
			Suite:         suite,
			Connectivity:  conn,
			SCC:           sccMode,
		},
		retries: *retries,
		program: *program,
		input:   *input,
	}
	if *modelPath != "" {
		mf, err := os.Open(*modelPath)
		if err != nil {
			return err
		}
		cfg.mdl, err = model.Load(mf)
		mf.Close()
		if err != nil {
			return err
		}
	}
	if len(paths) == 1 {
		out, err := replayOne(paths[0], cfg)
		if err != nil {
			return err
		}
		fmt.Print(out.text)
		return nil
	}
	// Multi-trace: fan the files out on the worker pool. Summaries
	// come back in argument order, and the first failing trace (in
	// that order) decides the error, so the output is identical at any
	// -parallel setting.
	multiCfg := cfg
	outs, err := sched.Map(replayWorkers, len(paths), func(i int) (*replayOut, error) {
		c := multiCfg
		c.input = filepath.Base(paths[i])
		return replayOne(paths[i], c)
	})
	if err != nil {
		return err
	}
	var agg health.Counters
	var events, findings uint64
	var aggStats heapmd.TraceStats
	formats := map[uint32]int{}
	for _, out := range outs {
		fmt.Print(out.text)
		agg.Add(out.health)
		events += out.events
		findings += uint64(out.findings)
		aggStats.TotalBytes += out.stats.TotalBytes
		aggStats.Events += out.stats.Events
		aggStats.StoredEventBytes += out.stats.StoredEventBytes
		aggStats.RawEventBytes += out.stats.RawEventBytes
		aggStats.CompressedFrames += out.stats.CompressedFrames
		aggStats.EventFrames += out.stats.EventFrames
		if out.stats.Version != 0 {
			formats[out.stats.Version]++
		}
	}
	fmt.Printf("replayed %d traces: %d events total", len(paths), events)
	if cfg.mdl != nil {
		fmt.Printf(", %d findings", findings)
	}
	fmt.Println()
	if aggStats.Events > 0 {
		var fmts []string
		for _, v := range []uint32{1, 2, 3} {
			if n := formats[v]; n > 0 {
				fmts = append(fmts, fmt.Sprintf("v%d ×%d", v, n))
			}
		}
		fmt.Printf("trace storage: %s, %.2f bytes/event overall", strings.Join(fmts, ", "), aggStats.BytesPerEvent())
		if aggStats.CompressedFrames > 0 {
			fmt.Printf(", compression %.2fx", aggStats.CompressionRatio())
		}
		fmt.Println()
	}
	if !agg.Zero() {
		fmt.Printf("aggregate instrumentation health: %s\n", agg.String())
	}
	return nil
}

// collectTracePaths resolves the -trace flag plus positional
// arguments into the ordered list of trace files. A directory
// contributes its regular files sorted by name.
func collectTracePaths(tracePath string, extra []string) ([]string, error) {
	var paths []string
	add := func(p string) error {
		st, err := os.Stat(p)
		if err != nil {
			return err
		}
		if !st.IsDir() {
			paths = append(paths, p)
			return nil
		}
		entries, err := os.ReadDir(p)
		if err != nil {
			return err
		}
		var names []string
		for _, e := range entries {
			if !e.IsDir() {
				names = append(names, e.Name())
			}
		}
		sort.Strings(names)
		for _, n := range names {
			paths = append(paths, filepath.Join(p, n))
		}
		return nil
	}
	if tracePath != "" {
		if err := add(tracePath); err != nil {
			return nil, err
		}
	}
	for _, p := range extra {
		if err := add(p); err != nil {
			return nil, err
		}
	}
	if len(paths) == 0 {
		return nil, errors.New("replay: -trace (or trace file arguments) required")
	}
	return paths, nil
}

// replayOut is one trace's replay summary.
type replayOut struct {
	text     string
	events   uint64
	findings int
	health   health.Counters
	stats    heapmd.TraceStats
}

// replayOne ingests a single trace file and renders its summary.
func replayOne(path string, cfg replayConfig) (*replayOut, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	rr := &retryReader{r: f, maxRetries: cfg.retries, backoff: 50 * time.Millisecond}

	// Stats must be private to this trace: cfg is shared across the
	// worker pool, so a pointer placed there would be raced over.
	var st heapmd.TraceStats
	cfg.opts.Stats = &st
	rep, sym, info, err := heapmd.ReplayTraceWith(rr, cfg.program, cfg.input, cfg.opts)
	if err != nil {
		if cfg.opts.Salvage {
			return nil, fmt.Errorf("%s: unsalvageable trace: %w", path, err)
		}
		return nil, fmt.Errorf("%s: %w (rerun with -salvage to recover a damaged trace)", path, err)
	}
	out := &replayOut{events: info.EventsRecovered, health: rep.Health, stats: st}
	var b strings.Builder
	fmt.Fprintf(&b, "replayed %d events (%d snapshots, %d symbols) from %s\n",
		info.EventsRecovered, len(rep.Snapshots), sym.Len(), path)
	if st.Events > 0 {
		fmt.Fprintf(&b, "trace format v%d: %.2f bytes/event", st.Version, st.BytesPerEvent())
		if st.CompressedFrames > 0 {
			fmt.Fprintf(&b, ", compression %.2fx (%d/%d frames)",
				st.CompressionRatio(), st.CompressedFrames, st.EventFrames)
		}
		b.WriteByte('\n')
	}
	if st.DecodeWorkers >= 2 {
		// Stall counters locate the pipeline bottleneck: scanner stalls
		// mean decode or the sink is behind; resequencer stalls mean
		// worker skew is gating in-order delivery.
		fmt.Fprintf(&b, "decode pipeline: %d workers, %d scanner stalls, %d resequencer stalls\n",
			st.DecodeWorkers, st.ScannerStalls, st.ResequencerStalls)
	}
	if st.IngestWorkers >= 2 {
		// Hits vs fallbacks measure how often speculation paid off;
		// pre-resolve stalls mean resolvers kept catching the table
		// mid-mutation, mutator stalls mean resolution (or the decode
		// stage feeding it) is the bottleneck.
		fmt.Fprintf(&b, "ingest pipeline: %d workers, %d speculation hits, %d fallbacks, %d pre-resolve stalls, %d mutator stalls\n",
			st.IngestWorkers, st.SpeculationHits, st.SpeculationFallbacks, st.PreResolveStalls, st.MutatorStalls)
	}
	if info.Salvaged() {
		fmt.Fprintf(&b, "salvage: %s\n", info)
	}
	if rr.retried > 0 {
		fmt.Fprintf(&b, "transient read errors retried: %d\n", rr.retried)
	}
	if h := rep.Health; !h.Zero() {
		fmt.Fprintf(&b, "instrumentation health: %s\n", h.String())
	}
	if cfg.mdl == nil {
		out.text = b.String()
		return out, nil
	}
	findings := heapmd.Check(cfg.mdl, rep)
	out.findings = len(findings)
	if len(findings) == 0 {
		b.WriteString("check: clean\n")
	} else {
		fmt.Fprintf(&b, "check: %d findings\n", len(findings))
		for _, fd := range findings {
			fmt.Fprintf(&b, "  %s\n", fd.Describe(sym))
		}
	}
	out.text = b.String()
	return out, nil
}

// retryReader wraps an io.ReadSeeker with bounded retry and
// exponential backoff on transient errors. EOF conditions are data,
// not faults — salvage handles those — so they pass through
// untouched; everything else (a flaky NFS mount, a device hiccup)
// gets maxRetries further attempts per call.
type retryReader struct {
	r          io.ReadSeeker
	maxRetries int
	backoff    time.Duration
	retried    int // total transient errors retried, for reporting
}

func transient(err error) bool {
	return err != nil && err != io.EOF && !errors.Is(err, io.ErrUnexpectedEOF)
}

func (rr *retryReader) Read(p []byte) (int, error) {
	var n int
	var err error
	delay := rr.backoff
	for attempt := 0; ; attempt++ {
		n, err = rr.r.Read(p)
		if n > 0 || !transient(err) || attempt >= rr.maxRetries {
			return n, err
		}
		rr.retried++
		time.Sleep(delay)
		delay *= 2
	}
}

func (rr *retryReader) Seek(offset int64, whence int) (int64, error) {
	var pos int64
	var err error
	delay := rr.backoff
	for attempt := 0; ; attempt++ {
		pos, err = rr.r.Seek(offset, whence)
		if !transient(err) || attempt >= rr.maxRetries {
			return pos, err
		}
		rr.retried++
		time.Sleep(delay)
		delay *= 2
	}
}
