// Command heapmd drives the HeapMD pipeline against the bundled
// benchmark workloads: train a heap-behaviour model on clean inputs,
// check further runs (optionally with injected faults) against a
// model, and plot metric trajectories — the command-line counterpart
// of the paper's Figure 2 architecture.
//
// Usage:
//
//	heapmd list
//	heapmd train -workload gzip -inputs 25 -o gzip.model
//	heapmd check -workload gzip -model gzip.model [-fault dlist-missing-prev[:prob]] [-inputs 5]
//	heapmd replay -trace run.trace [more.trace ...] [-model gzip.model] [-salvage] [-parallel N]
//	heapmd plot  -workload vpr -metric Outdeg=1 [-model vpr.model] [-fault ...]
//	heapmd soak  -duration 30s -seed 1 [-policy block|drop] [-faults a,b] [-check]
//	heapmd faults
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"time"

	"heapmd/internal/detect"
	"heapmd/internal/faults"
	"heapmd/internal/heapgraph"
	"heapmd/internal/logger"
	"heapmd/internal/metrics"
	"heapmd/internal/model"
	"heapmd/internal/plot"
	"heapmd/internal/prog"
	"heapmd/internal/sched"
	"heapmd/internal/soak"
	"heapmd/internal/trace"
	"heapmd/internal/workloads"
)

func main() {
	if len(os.Args) < 2 {
		usage()
		os.Exit(2)
	}
	var err error
	switch os.Args[1] {
	case "list":
		err = cmdList()
	case "faults":
		err = cmdFaults()
	case "train":
		err = cmdTrain(os.Args[2:])
	case "check":
		err = cmdCheck(os.Args[2:])
	case "replay":
		err = cmdReplay(os.Args[2:])
	case "plot":
		err = cmdPlot(os.Args[2:])
	case "soak":
		err = cmdSoak(os.Args[2:])
	case "-h", "--help", "help":
		usage()
	default:
		usage()
		os.Exit(2)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "heapmd:", err)
		os.Exit(1)
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, `usage:
  heapmd list                                    list bundled workloads
  heapmd faults                                  list injectable faults
  heapmd train -workload W [-inputs N] -o FILE   build a model from clean runs
  heapmd check -workload W -model FILE [flags]   check held-out runs
  heapmd replay -trace FILE|DIR [FILE...]        ingest recorded traces (crash-safe, parallel)
  heapmd plot  -workload W -metric M [flags]     plot a metric trajectory
  heapmd soak  [-duration D] [-seed N] [flags]   chaos-soak the fault catalog, emit a JSON scoreboard`)
}

func cmdList() error {
	fmt.Printf("%-13s %-11s %-10s %s\n", "Workload", "Class", "Stable", "Models")
	for _, w := range workloads.All() {
		fmt.Printf("%-13s %-11s %-10s %s\n", w.Name(), w.Class(), w.StableMetric(), w.Description())
	}
	return nil
}

func cmdFaults() error {
	fmt.Printf("%-24s %-17s %-7s %s\n", "Fault", "Class", "Detect", "Mechanism")
	for _, e := range faults.Catalog() {
		expect := "no"
		if e.ExpectDetect {
			expect = "yes"
		}
		fmt.Printf("%-24s %-17s %-7s %s\n", e.Name, e.Class, expect, e.Mechanism)
	}
	return nil
}

func cmdSoak(args []string) error {
	fs := flag.NewFlagSet("soak", flag.ExitOnError)
	duration := fs.Duration("duration", 30*time.Second, "wall-clock soak budget beyond the minimum schedule (0 = minimum only)")
	seed := fs.Int64("seed", 1, "soak seed (perturbs held-out inputs; equal seeds reproduce the scoreboard)")
	faultList := fs.String("faults", "", "comma-separated fault names to soak (default: the whole catalog)")
	policy := fs.String("policy", "block", "pipeline backpressure policy: block|drop")
	ingestWorkersFlag := fs.Int("ingest-workers", 0, "ingest workers per iteration: 0 = auto (serial on a single core), 1 = serial, n >= 2 = mutator + n-1 speculative pre-resolvers (identical scoreboard at any setting)")
	parallel := fs.Int("parallel", 0, "cells soaked concurrently (0 = all cores, 1 = serial)")
	train := fs.Int("train", 0, "training inputs per workload model (0 = soak default)")
	connectivity := fs.String("connectivity", "snapshot", "WCC metric path: snapshot|incremental|verify (verify runs both and panics on divergence)")
	sccPath := fs.String("scc", "snapshot", "SCC metric path: snapshot|incremental|verify (verify runs both and panics on divergence)")
	extended := fs.Bool("extended", false, "soak with the extended metric suite (adds WCC/SCC structure metrics)")
	check := fs.Bool("check", false, "exit nonzero unless every verdict matches the taxonomy with zero warmup false positives")
	out := fs.String("o", "", "write the JSON scoreboard to FILE (default: stdout)")
	quiet := fs.Bool("q", false, "suppress per-cell progress lines on stderr")
	if err := fs.Parse(args); err != nil {
		return err
	}
	workers, err := sched.ParseParallel(*parallel)
	if err != nil {
		return err
	}
	conn, err := heapgraph.ParseConnectivity(*connectivity)
	if err != nil {
		return err
	}
	sccMode, err := heapgraph.ParseSCC(*sccPath)
	if err != nil {
		return err
	}
	ingestWorkers, err := sched.ParseIngestWorkers(*ingestWorkersFlag)
	if err != nil {
		return err
	}
	opts := soak.Options{
		Duration:      *duration,
		Seed:          *seed,
		Parallel:      workers,
		TrainInputs:   *train,
		Connectivity:  conn,
		SCC:           sccMode,
		Extended:      *extended,
		IngestWorkers: ingestWorkers,
	}
	switch *policy {
	case "block":
		opts.Policy = logger.Block
	case "drop":
		opts.Policy = logger.Drop
	default:
		return fmt.Errorf("unknown policy %q (want block or drop)", *policy)
	}
	if *faultList != "" {
		opts.Faults = strings.Split(*faultList, ",")
	}
	if !*quiet {
		opts.Progress = os.Stderr
	}
	sb, err := soak.Run(opts)
	if err != nil {
		return err
	}
	dst := os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			return err
		}
		defer f.Close()
		dst = f
	}
	if err := sb.WriteJSON(dst); err != nil {
		return err
	}
	if *check && !sb.OK() {
		return fmt.Errorf("scoreboard not clean: %d missed, %d false alarms, %d warmup false positives",
			sb.Summary.Missed, sb.Summary.FalseAlarms, sb.Summary.WarmupFalsePositives)
	}
	return nil
}

func cmdTrain(args []string) error {
	fs := flag.NewFlagSet("train", flag.ExitOnError)
	name := fs.String("workload", "", "workload to train on (see 'heapmd list')")
	inputs := fs.Int("inputs", 25, "number of training inputs")
	out := fs.String("o", "", "output model file (default: stdout)")
	version := fs.Int("version", 1, "development version (commercial workloads)")
	parallel := fs.Int("parallel", 0, "training runs in flight (0 = all cores, 1 = serial; results are identical)")
	recordDir := fs.String("record-traces", "", "record each run's event stream to DIR/<input>.trace for later 'heapmd replay'")
	traceFormat := fs.Uint("trace-format", uint(trace.VersionV3), "trace format version to record (2 or 3)")
	compress := fs.Bool("compress", false, "flate-compress recorded v3 trace frames (smaller files, same replay)")
	traceWorkers := fs.Int("trace-workers", 0, "encode recorded v3 frames on this many workers per run (0 = synchronous; bytes are identical)")
	ingestWorkersFlag := fs.Int("ingest-workers", 0, "ingest workers per run: 0 = auto (serial on a single core), 1 = serial, n >= 2 = mutator + n-1 speculative pre-resolvers (identical model at any setting)")
	connectivity := fs.String("connectivity", "snapshot", "WCC metric path: snapshot|incremental|verify (verify runs both and panics on divergence)")
	sccPath := fs.String("scc", "snapshot", "SCC metric path: snapshot|incremental|verify (verify runs both and panics on divergence)")
	extended := fs.Bool("extended", false, "train on the extended metric suite (adds WCC/SCC structure metrics)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	w, err := workloads.Get(*name)
	if err != nil {
		return err
	}
	workers, err := sched.ParseParallel(*parallel)
	if err != nil {
		return err
	}
	ingestWorkers, err := sched.ParseIngestWorkers(*ingestWorkersFlag)
	if err != nil {
		return err
	}
	logOpts, err := connectivityOptions(*connectivity, *sccPath, *extended)
	if err != nil {
		return err
	}
	cfg := workloads.RunConfig{Version: *version, Parallel: workers, Logger: logOpts, IngestWorkers: ingestWorkers}
	if *recordDir != "" {
		// Recording stays parallel: the hook opens a private writer per
		// run (see RunConfig.Record).
		encodeWorkers, err := sched.ParseEncodeWorkers(*traceWorkers)
		if err != nil {
			return err
		}
		cfg.Record, err = traceRecorder(*recordDir, uint32(*traceFormat), *compress, encodeWorkers)
		if err != nil {
			return err
		}
	}
	reports, err := workloads.Train(w, *inputs, cfg)
	if err != nil {
		return err
	}
	res, err := model.Build(reports, model.Defaults())
	if err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "trained %s on %d inputs: %d globally stable metrics\n",
		w.Name(), *inputs, res.StableCount())
	for _, mr := range res.Reports {
		fmt.Fprintf(os.Stderr, "  %-9s %-16s", mr.Metric, mr.Klass)
		if _, ok := res.Model.Stable[mr.Metric]; ok {
			rng := res.Model.Stable[mr.Metric]
			fmt.Fprintf(os.Stderr, " range=[%.2f, %.2f]", rng.Min, rng.Max)
		}
		fmt.Fprintln(os.Stderr)
	}
	dst := os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			return err
		}
		defer f.Close()
		dst = f
	}
	return res.Model.Save(dst)
}

// traceRecorder returns a RunConfig.Record hook that writes each
// run's event stream to dir/<input>.trace in the selected format. The
// hook builds a fresh writer per run, so recorded training and check
// runs still fan out across workers.
func traceRecorder(dir string, format uint32, compress bool, workers int) (func(in workloads.Input, p *prog.Process) (func() error, error), error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	// Validate the format/compression/worker combination once, up
	// front, rather than failing on every run. The probe must be closed
	// so a pipelined writer's goroutines do not outlive it.
	probe, err := trace.NewWriterWith(io.Discard, trace.WriterOptions{Version: format, Compress: compress, Workers: workers})
	if err != nil {
		return nil, err
	}
	probe.Close(nil)
	return func(in workloads.Input, p *prog.Process) (func() error, error) {
		f, err := os.Create(filepath.Join(dir, in.Name+".trace"))
		if err != nil {
			return nil, err
		}
		tw, err := trace.NewWriterWith(f, trace.WriterOptions{Version: format, Compress: compress, Workers: workers})
		if err != nil {
			f.Close()
			return nil, err
		}
		tw.SetSymtab(p.Sym())
		p.Subscribe(tw)
		return func() error {
			err := tw.Close(p.Sym())
			if cerr := f.Close(); err == nil {
				err = cerr
			}
			return err
		}, nil
	}, nil
}

// connectivityOptions resolves the -connectivity/-scc/-extended flag
// triple shared by train and check into logger options.
func connectivityOptions(connectivity, scc string, extended bool) (logger.Options, error) {
	mode, err := heapgraph.ParseConnectivity(connectivity)
	if err != nil {
		return logger.Options{}, err
	}
	sccMode, err := heapgraph.ParseSCC(scc)
	if err != nil {
		return logger.Options{}, err
	}
	opts := logger.Options{Connectivity: mode, SCC: sccMode}
	if extended {
		opts.Suite = metrics.ExtendedSuite()
	}
	return opts, nil
}

// parseFault parses "name[:prob[:maxTriggers]]".
func parseFault(spec string) (string, faults.Config, error) {
	parts := strings.Split(spec, ":")
	cfg := faults.Config{}
	switch len(parts) {
	case 3:
		n, err := strconv.Atoi(parts[2])
		if err != nil {
			return "", cfg, fmt.Errorf("bad max triggers %q", parts[2])
		}
		cfg.MaxTriggers = n
		fallthrough
	case 2:
		p, err := strconv.ParseFloat(parts[1], 64)
		if err != nil {
			return "", cfg, fmt.Errorf("bad probability %q", parts[1])
		}
		cfg.Prob = p
		fallthrough
	case 1:
		return parts[0], cfg, nil
	default:
		return "", cfg, fmt.Errorf("bad fault spec %q", spec)
	}
}

func cmdCheck(args []string) error {
	fs := flag.NewFlagSet("check", flag.ExitOnError)
	name := fs.String("workload", "", "workload to check")
	modelPath := fs.String("model", "", "model file from 'heapmd train'")
	faultSpec := fs.String("fault", "", "fault to inject: name[:prob[:max]] (see 'heapmd faults')")
	nTest := fs.Int("inputs", 5, "number of held-out inputs to check")
	skip := fs.Int("skip", 25, "skip the first N inputs (assumed used for training)")
	version := fs.Int("version", 1, "development version")
	parallel := fs.Int("parallel", 0, "check runs in flight (0 = all cores, 1 = serial; output is identical)")
	recordDir := fs.String("record-traces", "", "record each run's event stream to DIR/<input>.trace for later 'heapmd replay'")
	traceFormat := fs.Uint("trace-format", uint(trace.VersionV3), "trace format version to record (2 or 3)")
	compress := fs.Bool("compress", false, "flate-compress recorded v3 trace frames (smaller files, same replay)")
	traceWorkers := fs.Int("trace-workers", 0, "encode recorded v3 frames on this many workers per run (0 = synchronous; bytes are identical)")
	ingestWorkersFlag := fs.Int("ingest-workers", 0, "ingest workers per run: 0 = auto (serial on a single core), 1 = serial, n >= 2 = mutator + n-1 speculative pre-resolvers (identical findings at any setting)")
	connectivity := fs.String("connectivity", "snapshot", "WCC metric path: snapshot|incremental|verify (verify runs both and panics on divergence)")
	sccPath := fs.String("scc", "snapshot", "SCC metric path: snapshot|incremental|verify (verify runs both and panics on divergence)")
	extended := fs.Bool("extended", false, "check with the extended metric suite (adds WCC/SCC structure metrics)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	w, err := workloads.Get(*name)
	if err != nil {
		return err
	}
	workers, err := sched.ParseParallel(*parallel)
	if err != nil {
		return err
	}
	ingestWorkers, err := sched.ParseIngestWorkers(*ingestWorkersFlag)
	if err != nil {
		return err
	}
	logOpts, err := connectivityOptions(*connectivity, *sccPath, *extended)
	if err != nil {
		return err
	}
	var record func(workloads.Input, *prog.Process) (func() error, error)
	if *recordDir != "" {
		encodeWorkers, werr := sched.ParseEncodeWorkers(*traceWorkers)
		if werr != nil {
			return werr
		}
		record, err = traceRecorder(*recordDir, uint32(*traceFormat), *compress, encodeWorkers)
		if err != nil {
			return err
		}
	}
	f, err := os.Open(*modelPath)
	if err != nil {
		return err
	}
	mdl, err := model.Load(f)
	f.Close()
	if err != nil {
		return err
	}
	var faultName string
	var faultCfg faults.Config
	if *faultSpec != "" {
		faultName, faultCfg, err = parseFault(*faultSpec)
		if err != nil {
			return err
		}
	}
	all := w.Inputs(*skip + *nTest)
	held := all[*skip:]
	// Each held-out run is independent: its own process, logger, and —
	// because a fault plan carries trigger budgets — its own plan.
	// Results come back in input order, so the printed report reads the
	// same at any -parallel setting.
	type checkOut struct {
		text     string
		findings int
	}
	outs, err := sched.Map(workers, len(held), func(i int) (checkOut, error) {
		in := held[i]
		var plan *faults.Plan
		if faultName != "" {
			plan = faults.NewPlan().Enable(faultName, faultCfg)
		}
		var b strings.Builder
		out := checkOut{}
		rep, p, err := workloads.RunLogged(w, in, workloads.RunConfig{Plan: plan, Version: *version, Record: record, Logger: logOpts, IngestWorkers: ingestWorkers})
		if err != nil {
			fmt.Fprintf(&b, "%s: run crashed: %v\n", in.Name, err)
			out.text = b.String()
			return out, nil
		}
		findings := detect.CheckReport(mdl, rep, detect.Options{})
		if len(findings) == 0 {
			fmt.Fprintf(&b, "%s: clean\n", in.Name)
		} else {
			out.findings = len(findings)
			fmt.Fprintf(&b, "%s: %d findings\n", in.Name, len(findings))
			for _, fd := range findings {
				fmt.Fprintf(&b, "  %s\n", fd.Describe(p.Sym()))
			}
		}
		if h := rep.Health; !h.Zero() {
			fmt.Fprintf(&b, "  instrumentation health: %s\n", h.String())
		}
		out.text = b.String()
		return out, nil
	})
	if err != nil {
		return err
	}
	total := 0
	for _, out := range outs {
		fmt.Print(out.text)
		total += out.findings
	}
	fmt.Printf("total findings: %d\n", total)
	return nil
}

func cmdPlot(args []string) error {
	fs := flag.NewFlagSet("plot", flag.ExitOnError)
	name := fs.String("workload", "", "workload to run")
	metricName := fs.String("metric", "Indeg=1", "metric to plot")
	modelPath := fs.String("model", "", "optional model file: draws calibrated bounds")
	faultSpec := fs.String("fault", "", "fault to inject: name[:prob[:max]]")
	inputIdx := fs.Int("input", 0, "input index to run")
	version := fs.Int("version", 1, "development version")
	if err := fs.Parse(args); err != nil {
		return err
	}
	w, err := workloads.Get(*name)
	if err != nil {
		return err
	}
	id, err := metrics.ParseID(*metricName)
	if err != nil {
		return err
	}
	var plan *faults.Plan
	if *faultSpec != "" {
		fname, cfg, err := parseFault(*faultSpec)
		if err != nil {
			return err
		}
		plan = faults.NewPlan().Enable(fname, cfg)
	}
	in := w.Inputs(*inputIdx + 1)[*inputIdx]
	rep, _, err := workloads.RunLogged(w, in, workloads.RunConfig{Plan: plan, Version: *version})
	if err != nil {
		return err
	}
	opts := plot.Options{
		Title:  fmt.Sprintf("%s on %s: %s", w.Name(), in.Name, id),
		Width:  72,
		Height: 16,
	}
	if *modelPath != "" {
		f, err := os.Open(*modelPath)
		if err != nil {
			return err
		}
		mdl, err := model.Load(f)
		f.Close()
		if err != nil {
			return err
		}
		if rng, ok := mdl.RangeOf(id); ok {
			opts.HLines = map[string]float64{"calibrated min": rng.Min, "calibrated max": rng.Max}
		}
	}
	fmt.Print(plot.Render(opts, plot.Series{Name: id.String() + " (%)", Values: rep.Series(id)}))
	return nil
}
