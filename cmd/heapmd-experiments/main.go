// Command heapmd-experiments regenerates every table and figure of
// the paper's evaluation. Without flags it runs everything at paper
// scale; individual artifacts can be selected, and -quick caps input
// counts for a fast smoke run.
//
// Usage:
//
//	heapmd-experiments                 # everything, paper scale
//	heapmd-experiments -quick          # everything, reduced scale
//	heapmd-experiments -fig 7a         # one figure (4, 5, 6, 7a, 7b, 10)
//	heapmd-experiments -table 2        # one table (1, 2)
//	heapmd-experiments -exp injection  # extra studies (injection, thresholds)
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"heapmd/internal/experiments"
	"heapmd/internal/sched"
)

func main() {
	fig := flag.String("fig", "", "figure to regenerate: 4, 5, 6, 7a, 7b, 10")
	table := flag.String("table", "", "table to regenerate: 1, 2")
	exp := flag.String("exp", "", "extra study: injection, thresholds, granularity")
	quick := flag.Bool("quick", false, "cap input counts for a fast run")
	parallel := flag.Int("parallel", 0, "experiment cells in flight (0 = all cores, 1 = serial; tables and figures are identical)")
	flag.Parse()

	workers, err := sched.ParseParallel(*parallel)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	cfg := experiments.Config{Quick: *quick, Parallel: workers}
	all := *fig == "" && *table == "" && *exp == ""

	type job struct {
		name string
		want bool
		run  func() (fmt.Stringer, error)
	}
	jobs := []job{
		{"Figure 4", all || *fig == "4", func() (fmt.Stringer, error) { return experiments.Figure4(cfg) }},
		{"Figure 5", all || *fig == "5", func() (fmt.Stringer, error) { return experiments.Figure5(cfg) }},
		{"Figure 6", all || *fig == "6", func() (fmt.Stringer, error) { return experiments.Figure6(cfg) }},
		{"Figure 7(A)", all || *fig == "7a", func() (fmt.Stringer, error) { return experiments.Figure7A(cfg) }},
		{"Figure 7(B)", all || *fig == "7b", func() (fmt.Stringer, error) { return experiments.Figure7B(cfg) }},
		{"Figure 10", all || *fig == "10", func() (fmt.Stringer, error) { return experiments.Figure10(cfg) }},
		{"Table 1", all || *table == "1", func() (fmt.Stringer, error) { return experiments.Table1(cfg) }},
		{"Table 2", all || *table == "2", func() (fmt.Stringer, error) { return experiments.Table2(cfg) }},
		{"SPEC injection (Section 4.2)", all || *exp == "injection", func() (fmt.Stringer, error) { return experiments.SPECInjection(cfg) }},
		{"Granularity (Figure 3)", all || *exp == "granularity", func() (fmt.Stringer, error) { return experiments.Granularity(cfg) }},
		{"Threshold sweep (Section 3)", all || *exp == "thresholds", func() (fmt.Stringer, error) { return experiments.ThresholdSweep(cfg) }},
	}
	ran := 0
	for _, j := range jobs {
		if !j.want {
			continue
		}
		ran++
		start := time.Now()
		res, err := j.run()
		if err != nil {
			fmt.Fprintf(os.Stderr, "%s failed: %v\n", j.name, err)
			os.Exit(1)
		}
		fmt.Printf("================================================================\n")
		fmt.Printf("%s  (%.1fs)\n", j.name, time.Since(start).Seconds())
		fmt.Printf("================================================================\n")
		fmt.Println(res)
	}
	if ran == 0 {
		flag.Usage()
		os.Exit(2)
	}
}
