package intervals

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func TestInsertGetRemove(t *testing.T) {
	m := New[string]()
	m.Insert(100, 24, "a")
	m.Insert(200, 8, "b")
	if m.Len() != 2 {
		t.Fatalf("Len = %d, want 2", m.Len())
	}
	if v, ok := m.Get(100); !ok || v != "a" {
		t.Errorf("Get(100) = (%q,%v)", v, ok)
	}
	if _, ok := m.Get(101); ok {
		t.Error("Get of interior address should fail")
	}
	if !m.Remove(100) {
		t.Error("Remove(100) failed")
	}
	if m.Remove(100) {
		t.Error("second Remove(100) should fail")
	}
	if m.Len() != 1 {
		t.Errorf("Len = %d, want 1", m.Len())
	}
}

func TestStab(t *testing.T) {
	m := New[int]()
	m.Insert(100, 24, 1)
	m.Insert(200, 8, 2)

	base, size, v, ok := m.Stab(116)
	if !ok || base != 100 || size != 24 || v != 1 {
		t.Errorf("Stab(116) = (%d,%d,%d,%v)", base, size, v, ok)
	}
	if _, _, _, ok := m.Stab(124); ok {
		t.Error("Stab one-past-end should miss")
	}
	if _, _, _, ok := m.Stab(50); ok {
		t.Error("Stab below all ranges should miss")
	}
	if _, _, _, ok := m.Stab(150); ok {
		t.Error("Stab in gap should miss")
	}
	if base, _, v, ok := m.Stab(200); !ok || base != 200 || v != 2 {
		t.Error("Stab at exact base should hit")
	}
}

func TestStabEmpty(t *testing.T) {
	m := New[int]()
	if _, _, _, ok := m.Stab(0); ok {
		t.Error("Stab on empty map should miss")
	}
}

func TestWalkOrderedAndEarlyStop(t *testing.T) {
	m := New[int]()
	rng := rand.New(rand.NewSource(7))
	want := map[uint64]bool{}
	for i := 0; i < 500; i++ {
		k := uint64(rng.Intn(100000)) * 8
		if !want[k] {
			m.Insert(k, 8, i)
			want[k] = true
		}
	}
	var got []uint64
	m.Walk(func(base, size uint64, _ int) bool {
		got = append(got, base)
		return true
	})
	if len(got) != len(want) {
		t.Fatalf("walk visited %d, want %d", len(got), len(want))
	}
	if !sort.SliceIsSorted(got, func(a, b int) bool { return got[a] < got[b] }) {
		t.Error("walk order not ascending")
	}
	n := 0
	m.Walk(func(uint64, uint64, int) bool { n++; return n < 3 })
	if n != 3 {
		t.Errorf("early-stop walk visited %d, want 3", n)
	}
}

func checkBST[V any](n *node[V], lo, hi uint64) bool {
	if n == nil {
		return true
	}
	if n.base < lo || n.base > hi {
		return false
	}
	return checkBST(n.left, lo, n.base-1) && checkBST(n.right, n.base+1, hi)
}

func checkHeap[V any](n *node[V]) bool {
	if n == nil {
		return true
	}
	if n.left != nil && n.left.priority > n.priority {
		return false
	}
	if n.right != nil && n.right.priority > n.priority {
		return false
	}
	return checkHeap(n.left) && checkHeap(n.right)
}

// TestTreapInvariants drives randomized inserts and removals, checking
// the BST key order and the max-heap priority order after every
// mutation. Regression: an argument swap in merge once broke the BST
// invariant only under particular removal sequences.
func TestTreapInvariants(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	m := New[int]()
	present := map[uint64]bool{}
	const maxKey = ^uint64(0)
	for i := 0; i < 3000; i++ {
		if rng.Intn(2) == 0 || len(present) == 0 {
			k := uint64(rng.Intn(400)) * 8
			if present[k] {
				continue
			}
			m.Insert(k, 8, i)
			present[k] = true
		} else {
			keys := make([]uint64, 0, len(present))
			for k := range present {
				keys = append(keys, k)
			}
			sort.Slice(keys, func(a, b int) bool { return keys[a] < keys[b] })
			k := keys[rng.Intn(len(keys))]
			if !m.Remove(k) {
				t.Fatalf("iter %d: Remove(%d) failed", i, k)
			}
			delete(present, k)
		}
		if !checkBST(m.root, 0, maxKey) {
			t.Fatalf("iter %d: BST invariant broken", i)
		}
		if !checkHeap(m.root) {
			t.Fatalf("iter %d: heap invariant broken", i)
		}
		if m.Len() != len(present) {
			t.Fatalf("iter %d: Len %d, want %d", i, m.Len(), len(present))
		}
	}
}

// TestStabMatchesBruteForce cross-checks stabbing queries against a
// linear scan on randomized disjoint ranges.
func TestStabMatchesBruteForce(t *testing.T) {
	f := func(sizes []uint8, probes []uint16) bool {
		m := New[int]()
		type rng struct{ base, size uint64 }
		var ranges []rng
		next := uint64(0)
		for i, sz := range sizes {
			size := uint64(sz%64) + 8
			gap := uint64(sz % 3 * 8) // leave occasional gaps
			base := next + gap
			next = base + size
			m.Insert(base, size, i)
			ranges = append(ranges, rng{base, size})
		}
		for _, p := range probes {
			addr := uint64(p) * 4
			base, _, _, ok := m.Stab(addr)
			var wantBase uint64
			var wantOK bool
			for _, r := range ranges {
				if addr >= r.base && addr < r.base+r.size {
					wantBase, wantOK = r.base, true
					break
				}
			}
			if ok != wantOK || (ok && base != wantBase) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}

// TestStabEdgeCases is the table that locks the half-open interval
// semantics both this treap and the addrindex pagemap must implement:
// a stab at exactly base+size misses, zero-size ranges can never be
// stabbed, and a zero-size range based inside another range does not
// shadow the enclosing range. Any replacement address-resolution
// structure is oracle-tested against this exact behaviour.
func TestStabEdgeCases(t *testing.T) {
	type rng struct {
		base, size uint64
		val        int
	}
	type probe struct {
		addr     uint64
		wantBase uint64
		wantOK   bool
	}
	cases := []struct {
		name   string
		ranges []rng
		probes []probe
	}{
		{
			name:   "half-open end",
			ranges: []rng{{base: 100, size: 24, val: 1}},
			probes: []probe{
				{addr: 100, wantBase: 100, wantOK: true},  // first byte
				{addr: 123, wantBase: 100, wantOK: true},  // last byte
				{addr: 124, wantOK: false},                // exactly base+size
				{addr: 125, wantOK: false},                // past the end
				{addr: 99, wantOK: false},                 // just below base
			},
		},
		{
			name:   "adjacent ranges share no address",
			ranges: []rng{{base: 64, size: 32, val: 1}, {base: 96, size: 32, val: 2}},
			probes: []probe{
				{addr: 95, wantBase: 64, wantOK: true},
				{addr: 96, wantBase: 96, wantOK: true}, // base+size of the first IS the second's base
				{addr: 127, wantBase: 96, wantOK: true},
				{addr: 128, wantOK: false},
			},
		},
		{
			name:   "zero-size range is never stabbed",
			ranges: []rng{{base: 200, size: 0, val: 1}},
			probes: []probe{
				{addr: 200, wantOK: false},
				{addr: 199, wantOK: false},
				{addr: 201, wantOK: false},
			},
		},
		{
			name: "zero-size range does not shadow its container",
			// [100,164) contains a degenerate [128,128). Stabs at and
			// after 128 must still resolve to the container.
			ranges: []rng{{base: 100, size: 64, val: 1}, {base: 128, size: 0, val: 2}},
			probes: []probe{
				{addr: 127, wantBase: 100, wantOK: true},
				{addr: 128, wantBase: 100, wantOK: true}, // the shadowing case
				{addr: 163, wantBase: 100, wantOK: true},
				{addr: 164, wantOK: false},
			},
		},
		{
			name: "zero-size range between neighbours",
			ranges: []rng{
				{base: 0, size: 16, val: 1},
				{base: 16, size: 0, val: 2},
				{base: 32, size: 16, val: 3},
			},
			probes: []probe{
				{addr: 15, wantBase: 0, wantOK: true},
				{addr: 16, wantOK: false}, // past range 1, inside nothing
				{addr: 31, wantOK: false},
				{addr: 32, wantBase: 32, wantOK: true},
			},
		},
		{
			name:   "range ending at the top of the address space",
			ranges: []rng{{base: ^uint64(0) - 15, size: 16, val: 1}},
			probes: []probe{
				{addr: ^uint64(0) - 16, wantOK: false},
				{addr: ^uint64(0) - 15, wantBase: ^uint64(0) - 15, wantOK: true},
				{addr: ^uint64(0), wantBase: ^uint64(0) - 15, wantOK: true},
				{addr: 0, wantOK: false}, // base+size wraps to 0; no false hit
			},
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			m := New[int]()
			for _, r := range tc.ranges {
				m.Insert(r.base, r.size, r.val)
			}
			for _, p := range tc.probes {
				base, _, _, ok := m.Stab(p.addr)
				if ok != p.wantOK || (ok && base != p.wantBase) {
					t.Errorf("Stab(%#x) = (base=%#x, ok=%v), want (base=%#x, ok=%v)",
						p.addr, base, ok, p.wantBase, p.wantOK)
				}
			}
			// Zero-size entries stay reachable by exact-base Get/Remove.
			for _, r := range tc.ranges {
				if v, ok := m.Get(r.base); !ok || v != r.val {
					t.Errorf("Get(%#x) = (%d,%v), want (%d,true)", r.base, v, ok, r.val)
				}
			}
		})
	}
}

func BenchmarkInsertRemove(b *testing.B) {
	m := New[int]()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		k := uint64(i%10000) * 64
		m.Insert(k, 64, i)
		m.Remove(k)
	}
}

func BenchmarkStab(b *testing.B) {
	m := New[int]()
	for i := 0; i < 100000; i++ {
		m.Insert(uint64(i)*64, 48, i)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.Stab(uint64(i%100000)*64 + 16)
	}
}
