package intervals

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func TestInsertGetRemove(t *testing.T) {
	m := New[string]()
	m.Insert(100, 24, "a")
	m.Insert(200, 8, "b")
	if m.Len() != 2 {
		t.Fatalf("Len = %d, want 2", m.Len())
	}
	if v, ok := m.Get(100); !ok || v != "a" {
		t.Errorf("Get(100) = (%q,%v)", v, ok)
	}
	if _, ok := m.Get(101); ok {
		t.Error("Get of interior address should fail")
	}
	if !m.Remove(100) {
		t.Error("Remove(100) failed")
	}
	if m.Remove(100) {
		t.Error("second Remove(100) should fail")
	}
	if m.Len() != 1 {
		t.Errorf("Len = %d, want 1", m.Len())
	}
}

func TestStab(t *testing.T) {
	m := New[int]()
	m.Insert(100, 24, 1)
	m.Insert(200, 8, 2)

	base, size, v, ok := m.Stab(116)
	if !ok || base != 100 || size != 24 || v != 1 {
		t.Errorf("Stab(116) = (%d,%d,%d,%v)", base, size, v, ok)
	}
	if _, _, _, ok := m.Stab(124); ok {
		t.Error("Stab one-past-end should miss")
	}
	if _, _, _, ok := m.Stab(50); ok {
		t.Error("Stab below all ranges should miss")
	}
	if _, _, _, ok := m.Stab(150); ok {
		t.Error("Stab in gap should miss")
	}
	if base, _, v, ok := m.Stab(200); !ok || base != 200 || v != 2 {
		t.Error("Stab at exact base should hit")
	}
}

func TestStabEmpty(t *testing.T) {
	m := New[int]()
	if _, _, _, ok := m.Stab(0); ok {
		t.Error("Stab on empty map should miss")
	}
}

func TestWalkOrderedAndEarlyStop(t *testing.T) {
	m := New[int]()
	rng := rand.New(rand.NewSource(7))
	want := map[uint64]bool{}
	for i := 0; i < 500; i++ {
		k := uint64(rng.Intn(100000)) * 8
		if !want[k] {
			m.Insert(k, 8, i)
			want[k] = true
		}
	}
	var got []uint64
	m.Walk(func(base, size uint64, _ int) bool {
		got = append(got, base)
		return true
	})
	if len(got) != len(want) {
		t.Fatalf("walk visited %d, want %d", len(got), len(want))
	}
	if !sort.SliceIsSorted(got, func(a, b int) bool { return got[a] < got[b] }) {
		t.Error("walk order not ascending")
	}
	n := 0
	m.Walk(func(uint64, uint64, int) bool { n++; return n < 3 })
	if n != 3 {
		t.Errorf("early-stop walk visited %d, want 3", n)
	}
}

func checkBST[V any](n *node[V], lo, hi uint64) bool {
	if n == nil {
		return true
	}
	if n.base < lo || n.base > hi {
		return false
	}
	return checkBST(n.left, lo, n.base-1) && checkBST(n.right, n.base+1, hi)
}

func checkHeap[V any](n *node[V]) bool {
	if n == nil {
		return true
	}
	if n.left != nil && n.left.priority > n.priority {
		return false
	}
	if n.right != nil && n.right.priority > n.priority {
		return false
	}
	return checkHeap(n.left) && checkHeap(n.right)
}

// TestTreapInvariants drives randomized inserts and removals, checking
// the BST key order and the max-heap priority order after every
// mutation. Regression: an argument swap in merge once broke the BST
// invariant only under particular removal sequences.
func TestTreapInvariants(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	m := New[int]()
	present := map[uint64]bool{}
	const maxKey = ^uint64(0)
	for i := 0; i < 3000; i++ {
		if rng.Intn(2) == 0 || len(present) == 0 {
			k := uint64(rng.Intn(400)) * 8
			if present[k] {
				continue
			}
			m.Insert(k, 8, i)
			present[k] = true
		} else {
			keys := make([]uint64, 0, len(present))
			for k := range present {
				keys = append(keys, k)
			}
			sort.Slice(keys, func(a, b int) bool { return keys[a] < keys[b] })
			k := keys[rng.Intn(len(keys))]
			if !m.Remove(k) {
				t.Fatalf("iter %d: Remove(%d) failed", i, k)
			}
			delete(present, k)
		}
		if !checkBST(m.root, 0, maxKey) {
			t.Fatalf("iter %d: BST invariant broken", i)
		}
		if !checkHeap(m.root) {
			t.Fatalf("iter %d: heap invariant broken", i)
		}
		if m.Len() != len(present) {
			t.Fatalf("iter %d: Len %d, want %d", i, m.Len(), len(present))
		}
	}
}

// TestStabMatchesBruteForce cross-checks stabbing queries against a
// linear scan on randomized disjoint ranges.
func TestStabMatchesBruteForce(t *testing.T) {
	f := func(sizes []uint8, probes []uint16) bool {
		m := New[int]()
		type rng struct{ base, size uint64 }
		var ranges []rng
		next := uint64(0)
		for i, sz := range sizes {
			size := uint64(sz%64) + 8
			gap := uint64(sz % 3 * 8) // leave occasional gaps
			base := next + gap
			next = base + size
			m.Insert(base, size, i)
			ranges = append(ranges, rng{base, size})
		}
		for _, p := range probes {
			addr := uint64(p) * 4
			base, _, _, ok := m.Stab(addr)
			var wantBase uint64
			var wantOK bool
			for _, r := range ranges {
				if addr >= r.base && addr < r.base+r.size {
					wantBase, wantOK = r.base, true
					break
				}
			}
			if ok != wantOK || (ok && base != wantBase) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}

func BenchmarkInsertRemove(b *testing.B) {
	m := New[int]()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		k := uint64(i%10000) * 64
		m.Insert(k, 64, i)
		m.Remove(k)
	}
}

func BenchmarkStab(b *testing.B) {
	m := New[int]()
	for i := 0; i < 100000; i++ {
		m.Insert(uint64(i)*64, 48, i)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.Stab(uint64(i%100000)*64 + 16)
	}
}
