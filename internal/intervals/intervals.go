// Package intervals provides an ordered map from disjoint address
// ranges to values, with stabbing ("which range contains this
// address?") queries.
//
// Two components keep such maps: the simulated heap (package heap)
// maps live ranges to allocator metadata, and the execution logger
// (package logger) maintains its *own* image of the heap — the paper
// is explicit that the logger mirrors heap connectivity rather than
// traversing the program's heap, to preserve cache locality. Both use
// this structure.
//
// The implementation is a randomized treap: expected O(log n) insert,
// remove, exact lookup and stabbing query, with deterministic
// priorities so whole-run replays are bit-identical.
package intervals

// Map associates disjoint [base, base+size) ranges with values of
// type V. The zero Map is not ready to use; call New.
type Map[V any] struct {
	root *node[V]
	rng  uint64
	size int
}

type node[V any] struct {
	base     uint64
	size     uint64
	value    V
	priority uint64
	left     *node[V]
	right    *node[V]
}

// New returns an empty map.
func New[V any]() *Map[V] {
	return &Map[V]{rng: 0x9E3779B97F4A7C15}
}

func (m *Map[V]) nextPriority() uint64 {
	// xorshift64* — deterministic, fast, adequate for treap balance.
	x := m.rng
	x ^= x >> 12
	x ^= x << 25
	x ^= x >> 27
	m.rng = x
	return x * 0x2545F4914F6CDD1D
}

// Insert adds the range [base, base+size) with the given value. The
// caller must guarantee the range does not overlap an existing one;
// allocators never hand out overlapping live ranges.
func (m *Map[V]) Insert(base, size uint64, value V) {
	n := &node[V]{base: base, size: size, value: value, priority: m.nextPriority()}
	m.root = insert(m.root, n)
	m.size++
}

func insert[V any](root, n *node[V]) *node[V] {
	if root == nil {
		return n
	}
	if n.base < root.base {
		root.left = insert(root.left, n)
		if root.left.priority > root.priority {
			root = rotateRight(root)
		}
	} else {
		root.right = insert(root.right, n)
		if root.right.priority > root.priority {
			root = rotateLeft(root)
		}
	}
	return root
}

func rotateRight[V any](n *node[V]) *node[V] {
	l := n.left
	n.left = l.right
	l.right = n
	return l
}

func rotateLeft[V any](n *node[V]) *node[V] {
	r := n.right
	n.right = r.left
	r.left = n
	return r
}

// Remove deletes the range based exactly at base, reporting whether an
// entry was removed.
func (m *Map[V]) Remove(base uint64) bool {
	var removed bool
	m.root, removed = remove(m.root, base)
	if removed {
		m.size--
	}
	return removed
}

func remove[V any](root *node[V], base uint64) (*node[V], bool) {
	if root == nil {
		return nil, false
	}
	var removed bool
	switch {
	case base < root.base:
		root.left, removed = remove(root.left, base)
	case base > root.base:
		root.right, removed = remove(root.right, base)
	default:
		return merge(root.left, root.right), true
	}
	return root, removed
}

// merge joins two treaps where every key in l is smaller than every
// key in r.
func merge[V any](l, r *node[V]) *node[V] {
	switch {
	case l == nil:
		return r
	case r == nil:
		return l
	case l.priority > r.priority:
		l.right = merge(l.right, r)
		return l
	default:
		r.left = merge(l, r.left)
		return r
	}
}

// Get returns the value of the range based exactly at base.
func (m *Map[V]) Get(base uint64) (V, bool) {
	n := m.root
	for n != nil {
		switch {
		case base < n.base:
			n = n.left
		case base > n.base:
			n = n.right
		default:
			return n.value, true
		}
	}
	var zero V
	return zero, false
}

// Stab returns the base, size and value of the range containing addr.
// Interior addresses resolve to their containing range, which is how
// object-granularity heap graphs attribute interior pointers.
//
// The intervals are half-open: a stab at exactly base+size misses (it
// is the first address past the range). Zero-size ranges are
// degenerate — [base, base) contains no address — so they can never be
// stabbed and, crucially, are transparent: a zero-size range based
// inside another range must not shadow the enclosing range from
// stabbing queries. (A zero-size entry remains reachable by Get and
// removable by Remove; it simply does not participate in stabs.)
func (m *Map[V]) Stab(addr uint64) (base, size uint64, value V, ok bool) {
	// Under the disjointness invariant, the only range that can
	// contain addr is the non-degenerate range with the largest base
	// <= addr. The subtraction form of the containment check cannot
	// overflow (best.base <= addr), so ranges ending at the top of the
	// address space resolve correctly where base+size would wrap.
	// Fast path: iterative predecessor descent. Only when the
	// predecessor turns out to be degenerate (zero-size) does the
	// slower skipping search run — such entries exist only in
	// malformed traces, never under a real allocator.
	var best *node[V]
	n := m.root
	for n != nil {
		if n.base <= addr {
			best = n
			n = n.right
		} else {
			n = n.left
		}
	}
	if best != nil && best.size == 0 {
		best = stabDesc(m.root, addr)
	}
	if best != nil && addr-best.base < best.size {
		return best.base, best.size, best.value, true
	}
	var zero V
	return 0, 0, zero, false
}

// stabDesc finds the node with the largest base <= addr among nodes
// with size > 0. It prefers the right subtree (larger bases); when the
// node on the descent path is itself degenerate, candidates remain in
// its left subtree, so the search falls back there instead of
// letting the zero-size node mask them. With no degenerate nodes this
// is the ordinary O(log n) predecessor descent.
func stabDesc[V any](n *node[V], addr uint64) *node[V] {
	if n == nil {
		return nil
	}
	if n.base > addr {
		return stabDesc(n.left, addr)
	}
	if r := stabDesc(n.right, addr); r != nil {
		return r
	}
	if n.size > 0 {
		return n
	}
	return stabDesc(n.left, addr)
}

// Len returns the number of ranges held.
func (m *Map[V]) Len() int { return m.size }

// Walk visits every range in ascending base order; iteration stops if
// fn returns false. fn must not mutate the map.
func (m *Map[V]) Walk(fn func(base, size uint64, value V) bool) {
	walk(m.root, fn)
}

func walk[V any](n *node[V], fn func(uint64, uint64, V) bool) bool {
	if n == nil {
		return true
	}
	if !walk(n.left, fn) {
		return false
	}
	if !fn(n.base, n.size, n.value) {
		return false
	}
	return walk(n.right, fn)
}
