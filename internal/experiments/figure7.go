package experiments

import (
	"fmt"
	"strings"

	"heapmd/internal/model"
	"heapmd/internal/sched"
	"heapmd/internal/workloads"
)

// Figure7Row is one benchmark's line in Figure 7(A): how many metrics
// were globally stable and the statistics of the example stable
// metric.
type Figure7Row struct {
	Benchmark     string
	Inputs        int
	StableCount   int
	ExampleMetric string
	AvgChange     float64
	StdDev        float64
	Min, Max      float64
	// Paper reference values for the same row (Figure 7(A)).
	Paper PaperFigure7Row
	// ExampleStable reports whether the example metric was indeed
	// classified globally stable — the reproduction's key claim.
	ExampleStable bool
}

// PaperFigure7Row carries the values printed in the paper.
type PaperFigure7Row struct {
	Inputs   int
	Stable   int
	Metric   string
	Avg, Std float64
	Min, Max float64
}

// paperFigure7A reproduces the paper's Figure 7(A) reference data.
var paperFigure7A = map[string]PaperFigure7Row{
	"twolf":        {3, 6, "Outdeg=2", -0.1, 0.5, 26.4, 32.3},
	"crafty":       {3, 2, "Leaves", 0.1, 0.6, 85.3, 97.1},
	"mcf":          {3, 4, "Roots", 0.1, 3.2, 0, 5.4},
	"vpr":          {6, 1, "Outdeg=1", -0.9, 2.6, 3.7, 36.8},
	"vortex":       {5, 1, "Indeg=1", -0.8, 3, 37.8, 69.5},
	"gzip":         {100, 2, "Leaves", 0, 1.7, 82.9, 90.2},
	"parser":       {100, 3, "In=Out", 0.3, 4.3, 14.2, 17.7},
	"gcc":          {100, 2, "Outdeg=1", -1, 5, 8.7, 37.1},
	"multimedia":   {50, 2, "In=Out", 0.1, 2.6, 6.7, 9.7},
	"webapp":       {50, 2, "Indeg=1", -0.4, 3.1, 43.5, 55.1},
	"game_sim":     {50, 2, "Outdeg=1", 0.1, 1.4, 17.9, 28.8},
	"game_action":  {50, 1, "Indeg=1", 0.2, 2.3, 13.2, 18.5},
	"productivity": {50, 2, "Leaves", 0.1, 1.1, 27.9, 41.1},
}

// Figure7AResult is the full table.
type Figure7AResult struct {
	Rows []Figure7Row
}

// Figure7A reproduces the globally-stable-metrics table: run every
// benchmark on its training inputs, summarize, and report the
// designated example metric's statistics.
func Figure7A(cfg Config) (*Figure7AResult, error) {
	ws := workloads.All()
	// Each benchmark row is an independent training fleet; rows come
	// back in benchmark order, so the table is bit-identical to a
	// serial run at any worker count.
	rows, err := sched.Map(cfg.workers(), len(ws), func(i int) (Figure7Row, error) {
		w := ws[i]
		n := cfg.cap(paperInputs(w.Name()))
		_, build, err := train(w, n, cfg)
		if err != nil {
			return Figure7Row{}, err
		}
		row := Figure7Row{
			Benchmark:   w.Name(),
			Inputs:      n,
			StableCount: build.StableCount(),
			Paper:       paperFigure7A[w.Name()],
		}
		row.ExampleMetric = w.StableMetric()
		for _, mr := range build.Reports {
			if mr.Metric == row.ExampleMetric {
				row.ExampleStable = mr.Class == model.GloballyStable
				row.AvgChange = mr.AvgChange
				row.StdDev = mr.StdDevChange
				row.Min, row.Max = mr.Range.Min, mr.Range.Max
			}
		}
		return row, nil
	})
	if err != nil {
		return nil, err
	}
	return &Figure7AResult{Rows: rows}, nil
}

// String prints the table with paper values alongside.
func (r *Figure7AResult) String() string {
	var b strings.Builder
	b.WriteString("Figure 7(A): globally stable metrics per benchmark\n")
	b.WriteString("(each cell: measured value, paper value in parentheses)\n\n")
	fmt.Fprintf(&b, "%-13s %-8s %-9s %-10s %-14s %-12s %-14s %-14s %s\n",
		"Benchmark", "#Inputs", "#Stable", "Example", "Avg %chg", "Std.dev", "Min %", "Max %", "Example stable?")
	for _, row := range r.Rows {
		p := row.Paper
		fmt.Fprintf(&b, "%-13s %-8s %-9s %-10s %-14s %-12s %-14s %-14s %v\n",
			row.Benchmark,
			fmt.Sprintf("%d(%d)", row.Inputs, p.Inputs),
			fmt.Sprintf("%d(%d)", row.StableCount, p.Stable),
			row.ExampleMetric,
			fmt.Sprintf("%+.1f(%+.1f)", row.AvgChange, p.Avg),
			fmt.Sprintf("%.1f(%.1f)", row.StdDev, p.Std),
			fmt.Sprintf("%.1f(%.1f)", row.Min, p.Min),
			fmt.Sprintf("%.1f(%.1f)", row.Max, p.Max),
			row.ExampleStable)
	}
	return b.String()
}

// Figure7BRow is one commercial benchmark's line in Figure 7(B): the
// per-version evidence that the same metrics stay stable across
// development versions.
type Figure7BRow struct {
	Benchmark     string
	Inputs        int
	Versions      int
	ExampleMetric string
	// StableEveryVersion reports whether the example metric was
	// globally stable in all versions — the paper's headline claim.
	StableEveryVersion bool
	// StableCount is the number of metrics globally stable in EVERY
	// version (the cross-version intersection).
	StableCount int
	// Min/Max are the example metric's range across all versions.
	Min, Max float64
	// PerVersionRange records the example metric's range per version
	// to show range persistence (paper: ranges identical with one
	// exception).
	PerVersionRange []struct{ Min, Max float64 }
	Paper           PaperFigure7Row
}

// paperFigure7B carries Figure 7(B)'s reference rows.
var paperFigure7B = map[string]PaperFigure7Row{
	"multimedia":   {10, 2, "In=Out", 0.2, 2.8, 6.7, 9.7},
	"webapp":       {10, 2, "Indeg=1", -0.4, 3.1, 43.5, 55.1},
	"game_sim":     {10, 2, "Outdeg=1", 0.1, 1.5, 17.9, 28.8},
	"game_action":  {10, 1, "Indeg=1", 0.4, 3.7, 13.2, 19.7},
	"productivity": {10, 2, "Leaves", 0.1, 1.2, 27.9, 41.1},
}

// Figure7BResult is the cross-version table.
type Figure7BResult struct {
	Rows []Figure7BRow
}

// Figure7B runs all five development versions of each commercial
// benchmark on the same inputs and checks that stable metrics (and
// their ranges) persist across versions.
func Figure7B(cfg Config) (*Figure7BResult, error) {
	res := &Figure7BResult{}
	nInputs := cfg.cap(10)
	versions := workloads.Versions
	if cfg.Quick {
		versions = 2
	}
	ws := workloads.Commercials()
	// The experiment cells are the (benchmark, version) pairs — each
	// an independent training fleet. Train and summarize them on the
	// worker pool, then fold per-version builds into rows serially in
	// cell order so the aggregation is order-identical to the old
	// nested loops.
	builds, err := sched.Map(cfg.workers(), len(ws)*versions, func(idx int) (*model.BuildResult, error) {
		w, v := ws[idx/versions], idx%versions+1
		reports, err := workloads.Train(w, nInputs, workloads.RunConfig{Version: v})
		if err != nil {
			return nil, err
		}
		return model.Build(reports, cfg.thresholds())
	})
	if err != nil {
		return nil, err
	}
	for wi, w := range ws {
		row := Figure7BRow{
			Benchmark:     w.Name(),
			Inputs:        nInputs,
			Versions:      versions,
			ExampleMetric: w.StableMetric(),
			Paper:         paperFigure7B[w.Name()],
		}
		stableInAll := map[string]int{}
		exampleStableVersions := 0
		for v := 1; v <= versions; v++ {
			build := builds[wi*versions+v-1]
			for _, mr := range build.Reports {
				if mr.Class == model.GloballyStable {
					stableInAll[mr.Metric]++
				}
				if mr.Metric == row.ExampleMetric && mr.Class == model.GloballyStable {
					exampleStableVersions++
					if len(row.PerVersionRange) == 0 || mr.Range.Min < row.Min {
						row.Min = mr.Range.Min
					}
					if len(row.PerVersionRange) == 0 || mr.Range.Max > row.Max {
						row.Max = mr.Range.Max
					}
					row.PerVersionRange = append(row.PerVersionRange, struct{ Min, Max float64 }{mr.Range.Min, mr.Range.Max})
				}
			}
		}
		row.StableEveryVersion = exampleStableVersions == versions
		for _, count := range stableInAll {
			if count == versions {
				row.StableCount++
			}
		}
		res.Rows = append(res.Rows, row)
	}
	return res, nil
}

// String prints the cross-version table.
func (r *Figure7BResult) String() string {
	var b strings.Builder
	b.WriteString("Figure 7(B): globally stable metrics across development versions\n")
	b.WriteString("(#Stable counts metrics stable in EVERY version; paper values in parentheses)\n\n")
	fmt.Fprintf(&b, "%-13s %-8s %-10s %-9s %-10s %-14s %-14s %s\n",
		"Benchmark", "#Inputs", "#Versions", "#Stable", "Example", "Min %", "Max %", "Stable in all versions?")
	for _, row := range r.Rows {
		p := row.Paper
		fmt.Fprintf(&b, "%-13s %-8d %-10d %-9s %-10s %-14s %-14s %v\n",
			row.Benchmark, row.Inputs, row.Versions,
			fmt.Sprintf("%d(%d)", row.StableCount, p.Stable),
			row.ExampleMetric,
			fmt.Sprintf("%.1f(%.1f)", row.Min, p.Min),
			fmt.Sprintf("%.1f(%.1f)", row.Max, p.Max),
			row.StableEveryVersion)
		for v, rg := range row.PerVersionRange {
			fmt.Fprintf(&b, "%-13s   version %d range: [%.1f, %.1f]\n", "", v+1, rg.Min, rg.Max)
		}
	}
	return b.String()
}
