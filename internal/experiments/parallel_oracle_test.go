package experiments

import (
	"testing"
)

// The parallel-determinism oracle: every experiment must print the
// same bytes whether its cells run serially or on a worker pool. This
// is the contract that makes -parallel safe to default on — nobody
// should ever have to wonder whether a table differs because of
// scheduling.

func TestParallelOracleFigure7A(t *testing.T) {
	serial, err := Figure7A(Config{Quick: true})
	if err != nil {
		t.Fatal(err)
	}
	par, err := Figure7A(Config{Quick: true, Parallel: 4})
	if err != nil {
		t.Fatal(err)
	}
	if s, p := serial.String(), par.String(); s != p {
		t.Errorf("Figure 7A diverges under parallel execution\nserial:\n%s\nparallel:\n%s", s, p)
	}
}

func TestParallelOracleFigure7B(t *testing.T) {
	serial, err := Figure7B(Config{Quick: true})
	if err != nil {
		t.Fatal(err)
	}
	par, err := Figure7B(Config{Quick: true, Parallel: 4})
	if err != nil {
		t.Fatal(err)
	}
	if s, p := serial.String(), par.String(); s != p {
		t.Errorf("Figure 7B diverges under parallel execution\nserial:\n%s\nparallel:\n%s", s, p)
	}
}

func TestParallelOracleTable2(t *testing.T) {
	if testing.Short() {
		t.Skip("two full Table 2 censuses; skipped in -short")
	}
	serial, err := Table2(Config{Quick: true})
	if err != nil {
		t.Fatal(err)
	}
	par, err := Table2(Config{Quick: true, Parallel: 4})
	if err != nil {
		t.Fatal(err)
	}
	if s, p := serial.String(), par.String(); s != p {
		t.Errorf("Table 2 diverges under parallel execution\nserial:\n%s\nparallel:\n%s", s, p)
	}
}
