package experiments

import (
	"strings"
	"testing"

	"heapmd/internal/metrics"
)

var quick = Config{Quick: true}

func TestFigure4(t *testing.T) {
	r, err := Figure4(quick)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 2; i++ {
		if len(r.InEqOut[i]) < 10 || len(r.OutDeg1[i]) < 10 {
			t.Fatalf("input %d has too few samples: %d/%d", i, len(r.InEqOut[i]), len(r.OutDeg1[i]))
		}
	}
	out := r.String()
	for _, want := range []string{"Figure 4", "In=Out", "Outdeg=1"} {
		if !strings.Contains(out, want) {
			t.Errorf("rendering missing %q", want)
		}
	}
}

func TestFigure5(t *testing.T) {
	r, err := Figure5(quick)
	if err != nil {
		t.Fatal(err)
	}
	// Fluctuation series are one shorter than the trimmed series and
	// should hover near zero for vpr's stable metrics.
	for i := 0; i < 2; i++ {
		if len(r.OutDeg1[i]) < 5 {
			t.Fatalf("fluctuation series too short")
		}
	}
	if !strings.Contains(r.String(), "Figure 5") {
		t.Error("missing title")
	}
}

func TestFigure6(t *testing.T) {
	r, err := Figure6(quick)
	if err != nil {
		t.Fatal(err)
	}
	// The reproduction's stability claim: vpr's Outdeg=1 must meet
	// the paper's thresholds on both inputs.
	for i := 0; i < 2; i++ {
		c := r.OutDeg1[i]
		if c.Average > 1 || c.Average < -1 {
			t.Errorf("input %d Outdeg=1 avg change %.2f exceeds ±1%%", i, c.Average)
		}
		if c.StdDev > 5 {
			t.Errorf("input %d Outdeg=1 stddev %.2f exceeds 5", i, c.StdDev)
		}
	}
	out := r.String()
	if !strings.Contains(out, "Figure 6") || !strings.Contains(out, "Input1") {
		t.Error("rendering incomplete")
	}
}

func TestFigure7A(t *testing.T) {
	r, err := Figure7A(quick)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Rows) != 13 {
		t.Fatalf("rows = %d, want 13", len(r.Rows))
	}
	for _, row := range r.Rows {
		if row.StableCount < 1 {
			t.Errorf("%s: no stable metrics", row.Benchmark)
		}
		if !row.ExampleStable {
			t.Errorf("%s: designated metric %s not stable", row.Benchmark, row.ExampleMetric)
		}
		if row.Paper.Metric != row.ExampleMetric {
			t.Errorf("%s: example metric %s does not match paper %s",
				row.Benchmark, row.ExampleMetric, row.Paper.Metric)
		}
	}
	if !strings.Contains(r.String(), "Figure 7(A)") {
		t.Error("missing title")
	}
}

func TestFigure7B(t *testing.T) {
	r, err := Figure7B(quick)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Rows) != 5 {
		t.Fatalf("rows = %d, want 5", len(r.Rows))
	}
	for _, row := range r.Rows {
		if !row.StableEveryVersion {
			t.Errorf("%s: %s not stable across versions", row.Benchmark, row.ExampleMetric)
		}
		if row.StableCount < 1 {
			t.Errorf("%s: no metric stable in every version", row.Benchmark)
		}
	}
}

func TestFigure10(t *testing.T) {
	r, err := Figure10(quick)
	if err != nil {
		t.Fatal(err)
	}
	if r.Violation == nil {
		t.Fatal("no range violation detected on the buggy input")
	}
	if r.Violation.Metric != metrics.InDeg1.String() {
		t.Errorf("violated metric = %s, want Indeg=1", r.Violation.Metric)
	}
	if r.Violation.Direction.String() != "above-max" {
		t.Errorf("direction = %s, want above-max (missing parent pointers inflate Indeg=1)",
			r.Violation.Direction)
	}
	if len(r.CallStacks) == 0 {
		t.Error("no call-stack context captured")
	}
	out := r.String()
	if !strings.Contains(out, "calibrated max") {
		t.Error("rendering missing calibrated bounds")
	}
}

func TestSPECInjection(t *testing.T) {
	r, err := SPECInjection(quick)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Rows) != 5 {
		t.Fatalf("rows = %d", len(r.Rows))
	}
	detected := 0
	for _, row := range r.Rows {
		if row.Detected {
			detected++
		}
	}
	if detected < 4 {
		t.Errorf("only %d/5 injected SPEC bugs detected:\n%s", detected, r)
	}
}

func TestThresholdSweep(t *testing.T) {
	r, err := ThresholdSweep(quick)
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range r.Rows {
		if len(row.Points) != len(sweepSettings) {
			t.Fatalf("%s: %d points", row.Benchmark, len(row.Points))
		}
		// Monotone non-decreasing in the thresholds.
		for i := 1; i < len(row.Points); i++ {
			if row.Points[i].StableCount < row.Points[i-1].StableCount {
				t.Errorf("%s: stable count decreased as thresholds loosened: %+v",
					row.Benchmark, row.Points)
			}
		}
		// Tightest setting must not beat the paper baseline.
		if row.Points[0].StableCount > row.BaselineStable {
			t.Errorf("%s: tighter thresholds yielded more stable metrics", row.Benchmark)
		}
	}
}

func TestTable1Quick(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-scenario study in -short mode")
	}
	r, err := Table1(quick)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Rows) != 3 {
		t.Fatalf("rows = %d", len(r.Rows))
	}
	for _, row := range r.Rows {
		// Division of labour: SWAT finds at least as many leaks as
		// HeapMD on every application (Table 1's structural claim).
		if row.SWATLeaks < row.HeapMDLeaks {
			t.Errorf("%s: SWAT %d < HeapMD %d", row.Program, row.SWATLeaks, row.HeapMDLeaks)
		}
		if row.HeapMDFP != 0 {
			t.Errorf("%s: HeapMD false positives = %d", row.Program, row.HeapMDFP)
		}
	}
	if !strings.Contains(r.String(), "Table 1") {
		t.Error("missing title")
	}
}

func TestTable2Quick(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-scenario study in -short mode")
	}
	r, err := Table2(quick)
	if err != nil {
		t.Fatal(err)
	}
	if r.TotalPlanted != 40 {
		t.Fatalf("planted = %d, want the paper's 40", r.TotalPlanted)
	}
	// At reduced training scale a scenario or two may slip, but the
	// bulk of the census must be found and clean runs must be quiet.
	if r.TotalFound < 32 {
		t.Errorf("found only %d of 40 at quick scale:\n%s", r.TotalFound, r)
	}
	for _, row := range r.Rows {
		if row.FalsePos != 0 {
			t.Errorf("%s: %d false positives on clean runs", row.Program, row.FalsePos)
		}
	}
	// Planted distribution matches the paper exactly.
	wantPlanted := map[string][4]int{
		"multimedia":   {2, 2, 3, 1},
		"webapp":       {4, 0, 5, 1},
		"game_sim":     {3, 3, 2, 1},
		"game_action":  {2, 1, 3, 2},
		"productivity": {0, 0, 4, 1},
	}
	for _, row := range r.Rows {
		w := wantPlanted[row.Program]
		got := [4]int{
			row.Planted[ProgrammingTypo], row.Planted[SharedState],
			row.Planted[DataStructInvariant], row.Planted[Indirect],
		}
		if got != w {
			t.Errorf("%s planted %v, want %v", row.Program, got, w)
		}
	}
}

func TestGranularity(t *testing.T) {
	r, err := Granularity(quick)
	if err != nil {
		t.Fatal(err)
	}
	// Object granularity: layout-invariant.
	if r.ObjectA != r.ObjectB {
		t.Errorf("object granularity differs by layout: %v vs %v", r.ObjectA, r.ObjectB)
	}
	// Field granularity: layout A has only two in==out vertices,
	// layout B all but two (paper Figure 3's exact claim).
	if r.FieldA >= 50 {
		t.Errorf("field/layout A In=Out = %v, want small", r.FieldA)
	}
	if r.FieldB <= 50 {
		t.Errorf("field/layout B In=Out = %v, want large", r.FieldB)
	}
	if !strings.Contains(r.String(), "Figure 3") {
		t.Error("missing title")
	}
}
