// Package experiments regenerates every table and figure of the
// paper's evaluation (Sections 3 and 4) on the simulated benchmark
// suite. Each experiment returns a structured result whose String
// method prints a paper-style table or chart, together with the
// paper's reference numbers where the paper states them, so the
// comparison EXPERIMENTS.md records is mechanical.
//
// The experiments run at two scales. Paper scale uses the input
// counts of Figure 7 (up to 100 inputs for gzip/parser/gcc, 50 per
// commercial application) and takes a minute or two in total; Quick
// scale caps every input set for use in tests and benchmarks.
package experiments

import (
	"fmt"

	"heapmd/internal/logger"
	"heapmd/internal/model"
	"heapmd/internal/sched"
	"heapmd/internal/workloads"
)

// Config controls experiment scale.
type Config struct {
	// Quick caps input counts (5 training, 3 test) so experiments
	// finish in test/bench budgets.
	Quick bool
	// Thresholds for the summarizer; zero value means
	// model.Defaults().
	Thresholds model.Thresholds
	// Parallel is the worker count for independent experiment cells
	// (benchmark rows, per-version training fleets, injection
	// scenarios): 0 runs serially, <0 uses GOMAXPROCS. Every
	// experiment aggregates cell results in deterministic cell order,
	// so outputs are bit-identical to a serial run.
	Parallel int
}

// workers resolves Parallel into a concrete worker count (0 = serial).
func (c Config) workers() int {
	if c.Parallel == 0 {
		return 1
	}
	return sched.Workers(c.Parallel)
}

func (c Config) thresholds() model.Thresholds {
	t := c.Thresholds
	if t.MaxAvgChange == 0 && t.MaxStdDev == 0 {
		return model.Defaults()
	}
	return t
}

// cap applies Quick-mode input capping.
func (c Config) cap(n int) int {
	if c.Quick && n > 5 {
		return 5
	}
	return n
}

func (c Config) capTest(n int) int {
	if c.Quick && n > 3 {
		return 3
	}
	return n
}

// paperInputs returns the number of training inputs Figure 7(A) used
// for each benchmark.
func paperInputs(name string) int {
	switch name {
	case "twolf", "crafty", "mcf":
		return 3
	case "vpr":
		return 6
	case "vortex":
		return 5
	case "gzip", "parser", "gcc":
		return 100
	default: // the five commercial applications
		return 50
	}
}

// train builds a model for the workload from its first n inputs.
func train(w workloads.Workload, n int, cfg Config) ([]*logger.Report, *model.BuildResult, error) {
	reports, err := workloads.Train(w, n, workloads.RunConfig{})
	if err != nil {
		return nil, nil, fmt.Errorf("training %s: %w", w.Name(), err)
	}
	res, err := model.Build(reports, cfg.thresholds())
	if err != nil {
		return nil, nil, fmt.Errorf("summarizing %s: %w", w.Name(), err)
	}
	return reports, res, nil
}
