package experiments

import (
	"fmt"
	"strings"

	"heapmd/internal/detect"
	"heapmd/internal/event"
	"heapmd/internal/faults"
	"heapmd/internal/sched"
	"heapmd/internal/swat"
	"heapmd/internal/workloads"
)

// BugCategory classifies a scenario per the paper's Figure 8/9
// taxonomy.
type BugCategory int

const (
	ProgrammingTypo BugCategory = iota
	SharedState
	DataStructInvariant
	Indirect
	// LeakReachable and LeakSmall are the Table 1 / Section 4.2
	// negative-control categories.
	LeakReachable
	LeakSmall
)

func (c BugCategory) String() string {
	switch c {
	case ProgrammingTypo:
		return "programming-typo"
	case SharedState:
		return "shared-state"
	case DataStructInvariant:
		return "ds-invariant"
	case Indirect:
		return "indirect"
	case LeakReachable:
		return "leak-reachable"
	case LeakSmall:
		return "leak-small"
	default:
		return fmt.Sprintf("BugCategory(%d)", int(c))
	}
}

// Scenario is one synthetic bug: a fault wired into one workload with
// a specific configuration. Distinct scenarios of the same category
// on the same workload differ in configuration — different call-site
// activation probabilities and budgets, the way the paper's distinct
// bugs shared mechanisms but lived at different sites.
type Scenario struct {
	Name     string
	Workload string
	Category BugCategory
	Fault    string
	Config   faults.Config
	// LeakSite names the allocation site SWAT must report for the
	// scenario to count as a SWAT detection (Table 1 scenarios).
	LeakSite string
}

// scenarioOutcome is the per-scenario result of a detection study.
type scenarioOutcome struct {
	Scenario Scenario
	// HeapMD: detected by a range violation (or extreme-stability
	// for the poorly-disguised oct-DAG) on at least one test input.
	HeapMD bool
	// SWATFound: SWAT reported the scenario's leak site (Table 1).
	SWATFound bool
	// Crashed counts runs aborted by simulator faults (double free
	// etc.) — dangling-pointer bugs occasionally do crash.
	Crashed int
	// DetectedOn names the first input the bug was caught on.
	DetectedOn string
	// Metric is the violated metric on the first detection.
	Metric string
}

// runScenario trains the workload (clean) and tests the scenario's
// fault on held-out inputs, with optional SWAT attached.
func runScenario(sc Scenario, trainN, testN int, cfg Config, withSWAT bool) (*scenarioOutcome, error) {
	w, err := workloads.Get(sc.Workload)
	if err != nil {
		return nil, err
	}
	_, build, err := train(w, trainN, cfg)
	if err != nil {
		return nil, err
	}
	out := &scenarioOutcome{Scenario: sc}
	all := w.Inputs(trainN + testN)
	for _, in := range all[trainN:] {
		plan := faults.NewPlan().Enable(sc.Fault, sc.Config)
		var sw *swat.Detector
		rc := workloads.RunConfig{Plan: plan}
		if withSWAT {
			// MinStaleCount 2: the paper's smallest synthesized
			// leaks abandon a couple of objects, below SWAT's
			// default site threshold but within its sensitivity.
			sw = swat.New(swat.Options{MinStaleCount: 2})
			rc.ExtraSinks = []event.Sink{sw}
		}
		rep, p, err := workloads.RunLogged(w, in, rc)
		if err != nil {
			out.Crashed++
			continue
		}
		findings := detect.CheckReport(build.Model, rep, detect.Options{})
		for _, f := range findings {
			if f.Kind == detect.RangeViolation || f.Kind == detect.ExtremeStability {
				if !out.HeapMD {
					out.HeapMD = true
					out.DetectedOn = in.Name
					out.Metric = f.Metric
				}
			}
		}
		if sw != nil && sc.LeakSite != "" {
			for _, l := range sw.Report(p.Sym()) {
				if l.SiteName == sc.LeakSite {
					out.SWATFound = true
				}
			}
		}
		if out.HeapMD && (!withSWAT || out.SWATFound) {
			break // enough evidence for this scenario
		}
	}
	return out, nil
}

// ---------------------------------------------------------------------------
// Table 1: SWAT vs HeapMD on synthesized leak inputs.

// table1Scenarios reproduces the paper's synthesized leak study: per
// application, a mix of leak bugs only some of which move heap-graph
// metrics. Paper counts — multimedia: SWAT 4 / HeapMD 2; web-app:
// SWAT 9 / HeapMD 4; game-sim: SWAT 4 / HeapMD 3.
func table1Scenarios() []Scenario {
	always := faults.Config{}
	return []Scenario{
		// multimedia: 2 typo leaks (both tools), 1 reachable + 1
		// small (SWAT only).
		{"mm-typo-1", "multimedia", ProgrammingTypo, faults.TypoLeak, always, "mm.props.chain"},
		{"mm-typo-2", "multimedia", ProgrammingTypo, faults.TypoLeak, faults.Config{Prob: 0.6}, "mm.props.chain"},
		{"mm-reach", "multimedia", LeakReachable, faults.ReachableLeak, faults.Config{MaxTriggers: 4}, "mm.cacheStore"},
		{"mm-small", "multimedia", LeakSmall, faults.SmallLeak, faults.Config{MaxTriggers: 2}, "mm.leak"},

		// webapp: 4 typo leaks, 3 reachable, 2 small.
		{"web-typo-1", "webapp", ProgrammingTypo, faults.TypoLeak, always, "web.props.chain"},
		{"web-typo-2", "webapp", ProgrammingTypo, faults.TypoLeak, faults.Config{Prob: 0.7}, "web.props.chain"},
		{"web-typo-3", "webapp", ProgrammingTypo, faults.TypoLeak, faults.Config{Prob: 0.5}, "web.props.chain"},
		{"web-typo-4", "webapp", ProgrammingTypo, faults.TypoLeak, faults.Config{Prob: 0.4}, "web.props.chain"},
		{"web-reach-1", "webapp", LeakReachable, faults.ReachableLeak, faults.Config{MaxTriggers: 5}, "web.cacheStore"},
		{"web-reach-2", "webapp", LeakReachable, faults.ReachableLeak, faults.Config{MaxTriggers: 4}, "web.cacheStore"},
		{"web-reach-3", "webapp", LeakReachable, faults.ReachableLeak, faults.Config{MaxTriggers: 3}, "web.cacheStore"},
		{"web-small-1", "webapp", LeakSmall, faults.SmallLeak, faults.Config{MaxTriggers: 2}, "web.leak"},
		{"web-small-2", "webapp", LeakSmall, faults.SmallLeak, faults.Config{MaxTriggers: 2}, "web.leak"},

		// game_sim: 3 typo leaks, 1 reachable.
		{"sim-typo-1", "game_sim", ProgrammingTypo, faults.TypoLeak, always, "sim.props.chain"},
		{"sim-typo-2", "game_sim", ProgrammingTypo, faults.TypoLeak, faults.Config{Prob: 0.7}, "sim.props.chain"},
		{"sim-typo-3", "game_sim", ProgrammingTypo, faults.TypoLeak, faults.Config{Prob: 0.5}, "sim.props.chain"},
		{"sim-reach", "game_sim", LeakReachable, faults.ReachableLeak, faults.Config{MaxTriggers: 4}, "sim.cacheStore"},
	}
}

// Table1Row is one application's line in Table 1.
type Table1Row struct {
	Program     string
	SWATLeaks   int
	SWATFP      int
	HeapMDLeaks int
	HeapMDFP    int
	// Paper reference values.
	PaperSWAT, PaperSWATFP, PaperHeapMD, PaperHeapMDFP int
}

// Table1Result is the SWAT-vs-HeapMD comparison.
type Table1Result struct {
	Rows     []Table1Row
	Outcomes []*scenarioOutcome
}

// Table1 runs the synthesized-leak comparison.
func Table1(cfg Config) (*Table1Result, error) {
	paper := map[string][4]int{ // SWAT, SWAT FP, HeapMD, HeapMD FP
		"multimedia": {4, 0, 2, 0},
		"webapp":     {9, 1, 4, 0},
		"game_sim":   {4, 1, 3, 0},
	}
	trainN, testN := cfg.cap(25), cfg.capTest(8)
	// Every scenario — and later every application's clean-run
	// false-positive sweep — is an independent cell: it trains its own
	// model and runs its own inputs. Fan the cells out on the worker
	// pool, then fold the ordered results exactly as the serial loops
	// did, so the table is bit-identical at any worker count.
	scs := table1Scenarios()
	outcomes, err := sched.Map(cfg.workers(), len(scs), func(i int) (*scenarioOutcome, error) {
		return runScenario(scs[i], trainN, testN, cfg, true)
	})
	if err != nil {
		return nil, err
	}
	res := &Table1Result{Outcomes: outcomes}
	found := map[string]*Table1Row{}
	for _, out := range outcomes {
		sc := out.Scenario
		row := found[sc.Workload]
		if row == nil {
			p := paper[sc.Workload]
			row = &Table1Row{Program: sc.Workload,
				PaperSWAT: p[0], PaperSWATFP: p[1], PaperHeapMD: p[2], PaperHeapMDFP: p[3]}
			found[sc.Workload] = row
		}
		if out.SWATFound {
			row.SWATLeaks++
		}
		if out.HeapMD {
			row.HeapMDLeaks++
		}
	}
	// False positives: clean runs — HeapMD range violations and SWAT
	// reports at sites no scenario leaks from.
	knownLeakSites := map[string]map[string]bool{}
	for _, sc := range scs {
		if knownLeakSites[sc.Workload] == nil {
			knownLeakSites[sc.Workload] = map[string]bool{}
		}
		knownLeakSites[sc.Workload][sc.LeakSite] = true
	}
	names := []string{"multimedia", "webapp", "game_sim"}
	type fpCount struct{ heapmd, swat int }
	fps, err := sched.Map(cfg.workers(), len(names), func(i int) (fpCount, error) {
		name := names[i]
		var fp fpCount
		w, err := workloads.Get(name)
		if err != nil {
			return fp, err
		}
		_, build, err := train(w, trainN, cfg)
		if err != nil {
			return fp, err
		}
		all := w.Inputs(trainN + testN)
		for _, in := range all[trainN:] {
			sw := swat.New(swat.Options{MinStaleCount: 2})
			rep, p, err := workloads.RunLogged(w, in, workloads.RunConfig{
				ExtraSinks: []event.Sink{sw},
			})
			if err != nil {
				return fp, err
			}
			for _, f := range detect.CheckReport(build.Model, rep, detect.Options{}) {
				if f.Kind == detect.RangeViolation {
					fp.heapmd++
				}
			}
			for _, l := range sw.Report(p.Sym()) {
				if !knownLeakSites[name][l.SiteName] {
					fp.swat++
				}
			}
		}
		return fp, nil
	})
	if err != nil {
		return nil, err
	}
	for i, name := range names {
		found[name].HeapMDFP = fps[i].heapmd
		found[name].SWATFP = fps[i].swat
		res.Rows = append(res.Rows, *found[name])
	}
	return res, nil
}

// String prints the comparison table.
func (r *Table1Result) String() string {
	var b strings.Builder
	b.WriteString("Table 1: memory leaks found by SWAT and HeapMD on synthesized leak inputs\n")
	b.WriteString("(measured, paper value in parentheses; FP counted across all clean test runs)\n\n")
	fmt.Fprintf(&b, "%-13s %-16s %-16s %-16s %-16s\n",
		"Program", "SWAT leaks", "SWAT FP", "HeapMD leaks", "HeapMD FP")
	for _, row := range r.Rows {
		fmt.Fprintf(&b, "%-13s %-16s %-16s %-16s %-16s\n", row.Program,
			fmt.Sprintf("%d(%d)", row.SWATLeaks, row.PaperSWAT),
			fmt.Sprintf("%d(%d)", row.SWATFP, row.PaperSWATFP),
			fmt.Sprintf("%d(%d)", row.HeapMDLeaks, row.PaperHeapMD),
			fmt.Sprintf("%d(%d)", row.HeapMDFP, row.PaperHeapMDFP))
	}
	b.WriteString("\nper-scenario outcomes:\n")
	for _, o := range r.Outcomes {
		fmt.Fprintf(&b, "  %-12s %-16s swat=%-5v heapmd=%-5v metric=%s\n",
			o.Scenario.Name, o.Scenario.Category, o.SWATFound, o.HeapMD, o.Metric)
	}
	return b.String()
}

// ---------------------------------------------------------------------------
// Table 2: the full bug census.

// table2Scenarios lays out the paper's 40 bugs: 11 programming typos,
// 6 shared-state errors, 17 data-structure-invariant violations and 6
// indirect bugs, distributed across the five applications exactly as
// Table 2 reports.
func table2Scenarios() []Scenario {
	always := faults.Config{}
	p := func(prob float64) faults.Config { return faults.Config{Prob: prob} }
	return []Scenario{
		// multimedia: 2 typos, 2 shared, 3 invariants, 1 indirect.
		{"mm-typo-1", "multimedia", ProgrammingTypo, faults.TypoLeak, always, ""},
		{"mm-typo-2", "multimedia", ProgrammingTypo, faults.TypoLeak, p(0.6), ""},
		{"mm-shared-1", "multimedia", SharedState, faults.SharedFree, always, ""},
		{"mm-shared-2", "multimedia", SharedState, faults.SharedFree, p(0.6), ""},
		{"mm-inv-1", "multimedia", DataStructInvariant, faults.DListNoPrev, always, ""},
		{"mm-inv-2", "multimedia", DataStructInvariant, faults.DListNoPrev, p(0.7), ""},
		{"mm-inv-3", "multimedia", DataStructInvariant, faults.DListNoPrev, p(0.5), ""},
		{"mm-ind-1", "multimedia", Indirect, faults.BadHash, always, ""},

		// webapp: 4 typos, 0 shared, 5 invariants, 1 indirect.
		{"web-typo-1", "webapp", ProgrammingTypo, faults.TypoLeak, always, ""},
		{"web-typo-2", "webapp", ProgrammingTypo, faults.TypoLeak, p(0.7), ""},
		{"web-typo-3", "webapp", ProgrammingTypo, faults.TypoLeak, p(0.5), ""},
		{"web-typo-4", "webapp", ProgrammingTypo, faults.TypoLeak, p(0.4), ""},
		{"web-inv-1", "webapp", DataStructInvariant, faults.DListNoPrev, always, ""},
		{"web-inv-2", "webapp", DataStructInvariant, faults.DListNoPrev, p(0.8), ""},
		{"web-inv-3", "webapp", DataStructInvariant, faults.DListNoPrev, p(0.6), ""},
		{"web-inv-4", "webapp", DataStructInvariant, faults.DListNoPrev, p(0.5), ""},
		{"web-inv-5", "webapp", DataStructInvariant, faults.DListNoPrev, p(0.4), ""},
		{"web-ind-1", "webapp", Indirect, faults.BadHash, always, ""},

		// game_sim: 3 typos, 3 shared, 2 invariants, 1 indirect.
		{"sim-typo-1", "game_sim", ProgrammingTypo, faults.TypoLeak, always, ""},
		{"sim-typo-2", "game_sim", ProgrammingTypo, faults.TypoLeak, p(0.7), ""},
		{"sim-typo-3", "game_sim", ProgrammingTypo, faults.TypoLeak, p(0.5), ""},
		{"sim-shared-1", "game_sim", SharedState, faults.SharedFree, always, ""},
		{"sim-shared-2", "game_sim", SharedState, faults.SharedFree, p(0.8), ""},
		{"sim-shared-3", "game_sim", SharedState, faults.SharedFree, p(0.9), ""},
		{"sim-inv-1", "game_sim", DataStructInvariant, faults.DListNoPrev, always, ""},
		{"sim-inv-2", "game_sim", DataStructInvariant, faults.DListNoPrev, p(0.6), ""},
		{"sim-ind-1", "game_sim", Indirect, faults.AtypicalGraph, always, ""},

		// game_action: 2 typos, 1 shared, 3 invariants, 2 indirect.
		{"act-typo-1", "game_action", ProgrammingTypo, faults.TypoLeak, always, ""},
		{"act-typo-2", "game_action", ProgrammingTypo, faults.TypoLeak, p(0.6), ""},
		{"act-shared-1", "game_action", SharedState, faults.SharedFree, always, ""},
		{"act-inv-1", "game_action", DataStructInvariant, faults.TreeNoParent, always, ""},
		{"act-inv-2", "game_action", DataStructInvariant, faults.TreeNoParent, p(0.6), ""},
		{"act-inv-3", "game_action", DataStructInvariant, faults.OctDAG, always, ""},
		{"act-ind-1", "game_action", Indirect, faults.SingleChild, always, ""},
		{"act-ind-2", "game_action", Indirect, faults.SingleChild, p(0.7), ""},

		// productivity: 0 typos, 0 shared, 4 invariants, 1 indirect.
		{"prod-inv-1", "productivity", DataStructInvariant, faults.DListNoPrev, always, ""},
		{"prod-inv-2", "productivity", DataStructInvariant, faults.DListNoPrev, p(0.8), ""},
		{"prod-inv-3", "productivity", DataStructInvariant, faults.DListNoPrev, p(0.6), ""},
		{"prod-inv-4", "productivity", DataStructInvariant, faults.DListNoPrev, p(0.4), ""},
		{"prod-ind-1", "productivity", Indirect, faults.BadHash, always, ""},
	}
}

// Table2Row is one application's row of the bug census.
type Table2Row struct {
	Program                                                 string
	Found                                                   map[BugCategory]int
	Planted                                                 map[BugCategory]int
	FalsePos                                                int
	PaperTypos, PaperShared, PaperInvariants, PaperIndirect int
}

// Table2Result is the bug census.
type Table2Result struct {
	Rows                     []Table2Row
	Outcomes                 []*scenarioOutcome
	TotalFound, TotalPlanted int
}

// Table2 plants the paper's 40-bug census and reports how many each
// application's model catches, plus clean-run false positives.
func Table2(cfg Config) (*Table2Result, error) {
	paper := map[string][4]int{ // typos, shared, invariants, indirect
		"multimedia":   {2, 2, 3, 1},
		"webapp":       {4, 0, 5, 1},
		"game_sim":     {3, 3, 2, 1},
		"game_action":  {2, 1, 3, 2},
		"productivity": {0, 0, 4, 1},
	}
	trainN, testN := cfg.cap(25), cfg.capTest(10)
	rows := map[string]*Table2Row{}
	order := []string{"multimedia", "webapp", "game_sim", "game_action", "productivity"}
	for _, name := range order {
		p := paper[name]
		rows[name] = &Table2Row{
			Program:    name,
			Found:      map[BugCategory]int{},
			Planted:    map[BugCategory]int{},
			PaperTypos: p[0], PaperShared: p[1], PaperInvariants: p[2], PaperIndirect: p[3],
		}
	}
	// The 40 scenarios and the five clean-run sweeps are independent
	// cells; run them on the worker pool and aggregate in cell order
	// (see Table1 for the determinism argument).
	scs := table2Scenarios()
	outcomes, err := sched.Map(cfg.workers(), len(scs), func(i int) (*scenarioOutcome, error) {
		return runScenario(scs[i], trainN, testN, cfg, false)
	})
	if err != nil {
		return nil, err
	}
	res := &Table2Result{Outcomes: outcomes}
	for _, out := range outcomes {
		sc := out.Scenario
		rows[sc.Workload].Planted[sc.Category]++
		res.TotalPlanted++
		if out.HeapMD {
			rows[sc.Workload].Found[sc.Category]++
			res.TotalFound++
		}
	}
	// Clean-run false positives per application.
	fps, err := sched.Map(cfg.workers(), len(order), func(i int) (int, error) {
		w, err := workloads.Get(order[i])
		if err != nil {
			return 0, err
		}
		_, build, err := train(w, trainN, cfg)
		if err != nil {
			return 0, err
		}
		falsePos := 0
		all := w.Inputs(trainN + testN)
		for _, in := range all[trainN:] {
			rep, _, err := workloads.RunLogged(w, in, workloads.RunConfig{})
			if err != nil {
				return 0, err
			}
			for _, f := range detect.CheckReport(build.Model, rep, detect.Options{}) {
				if f.Kind == detect.RangeViolation {
					falsePos++
				}
			}
		}
		return falsePos, nil
	})
	if err != nil {
		return nil, err
	}
	for i, name := range order {
		rows[name].FalsePos = fps[i]
		res.Rows = append(res.Rows, *rows[name])
	}
	return res, nil
}

// String prints the census in the paper's Table 2 shape.
func (r *Table2Result) String() string {
	var b strings.Builder
	b.WriteString("Table 2: summary of bugs found by HeapMD\n")
	b.WriteString("(found/planted per category; paper count in parentheses)\n\n")
	fmt.Fprintf(&b, "%-13s %-14s %-14s %-18s %-12s %s\n",
		"Program", "Prog. typos", "Shared state", "DS invariants", "Indirect", "False positives")
	cell := func(row Table2Row, c BugCategory, paper int) string {
		return fmt.Sprintf("%d/%d(%d)", row.Found[c], row.Planted[c], paper)
	}
	totals := [4]int{}
	for _, row := range r.Rows {
		fmt.Fprintf(&b, "%-13s %-14s %-14s %-18s %-12s %d\n", row.Program,
			cell(row, ProgrammingTypo, row.PaperTypos),
			cell(row, SharedState, row.PaperShared),
			cell(row, DataStructInvariant, row.PaperInvariants),
			cell(row, Indirect, row.PaperIndirect),
			row.FalsePos)
		totals[0] += row.Found[ProgrammingTypo]
		totals[1] += row.Found[SharedState]
		totals[2] += row.Found[DataStructInvariant]
		totals[3] += row.Found[Indirect]
	}
	fmt.Fprintf(&b, "%-13s %-14s %-14s %-18s %-12s\n", "Total",
		fmt.Sprintf("%d(11)", totals[0]), fmt.Sprintf("%d(6)", totals[1]),
		fmt.Sprintf("%d(17)", totals[2]), fmt.Sprintf("%d(6)", totals[3]))
	fmt.Fprintf(&b, "\nbugs found: %d of %d planted (paper: 40 found)\n", r.TotalFound, r.TotalPlanted)
	b.WriteString("\nper-scenario outcomes:\n")
	for _, o := range r.Outcomes {
		status := "MISSED"
		if o.HeapMD {
			status = "found via " + o.Metric
		}
		if o.Crashed > 0 {
			status += fmt.Sprintf(" (%d runs crashed)", o.Crashed)
		}
		fmt.Fprintf(&b, "  %-14s %-18s %s\n", o.Scenario.Name, o.Scenario.Category, status)
	}
	return b.String()
}
