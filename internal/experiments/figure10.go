package experiments

import (
	"fmt"
	"strings"

	"heapmd/internal/detect"
	"heapmd/internal/faults"
	"heapmd/internal/logger"
	"heapmd/internal/metrics"
	"heapmd/internal/plot"
	"heapmd/internal/stats"
	"heapmd/internal/workloads"
)

// Figure10Result reproduces the paper's Figure 10: the percentage of
// vertices with indegree = 1 in PC Game/Action violating its
// calibrated bounds when the missing-parent-pointer bug is active.
type Figure10Result struct {
	Series      []float64   // Indeg=1 trajectory on the buggy input
	Calibrated  stats.Range // trained bounds
	Violation   *detect.Finding
	CallStacks  []string // symbolized context around the violation
	TrainInputs int
}

// Figure10 trains PC Game/Action on clean inputs, then replays a
// held-out input with the TreeNoParent fault and captures the metric
// crossing its calibrated maximum.
func Figure10(cfg Config) (*Figure10Result, error) {
	w, err := workloads.Get("game_action")
	if err != nil {
		return nil, err
	}
	n := cfg.cap(25)
	_, build, err := train(w, n, cfg)
	if err != nil {
		return nil, err
	}
	rng, ok := build.Model.RangeOf(metrics.InDeg1)
	if !ok {
		return nil, fmt.Errorf("figure10: Indeg=1 not stable after training")
	}
	res := &Figure10Result{Calibrated: rng, TrainInputs: n}

	// The paper's bug fired from "a specific call-site that was only
	// exercised on the buggy input": a held-out input with the fault
	// plan active.
	testIn := w.Inputs(n + 1)[n]
	plan := faults.NewPlan().EnableAlways(faults.TreeNoParent)

	// Online detection: attach the detector as a sample observer so
	// call stacks are captured around the crossing.
	det := detect.New(build.Model, metrics.DefaultSuite(), detect.Options{SkipStart: build.Model.SkipStartSamples()})
	rep, p, err := workloads.RunLogged(w, testIn, workloads.RunConfig{
		Plan:      plan,
		Observers: []logger.SampleObserver{det},
	})
	if err != nil {
		return nil, err
	}
	det.Finish()
	res.Series = rep.Series(metrics.InDeg1)
	for _, f := range det.Findings() {
		if f.Kind == detect.RangeViolation && f.Metric == metrics.InDeg1.String() {
			res.Violation = f
			for _, c := range f.Captures {
				res.CallStacks = append(res.CallStacks,
					fmt.Sprintf("tick %d (%.2f%%): %s", c.Tick, c.Value,
						strings.Join(p.Sym().Names(c.Stack), " > ")))
			}
			break
		}
	}
	return res, nil
}

// String renders the trajectory with the calibrated bounds and the
// captured call-stack context.
func (r *Figure10Result) String() string {
	var b strings.Builder
	b.WriteString("Figure 10: Indeg=1 violating its calibrated range for PC Game/Action\n")
	fmt.Fprintf(&b, "(trained on %d clean inputs; missing-parent-pointer fault active)\n\n", r.TrainInputs)
	b.WriteString(plot.Render(plot.Options{
		Width: 64, Height: 14,
		HLines: map[string]float64{
			"calibrated max": r.Calibrated.Max,
			"calibrated min": r.Calibrated.Min,
		},
	}, plot.Series{Name: "Indeg=1 (%)", Values: r.Series}))
	if r.Violation != nil {
		fmt.Fprintf(&b, "\nviolation: %s crossed %s at tick %d (value %.2f%%, +%d recurrences)\n",
			r.Violation.Metric, r.Violation.Direction, r.Violation.Tick,
			r.Violation.Value, r.Violation.Recurrences)
		if len(r.CallStacks) > 0 {
			b.WriteString("call-stack context (circular buffer):\n")
			for _, s := range r.CallStacks {
				fmt.Fprintf(&b, "  %s\n", s)
			}
		}
	} else {
		b.WriteString("\nno violation detected (unexpected)\n")
	}
	return b.String()
}
