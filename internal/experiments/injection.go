package experiments

import (
	"fmt"
	"strings"

	"heapmd/internal/faults"
	"heapmd/internal/sched"
)

// InjectionRow is one (SPEC benchmark, injected bug) outcome of the
// Section 4.2 validation study: "we also validated HeapMD by using it
// to successfully identify artificially-injected bugs in several SPEC
// 2000 benchmarks."
type InjectionRow struct {
	Benchmark string
	Fault     string
	Detected  bool
	Metric    string
}

// InjectionResult is the study's outcome table.
type InjectionResult struct {
	Rows []InjectionRow
}

// specInjectionScenarios pairs each SPEC-like benchmark with the
// fault its data structures expose.
func specInjectionScenarios() []Scenario {
	always := faults.Config{}
	return []Scenario{
		{"crafty-dlist", "crafty", DataStructInvariant, faults.DListNoPrev, always, ""},
		{"parser-badhash", "parser", Indirect, faults.BadHash, always, ""},
		{"gcc-singlechild", "gcc", Indirect, faults.SingleChild, always, ""},
		{"mcf-atypical", "mcf", Indirect, faults.AtypicalGraph, always, ""},
		{"gzip-singlechild", "gzip", Indirect, faults.SingleChild, always, ""},
	}
}

// SPECInjection injects one bug into each of five SPEC-like
// benchmarks and checks HeapMD detects it against a clean model.
func SPECInjection(cfg Config) (*InjectionResult, error) {
	scs := specInjectionScenarios()
	rows, err := sched.Map(cfg.workers(), len(scs), func(i int) (InjectionRow, error) {
		sc := scs[i]
		trainN := cfg.cap(paperInputs(sc.Workload))
		out, err := runScenario(sc, trainN, cfg.capTest(6), cfg, false)
		if err != nil {
			return InjectionRow{}, err
		}
		return InjectionRow{
			Benchmark: sc.Workload,
			Fault:     sc.Fault,
			Detected:  out.HeapMD,
			Metric:    out.Metric,
		}, nil
	})
	if err != nil {
		return nil, err
	}
	return &InjectionResult{Rows: rows}, nil
}

// String prints the injection study outcome.
func (r *InjectionResult) String() string {
	var b strings.Builder
	b.WriteString("Section 4.2: artificially-injected bugs in SPEC benchmarks\n\n")
	fmt.Fprintf(&b, "%-10s %-26s %-10s %s\n", "Benchmark", "Injected fault", "Detected", "Violated metric")
	for _, row := range r.Rows {
		metric := row.Metric
		if metric == "" {
			metric = "-"
		}
		fmt.Fprintf(&b, "%-10s %-26s %-10v %s\n", row.Benchmark, row.Fault, row.Detected, metric)
	}
	return b.String()
}
