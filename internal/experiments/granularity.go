package experiments

import (
	"fmt"
	"strings"

	"heapmd/internal/heap"
	"heapmd/internal/logger"
	"heapmd/internal/metrics"
)

// GranularityResult demonstrates the paper's Figure 3 argument for
// object-granularity heap-graphs: two layouts of the same k-node
// linked list — data field first (layout A) vs next-pointer first
// (layout B) — produce identical metrics at object granularity but
// wildly different In=Out percentages at field granularity, because
// field-granularity metrics are sensitive to where pointers sit
// inside objects.
type GranularityResult struct {
	K int // list length
	// InEqOut[granularity][layout] percentages.
	ObjectA, ObjectB float64
	FieldA, FieldB   float64
}

// buildList lays out a k-node list under a logger at the given
// granularity. Layout A stores [data, next] with next aiming at the
// head of the next node; layout B stores [next, data] with next
// aiming at the next node's next-field.
func buildList(gran logger.Granularity, layoutB bool, k int) (*logger.Logger, error) {
	h := heap.New()
	l := logger.New(logger.Options{Granularity: gran, Frequency: 1})
	h.Subscribe(l)
	nodes := make([]uint64, k)
	for i := range nodes {
		a, err := h.Alloc(16)
		if err != nil {
			return nil, err
		}
		nodes[i] = a
	}
	for i := 0; i+1 < k; i++ {
		var err error
		if layoutB {
			err = h.Store(nodes[i], nodes[i+1]) // next at word 0 -> next's word 0
		} else {
			err = h.Store(nodes[i]+8, nodes[i+1]) // next at word 1 -> next's head
		}
		if err != nil {
			return nil, err
		}
	}
	return l, nil
}

// Granularity runs the Figure 3 demonstration.
func Granularity(cfg Config) (*GranularityResult, error) {
	const k = 64
	res := &GranularityResult{K: k}
	inEqOut := func(l *logger.Logger) float64 {
		g := l.Graph()
		return float64(g.CountInEqOut()) / float64(g.NumVertices()) * 100
	}
	for _, c := range []struct {
		gran    logger.Granularity
		layoutB bool
		dst     *float64
	}{
		{logger.ObjectGranularity, false, &res.ObjectA},
		{logger.ObjectGranularity, true, &res.ObjectB},
		{logger.FieldGranularity, false, &res.FieldA},
		{logger.FieldGranularity, true, &res.FieldB},
	} {
		l, err := buildList(c.gran, c.layoutB, k)
		if err != nil {
			return nil, err
		}
		*c.dst = inEqOut(l)
	}
	return res, nil
}

// String prints the 2x2 comparison.
func (r *GranularityResult) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Figure 3 demonstration: %% of vertices with indegree = outdegree\n")
	fmt.Fprintf(&b, "for a %d-node linked list under two field layouts\n\n", r.K)
	fmt.Fprintf(&b, "%-22s %-12s %-12s\n", "Granularity", "Layout A", "Layout B")
	fmt.Fprintf(&b, "%-22s %-12.1f %-12.1f\n", "object (paper's)", r.ObjectA, r.ObjectB)
	fmt.Fprintf(&b, "%-22s %-12.1f %-12.1f\n", "field", r.FieldA, r.FieldB)
	b.WriteString("\nObject granularity is layout-invariant; field granularity flips\n")
	b.WriteString("between \"all but two\" and \"only two\" vertices at in==out, exactly\n")
	b.WriteString("the sensitivity the paper cites for choosing object granularity.\n")
	fmt.Fprintf(&b, "metric suite used: %v\n", metrics.InEqOut)
	return b.String()
}
