package experiments

import (
	"fmt"
	"strings"

	"heapmd/internal/model"
	"heapmd/internal/sched"
	"heapmd/internal/workloads"
)

// SweepPoint is the stable-metric count at one threshold setting.
type SweepPoint struct {
	MaxAvgChange float64
	MaxStdDev    float64
	StableCount  int
}

// SweepRow is one benchmark's threshold-sensitivity curve.
type SweepRow struct {
	Benchmark string
	Points    []SweepPoint
	// BaselineStable is the count at the paper's thresholds.
	BaselineStable int
}

// ThresholdSweepResult reproduces the paper's Section 3 finding: "the
// number of globally stable metrics was fairly resilient to our
// choice of threshold values... Increasing these thresholds
// moderately does not result in additional metrics being classified
// as globally-stable. On the other hand, decreasing these thresholds
// results in fewer metrics being classified as globally-stable."
type ThresholdSweepResult struct {
	Rows []SweepRow
}

// sweepSettings are (avg, stddev) threshold pairs swept around the
// paper's (1.0, 5.0), scaling both together.
var sweepSettings = []struct{ avg, std float64 }{
	{0.25, 1.25},
	{0.5, 2.5},
	{1.0, 5.0}, // paper defaults
	{2.0, 10.0},
	{4.0, 20.0},
}

// ThresholdSweep recomputes the model for a subset of benchmarks at
// each threshold setting, reusing the same raw training reports.
func ThresholdSweep(cfg Config) (*ThresholdSweepResult, error) {
	benchmarks := []string{"twolf", "gzip", "parser", "multimedia", "productivity"}
	if cfg.Quick {
		benchmarks = benchmarks[:2]
	}
	rows, err := sched.Map(cfg.workers(), len(benchmarks), func(i int) (SweepRow, error) {
		name := benchmarks[i]
		w, err := workloads.Get(name)
		if err != nil {
			return SweepRow{}, err
		}
		n := cfg.cap(paperInputs(name))
		reports, err := workloads.Train(w, n, workloads.RunConfig{})
		if err != nil {
			return SweepRow{}, err
		}
		row := SweepRow{Benchmark: name}
		for _, set := range sweepSettings {
			th := model.Defaults()
			th.MaxAvgChange = set.avg
			th.MaxStdDev = set.std
			build, err := model.Build(reports, th)
			if err != nil {
				return SweepRow{}, err
			}
			pt := SweepPoint{MaxAvgChange: set.avg, MaxStdDev: set.std, StableCount: build.StableCount()}
			row.Points = append(row.Points, pt)
			if set.avg == 1.0 && set.std == 5.0 {
				row.BaselineStable = pt.StableCount
			}
		}
		return row, nil
	})
	if err != nil {
		return nil, err
	}
	return &ThresholdSweepResult{Rows: rows}, nil
}

// String prints the sweep grid.
func (r *ThresholdSweepResult) String() string {
	var b strings.Builder
	b.WriteString("Threshold sweep: globally stable metric count vs stability thresholds\n")
	b.WriteString("(paper setting is avg=1.0, std=5.0; the count should plateau above it\n")
	b.WriteString("and shrink below it)\n\n")
	fmt.Fprintf(&b, "%-13s", "Benchmark")
	for _, set := range sweepSettings {
		fmt.Fprintf(&b, " (%.2g,%.3g)", set.avg, set.std)
	}
	b.WriteString("\n")
	for _, row := range r.Rows {
		fmt.Fprintf(&b, "%-13s", row.Benchmark)
		for _, pt := range row.Points {
			fmt.Fprintf(&b, " %9d", pt.StableCount)
		}
		b.WriteString("\n")
	}
	return b.String()
}
