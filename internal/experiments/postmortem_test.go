package experiments

// Integration test for the paper's second usage mode (Section 2):
// record an execution trace online, compare it against the model
// offline. The offline verdict must agree exactly with checking the
// live report.

import (
	"bytes"
	"testing"

	"heapmd/internal/detect"
	"heapmd/internal/event"
	"heapmd/internal/faults"
	"heapmd/internal/logger"
	"heapmd/internal/trace"
	"heapmd/internal/workloads"
)

func TestPostMortemAgreesWithLive(t *testing.T) {
	w, err := workloads.Get("productivity")
	if err != nil {
		t.Fatal(err)
	}
	_, build, err := train(w, 8, quick)
	if err != nil {
		t.Fatal(err)
	}

	testIn := w.Inputs(9)[8]
	for _, buggy := range []bool{false, true} {
		var plan *faults.Plan
		if buggy {
			plan = faults.NewPlan().EnableAlways(faults.DListNoPrev)
		}
		// Live run with a trace recorder attached.
		var buf bytes.Buffer
		tw, err := trace.NewWriter(&buf)
		if err != nil {
			t.Fatal(err)
		}
		liveRep, p, err := workloads.RunLogged(w, testIn, workloads.RunConfig{
			Plan:       plan,
			ExtraSinks: []event.Sink{tw},
		})
		if err != nil {
			t.Fatal(err)
		}
		if err := tw.Close(p.Sym()); err != nil {
			t.Fatal(err)
		}

		// Post-mortem: replay the trace into a fresh logger.
		replay := logger.New(logger.Options{Frequency: workloads.DefaultFrequency})
		replay.SetRun(w.Name(), testIn.Name, 1)
		if _, _, err := trace.Replay(bytes.NewReader(buf.Bytes()), replay); err != nil {
			t.Fatal(err)
		}
		replayRep := replay.Report()

		liveFindings := detect.CheckReport(build.Model, liveRep, detect.Options{})
		replayFindings := detect.CheckReport(build.Model, replayRep, detect.Options{})
		if len(liveFindings) != len(replayFindings) {
			t.Fatalf("buggy=%v: live %d findings, post-mortem %d",
				buggy, len(liveFindings), len(replayFindings))
		}
		for i := range liveFindings {
			lf, rf := liveFindings[i], replayFindings[i]
			if lf.Metric != rf.Metric || lf.Direction != rf.Direction || lf.Tick != rf.Tick {
				t.Errorf("buggy=%v: finding %d diverges: live %+v vs replay %+v",
					buggy, i, lf, rf)
			}
		}
		if buggy && len(liveFindings) == 0 {
			t.Error("buggy run produced no findings at all")
		}
		if !buggy && len(liveFindings) != 0 {
			t.Errorf("clean run produced findings: %+v", liveFindings[0])
		}
	}
}
