package experiments

import (
	"fmt"
	"strings"

	"heapmd/internal/metrics"
	"heapmd/internal/plot"
	"heapmd/internal/stats"
	"heapmd/internal/workloads"
)

// Figure4Result holds the metric trajectories of vpr on two inputs
// (paper Figure 4: percentage of vertices with indegree = outdegree
// and with outdegree = 1, on the test and train inputs).
type Figure4Result struct {
	Inputs  [2]string
	InEqOut [2][]float64
	OutDeg1 [2][]float64
}

// Figure4 runs vpr on two inputs and records the two metric series.
func Figure4(cfg Config) (*Figure4Result, error) {
	w, err := workloads.Get("vpr")
	if err != nil {
		return nil, err
	}
	ins := w.Inputs(2)
	res := &Figure4Result{}
	for i, in := range ins {
		rep, _, err := workloads.RunLogged(w, in, workloads.RunConfig{})
		if err != nil {
			return nil, err
		}
		res.Inputs[i] = in.Name
		res.InEqOut[i] = rep.Series(metrics.InEqOut)
		res.OutDeg1[i] = rep.Series(metrics.OutDeg1)
	}
	return res, nil
}

// String renders the four panels as ASCII charts.
func (r *Figure4Result) String() string {
	var b strings.Builder
	b.WriteString("Figure 4: metric reports for two degree-based metrics for vpr on two inputs\n\n")
	for i := 0; i < 2; i++ {
		b.WriteString(plot.Render(plot.Options{
			Title: fmt.Sprintf("(%c) %s", 'A'+i, r.Inputs[i]),
			Width: 64, Height: 10,
		},
			plot.Series{Name: "In=Out (%)", Values: r.InEqOut[i]},
			plot.Series{Name: "Outdeg=1 (%)", Values: r.OutDeg1[i]},
		))
		b.WriteString("\n")
	}
	return b.String()
}

// Figure5Result holds the fluctuation (percentage-change) series of
// the Figure 4 trajectories, after discarding the startup samples —
// paper Figure 5.
type Figure5Result struct {
	Inputs  [2]string
	InEqOut [2][]float64
	OutDeg1 [2][]float64
}

// Figure5 derives the fluctuation series from a fresh Figure 4 run.
func Figure5(cfg Config) (*Figure5Result, error) {
	f4, err := Figure4(cfg)
	if err != nil {
		return nil, err
	}
	th := cfg.thresholds()
	res := &Figure5Result{Inputs: f4.Inputs}
	for i := 0; i < 2; i++ {
		res.InEqOut[i] = stats.Fluctuation(stats.Trim(f4.InEqOut[i], th.TrimFrac))
		res.OutDeg1[i] = stats.Fluctuation(stats.Trim(f4.OutDeg1[i], th.TrimFrac))
	}
	return res, nil
}

// String renders the fluctuation panels.
func (r *Figure5Result) String() string {
	var b strings.Builder
	b.WriteString("Figure 5: fluctuation of the metrics in Figure 4 (% change between\n")
	b.WriteString("consecutive metric computation points, startup/shutdown trimmed)\n\n")
	for i := 0; i < 2; i++ {
		b.WriteString(plot.Render(plot.Options{
			Title: fmt.Sprintf("(%c) %s", 'A'+i, r.Inputs[i]),
			Width: 64, Height: 10,
		},
			plot.Series{Name: "In=Out Δ%", Values: r.InEqOut[i]},
			plot.Series{Name: "Outdeg=1 Δ%", Values: r.OutDeg1[i]},
		))
		b.WriteString("\n")
	}
	return b.String()
}

// Figure6Cell is one (metric, input) entry of the paper's Figure 6:
// the average and standard deviation of the fluctuation series.
type Figure6Cell struct {
	Average float64
	StdDev  float64
}

// Figure6Result is the 2x2 statistics table for vpr.
type Figure6Result struct {
	Inputs  [2]string
	InEqOut [2]Figure6Cell
	OutDeg1 [2]Figure6Cell
	// Paper reference values for the same table.
	PaperInEqOut [2]Figure6Cell
	PaperOutDeg1 [2]Figure6Cell
}

// Figure6 computes the average/stddev-of-change statistics underlying
// the paper's stability decision for vpr's two example metrics.
func Figure6(cfg Config) (*Figure6Result, error) {
	f5, err := Figure5(cfg)
	if err != nil {
		return nil, err
	}
	res := &Figure6Result{
		Inputs: f5.Inputs,
		PaperInEqOut: [2]Figure6Cell{
			{Average: 2.47, StdDev: 24.80},
			{Average: -0.18, StdDev: 5.27},
		},
		PaperOutDeg1: [2]Figure6Cell{
			{Average: -0.10, StdDev: 1.72},
			{Average: -0.02, StdDev: 1.79},
		},
	}
	for i := 0; i < 2; i++ {
		res.InEqOut[i] = Figure6Cell{stats.Mean(f5.InEqOut[i]), stats.StdDev(f5.InEqOut[i])}
		res.OutDeg1[i] = Figure6Cell{stats.Mean(f5.OutDeg1[i]), stats.StdDev(f5.OutDeg1[i])}
	}
	return res, nil
}

// String renders the statistics table with the paper's values
// alongside.
func (r *Figure6Result) String() string {
	var b strings.Builder
	b.WriteString("Figure 6: average and standard deviation of the Figure 5 fluctuations\n")
	b.WriteString("(paper values in parentheses; stability thresholds: |avg| <= 1%, stddev <= 5)\n\n")
	fmt.Fprintf(&b, "%-22s %-24s %-24s\n", "", "Input1", "Input2")
	row := func(name string, got [2]Figure6Cell, paper [2]Figure6Cell, f string) {
		fmt.Fprintf(&b, "%-22s", name)
		for i := 0; i < 2; i++ {
			fmt.Fprintf(&b, " %-24s", fmt.Sprintf(f, got[i].Average, paper[i].Average))
		}
		b.WriteString("\n")
		fmt.Fprintf(&b, "%-22s", "  std. deviation")
		for i := 0; i < 2; i++ {
			fmt.Fprintf(&b, " %-24s", fmt.Sprintf("%.2f (%.2f)", got[i].StdDev, paper[i].StdDev))
		}
		b.WriteString("\n")
	}
	row("In=Out: average %", r.InEqOut, r.PaperInEqOut, "%+.2f%% (%+.2f%%)")
	row("Outdeg=1: average %", r.OutDeg1, r.PaperOutDeg1, "%+.2f%% (%+.2f%%)")
	return b.String()
}
