package health

import (
	"encoding/json"
	"strings"
	"testing"
)

func TestZeroAndTotal(t *testing.T) {
	var c Counters
	if !c.Zero() || c.Total() != 0 {
		t.Fatalf("zero Counters: Zero=%v Total=%d", c.Zero(), c.Total())
	}
	c.WildStores = 3
	c.DoubleFrees = 1
	if c.Zero() {
		t.Error("nonzero Counters reported Zero")
	}
	if got := c.Total(); got != 4 {
		t.Errorf("Total = %d, want 4", got)
	}
}

func TestAdd(t *testing.T) {
	a := Counters{DoubleFrees: 1, WildStores: 2, SalvagedBytes: 100}
	b := Counters{DoubleFrees: 3, UnknownEvents: 5, SalvagedGaps: 1, SalvagedBytes: 50}
	a.Add(b)
	want := Counters{DoubleFrees: 4, WildStores: 2, UnknownEvents: 5, SalvagedGaps: 1, SalvagedBytes: 150}
	if a != want {
		t.Errorf("Add: got %+v, want %+v", a, want)
	}
}

func TestStringCleanAndNonzero(t *testing.T) {
	var c Counters
	if got := c.String(); got != "clean" {
		t.Errorf("zero String = %q, want clean", got)
	}
	c = Counters{WildFrees: 2, SalvagedGaps: 1, SalvagedBytes: 37}
	s := c.String()
	for _, want := range []string{"wild-frees=2", "salvaged-gaps=1", "salvaged-bytes=37"} {
		if !strings.Contains(s, want) {
			t.Errorf("String %q missing %q", s, want)
		}
	}
	if strings.Contains(s, "double-frees") {
		t.Errorf("String %q renders zero counters", s)
	}
}

func TestNonzeroFilters(t *testing.T) {
	c := Counters{WildStores: 7}
	items := c.Nonzero()
	if len(items) != 1 || items[0].Name != "wild-stores" || items[0].Count != 7 {
		t.Errorf("Nonzero = %+v", items)
	}
	if n := len(c.Items()); n != 8 {
		t.Errorf("Items len = %d, want 8", n)
	}
}

func TestDefaultThresholds(t *testing.T) {
	th := DefaultThresholds()
	// A single double free is anomalous under defaults.
	ex := th.Exceeded(Counters{DoubleFrees: 1})
	if len(ex) != 1 || ex[0].Counter != "double-frees" || ex[0].Count != 1 || ex[0].Threshold != 0 {
		t.Errorf("Exceeded = %+v", ex)
	}
	// Salvage gaps and observer panics are tolerated by default...
	if ex := th.Exceeded(Counters{SalvagedGaps: 3, ObserverPanics: 2}); len(ex) != 0 {
		t.Errorf("default thresholds flagged infra faults: %+v", ex)
	}
	// ...but not under Strict.
	if ex := Strict().Exceeded(Counters{SalvagedGaps: 3, ObserverPanics: 2}); len(ex) != 2 {
		t.Errorf("Strict().Exceeded = %+v, want 2 excesses", ex)
	}
}

func TestExceededOrderAndMulti(t *testing.T) {
	c := Counters{DoubleFrees: 2, WildStores: 9, UnknownEvents: 1}
	ex := DefaultThresholds().Exceeded(c)
	if len(ex) != 3 {
		t.Fatalf("Exceeded len = %d, want 3", len(ex))
	}
	wantOrder := []string{"double-frees", "wild-stores", "unknown-events"}
	for i, w := range wantOrder {
		if ex[i].Counter != w {
			t.Errorf("excess[%d] = %s, want %s", i, ex[i].Counter, w)
		}
	}
}

func TestJSONRoundTrip(t *testing.T) {
	c := Counters{DoubleFrees: 1, WildStores: 4, SalvagedGaps: 1, SalvagedBytes: 99}
	data, err := json.Marshal(&c)
	if err != nil {
		t.Fatal(err)
	}
	var back Counters
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	if back != c {
		t.Errorf("round trip: got %+v, want %+v", back, c)
	}
	// Zero counters marshal compactly thanks to omitempty.
	empty, err := json.Marshal(&Counters{})
	if err != nil {
		t.Fatal(err)
	}
	if string(empty) != "{}" {
		t.Errorf("zero Counters JSON = %s, want {}", empty)
	}
}
