// Package health implements instrumentation-health accounting: a
// tally of every event the pipeline observed but could not interpret.
//
// HeapMD's whole premise is running against buggy programs, and a
// buggy program emits buggy instrumentation: double frees, frees of
// addresses that were never allocated, stores through wild pointers,
// reallocs of unknown bases. The original execution logger silently
// dropped all of these — reasonable for keeping the heap image
// consistent, but it discards evidence: a spike in wild stores is
// itself a heap-bug signal squarely inside the paper's taxonomy
// (Section 4.1's corruption bugs), and a run whose trace had to be
// salvaged should say so in its report. This package gives those
// drops a home. The logger populates a Counters as it runs, the
// Counters travels inside every logger.Report, and the detector
// turns threshold excesses into InstrumentationAnomaly findings.
package health

import (
	"fmt"
	"strings"
)

// Counters tallies instrumentation events that could not be applied
// to the heap image, plus infrastructure faults absorbed along the
// way. The zero value is ready to use. Counters is not synchronized;
// like the logger that owns it, it assumes a single event stream.
type Counters struct {
	// DoubleFrees counts frees of an address that was previously
	// allocated and already freed (and not since recycled).
	DoubleFrees uint64 `json:"double_frees,omitempty"`
	// WildFrees counts frees of an address with no record of ever
	// being allocated.
	WildFrees uint64 `json:"wild_frees,omitempty"`
	// WildStores counts stores to addresses outside every live
	// object.
	WildStores uint64 `json:"wild_stores,omitempty"`
	// BadReallocs counts reallocs whose old base is not a live
	// object (freed, never allocated, or an interior pointer).
	BadReallocs uint64 `json:"bad_reallocs,omitempty"`
	// UnknownEvents counts events whose type byte is outside the
	// known event.Type range — bit flips in a trace, or a version
	// skew between recorder and replayer.
	UnknownEvents uint64 `json:"unknown_events,omitempty"`
	// ObserverPanics counts panics recovered from SampleObservers.
	// Each panicking observer is quarantined after its first panic,
	// so this also bounds the number of quarantined observers.
	ObserverPanics uint64 `json:"observer_panics,omitempty"`
	// SalvagedGaps counts contiguous regions of a trace that were
	// dropped during salvage (zero for live runs and clean traces).
	SalvagedGaps uint64 `json:"salvaged_gaps,omitempty"`
	// SalvagedBytes is the total size of those dropped regions.
	SalvagedBytes uint64 `json:"salvaged_bytes,omitempty"`
	// DroppedEvents counts events discarded by the concurrent
	// ingestion pipeline's Drop backpressure policy before they
	// reached the logger (zero under the default Block policy). Any
	// nonzero value means the heap image — and every metric derived
	// from it — is incomplete for the run.
	DroppedEvents uint64 `json:"dropped_events,omitempty"`
}

// Total returns the sum of all anomaly counters (salvaged bytes are
// excluded: they are a size, not an occurrence count).
func (c *Counters) Total() uint64 {
	return c.DoubleFrees + c.WildFrees + c.WildStores + c.BadReallocs +
		c.UnknownEvents + c.ObserverPanics + c.SalvagedGaps + c.DroppedEvents
}

// Zero reports whether no anomalies were recorded.
func (c *Counters) Zero() bool { return c.Total() == 0 }

// Add accumulates o into c.
func (c *Counters) Add(o Counters) {
	c.DoubleFrees += o.DoubleFrees
	c.WildFrees += o.WildFrees
	c.WildStores += o.WildStores
	c.BadReallocs += o.BadReallocs
	c.UnknownEvents += o.UnknownEvents
	c.ObserverPanics += o.ObserverPanics
	c.SalvagedGaps += o.SalvagedGaps
	c.SalvagedBytes += o.SalvagedBytes
	c.DroppedEvents += o.DroppedEvents
}

// Item is one named counter value, for iteration and rendering.
type Item struct {
	Name  string
	Count uint64
}

// Items returns every counter with its canonical name, in a fixed
// order. Zero counters are included; filter with Nonzero if needed.
func (c *Counters) Items() []Item {
	return []Item{
		{"double-frees", c.DoubleFrees},
		{"wild-frees", c.WildFrees},
		{"wild-stores", c.WildStores},
		{"bad-reallocs", c.BadReallocs},
		{"unknown-events", c.UnknownEvents},
		{"observer-panics", c.ObserverPanics},
		{"salvaged-gaps", c.SalvagedGaps},
		{"dropped-events", c.DroppedEvents},
	}
}

// Nonzero returns only the counters with nonzero values.
func (c *Counters) Nonzero() []Item {
	var out []Item
	for _, it := range c.Items() {
		if it.Count > 0 {
			out = append(out, it)
		}
	}
	return out
}

// String renders the nonzero counters compactly, e.g.
// "double-frees=3 wild-stores=17", or "clean" when all are zero.
func (c *Counters) String() string {
	items := c.Nonzero()
	if len(items) == 0 {
		return "clean"
	}
	parts := make([]string, len(items))
	for i, it := range items {
		parts[i] = fmt.Sprintf("%s=%d", it.Name, it.Count)
	}
	if c.SalvagedBytes > 0 {
		parts = append(parts, fmt.Sprintf("salvaged-bytes=%d", c.SalvagedBytes))
	}
	return strings.Join(parts, " ")
}

// Thresholds bounds each counter; an excess is a bug signal in its
// own right. A threshold is the largest acceptable value: counts
// strictly above it are anomalous.
type Thresholds struct {
	MaxDoubleFrees    uint64 `json:"max_double_frees"`
	MaxWildFrees      uint64 `json:"max_wild_frees"`
	MaxWildStores     uint64 `json:"max_wild_stores"`
	MaxBadReallocs    uint64 `json:"max_bad_reallocs"`
	MaxUnknownEvents  uint64 `json:"max_unknown_events"`
	MaxObserverPanics uint64 `json:"max_observer_panics"`
	MaxSalvagedGaps   uint64 `json:"max_salvaged_gaps"`
	MaxDroppedEvents  uint64 `json:"max_dropped_events"`
}

// DefaultThresholds tolerates nothing: any double free, wild free,
// wild store, bad realloc or unknown event is reported. Salvaged
// gaps and observer panics default to tolerated (they indicate
// damaged infrastructure, not necessarily a heap bug in the
// monitored program); callers tighten them by setting the max to 0
// via Strict.
func DefaultThresholds() Thresholds {
	return Thresholds{
		MaxObserverPanics: ^uint64(0),
		MaxSalvagedGaps:   ^uint64(0),
		MaxDroppedEvents:  ^uint64(0),
	}
}

// Strict returns thresholds that tolerate nothing at all, including
// infrastructure faults.
func Strict() Thresholds { return Thresholds{} }

// Excess is one counter that exceeded its threshold.
type Excess struct {
	Counter   string
	Count     uint64
	Threshold uint64
}

// Exceeded returns every counter in c that is strictly above its
// threshold, in Items order.
func (t Thresholds) Exceeded(c Counters) []Excess {
	limits := []struct {
		name  string
		count uint64
		max   uint64
	}{
		{"double-frees", c.DoubleFrees, t.MaxDoubleFrees},
		{"wild-frees", c.WildFrees, t.MaxWildFrees},
		{"wild-stores", c.WildStores, t.MaxWildStores},
		{"bad-reallocs", c.BadReallocs, t.MaxBadReallocs},
		{"unknown-events", c.UnknownEvents, t.MaxUnknownEvents},
		{"observer-panics", c.ObserverPanics, t.MaxObserverPanics},
		{"salvaged-gaps", c.SalvagedGaps, t.MaxSalvagedGaps},
		{"dropped-events", c.DroppedEvents, t.MaxDroppedEvents},
	}
	var out []Excess
	for _, l := range limits {
		if l.count > l.max {
			out = append(out, Excess{Counter: l.name, Count: l.count, Threshold: l.max})
		}
	}
	return out
}
