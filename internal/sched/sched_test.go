package sched

import (
	"errors"
	"fmt"
	"runtime"
	"strings"
	"sync/atomic"
	"testing"
)

func TestMapOrdersResults(t *testing.T) {
	for _, workers := range []int{1, 2, 4, 9, 100} {
		out, err := Map(workers, 25, func(i int) (int, error) { return i * i, nil })
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if len(out) != 25 {
			t.Fatalf("workers=%d: len=%d", workers, len(out))
		}
		for i, v := range out {
			if v != i*i {
				t.Fatalf("workers=%d: out[%d]=%d, want %d", workers, i, v, i*i)
			}
		}
	}
}

func TestMapEmpty(t *testing.T) {
	out, err := Map(4, 0, func(i int) (int, error) { return 0, nil })
	if err != nil || out != nil {
		t.Fatalf("got %v, %v", out, err)
	}
}

// TestMapFirstErrorWins pins the determinism contract for failures: no
// matter how the fleet is scheduled, the error returned is the one the
// serial loop would have returned — the lowest-numbered failing run —
// even when a higher-numbered run fails first in wall-clock time.
func TestMapFirstErrorWins(t *testing.T) {
	errLow := errors.New("low")
	errHigh := errors.New("high")
	// workers >= 2 only: the blocking choreography below needs run 7 to
	// execute while run 3 is parked, which a serial loop cannot do.
	for _, workers := range []int{2, 4, 16} {
		for trial := 0; trial < 50; trial++ {
			slow := make(chan struct{})
			_, err := Map(workers, 16, func(i int) (int, error) {
				switch i {
				case 3:
					// The serial first failure, made artificially slow
					// so faster failures race ahead of it.
					<-slow
					return 0, errLow
				case 7, 11:
					if i == 7 {
						close(slow)
					}
					return 0, errHigh
				}
				return i, nil
			})
			if !errors.Is(err, errLow) {
				t.Fatalf("workers=%d trial=%d: err=%v, want errLow", workers, trial, err)
			}
		}
	}
}

// TestMapDrainsInFlight checks that a mid-fleet failure lets in-flight
// runs finish (no abandoned work, no leaked goroutines blocking) and
// stops new claims promptly.
func TestMapDrainsInFlight(t *testing.T) {
	var started, finished atomic.Int64
	_, err := Map(4, 64, func(i int) (int, error) {
		started.Add(1)
		defer finished.Add(1)
		if i == 5 {
			return 0, fmt.Errorf("boom at %d", i)
		}
		return i, nil
	})
	if err == nil || !strings.Contains(err.Error(), "boom at 5") {
		t.Fatalf("err = %v", err)
	}
	if s, f := started.Load(), finished.Load(); s != f {
		t.Fatalf("started %d runs but only %d finished (abandoned work)", s, f)
	}
	if started.Load() == 64 {
		t.Log("note: failure did not prevent any claims (legal but unexpected on >1 worker)")
	}
}

func TestMapRecoversPanics(t *testing.T) {
	for _, workers := range []int{1, 4} {
		_, err := Map(workers, 8, func(i int) (int, error) {
			if i == 2 {
				panic("kaboom")
			}
			return i, nil
		})
		if err == nil || !strings.Contains(err.Error(), "run 2 panicked: kaboom") {
			t.Fatalf("workers=%d: err = %v", workers, err)
		}
	}
}

func TestForEach(t *testing.T) {
	var sum atomic.Int64
	if err := ForEach(4, 100, func(i int) error {
		sum.Add(int64(i))
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if sum.Load() != 4950 {
		t.Fatalf("sum = %d", sum.Load())
	}
}

func TestWorkers(t *testing.T) {
	if got := Workers(0); got != runtime.GOMAXPROCS(0) {
		t.Fatalf("Workers(0) = %d", got)
	}
	if got := Workers(-3); got != runtime.GOMAXPROCS(0) {
		t.Fatalf("Workers(-3) = %d", got)
	}
	if got := Workers(7); got != 7 {
		t.Fatalf("Workers(7) = %d", got)
	}
}

// TestSchedStressFailingFleet is the race-detector stress target: many
// workers, repeated fleets, one failing run per fleet at a rotating
// position. Run under -race (the CI stress step does, with
// -shuffle=on) it shakes out claim/drain races.
func TestSchedStressFailingFleet(t *testing.T) {
	for round := 0; round < 20; round++ {
		fail := round % 10
		out, err := Map(8, 40, func(i int) (int, error) {
			if i%10 == fail && i >= 10 {
				return 0, fmt.Errorf("fleet fault at %d", i)
			}
			return i * 3, nil
		})
		want := fmt.Sprintf("fleet fault at %d", 10+fail)
		if err == nil || err.Error() != want {
			t.Fatalf("round %d: err = %v, want %q", round, err, want)
		}
		if out != nil {
			t.Fatalf("round %d: results returned alongside error", round)
		}
	}
}

// TestParseParallel pins the normalized -parallel semantics shared by
// every subcommand: 0 = all cores, positive = exact, negative = error.
func TestParseParallel(t *testing.T) {
	if got, err := ParseParallel(0); err != nil || got != runtime.GOMAXPROCS(0) {
		t.Fatalf("ParseParallel(0) = %d, %v", got, err)
	}
	if got, err := ParseParallel(1); err != nil || got != 1 {
		t.Fatalf("ParseParallel(1) = %d, %v", got, err)
	}
	if got, err := ParseParallel(5); err != nil || got != 5 {
		t.Fatalf("ParseParallel(5) = %d, %v", got, err)
	}
	if _, err := ParseParallel(-1); err == nil {
		t.Fatal("ParseParallel(-1) did not error")
	}
}

// TestParseMetricWorkers pins the normalized -metric-workers
// semantics: 0 = inline, positive = workers, negative = error
// (previously silently treated as inline).
func TestParseMetricWorkers(t *testing.T) {
	if got, err := ParseMetricWorkers(0); err != nil || got != 0 {
		t.Fatalf("ParseMetricWorkers(0) = %d, %v", got, err)
	}
	if got, err := ParseMetricWorkers(4); err != nil || got != 4 {
		t.Fatalf("ParseMetricWorkers(4) = %d, %v", got, err)
	}
	if _, err := ParseMetricWorkers(-2); err == nil {
		t.Fatal("ParseMetricWorkers(-2) did not error")
	}
}

func TestParseDecodeWorkers(t *testing.T) {
	got, err := ParseDecodeWorkers(0)
	if err != nil {
		t.Fatalf("ParseDecodeWorkers(0): %v", err)
	}
	if p := runtime.GOMAXPROCS(0); p > 1 {
		if got != p {
			t.Fatalf("ParseDecodeWorkers(0) = %d, want %d (all cores)", got, p)
		}
	} else if got != 0 {
		t.Fatalf("ParseDecodeWorkers(0) = %d, want 0 (synchronous on a single core)", got)
	}
	for _, n := range []int{1, 2, 7} {
		if got, err := ParseDecodeWorkers(n); err != nil || got != n {
			t.Fatalf("ParseDecodeWorkers(%d) = %d, %v", n, got, err)
		}
	}
	if _, err := ParseDecodeWorkers(-1); err == nil {
		t.Fatal("ParseDecodeWorkers(-1) did not error")
	}
}

func TestParseEncodeWorkers(t *testing.T) {
	if got, err := ParseEncodeWorkers(0); err != nil || got != 0 {
		t.Fatalf("ParseEncodeWorkers(0) = %d, %v", got, err)
	}
	if got, err := ParseEncodeWorkers(3); err != nil || got != 3 {
		t.Fatalf("ParseEncodeWorkers(3) = %d, %v", got, err)
	}
	if _, err := ParseEncodeWorkers(-1); err == nil {
		t.Fatal("ParseEncodeWorkers(-1) did not error")
	}
}

// TestParseIngestWorkers pins the -ingest-workers semantics: 0 = auto
// (serial on one core, else a mutator plus up to three resolvers
// capped at GOMAXPROCS), positive = exact, negative = error.
func TestParseIngestWorkers(t *testing.T) {
	got, err := ParseIngestWorkers(0)
	if err != nil {
		t.Fatalf("ParseIngestWorkers(0): %v", err)
	}
	if p := runtime.GOMAXPROCS(0); p > 1 {
		want := p
		if want > 4 {
			want = 4
		}
		if got != want {
			t.Fatalf("ParseIngestWorkers(0) = %d, want %d on %d cores", got, want, p)
		}
	} else if got != 1 {
		t.Fatalf("ParseIngestWorkers(0) = %d, want 1 (serial on a single core)", got)
	}
	for _, n := range []int{1, 2, 7} {
		if got, err := ParseIngestWorkers(n); err != nil || got != n {
			t.Fatalf("ParseIngestWorkers(%d) = %d, %v", n, got, err)
		}
	}
	if _, err := ParseIngestWorkers(-1); err == nil {
		t.Fatal("ParseIngestWorkers(-1) did not error")
	}
}
