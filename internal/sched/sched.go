// Package sched is the bounded-concurrency run scheduler behind every
// outer loop in the repo that executes independent logged runs:
// training fleets (workloads.Train), experiment cells (workload ×
// version × fault plan × input in internal/experiments) and multi-trace
// replay (cmd/heapmd replay). The paper's model constructor is defined
// over fleets of runs — up to 100 training inputs per benchmark and
// 5 apps × 5 versions × 10 inputs — and each run already owns a
// private process and logger, so the fleet is embarrassingly parallel;
// the scheduler's job is to exploit that without changing a single
// observable byte of output.
//
// Determinism contract. Map returns results indexed by input position,
// so aggregation order never depends on completion order. Error
// semantics also match the serial loop exactly: indices are claimed in
// increasing order, a failure stops further claims, in-flight runs
// drain cleanly, and the error returned is the one from the
// lowest-numbered failing run. Because runs are deterministic and
// independent, the lowest failing index is claimed before any failure
// can be observed (claims are monotone), so the drained fleet always
// contains it — parallel execution reports byte-identical errors to
// serial execution, not merely "an" error.
package sched

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
)

// Workers resolves a worker-count setting: values <= 0 select
// GOMAXPROCS, the default for every -parallel flag.
func Workers(n int) int {
	if n <= 0 {
		return runtime.GOMAXPROCS(0)
	}
	return n
}

// ParseParallel validates a -parallel flag value uniformly across
// subcommands (train, check, replay, soak, experiments): 0 selects
// GOMAXPROCS ("auto", every subcommand's default), positive values
// are the exact worker count (1 = serial), and negative values are an
// error. Historically each subcommand resolved the flag itself — 0
// meant serial in one path, one worker in another and GOMAXPROCS in a
// third, and negatives were silently clamped; the CLI now funnels
// every occurrence of the flag through here.
func ParseParallel(n int) (int, error) {
	if n < 0 {
		return 0, fmt.Errorf("sched: -parallel must be >= 0 (0 = all cores), got %d", n)
	}
	return Workers(n), nil
}

// ParseMetricWorkers validates a -metric-workers flag value: 0 keeps
// the expensive extension metrics inline at the metric computation
// point, positive values run that many worker goroutines, and
// negative values are an error (previously they were silently treated
// as inline).
func ParseMetricWorkers(n int) (int, error) {
	if n < 0 {
		return 0, fmt.Errorf("sched: -metric-workers must be >= 0 (0 = inline), got %d", n)
	}
	return n, nil
}

// ParseDecodeWorkers validates a -decode-workers flag value and
// resolves it to a trace.ReadOptions.DecodeWorkers setting: 0 selects
// the machine default — all cores on a multi-core machine, the
// synchronous decoder on a single core, where extra goroutines only
// add handoff cost (the old always-on -readahead default was a
// measured regression there). Positive values are exact: 1 is the
// fused read-ahead pipeline, n ≥ 2 a scanner plus n decode workers.
// Negative values are an error.
func ParseDecodeWorkers(n int) (int, error) {
	if n < 0 {
		return 0, fmt.Errorf("sched: -decode-workers must be >= 0 (0 = auto), got %d", n)
	}
	if n == 0 {
		if p := runtime.GOMAXPROCS(0); p > 1 {
			return p, nil
		}
		return 0, nil
	}
	return n, nil
}

// ParseIngestWorkers validates an -ingest-workers flag value and
// resolves it to a total ingest worker count: 0 selects the machine
// default — the serial in-order path on a single core (where a
// speculation pipeline only adds handoff cost), otherwise one mutator
// plus up to three pre-resolvers, capped at GOMAXPROCS (pre-resolution
// is ~40% of store cost, so resolver parallelism beyond a few workers
// only burns cores re-reading the same pages). Positive values are
// exact: 1 is the serial path, n >= 2 a mutator plus n-1 resolvers.
// Negative values are an error.
func ParseIngestWorkers(n int) (int, error) {
	if n < 0 {
		return 0, fmt.Errorf("sched: -ingest-workers must be >= 0 (0 = auto), got %d", n)
	}
	if n == 0 {
		if p := runtime.GOMAXPROCS(0); p > 1 {
			if p > 4 {
				p = 4
			}
			return p, nil
		}
		return 1, nil
	}
	return n, nil
}

// ParseEncodeWorkers validates a -trace-workers flag value: 0 encodes
// recorded trace frames synchronously on the emitting goroutine (the
// default — recording is rarely the bottleneck), positive values run
// that many encode workers per writer, and negative values are an
// error.
func ParseEncodeWorkers(n int) (int, error) {
	if n < 0 {
		return 0, fmt.Errorf("sched: -trace-workers must be >= 0 (0 = synchronous), got %d", n)
	}
	return n, nil
}

// Map executes fn(0) .. fn(n-1) on up to workers goroutines and
// returns the results in input order. workers <= 1 runs serially on
// the calling goroutine. On failure Map returns the error of the
// lowest-numbered failing index — exactly what a serial loop that
// stops at the first error would return — after every in-flight run
// has drained. A panicking fn is converted into an error on both the
// serial and the parallel path, so a crashing run mid-fleet cannot
// kill sibling workers.
func Map[T any](workers, n int, fn func(int) (T, error)) ([]T, error) {
	if n <= 0 {
		return nil, nil
	}
	if workers > n {
		workers = n
	}
	out := make([]T, n)
	if workers <= 1 {
		for i := 0; i < n; i++ {
			v, err := runOne(i, fn)
			if err != nil {
				return nil, err
			}
			out[i] = v
		}
		return out, nil
	}
	var (
		next atomic.Int64 // next index to claim (monotone)
		stop atomic.Bool  // set on first observed failure
		wg   sync.WaitGroup
	)
	errs := make([]error, n)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				if stop.Load() {
					return
				}
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				v, err := runOne(i, fn)
				if err != nil {
					errs[i] = err
					stop.Store(true)
					continue // keep draining: a lower claimed index may still fail first
				}
				out[i] = v
			}
		}()
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return out, nil
}

// ForEach is Map for side-effect-only bodies.
func ForEach(workers, n int, fn func(int) error) error {
	_, err := Map(workers, n, func(i int) (struct{}, error) {
		return struct{}{}, fn(i)
	})
	return err
}

// runOne invokes fn(i), converting a panic into an error so that both
// execution paths (serial and worker goroutine) fail identically.
func runOne[T any](i int, fn func(int) (T, error)) (v T, err error) {
	defer func() {
		if r := recover(); r != nil {
			err = fmt.Errorf("sched: run %d panicked: %v", i, r)
		}
	}()
	return fn(i)
}
