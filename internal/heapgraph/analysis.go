package heapgraph

// This file implements the on-demand whole-graph analyses backing
// HeapMD's extension metrics (paper Section 2.1 lists "the size and
// number of connected and strongly connected components" as candidate
// metrics beyond the degree suite). These walk the graph and are
// therefore much more expensive than the O(1) degree metrics; the
// logger only evaluates them when the extended metric set is enabled.
// The arena layout pays off here too: traversal state is slot-indexed
// slices rather than the maps the old map-of-vertices layout forced.

// ComponentStats summarizes a components decomposition.
type ComponentStats struct {
	Count   int // number of components
	Largest int // vertex count of the largest component
}

// WeaklyConnectedComponents computes the number and largest size of
// weakly connected components (edge direction ignored). Isolated
// vertices are singleton components.
func (g *Graph) WeaklyConnectedComponents() ComponentStats {
	seen := make([]bool, len(g.ids))
	var stats ComponentStats
	stack := make([]int32, 0, 64)
	for root := range g.ids {
		if !g.alive[root] || seen[root] {
			continue
		}
		stats.Count++
		size := 0
		stack = append(stack[:0], int32(root))
		seen[root] = true
		for len(stack) > 0 {
			s := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			size++
			visit := func(id VertexID, _ int32) bool {
				w := g.slotOf(id)
				if !seen[w] {
					seen[w] = true
					stack = append(stack, w)
				}
				return true
			}
			g.outAdj[s].each(visit)
			g.inAdj[s].each(visit)
		}
		if size > stats.Largest {
			stats.Largest = size
		}
	}
	return stats
}

// StronglyConnectedComponents computes the number and largest size of
// strongly connected components using an iterative Tarjan algorithm.
// The iterative formulation matters: heap graphs routinely contain
// list structures hundreds of thousands of vertices long, which would
// overflow the goroutine stack under naive recursion.
func (g *Graph) StronglyConnectedComponents() ComponentStats {
	n := len(g.ids)
	if g.NumVertices() == 0 {
		return ComponentStats{}
	}
	index := make([]int32, n) // discovery index, 0 = unvisited
	lowlink := make([]int32, n)
	onStack := make([]bool, n)
	sccStack := make([]int32, 0, 64)
	next := int32(1)

	var stats ComponentStats

	// frame emulates Tarjan's recursion: succs holds the successor
	// slots still to be explored.
	type frame struct {
		v     int32
		succs []int32
		pos   int
	}

	succsOf := func(s int32) []int32 {
		d := g.outAdj[s].distinct()
		if d == 0 {
			return nil
		}
		out := make([]int32, 0, d)
		g.outAdj[s].each(func(id VertexID, _ int32) bool {
			out = append(out, g.slotOf(id))
			return true
		})
		return out
	}

	for root := 0; root < n; root++ {
		if !g.alive[root] || index[root] != 0 {
			continue
		}
		stack := []frame{{v: int32(root), succs: succsOf(int32(root))}}
		index[root] = next
		lowlink[root] = next
		next++
		sccStack = append(sccStack, int32(root))
		onStack[root] = true

		for len(stack) > 0 {
			f := &stack[len(stack)-1]
			if f.pos < len(f.succs) {
				w := f.succs[f.pos]
				f.pos++
				if index[w] == 0 {
					index[w] = next
					lowlink[w] = next
					next++
					sccStack = append(sccStack, w)
					onStack[w] = true
					stack = append(stack, frame{v: w, succs: succsOf(w)})
				} else if onStack[w] && index[w] < lowlink[f.v] {
					lowlink[f.v] = index[w]
				}
				continue
			}
			// All successors explored: pop the frame.
			v := f.v
			stack = stack[:len(stack)-1]
			if len(stack) > 0 {
				parent := stack[len(stack)-1].v
				if lowlink[v] < lowlink[parent] {
					lowlink[parent] = lowlink[v]
				}
			}
			if lowlink[v] == index[v] {
				// v is an SCC root: pop its component.
				size := 0
				for {
					w := sccStack[len(sccStack)-1]
					sccStack = sccStack[:len(sccStack)-1]
					onStack[w] = false
					size++
					if w == v {
						break
					}
				}
				stats.Count++
				if size > stats.Largest {
					stats.Largest = size
				}
			}
		}
	}
	return stats
}

// WeaklyConnectedComponentsCached is WeaklyConnectedComponents with
// generation-counter memoization: when the graph has not mutated since
// the last cached computation, the cached stats are returned without a
// walk. Metric evaluation calls this so that back-to-back samples over
// an idle graph cost O(1) instead of O(V+E). Like mutation, it must
// only be called from the graph's writer goroutine.
func (g *Graph) WeaklyConnectedComponentsCached() ComponentStats {
	if gen := g.Generation(); g.wccCache.valid && g.wccCache.gen == gen {
		return g.wccCache.stats
	}
	st := g.WeaklyConnectedComponents()
	g.wccCache = componentCache{gen: g.Generation(), stats: st, valid: true}
	return st
}

// StronglyConnectedComponentsCached is StronglyConnectedComponents
// with the same generation-counter memoization; writer goroutine only.
func (g *Graph) StronglyConnectedComponentsCached() ComponentStats {
	if gen := g.Generation(); g.sccCache.valid && g.sccCache.gen == gen {
		return g.sccCache.stats
	}
	st := g.StronglyConnectedComponents()
	g.sccCache = componentCache{gen: g.Generation(), stats: st, valid: true}
	return st
}

// CheckInvariants verifies the incremental bookkeeping against a full
// recomputation: histogram populations, the in==out counter, the edge
// total, the VertexID → slot index, and the freelist must all match
// what a fresh scan of the arena produces. It returns a non-empty
// description of the first violation found, or "" when consistent.
// Tests and the fuzzing harness call this after mutation sequences.
func (g *Graph) CheckInvariants() string {
	var inHist, outHist [maxTracked + 2]int
	eq, edges, live := 0, 0, 0
	for s := range g.ids {
		if !g.alive[s] {
			continue
		}
		live++
		v := g.ids[s]
		if g.slotOf(v) != int32(s) {
			return "index does not resolve vertex " + itoa(uint64(v)) + " to its slot"
		}
		in, out := 0, 0
		violation := ""
		g.inAdj[s].each(func(p VertexID, m int32) bool {
			if m <= 0 {
				violation = "non-positive in-multiplicity at vertex " + itoa(uint64(v))
				return false
			}
			in += int(m)
			return true
		})
		if violation != "" {
			return violation
		}
		g.outAdj[s].each(func(p VertexID, m int32) bool {
			if m <= 0 {
				violation = "non-positive out-multiplicity at vertex " + itoa(uint64(v))
				return false
			}
			out += int(m)
			return true
		})
		if violation != "" {
			return violation
		}
		if in != int(g.inDeg[s]) {
			return "cached indegree mismatch for vertex " + itoa(uint64(v))
		}
		if out != int(g.outDeg[s]) {
			return "cached outdegree mismatch for vertex " + itoa(uint64(v))
		}
		inHist[bucket(in)]++
		outHist[bucket(out)]++
		if in == out {
			eq++
		}
		edges += out
	}
	for b := 0; b < maxTracked+2; b++ {
		if inHist[b] != g.counts.sumIn(b) {
			return "indegree histogram mismatch"
		}
		if outHist[b] != g.counts.sumOut(b) {
			return "outdegree histogram mismatch"
		}
	}
	if eq != g.counts.sumEq() {
		return "in==out counter mismatch"
	}
	if edges != g.NumEdges() {
		return "edge count mismatch"
	}
	if live != g.NumVertices() {
		return "vertex count mismatch"
	}
	// Arena accounting: every slot is either alive or on the freelist,
	// exactly once.
	for _, s := range g.freeSlots {
		if g.alive[s] {
			return "freelist holds a live slot"
		}
	}
	if live+len(g.freeSlots) != len(g.ids) {
		return "arena slot accounting mismatch"
	}
	// Index hygiene: no dense or sparse entry may point at a dead or
	// mismatched slot.
	for v, ref := range g.dense {
		if ref != 0 && (!g.alive[ref-1] || g.ids[ref-1] != VertexID(v)) {
			return "stale dense index entry for vertex " + itoa(uint64(v))
		}
	}
	for v, ref := range g.sparse {
		if ref == 0 || !g.alive[ref-1] || g.ids[ref-1] != v {
			return "stale sparse index entry for vertex " + itoa(uint64(v))
		}
	}
	// Symmetry: u's out-multiplicity to v must equal v's
	// in-multiplicity from u.
	for s := range g.ids {
		if !g.alive[s] {
			continue
		}
		u := g.ids[s]
		asym := ""
		g.outAdj[s].each(func(v VertexID, m int32) bool {
			vs := g.slotOf(v)
			if vs == noSlot || g.inAdj[vs].get(u) != m {
				asym = "adjacency asymmetry between " + itoa(uint64(u)) + " and " + itoa(uint64(v))
				return false
			}
			return true
		})
		if asym != "" {
			return asym
		}
	}
	return ""
}

func itoa(x uint64) string {
	if x == 0 {
		return "0"
	}
	var buf [20]byte
	i := len(buf)
	for x > 0 {
		i--
		buf[i] = byte('0' + x%10)
		x /= 10
	}
	return string(buf[i:])
}
