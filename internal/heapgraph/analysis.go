package heapgraph

// This file implements the on-demand whole-graph analyses backing
// HeapMD's extension metrics (paper Section 2.1 lists "the size and
// number of connected and strongly connected components" as candidate
// metrics beyond the degree suite). These walk the graph and are
// therefore much more expensive than the O(1) degree metrics; the
// logger only evaluates them when the extended metric set is enabled.

// ComponentStats summarizes a components decomposition.
type ComponentStats struct {
	Count   int // number of components
	Largest int // vertex count of the largest component
}

// WeaklyConnectedComponents computes the number and largest size of
// weakly connected components (edge direction ignored). Isolated
// vertices are singleton components.
func (g *Graph) WeaklyConnectedComponents() ComponentStats {
	seen := make(map[VertexID]bool, len(g.vertices))
	var stats ComponentStats
	stack := make([]VertexID, 0, 64)
	for root := range g.vertices {
		if seen[root] {
			continue
		}
		stats.Count++
		size := 0
		stack = append(stack[:0], root)
		seen[root] = true
		for len(stack) > 0 {
			v := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			size++
			vx := g.vertices[v]
			for s := range vx.out {
				if !seen[s] {
					seen[s] = true
					stack = append(stack, s)
				}
			}
			for p := range vx.in {
				if !seen[p] {
					seen[p] = true
					stack = append(stack, p)
				}
			}
		}
		if size > stats.Largest {
			stats.Largest = size
		}
	}
	return stats
}

// StronglyConnectedComponents computes the number and largest size of
// strongly connected components using an iterative Tarjan algorithm.
// The iterative formulation matters: heap graphs routinely contain
// list structures hundreds of thousands of vertices long, which would
// overflow the goroutine stack under naive recursion.
func (g *Graph) StronglyConnectedComponents() ComponentStats {
	n := len(g.vertices)
	if n == 0 {
		return ComponentStats{}
	}
	index := make(map[VertexID]int, n) // discovery index, 0 = unvisited
	lowlink := make(map[VertexID]int, n)
	onStack := make(map[VertexID]bool, n)
	sccStack := make([]VertexID, 0, 64)
	next := 1

	var stats ComponentStats

	// frame emulates Tarjan's recursion: iter holds the successors
	// still to be explored.
	type frame struct {
		v     VertexID
		succs []VertexID
		pos   int
	}

	succsOf := func(v VertexID) []VertexID {
		vx := g.vertices[v]
		if len(vx.out) == 0 {
			return nil
		}
		out := make([]VertexID, 0, len(vx.out))
		for s := range vx.out {
			out = append(out, s)
		}
		return out
	}

	for root := range g.vertices {
		if index[root] != 0 {
			continue
		}
		stack := []frame{{v: root, succs: succsOf(root)}}
		index[root] = next
		lowlink[root] = next
		next++
		sccStack = append(sccStack, root)
		onStack[root] = true

		for len(stack) > 0 {
			f := &stack[len(stack)-1]
			if f.pos < len(f.succs) {
				w := f.succs[f.pos]
				f.pos++
				if index[w] == 0 {
					index[w] = next
					lowlink[w] = next
					next++
					sccStack = append(sccStack, w)
					onStack[w] = true
					stack = append(stack, frame{v: w, succs: succsOf(w)})
				} else if onStack[w] && index[w] < lowlink[f.v] {
					lowlink[f.v] = index[w]
				}
				continue
			}
			// All successors explored: pop the frame.
			v := f.v
			stack = stack[:len(stack)-1]
			if len(stack) > 0 {
				parent := stack[len(stack)-1].v
				if lowlink[v] < lowlink[parent] {
					lowlink[parent] = lowlink[v]
				}
			}
			if lowlink[v] == index[v] {
				// v is an SCC root: pop its component.
				size := 0
				for {
					w := sccStack[len(sccStack)-1]
					sccStack = sccStack[:len(sccStack)-1]
					onStack[w] = false
					size++
					if w == v {
						break
					}
				}
				stats.Count++
				if size > stats.Largest {
					stats.Largest = size
				}
			}
		}
	}
	return stats
}

// WeaklyConnectedComponentsCached is WeaklyConnectedComponents with
// generation-counter memoization: when the graph has not mutated since
// the last cached computation, the cached stats are returned without a
// walk. Metric evaluation calls this so that back-to-back samples over
// an idle graph cost O(1) instead of O(V+E). Like mutation, it must
// only be called from the graph's writer goroutine.
func (g *Graph) WeaklyConnectedComponentsCached() ComponentStats {
	if gen := g.Generation(); g.wccCache.valid && g.wccCache.gen == gen {
		return g.wccCache.stats
	}
	st := g.WeaklyConnectedComponents()
	g.wccCache = componentCache{gen: g.Generation(), stats: st, valid: true}
	return st
}

// StronglyConnectedComponentsCached is StronglyConnectedComponents
// with the same generation-counter memoization; writer goroutine only.
func (g *Graph) StronglyConnectedComponentsCached() ComponentStats {
	if gen := g.Generation(); g.sccCache.valid && g.sccCache.gen == gen {
		return g.sccCache.stats
	}
	st := g.StronglyConnectedComponents()
	g.sccCache = componentCache{gen: g.Generation(), stats: st, valid: true}
	return st
}

// CheckInvariants verifies the incremental bookkeeping against a full
// recomputation: histogram populations, the in==out counter, and the
// edge total must all match what a fresh scan of the adjacency
// structure produces. It returns a non-empty description of the first
// violation found, or "" when consistent. Tests and the fuzzing
// harness call this after mutation sequences.
func (g *Graph) CheckInvariants() string {
	var inHist, outHist [maxTracked + 2]int
	eq, edges := 0, 0
	for v, vx := range g.vertices {
		in, out := 0, 0
		for _, m := range vx.in {
			in += m
		}
		for _, m := range vx.out {
			out += m
		}
		if in != vx.inDeg {
			return "cached indegree mismatch for vertex " + itoa(uint64(v))
		}
		if out != vx.outDeg {
			return "cached outdegree mismatch for vertex " + itoa(uint64(v))
		}
		inHist[bucket(in)]++
		outHist[bucket(out)]++
		if in == out {
			eq++
		}
		edges += out
	}
	for b := 0; b < maxTracked+2; b++ {
		if inHist[b] != g.counts.sumIn(b) {
			return "indegree histogram mismatch"
		}
		if outHist[b] != g.counts.sumOut(b) {
			return "outdegree histogram mismatch"
		}
	}
	if eq != g.counts.sumEq() {
		return "in==out counter mismatch"
	}
	if edges != g.NumEdges() {
		return "edge count mismatch"
	}
	if len(g.vertices) != g.NumVertices() {
		return "vertex count mismatch"
	}
	// Symmetry: u.out[v] must equal v.in[u].
	for u, ux := range g.vertices {
		for v, m := range ux.out {
			if g.vertices[v].in[u] != m {
				return "adjacency asymmetry between " + itoa(uint64(u)) + " and " + itoa(uint64(v))
			}
		}
	}
	return ""
}

func itoa(x uint64) string {
	if x == 0 {
		return "0"
	}
	var buf [20]byte
	i := len(buf)
	for x > 0 {
		i--
		buf[i] = byte('0' + x%10)
		x /= 10
	}
	return string(buf[i:])
}
