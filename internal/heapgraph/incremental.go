package heapgraph

// This file implements incremental weak-connectivity tracking (the
// strong-connectivity sibling lives in incremental_scc.go and shares
// the union-find core and mode machinery defined here). The
// snapshot path (structure.go) recomputes components with an O(V+E)
// walk at every metric computation point, which caps the viable
// sampling frequency by heap *size*; the incremental tracker instead
// maintains the component count under mutation, so a metric point
// costs O(α) per graph operation since the previous point — heap
// *churn*, not heap size.
//
// Union-find handles vertex and edge additions exactly in O(α)
// amortized. Deletions are where naive union-find gives up (it cannot
// split); the tracker recovers exactness for the overwhelmingly common
// delete shapes and falls back to counting the rest:
//
//   - removing an edge whose endpoints remain directly linked (a
//     parallel edge or the reverse direction) cannot change weak
//     connectivity: exact no-op;
//   - removing an edge that isolates an endpoint detaches that vertex
//     into a fresh singleton via node indirection (below): exact;
//   - removing a vertex with zero or one distinct neighbour removes a
//     singleton or a leaf; a leaf never disconnects anything (every
//     path through it can be shortcut at its sole neighbour): exact;
//   - anything else *may* split a component: the tracker marks itself
//     dirty and counts the delete.
//
// Dirty deletes are amortized by generation-tagged rebuilds: when the
// dirty counter reaches the rebuild threshold the tracker re-unions
// from the live adjacency during the mutation (synchronously, on the
// writer goroutine — the graph is single-writer, so there is no
// background rebuild to race with), and a query on a dirty tracker
// rebuilds lazily first. A rebuild is one O(V+E) walk amortized over
// at least `threshold` deletes, and workloads dominated by exact
// shapes (lists, trees, pools — the paper's heaps) never trigger one.
//
// Node indirection. A union-find element cannot be detached from its
// tree without breaking other elements' parent chains through it. The
// tracker therefore separates *vertices* from *union-find nodes*: a
// per-slot table maps each live vertex to a node in a growable node
// arena, and detaching a vertex just points its slot at a fresh
// singleton node, leaving the old node in place as an interior link.
// Abandoned nodes accumulate; when the node arena exceeds ~4x the
// live vertex count a rebuild compacts it (reusing the slices'
// capacity, so steady-state churn performs no allocation).
//
// The tracker maintains Count only. Largest requires knowing, at
// every moment, the size of a component that deletions may have
// silently shrunk — exactly the information union-find cannot keep
// under splits — so Largest remains a snapshot-path statistic. The
// metric suite only consumes Count (WCC per 100 vertices), so reports
// are unaffected.

import "fmt"

// ConnectivityMode selects how the Components metric obtains the weak
// component count.
type ConnectivityMode uint8

const (
	// ConnectivitySnapshot recomputes components with a full
	// generation-memoized graph walk at each query (the original
	// behavior, and the differential oracle for the other modes).
	ConnectivitySnapshot ConnectivityMode = iota
	// ConnectivityIncremental maintains the count under mutation with
	// the union-find tracker; queries are O(1) unless a rebuild is
	// pending.
	ConnectivityIncremental
	// ConnectivityVerify runs both paths at every query and panics on
	// divergence. It is an oracle mode for tests and CI, not for
	// production monitoring: each query still pays the snapshot walk.
	ConnectivityVerify
)

// String returns the mode's flag spelling.
func (m ConnectivityMode) String() string {
	switch m {
	case ConnectivitySnapshot:
		return "snapshot"
	case ConnectivityIncremental:
		return "incremental"
	case ConnectivityVerify:
		return "verify"
	}
	return fmt.Sprintf("ConnectivityMode(%d)", uint8(m))
}

// ParseConnectivity resolves a -connectivity flag value.
func ParseConnectivity(s string) (ConnectivityMode, error) {
	switch s {
	case "snapshot":
		return ConnectivitySnapshot, nil
	case "incremental":
		return ConnectivityIncremental, nil
	case "verify":
		return ConnectivityVerify, nil
	}
	return 0, fmt.Errorf("heapgraph: unknown connectivity mode %q (want snapshot, incremental or verify)", s)
}

// DefaultRebuildThreshold is the number of conservatively-counted
// deletes that triggers an amortized re-union. One rebuild is an
// O(V+E) walk; at 64 deletes per rebuild the amortized cost per
// delete stays far below one snapshot walk per metric point even on
// delete-heavy churn.
const DefaultRebuildThreshold = 64

// ufCore is the union-find state shared by the weak-connectivity
// tracker below and the strong-connectivity tracker
// (incremental_scc.go): the node-indirection table, the node arena,
// and the count/dirty/threshold bookkeeping. All access is from the
// graph's writer goroutine.
type ufCore struct {
	// node maps arena slot → union-find node, parallel to Graph.ids.
	// Entries for dead slots are stale and never read.
	node []int32
	// parent/size form the union-find node arena. size is only
	// meaningful at roots and counts live vertices (not nodes), so
	// detached vertices leave their abandoned nodes uncounted.
	parent []int32
	size   []int32

	count     int // live component count; exact iff valid && dirty == 0
	dirty     int // conservative mutations since the tracker was last exact
	threshold int // dirty level that forces a rebuild during mutation
	valid     bool
}

// newNode appends a fresh singleton node to the node arena.
func (t *ufCore) newNode() int32 {
	n := int32(len(t.parent))
	t.parent = append(t.parent, n)
	t.size = append(t.size, 1)
	return n
}

// find returns x's root, halving the path as it goes.
func (t *ufCore) find(x int32) int32 {
	for t.parent[x] != x {
		t.parent[x] = t.parent[t.parent[x]]
		x = t.parent[x]
	}
	return x
}

// union joins the components of nodes a and b (union by size),
// decrementing the count when they were distinct.
func (t *ufCore) union(a, b int32) {
	ra, rb := t.find(a), t.find(b)
	if ra == rb {
		return
	}
	if t.size[ra] < t.size[rb] {
		ra, rb = rb, ra
	}
	t.parent[rb] = ra
	t.size[ra] += t.size[rb]
	t.count--
}

// wccTracker is the incremental weak-connectivity state: the shared
// union-find core is the whole of it (weak connectivity needs no
// probe or Tarjan scratch).
type wccTracker struct {
	ufCore
}

// detach moves the vertex at slot s (already known to be isolated in
// the graph) out of its component into a fresh singleton node. The old
// node stays behind as an interior link so other vertices' parent
// chains through it remain intact.
func (t *wccTracker) detach(s int32) {
	r := t.find(t.node[s])
	t.size[r]--
	if t.size[r] == 0 {
		t.count-- // the vertex was the component's last member
	}
	t.node[s] = t.newNode()
	t.count++
}

// SetConnectivity selects the connectivity mode and, for the
// incremental and verify modes, the rebuild threshold (<= 0 selects
// DefaultRebuildThreshold). Like mutation, it must be called from the
// graph's writer goroutine; switching to snapshot discards the
// tracker.
func (g *Graph) SetConnectivity(mode ConnectivityMode, rebuildThreshold int) {
	g.connMode = mode
	if mode == ConnectivitySnapshot {
		g.wcc = nil
		return
	}
	if rebuildThreshold <= 0 {
		rebuildThreshold = DefaultRebuildThreshold
	}
	g.wcc = &wccTracker{ufCore: ufCore{threshold: rebuildThreshold}}
}

// Connectivity returns the graph's connectivity mode.
func (g *Graph) Connectivity() ConnectivityMode { return g.connMode }

// ConnectedComponentCount returns the number of weakly connected
// components through the configured mode. Writer goroutine only (both
// the tracker and the memoized snapshot path require it). In verify
// mode it computes both paths and panics on divergence.
func (g *Graph) ConnectedComponentCount() int {
	switch g.connMode {
	case ConnectivityIncremental:
		return g.incrementalWCCCount()
	case ConnectivityVerify:
		inc := g.incrementalWCCCount()
		snap := g.WeaklyConnectedComponentsCached().Count
		if inc != snap {
			panic(fmt.Sprintf(
				"heapgraph: connectivity verify divergence: incremental=%d snapshot=%d (V=%d E=%d gen=%d)",
				inc, snap, g.NumVertices(), g.NumEdges(), g.Generation()))
		}
		return inc
	default:
		return g.WeaklyConnectedComponentsCached().Count
	}
}

// incrementalWCCCount returns the tracker's count, rebuilding first if
// the tracker has never been built or deletes have dirtied it.
func (g *Graph) incrementalWCCCount() int {
	t := g.wcc
	if !t.valid || t.dirty > 0 {
		g.rebuildWCC()
	}
	return t.count
}

// rebuildWCC re-unions the tracker from the live adjacency: one fresh
// node per live vertex, one union per distinct out-edge (the symmetry
// invariant makes the in-adjacency redundant). Existing slice capacity
// is reused, so rebuilds after the first allocate only when the arena
// has grown. This is also the compaction path: it resets the node
// arena to exactly one node per live vertex.
func (g *Graph) rebuildWCC() {
	t := g.wcc
	if cap(t.node) < len(g.ids) {
		t.node = make([]int32, len(g.ids))
	} else {
		t.node = t.node[:len(g.ids)]
	}
	t.parent = t.parent[:0]
	t.size = t.size[:0]
	t.count = 0
	for s := range g.ids {
		if !g.alive[s] {
			continue
		}
		t.node[s] = t.newNode()
		t.count++
	}
	for s := range g.ids {
		if !g.alive[s] {
			continue
		}
		self := g.ids[s]
		a := t.node[s]
		g.outAdj[s].each(func(id VertexID, _ int32) bool {
			if id != self {
				t.union(a, t.node[g.slotOf(id)])
			}
			return true
		})
	}
	t.dirty = 0
	t.valid = true
}

// wccMaintain reports whether the tracker is present and exact, i.e.
// mutation hooks should apply precise maintenance.
func (g *Graph) wccMaintain() bool {
	t := g.wcc
	return t != nil && t.valid && t.dirty == 0
}

// wccAddVertex is the AddVertex hook: a new vertex is a new singleton
// component.
func (g *Graph) wccAddVertex(s int32) {
	if !g.wccMaintain() {
		return
	}
	t := g.wcc
	if int(s) >= len(t.node) {
		// The vertex arena grew; mirror it. Amortized like append.
		t.node = append(t.node, 0)
	}
	t.node[s] = t.newNode()
	t.count++
	g.wccMaybeCompact()
}

// wccAddEdge is the AddEdge hook (u != v slots; self-loops never
// change weak connectivity and are filtered by the caller).
func (g *Graph) wccAddEdge(us, vs int32) {
	if !g.wccMaintain() {
		return
	}
	t := g.wcc
	t.union(t.node[us], t.node[vs])
}

// wccRemoveEdge is the RemoveEdge hook, called after the adjacency
// decrement for a non-self-loop edge u→v. Exact cases: the endpoints
// remain directly linked (no-op), or an endpoint lost its last edge
// (detach to singleton). Anything else may have split the component:
// count it toward the rebuild budget.
func (g *Graph) wccRemoveEdge(u, v VertexID, us, vs int32) {
	t := g.wcc
	if t == nil || !t.valid {
		return // never queried yet; the first query builds from scratch
	}
	if t.dirty > 0 {
		t.dirty++
		return
	}
	if g.outAdj[us].get(v) > 0 || g.outAdj[vs].get(u) > 0 {
		return // still directly linked in some direction
	}
	split := true
	if g.distinctNeighbors(us, u, 1) == 0 {
		t.detach(us)
		split = false
	}
	if g.distinctNeighbors(vs, v, 1) == 0 {
		t.detach(vs)
		split = false
	}
	if split {
		t.dirty++
	}
}

// wccRemoveVertex is the RemoveVertex hook. It must run BEFORE the
// edges are detached — the classification needs the vertex's original
// neighbour set. Exact cases: an isolated vertex (singleton removal)
// and a vertex with exactly one distinct neighbour (leaf removal —
// every path through a sole-neighbour vertex shortcuts through that
// neighbour, so the rest of the component stays connected).
func (g *Graph) wccRemoveVertex(v VertexID, s int32) {
	t := g.wcc
	if t == nil || !t.valid {
		return
	}
	if t.dirty > 0 {
		t.dirty++
		return
	}
	switch g.distinctNeighbors(s, v, 2) {
	case 0:
		// Isolated: its component is exactly itself.
		r := t.find(t.node[s])
		t.size[r]--
		t.count--
	case 1:
		// Leaf: the component loses one member, no split.
		r := t.find(t.node[s])
		t.size[r]--
	default:
		t.dirty++
	}
}

// wccSettle runs at the END of a delete mutation: once the dirty
// counter has spent the rebuild budget, re-union now rather than at
// the next query, keeping worst-case query latency flat. It must not
// run mid-mutation — wccRemoveVertex classifies before the edges are
// detached, and a rebuild at that point would capture the
// half-removed vertex.
func (g *Graph) wccSettle() {
	if t := g.wcc; t != nil && t.valid && t.dirty >= t.threshold {
		g.rebuildWCC()
	}
}

// wccMaybeCompact rebuilds when abandoned nodes dominate the node
// arena, bounding its growth under detach-heavy churn and letting
// steady state reuse capacity instead of allocating.
func (g *Graph) wccMaybeCompact() {
	t := g.wcc
	if len(t.parent) > 4*g.NumVertices()+64 {
		g.rebuildWCC()
	}
}

// distinctNeighbors counts the distinct non-self neighbours of the
// vertex at slot s (union of both directions), stopping as soon as
// the count exceeds limit, which keeps the scan O(limit). Only the
// first neighbour found is deduplicated across the two directions, so
// the result is exact for true counts 0 and 1 (the only neighbour is
// the only possible duplicate) and a lower bound of 2 otherwise —
// precisely the classes the delete hooks distinguish.
func (g *Graph) distinctNeighbors(s int32, self VertexID, limit int) int {
	count := 0
	first := VertexID(0)
	scan := func(id VertexID, _ int32) bool {
		if id == self {
			return true
		}
		if count == 0 {
			first = id
			count = 1
			return true
		}
		if id == first {
			return true
		}
		count++
		return count <= limit
	}
	g.outAdj[s].each(scan)
	if count <= limit {
		g.inAdj[s].each(scan)
	}
	return count
}
