package heapgraph

// This file implements incremental strong-connectivity tracking, the
// SCC sibling of the weak-connectivity tracker in incremental.go. It
// shares the union-find core (node indirection, growable node arena,
// dirty/threshold bookkeeping) and the ConnectivityMode machinery, and
// removes the last O(V+E) walk from the extended metric suite: with
// both trackers on, a metric point costs O(churn), never O(heap).
//
// Strong connectivity is harder than weak on both mutation kinds:
//
// Edge inserts. Adding u→v merges SCCs exactly when v already reaches
// u; every SCC on a v⇝u path joins u's SCC. The tracker answers this
// with a bounded two-pass probe (sccAddEdge): a forward search from v
// that treats SCC(u) as a single super-node — members of SCC(u) are
// recorded as hits but never expanded — collecting the visited set F,
// then a backward closure over in-edges restricted to F from the
// vertices that touched SCC(u). Every vertex in F that reaches SCC(u)
// lies on a v⇝u path and is merged into SCC(u). The result is EXACT,
// not heuristic: in the condensation DAG a path from SCC(v) to SCC(u)
// cannot pass through SCC(u) as an intermediate (the DAG is acyclic),
// so refusing to expand SCC(u) members cannot hide any merge
// candidate. The probe charges every adjacency entry it scans against
// a budget (DefaultSCCProbeBudget); exceeding it abandons the probe
// and marks the tracker dirty — the common fast paths (edge into a
// fresh object, edge inside an existing SCC) complete in O(1)-ish
// work, and pathological hub fan-outs degrade to the amortized
// rebuild instead of an unbounded walk on the mutation path.
//
// Deletes. Union-find cannot split, so deletes use an exact-shape
// taxonomy mirroring the WCC tracker's, with different shapes:
//
//   - removing an edge with a parallel edge remaining: no-op;
//   - removing a CROSS-SCC edge: exact no-op — a cycle through the
//     edge would have put its endpoints in one SCC already, so no
//     cycle dies and no SCC can merge by losing an edge;
//   - removing an INTRA-SCC edge may split the SCC: dirty;
//   - removing a vertex whose SCC has size 1: exact count decrement —
//     no cycle passes through a singleton-SCC vertex, so every other
//     SCC keeps its internal cycles intact (this covers isolated
//     vertices and, unlike the WCC taxonomy, every chain/tree/DAG
//     vertex regardless of degree);
//   - removing a member of a multi-vertex SCC: dirty.
//
// Dirty states amortize exactly like the WCC tracker: the dirty
// counter forces a rebuild at the configured threshold during
// mutation (sccSettle — note AddEdge also settles, because probe
// bailouts dirty on *insert*), and queries on a dirty tracker rebuild
// lazily first. The rebuild is an iterative Tarjan walk over the live
// adjacency using tracker-owned scratch (a CSR copy of the out-edges
// plus index/lowlink/stack arrays), mirroring FreezeSCC's pre-shrunk
// reduction — isolated vertices become singleton SCCs directly,
// without Tarjan frames — but without materializing a snapshot, so
// steady-state rebuilds reuse capacity and allocate nothing.
//
// Like the WCC tracker, only Count is maintained (the suite consumes
// SCC per 100 vertices); Largest stays a snapshot-path statistic.

import "fmt"

// DefaultSCCProbeBudget caps the adjacency entries one edge-insert
// probe may scan (both passes combined) before giving up and marking
// the tracker dirty. The budget bounds the mutation-path cost at hub
// vertices; the overwhelmingly common insert shapes (fresh target,
// intra-SCC edge, short cycle closure) complete well under it.
const DefaultSCCProbeBudget = 128

// sccFrame is one iterative-Tarjan stack frame: a vertex slot and the
// next unexplored position within its CSR edge range.
type sccFrame struct {
	v   int32
	pos int32
}

// sccTracker is the incremental strong-connectivity state. All access
// is from the graph's writer goroutine.
type sccTracker struct {
	ufCore

	budget int // probe budget (adjacency entries per insert probe)

	// Probe scratch (sccAddEdge). visit/reach are stamp arrays indexed
	// by slot: visit marks membership in the forward set F, reach marks
	// the backward closure. One stamp increment invalidates both.
	visit []uint32
	reach []uint32
	stamp uint32
	queue []int32 // BFS worklist, reused by both passes
	fset  []int32 // the forward set F, in visit order
	seeds []int32 // F members with an edge into SCC(u)

	// Rebuild scratch (rebuildSCC): a CSR copy of the live out-edges
	// and the iterative-Tarjan arrays.
	offs    []int32
	targets []int32
	index   []int32
	low     []int32
	onStack []bool
	frames  []sccFrame
	stack   []int32
}

// SetSCC selects how StronglyConnectedComponentCount obtains the SCC
// count — the strong-connectivity analogue of SetConnectivity, with
// identical mode semantics and flag spellings — and, for the
// incremental and verify modes, the rebuild threshold (<= 0 selects
// DefaultRebuildThreshold). Writer goroutine only; switching to
// snapshot discards the tracker.
func (g *Graph) SetSCC(mode ConnectivityMode, rebuildThreshold int) {
	g.sccMode = mode
	if mode == ConnectivitySnapshot {
		g.scc = nil
		return
	}
	if rebuildThreshold <= 0 {
		rebuildThreshold = DefaultRebuildThreshold
	}
	g.scc = &sccTracker{
		ufCore: ufCore{threshold: rebuildThreshold},
		budget: DefaultSCCProbeBudget,
	}
}

// SCCMode returns the graph's strong-connectivity mode.
func (g *Graph) SCCMode() ConnectivityMode { return g.sccMode }

// ParseSCC resolves a -scc flag value. The mode spellings are shared
// with ParseConnectivity; only the error wording differs.
func ParseSCC(s string) (ConnectivityMode, error) {
	m, err := ParseConnectivity(s)
	if err != nil {
		return 0, fmt.Errorf("heapgraph: unknown scc mode %q (want snapshot, incremental or verify)", s)
	}
	return m, nil
}

// SetSCCProbeBudget overrides the edge-insert probe budget (<= 0
// restores DefaultSCCProbeBudget). No-op in snapshot mode. Exposed for
// tests and tuning; the default is right for the paper's heap shapes.
func (g *Graph) SetSCCProbeBudget(n int) {
	if g.scc == nil {
		return
	}
	if n <= 0 {
		n = DefaultSCCProbeBudget
	}
	g.scc.budget = n
}

// StronglyConnectedComponentCount returns the number of strongly
// connected components through the configured mode. Writer goroutine
// only. In verify mode it computes both paths and panics on
// divergence.
func (g *Graph) StronglyConnectedComponentCount() int {
	switch g.sccMode {
	case ConnectivityIncremental:
		return g.incrementalSCCCount()
	case ConnectivityVerify:
		inc := g.incrementalSCCCount()
		snap := g.StronglyConnectedComponentsCached().Count
		if inc != snap {
			panic(fmtSCCDivergence(g, inc, snap))
		}
		return inc
	default:
		return g.StronglyConnectedComponentsCached().Count
	}
}

// fmtSCCDivergence builds the verify-mode panic message (kept out of
// line so the query path stays tiny).
func fmtSCCDivergence(g *Graph, inc, snap int) string {
	return "heapgraph: scc verify divergence: incremental=" + itoa(uint64(inc)) +
		" snapshot=" + itoa(uint64(snap)) + " (V=" + itoa(uint64(g.NumVertices())) +
		" E=" + itoa(uint64(g.NumEdges())) + " gen=" + itoa(g.Generation()) + ")"
}

// incrementalSCCCount returns the tracker's count, rebuilding first if
// the tracker has never been built or mutations have dirtied it.
func (g *Graph) incrementalSCCCount() int {
	t := g.scc
	if !t.valid || t.dirty > 0 {
		g.rebuildSCC()
	}
	return t.count
}

// sccMaintain reports whether the tracker is present and exact.
func (g *Graph) sccMaintain() bool {
	t := g.scc
	return t != nil && t.valid && t.dirty == 0
}

// sccAddVertex is the AddVertex hook: a new vertex is a new singleton
// SCC.
func (g *Graph) sccAddVertex(s int32) {
	if !g.sccMaintain() {
		return
	}
	t := g.scc
	if int(s) >= len(t.node) {
		t.node = append(t.node, 0)
	}
	t.node[s] = t.newNode()
	t.count++
	g.sccMaybeCompact()
}

// sccAddEdge is the AddEdge hook (u != v slots; a self-loop never
// changes the SCC partition and is filtered by the caller). If u and v
// are already strongly connected the insert is a no-op; otherwise the
// bounded probe decides exactly which SCCs the new edge merges, or
// dirties the tracker when the probe budget runs out.
func (g *Graph) sccAddEdge(us, vs int32) {
	if !g.sccMaintain() {
		return
	}
	t := g.scc
	ru := t.find(t.node[us])
	if ru == t.find(t.node[vs]) {
		return // intra-SCC edge: partition unchanged
	}
	g.sccProbe(us, vs, ru)
}

// sccProbe implements the two-pass reverse-reachability probe for a
// new edge u→v whose endpoints are in distinct SCCs (ru = root of
// SCC(u)). See the file comment for the exactness argument.
func (g *Graph) sccProbe(us, vs, ru int32) {
	t := g.scc
	t.ensureProbeScratch(len(g.ids))
	t.stamp++
	work, budget := 0, t.budget
	hit, bail := false, false

	// Pass 1: forward search from v over out-edges, never expanding
	// members of SCC(u). F = every visited vertex outside SCC(u).
	t.queue = append(t.queue[:0], vs)
	t.fset = append(t.fset[:0], vs)
	t.seeds = t.seeds[:0]
	t.visit[vs] = t.stamp
	for len(t.queue) > 0 && !bail {
		s := t.queue[len(t.queue)-1]
		t.queue = t.queue[:len(t.queue)-1]
		self := g.ids[s]
		touched := false
		g.outAdj[s].each(func(id VertexID, _ int32) bool {
			if work++; work > budget {
				bail = true
				return false
			}
			if id == self {
				return true
			}
			ws := g.slotOf(id)
			if t.visit[ws] == t.stamp {
				return true
			}
			if t.find(t.node[ws]) == ru {
				hit = true
				touched = true // s has an edge into SCC(u)
				return true
			}
			t.visit[ws] = t.stamp
			t.queue = append(t.queue, ws)
			t.fset = append(t.fset, ws)
			return true
		})
		if touched {
			t.seeds = append(t.seeds, s)
		}
	}
	if bail {
		t.dirty++
		return
	}
	if !hit {
		return // v does not reach u: no cycle, exact no-op
	}

	// Pass 2: backward closure inside F from the seeds. A vertex of F
	// reaches SCC(u) iff some F-path leads from it to a seed, because
	// the forward pass made F closed under out-edges (modulo edges
	// into SCC(u), which the seeds account for).
	t.queue = t.queue[:0]
	for _, s := range t.seeds {
		if t.reach[s] != t.stamp {
			t.reach[s] = t.stamp
			t.queue = append(t.queue, s)
		}
	}
	for len(t.queue) > 0 && !bail {
		s := t.queue[len(t.queue)-1]
		t.queue = t.queue[:len(t.queue)-1]
		g.inAdj[s].each(func(id VertexID, _ int32) bool {
			if work++; work > budget {
				bail = true
				return false
			}
			ws := g.slotOf(id)
			if t.visit[ws] == t.stamp && t.reach[ws] != t.stamp {
				t.reach[ws] = t.stamp
				t.queue = append(t.queue, ws)
			}
			return true
		})
	}
	if bail {
		t.dirty++
		return
	}

	// Merge: every F vertex that reaches SCC(u) is on a v⇝u path and
	// now shares a cycle with u through the new edge.
	for _, s := range t.fset {
		if t.reach[s] == t.stamp {
			t.union(t.node[s], t.node[us])
		}
	}
}

// ensureProbeScratch sizes the stamp arrays to the vertex arena and
// handles stamp wraparound. Called at probe start, so growth never
// invalidates in-flight marks. Growth takes 50% headroom: the arena
// creeps one slot per AddVertex while the heap grows, and exact-fit
// arrays would reallocate megabytes on every mutation of that phase.
func (t *sccTracker) ensureProbeScratch(n int) {
	if len(t.visit) < n {
		c := n + n/2
		t.visit = make([]uint32, c)
		t.reach = make([]uint32, c)
		t.stamp = 0
	}
	if t.stamp == ^uint32(0) {
		for i := range t.visit {
			t.visit[i] = 0
			t.reach[i] = 0
		}
		t.stamp = 0
	}
}

// sccRemoveEdge is the RemoveEdge hook, called after the adjacency
// decrement for a non-self-loop edge u→v (slots us→vs). Exact cases: a
// parallel edge remains, or the edge was cross-SCC (losing it cannot
// split any cycle). An intra-SCC edge may have been the cycle's back
// edge: count it toward the rebuild budget.
func (g *Graph) sccRemoveEdge(v VertexID, us, vs int32) {
	t := g.scc
	if t == nil || !t.valid {
		return // never queried yet; the first query builds from scratch
	}
	if t.dirty > 0 {
		t.dirty++
		return
	}
	if g.outAdj[us].get(v) > 0 {
		return // parallel edge remains: same reachability
	}
	if t.find(t.node[us]) != t.find(t.node[vs]) {
		return // cross-SCC edge: no cycle passed through it
	}
	t.dirty++
}

// sccRemoveVertex is the RemoveVertex hook. It must run BEFORE the
// edges are detached (the slot's node entry and SCC size are what is
// classified). Exact case: the vertex is its own SCC — no cycle runs
// through it, so every other SCC survives intact and the count just
// drops by one. Removing a member of a multi-vertex SCC shatters it
// unpredictably: dirty.
func (g *Graph) sccRemoveVertex(s int32) {
	t := g.scc
	if t == nil || !t.valid {
		return
	}
	if t.dirty > 0 {
		t.dirty++
		return
	}
	r := t.find(t.node[s])
	if t.size[r] == 1 {
		t.size[r] = 0
		t.count--
		return
	}
	t.dirty++
}

// sccSettle runs at the end of a mutation (deletes AND inserts — a
// probe bailout dirties on insert): once the dirty counter has spent
// the rebuild budget, rebuild now rather than at the next query,
// keeping worst-case query latency flat. Like wccSettle it must not
// run mid-mutation.
func (g *Graph) sccSettle() {
	if t := g.scc; t != nil && t.valid && t.dirty >= t.threshold {
		g.rebuildSCC()
	}
}

// sccMaybeCompact rebuilds when abandoned nodes dominate the node
// arena, bounding its growth under churn (the rebuild resets to one
// node per SCC).
func (g *Graph) sccMaybeCompact() {
	t := g.scc
	if len(t.parent) > 4*g.NumVertices()+64 {
		g.rebuildSCC()
	}
}

// rebuildSCC recomputes the tracker from the live adjacency with an
// iterative Tarjan walk: one union-find node per SCC, every member
// slot pointing at it. Mirroring the FreezeSCC reduction, isolated
// vertices (no edges in either direction) shortcut to singleton nodes
// without entering Tarjan. All scratch — the CSR edge copy and the
// Tarjan arrays — is tracker-owned and capacity-reused, so rebuilds
// after the first allocate only when the graph has grown. This is
// also the compaction path.
func (g *Graph) rebuildSCC() {
	t := g.scc
	n := len(g.ids)
	if cap(t.node) < n {
		t.node = make([]int32, n)
	} else {
		t.node = t.node[:n]
	}
	t.parent = t.parent[:0]
	t.size = t.size[:0]
	t.count = 0

	t.offs = sizeI32(t.offs, n+1)
	t.index = sizeI32(t.index, n)
	t.low = sizeI32(t.low, n)
	if cap(t.onStack) < n {
		t.onStack = make([]bool, n)
	} else {
		t.onStack = t.onStack[:n]
	}
	for s := 0; s < n; s++ {
		t.index[s] = 0
		t.onStack[s] = false
	}

	// CSR copy of the out-edges of live, non-isolated vertices (dead
	// and isolated slots get empty ranges). Targets of a live edge are
	// never isolated, so the reduced graph is closed.
	live := func(s int) bool {
		return g.alive[s] && (g.inDeg[s] != 0 || g.outDeg[s] != 0)
	}
	total := int32(0)
	for s := 0; s < n; s++ {
		t.offs[s] = total
		if live(s) {
			total += int32(g.outAdj[s].distinct())
		}
	}
	t.offs[n] = total
	t.targets = sizeI32(t.targets, int(total))
	for s := 0; s < n; s++ {
		if !live(s) {
			continue
		}
		i := t.offs[s]
		g.outAdj[s].each(func(id VertexID, _ int32) bool {
			t.targets[i] = g.slotOf(id)
			i++
			return true
		})
	}

	// Isolated vertices: singleton SCCs, no Tarjan.
	for s := 0; s < n; s++ {
		if g.alive[s] && g.inDeg[s] == 0 && g.outDeg[s] == 0 {
			t.node[s] = t.newNode()
			t.count++
		}
	}

	// Iterative Tarjan over the CSR reduction.
	next := int32(1)
	t.stack = t.stack[:0]
	t.frames = t.frames[:0]
	for root := 0; root < n; root++ {
		if !live(root) || t.index[root] != 0 {
			continue
		}
		t.index[root] = next
		t.low[root] = next
		next++
		t.stack = append(t.stack, int32(root))
		t.onStack[root] = true
		t.frames = append(t.frames, sccFrame{v: int32(root)})
		for len(t.frames) > 0 {
			f := &t.frames[len(t.frames)-1]
			if base := t.offs[f.v]; base+f.pos < t.offs[f.v+1] {
				w := t.targets[base+f.pos]
				f.pos++
				if t.index[w] == 0 {
					t.index[w] = next
					t.low[w] = next
					next++
					t.stack = append(t.stack, w)
					t.onStack[w] = true
					t.frames = append(t.frames, sccFrame{v: w})
				} else if t.onStack[w] && t.index[w] < t.low[f.v] {
					t.low[f.v] = t.index[w]
				}
				continue
			}
			v := f.v
			t.frames = t.frames[:len(t.frames)-1]
			if len(t.frames) > 0 {
				if p := &t.frames[len(t.frames)-1]; t.low[v] < t.low[p.v] {
					t.low[p.v] = t.low[v]
				}
			}
			if t.low[v] == t.index[v] {
				r := t.newNode()
				sz := int32(0)
				for {
					w := t.stack[len(t.stack)-1]
					t.stack = t.stack[:len(t.stack)-1]
					t.onStack[w] = false
					t.node[w] = r
					sz++
					if w == v {
						break
					}
				}
				t.size[r] = sz
				t.count++
			}
		}
	}
	t.dirty = 0
	t.valid = true
}

// sizeI32 returns a slice of length n, reusing s's capacity when it
// suffices. Contents are unspecified; callers overwrite every entry
// they read.
func sizeI32(s []int32, n int) []int32 {
	if cap(s) < n {
		return make([]int32, n)
	}
	return s[:n]
}
