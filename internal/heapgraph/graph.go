// Package heapgraph maintains the heap-graph image at the core of
// HeapMD (paper Section 2.1): a directed multigraph whose vertices are
// heap-allocated objects and whose edges are pointer values stored in
// one object that refer to another.
//
// The execution logger mutates this graph on every allocation, free and
// pointer write, and samples degree-based metrics at metric computation
// points. To keep sampling O(1) — the paper samples every 100,000th
// function entry in programs with hundreds of megabytes of heap — the
// graph maintains incremental degree histograms: for every mutation it
// updates the population counts of each in/out-degree and the count of
// vertices with indegree == outdegree, so metric evaluation never walks
// the graph.
//
// Edges are multi-edges: two fields of object A pointing at object B
// contribute 2 to B's indegree, matching the "number of pointers"
// reading of degree used by the paper.
//
// Concurrency: the adjacency structure is single-writer — only one
// goroutine (the monitoring pipeline's consumer) may mutate the graph
// or walk adjacency. The aggregate counts (CountInDegree,
// CountOutDegree, CountInEqOut, NumVertices, NumEdges, Generation) are
// maintained in lock-striped atomic shards (see sharded.go) and may be
// read from any goroutine while mutation proceeds. Whole-graph
// analyses from other goroutines must work on a Freeze() snapshot.
package heapgraph

import (
	"fmt"
	"sync/atomic"
)

// VertexID names a heap object in the graph. The execution logger
// assigns IDs from an allocation generation counter, so a recycled
// address maps to a fresh vertex.
type VertexID uint64

// maxTracked is the largest degree tracked with its own histogram
// bucket; larger degrees share an overflow bucket. The paper's metrics
// only inspect degrees 0..2, but we track a few more for extension
// metrics and diagnostics.
const maxTracked = 8

type vertex struct {
	out    map[VertexID]int // successor -> edge multiplicity
	in     map[VertexID]int // predecessor -> edge multiplicity
	outDeg int              // total outgoing multiplicity
	inDeg  int              // total incoming multiplicity
}

// componentCache memoizes a components decomposition together with the
// mutation generation it was computed at.
type componentCache struct {
	gen   uint64
	stats ComponentStats
	valid bool
}

// Graph is the mutable heap-graph image. Mutation and adjacency walks
// are single-goroutine; the degree/size counters tolerate concurrent
// readers (see the package comment).
type Graph struct {
	vertices map[VertexID]*vertex
	counts   shardedCounts
	nVerts   atomic.Int64
	edges    atomic.Int64 // total edge multiplicity
	// gen counts successful mutations. Metric evaluation uses it to
	// reuse cached whole-graph analyses and to tag Freeze snapshots.
	gen atomic.Uint64

	wccCache componentCache
	sccCache componentCache
}

// New returns an empty heap-graph.
func New() *Graph {
	return &Graph{vertices: make(map[VertexID]*vertex)}
}

func bucket(d int) int {
	if d > maxTracked {
		return maxTracked + 1
	}
	return d
}

// track updates the histograms and eq counter for vertex v whose
// degrees change from (oldIn, oldOut) to (newIn, newOut).
func (g *Graph) track(v VertexID, oldIn, oldOut, newIn, newOut int) {
	sh := g.counts.shard(v)
	sh.inHist[bucket(oldIn)].Add(-1)
	sh.outHist[bucket(oldOut)].Add(-1)
	sh.inHist[bucket(newIn)].Add(1)
	sh.outHist[bucket(newOut)].Add(1)
	if oldIn == oldOut {
		sh.eq.Add(-1)
	}
	if newIn == newOut {
		sh.eq.Add(1)
	}
}

// AddVertex inserts a new isolated vertex. Adding an existing vertex
// is a no-op (the logger can observe redundant allocation events when
// replaying truncated traces).
func (g *Graph) AddVertex(v VertexID) {
	if _, ok := g.vertices[v]; ok {
		return
	}
	g.vertices[v] = &vertex{}
	sh := g.counts.shard(v)
	sh.inHist[0].Add(1)
	sh.outHist[0].Add(1)
	sh.eq.Add(1) // 0 == 0
	g.nVerts.Add(1)
	g.gen.Add(1)
}

// HasVertex reports whether v is present.
func (g *Graph) HasVertex(v VertexID) bool {
	_, ok := g.vertices[v]
	return ok
}

// RemoveVertex deletes v and every incident edge (in both directions),
// adjusting the degrees of its neighbours. Removing an absent vertex
// is a no-op.
func (g *Graph) RemoveVertex(v VertexID) {
	vx, ok := g.vertices[v]
	if !ok {
		return
	}
	// Detach outgoing edges: each successor loses incoming
	// multiplicity.
	for succ, mult := range vx.out {
		if succ == v {
			g.edges.Add(-int64(mult))
			continue // self-loop dies with the vertex
		}
		sx := g.vertices[succ]
		g.track(succ, sx.inDeg, sx.outDeg, sx.inDeg-mult, sx.outDeg)
		sx.inDeg -= mult
		delete(sx.in, v)
		g.edges.Add(-int64(mult))
	}
	// Detach incoming edges.
	for pred, mult := range vx.in {
		if pred == v {
			continue // self-loop already handled above
		}
		px := g.vertices[pred]
		g.track(pred, px.inDeg, px.outDeg, px.inDeg, px.outDeg-mult)
		px.outDeg -= mult
		delete(px.out, v)
		g.edges.Add(-int64(mult))
	}
	// Remove v itself from the histograms.
	sh := g.counts.shard(v)
	sh.inHist[bucket(vx.inDeg)].Add(-1)
	sh.outHist[bucket(vx.outDeg)].Add(-1)
	if vx.inDeg == vx.outDeg {
		sh.eq.Add(-1)
	}
	delete(g.vertices, v)
	g.nVerts.Add(-1)
	g.gen.Add(1)
}

// AddEdge adds one unit of edge multiplicity from u to v. Both
// vertices must exist; AddEdge reports whether the edge was added.
// Self-loops are permitted (an object can point to itself).
func (g *Graph) AddEdge(u, v VertexID) bool {
	ux, ok := g.vertices[u]
	if !ok {
		return false
	}
	vx, ok := g.vertices[v]
	if !ok {
		return false
	}
	if ux.out == nil {
		ux.out = make(map[VertexID]int)
	}
	if vx.in == nil {
		vx.in = make(map[VertexID]int)
	}
	ux.out[v]++
	vx.in[u]++
	if u == v {
		g.track(u, ux.inDeg, ux.outDeg, ux.inDeg+1, ux.outDeg+1)
		ux.inDeg++
		ux.outDeg++
	} else {
		g.track(u, ux.inDeg, ux.outDeg, ux.inDeg, ux.outDeg+1)
		ux.outDeg++
		g.track(v, vx.inDeg, vx.outDeg, vx.inDeg+1, vx.outDeg)
		vx.inDeg++
	}
	g.edges.Add(1)
	g.gen.Add(1)
	return true
}

// RemoveEdge removes one unit of edge multiplicity from u to v,
// reporting whether an edge was present to remove.
func (g *Graph) RemoveEdge(u, v VertexID) bool {
	ux, ok := g.vertices[u]
	if !ok || ux.out[v] == 0 {
		return false
	}
	vx := g.vertices[v]
	ux.out[v]--
	if ux.out[v] == 0 {
		delete(ux.out, v)
	}
	vx.in[u]--
	if vx.in[u] == 0 {
		delete(vx.in, u)
	}
	if u == v {
		g.track(u, ux.inDeg, ux.outDeg, ux.inDeg-1, ux.outDeg-1)
		ux.inDeg--
		ux.outDeg--
	} else {
		g.track(u, ux.inDeg, ux.outDeg, ux.inDeg, ux.outDeg-1)
		ux.outDeg--
		g.track(v, vx.inDeg, vx.outDeg, vx.inDeg-1, vx.outDeg)
		vx.inDeg--
	}
	g.edges.Add(-1)
	g.gen.Add(1)
	return true
}

// Multiplicity returns the number of parallel edges from u to v.
func (g *Graph) Multiplicity(u, v VertexID) int {
	ux, ok := g.vertices[u]
	if !ok {
		return 0
	}
	return ux.out[v]
}

// NumVertices returns the number of vertices. Safe to call
// concurrently with mutation.
func (g *Graph) NumVertices() int { return int(g.nVerts.Load()) }

// NumEdges returns the total edge multiplicity. Safe to call
// concurrently with mutation.
func (g *Graph) NumEdges() int { return int(g.edges.Load()) }

// Generation returns the mutation-generation counter: it increments on
// every successful vertex or edge mutation, so two reads returning the
// same value bracket a window in which the graph did not change. Safe
// to call concurrently with mutation.
func (g *Graph) Generation() uint64 { return g.gen.Load() }

// CountInDegree returns the number of vertices with indegree exactly d
// (for d <= maxTracked; larger d values return 0 — use
// CountInDegreeOverflow for the tail). Safe to call concurrently with
// mutation.
func (g *Graph) CountInDegree(d int) int {
	if d < 0 || d > maxTracked {
		return 0
	}
	return g.counts.sumIn(d)
}

// CountOutDegree returns the number of vertices with outdegree exactly
// d (d <= maxTracked). Safe to call concurrently with mutation.
func (g *Graph) CountOutDegree(d int) int {
	if d < 0 || d > maxTracked {
		return 0
	}
	return g.counts.sumOut(d)
}

// CountInDegreeOverflow returns the number of vertices with indegree
// greater than maxTracked.
func (g *Graph) CountInDegreeOverflow() int { return g.counts.sumIn(maxTracked + 1) }

// CountOutDegreeOverflow returns the number of vertices with outdegree
// greater than maxTracked.
func (g *Graph) CountOutDegreeOverflow() int { return g.counts.sumOut(maxTracked + 1) }

// CountInEqOut returns the number of vertices whose indegree equals
// their outdegree. Safe to call concurrently with mutation.
func (g *Graph) CountInEqOut() int { return g.counts.sumEq() }

// InDegree returns v's indegree (total incoming multiplicity).
func (g *Graph) InDegree(v VertexID) int {
	vx, ok := g.vertices[v]
	if !ok {
		return 0
	}
	return vx.inDeg
}

// OutDegree returns v's outdegree.
func (g *Graph) OutDegree(v VertexID) int {
	vx, ok := g.vertices[v]
	if !ok {
		return 0
	}
	return vx.outDeg
}

// Successors calls fn for every distinct successor of v with the edge
// multiplicity; iteration order is unspecified.
func (g *Graph) Successors(v VertexID, fn func(succ VertexID, mult int) bool) {
	vx, ok := g.vertices[v]
	if !ok {
		return
	}
	for s, m := range vx.out {
		if !fn(s, m) {
			return
		}
	}
}

// Predecessors calls fn for every distinct predecessor of v with the
// edge multiplicity.
func (g *Graph) Predecessors(v VertexID, fn func(pred VertexID, mult int) bool) {
	vx, ok := g.vertices[v]
	if !ok {
		return
	}
	for p, m := range vx.in {
		if !fn(p, m) {
			return
		}
	}
}

// Vertices calls fn for every vertex; iteration order is unspecified.
func (g *Graph) Vertices(fn func(VertexID) bool) {
	for v := range g.vertices {
		if !fn(v) {
			return
		}
	}
}

// String summarizes the graph for debugging.
func (g *Graph) String() string {
	return fmt.Sprintf("heapgraph{V=%d E=%d roots=%d leaves=%d in==out=%d}",
		g.NumVertices(), g.NumEdges(), g.CountInDegree(0), g.CountOutDegree(0), g.CountInEqOut())
}
