// Package heapgraph maintains the heap-graph image at the core of
// HeapMD (paper Section 2.1): a directed multigraph whose vertices are
// heap-allocated objects and whose edges are pointer values stored in
// one object that refer to another.
//
// The execution logger mutates this graph on every allocation, free and
// pointer write, and samples degree-based metrics at metric computation
// points. To keep sampling O(1) — the paper samples every 100,000th
// function entry in programs with hundreds of megabytes of heap — the
// graph maintains incremental degree histograms: for every mutation it
// updates the population counts of each in/out-degree and the count of
// vertices with indegree == outdegree, so metric evaluation never walks
// the graph.
//
// Edges are multi-edges: two fields of object A pointing at object B
// contribute 2 to B's indegree, matching the "number of pointers"
// reading of degree used by the paper.
//
// Storage. Vertices live in a flat arena of parallel slices indexed by
// slot: ids, in/out degree (struct-of-arrays), and one adjacency set
// per direction. Freed slots are recycled through a freelist, so
// steady-state alloc/free traffic performs no heap allocation. The
// VertexID → slot index is a dense slice while IDs stay near the
// allocated frontier (the logger hands out sequential IDs, so in
// practice it always is) with a sparse map fallback for outliers.
// Adjacency sets inline up to four distinct neighbours per direction
// and spill to a map beyond that (see adjacency.go); the paper's heap
// graphs are dominated by degree 0–2 vertices, so the maps — and their
// allocation and GC-scan cost — all but disappear.
//
// Concurrency: the adjacency structure is single-writer — only one
// goroutine (the monitoring pipeline's consumer) may mutate the graph
// or walk adjacency. The aggregate counts (CountInDegree,
// CountOutDegree, CountInEqOut, NumVertices, NumEdges, Generation) are
// maintained in lock-striped atomic shards (see sharded.go) and may be
// read from any goroutine while mutation proceeds. Whole-graph
// analyses from other goroutines must work on a Freeze() snapshot.
package heapgraph

import (
	"fmt"
	"sync/atomic"
)

// VertexID names a heap object in the graph. The execution logger
// assigns IDs from an allocation generation counter, so a recycled
// address maps to a fresh vertex.
type VertexID uint64

// maxTracked is the largest degree tracked with its own histogram
// bucket; larger degrees share an overflow bucket. The paper's metrics
// only inspect degrees 0..2, but we track a few more for extension
// metrics and diagnostics.
const maxTracked = 8

// denseSlack bounds how far past the current dense-index frontier an
// ID may land while still growing the dense slice (4 bytes per ID of
// headroom). IDs further out go to the sparse map instead, so one wild
// ID from a damaged trace cannot balloon the index.
const denseSlack = 1 << 16

// noSlot marks an absent vertex in slot lookups.
const noSlot = int32(-1)

// componentCache memoizes a components decomposition together with the
// mutation generation it was computed at.
type componentCache struct {
	gen   uint64
	stats ComponentStats
	valid bool
}

// Graph is the mutable heap-graph image. Mutation and adjacency walks
// are single-goroutine; the degree/size counters tolerate concurrent
// readers (see the package comment).
type Graph struct {
	// VertexID → slot+1 (0 = absent). dense covers IDs below its
	// length; sparse holds the stragglers and is nil until needed.
	dense  []int32
	sparse map[VertexID]int32

	// The vertex arena, all indexed by slot.
	ids    []VertexID
	inDeg  []int32 // total incoming multiplicity
	outDeg []int32 // total outgoing multiplicity
	outAdj []adjacency
	inAdj  []adjacency
	alive  []bool

	freeSlots []int32

	counts shardedCounts
	nVerts atomic.Int64
	edges  atomic.Int64 // total edge multiplicity
	// gen counts successful mutations. Metric evaluation uses it to
	// reuse cached whole-graph analyses and to tag Freeze snapshots.
	gen atomic.Uint64

	wccCache componentCache
	sccCache componentCache

	// Incremental weak-connectivity tracking (incremental.go). wcc is
	// nil in snapshot mode; both fields are writer-goroutine state.
	connMode ConnectivityMode
	wcc      *wccTracker

	// Incremental strong-connectivity tracking (incremental_scc.go),
	// the SCC sibling of the pair above. Same ownership rules.
	sccMode ConnectivityMode
	scc     *sccTracker
}

// New returns an empty heap-graph.
func New() *Graph {
	return &Graph{}
}

// slotOf returns v's arena slot, or noSlot.
func (g *Graph) slotOf(v VertexID) int32 {
	if uint64(v) < uint64(len(g.dense)) {
		return g.dense[v] - 1
	}
	if g.sparse == nil {
		return noSlot
	}
	return g.sparse[v] - 1
}

// setSlot records v → slot in the index, growing the dense slice when
// v is within denseSlack of its frontier and falling back to the
// sparse map otherwise.
func (g *Graph) setSlot(v VertexID, slot int32) {
	if uint64(v) < uint64(len(g.dense)) {
		g.dense[v] = slot + 1
		return
	}
	if uint64(v) < uint64(len(g.dense))+denseSlack {
		n := int(v) + 1
		if cap(g.dense) < n {
			grown := make([]int32, n, n+n/2+denseSlack)
			copy(grown, g.dense)
			g.dense = grown
		} else {
			old := len(g.dense)
			g.dense = g.dense[:n]
			for i := old; i < n; i++ {
				g.dense[i] = 0
			}
		}
		g.dense[v] = slot + 1
		return
	}
	if g.sparse == nil {
		g.sparse = make(map[VertexID]int32)
	}
	g.sparse[v] = slot + 1
}

// clearSlot removes v from the index.
func (g *Graph) clearSlot(v VertexID) {
	if uint64(v) < uint64(len(g.dense)) {
		g.dense[v] = 0
		return
	}
	delete(g.sparse, v)
}

// newSlot claims an arena slot for v, recycling from the freelist when
// possible. The slot's adjacency sets are already empty (reset at
// removal time).
func (g *Graph) newSlot(v VertexID) int32 {
	if k := len(g.freeSlots); k > 0 {
		s := g.freeSlots[k-1]
		g.freeSlots = g.freeSlots[:k-1]
		g.ids[s] = v
		g.inDeg[s], g.outDeg[s] = 0, 0
		g.alive[s] = true
		return s
	}
	s := int32(len(g.ids))
	g.ids = append(g.ids, v)
	g.inDeg = append(g.inDeg, 0)
	g.outDeg = append(g.outDeg, 0)
	g.outAdj = append(g.outAdj, adjacency{})
	g.inAdj = append(g.inAdj, adjacency{})
	g.alive = append(g.alive, true)
	return s
}

func bucket(d int) int {
	if d > maxTracked {
		return maxTracked + 1
	}
	return d
}

// track updates the histograms and eq counter for vertex v whose
// degrees change from (oldIn, oldOut) to (newIn, newOut).
func (g *Graph) track(v VertexID, oldIn, oldOut, newIn, newOut int) {
	sh := g.counts.shard(v)
	sh.inHist[bucket(oldIn)].Add(-1)
	sh.outHist[bucket(oldOut)].Add(-1)
	sh.inHist[bucket(newIn)].Add(1)
	sh.outHist[bucket(newOut)].Add(1)
	if oldIn == oldOut {
		sh.eq.Add(-1)
	}
	if newIn == newOut {
		sh.eq.Add(1)
	}
}

// trackIn is track specialized for a change that touches only the
// indegree (a non-self-loop edge mutation changes exactly one degree
// of each endpoint). Skipping the unchanged direction's remove/re-add
// pair halves the atomic traffic of the edge hot path — the histogram
// update is the single most expensive step of a store event.
func (g *Graph) trackIn(v VertexID, oldIn, newIn, out int) {
	sh := g.counts.shard(v)
	if bo, bn := bucket(oldIn), bucket(newIn); bo != bn {
		sh.inHist[bo].Add(-1)
		sh.inHist[bn].Add(1)
	}
	if oldIn == out {
		sh.eq.Add(-1)
	}
	if newIn == out {
		sh.eq.Add(1)
	}
}

// trackOut is trackIn for the outdegree.
func (g *Graph) trackOut(v VertexID, in, oldOut, newOut int) {
	sh := g.counts.shard(v)
	if bo, bn := bucket(oldOut), bucket(newOut); bo != bn {
		sh.outHist[bo].Add(-1)
		sh.outHist[bn].Add(1)
	}
	if oldOut == in {
		sh.eq.Add(-1)
	}
	if newOut == in {
		sh.eq.Add(1)
	}
}

// AddVertex inserts a new isolated vertex. Adding an existing vertex
// is a no-op (the logger can observe redundant allocation events when
// replaying truncated traces).
func (g *Graph) AddVertex(v VertexID) {
	if g.slotOf(v) != noSlot {
		return
	}
	s := g.newSlot(v)
	g.setSlot(v, s)
	sh := g.counts.shard(v)
	sh.inHist[0].Add(1)
	sh.outHist[0].Add(1)
	sh.eq.Add(1) // 0 == 0
	g.nVerts.Add(1)
	g.gen.Add(1)
	g.wccAddVertex(s)
	g.sccAddVertex(s)
}

// HasVertex reports whether v is present.
func (g *Graph) HasVertex(v VertexID) bool {
	return g.slotOf(v) != noSlot
}

// RemoveVertex deletes v and every incident edge (in both directions),
// adjusting the degrees of its neighbours. Removing an absent vertex
// is a no-op.
func (g *Graph) RemoveVertex(v VertexID) {
	s := g.slotOf(v)
	if s == noSlot {
		return
	}
	// Classify the removal for the connectivity trackers before the
	// neighbour sets are torn down (they need the original adjacency).
	g.wccRemoveVertex(v, s)
	g.sccRemoveVertex(s)
	// Detach outgoing edges: each successor loses incoming
	// multiplicity. The callbacks mutate only the neighbours' sets,
	// never slot s's own, which each() permits.
	g.outAdj[s].each(func(succ VertexID, mult int32) bool {
		g.edges.Add(-int64(mult))
		if succ == v {
			return true // self-loop dies with the vertex
		}
		ss := g.slotOf(succ)
		in, out := int(g.inDeg[ss]), int(g.outDeg[ss])
		g.trackIn(succ, in, in-int(mult), out)
		g.inDeg[ss] -= mult
		g.inAdj[ss].drop(v)
		return true
	})
	// Detach incoming edges.
	g.inAdj[s].each(func(pred VertexID, mult int32) bool {
		if pred == v {
			return true // self-loop already handled above
		}
		ps := g.slotOf(pred)
		in, out := int(g.inDeg[ps]), int(g.outDeg[ps])
		g.trackOut(pred, in, out, out-int(mult))
		g.outDeg[ps] -= mult
		g.outAdj[ps].drop(v)
		g.edges.Add(-int64(mult))
		return true
	})
	// Remove v itself from the histograms.
	sh := g.counts.shard(v)
	sh.inHist[bucket(int(g.inDeg[s]))].Add(-1)
	sh.outHist[bucket(int(g.outDeg[s]))].Add(-1)
	if g.inDeg[s] == g.outDeg[s] {
		sh.eq.Add(-1)
	}
	// Reset now (not at reuse) so spill maps become collectable.
	g.outAdj[s].reset()
	g.inAdj[s].reset()
	g.alive[s] = false
	g.clearSlot(v)
	g.freeSlots = append(g.freeSlots, s)
	g.nVerts.Add(-1)
	g.gen.Add(1)
	g.wccSettle()
	g.sccSettle()
}

// AddEdge adds one unit of edge multiplicity from u to v. Both
// vertices must exist; AddEdge reports whether the edge was added.
// Self-loops are permitted (an object can point to itself).
func (g *Graph) AddEdge(u, v VertexID) bool {
	us := g.slotOf(u)
	if us == noSlot {
		return false
	}
	vs := g.slotOf(v)
	if vs == noSlot {
		return false
	}
	g.outAdj[us].inc(v)
	g.inAdj[vs].inc(u)
	if u == v {
		in, out := int(g.inDeg[us]), int(g.outDeg[us])
		g.track(u, in, out, in+1, out+1)
		g.inDeg[us]++
		g.outDeg[us]++
	} else {
		in, out := int(g.inDeg[us]), int(g.outDeg[us])
		g.trackOut(u, in, out, out+1)
		g.outDeg[us]++
		in, out = int(g.inDeg[vs]), int(g.outDeg[vs])
		g.trackIn(v, in, in+1, out)
		g.inDeg[vs]++
		g.wccAddEdge(us, vs)
		g.sccAddEdge(us, vs)
	}
	g.edges.Add(1)
	g.gen.Add(1)
	// Unlike weak connectivity, edge *insertion* can dirty the SCC
	// tracker (a probe-budget bailout), so inserts also settle.
	g.sccSettle()
	return true
}

// RemoveEdge removes one unit of edge multiplicity from u to v,
// reporting whether an edge was present to remove.
func (g *Graph) RemoveEdge(u, v VertexID) bool {
	us := g.slotOf(u)
	if us == noSlot || g.outAdj[us].get(v) == 0 {
		return false
	}
	vs := g.slotOf(v) // present by the symmetry invariant
	g.outAdj[us].dec(v)
	g.inAdj[vs].dec(u)
	if u == v {
		in, out := int(g.inDeg[us]), int(g.outDeg[us])
		g.track(u, in, out, in-1, out-1)
		g.inDeg[us]--
		g.outDeg[us]--
	} else {
		in, out := int(g.inDeg[us]), int(g.outDeg[us])
		g.trackOut(u, in, out, out-1)
		g.outDeg[us]--
		in, out = int(g.inDeg[vs]), int(g.outDeg[vs])
		g.trackIn(v, in, in-1, out)
		g.inDeg[vs]--
		g.wccRemoveEdge(u, v, us, vs)
		g.sccRemoveEdge(v, us, vs)
	}
	g.edges.Add(-1)
	g.gen.Add(1)
	g.wccSettle()
	g.sccSettle()
	return true
}

// Multiplicity returns the number of parallel edges from u to v.
func (g *Graph) Multiplicity(u, v VertexID) int {
	us := g.slotOf(u)
	if us == noSlot {
		return 0
	}
	return int(g.outAdj[us].get(v))
}

// NumVertices returns the number of vertices. Safe to call
// concurrently with mutation.
func (g *Graph) NumVertices() int { return int(g.nVerts.Load()) }

// NumEdges returns the total edge multiplicity. Safe to call
// concurrently with mutation.
func (g *Graph) NumEdges() int { return int(g.edges.Load()) }

// Generation returns the mutation-generation counter: it increments on
// every successful vertex or edge mutation, so two reads returning the
// same value bracket a window in which the graph did not change. Safe
// to call concurrently with mutation.
func (g *Graph) Generation() uint64 { return g.gen.Load() }

// CountInDegree returns the number of vertices with indegree exactly d
// (for d <= maxTracked; larger d values return 0 — use
// CountInDegreeOverflow for the tail). Safe to call concurrently with
// mutation.
func (g *Graph) CountInDegree(d int) int {
	if d < 0 || d > maxTracked {
		return 0
	}
	return g.counts.sumIn(d)
}

// CountOutDegree returns the number of vertices with outdegree exactly
// d (d <= maxTracked). Safe to call concurrently with mutation.
func (g *Graph) CountOutDegree(d int) int {
	if d < 0 || d > maxTracked {
		return 0
	}
	return g.counts.sumOut(d)
}

// CountInDegreeOverflow returns the number of vertices with indegree
// greater than maxTracked.
func (g *Graph) CountInDegreeOverflow() int { return g.counts.sumIn(maxTracked + 1) }

// CountOutDegreeOverflow returns the number of vertices with outdegree
// greater than maxTracked.
func (g *Graph) CountOutDegreeOverflow() int { return g.counts.sumOut(maxTracked + 1) }

// CountInEqOut returns the number of vertices whose indegree equals
// their outdegree. Safe to call concurrently with mutation.
func (g *Graph) CountInEqOut() int { return g.counts.sumEq() }

// InDegree returns v's indegree (total incoming multiplicity).
func (g *Graph) InDegree(v VertexID) int {
	s := g.slotOf(v)
	if s == noSlot {
		return 0
	}
	return int(g.inDeg[s])
}

// OutDegree returns v's outdegree.
func (g *Graph) OutDegree(v VertexID) int {
	s := g.slotOf(v)
	if s == noSlot {
		return 0
	}
	return int(g.outDeg[s])
}

// Successors calls fn for every distinct successor of v with the edge
// multiplicity; iteration order is unspecified.
func (g *Graph) Successors(v VertexID, fn func(succ VertexID, mult int) bool) {
	s := g.slotOf(v)
	if s == noSlot {
		return
	}
	g.outAdj[s].each(func(id VertexID, m int32) bool { return fn(id, int(m)) })
}

// Predecessors calls fn for every distinct predecessor of v with the
// edge multiplicity.
func (g *Graph) Predecessors(v VertexID, fn func(pred VertexID, mult int) bool) {
	s := g.slotOf(v)
	if s == noSlot {
		return
	}
	g.inAdj[s].each(func(id VertexID, m int32) bool { return fn(id, int(m)) })
}

// Vertices calls fn for every vertex; iteration order is unspecified.
func (g *Graph) Vertices(fn func(VertexID) bool) {
	for s := range g.ids {
		if g.alive[s] && !fn(g.ids[s]) {
			return
		}
	}
}

// String summarizes the graph for debugging.
func (g *Graph) String() string {
	return fmt.Sprintf("heapgraph{V=%d E=%d roots=%d leaves=%d in==out=%d}",
		g.NumVertices(), g.NumEdges(), g.CountInDegree(0), g.CountOutDegree(0), g.CountInEqOut())
}
