package heapgraph

import (
	"math/rand"
	"strings"
	"testing"
)

// oracleCheck asserts the incremental count matches a from-scratch
// component walk and that graph invariants hold.
func oracleCheck(t *testing.T, g *Graph) {
	t.Helper()
	got := g.ConnectedComponentCount()
	want := g.WeaklyConnectedComponents().Count
	if got != want {
		t.Fatalf("ConnectedComponentCount = %d, oracle = %d (V=%d E=%d)",
			got, want, g.NumVertices(), g.NumEdges())
	}
	if msg := g.CheckInvariants(); msg != "" {
		t.Fatalf("invariants violated: %s", msg)
	}
}

// TestIncrementalWCCMatchesSnapshotRandom drives a delete-heavy random
// mutation mix against the incremental tracker at several rebuild
// thresholds (1 = rebuild on every conservative delete, 1<<30 = only
// lazy query rebuilds) and checks the count against the snapshot walk
// after every few operations.
func TestIncrementalWCCMatchesSnapshotRandom(t *testing.T) {
	for _, th := range []int{1, 4, DefaultRebuildThreshold, 1 << 30} {
		th := th
		t.Run("threshold="+itoa(uint64(th)), func(t *testing.T) {
			rng := rand.New(rand.NewSource(int64(th)*7919 + 17))
			g := New()
			g.SetConnectivity(ConnectivityIncremental, th)
			const idSpace = 48
			for step := 0; step < 4000; step++ {
				u := VertexID(rng.Intn(idSpace))
				v := VertexID(rng.Intn(idSpace))
				// Delete-heavy: the exact-maintenance paths are the add
				// hooks; the delete classification is what needs soak.
				switch rng.Intn(10) {
				case 0, 1:
					g.AddVertex(u)
				case 2, 3, 4:
					g.AddEdge(u, v)
				case 5, 6:
					g.RemoveEdge(u, v)
				case 7, 8:
					g.RemoveVertex(u)
				case 9:
					g.AddEdge(u, u) // self-loop: must not disturb the tracker
				}
				if step%3 == 0 {
					oracleCheck(t, g)
				}
			}
			oracleCheck(t, g)
		})
	}
}

// TestIncrementalWCCVerifyMode runs the same mutation mix through
// verify mode, whose query path panics on divergence — the test
// passing IS the differential result.
func TestIncrementalWCCVerifyMode(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	g := New()
	g.SetConnectivity(ConnectivityVerify, 2)
	for step := 0; step < 2000; step++ {
		u := VertexID(rng.Intn(32))
		v := VertexID(rng.Intn(32))
		switch rng.Intn(8) {
		case 0:
			g.AddVertex(u)
		case 1, 2:
			g.AddEdge(u, v)
		case 3, 4:
			g.RemoveEdge(u, v)
		case 5, 6:
			g.RemoveVertex(u)
		case 7:
			g.ConnectedComponentCount()
		}
	}
	g.ConnectedComponentCount()
}

// TestIncrementalWCCVerifyPanicsOnDivergence corrupts the tracker's
// count in-package and checks verify mode actually trips.
func TestIncrementalWCCVerifyPanicsOnDivergence(t *testing.T) {
	g := New()
	g.SetConnectivity(ConnectivityVerify, 0)
	g.AddVertex(1)
	g.AddVertex(2)
	g.AddEdge(1, 2)
	g.ConnectedComponentCount() // build the tracker
	g.wcc.count += 3            // inject divergence
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("verify mode did not panic on a diverged count")
		}
		if msg, ok := r.(string); !ok || !strings.Contains(msg, "connectivity verify divergence") {
			t.Fatalf("unexpected panic payload: %v", r)
		}
	}()
	g.ConnectedComponentCount()
}

// TestIncrementalWCCExactShapes pins the delete shapes the tracker
// claims to handle exactly: after each, the tracker must still be
// clean (no dirty rebuild pending) and correct.
func TestIncrementalWCCExactShapes(t *testing.T) {
	clean := func(t *testing.T, g *Graph, wantCount int) {
		t.Helper()
		if got := g.ConnectedComponentCount(); got != wantCount {
			t.Fatalf("count = %d, want %d", got, wantCount)
		}
		if g.wcc.dirty != 0 {
			t.Fatalf("tracker dirty = %d after an exact-shape delete", g.wcc.dirty)
		}
		oracleCheck(t, g)
	}

	t.Run("parallel edge", func(t *testing.T) {
		g := New()
		g.SetConnectivity(ConnectivityIncremental, 0)
		g.AddVertex(1)
		g.AddVertex(2)
		g.AddEdge(1, 2)
		g.AddEdge(1, 2)
		clean(t, g, 1)
		g.RemoveEdge(1, 2) // one copy remains: exact no-op
		clean(t, g, 1)
	})

	t.Run("reverse edge", func(t *testing.T) {
		g := New()
		g.SetConnectivity(ConnectivityIncremental, 0)
		g.AddVertex(1)
		g.AddVertex(2)
		g.AddEdge(1, 2)
		g.AddEdge(2, 1)
		clean(t, g, 1)
		g.RemoveEdge(1, 2) // 2→1 remains: weak connectivity unchanged
		clean(t, g, 1)
	})

	t.Run("edge isolating one endpoint", func(t *testing.T) {
		g := New()
		g.SetConnectivity(ConnectivityIncremental, 0)
		for i := 1; i <= 3; i++ {
			g.AddVertex(VertexID(i))
		}
		g.AddEdge(1, 2)
		g.AddEdge(2, 3)
		clean(t, g, 1)
		g.RemoveEdge(2, 3) // 3 becomes isolated: exact detach
		clean(t, g, 2)
	})

	t.Run("edge isolating both endpoints", func(t *testing.T) {
		g := New()
		g.SetConnectivity(ConnectivityIncremental, 0)
		g.AddVertex(1)
		g.AddVertex(2)
		g.AddEdge(1, 2)
		clean(t, g, 1)
		g.RemoveEdge(1, 2) // the pair case: count must go 1 → 2, not 1 → 3
		clean(t, g, 2)
	})

	t.Run("self-loop removal", func(t *testing.T) {
		g := New()
		g.SetConnectivity(ConnectivityIncremental, 0)
		g.AddVertex(1)
		g.AddEdge(1, 1)
		clean(t, g, 1)
		g.RemoveEdge(1, 1)
		clean(t, g, 1)
	})

	t.Run("singleton vertex removal", func(t *testing.T) {
		g := New()
		g.SetConnectivity(ConnectivityIncremental, 0)
		g.AddVertex(1)
		g.AddVertex(2)
		clean(t, g, 2)
		g.RemoveVertex(2)
		clean(t, g, 1)
	})

	t.Run("leaf vertex removal", func(t *testing.T) {
		g := New()
		g.SetConnectivity(ConnectivityIncremental, 0)
		for i := 1; i <= 4; i++ {
			g.AddVertex(VertexID(i))
		}
		g.AddEdge(1, 2)
		g.AddEdge(2, 3)
		g.AddEdge(3, 4)
		clean(t, g, 1)
		g.RemoveVertex(4) // one distinct neighbour: leaf, never splits
		clean(t, g, 1)
	})

	t.Run("leaf with parallel and reverse edges", func(t *testing.T) {
		g := New()
		g.SetConnectivity(ConnectivityIncremental, 0)
		g.AddVertex(1)
		g.AddVertex(2)
		g.AddVertex(3)
		g.AddEdge(1, 2)
		g.AddEdge(2, 3)
		g.AddEdge(2, 3)
		g.AddEdge(3, 2)
		g.AddEdge(3, 3)
		clean(t, g, 1)
		g.RemoveVertex(3) // still one distinct neighbour (2): exact leaf
		clean(t, g, 1)
	})

	t.Run("interior vertex removal goes conservative", func(t *testing.T) {
		g := New()
		g.SetConnectivity(ConnectivityIncremental, 1<<30)
		for i := 1; i <= 3; i++ {
			g.AddVertex(VertexID(i))
		}
		g.AddEdge(1, 2)
		g.AddEdge(2, 3)
		if g.ConnectedComponentCount() != 1 {
			t.Fatal("setup")
		}
		g.RemoveVertex(2) // ≥2 neighbours: must dirty, and the split must be seen
		if g.wcc.dirty == 0 {
			t.Fatal("interior removal did not mark the tracker dirty")
		}
		if got := g.ConnectedComponentCount(); got != 2 {
			t.Fatalf("count after split = %d, want 2", got)
		}
		oracleCheck(t, g)
	})
}

// TestIncrementalWCCSlotReuse recycles vertex slots through the
// freelist while the tracker is live: a reused slot must come back as
// a fresh singleton, not inherit the dead vertex's component.
func TestIncrementalWCCSlotReuse(t *testing.T) {
	g := New()
	g.SetConnectivity(ConnectivityIncremental, 1<<30)
	for i := 0; i < 16; i++ {
		g.AddVertex(VertexID(i))
	}
	for i := 1; i < 16; i++ {
		g.AddEdge(0, VertexID(i))
	}
	if g.ConnectedComponentCount() != 1 {
		t.Fatal("setup")
	}
	for round := 0; round < 20; round++ {
		// Leaf-remove a vertex (exact path), then re-add a new ID that
		// reuses its slot.
		victim := VertexID(round%15 + 1)
		g.RemoveVertex(victim)
		oracleCheck(t, g)
		fresh := VertexID(1000 + round)
		g.AddVertex(fresh)
		oracleCheck(t, g) // fresh vertex must be its own component
		g.AddEdge(0, fresh)
		g.AddVertex(victim)
		g.AddEdge(0, victim)
		oracleCheck(t, g)
	}
}

// TestIncrementalWCCSwitchModes flips a live graph between modes;
// switching back to incremental must rebuild from scratch rather than
// trust stale tracker state.
func TestIncrementalWCCSwitchModes(t *testing.T) {
	g := New()
	g.SetConnectivity(ConnectivityIncremental, 0)
	for i := 0; i < 8; i++ {
		g.AddVertex(VertexID(i))
		if i > 0 {
			g.AddEdge(VertexID(i-1), VertexID(i))
		}
	}
	oracleCheck(t, g)
	g.SetConnectivity(ConnectivitySnapshot, 0)
	if g.wcc != nil {
		t.Fatal("snapshot mode should discard the tracker")
	}
	g.RemoveVertex(3) // mutate while untracked
	if got, want := g.ConnectedComponentCount(), g.WeaklyConnectedComponents().Count; got != want {
		t.Fatalf("snapshot count = %d, want %d", got, want)
	}
	g.SetConnectivity(ConnectivityIncremental, 0)
	oracleCheck(t, g)
	g.RemoveEdge(1, 2)
	oracleCheck(t, g)
}

// TestIncrementalWCCAllocs is the steady-state allocation gate: once
// the node arena has hit its high-water mark, churn (including detach
// growth, threshold rebuilds and compaction) must reuse capacity.
// Wired into CI without -race (race instrumentation allocates).
func TestIncrementalWCCAllocs(t *testing.T) {
	g := New()
	g.SetConnectivity(ConnectivityIncremental, 8)
	const ring = 256
	for i := 0; i < ring; i++ {
		g.AddVertex(VertexID(i))
	}
	for i := 0; i < ring; i++ {
		g.AddEdge(VertexID(i), VertexID((i+1)%ring))
	}
	pendant := VertexID(ring)
	g.AddVertex(pendant)
	g.AddEdge(0, pendant)
	g.ConnectedComponentCount()

	round := func() {
		for k := 0; k < 32; k++ {
			// Detach churn: isolating the pendant appends a node to the
			// arena; re-linking unions it back.
			g.RemoveEdge(0, pendant)
			g.AddEdge(0, pendant)
			g.ConnectedComponentCount()
		}
		// Conservative churn: a ring edge removal can split, so it
		// dirties the tracker and exercises the threshold rebuild.
		for k := 0; k < 16; k++ {
			e := VertexID(k * 7 % ring)
			g.RemoveEdge(e, VertexID((int(e)+1)%ring))
			g.AddEdge(e, VertexID((int(e)+1)%ring))
			g.ConnectedComponentCount()
		}
	}
	// Warm past the arena's high-water mark (growth and the compaction
	// cycle are deterministic, so capacity stabilizes).
	for i := 0; i < 64; i++ {
		round()
	}
	if avg := testing.AllocsPerRun(50, round); avg != 0 {
		t.Fatalf("steady-state churn allocates: %.1f allocs/round, want 0", avg)
	}
}

// TestParseConnectivity covers the flag spellings and their round-trip
// through String.
func TestParseConnectivity(t *testing.T) {
	for _, mode := range []ConnectivityMode{ConnectivitySnapshot, ConnectivityIncremental, ConnectivityVerify} {
		got, err := ParseConnectivity(mode.String())
		if err != nil || got != mode {
			t.Errorf("ParseConnectivity(%q) = %v, %v", mode.String(), got, err)
		}
	}
	if _, err := ParseConnectivity("eventual"); err == nil {
		t.Error("ParseConnectivity accepted an unknown mode")
	}
}

// TestFreezeSCCExcludesIsolated checks the SCC-only freeze: isolated
// vertices are returned as a count instead of materialized, and the
// structure still walks to the same SCC statistics once they are
// added back.
func TestFreezeSCCExcludesIsolated(t *testing.T) {
	g := New()
	for i := 0; i < 10; i++ {
		g.AddVertex(VertexID(i))
	}
	// A 3-cycle, a 2-path, and 5 isolated vertices.
	g.AddEdge(0, 1)
	g.AddEdge(1, 2)
	g.AddEdge(2, 0)
	g.AddEdge(3, 4)
	st, isolated := g.FreezeSCC()
	if isolated != 5 {
		t.Fatalf("isolated = %d, want 5", isolated)
	}
	if st.NumVertices() != 5 {
		t.Fatalf("frozen vertices = %d, want 5", st.NumVertices())
	}
	scc := st.StronglyConnectedComponents()
	scc.Count += isolated
	want := g.StronglyConnectedComponents()
	if scc.Count != want.Count || scc.Largest != want.Largest {
		t.Fatalf("SCC via FreezeSCC = %+v, full walk = %+v", scc, want)
	}
}
