package heapgraph

import (
	"math/rand"
	"strings"
	"testing"
)

// sccOracleCheck asserts the incremental SCC count matches a
// from-scratch Tarjan walk and that graph invariants hold.
func sccOracleCheck(t *testing.T, g *Graph) {
	t.Helper()
	got := g.StronglyConnectedComponentCount()
	want := g.StronglyConnectedComponents().Count
	if got != want {
		t.Fatalf("StronglyConnectedComponentCount = %d, oracle = %d (V=%d E=%d)",
			got, want, g.NumVertices(), g.NumEdges())
	}
	if msg := g.CheckInvariants(); msg != "" {
		t.Fatalf("invariants violated: %s", msg)
	}
}

// sccRandomMix drives one randomized mutation sequence against the
// tracker, oracle-checking every few steps. Shared by the differential
// test and the fuzz target's seed corpus replay.
func sccRandomMix(t *testing.T, g *Graph, rng *rand.Rand, steps, idSpace int) {
	t.Helper()
	for step := 0; step < steps; step++ {
		u := VertexID(rng.Intn(idSpace))
		v := VertexID(rng.Intn(idSpace))
		switch rng.Intn(10) {
		case 0, 1:
			g.AddVertex(u)
		case 2, 3, 4:
			// Edge adds matter more for SCC than WCC: they exercise
			// the probe (cycle closure and budget bailout paths).
			g.AddEdge(u, v)
		case 5, 6:
			g.RemoveEdge(u, v)
		case 7, 8:
			g.RemoveVertex(u)
		case 9:
			g.AddEdge(u, u) // self-loop: must not disturb the tracker
		}
		if step%3 == 0 {
			sccOracleCheck(t, g)
		}
	}
	sccOracleCheck(t, g)
}

// TestIncrementalSCCMatchesSnapshotRandom drives a random mutation mix
// against the incremental tracker at several rebuild thresholds (1 =
// rebuild on every dirtying mutation, 1<<30 = only lazy query
// rebuilds) and probe budgets (2 = nearly every probe bails out,
// forcing the dirty path; default = probes mostly complete), checking
// the count against the Tarjan walk after every few operations.
func TestIncrementalSCCMatchesSnapshotRandom(t *testing.T) {
	for _, th := range []int{1, 4, DefaultRebuildThreshold, 1 << 30} {
		for _, budget := range []int{2, DefaultSCCProbeBudget} {
			th, budget := th, budget
			t.Run("threshold="+itoa(uint64(th))+"/budget="+itoa(uint64(budget)), func(t *testing.T) {
				rng := rand.New(rand.NewSource(int64(th)*7919 + int64(budget)*13 + 29))
				g := New()
				g.SetSCC(ConnectivityIncremental, th)
				g.SetSCCProbeBudget(budget)
				sccRandomMix(t, g, rng, 4000, 48)
			})
		}
	}
}

// TestIncrementalSCCWithWCCRandom runs both incremental trackers at
// once — the configuration the extended suite uses when every metric
// point is O(churn) — and oracle-checks both counts.
func TestIncrementalSCCWithWCCRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(4242))
	g := New()
	g.SetConnectivity(ConnectivityIncremental, 4)
	g.SetSCC(ConnectivityIncremental, 4)
	for step := 0; step < 3000; step++ {
		u := VertexID(rng.Intn(40))
		v := VertexID(rng.Intn(40))
		switch rng.Intn(9) {
		case 0, 1:
			g.AddVertex(u)
		case 2, 3, 4:
			g.AddEdge(u, v)
		case 5, 6:
			g.RemoveEdge(u, v)
		case 7, 8:
			g.RemoveVertex(u)
		}
		if step%5 == 0 {
			oracleCheck(t, g)
			sccOracleCheck(t, g)
		}
	}
	oracleCheck(t, g)
	sccOracleCheck(t, g)
}

// TestIncrementalSCCVerifyMode runs a mutation mix through verify
// mode, whose query path panics on divergence — the test passing IS
// the differential result.
func TestIncrementalSCCVerifyMode(t *testing.T) {
	rng := rand.New(rand.NewSource(177))
	g := New()
	g.SetSCC(ConnectivityVerify, 2)
	for step := 0; step < 2000; step++ {
		u := VertexID(rng.Intn(32))
		v := VertexID(rng.Intn(32))
		switch rng.Intn(8) {
		case 0:
			g.AddVertex(u)
		case 1, 2:
			g.AddEdge(u, v)
		case 3, 4:
			g.RemoveEdge(u, v)
		case 5, 6:
			g.RemoveVertex(u)
		case 7:
			g.StronglyConnectedComponentCount()
		}
	}
	g.StronglyConnectedComponentCount()
}

// TestIncrementalSCCVerifyPanicsOnDivergence corrupts the tracker's
// count in-package and checks verify mode actually trips.
func TestIncrementalSCCVerifyPanicsOnDivergence(t *testing.T) {
	g := New()
	g.SetSCC(ConnectivityVerify, 0)
	g.AddVertex(1)
	g.AddVertex(2)
	g.AddEdge(1, 2)
	g.StronglyConnectedComponentCount() // build the tracker
	g.scc.count += 3                    // inject divergence
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("verify mode did not panic on a diverged count")
		}
		if msg, ok := r.(string); !ok || !strings.Contains(msg, "scc verify divergence") {
			t.Fatalf("unexpected panic payload: %v", r)
		}
	}()
	g.StronglyConnectedComponentCount()
}

// TestIncrementalSCCExactShapes pins the mutation shapes the tracker
// claims to handle exactly: after each, the tracker must still be
// clean (no dirty rebuild pending) and correct. The taxonomy differs
// from the WCC tracker's — interior singleton-SCC vertex removals are
// exact here, intra-SCC edge removals are not.
func TestIncrementalSCCExactShapes(t *testing.T) {
	clean := func(t *testing.T, g *Graph, wantCount int) {
		t.Helper()
		if got := g.StronglyConnectedComponentCount(); got != wantCount {
			t.Fatalf("count = %d, want %d", got, wantCount)
		}
		if g.scc.dirty != 0 {
			t.Fatalf("tracker dirty = %d after an exact shape", g.scc.dirty)
		}
		sccOracleCheck(t, g)
	}

	t.Run("edge into fresh target", func(t *testing.T) {
		g := New()
		g.SetSCC(ConnectivityIncremental, 0)
		g.AddVertex(1)
		g.AddVertex(2)
		clean(t, g, 2)
		g.AddEdge(1, 2) // 2 has no out-edges: probe finds no path back
		clean(t, g, 2)
	})

	t.Run("two-cycle closure", func(t *testing.T) {
		g := New()
		g.SetSCC(ConnectivityIncremental, 0)
		g.AddVertex(1)
		g.AddVertex(2)
		g.AddEdge(1, 2)
		clean(t, g, 2)
		g.AddEdge(2, 1) // closes the cycle: exact merge
		clean(t, g, 1)
	})

	t.Run("long-cycle closure", func(t *testing.T) {
		g := New()
		g.SetSCC(ConnectivityIncremental, 0)
		for i := 1; i <= 6; i++ {
			g.AddVertex(VertexID(i))
			if i > 1 {
				g.AddEdge(VertexID(i-1), VertexID(i))
			}
		}
		clean(t, g, 6)
		g.AddEdge(6, 1) // every chain vertex joins one SCC
		clean(t, g, 1)
	})

	t.Run("multi-path merge", func(t *testing.T) {
		// Two disjoint v⇝u paths: closing u→v must merge the SCCs on
		// BOTH paths, which a naive single-path union would miss.
		g := New()
		g.SetSCC(ConnectivityIncremental, 0)
		for i := 1; i <= 4; i++ {
			g.AddVertex(VertexID(i))
		}
		// u = 1, v = 2; paths 2→3→1 and 2→4→1.
		g.AddEdge(2, 3)
		g.AddEdge(3, 1)
		g.AddEdge(2, 4)
		g.AddEdge(4, 1)
		clean(t, g, 4)
		g.AddEdge(1, 2)
		clean(t, g, 1)
	})

	t.Run("intra-SCC edge add", func(t *testing.T) {
		g := New()
		g.SetSCC(ConnectivityIncremental, 0)
		g.AddVertex(1)
		g.AddVertex(2)
		g.AddEdge(1, 2)
		g.AddEdge(2, 1)
		clean(t, g, 1)
		g.AddEdge(1, 2) // endpoints already strongly connected: no-op
		clean(t, g, 1)
	})

	t.Run("edge into existing SCC", func(t *testing.T) {
		// A fresh vertex pointing INTO a cycle reaches it but is not
		// reached back: exact no-merge.
		g := New()
		g.SetSCC(ConnectivityIncremental, 0)
		for i := 1; i <= 4; i++ {
			g.AddVertex(VertexID(i))
		}
		g.AddEdge(1, 2)
		g.AddEdge(2, 3)
		g.AddEdge(3, 1)
		clean(t, g, 2)
		g.AddEdge(4, 1) // probe walks the cycle as a super-node, no hit
		clean(t, g, 2)
	})

	t.Run("cross-SCC edge removal", func(t *testing.T) {
		g := New()
		g.SetSCC(ConnectivityIncremental, 0)
		for i := 1; i <= 3; i++ {
			g.AddVertex(VertexID(i))
		}
		g.AddEdge(1, 2)
		g.AddEdge(2, 3)
		clean(t, g, 3)
		g.RemoveEdge(1, 2) // no cycle through a cross-SCC edge: no-op
		clean(t, g, 3)
	})

	t.Run("parallel intra-SCC edge removal", func(t *testing.T) {
		g := New()
		g.SetSCC(ConnectivityIncremental, 0)
		g.AddVertex(1)
		g.AddVertex(2)
		g.AddEdge(1, 2)
		g.AddEdge(1, 2)
		g.AddEdge(2, 1)
		clean(t, g, 1)
		g.RemoveEdge(1, 2) // a copy remains: reachability unchanged
		clean(t, g, 1)
	})

	t.Run("self-loop add and removal", func(t *testing.T) {
		g := New()
		g.SetSCC(ConnectivityIncremental, 0)
		g.AddVertex(1)
		g.AddEdge(1, 1)
		clean(t, g, 1)
		g.RemoveEdge(1, 1)
		clean(t, g, 1)
	})

	t.Run("isolated vertex removal", func(t *testing.T) {
		g := New()
		g.SetSCC(ConnectivityIncremental, 0)
		g.AddVertex(1)
		g.AddVertex(2)
		clean(t, g, 2)
		g.RemoveVertex(2)
		clean(t, g, 1)
	})

	t.Run("interior singleton-SCC vertex removal", func(t *testing.T) {
		// The shape the WCC taxonomy must dirty on but the SCC
		// taxonomy handles exactly: a chain interior is its own SCC,
		// so removing it just drops the count by one.
		g := New()
		g.SetSCC(ConnectivityIncremental, 1<<30)
		for i := 1; i <= 3; i++ {
			g.AddVertex(VertexID(i))
		}
		g.AddEdge(1, 2)
		g.AddEdge(2, 3)
		clean(t, g, 3)
		g.RemoveVertex(2)
		clean(t, g, 2)
	})

	t.Run("self-loop vertex removal", func(t *testing.T) {
		g := New()
		g.SetSCC(ConnectivityIncremental, 0)
		g.AddVertex(1)
		g.AddVertex(2)
		g.AddEdge(1, 1)
		g.AddEdge(1, 2)
		clean(t, g, 2)
		g.RemoveVertex(1) // self-loop SCC still has size 1: exact
		clean(t, g, 1)
	})

	t.Run("intra-SCC edge removal goes conservative", func(t *testing.T) {
		g := New()
		g.SetSCC(ConnectivityIncremental, 1<<30)
		g.AddVertex(1)
		g.AddVertex(2)
		g.AddEdge(1, 2)
		g.AddEdge(2, 1)
		if g.StronglyConnectedComponentCount() != 1 {
			t.Fatal("setup")
		}
		g.RemoveEdge(2, 1) // breaks the cycle: must dirty, split must be seen
		if g.scc.dirty == 0 {
			t.Fatal("intra-SCC edge removal did not mark the tracker dirty")
		}
		if got := g.StronglyConnectedComponentCount(); got != 2 {
			t.Fatalf("count after split = %d, want 2", got)
		}
		sccOracleCheck(t, g)
	})

	t.Run("multi-member SCC vertex removal goes conservative", func(t *testing.T) {
		g := New()
		g.SetSCC(ConnectivityIncremental, 1<<30)
		for i := 1; i <= 3; i++ {
			g.AddVertex(VertexID(i))
		}
		g.AddEdge(1, 2)
		g.AddEdge(2, 3)
		g.AddEdge(3, 1)
		if g.StronglyConnectedComponentCount() != 1 {
			t.Fatal("setup")
		}
		g.RemoveVertex(2) // shatters the 3-cycle: must dirty
		if g.scc.dirty == 0 {
			t.Fatal("multi-member SCC vertex removal did not mark the tracker dirty")
		}
		if got := g.StronglyConnectedComponentCount(); got != 2 {
			t.Fatalf("count after shatter = %d, want 2", got)
		}
		sccOracleCheck(t, g)
	})
}

// TestIncrementalSCCProbeBudgetBailout forces a probe past its budget:
// the tracker must dirty (not walk unboundedly, not miss the merge)
// and the next query must recover exactness via rebuild.
func TestIncrementalSCCProbeBudgetBailout(t *testing.T) {
	g := New()
	g.SetSCC(ConnectivityIncremental, 1<<30)
	g.SetSCCProbeBudget(3)
	const n = 32
	for i := 0; i < n; i++ {
		g.AddVertex(VertexID(i))
		if i > 0 {
			g.AddEdge(VertexID(i-1), VertexID(i))
		}
	}
	if g.StronglyConnectedComponentCount() != n {
		t.Fatal("setup")
	}
	g.AddEdge(n-1, 0) // probe must traverse 31 hops; budget is 3
	if g.scc.dirty == 0 {
		t.Fatal("over-budget probe did not mark the tracker dirty")
	}
	if got := g.StronglyConnectedComponentCount(); got != 1 {
		t.Fatalf("count after rebuild = %d, want 1", got)
	}
	sccOracleCheck(t, g)
}

// TestIncrementalSCCSlotReuse recycles vertex slots through the
// freelist while the tracker is live: a reused slot must come back as
// a fresh singleton SCC, not inherit the dead vertex's component.
func TestIncrementalSCCSlotReuse(t *testing.T) {
	g := New()
	g.SetSCC(ConnectivityIncremental, 1<<30)
	const n = 12
	for i := 0; i < n; i++ {
		g.AddVertex(VertexID(i))
		g.AddEdge(VertexID(i), VertexID((i+1)%n)) // targets may not exist yet
	}
	for i := 0; i < n; i++ {
		g.AddEdge(VertexID(i), VertexID((i+1)%n)) // now they all do
	}
	sccOracleCheck(t, g)
	for round := 0; round < 20; round++ {
		victim := VertexID(round % n)
		g.RemoveVertex(victim)
		sccOracleCheck(t, g)
		fresh := VertexID(1000 + round)
		g.AddVertex(fresh)
		sccOracleCheck(t, g) // fresh vertex must be its own SCC
		g.AddVertex(victim)
		g.AddEdge(victim, fresh)
		g.AddEdge(fresh, victim)
		sccOracleCheck(t, g)
		g.RemoveVertex(fresh)
		sccOracleCheck(t, g)
	}
}

// TestIncrementalSCCSwitchModes flips a live graph between modes;
// switching back to incremental must rebuild from scratch rather than
// trust stale tracker state.
func TestIncrementalSCCSwitchModes(t *testing.T) {
	g := New()
	g.SetSCC(ConnectivityIncremental, 0)
	for i := 0; i < 8; i++ {
		g.AddVertex(VertexID(i))
		if i > 0 {
			g.AddEdge(VertexID(i-1), VertexID(i))
		}
	}
	g.AddEdge(7, 0)
	sccOracleCheck(t, g)
	g.SetSCC(ConnectivitySnapshot, 0)
	if g.scc != nil {
		t.Fatal("snapshot mode should discard the tracker")
	}
	g.RemoveVertex(3) // mutate while untracked
	if got, want := g.StronglyConnectedComponentCount(), g.StronglyConnectedComponents().Count; got != want {
		t.Fatalf("snapshot count = %d, want %d", got, want)
	}
	g.SetSCC(ConnectivityIncremental, 0)
	sccOracleCheck(t, g)
	g.RemoveEdge(1, 2)
	sccOracleCheck(t, g)
}

// TestIncrementalSCCAllocs is the steady-state allocation gate: once
// the scratch arrays have hit their high-water marks, churn — probe
// completions, probe-driven unions, singleton removals, dirtying
// removals and the rebuilds they force — must reuse capacity. Wired
// into CI without -race (race instrumentation allocates).
func TestIncrementalSCCAllocs(t *testing.T) {
	g := New()
	g.SetSCC(ConnectivityIncremental, 8)
	const chain = 256
	for i := 0; i < chain; i++ {
		g.AddVertex(VertexID(i))
		if i > 0 {
			g.AddEdge(VertexID(i-1), VertexID(i))
		}
	}
	g.StronglyConnectedComponentCount()

	round := func() {
		// Cycle churn: closing the tail cycle exercises the probe's
		// merge path; breaking it is an intra-SCC removal that dirties
		// and forces rebuilds (lazily at the query).
		for k := 0; k < 16; k++ {
			g.AddEdge(chain-1, chain-6)
			g.RemoveEdge(chain-1, chain-6)
			g.StronglyConnectedComponentCount()
		}
		// Vertex churn: pendants on distinct hosts (so the inline
		// adjacency never spills), removed as singleton SCCs — the
		// exact delete path plus freelist slot reuse.
		for k := 0; k < 16; k++ {
			id := VertexID(1000 + k)
			g.AddVertex(id)
			g.AddEdge(VertexID(k*8%200), id)
		}
		for k := 15; k >= 0; k-- {
			g.RemoveVertex(VertexID(1000 + k))
		}
		g.StronglyConnectedComponentCount()
	}
	for i := 0; i < 64; i++ {
		round()
	}
	if avg := testing.AllocsPerRun(50, round); avg != 0 {
		t.Fatalf("steady-state churn allocates: %.1f allocs/round, want 0", avg)
	}
}

// TestParseSCC covers the -scc flag spellings and the error path.
func TestParseSCC(t *testing.T) {
	for _, mode := range []ConnectivityMode{ConnectivitySnapshot, ConnectivityIncremental, ConnectivityVerify} {
		got, err := ParseSCC(mode.String())
		if err != nil || got != mode {
			t.Errorf("ParseSCC(%q) = %v, %v", mode.String(), got, err)
		}
	}
	if _, err := ParseSCC("eventual"); err == nil {
		t.Error("ParseSCC accepted an unknown mode")
	} else if !strings.Contains(err.Error(), "scc mode") {
		t.Errorf("ParseSCC error should name the scc flag: %v", err)
	}
}

// FuzzIncrementalSCC feeds arbitrary byte programs to the tracker as
// mutation sequences and diffs the maintained count against the
// Tarjan oracle, across the rebuild-threshold and probe-budget grid.
// Two bytes encode one operation: an opcode and two 4-bit vertex
// operands.
func FuzzIncrementalSCC(f *testing.F) {
	f.Add([]byte{0x00, 0x01, 0x00, 0x02, 0x02, 0x12, 0x02, 0x21})
	f.Add([]byte{0x00, 0x01, 0x01, 0x11, 0x03, 0x11, 0x04, 0x01})
	seed := make([]byte, 128)
	rng := rand.New(rand.NewSource(7))
	rng.Read(seed)
	f.Add(seed)
	f.Fuzz(func(t *testing.T, data []byte) {
		for _, th := range []int{1, 4, DefaultRebuildThreshold, 1 << 30} {
			for _, budget := range []int{2, DefaultSCCProbeBudget} {
				g := New()
				g.SetSCC(ConnectivityIncremental, th)
				g.SetSCCProbeBudget(budget)
				for i := 0; i+1 < len(data); i += 2 {
					u := VertexID(data[i+1] >> 4)
					v := VertexID(data[i+1] & 0x0f)
					switch data[i] % 5 {
					case 0:
						g.AddVertex(u)
					case 1:
						g.AddEdge(u, v)
					case 2:
						g.RemoveEdge(u, v)
					case 3:
						g.RemoveVertex(u)
					case 4:
						g.AddEdge(u, u)
					}
					if i%8 == 0 {
						sccOracleCheck(t, g)
					}
				}
				sccOracleCheck(t, g)
			}
		}
	})
}
