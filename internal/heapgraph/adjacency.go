package heapgraph

// This file implements the small-size-optimized adjacency set used by
// the vertex arena. The paper's degree metrics live almost entirely at
// degrees 0–2 — real heap graphs are dominated by list/tree nodes with
// one or two pointers — so per-vertex hash maps spend their allocation
// and GC cost on a generality the data almost never needs. Each
// direction of each vertex instead holds a fixed inline array of
// (neighbor, multiplicity) pairs; only a vertex that accumulates more
// than inlineNeighbors distinct neighbours spills to a map, and once
// spilled it stays spilled (no flapping at the boundary).

// inlineNeighbors is the spill threshold: vertices with at most this
// many distinct neighbours per direction never allocate. It equals
// maxTracked so the whole degree range the histograms distinguish —
// the range real heap objects live in — is served inline; only
// overflow-bucket vertices (hub objects like registries and interners)
// pay for a map.
const inlineNeighbors = maxTracked

// neighbor is one (vertex, edge multiplicity) pair.
type neighbor struct {
	id   VertexID
	mult int32
}

// adjacency is one direction's neighbour set for one vertex. The zero
// value is an empty set.
type adjacency struct {
	n      int32              // inline entries in use; meaningless once spilled
	spill  map[VertexID]int32 // non-nil once spilled; inline unused from then on
	inline [inlineNeighbors]neighbor
}

// reset empties the set and releases any spill map.
func (a *adjacency) reset() {
	a.n = 0
	a.spill = nil
}

// get returns the multiplicity of id, or 0.
func (a *adjacency) get(id VertexID) int32 {
	if a.spill != nil {
		return a.spill[id]
	}
	for i := int32(0); i < a.n; i++ {
		if a.inline[i].id == id {
			return a.inline[i].mult
		}
	}
	return 0
}

// inc adds one unit of multiplicity for id, returning the new
// multiplicity.
func (a *adjacency) inc(id VertexID) int32 {
	if a.spill != nil {
		a.spill[id]++
		return a.spill[id]
	}
	for i := int32(0); i < a.n; i++ {
		if a.inline[i].id == id {
			a.inline[i].mult++
			return a.inline[i].mult
		}
	}
	if a.n < inlineNeighbors {
		a.inline[a.n] = neighbor{id: id, mult: 1}
		a.n++
		return 1
	}
	// Fifth distinct neighbour: spill the inline entries to a map.
	m := make(map[VertexID]int32, 2*inlineNeighbors)
	for i := range a.inline {
		m[a.inline[i].id] = a.inline[i].mult
	}
	m[id] = 1
	a.spill = m
	return 1
}

// dec removes one unit of multiplicity for id, returning the new
// multiplicity. The caller must know the entry is present (checked via
// get); a multiplicity reaching zero removes the entry.
func (a *adjacency) dec(id VertexID) int32 {
	if a.spill != nil {
		m := a.spill[id] - 1
		if m == 0 {
			delete(a.spill, id)
		} else {
			a.spill[id] = m
		}
		return m
	}
	for i := int32(0); i < a.n; i++ {
		if a.inline[i].id == id {
			a.inline[i].mult--
			if a.inline[i].mult == 0 {
				a.n--
				a.inline[i] = a.inline[a.n] // swap-remove
				return 0
			}
			return a.inline[i].mult
		}
	}
	return 0
}

// drop removes id entirely, regardless of multiplicity (vertex
// removal detaches whole edges, not single units).
func (a *adjacency) drop(id VertexID) {
	if a.spill != nil {
		delete(a.spill, id)
		return
	}
	for i := int32(0); i < a.n; i++ {
		if a.inline[i].id == id {
			a.n--
			a.inline[i] = a.inline[a.n]
			return
		}
	}
}

// distinct returns the number of distinct neighbours.
func (a *adjacency) distinct() int {
	if a.spill != nil {
		return len(a.spill)
	}
	return int(a.n)
}

// each visits every (neighbour, multiplicity) pair; iteration stops if
// fn returns false. Inline entries are visited in insertion order,
// spilled entries in map order. fn must not mutate this adjacency set
// (mutating other vertices' sets is fine — vertex removal relies on
// it).
func (a *adjacency) each(fn func(id VertexID, mult int32) bool) {
	if a.spill != nil {
		for id, m := range a.spill {
			if !fn(id, m) {
				return
			}
		}
		return
	}
	for i := int32(0); i < a.n; i++ {
		if !fn(a.inline[i].id, a.inline[i].mult) {
			return
		}
	}
}
