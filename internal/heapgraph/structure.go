package heapgraph

// This file implements frozen connectivity snapshots. The whole-graph
// analyses (WCC/SCC) backing the extension metrics are far too slow to
// run on the monitoring pipeline's consumer goroutine — they would
// stall ingestion for the duration of a full graph walk — and the live
// Graph's adjacency maps cannot be walked from another goroutine while
// mutation proceeds. Freeze captures the connectivity into an
// immutable, densely indexed form in a single pass; the component
// analyses then run on the snapshot from any goroutine, using
// slice-indexed state instead of the live graph's map-keyed state
// (which also makes them faster than their map-based counterparts).

// Structure is an immutable snapshot of a Graph's connectivity:
// vertices renumbered densely, one distinct-neighbour adjacency list
// per direction (edge multiplicity is irrelevant to component
// analyses). A Structure is safe for concurrent use.
type Structure struct {
	out [][]int32
	in  [][]int32
	gen uint64
}

// Freeze snapshots the graph's connectivity. It must be called from
// the graph's writer goroutine (it walks the adjacency sets), but the
// returned Structure may then be analysed from any goroutine. The
// arena layout makes the renumbering pass a linear slice scan — no map
// is built; the slot → snapshot-index mapping is itself a slice.
func (g *Graph) Freeze() *Structure {
	n := g.NumVertices()
	st := &Structure{
		out: make([][]int32, n),
		in:  make([][]int32, n),
		gen: g.Generation(),
	}
	slotIdx := make([]int32, len(g.ids))
	i := int32(0)
	for s := range g.ids {
		if g.alive[s] {
			slotIdx[s] = i
			i++
		}
	}
	for s := range g.ids {
		if !g.alive[s] {
			continue
		}
		vi := slotIdx[s]
		if d := g.outAdj[s].distinct(); d > 0 {
			succs := make([]int32, 0, d)
			g.outAdj[s].each(func(id VertexID, _ int32) bool {
				succs = append(succs, slotIdx[g.slotOf(id)])
				return true
			})
			st.out[vi] = succs
		}
		if d := g.inAdj[s].distinct(); d > 0 {
			preds := make([]int32, 0, d)
			g.inAdj[s].each(func(id VertexID, _ int32) bool {
				preds = append(preds, slotIdx[g.slotOf(id)])
				return true
			})
			st.in[vi] = preds
		}
	}
	return st
}

// FreezeSCC snapshots only what a strong-components analysis needs:
// the out-adjacency of the non-isolated vertices. It serves async
// metric jobs whose ONLY whole-graph analysis is a snapshot-mode SCC
// walk (the Components metric being incremental or absent); with the
// incremental SCC tracker on (incremental_scc.go) no such jobs are
// dispatched at all and this path is the differential oracle and
// fallback, not the default. Tarjan never reads the in-adjacency;
// isolated vertices (no edges in either direction) are each trivially
// a singleton SCC, so they are counted here instead of materialized. The returned structure is valid ONLY
// for StronglyConnectedComponents (its in-adjacency is empty); the
// caller must add `isolated` to the resulting Count, and isolated
// vertices contribute components of size 1 to Largest. Like Freeze,
// writer goroutine only.
func (g *Graph) FreezeSCC() (st *Structure, isolated int) {
	n := 0
	for s := range g.ids {
		if g.alive[s] {
			if g.inDeg[s] == 0 && g.outDeg[s] == 0 {
				isolated++
			} else {
				n++
			}
		}
	}
	st = &Structure{
		out: make([][]int32, n),
		in:  make([][]int32, 0),
		gen: g.Generation(),
	}
	slotIdx := make([]int32, len(g.ids))
	i := int32(0)
	for s := range g.ids {
		if g.alive[s] && (g.inDeg[s] != 0 || g.outDeg[s] != 0) {
			slotIdx[s] = i
			i++
		} else {
			slotIdx[s] = noSlot
		}
	}
	for s := range g.ids {
		if !g.alive[s] || slotIdx[s] == noSlot {
			continue
		}
		vi := slotIdx[s]
		if d := g.outAdj[s].distinct(); d > 0 {
			succs := make([]int32, 0, d)
			g.outAdj[s].each(func(id VertexID, _ int32) bool {
				succs = append(succs, slotIdx[g.slotOf(id)])
				return true
			})
			st.out[vi] = succs
		}
	}
	return st, isolated
}

// NumVertices returns the number of vertices in the snapshot.
func (s *Structure) NumVertices() int { return len(s.out) }

// Generation returns the graph mutation generation the snapshot was
// taken at.
func (s *Structure) Generation() uint64 { return s.gen }

// WeaklyConnectedComponents computes the number and largest size of
// weakly connected components of the snapshot (edge direction
// ignored). Isolated vertices are singleton components.
func (s *Structure) WeaklyConnectedComponents() ComponentStats {
	n := len(s.out)
	seen := make([]bool, n)
	var stats ComponentStats
	stack := make([]int32, 0, 64)
	for root := 0; root < n; root++ {
		if seen[root] {
			continue
		}
		stats.Count++
		size := 0
		stack = append(stack[:0], int32(root))
		seen[root] = true
		for len(stack) > 0 {
			v := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			size++
			for _, w := range s.out[v] {
				if !seen[w] {
					seen[w] = true
					stack = append(stack, w)
				}
			}
			for _, w := range s.in[v] {
				if !seen[w] {
					seen[w] = true
					stack = append(stack, w)
				}
			}
		}
		if size > stats.Largest {
			stats.Largest = size
		}
	}
	return stats
}

// StronglyConnectedComponents computes the number and largest size of
// strongly connected components of the snapshot with an iterative
// Tarjan over the dense index space (deep list structures must not
// overflow the goroutine stack, same as the live-graph variant).
func (s *Structure) StronglyConnectedComponents() ComponentStats {
	n := len(s.out)
	if n == 0 {
		return ComponentStats{}
	}
	index := make([]int32, n) // discovery index, 0 = unvisited
	lowlink := make([]int32, n)
	onStack := make([]bool, n)
	sccStack := make([]int32, 0, 64)
	next := int32(1)

	var stats ComponentStats

	// frame emulates Tarjan's recursion: pos is the next successor of
	// v still to be explored.
	type frame struct {
		v   int32
		pos int
	}

	for root := 0; root < n; root++ {
		if index[root] != 0 {
			continue
		}
		stack := []frame{{v: int32(root)}}
		index[root] = next
		lowlink[root] = next
		next++
		sccStack = append(sccStack, int32(root))
		onStack[root] = true

		for len(stack) > 0 {
			f := &stack[len(stack)-1]
			if succs := s.out[f.v]; f.pos < len(succs) {
				w := succs[f.pos]
				f.pos++
				if index[w] == 0 {
					index[w] = next
					lowlink[w] = next
					next++
					sccStack = append(sccStack, w)
					onStack[w] = true
					stack = append(stack, frame{v: w})
				} else if onStack[w] && index[w] < lowlink[f.v] {
					lowlink[f.v] = index[w]
				}
				continue
			}
			// All successors explored: pop the frame.
			v := f.v
			stack = stack[:len(stack)-1]
			if len(stack) > 0 {
				parent := stack[len(stack)-1].v
				if lowlink[v] < lowlink[parent] {
					lowlink[parent] = lowlink[v]
				}
			}
			if lowlink[v] == index[v] {
				// v is an SCC root: pop its component.
				size := 0
				for {
					w := sccStack[len(sccStack)-1]
					sccStack = sccStack[:len(sccStack)-1]
					onStack[w] = false
					size++
					if w == v {
						break
					}
				}
				stats.Count++
				if size > stats.Largest {
					stats.Largest = size
				}
			}
		}
	}
	return stats
}
