package heapgraph

// This file implements the lock-striped degree-count structure behind
// the graph's O(1) metric reads. The concurrent monitoring pipeline
// (package logger) mutates the graph on a single consumer goroutine
// while other goroutines — metric workers, live-status readers, the
// benchmark harness — read the degree counts concurrently. Plain int
// histograms would make every such read a data race; a single mutex
// would put a lock acquisition on the mutation hot path. Instead the
// counts are striped across shards of padded atomic counters, selected
// by vertex ID: a mutation touches exactly one shard per affected
// vertex (no cross-shard coordination), and a read sums a fixed number
// of shards — constant work regardless of graph size.
//
// Counts read while a mutation is in flight are eventually consistent:
// a reader can observe the decrement of a vertex's old degree bucket
// before the increment of its new one. Every mutator restores exact
// balance before returning, so quiescent reads (and anything on the
// consumer goroutine) are exact.

import "sync/atomic"

// numShards is the number of count stripes. Vertex IDs are assigned
// sequentially by the logger, so modular selection spreads consecutive
// allocations across all shards.
const numShards = 16

// countShard holds one stripe of the degree histograms. The trailing
// pad keeps shards on distinct cache lines so mutators hitting
// different shards do not false-share.
type countShard struct {
	inHist  [maxTracked + 2]atomic.Int64
	outHist [maxTracked + 2]atomic.Int64
	eq      atomic.Int64
	_       [64]byte
}

// shardedCounts is the striped histogram set: shardedCounts[s] tallies
// only vertices whose ID maps to stripe s.
type shardedCounts struct {
	shards [numShards]countShard
}

func (c *shardedCounts) shard(v VertexID) *countShard {
	return &c.shards[uint64(v)%numShards]
}

func (c *shardedCounts) sumIn(b int) int {
	var n int64
	for i := range c.shards {
		n += c.shards[i].inHist[b].Load()
	}
	return int(n)
}

func (c *shardedCounts) sumOut(b int) int {
	var n int64
	for i := range c.shards {
		n += c.shards[i].outHist[b].Load()
	}
	return int(n)
}

func (c *shardedCounts) sumEq() int {
	var n int64
	for i := range c.shards {
		n += c.shards[i].eq.Load()
	}
	return int(n)
}
