package heapgraph

import (
	"math/rand"
	"sync"
	"testing"
	"testing/quick"
)

func TestAddVertex(t *testing.T) {
	g := New()
	g.AddVertex(1)
	g.AddVertex(2)
	g.AddVertex(1) // duplicate is a no-op
	if g.NumVertices() != 2 {
		t.Fatalf("NumVertices = %d, want 2", g.NumVertices())
	}
	if g.CountInDegree(0) != 2 || g.CountOutDegree(0) != 2 {
		t.Errorf("isolated vertices should all have degree 0")
	}
	if g.CountInEqOut() != 2 {
		t.Errorf("CountInEqOut = %d, want 2", g.CountInEqOut())
	}
}

func TestAddEdgeDegrees(t *testing.T) {
	g := New()
	g.AddVertex(1)
	g.AddVertex(2)
	if !g.AddEdge(1, 2) {
		t.Fatal("AddEdge failed")
	}
	if g.InDegree(2) != 1 || g.OutDegree(1) != 1 {
		t.Errorf("degrees: in(2)=%d out(1)=%d", g.InDegree(2), g.OutDegree(1))
	}
	if g.CountInDegree(1) != 1 || g.CountOutDegree(1) != 1 {
		t.Errorf("histograms wrong after edge")
	}
	// 1 has (in=0,out=1), 2 has (in=1,out=0): neither has in==out.
	if g.CountInEqOut() != 0 {
		t.Errorf("CountInEqOut = %d, want 0", g.CountInEqOut())
	}
	if g.NumEdges() != 1 {
		t.Errorf("NumEdges = %d, want 1", g.NumEdges())
	}
}

func TestAddEdgeMissingVertex(t *testing.T) {
	g := New()
	g.AddVertex(1)
	if g.AddEdge(1, 99) {
		t.Error("AddEdge to missing vertex should fail")
	}
	if g.AddEdge(99, 1) {
		t.Error("AddEdge from missing vertex should fail")
	}
	if g.NumEdges() != 0 {
		t.Error("failed AddEdge should not count")
	}
}

func TestMultiEdges(t *testing.T) {
	g := New()
	g.AddVertex(1)
	g.AddVertex(2)
	g.AddEdge(1, 2)
	g.AddEdge(1, 2)
	if g.Multiplicity(1, 2) != 2 {
		t.Fatalf("Multiplicity = %d, want 2", g.Multiplicity(1, 2))
	}
	if g.InDegree(2) != 2 {
		t.Errorf("multi-edge indegree = %d, want 2", g.InDegree(2))
	}
	if g.CountInDegree(2) != 1 {
		t.Errorf("CountInDegree(2) = %d, want 1", g.CountInDegree(2))
	}
	g.RemoveEdge(1, 2)
	if g.Multiplicity(1, 2) != 1 || g.InDegree(2) != 1 {
		t.Errorf("after removing one multi-edge: mult=%d in=%d", g.Multiplicity(1, 2), g.InDegree(2))
	}
}

func TestSelfLoop(t *testing.T) {
	g := New()
	g.AddVertex(5)
	g.AddEdge(5, 5)
	if g.InDegree(5) != 1 || g.OutDegree(5) != 1 {
		t.Errorf("self-loop degrees = (%d,%d), want (1,1)", g.InDegree(5), g.OutDegree(5))
	}
	if g.CountInEqOut() != 1 {
		t.Errorf("self-loop vertex should have in==out")
	}
	if msg := g.CheckInvariants(); msg != "" {
		t.Errorf("invariants: %s", msg)
	}
	g.RemoveVertex(5)
	if g.NumEdges() != 0 || g.NumVertices() != 0 {
		t.Errorf("graph not empty after removing self-loop vertex: %s", g)
	}
	if msg := g.CheckInvariants(); msg != "" {
		t.Errorf("invariants after removal: %s", msg)
	}
}

func TestRemoveEdge(t *testing.T) {
	g := New()
	g.AddVertex(1)
	g.AddVertex(2)
	if g.RemoveEdge(1, 2) {
		t.Error("RemoveEdge of absent edge should report false")
	}
	g.AddEdge(1, 2)
	if !g.RemoveEdge(1, 2) {
		t.Error("RemoveEdge of present edge should report true")
	}
	if g.NumEdges() != 0 || g.InDegree(2) != 0 {
		t.Error("edge removal did not restore degrees")
	}
	if g.CountInEqOut() != 2 {
		t.Errorf("CountInEqOut = %d, want 2", g.CountInEqOut())
	}
}

func TestRemoveVertexDetachesEdges(t *testing.T) {
	// hub with incoming and outgoing edges
	g := New()
	for v := VertexID(1); v <= 5; v++ {
		g.AddVertex(v)
	}
	g.AddEdge(1, 3) // into hub
	g.AddEdge(2, 3)
	g.AddEdge(3, 4) // out of hub
	g.AddEdge(3, 5)
	g.RemoveVertex(3)
	if g.NumVertices() != 4 || g.NumEdges() != 0 {
		t.Fatalf("after hub removal: %s", g)
	}
	for _, v := range []VertexID{1, 2, 4, 5} {
		if g.InDegree(v) != 0 || g.OutDegree(v) != 0 {
			t.Errorf("vertex %d degrees not restored", v)
		}
	}
	if msg := g.CheckInvariants(); msg != "" {
		t.Errorf("invariants: %s", msg)
	}
}

func TestRemoveAbsentVertex(t *testing.T) {
	g := New()
	g.RemoveVertex(42) // must not panic
	if g.NumVertices() != 0 {
		t.Error("phantom vertex appeared")
	}
}

func TestDegreeOverflowBucket(t *testing.T) {
	g := New()
	g.AddVertex(0)
	for v := VertexID(1); v <= 20; v++ {
		g.AddVertex(v)
		g.AddEdge(v, 0)
	}
	if g.InDegree(0) != 20 {
		t.Fatalf("InDegree = %d", g.InDegree(0))
	}
	if g.CountInDegree(20) != 0 {
		t.Error("degrees beyond maxTracked must not appear in exact buckets")
	}
	if g.CountInDegreeOverflow() != 1 {
		t.Errorf("overflow bucket = %d, want 1", g.CountInDegreeOverflow())
	}
	if msg := g.CheckInvariants(); msg != "" {
		t.Errorf("invariants: %s", msg)
	}
}

func TestSuccessorsPredecessors(t *testing.T) {
	g := New()
	g.AddVertex(1)
	g.AddVertex(2)
	g.AddVertex(3)
	g.AddEdge(1, 2)
	g.AddEdge(1, 3)
	g.AddEdge(1, 3)
	succ := map[VertexID]int{}
	g.Successors(1, func(s VertexID, m int) bool {
		succ[s] = m
		return true
	})
	if len(succ) != 2 || succ[2] != 1 || succ[3] != 2 {
		t.Errorf("Successors = %v", succ)
	}
	pred := map[VertexID]int{}
	g.Predecessors(3, func(p VertexID, m int) bool {
		pred[p] = m
		return true
	})
	if len(pred) != 1 || pred[1] != 2 {
		t.Errorf("Predecessors = %v", pred)
	}
}

// buildList creates a singly linked list of n vertices starting at
// base: base -> base+1 -> ... -> base+n-1.
func buildList(g *Graph, base VertexID, n int) {
	for i := 0; i < n; i++ {
		g.AddVertex(base + VertexID(i))
	}
	for i := 0; i+1 < n; i++ {
		g.AddEdge(base+VertexID(i), base+VertexID(i+1))
	}
}

func TestWeaklyConnectedComponents(t *testing.T) {
	g := New()
	if cs := g.WeaklyConnectedComponents(); cs.Count != 0 {
		t.Errorf("empty graph components = %+v", cs)
	}
	buildList(g, 0, 10)
	buildList(g, 100, 5)
	g.AddVertex(999) // isolated singleton
	cs := g.WeaklyConnectedComponents()
	if cs.Count != 3 {
		t.Errorf("Count = %d, want 3", cs.Count)
	}
	if cs.Largest != 10 {
		t.Errorf("Largest = %d, want 10", cs.Largest)
	}
}

func TestSCCList(t *testing.T) {
	g := New()
	buildList(g, 0, 100)
	cs := g.StronglyConnectedComponents()
	// A list is acyclic: every vertex is its own SCC.
	if cs.Count != 100 || cs.Largest != 1 {
		t.Errorf("list SCCs = %+v, want {100 1}", cs)
	}
}

func TestSCCCycle(t *testing.T) {
	g := New()
	const n = 50
	for i := 0; i < n; i++ {
		g.AddVertex(VertexID(i))
	}
	for i := 0; i < n; i++ {
		g.AddEdge(VertexID(i), VertexID((i+1)%n))
	}
	cs := g.StronglyConnectedComponents()
	if cs.Count != 1 || cs.Largest != n {
		t.Errorf("cycle SCCs = %+v, want {1 %d}", cs, n)
	}
}

func TestSCCMixed(t *testing.T) {
	// A 3-cycle feeding a 2-chain: SCCs = {3-cycle}, {a}, {b}.
	g := New()
	for i := 0; i < 5; i++ {
		g.AddVertex(VertexID(i))
	}
	g.AddEdge(0, 1)
	g.AddEdge(1, 2)
	g.AddEdge(2, 0)
	g.AddEdge(2, 3)
	g.AddEdge(3, 4)
	cs := g.StronglyConnectedComponents()
	if cs.Count != 3 || cs.Largest != 3 {
		t.Errorf("mixed SCCs = %+v, want {3 3}", cs)
	}
}

func TestSCCDeepListNoOverflow(t *testing.T) {
	// The iterative Tarjan must survive a path deep enough to kill a
	// recursive version.
	g := New()
	const n = 300000
	buildList(g, 0, n)
	cs := g.StronglyConnectedComponents()
	if cs.Count != n {
		t.Errorf("deep list SCC count = %d, want %d", cs.Count, n)
	}
}

// mutation encodes a random graph operation for property testing.
type mutation struct {
	Op   byte
	U, V uint8
}

// TestGraphInvariantsUnderRandomMutation applies random operation
// sequences and validates the incremental histograms against full
// recomputation via CheckInvariants.
func TestGraphInvariantsUnderRandomMutation(t *testing.T) {
	f := func(muts []mutation) bool {
		g := New()
		for _, m := range muts {
			u, v := VertexID(m.U%32), VertexID(m.V%32)
			switch m.Op % 4 {
			case 0:
				g.AddVertex(u)
			case 1:
				g.RemoveVertex(u)
			case 2:
				g.AddEdge(u, v)
			case 3:
				g.RemoveEdge(u, v)
			}
		}
		return g.CheckInvariants() == ""
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// TestGraphMetricsMatchBruteForce compares histogram-based counts with
// a brute-force degree scan on random graphs.
func TestGraphMetricsMatchBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	g := New()
	for i := 0; i < 200; i++ {
		g.AddVertex(VertexID(i))
	}
	for i := 0; i < 600; i++ {
		g.AddEdge(VertexID(rng.Intn(200)), VertexID(rng.Intn(200)))
	}
	for i := 0; i < 50; i++ {
		g.RemoveVertex(VertexID(rng.Intn(200)))
	}
	for d := 0; d <= maxTracked; d++ {
		wantIn, wantOut := 0, 0
		g.Vertices(func(v VertexID) bool {
			if g.InDegree(v) == d {
				wantIn++
			}
			if g.OutDegree(v) == d {
				wantOut++
			}
			return true
		})
		if g.CountInDegree(d) != wantIn {
			t.Errorf("CountInDegree(%d) = %d, want %d", d, g.CountInDegree(d), wantIn)
		}
		if g.CountOutDegree(d) != wantOut {
			t.Errorf("CountOutDegree(%d) = %d, want %d", d, g.CountOutDegree(d), wantOut)
		}
	}
	wantEq := 0
	g.Vertices(func(v VertexID) bool {
		if g.InDegree(v) == g.OutDegree(v) {
			wantEq++
		}
		return true
	})
	if g.CountInEqOut() != wantEq {
		t.Errorf("CountInEqOut = %d, want %d", g.CountInEqOut(), wantEq)
	}
}

// TestShardedCountsConcurrentReaders runs one mutator against several
// reader goroutines hammering the lock-striped counts, then — at
// quiescence — asserts the sharded degree counts match the brute-force
// oracle exactly. The mid-flight reads have no asserted values (the
// shards are eventually consistent); under -race this verifies the
// synchronization, and the final comparison verifies that no update
// was lost or double-counted under any interleaving.
func TestShardedCountsConcurrentReaders(t *testing.T) {
	const readers = 4
	g := New()

	stop := make(chan struct{})
	var wg sync.WaitGroup
	for r := 0; r < readers; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
					s := g.NumVertices() + g.NumEdges() + g.CountInEqOut() +
						int(g.Generation()) + g.CountInDegreeOverflow() + g.CountOutDegreeOverflow()
					for d := 0; d <= maxTracked; d++ {
						s += g.CountInDegree(d) + g.CountOutDegree(d)
					}
					_ = s
				}
			}
		}()
	}

	// Deterministic mutation schedule on the single writer goroutine.
	rng := rand.New(rand.NewSource(7))
	const verts = 300
	for i := 0; i < 20000; i++ {
		u, v := VertexID(rng.Intn(verts)), VertexID(rng.Intn(verts))
		switch rng.Intn(10) {
		case 0, 1, 2:
			g.AddVertex(u)
		case 3:
			g.RemoveVertex(u)
		case 4, 5, 6, 7:
			g.AddEdge(u, v)
		default:
			g.RemoveEdge(u, v)
		}
	}
	close(stop)
	wg.Wait()

	// Quiescent: the sharded counts must be exact.
	if msg := g.CheckInvariants(); msg != "" {
		t.Fatalf("invariants after concurrent reads: %s", msg)
	}
	for d := 0; d <= maxTracked; d++ {
		wantIn, wantOut := 0, 0
		g.Vertices(func(v VertexID) bool {
			if g.InDegree(v) == d {
				wantIn++
			}
			if g.OutDegree(v) == d {
				wantOut++
			}
			return true
		})
		if g.CountInDegree(d) != wantIn {
			t.Errorf("CountInDegree(%d) = %d, want %d", d, g.CountInDegree(d), wantIn)
		}
		if g.CountOutDegree(d) != wantOut {
			t.Errorf("CountOutDegree(%d) = %d, want %d", d, g.CountOutDegree(d), wantOut)
		}
	}
	wantEq := 0
	g.Vertices(func(v VertexID) bool {
		if g.InDegree(v) == g.OutDegree(v) {
			wantEq++
		}
		return true
	})
	if g.CountInEqOut() != wantEq {
		t.Errorf("CountInEqOut = %d, want %d", g.CountInEqOut(), wantEq)
	}
}

// randomGraph builds a pseudo-random graph with the given seed.
func randomGraph(seed int64, verts, edges, removals int) *Graph {
	rng := rand.New(rand.NewSource(seed))
	g := New()
	for i := 0; i < verts; i++ {
		g.AddVertex(VertexID(i))
	}
	for i := 0; i < edges; i++ {
		g.AddEdge(VertexID(rng.Intn(verts)), VertexID(rng.Intn(verts)))
	}
	for i := 0; i < removals; i++ {
		g.RemoveVertex(VertexID(rng.Intn(verts)))
	}
	return g
}

// TestFreezeStructureMatchesGraph: the frozen Structure's component
// analyses must agree with the live graph's map-based ones, and the
// frozen snapshot must be immune to later mutation.
func TestFreezeStructureMatchesGraph(t *testing.T) {
	for seed := int64(0); seed < 5; seed++ {
		g := randomGraph(seed, 400, 900, 60)
		st := g.Freeze()
		if st.NumVertices() != g.NumVertices() {
			t.Fatalf("seed %d: frozen vertices = %d, want %d", seed, st.NumVertices(), g.NumVertices())
		}
		if st.Generation() != g.Generation() {
			t.Fatalf("seed %d: frozen gen = %d, want %d", seed, st.Generation(), g.Generation())
		}
		wantWCC := g.WeaklyConnectedComponents()
		wantSCC := g.StronglyConnectedComponents()
		if got := st.WeaklyConnectedComponents(); got != wantWCC {
			t.Errorf("seed %d: frozen WCC = %+v, want %+v", seed, got, wantWCC)
		}
		if got := st.StronglyConnectedComponents(); got != wantSCC {
			t.Errorf("seed %d: frozen SCC = %+v, want %+v", seed, got, wantSCC)
		}

		// Mutate the live graph; the frozen structure must not move.
		g.AddVertex(100000)
		g.AddVertex(100001)
		g.AddEdge(100000, 100001)
		if got := st.WeaklyConnectedComponents(); got != wantWCC {
			t.Errorf("seed %d: frozen WCC changed after graph mutation: %+v", seed, got)
		}
		if st.Generation() == g.Generation() {
			t.Errorf("seed %d: generation did not advance on mutation", seed)
		}
	}
}

// TestStructureSelfLoopAndMultiEdge: freezing must preserve self-loops
// (their own SCC of size 1, no effect on WCC) and collapse
// multi-edges without breaking the walks.
func TestStructureSelfLoopAndMultiEdge(t *testing.T) {
	g := New()
	g.AddVertex(1)
	g.AddVertex(2)
	g.AddEdge(1, 1) // self-loop
	g.AddEdge(1, 2)
	g.AddEdge(1, 2) // multi-edge
	st := g.Freeze()
	if got, want := st.WeaklyConnectedComponents(), g.WeaklyConnectedComponents(); got != want {
		t.Errorf("WCC = %+v, want %+v", got, want)
	}
	if got, want := st.StronglyConnectedComponents(), g.StronglyConnectedComponents(); got != want {
		t.Errorf("SCC = %+v, want %+v", got, want)
	}
}

// TestComponentCacheGeneration verifies the generation-memoized
// component accessors: repeated calls over an unchanged graph reuse
// the cache, and any mutation invalidates it.
func TestComponentCacheGeneration(t *testing.T) {
	g := randomGraph(11, 200, 300, 20)

	first := g.WeaklyConnectedComponentsCached()
	if !g.wccCache.valid || g.wccCache.gen != g.Generation() {
		t.Fatal("cache not installed after first computation")
	}
	if again := g.WeaklyConnectedComponentsCached(); again != first {
		t.Fatalf("cache hit returned %+v, want %+v", again, first)
	}
	if again := g.WeaklyConnectedComponents(); again != first {
		t.Fatalf("uncached recomputation %+v disagrees with cached %+v", again, first)
	}

	// Join two components: the cached accessor must notice.
	gen := g.Generation()
	g.AddVertex(50000)
	g.AddVertex(50001)
	g.AddEdge(50000, 50001)
	if g.Generation() == gen {
		t.Fatal("mutation did not advance the generation")
	}
	fresh := g.WeaklyConnectedComponentsCached()
	if fresh == first {
		t.Fatal("cached accessor returned stale components after mutation")
	}
	if want := g.WeaklyConnectedComponents(); fresh != want {
		t.Fatalf("post-mutation cached WCC = %+v, want %+v", fresh, want)
	}

	// Same contract for the SCC cache.
	scc1 := g.StronglyConnectedComponentsCached()
	if !g.sccCache.valid {
		t.Fatal("SCC cache not installed")
	}
	g.AddEdge(50001, 50000) // close a 2-cycle
	scc2 := g.StronglyConnectedComponentsCached()
	if scc2 == scc1 {
		t.Fatal("SCC cache returned stale stats after mutation")
	}
	if want := g.StronglyConnectedComponents(); scc2 != want {
		t.Fatalf("post-mutation cached SCC = %+v, want %+v", scc2, want)
	}

	// No-op mutations (duplicate vertex, absent edge removal) must not
	// invalidate: generation only advances on successful mutation.
	gen = g.Generation()
	g.AddVertex(50000)     // duplicate
	g.RemoveEdge(999, 998) // absent
	if g.Generation() != gen {
		t.Error("no-op mutations advanced the generation")
	}
}

func BenchmarkAddRemoveEdge(b *testing.B) {
	g := New()
	for i := 0; i < 1000; i++ {
		g.AddVertex(VertexID(i))
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		u := VertexID(i % 1000)
		v := VertexID((i * 7) % 1000)
		g.AddEdge(u, v)
		g.RemoveEdge(u, v)
	}
}

func BenchmarkDegreeCounts(b *testing.B) {
	g := New()
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 10000; i++ {
		g.AddVertex(VertexID(i))
	}
	for i := 0; i < 30000; i++ {
		g.AddEdge(VertexID(rng.Intn(10000)), VertexID(rng.Intn(10000)))
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = g.CountInDegree(0) + g.CountInDegree(1) + g.CountInDegree(2) +
			g.CountOutDegree(0) + g.CountOutDegree(1) + g.CountOutDegree(2) +
			g.CountInEqOut()
	}
}

func BenchmarkSCC(b *testing.B) {
	g := New()
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 5000; i++ {
		g.AddVertex(VertexID(i))
	}
	for i := 0; i < 15000; i++ {
		g.AddEdge(VertexID(rng.Intn(5000)), VertexID(rng.Intn(5000)))
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g.StronglyConnectedComponents()
	}
}
