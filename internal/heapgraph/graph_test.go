package heapgraph

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestAddVertex(t *testing.T) {
	g := New()
	g.AddVertex(1)
	g.AddVertex(2)
	g.AddVertex(1) // duplicate is a no-op
	if g.NumVertices() != 2 {
		t.Fatalf("NumVertices = %d, want 2", g.NumVertices())
	}
	if g.CountInDegree(0) != 2 || g.CountOutDegree(0) != 2 {
		t.Errorf("isolated vertices should all have degree 0")
	}
	if g.CountInEqOut() != 2 {
		t.Errorf("CountInEqOut = %d, want 2", g.CountInEqOut())
	}
}

func TestAddEdgeDegrees(t *testing.T) {
	g := New()
	g.AddVertex(1)
	g.AddVertex(2)
	if !g.AddEdge(1, 2) {
		t.Fatal("AddEdge failed")
	}
	if g.InDegree(2) != 1 || g.OutDegree(1) != 1 {
		t.Errorf("degrees: in(2)=%d out(1)=%d", g.InDegree(2), g.OutDegree(1))
	}
	if g.CountInDegree(1) != 1 || g.CountOutDegree(1) != 1 {
		t.Errorf("histograms wrong after edge")
	}
	// 1 has (in=0,out=1), 2 has (in=1,out=0): neither has in==out.
	if g.CountInEqOut() != 0 {
		t.Errorf("CountInEqOut = %d, want 0", g.CountInEqOut())
	}
	if g.NumEdges() != 1 {
		t.Errorf("NumEdges = %d, want 1", g.NumEdges())
	}
}

func TestAddEdgeMissingVertex(t *testing.T) {
	g := New()
	g.AddVertex(1)
	if g.AddEdge(1, 99) {
		t.Error("AddEdge to missing vertex should fail")
	}
	if g.AddEdge(99, 1) {
		t.Error("AddEdge from missing vertex should fail")
	}
	if g.NumEdges() != 0 {
		t.Error("failed AddEdge should not count")
	}
}

func TestMultiEdges(t *testing.T) {
	g := New()
	g.AddVertex(1)
	g.AddVertex(2)
	g.AddEdge(1, 2)
	g.AddEdge(1, 2)
	if g.Multiplicity(1, 2) != 2 {
		t.Fatalf("Multiplicity = %d, want 2", g.Multiplicity(1, 2))
	}
	if g.InDegree(2) != 2 {
		t.Errorf("multi-edge indegree = %d, want 2", g.InDegree(2))
	}
	if g.CountInDegree(2) != 1 {
		t.Errorf("CountInDegree(2) = %d, want 1", g.CountInDegree(2))
	}
	g.RemoveEdge(1, 2)
	if g.Multiplicity(1, 2) != 1 || g.InDegree(2) != 1 {
		t.Errorf("after removing one multi-edge: mult=%d in=%d", g.Multiplicity(1, 2), g.InDegree(2))
	}
}

func TestSelfLoop(t *testing.T) {
	g := New()
	g.AddVertex(5)
	g.AddEdge(5, 5)
	if g.InDegree(5) != 1 || g.OutDegree(5) != 1 {
		t.Errorf("self-loop degrees = (%d,%d), want (1,1)", g.InDegree(5), g.OutDegree(5))
	}
	if g.CountInEqOut() != 1 {
		t.Errorf("self-loop vertex should have in==out")
	}
	if msg := g.CheckInvariants(); msg != "" {
		t.Errorf("invariants: %s", msg)
	}
	g.RemoveVertex(5)
	if g.NumEdges() != 0 || g.NumVertices() != 0 {
		t.Errorf("graph not empty after removing self-loop vertex: %s", g)
	}
	if msg := g.CheckInvariants(); msg != "" {
		t.Errorf("invariants after removal: %s", msg)
	}
}

func TestRemoveEdge(t *testing.T) {
	g := New()
	g.AddVertex(1)
	g.AddVertex(2)
	if g.RemoveEdge(1, 2) {
		t.Error("RemoveEdge of absent edge should report false")
	}
	g.AddEdge(1, 2)
	if !g.RemoveEdge(1, 2) {
		t.Error("RemoveEdge of present edge should report true")
	}
	if g.NumEdges() != 0 || g.InDegree(2) != 0 {
		t.Error("edge removal did not restore degrees")
	}
	if g.CountInEqOut() != 2 {
		t.Errorf("CountInEqOut = %d, want 2", g.CountInEqOut())
	}
}

func TestRemoveVertexDetachesEdges(t *testing.T) {
	// hub with incoming and outgoing edges
	g := New()
	for v := VertexID(1); v <= 5; v++ {
		g.AddVertex(v)
	}
	g.AddEdge(1, 3) // into hub
	g.AddEdge(2, 3)
	g.AddEdge(3, 4) // out of hub
	g.AddEdge(3, 5)
	g.RemoveVertex(3)
	if g.NumVertices() != 4 || g.NumEdges() != 0 {
		t.Fatalf("after hub removal: %s", g)
	}
	for _, v := range []VertexID{1, 2, 4, 5} {
		if g.InDegree(v) != 0 || g.OutDegree(v) != 0 {
			t.Errorf("vertex %d degrees not restored", v)
		}
	}
	if msg := g.CheckInvariants(); msg != "" {
		t.Errorf("invariants: %s", msg)
	}
}

func TestRemoveAbsentVertex(t *testing.T) {
	g := New()
	g.RemoveVertex(42) // must not panic
	if g.NumVertices() != 0 {
		t.Error("phantom vertex appeared")
	}
}

func TestDegreeOverflowBucket(t *testing.T) {
	g := New()
	g.AddVertex(0)
	for v := VertexID(1); v <= 20; v++ {
		g.AddVertex(v)
		g.AddEdge(v, 0)
	}
	if g.InDegree(0) != 20 {
		t.Fatalf("InDegree = %d", g.InDegree(0))
	}
	if g.CountInDegree(20) != 0 {
		t.Error("degrees beyond maxTracked must not appear in exact buckets")
	}
	if g.CountInDegreeOverflow() != 1 {
		t.Errorf("overflow bucket = %d, want 1", g.CountInDegreeOverflow())
	}
	if msg := g.CheckInvariants(); msg != "" {
		t.Errorf("invariants: %s", msg)
	}
}

func TestSuccessorsPredecessors(t *testing.T) {
	g := New()
	g.AddVertex(1)
	g.AddVertex(2)
	g.AddVertex(3)
	g.AddEdge(1, 2)
	g.AddEdge(1, 3)
	g.AddEdge(1, 3)
	succ := map[VertexID]int{}
	g.Successors(1, func(s VertexID, m int) bool {
		succ[s] = m
		return true
	})
	if len(succ) != 2 || succ[2] != 1 || succ[3] != 2 {
		t.Errorf("Successors = %v", succ)
	}
	pred := map[VertexID]int{}
	g.Predecessors(3, func(p VertexID, m int) bool {
		pred[p] = m
		return true
	})
	if len(pred) != 1 || pred[1] != 2 {
		t.Errorf("Predecessors = %v", pred)
	}
}

// buildList creates a singly linked list of n vertices starting at
// base: base -> base+1 -> ... -> base+n-1.
func buildList(g *Graph, base VertexID, n int) {
	for i := 0; i < n; i++ {
		g.AddVertex(base + VertexID(i))
	}
	for i := 0; i+1 < n; i++ {
		g.AddEdge(base+VertexID(i), base+VertexID(i+1))
	}
}

func TestWeaklyConnectedComponents(t *testing.T) {
	g := New()
	if cs := g.WeaklyConnectedComponents(); cs.Count != 0 {
		t.Errorf("empty graph components = %+v", cs)
	}
	buildList(g, 0, 10)
	buildList(g, 100, 5)
	g.AddVertex(999) // isolated singleton
	cs := g.WeaklyConnectedComponents()
	if cs.Count != 3 {
		t.Errorf("Count = %d, want 3", cs.Count)
	}
	if cs.Largest != 10 {
		t.Errorf("Largest = %d, want 10", cs.Largest)
	}
}

func TestSCCList(t *testing.T) {
	g := New()
	buildList(g, 0, 100)
	cs := g.StronglyConnectedComponents()
	// A list is acyclic: every vertex is its own SCC.
	if cs.Count != 100 || cs.Largest != 1 {
		t.Errorf("list SCCs = %+v, want {100 1}", cs)
	}
}

func TestSCCCycle(t *testing.T) {
	g := New()
	const n = 50
	for i := 0; i < n; i++ {
		g.AddVertex(VertexID(i))
	}
	for i := 0; i < n; i++ {
		g.AddEdge(VertexID(i), VertexID((i+1)%n))
	}
	cs := g.StronglyConnectedComponents()
	if cs.Count != 1 || cs.Largest != n {
		t.Errorf("cycle SCCs = %+v, want {1 %d}", cs, n)
	}
}

func TestSCCMixed(t *testing.T) {
	// A 3-cycle feeding a 2-chain: SCCs = {3-cycle}, {a}, {b}.
	g := New()
	for i := 0; i < 5; i++ {
		g.AddVertex(VertexID(i))
	}
	g.AddEdge(0, 1)
	g.AddEdge(1, 2)
	g.AddEdge(2, 0)
	g.AddEdge(2, 3)
	g.AddEdge(3, 4)
	cs := g.StronglyConnectedComponents()
	if cs.Count != 3 || cs.Largest != 3 {
		t.Errorf("mixed SCCs = %+v, want {3 3}", cs)
	}
}

func TestSCCDeepListNoOverflow(t *testing.T) {
	// The iterative Tarjan must survive a path deep enough to kill a
	// recursive version.
	g := New()
	const n = 300000
	buildList(g, 0, n)
	cs := g.StronglyConnectedComponents()
	if cs.Count != n {
		t.Errorf("deep list SCC count = %d, want %d", cs.Count, n)
	}
}

// mutation encodes a random graph operation for property testing.
type mutation struct {
	Op   byte
	U, V uint8
}

// TestGraphInvariantsUnderRandomMutation applies random operation
// sequences and validates the incremental histograms against full
// recomputation via CheckInvariants.
func TestGraphInvariantsUnderRandomMutation(t *testing.T) {
	f := func(muts []mutation) bool {
		g := New()
		for _, m := range muts {
			u, v := VertexID(m.U%32), VertexID(m.V%32)
			switch m.Op % 4 {
			case 0:
				g.AddVertex(u)
			case 1:
				g.RemoveVertex(u)
			case 2:
				g.AddEdge(u, v)
			case 3:
				g.RemoveEdge(u, v)
			}
		}
		return g.CheckInvariants() == ""
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// TestGraphMetricsMatchBruteForce compares histogram-based counts with
// a brute-force degree scan on random graphs.
func TestGraphMetricsMatchBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	g := New()
	for i := 0; i < 200; i++ {
		g.AddVertex(VertexID(i))
	}
	for i := 0; i < 600; i++ {
		g.AddEdge(VertexID(rng.Intn(200)), VertexID(rng.Intn(200)))
	}
	for i := 0; i < 50; i++ {
		g.RemoveVertex(VertexID(rng.Intn(200)))
	}
	for d := 0; d <= maxTracked; d++ {
		wantIn, wantOut := 0, 0
		g.Vertices(func(v VertexID) bool {
			if g.InDegree(v) == d {
				wantIn++
			}
			if g.OutDegree(v) == d {
				wantOut++
			}
			return true
		})
		if g.CountInDegree(d) != wantIn {
			t.Errorf("CountInDegree(%d) = %d, want %d", d, g.CountInDegree(d), wantIn)
		}
		if g.CountOutDegree(d) != wantOut {
			t.Errorf("CountOutDegree(%d) = %d, want %d", d, g.CountOutDegree(d), wantOut)
		}
	}
	wantEq := 0
	g.Vertices(func(v VertexID) bool {
		if g.InDegree(v) == g.OutDegree(v) {
			wantEq++
		}
		return true
	})
	if g.CountInEqOut() != wantEq {
		t.Errorf("CountInEqOut = %d, want %d", g.CountInEqOut(), wantEq)
	}
}

func BenchmarkAddRemoveEdge(b *testing.B) {
	g := New()
	for i := 0; i < 1000; i++ {
		g.AddVertex(VertexID(i))
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		u := VertexID(i % 1000)
		v := VertexID((i * 7) % 1000)
		g.AddEdge(u, v)
		g.RemoveEdge(u, v)
	}
}

func BenchmarkDegreeCounts(b *testing.B) {
	g := New()
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 10000; i++ {
		g.AddVertex(VertexID(i))
	}
	for i := 0; i < 30000; i++ {
		g.AddEdge(VertexID(rng.Intn(10000)), VertexID(rng.Intn(10000)))
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = g.CountInDegree(0) + g.CountInDegree(1) + g.CountInDegree(2) +
			g.CountOutDegree(0) + g.CountOutDegree(1) + g.CountOutDegree(2) +
			g.CountInEqOut()
	}
}

func BenchmarkSCC(b *testing.B) {
	g := New()
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 5000; i++ {
		g.AddVertex(VertexID(i))
	}
	for i := 0; i < 15000; i++ {
		g.AddEdge(VertexID(rng.Intn(5000)), VertexID(rng.Intn(5000)))
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g.StronglyConnectedComponents()
	}
}
