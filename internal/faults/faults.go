// Package faults defines the fault-injection plans that reproduce the
// paper's bug taxonomy (Figures 8 and 9, Section 4).
//
// The paper's evaluation finds bugs that were already present in
// commercial applications; a reproduction must instead inject them.
// Each fault name below corresponds to a bug mechanism described in
// the paper, and the data-structure library (package ds) and workloads
// consult the active Plan at the exact code sites where the original
// bugs lived: an insertion that forgets back-pointers, a free of a
// shared object, a copy loop with a wrong index, and so on.
//
// Faults are probabilistic and budgeted: a fault can be configured to
// fire on a fraction of its opportunities and/or at most N times,
// which is how the paper's "systemic" bugs (repeated often enough to
// move global heap metrics) are distinguished from "well disguised"
// ones (too rare to matter).
package faults

import "math/rand"

// Canonical fault names. Each maps to a paper bug class.
const (
	// DListNoPrev skips updating prev pointers on doubly-linked-list
	// insertion — the Figure 1 bug (data-structure invariant).
	DListNoPrev = "dlist-missing-prev"
	// TypoLeak drops a list head during a table copy due to a wrong
	// index — the Figure 11 bug (programming typo causing a leak).
	TypoLeak = "typo-wrong-index-leak"
	// SharedFree frees the head of a circular list that the tail
	// still references — the Figure 12 bug (shared-state error,
	// dangling pointer).
	SharedFree = "shared-free-dangling"
	// TreeNoParent omits child->parent pointers on tree insertion
	// from one call site — the Figure 10 / PC Game(action) bug
	// (data-structure invariant).
	TreeNoParent = "tree-missing-parent"
	// OctDAG makes an oct-tree construction share subtrees,
	// producing an oct-DAG — the paper's only *poorly disguised*
	// bug (Section 4.3).
	OctDAG = "octtree-dag"
	// BadHash selects a degenerate hash function, collapsing a hash
	// table into a few long chains — the "performance bug"
	// (indirect, Figure 9).
	BadHash = "hash-bad-function"
	// SingleChild makes a tree builder produce one child where two
	// are normal — indirect logic error (Figure 9).
	SingleChild = "tree-single-child"
	// AtypicalGraph produces malformed adjacency-list graphs — the
	// localization bug (indirect, Figure 9).
	AtypicalGraph = "graph-atypical-adjacency"
	// SmallLeak leaks only a handful of objects — a *well disguised*
	// bug HeapMD must NOT detect (Section 4.2).
	SmallLeak = "leak-few-objects"
	// ReachableLeak leaks objects that stay reachable — an
	// *invisible* bug HeapMD must NOT detect; only staleness-based
	// tools like SWAT can (Section 4.2).
	ReachableLeak = "leak-reachable"
)

// Config controls one fault.
type Config struct {
	// Enabled gates the fault entirely.
	Enabled bool
	// Prob is the probability the fault fires at each opportunity;
	// 0 means 1.0 (always).
	Prob float64
	// MaxTriggers caps the number of firings; 0 means unlimited.
	MaxTriggers int
}

// Plan is a set of configured faults plus firing counters. The zero
// value is a usable all-disabled plan.
type Plan struct {
	configs  map[string]Config
	triggers map[string]int
}

// NewPlan returns an empty (all-disabled) plan.
func NewPlan() *Plan {
	return &Plan{
		configs:  make(map[string]Config),
		triggers: make(map[string]int),
	}
}

// Enable activates a fault with the given config.
func (p *Plan) Enable(name string, cfg Config) *Plan {
	if p.configs == nil {
		p.configs = make(map[string]Config)
		p.triggers = make(map[string]int)
	}
	cfg.Enabled = true
	p.configs[name] = cfg
	return p
}

// EnableAlways activates a fault that fires at every opportunity.
func (p *Plan) EnableAlways(name string) *Plan {
	return p.Enable(name, Config{})
}

// Enabled reports whether the fault is active (regardless of
// probability or budget).
func (p *Plan) Enabled(name string) bool {
	if p == nil || p.configs == nil {
		return false
	}
	return p.configs[name].Enabled
}

// Hit decides whether the fault fires at this opportunity, consuming
// budget and randomness as configured. A nil plan never fires.
func (p *Plan) Hit(name string, rng *rand.Rand) bool {
	if p == nil || p.configs == nil {
		return false
	}
	cfg, ok := p.configs[name]
	if !ok || !cfg.Enabled {
		return false
	}
	if cfg.MaxTriggers > 0 && p.triggers[name] >= cfg.MaxTriggers {
		return false
	}
	if cfg.Prob > 0 && cfg.Prob < 1 {
		if rng == nil || rng.Float64() >= cfg.Prob {
			return false
		}
	}
	p.triggers[name]++
	return true
}

// Triggers returns how many times the fault has fired.
func (p *Plan) Triggers(name string) int {
	if p == nil || p.triggers == nil {
		return 0
	}
	return p.triggers[name]
}

// Active returns the names of enabled faults (order unspecified).
func (p *Plan) Active() []string {
	if p == nil {
		return nil
	}
	var out []string
	for name, cfg := range p.configs {
		if cfg.Enabled {
			out = append(out, name)
		}
	}
	return out
}

// Reset zeroes the firing counters, keeping the configuration; used
// when one plan drives several runs.
func (p *Plan) Reset() {
	if p == nil {
		return
	}
	for k := range p.triggers {
		delete(p.triggers, k)
	}
}
