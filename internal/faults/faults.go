// Package faults defines the fault-injection plans that reproduce the
// paper's bug taxonomy (Figures 8 and 9, Section 4).
//
// The paper's evaluation finds bugs that were already present in
// commercial applications; a reproduction must instead inject them.
// Each fault name below corresponds to a bug mechanism described in
// the paper, and the data-structure library (package ds) and workloads
// consult the active Plan at the exact code sites where the original
// bugs lived: an insertion that forgets back-pointers, a free of a
// shared object, a copy loop with a wrong index, and so on.
//
// Faults are probabilistic and budgeted: a fault can be configured to
// fire on a fraction of its opportunities and/or at most N times,
// which is how the paper's "systemic" bugs (repeated often enough to
// move global heap metrics) are distinguished from "well disguised"
// ones (too rare to matter).
//
// A Plan is safe for concurrent use: the soak harness and parallel
// run schedulers may share one plan across goroutines, so Hit and the
// accessors serialize on an internal mutex.
package faults

import (
	"fmt"
	"math/rand"
	"sync"
)

// Canonical fault names. Each maps to a paper bug class.
const (
	// DListNoPrev skips updating prev pointers on doubly-linked-list
	// insertion — the Figure 1 bug (data-structure invariant).
	DListNoPrev = "dlist-missing-prev"
	// TypoLeak drops a list head during a table copy due to a wrong
	// index — the Figure 11 bug (programming typo causing a leak).
	TypoLeak = "typo-wrong-index-leak"
	// SharedFree frees the head of a circular list that the tail
	// still references — the Figure 12 bug (shared-state error,
	// dangling pointer).
	SharedFree = "shared-free-dangling"
	// TreeNoParent omits child->parent pointers on tree insertion
	// from one call site — the Figure 10 / PC Game(action) bug
	// (data-structure invariant).
	TreeNoParent = "tree-missing-parent"
	// OctDAG makes an oct-tree construction share subtrees,
	// producing an oct-DAG — the paper's only *poorly disguised*
	// bug (Section 4.3).
	OctDAG = "octtree-dag"
	// BadHash selects a degenerate hash function, collapsing a hash
	// table into a few long chains — the "performance bug"
	// (indirect, Figure 9).
	BadHash = "hash-bad-function"
	// SingleChild makes a tree builder produce one child where two
	// are normal — indirect logic error (Figure 9).
	SingleChild = "tree-single-child"
	// AtypicalGraph produces malformed adjacency-list graphs — the
	// localization bug (indirect, Figure 9).
	AtypicalGraph = "graph-atypical-adjacency"
	// SmallLeak leaks only a handful of objects — a *well disguised*
	// bug HeapMD must NOT detect (Section 4.2).
	SmallLeak = "leak-few-objects"
	// ReachableLeak leaks objects that stay reachable — an
	// *invisible* bug HeapMD must NOT detect; only staleness-based
	// tools like SWAT can (Section 4.2).
	ReachableLeak = "leak-reachable"

	// The extended catalog: failure modes beyond the paper's original
	// mechanisms, exercised by the soak harness (internal/soak).

	// FragStorm is an alloc/free size-churn burst that strands
	// transient fragments — isolated vertices that inflate the
	// Roots/Leaves/In=Out populations while the storm lasts
	// (systemic; wired into the churn pools).
	FragStorm = "frag-storm"
	// LeakPlateau is a leak that stops before the detection window
	// closes: a replace path forgets to release outgoing objects
	// until a trigger budget is exhausted, then plateaus (systemic;
	// wired into ptrTable.replace).
	LeakPlateau = "leak-then-plateau"
	// ABARewire is an ABA-style dangling rewire: a list node is
	// handed back to the allocator before its unlink completes, and
	// the rewire finishes through the stale pointer — use-after-free
	// stores that can land inside whatever object recycles the
	// address (systemic corruption; wired into ds.DList.Remove).
	ABARewire = "aba-dangling-rewire"
	// AllocCascade is an allocator-pressure cascade: burst
	// allocations whose release is deferred several operations, so
	// bursts overlap — standing allocator pressure whose event
	// spikes also stress the monitoring pipeline (systemic; wired
	// into the workloads' burst pools).
	AllocCascade = "alloc-pressure-cascade"
	// SlowDrift is a bounded creep that stays under the paper's ±1%
	// stability threshold: a tiny trickle of leaked objects, capped
	// far inside every calibrated band — a must-NOT-detect case
	// (well disguised; wired next to the negative-control leak
	// sites).
	SlowDrift = "drift-sub-threshold"
)

// Class places a fault in the paper's Section 4.2/4.3 taxonomy, which
// is what fixes the detector's expected verdict: systemic, indirect
// and poorly-disguised bugs must be detected; well-disguised and
// invisible ones must not.
type Class int

const (
	// Systemic bugs repeat often enough to move global heap metrics.
	Systemic Class = iota
	// Indirect bugs damage the heap as a side effect of a logic
	// error (degenerate hash, malformed graph); still detected.
	Indirect
	// PoorlyDisguised bugs pin a stable metric at a calibrated
	// extreme for the whole run (the oct-DAG).
	PoorlyDisguised
	// Disguised bugs are too small or too slow to move any metric
	// out of band; HeapMD must stay quiet.
	Disguised
	// Invisible bugs never change the heap graph's shape at all
	// (reachable leaks); only staleness-based tools see them.
	Invisible
)

func (c Class) String() string {
	switch c {
	case Systemic:
		return "systemic"
	case Indirect:
		return "indirect"
	case PoorlyDisguised:
		return "poorly-disguised"
	case Disguised:
		return "disguised"
	case Invisible:
		return "invisible"
	default:
		return fmt.Sprintf("faults.Class(%d)", int(c))
	}
}

// CatalogEntry describes one fault: its mechanism, its place in the
// taxonomy and the verdict HeapMD is expected to reach.
type CatalogEntry struct {
	Name      string
	Class     Class
	Mechanism string
	// ExpectDetect is the taxonomy's verdict: true for systemic,
	// indirect and poorly-disguised faults, false for disguised and
	// invisible ones.
	ExpectDetect bool
	// HealthBased marks faults whose detection signal is the
	// instrumentation-health counters (wild stores, double frees)
	// rather than a degree-metric shift. Under the Drop backpressure
	// policy the health counters become approximate, so health-based
	// detection is only trusted under Block.
	HealthBased bool
}

// Catalog enumerates every fault in a fixed order: the paper's
// original mechanisms first, then the extended soak catalog.
func Catalog() []CatalogEntry {
	return []CatalogEntry{
		{DListNoPrev, Systemic, "skip prev pointers on doubly-linked-list insert (Figure 1)", true, false},
		{TypoLeak, Systemic, "wrong-index table copy leaks property lists (Figure 11)", true, false},
		{SharedFree, Systemic, "free shared circular-list head, dangling tail (Figure 12)", true, false},
		{TreeNoParent, Systemic, "omit child->parent pointers on tree insert (Figure 10)", true, false},
		{OctDAG, PoorlyDisguised, "share oct-tree subtrees, producing an oct-DAG", true, false},
		{BadHash, Indirect, "degenerate hash function, long collision chains", true, false},
		{SingleChild, Indirect, "binary-tree builder emits one child, not two", true, false},
		{AtypicalGraph, Indirect, "adjacency-list generator collapses to a star", true, false},
		{SmallLeak, Disguised, "leak a handful of objects (should NOT fire)", false, false},
		{ReachableLeak, Invisible, "grow a never-accessed reachable cache (should NOT fire)", false, false},
		{FragStorm, Systemic, "alloc/free size churn strands transient fragments", true, false},
		{LeakPlateau, Systemic, "leak that plateaus before the detection window closes", true, false},
		{ABARewire, Systemic, "node freed mid-unlink; rewire writes through the stale pointer", true, true},
		{AllocCascade, Systemic, "burst allocations with deferred release starve the pipeline", true, false},
		{SlowDrift, Disguised, "creep capped under the stability threshold (should NOT fire)", false, false},
	}
}

// Lookup returns the catalog entry for name.
func Lookup(name string) (CatalogEntry, bool) {
	for _, e := range Catalog() {
		if e.Name == name {
			return e, true
		}
	}
	return CatalogEntry{}, false
}

// Config controls one fault.
type Config struct {
	// Enabled gates the fault entirely.
	Enabled bool
	// Prob is the probability the fault fires at each opportunity;
	// 0 means 1.0 (always). Use Always or ProbOf to avoid tripping
	// over the zero value.
	Prob float64
	// MaxTriggers caps the number of firings; 0 means unlimited.
	MaxTriggers int
}

// Always returns a Config that fires at every opportunity — the
// explicit spelling of the zero value's "Prob 0 means 1.0" rule.
func Always() Config { return Config{} }

// ProbOf returns a Config that fires with the given probability.
// prob must be in (0, 1]; ProbOf panics otherwise, because
// Config.Prob's zero value means "always" and a silently-zero
// probability would invert the intended rarity (the footgun this
// constructor exists to remove).
func ProbOf(prob float64) Config {
	if prob <= 0 || prob > 1 {
		panic(fmt.Sprintf("faults.ProbOf: probability %v outside (0, 1]", prob))
	}
	return Config{Prob: prob}
}

// Plan is a set of configured faults plus firing counters. The zero
// value is a usable all-disabled plan. All methods are safe for
// concurrent use.
type Plan struct {
	mu       sync.Mutex
	configs  map[string]Config
	triggers map[string]int
}

// NewPlan returns an empty (all-disabled) plan.
func NewPlan() *Plan {
	return &Plan{
		configs:  make(map[string]Config),
		triggers: make(map[string]int),
	}
}

// Enable activates a fault with the given config.
func (p *Plan) Enable(name string, cfg Config) *Plan {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.configs == nil {
		p.configs = make(map[string]Config)
		p.triggers = make(map[string]int)
	}
	cfg.Enabled = true
	p.configs[name] = cfg
	return p
}

// EnableAlways activates a fault that fires at every opportunity.
func (p *Plan) EnableAlways(name string) *Plan {
	return p.Enable(name, Always())
}

// Enabled reports whether the fault is active (regardless of
// probability or budget).
func (p *Plan) Enabled(name string) bool {
	if p == nil {
		return false
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.configs == nil {
		return false
	}
	return p.configs[name].Enabled
}

// Hit decides whether the fault fires at this opportunity, consuming
// budget and randomness as configured. A nil plan never fires. The
// decision — probability draw, budget check and counter increment —
// is atomic under the plan's lock, so a shared plan's MaxTriggers
// budget is exact even when hit from many goroutines (each with its
// own *rand.Rand).
func (p *Plan) Hit(name string, rng *rand.Rand) bool {
	if p == nil {
		return false
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.configs == nil {
		return false
	}
	cfg, ok := p.configs[name]
	if !ok || !cfg.Enabled {
		return false
	}
	if cfg.MaxTriggers > 0 && p.triggers[name] >= cfg.MaxTriggers {
		return false
	}
	if cfg.Prob > 0 && cfg.Prob < 1 {
		if rng == nil || rng.Float64() >= cfg.Prob {
			return false
		}
	}
	p.triggers[name]++
	return true
}

// Triggers returns how many times the fault has fired.
func (p *Plan) Triggers(name string) int {
	if p == nil {
		return 0
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.triggers == nil {
		return 0
	}
	return p.triggers[name]
}

// Active returns the names of enabled faults (order unspecified).
func (p *Plan) Active() []string {
	if p == nil {
		return nil
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	var out []string
	for name, cfg := range p.configs {
		if cfg.Enabled {
			out = append(out, name)
		}
	}
	return out
}

// Reset zeroes the firing counters, keeping the configuration; used
// when one plan drives several runs.
func (p *Plan) Reset() {
	if p == nil {
		return
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	for k := range p.triggers {
		delete(p.triggers, k)
	}
}
