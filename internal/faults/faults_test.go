package faults

import (
	"math/rand"
	"testing"
)

func TestNilPlanNeverFires(t *testing.T) {
	var p *Plan
	if p.Hit(DListNoPrev, nil) {
		t.Error("nil plan fired")
	}
	if p.Enabled(DListNoPrev) {
		t.Error("nil plan reports enabled")
	}
	if p.Triggers(DListNoPrev) != 0 {
		t.Error("nil plan has triggers")
	}
	if p.Active() != nil {
		t.Error("nil plan has active faults")
	}
	p.Reset() // must not panic
}

func TestZeroPlanNeverFires(t *testing.T) {
	var p Plan
	if p.Hit(TypoLeak, nil) {
		t.Error("zero plan fired")
	}
}

func TestEnableAlways(t *testing.T) {
	p := NewPlan().EnableAlways(DListNoPrev)
	if !p.Enabled(DListNoPrev) {
		t.Fatal("fault not enabled")
	}
	for i := 0; i < 5; i++ {
		if !p.Hit(DListNoPrev, nil) {
			t.Fatal("always-on fault did not fire")
		}
	}
	if p.Triggers(DListNoPrev) != 5 {
		t.Errorf("Triggers = %d, want 5", p.Triggers(DListNoPrev))
	}
	if p.Hit(TypoLeak, nil) {
		t.Error("unconfigured fault fired")
	}
}

func TestMaxTriggers(t *testing.T) {
	p := NewPlan().Enable(SmallLeak, Config{MaxTriggers: 3})
	fired := 0
	for i := 0; i < 10; i++ {
		if p.Hit(SmallLeak, nil) {
			fired++
		}
	}
	if fired != 3 {
		t.Errorf("fired %d times, want 3", fired)
	}
}

func TestProbability(t *testing.T) {
	p := NewPlan().Enable(BadHash, Config{Prob: 0.5})
	rng := rand.New(rand.NewSource(1))
	fired := 0
	const n = 10000
	for i := 0; i < n; i++ {
		if p.Hit(BadHash, rng) {
			fired++
		}
	}
	if fired < n/3 || fired > 2*n/3 {
		t.Errorf("p=0.5 fault fired %d/%d times", fired, n)
	}
	// Probabilistic fault with nil RNG must not fire (fail safe).
	q := NewPlan().Enable(BadHash, Config{Prob: 0.5})
	if q.Hit(BadHash, nil) {
		t.Error("probabilistic fault fired without RNG")
	}
}

func TestActiveAndReset(t *testing.T) {
	p := NewPlan().EnableAlways(OctDAG).EnableAlways(TreeNoParent)
	if len(p.Active()) != 2 {
		t.Errorf("Active = %v", p.Active())
	}
	p.Hit(OctDAG, nil)
	p.Reset()
	if p.Triggers(OctDAG) != 0 {
		t.Error("Reset did not clear triggers")
	}
	if !p.Enabled(OctDAG) {
		t.Error("Reset cleared configuration")
	}
}
