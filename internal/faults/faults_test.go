package faults

import (
	"math/rand"
	"sync"
	"testing"
)

func TestNilPlanNeverFires(t *testing.T) {
	var p *Plan
	if p.Hit(DListNoPrev, nil) {
		t.Error("nil plan fired")
	}
	if p.Enabled(DListNoPrev) {
		t.Error("nil plan reports enabled")
	}
	if p.Triggers(DListNoPrev) != 0 {
		t.Error("nil plan has triggers")
	}
	if p.Active() != nil {
		t.Error("nil plan has active faults")
	}
	p.Reset() // must not panic
}

func TestZeroPlanNeverFires(t *testing.T) {
	var p Plan
	if p.Hit(TypoLeak, nil) {
		t.Error("zero plan fired")
	}
}

func TestEnableAlways(t *testing.T) {
	p := NewPlan().EnableAlways(DListNoPrev)
	if !p.Enabled(DListNoPrev) {
		t.Fatal("fault not enabled")
	}
	for i := 0; i < 5; i++ {
		if !p.Hit(DListNoPrev, nil) {
			t.Fatal("always-on fault did not fire")
		}
	}
	if p.Triggers(DListNoPrev) != 5 {
		t.Errorf("Triggers = %d, want 5", p.Triggers(DListNoPrev))
	}
	if p.Hit(TypoLeak, nil) {
		t.Error("unconfigured fault fired")
	}
}

func TestMaxTriggers(t *testing.T) {
	p := NewPlan().Enable(SmallLeak, Config{MaxTriggers: 3})
	fired := 0
	for i := 0; i < 10; i++ {
		if p.Hit(SmallLeak, nil) {
			fired++
		}
	}
	if fired != 3 {
		t.Errorf("fired %d times, want 3", fired)
	}
}

func TestProbability(t *testing.T) {
	p := NewPlan().Enable(BadHash, Config{Prob: 0.5})
	rng := rand.New(rand.NewSource(1))
	fired := 0
	const n = 10000
	for i := 0; i < n; i++ {
		if p.Hit(BadHash, rng) {
			fired++
		}
	}
	if fired < n/3 || fired > 2*n/3 {
		t.Errorf("p=0.5 fault fired %d/%d times", fired, n)
	}
	// Probabilistic fault with nil RNG must not fire (fail safe).
	q := NewPlan().Enable(BadHash, Config{Prob: 0.5})
	if q.Hit(BadHash, nil) {
		t.Error("probabilistic fault fired without RNG")
	}
}

// TestProbZeroMeansAlways pins the Config.Prob zero-value semantics:
// an enabled fault whose Prob was left at 0 fires at every
// opportunity, exactly like Always(). Soak schedules rely on this
// staying true — a silent change would turn "always" into "never".
func TestProbZeroMeansAlways(t *testing.T) {
	p := NewPlan().Enable(DListNoPrev, Config{})
	for i := 0; i < 100; i++ {
		if !p.Hit(DListNoPrev, nil) {
			t.Fatal("zero-Prob enabled fault did not fire")
		}
	}
	q := NewPlan().Enable(TypoLeak, Always())
	if !q.Hit(TypoLeak, nil) {
		t.Fatal("Always() config did not fire")
	}
	if Always() != (Config{}) {
		t.Error("Always() is not the zero Config")
	}
}

func TestProbOf(t *testing.T) {
	cfg := ProbOf(0.25)
	if cfg.Prob != 0.25 {
		t.Errorf("ProbOf(0.25).Prob = %v", cfg.Prob)
	}
	if ProbOf(1).Prob != 1 {
		t.Error("ProbOf(1) must be valid (certain firing)")
	}
	for _, bad := range []float64{0, -0.1, 1.1} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("ProbOf(%v) did not panic", bad)
				}
			}()
			ProbOf(bad)
		}()
	}
}

// TestPlanConcurrentHit is the -race regression for sharing one plan
// across goroutines (the soak/parallel use case): concurrent Hit,
// accessor and Reset traffic must be data-race free, trigger counts
// must be exact, and a MaxTriggers budget must never be exceeded.
func TestPlanConcurrentHit(t *testing.T) {
	p := NewPlan().
		EnableAlways(TypoLeak).
		Enable(BadHash, ProbOf(0.5)).
		Enable(SmallLeak, Config{MaxTriggers: 7})

	const goroutines = 4
	const hitsEach = 2000
	budgetFired := make([]int, goroutines)
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(g)))
			for i := 0; i < hitsEach; i++ {
				p.Hit(TypoLeak, rng)
				p.Hit(BadHash, rng)
				if p.Hit(SmallLeak, rng) {
					budgetFired[g]++
				}
				_ = p.Enabled(DListNoPrev)
				_ = p.Triggers(TypoLeak)
				_ = p.Active()
			}
		}(g)
	}
	wg.Wait()
	if got := p.Triggers(TypoLeak); got != goroutines*hitsEach {
		t.Errorf("TypoLeak triggers = %d, want %d", got, goroutines*hitsEach)
	}
	total := 0
	for _, n := range budgetFired {
		total += n
	}
	if total != 7 {
		t.Errorf("MaxTriggers budget fired %d times across goroutines, want exactly 7", total)
	}
	p.Reset()
	if p.Triggers(TypoLeak) != 0 {
		t.Error("Reset did not clear triggers")
	}
}

func TestCatalog(t *testing.T) {
	entries := Catalog()
	if len(entries) < 15 {
		t.Fatalf("catalog has %d entries, want >= 15", len(entries))
	}
	seen := map[string]bool{}
	for _, e := range entries {
		if seen[e.Name] {
			t.Errorf("duplicate catalog entry %q", e.Name)
		}
		seen[e.Name] = true
		if e.Mechanism == "" {
			t.Errorf("%s: empty mechanism", e.Name)
		}
		wantDetect := e.Class == Systemic || e.Class == Indirect || e.Class == PoorlyDisguised
		if e.ExpectDetect != wantDetect {
			t.Errorf("%s: ExpectDetect=%v inconsistent with class %s", e.Name, e.ExpectDetect, e.Class)
		}
	}
	for _, name := range []string{DListNoPrev, FragStorm, LeakPlateau, ABARewire, AllocCascade, SlowDrift} {
		if !seen[name] {
			t.Errorf("catalog missing %s", name)
		}
	}
	if e, ok := Lookup(SlowDrift); !ok || e.ExpectDetect {
		t.Errorf("Lookup(SlowDrift) = %+v, %v; want a must-not-detect entry", e, ok)
	}
	if _, ok := Lookup("no-such-fault"); ok {
		t.Error("Lookup of unknown fault succeeded")
	}
}

func TestActiveAndReset(t *testing.T) {
	p := NewPlan().EnableAlways(OctDAG).EnableAlways(TreeNoParent)
	if len(p.Active()) != 2 {
		t.Errorf("Active = %v", p.Active())
	}
	p.Hit(OctDAG, nil)
	p.Reset()
	if p.Triggers(OctDAG) != 0 {
		t.Error("Reset did not clear triggers")
	}
	if !p.Enabled(OctDAG) {
		t.Error("Reset cleared configuration")
	}
}
