package workloads

import (
	"errors"
	"testing"

	"heapmd/internal/callstack"
	"heapmd/internal/faults"
	"heapmd/internal/logger"
	"heapmd/internal/metrics"
	"heapmd/internal/model"
	"heapmd/internal/prog"
)

func TestRegistry(t *testing.T) {
	names := Names()
	if len(names) != 13 {
		t.Fatalf("registered %d workloads, want 13", len(names))
	}
	// SPEC first, then commercial, each alphabetical.
	wantFirst := []string{"crafty", "gcc", "gzip", "mcf", "parser", "twolf", "vortex", "vpr"}
	for i, n := range wantFirst {
		if names[i] != n {
			t.Fatalf("names[%d] = %s, want %s (full: %v)", i, names[i], n, names)
		}
	}
	if len(Commercials()) != 5 {
		t.Errorf("Commercials = %d, want 5", len(Commercials()))
	}
	if _, err := Get("gzip"); err != nil {
		t.Error(err)
	}
	if _, err := Get("nonesuch"); err == nil {
		t.Error("Get of unknown workload should fail")
	}
}

func TestInputsDeterministic(t *testing.T) {
	w, _ := Get("gzip")
	a := w.Inputs(5)
	b := w.Inputs(5)
	if len(a) != 5 {
		t.Fatalf("inputs = %d", len(a))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("input %d differs across calls: %+v vs %+v", i, a[i], b[i])
		}
	}
	// Distinct workloads must get distinct seeds.
	v, _ := Get("vpr")
	if v.Inputs(1)[0].Seed == a[0].Seed {
		t.Error("different workloads share input seeds")
	}
}

func TestRunsAreDeterministic(t *testing.T) {
	w, _ := Get("parser")
	in := w.Inputs(1)[0]
	r1, _, err := RunLogged(w, in, RunConfig{})
	if err != nil {
		t.Fatal(err)
	}
	r2, _, err := RunLogged(w, in, RunConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if r1.Events != r2.Events || r1.FnEntries != r2.FnEntries {
		t.Fatalf("rerun diverged: %d/%d events, %d/%d entries",
			r1.Events, r2.Events, r1.FnEntries, r2.FnEntries)
	}
	if len(r1.Snapshots) != len(r2.Snapshots) {
		t.Fatalf("snapshot counts differ")
	}
	for i := range r1.Snapshots {
		for j := range r1.Snapshots[i].Values {
			if r1.Snapshots[i].Values[j] != r2.Snapshots[i].Values[j] {
				t.Fatalf("snapshot %d metric %d differs", i, j)
			}
		}
	}
}

func TestAllWorkloadsRunCleanly(t *testing.T) {
	for _, w := range All() {
		w := w
		t.Run(w.Name(), func(t *testing.T) {
			t.Parallel()
			in := w.Inputs(1)[0]
			rep, p, err := RunLogged(w, in, RunConfig{})
			if err != nil {
				t.Fatalf("run failed: %v", err)
			}
			if len(rep.Snapshots) < 10 {
				t.Errorf("only %d metric samples; workloads must generate enough function entries", len(rep.Snapshots))
			}
			// Fault-free runs must not leak beyond the deliberate
			// caches: heap should be nearly empty after shutdown.
			if live := p.Heap().Live(); live > 5 {
				t.Errorf("clean run left %d live objects", live)
			}
		})
	}
}

// TestStableMetricIdentity reproduces the core of Figure 7(A) at small
// scale: for every benchmark, the metric the paper names must be
// classified globally stable from a handful of training inputs.
func TestStableMetricIdentity(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-run training in -short mode")
	}
	for _, w := range All() {
		w := w
		t.Run(w.Name(), func(t *testing.T) {
			t.Parallel()
			reports, err := Train(w, 5, RunConfig{})
			if err != nil {
				t.Fatal(err)
			}
			res, err := model.Build(reports, model.Defaults())
			if err != nil {
				t.Fatal(err)
			}
			if res.StableCount() < 1 {
				t.Fatalf("no globally stable metrics at all")
			}
			mr := res.Reports[indexOf(reports[0].Suite, w.StableMetric())]
			if mr.Class != model.GloballyStable {
				t.Errorf("designated metric %s classified %s", w.StableMetric(), mr.Class)
			}
		})
	}
}

func indexOf(names []string, want string) int {
	for i, n := range names {
		if n == want {
			return i
		}
	}
	return -1
}

func TestVersionsChangeWorkNotMix(t *testing.T) {
	w, _ := Get("multimedia")
	in := w.Inputs(1)[0]
	r1, _, err := RunLogged(w, in, RunConfig{Version: 1})
	if err != nil {
		t.Fatal(err)
	}
	r5, _, err := RunLogged(w, in, RunConfig{Version: 5})
	if err != nil {
		t.Fatal(err)
	}
	if r5.FnEntries <= r1.FnEntries {
		t.Errorf("version 5 should do more work: %d vs %d entries", r5.FnEntries, r1.FnEntries)
	}
	if r1.Version != 1 || r5.Version != 5 {
		t.Errorf("versions not recorded in reports")
	}
}

func TestFaultPlanThreadsThrough(t *testing.T) {
	w, _ := Get("multimedia")
	in := w.Inputs(1)[0]
	plan := faults.NewPlan().EnableAlways(faults.DListNoPrev)
	_, _, err := RunLogged(w, in, RunConfig{Plan: plan})
	if err != nil {
		t.Fatal(err)
	}
	if plan.Triggers(faults.DListNoPrev) == 0 {
		t.Error("fault site never hit during multimedia run")
	}
}

func TestTypoLeakLeaksObjects(t *testing.T) {
	w, _ := Get("webapp")
	in := w.Inputs(1)[0]
	_, clean, err := RunLogged(w, in, RunConfig{})
	if err != nil {
		t.Fatal(err)
	}
	plan := faults.NewPlan().EnableAlways(faults.TypoLeak)
	_, faulty, err := RunLogged(w, in, RunConfig{Plan: plan})
	if err != nil {
		t.Fatal(err)
	}
	if faulty.Heap().Live() <= clean.Heap().Live() {
		t.Errorf("typo fault should leak: clean=%d faulty=%d live objects",
			clean.Heap().Live(), faulty.Heap().Live())
	}
}

func TestTrainProducesOneReportPerInput(t *testing.T) {
	w, _ := Get("mcf")
	reports, err := Train(w, 3, RunConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if len(reports) != 3 {
		t.Fatalf("reports = %d", len(reports))
	}
	seen := map[string]bool{}
	for _, r := range reports {
		if r.Program != "mcf" {
			t.Errorf("program = %s", r.Program)
		}
		if seen[r.Input] {
			t.Errorf("duplicate input %s", r.Input)
		}
		seen[r.Input] = true
	}
}

func TestObserversAttached(t *testing.T) {
	w, _ := Get("mcf")
	in := w.Inputs(1)[0]
	n := 0
	obs := observerFunc(func() { n++ })
	if _, _, err := RunLogged(w, in, RunConfig{Observers: []logger.SampleObserver{obs}}); err != nil {
		t.Fatal(err)
	}
	if n == 0 {
		t.Error("observer never invoked")
	}
}

type observerFunc func()

func (f observerFunc) Sample(metrics.Snapshot, *callstack.Tracker) { f() }

func TestExtendedSuiteOnWorkload(t *testing.T) {
	// The extension metrics (weakly/strongly connected component
	// counts, paper Section 2.1's "other choices for metrics") run
	// through the same pipeline: sample a workload with the
	// extended suite and check the structure metrics behave.
	w, _ := Get("mcf")
	in := w.Inputs(1)[0]
	rep, _, err := RunLogged(w, in, RunConfig{
		Logger: logger.Options{Suite: metrics.ExtendedSuite(), Frequency: 32},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Suite) != 9 {
		t.Fatalf("suite = %v", rep.Suite)
	}
	wcc := rep.Series(metrics.Components)
	scc := rep.Series(metrics.SCCs)
	if len(wcc) == 0 || len(scc) == 0 {
		t.Fatal("extension metric series missing")
	}
	for i := range wcc {
		// mcf's network hangs off a handful of headers: very few
		// weak components per 100 vertices. Its object graph is
		// cyclic (vertex -> adjacency node -> vertex loops), so the
		// SCC count per 100 vertices sits well below 100 — but a
		// strong decomposition can never be coarser than the weak
		// one.
		if wcc[i] <= 0 || wcc[i] > 50 {
			t.Fatalf("WCC/100v sample %d = %v out of plausible range", i, wcc[i])
		}
		if scc[i] < wcc[i] || scc[i] > 100.5 {
			t.Fatalf("SCC/100v sample %d = %v vs WCC %v: inconsistent", i, scc[i], wcc[i])
		}
	}
}

func TestCrashesSurfaceAsErrors(t *testing.T) {
	// An aggressive shared-free plan on multimedia can cascade into
	// a double free; the harness must return it as an error, never
	// panic. (Whether a particular input crashes is incidental —
	// this asserts the error pathway only.)
	w, _ := Get("multimedia")
	for _, in := range w.Inputs(4) {
		plan := faults.NewPlan().EnableAlways(faults.SharedFree)
		_, _, err := RunLogged(w, in, RunConfig{Plan: plan})
		if err != nil {
			var f *prog.Fault
			if !errors.As(err, &f) {
				t.Fatalf("crash surfaced as %T (%v), want *prog.Fault", err, err)
			}
		}
	}
}
