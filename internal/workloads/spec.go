package workloads

import (
	"heapmd/internal/ds"
	"heapmd/internal/prog"
)

// The eight SPEC-2000-like workloads. Each Run comment names the real
// program being modelled and the heap signature from the paper's
// Figure 7(A) that the model reproduces.
//
// A shared discipline keeps the designated metrics *globally stable*
// the way the real programs' heaps are: the main phase maintains a
// steady-state heap (churn replaces objects, it does not grow
// populations), and every multi-step mutation happens inside a single
// function entry so metric samples — which occur exactly at function
// entries — never observe a structure half-rebuilt.

func init() {
	register(&gzipWL{base{name: "gzip", class: SPEC, stable: "Leaves", scale: 280, spread: 160, desc: "block compressor: leaf buffer windows + Huffman tables"}})
	register(&craftyWL{base{name: "crafty", class: SPEC, stable: "Leaves", scale: 420, spread: 250, desc: "chess engine: transposition table of leaf entries"}})
	register(&mcfWL{base{name: "mcf", class: SPEC, stable: "Roots", scale: 140, spread: 80, desc: "network simplex: fully linked flow network, near-zero roots"}})
	register(&vprWL{base{name: "vpr", class: SPEC, stable: "Outdeg=1", scale: 180, spread: 120, desc: "place&route: routing chains vs pad blobs, input-dependent mix"}})
	register(&vortexWL{base{name: "vortex", class: SPEC, stable: "Indeg=1", scale: 260, spread: 160, desc: "OO database: singly referenced store objects + relations"}})
	register(&parserWL{base{name: "parser", class: SPEC, stable: "In=Out", scale: 240, spread: 140, desc: "dictionary chains: bucket tails sit at indeg==outdeg"}})
	register(&gccWL{base{name: "gcc", class: SPEC, stable: "Outdeg=1", scale: 160, spread: 120, desc: "compiler: per-function IR chains, size varies wildly by input"}})
	register(&twolfWL{base{name: "twolf", class: SPEC, stable: "Outdeg=2", scale: 220, spread: 120, desc: "cell placement: every cell points at exactly two nets"}})
}

// gzipWL models gzip: block-oriented compression. The heap is
// dominated by raw buffer objects held in a sliding window table plus
// a long-lived Huffman table rebuilt only occasionally, so leaf
// vertices dominate — "Leaves" is the stable metric (paper:
// 82.9-90.2%).
type gzipWL struct{ base }

func (w *gzipWL) Run(p *prog.Process, in Input, _ int) {
	rng := p.Rand()
	window := in.Scale
	// Input data determines the code-table size: deeper Huffman
	// trees for richer inputs, spreading the leaf fraction across
	// inputs the way the paper's Min/Max columns spread.
	depth := 4 + in.knob(9, 3) // 4..6
	var win *ptrTable
	var winPool *churnPool
	var huffman uint64
	phase(p, "gzip.startup", func() {
		win = newPtrTable(p, "gzip.window", window)
		winPool = newChurnPool(win, 10)
		huffman = ds.FullBinaryTree(p, "gzip.huffman", depth)
	})
	blocks := 70
	for b := 0; b < blocks; b++ {
		phase(p, "gzip.compressBlock", func() {
			// Slide the window: the live-buffer population breathes
			// with the compression ratio of the current block.
			for i := 0; i < window/8; i++ {
				winPool.tick(rng)
			}
		})
	}
	phase(p, "gzip.shutdown", func() {
		ds.FreeBinaryTree(p, "gzip.huffman", huffman)
		win.freeAll()
	})
}

// craftyWL models crafty: a chess engine whose heap is one large
// transposition table of small leaf entries plus a bounded
// killer-move history list. "Leaves" is stable and very high (paper:
// 85.3-97.1%).
type craftyWL struct{ base }

func (w *craftyWL) Run(p *prog.Process, in Input, _ int) {
	rng := p.Rand()
	slots := in.Scale
	var tt *ptrTable
	var ttPool *churnPool
	var killers *ds.DList
	phase(p, "crafty.startup", func() {
		tt = newPtrTable(p, "crafty.ttable", slots)
		ttPool = newChurnPool(tt, 3)
		// History depth depends on the opening book in use — an
		// input property — which spreads the leaf fraction across
		// inputs.
		killers = ds.NewDList(p, "crafty.killers")
		for i := 0; i < slots/(5+in.knob(10, 10)); i++ {
			killers.PushBack(uint64(i))
		}
	})
	moves := 90
	for m := 0; m < moves; m++ {
		phase(p, "crafty.search", func() {
			// Probe/replace transposition entries; table occupancy
			// breathes with search depth.
			for i := 0; i < slots/10; i++ {
				if rng.Intn(3) == 0 {
					ttPool.tick(rng)
				} else if e := tt.get(rng.Intn(slots)); e != 0 {
					p.Load(e) // probe hit
				}
			}
			// Rotate the killer history: add the newest, retire the
			// oldest, keeping the population constant.
			killers.PushFront(uint64(m))
			killers.Remove(killers.Tail())
		})
	}
	phase(p, "crafty.shutdown", func() {
		killers.FreeAll()
		tt.freeAll()
	})
}

// mcfWL models mcf: network-simplex flow. Nearly every object is
// linked into the network (vertex table -> vertices -> arc lists), so
// vertices with indegree zero are rare — "Roots" is stable near zero
// (paper: 0-5.4%). The per-input count of unreferenced pivot
// temporaries sets where in that band a run sits; pivots rewire
// existing arcs rather than growing the network.
type mcfWL struct{ base }

func (w *mcfWL) Run(p *prog.Process, in Input, _ int) {
	rng := p.Rand()
	n := in.Scale
	temps := 2 + 5*in.knob(3, 5) // per-class count of pivot temporaries
	var net *ds.AdjGraph
	roots := make([]uint64, 0, temps)
	phase(p, "mcf.startup", func() {
		net = ds.NewAdjGraph(p, "mcf.net", n)
		net.Populate(3)
		// The pivot scratch population is allocated up front and
		// replaced (never grown) during the run, so the Roots
		// metric is constant from the first sample.
		for i := 0; i < temps; i++ {
			roots = append(roots, p.AllocWords(4))
		}
	})
	iters := 110
	for it := 0; it < iters; it++ {
		phase(p, "mcf.pivot", func() {
			// Replace the oldest scratch object within this entry
			// so the count is constant at every sample point.
			if temps > 0 {
				p.Free(roots[0])
				roots = append(roots[1:], p.AllocWords(4))
			}
			net.Rewire(rng.Intn(n))
			net.Rewire(rng.Intn(n))
		})
	}
	phase(p, "mcf.shutdown", func() {
		for _, r := range roots {
			p.Free(r)
		}
		net.FreeAll()
	})
}

// vprWL models vpr: FPGA place-and-route. The heap mixes routing
// chains (interior nodes have outdegree exactly 1) with pad/block
// leaf objects; the chain-to-pad ratio is strongly input-dependent,
// giving "Outdeg=1" a wide but per-run-stable band (paper: 3.7-36.8%).
type vprWL struct{ base }

func (w *vprWL) Run(p *prog.Process, in Input, _ int) {
	rng := p.Rand()
	cChains := in.Scale
	chainLenBase := 2 + in.knob(4, 2) // 2..3 per class
	padFactor := 1 + in.knob(5, 4)    // 1..4 per class
	var heads, pads *ptrTable
	phase(p, "vpr.startup", func() {
		heads = newPtrTable(p, "vpr.routes", cChains)
		fillChains(heads, chainLenBase)
		pads = newPtrTable(p, "vpr.pads", cChains*padFactor)
		pads.fill(2)
	})
	iters := 80
	for it := 0; it < iters; it++ {
		phase(p, "vpr.reroute", func() {
			for k := 0; k < cChains/12; k++ {
				rebuildChain(heads, rng.Intn(cChains), chainLenBase)
			}
			pads.replace(rng.Intn(pads.len()), 2)
		})
	}
	phase(p, "vpr.shutdown", func() {
		for i := 0; i < cChains; i++ {
			freeChain(p, "vpr.route", heads.get(i))
			heads.set(i, 0)
		}
		heads.freeAll()
		pads.freeAll()
	})
}

// vortexWL models vortex: an object-oriented database. Most stored
// objects are referenced exactly once from the store index; an
// input-dependent fraction gains a second reference through relation
// objects, setting where "Indeg=1" sits in its band (paper:
// 37.8-69.5%).
type vortexWL struct{ base }

func (w *vortexWL) Run(p *prog.Process, in Input, _ int) {
	rng := p.Rand()
	n := in.Scale
	relFrac := 25 + 5*in.knob(6, 6) // 25..50 percent, per class
	rels := n * relFrac / 100
	var store, relTab *ptrTable
	phase(p, "vortex.startup", func() {
		store = newPtrTable(p, "vortex.store", n)
		store.fillSized(func(int) int { return 3 + rng.Intn(5) })
		relTab = newPtrTable(p, "vortex.rels", rels)
		for i := 0; i < rels; i++ {
			rel := p.AllocWords(2)
			p.StoreField(rel, 0, store.get(rng.Intn(n)))
			p.StoreField(rel, 1, store.get(rng.Intn(n)))
			relTab.set(i, rel)
		}
	})
	txns := 200
	for t := 0; t < txns; t++ {
		phase(p, "vortex.txn", func() {
			// Update object payloads in place.
			for k := 0; k < 6; k++ {
				if o := store.get(rng.Intn(n)); o != 0 {
					p.StoreField(o, 0, uint64(t))
				}
			}
			// Rewrite a relation endpoint.
			if rels > 0 {
				rel := relTab.get(rng.Intn(rels))
				p.StoreField(rel, rng.Intn(2), store.get(rng.Intn(n)))
			}
			// Object churn: replace a stored object. Relations
			// pointing at the old object dangle briefly until
			// rewritten — vortex tolerated stale references the
			// same way.
			store.replace(rng.Intn(n), 3+rng.Intn(5))
		})
	}
	phase(p, "vortex.shutdown", func() {
		relTab.freeAll()
		store.freeAll()
	})
}

// parserWL models parser: a dictionary of chained hash entries, each
// pointing at a definition blob. The tail entry of every occupied
// bucket chain has indegree = outdegree = 1, and a steady pool of
// isolated scratch objects sits at indegree = outdegree = 0, keeping
// "In=Out" in a narrow stable band (paper: 14.2-17.7%).
type parserWL struct{ base }

func (w *parserWL) Run(p *prog.Process, in Input, _ int) {
	rng := p.Rand()
	words := in.Scale
	var dict *ds.HashTable
	scratch := make([]uint64, 0, 32)
	phase(p, "parser.startup", func() {
		dict = ds.NewHashTable(p, "parser.dict", words/4)
		for k := 0; k < words; k++ {
			def := p.AllocWords(3)
			dict.Put(uint64(k), def)
		}
		for i := 0; i < 30; i++ {
			scratch = append(scratch, p.AllocWords(2))
		}
	})
	sentences := 220
	for s := 0; s < sentences; s++ {
		phase(p, "parser.sentence", func() {
			// Dictionary lookups.
			for k := 0; k < 8; k++ {
				dict.Get(uint64(rng.Intn(words)))
			}
			// Refresh one definition: free the old blob, bind a new
			// one, within this entry.
			key := uint64(rng.Intn(words))
			if old, ok := dict.Get(key); ok && old != 0 {
				p.Free(old)
			}
			dict.Put(key, p.AllocWords(3))
			// Rotate the isolated scratch pool.
			p.Free(scratch[0])
			scratch = append(scratch[1:], p.AllocWords(2))
		})
	}
	phase(p, "parser.shutdown", func() {
		for _, o := range scratch {
			p.Free(o)
		}
		for k := 0; k < words; k++ {
			if def, ok := dict.Get(uint64(k)); ok && def != 0 {
				p.Free(def)
			}
		}
		dict.FreeAll()
	})
}

// gccWL models gcc: per-function IR built from basic-block chains and
// expression trees, with strongly input-dependent function sizes. The
// chain population keeps "Outdeg=1" stable per input but spread wide
// across inputs (paper: 8.7-37.1%). The IR grows through the run, but
// proportionally (constant mix), so the percentages hold.
type gccWL struct{ base }

func (w *gccWL) Run(p *prog.Process, in Input, _ int) {
	rng := p.Rand()
	fns := in.Scale
	meanChain := 2 + in.knob(7, 6) // 2..7 per class
	var symtab *ds.HashTable
	var irTab, exprTab *ptrTable
	phase(p, "gcc.startup", func() {
		symtab = ds.NewHashTable(p, "gcc.symtab", 64)
		irTab = newPtrTable(p, "gcc.ir", fns)
		exprTab = newPtrTable(p, "gcc.exprs", fns/4+1)
	})
	for f := 0; f < fns; f++ {
		phase(p, "gcc.compileFunction", func() {
			// Basic-block chain for this function; the whole
			// translation unit's IR stays live until shutdown.
			rebuildChain(irTab, f, 1+rng.Intn(2*meanChain))
			symtab.Put(uint64(f), uint64(f*3))
			// Every 4th function keeps a constant-folded expression
			// tree in the IR as well.
			if f%4 == 0 {
				slot := f / 4
				if old := exprTab.get(slot); old != 0 {
					ds.FreeBinaryTree(p, "gcc.expr", old)
				}
				exprTab.set(slot, ds.FullBinaryTree(p, "gcc.expr", 2))
			}
		})
	}
	phase(p, "gcc.shutdown", func() {
		for i := 0; i < fns; i++ {
			if h := irTab.get(i); h != 0 {
				freeChain(p, "gcc.bb", h)
				irTab.set(i, 0)
			}
		}
		for i := 0; i < exprTab.len(); i++ {
			if t := exprTab.get(i); t != 0 {
				ds.FreeBinaryTree(p, "gcc.expr", t)
				exprTab.set(i, 0)
			}
		}
		irTab.freeAll()
		exprTab.freeAll()
		symtab.FreeAll()
	})
}

// twolfWL models twolf: standard-cell placement. Cell objects point
// at exactly two net objects (outdegree 2); nets and pad blobs are
// leaves. The cell fraction of the heap pins "Outdeg=2" (paper:
// 26.4-32.3%).
type twolfWL struct{ base }

func (w *twolfWL) Run(p *prog.Process, in Input, _ int) {
	rng := p.Rand()
	cells := in.Scale
	nets := cells * 3 / 2
	padsN := cells*2/3 + cells/8*in.knob(8, 5)
	var cellTab, netTab, padTab *ptrTable
	var padPool *churnPool
	phase(p, "twolf.startup", func() {
		netTab = newPtrTable(p, "twolf.nets", nets)
		netTab.fill(2)
		cellTab = newPtrTable(p, "twolf.cells", cells)
		for i := 0; i < cells; i++ {
			c := p.AllocWords(3)
			p.StoreField(c, 0, netTab.get(rng.Intn(nets)))
			p.StoreField(c, 1, netTab.get(rng.Intn(nets)))
			p.StoreField(c, 2, uint64(i)) // placement coordinate
			cellTab.set(i, c)
		}
		padTab = newPtrTable(p, "twolf.pads", padsN)
		padPool = newChurnPool(padTab, 2)
	})
	sweeps := 75
	for s := 0; s < sweeps; s++ {
		padPool.tick(rng)
		padPool.tick(rng)
		for k := 0; k < cells/12; k++ {
			// Each swap is its own function entry, as the real
			// annealer's per-move helpers are.
			phase(p, "twolf.trySwap", func() {
				c := cellTab.get(rng.Intn(cells))
				p.StoreField(c, rng.Intn(2), netTab.get(rng.Intn(nets)))
				p.StoreField(c, 2, uint64(s))
			})
		}
	}
	phase(p, "twolf.shutdown", func() {
		cellTab.freeAll()
		netTab.freeAll()
		padTab.freeAll()
	})
}
