// Package workloads implements the 13 benchmark programs of the
// paper's evaluation as synthetic heap workloads: 8 SPEC-2000-like
// programs (twolf, crafty, mcf, vpr, vortex, gzip, parser, gcc) and 5
// commercial-like applications (multimedia, interactive web-app, PC
// game/simulation, PC game/action, productivity).
//
// The real benchmarks are unavailable (the commercial ones were
// Microsoft-internal; the SPEC ones are licensed), so each workload
// here is a heap-behaviour stand-in: it reproduces the *data-structure
// mix*, the *phase structure* and the *input sensitivity* that give
// each paper benchmark its Figure 7 signature — e.g. gzip's heap is
// dominated by leaf buffer objects, so "Leaves" is its stable metric;
// mcf's network is almost fully linked, so "Roots" sits near zero;
// twolf's cells point at exactly two nets, making "Outdeg=2" stable.
// What matters for reproduction is that (a) every workload has at
// least one globally stable metric, (b) the *identity* of that metric
// matches the paper's Figure 7, and (c) the paper's injected faults
// push the right metric out of its calibrated band.
//
// Every workload is deterministic in (input seed, scale, version):
// reruns are bit-identical, which the trace-replay tests rely on.
package workloads

import (
	"fmt"
	"sort"

	"heapmd/internal/prog"
)

// Class distinguishes SPEC-like from commercial-like benchmarks.
type Class int

const (
	// SPEC marks the 8 SPEC-2000-like workloads.
	SPEC Class = iota
	// Commercial marks the 5 commercial-application-like workloads,
	// which additionally support 5 development versions.
	Commercial
)

func (c Class) String() string {
	if c == Commercial {
		return "commercial"
	}
	return "spec"
}

// Input identifies one run's input: a name for reports, a seed for
// the deterministic RNG and a scale steering the amount of work.
type Input struct {
	Name  string
	Seed  int64
	Scale int
	// Class is the input's size/shape class (0..3). Regression
	// inputs cluster into a few classes (small/medium/large/xl
	// documents, maps, game levels); all shape-determining workload
	// parameters derive from the class, so a modest training set
	// provably covers the input space — the property behind the
	// paper's zero false-positive rate on held-out inputs.
	Class int
}

// knob derives a small per-class parameter: a hash of (class, salt)
// reduced to [0, n). Distinct salts give independent knobs. Keying
// knobs to the class (rather than the raw seed) keeps the number of
// distinct heap shapes small enough that training covers them all.
func (in Input) knob(salt uint64, n int) int {
	return knobHash(uint64(in.Class)*0x9E3779B9+salt*0x85EBCA6B, n)
}

// Workload is one benchmark program.
type Workload interface {
	// Name returns the benchmark's identifier (e.g. "gzip").
	Name() string
	// Class reports SPEC or Commercial.
	Class() Class
	// StableMetric returns the name of the metric the paper's
	// Figure 7 reports as this benchmark's example stable metric.
	StableMetric() string
	// Description says what real program the workload models and
	// what dominates its heap.
	Description() string
	// Inputs generates n distinct inputs, seeded deterministically.
	Inputs(n int) []Input
	// Run executes the workload inside the given process. version
	// selects the development version (1..5) for commercial
	// workloads and is ignored by SPEC ones. Run panics through
	// prog on simulator misuse; callers use prog.Run.
	Run(p *prog.Process, in Input, version int)
}

// Versions is the number of development versions each commercial
// workload supports (paper Section 3, Figure 7(B)).
const Versions = 5

// registry of all workloads, populated by init functions in the
// per-benchmark files.
var registry = map[string]Workload{}

func register(w Workload) {
	if _, dup := registry[w.Name()]; dup {
		panic("workloads: duplicate registration of " + w.Name())
	}
	registry[w.Name()] = w
}

// Get returns the named workload.
func Get(name string) (Workload, error) {
	w, ok := registry[name]
	if !ok {
		return nil, fmt.Errorf("workloads: unknown workload %q", name)
	}
	return w, nil
}

// Names returns all workload names, sorted, SPEC first then
// commercial (matching the paper's Figure 7 ordering).
func Names() []string {
	var spec, com []string
	for n, w := range registry {
		if w.Class() == SPEC {
			spec = append(spec, n)
		} else {
			com = append(com, n)
		}
	}
	sort.Strings(spec)
	sort.Strings(com)
	return append(spec, com...)
}

// All returns every workload in Names order.
func All() []Workload {
	names := Names()
	out := make([]Workload, len(names))
	for i, n := range names {
		out[i] = registry[n]
	}
	return out
}

// Commercials returns the five commercial workloads in Names order.
func Commercials() []Workload {
	var out []Workload
	for _, w := range All() {
		if w.Class() == Commercial {
			out = append(out, w)
		}
	}
	return out
}

// inputs is the shared input generator: deterministic seeds derived
// from the workload name, scales jittered around base.
func inputs(name string, n, base, spread int) []Input {
	out := make([]Input, n)
	h := int64(0)
	for _, c := range name {
		h = h*131 + int64(c)
	}
	for i := range out {
		seed := h*1_000_003 + int64(i)*7919
		// Deterministic per-input scale jitter, quantized to four
		// levels. Discrete input classes mirror how real regression
		// inputs cluster (small/medium/large/xl documents, maps,
		// game levels); they also mean a modest training set covers
		// the input space, which is what gives the paper its zero
		// false-positive rate on held-out inputs.
		// Classes cycle round-robin: regression suites are curated
		// to cover their size classes, so any four consecutive
		// inputs span all of them and a small training set provably
		// covers the input space.
		class := i % 4
		scale := base
		if spread > 0 {
			scale += class * (spread / 4)
		}
		out[i] = Input{
			Name:  fmt.Sprintf("%s-in%03d", name, i),
			Seed:  seed,
			Scale: scale,
			Class: class,
		}
	}
	return out
}

// knobHash is a splitmix64-style mix reduced to [0, n).
func knobHash(x uint64, n int) int {
	x ^= x >> 30
	x *= 0xBF58476D1CE4E5B9
	x ^= x >> 27
	x *= 0x94D049BB133111EB
	x ^= x >> 31
	return int(x % uint64(n))
}

// base embeds common Workload plumbing.
type base struct {
	name   string
	class  Class
	stable string
	scale  int    // base scale
	spread int    // input scale jitter
	desc   string // what the workload models
}

func (b base) Name() string         { return b.name }
func (b base) Description() string  { return b.desc }
func (b base) Class() Class         { return b.class }
func (b base) StableMetric() string { return b.stable }
func (b base) Inputs(n int) []Input { return inputs(b.name, n, b.scale, b.spread) }

// versionFactor maps a commercial version (1..5) to a mild work
// multiplier: later development versions do somewhat more work in
// some phases without changing the structural mix — the property
// behind Figure 7(B)'s finding that stable metrics and their ranges
// persist across versions.
func versionFactor(version int) float64 {
	if version < 1 {
		version = 1
	}
	if version > Versions {
		version = Versions
	}
	return 1 + 0.05*float64(version-1)
}

// phase wraps a named program phase: it enters fn, runs body, leaves.
func phase(p *prog.Process, name string, body func()) {
	defer p.Enter(name)()
	body()
}
