package workloads

import (
	"bytes"
	"encoding/json"
	"reflect"
	"testing"

	"heapmd/internal/detect"
	"heapmd/internal/faults"
	"heapmd/internal/heapgraph"
	"heapmd/internal/logger"
	"heapmd/internal/metrics"
	"heapmd/internal/model"
)

// runWithConnectivity executes one logged run with the extended suite
// under the given connectivity mode.
func runWithConnectivity(t *testing.T, w Workload, in Input, mode heapgraph.ConnectivityMode, plan *faults.Plan) *logger.Report {
	t.Helper()
	rep, _, err := RunLogged(w, in, RunConfig{
		Plan: plan,
		Logger: logger.Options{
			Suite:        metrics.ExtendedSuite(),
			Connectivity: mode,
		},
	})
	if err != nil {
		t.Fatalf("%s/%s: %v", w.Name(), mode, err)
	}
	return rep
}

// TestConnectivityModesByteIdenticalReports is the PR's differential
// acceptance test: every workload, run with the extended suite under
// snapshot, incremental and verify connectivity, must produce
// byte-identical reports. Verify mode additionally panics mid-run on
// any divergence, so this doubles as an oracle sweep over all 13
// workloads' allocation patterns.
func TestConnectivityModesByteIdenticalReports(t *testing.T) {
	for _, w := range All() {
		w := w
		t.Run(w.Name(), func(t *testing.T) {
			t.Parallel()
			in := w.Inputs(1)[0]
			base := runWithConnectivity(t, w, in, heapgraph.ConnectivitySnapshot, nil)
			baseJSON, err := json.Marshal(base)
			if err != nil {
				t.Fatal(err)
			}
			for _, mode := range []heapgraph.ConnectivityMode{
				heapgraph.ConnectivityIncremental,
				heapgraph.ConnectivityVerify,
			} {
				rep := runWithConnectivity(t, w, in, mode, nil)
				repJSON, err := json.Marshal(rep)
				if err != nil {
					t.Fatal(err)
				}
				if !bytes.Equal(baseJSON, repJSON) {
					t.Fatalf("%s report differs from snapshot mode:\nsnapshot:    %s\n%-11s: %s",
						mode, baseJSON, mode, repJSON)
				}
			}
		})
	}
}

// TestConnectivityModesIdenticalFindings closes the loop through the
// detector: a model trained on snapshot-mode reports must yield
// identical findings when checking faulty runs executed under each
// connectivity mode.
func TestConnectivityModesIdenticalFindings(t *testing.T) {
	w, _ := Get("webapp")
	cfg := RunConfig{Logger: logger.Options{Suite: metrics.ExtendedSuite()}}
	training, err := Train(w, 4, cfg)
	if err != nil {
		t.Fatal(err)
	}
	built, err := model.Build(training, model.Thresholds{})
	if err != nil {
		t.Fatal(err)
	}

	in := w.Inputs(2)[1]
	plan := func() *faults.Plan { return faults.NewPlan().EnableAlways(faults.TypoLeak) }
	base := runWithConnectivity(t, w, in, heapgraph.ConnectivitySnapshot, plan())
	baseFindings := detect.CheckReport(built.Model, base, detect.Options{})
	for _, mode := range []heapgraph.ConnectivityMode{
		heapgraph.ConnectivityIncremental,
		heapgraph.ConnectivityVerify,
	} {
		rep := runWithConnectivity(t, w, in, mode, plan())
		findings := detect.CheckReport(built.Model, rep, detect.Options{})
		if !reflect.DeepEqual(baseFindings, findings) {
			t.Fatalf("%s findings differ from snapshot mode:\nsnapshot: %v\n%s: %v",
				mode, baseFindings, mode, findings)
		}
	}
}

// runWithModes is runWithConnectivity with both component-metric modes
// under control.
func runWithModes(t *testing.T, w Workload, in Input, conn, scc heapgraph.ConnectivityMode, plan *faults.Plan) *logger.Report {
	t.Helper()
	rep, _, err := RunLogged(w, in, RunConfig{
		Plan: plan,
		Logger: logger.Options{
			Suite:        metrics.ExtendedSuite(),
			Connectivity: conn,
			SCC:          scc,
		},
	})
	if err != nil {
		t.Fatalf("%s/conn=%s,scc=%s: %v", w.Name(), conn, scc, err)
	}
	return rep
}

// TestSCCModesByteIdenticalReports is the strong-connectivity
// differential acceptance sweep: every workload, run with the extended
// suite under snapshot, fully-incremental (both trackers) and
// fully-verify modes, must produce byte-identical reports. The verify
// legs panic mid-run on any divergence of either tracker, so this is
// an oracle sweep of both incremental paths over all 13 workloads'
// allocation patterns.
func TestSCCModesByteIdenticalReports(t *testing.T) {
	for _, w := range All() {
		w := w
		t.Run(w.Name(), func(t *testing.T) {
			t.Parallel()
			in := w.Inputs(1)[0]
			base := runWithModes(t, w, in, heapgraph.ConnectivitySnapshot, heapgraph.ConnectivitySnapshot, nil)
			baseJSON, err := json.Marshal(base)
			if err != nil {
				t.Fatal(err)
			}
			for _, mode := range []heapgraph.ConnectivityMode{
				heapgraph.ConnectivityIncremental,
				heapgraph.ConnectivityVerify,
			} {
				rep := runWithModes(t, w, in, mode, mode, nil)
				repJSON, err := json.Marshal(rep)
				if err != nil {
					t.Fatal(err)
				}
				if !bytes.Equal(baseJSON, repJSON) {
					t.Fatalf("conn+scc %s report differs from snapshot mode:\nsnapshot:    %s\n%-11s: %s",
						mode, baseJSON, mode, repJSON)
				}
			}
			// SCC incremental alone (Components still snapshot) must
			// also be invisible in the report.
			rep := runWithModes(t, w, in, heapgraph.ConnectivitySnapshot, heapgraph.ConnectivityIncremental, nil)
			repJSON, err := json.Marshal(rep)
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(baseJSON, repJSON) {
				t.Fatalf("scc-only incremental report differs from snapshot mode:\nsnapshot: %s\ngot:      %s",
					baseJSON, repJSON)
			}
		})
	}
}

// TestSCCModesIdenticalFindings closes the loop through the detector
// for the SCC tracker: a model trained on snapshot-mode reports must
// yield identical findings when checking faulty runs executed with the
// SCC metric incremental or verified.
func TestSCCModesIdenticalFindings(t *testing.T) {
	w, _ := Get("webapp")
	cfg := RunConfig{Logger: logger.Options{Suite: metrics.ExtendedSuite()}}
	training, err := Train(w, 4, cfg)
	if err != nil {
		t.Fatal(err)
	}
	built, err := model.Build(training, model.Thresholds{})
	if err != nil {
		t.Fatal(err)
	}

	in := w.Inputs(2)[1]
	plan := func() *faults.Plan { return faults.NewPlan().EnableAlways(faults.TypoLeak) }
	base := runWithModes(t, w, in, heapgraph.ConnectivitySnapshot, heapgraph.ConnectivitySnapshot, plan())
	baseFindings := detect.CheckReport(built.Model, base, detect.Options{})
	for _, mode := range []heapgraph.ConnectivityMode{
		heapgraph.ConnectivityIncremental,
		heapgraph.ConnectivityVerify,
	} {
		rep := runWithModes(t, w, in, heapgraph.ConnectivityIncremental, mode, plan())
		findings := detect.CheckReport(built.Model, rep, detect.Options{})
		if !reflect.DeepEqual(baseFindings, findings) {
			t.Fatalf("scc=%s findings differ from snapshot mode:\nsnapshot: %v\nscc=%s: %v",
				mode, baseFindings, mode, findings)
		}
	}
}
