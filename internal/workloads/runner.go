package workloads

import (
	"heapmd/internal/event"
	"heapmd/internal/faults"
	"heapmd/internal/logger"
	"heapmd/internal/prog"
	"heapmd/internal/sched"
)

// RunConfig bundles everything needed to execute one logged run.
type RunConfig struct {
	// Version selects the commercial development version (1..5);
	// SPEC workloads ignore it. Zero means version 1.
	Version int
	// Plan is the fault-injection plan; nil means fault-free.
	Plan *faults.Plan
	// Logger configures the execution logger. A zero Frequency
	// defaults to DefaultFrequency (see RunLogged).
	Logger logger.Options
	// Observers are attached to the logger before the run (e.g. an
	// online anomaly detector).
	Observers []logger.SampleObserver
	// ExtraSinks receive the raw event stream (e.g. a trace writer
	// or the SWAT baseline).
	ExtraSinks []event.Sink
	// Parallel is the worker count for Train's independent runs:
	// 0 or 1 runs serially, <0 uses GOMAXPROCS. Results are
	// bit-identical to serial regardless of the setting — each run is
	// seeded and isolated, and reports come back in input order.
	// Runs sharing Observers or ExtraSinks cannot be isolated, so
	// Train falls back to serial when either is set.
	Parallel int
	// Record, when set, is invoked once per run before it starts, with
	// the run's input and freshly created process; it subscribes
	// whatever per-run sinks it needs (typically a trace writer) and
	// returns a finish func called after the run completes. Unlike
	// ExtraSinks — shared objects that force Train serial — Record
	// builds private state per run, so recorded training remains
	// parallel-safe.
	Record func(in Input, p *prog.Process) (finish func() error, err error)
	// IngestWorkers >= 2 puts the speculative ingest stage (one
	// in-order mutator plus IngestWorkers-1 pre-resolvers, see
	// logger.Ingest) between each run's process and its logger; each
	// run owns a private stage, so parallel training stays isolated.
	// Reports are byte-identical at any setting; 0 or 1 keeps the
	// direct path.
	IngestWorkers int
}

// DefaultFrequency is the sampling frequency used by the experiment
// harnesses: the shared simulation-wide constant (see
// logger.SimulationFrequency for why it differs from the paper's
// every-100,000th-entry frq).
const DefaultFrequency = logger.SimulationFrequency

// RunLogged executes w on the given input under a fresh process and
// logger and returns the metric report. The returned process allows
// post-run heap inspection (leak counting, invariant checks).
func RunLogged(w Workload, in Input, cfg RunConfig) (*logger.Report, *prog.Process, error) {
	if cfg.Version == 0 {
		cfg.Version = 1
	}
	if cfg.Logger.Frequency == 0 {
		cfg.Logger.Frequency = DefaultFrequency
	}
	p := prog.NewProcess(prog.Options{Seed: in.Seed, Plan: cfg.Plan})
	l := logger.New(cfg.Logger)
	l.SetRun(w.Name(), in.Name, cfg.Version)
	for _, o := range cfg.Observers {
		l.Observe(o)
	}
	var ing *logger.Ingest
	if cfg.IngestWorkers >= 2 {
		ing = logger.NewIngest(l, logger.IngestOptions{Workers: cfg.IngestWorkers})
		p.Subscribe(ing)
	} else {
		p.Subscribe(l)
	}
	for _, s := range cfg.ExtraSinks {
		p.Subscribe(s)
	}
	var finish func() error
	if cfg.Record != nil {
		f, err := cfg.Record(in, p)
		if err != nil {
			if ing != nil {
				ing.Close()
			}
			return nil, nil, err
		}
		finish = f
	}
	err := prog.Run(func() { w.Run(p, in, cfg.Version) })
	if ing != nil {
		// Drain the ingest stage before Report finalizes the image.
		ing.Close()
	}
	if finish != nil {
		// A recorder flush failure only matters when the run itself was
		// clean; a crashed run's partial trace is salvageable by design.
		if ferr := finish(); err == nil {
			err = ferr
		}
	}
	return l.Report(), p, err
}

// Train runs w on n training inputs and returns their reports, in
// input order. With cfg.Parallel beyond 1 the runs execute on a
// bounded worker pool (see internal/sched); every run owns a fresh
// process and logger, so the reports — and on failure, the error — are
// bit-identical to a serial loop. Shared Observers or ExtraSinks would
// be mutated from multiple runs at once, so their presence forces the
// serial path.
func Train(w Workload, n int, cfg RunConfig) ([]*logger.Report, error) {
	inputs := w.Inputs(n)
	workers := cfg.Parallel
	if workers < 0 {
		workers = sched.Workers(0)
	}
	// cfg.Record stays parallel: it constructs fresh per-run state
	// inside each worker rather than sharing an object across runs.
	if workers == 0 || len(cfg.Observers) > 0 || len(cfg.ExtraSinks) > 0 {
		workers = 1
	}
	return sched.Map(workers, len(inputs), func(i int) (*logger.Report, error) {
		rep, _, err := RunLogged(w, inputs[i], cfg)
		return rep, err
	})
}
