package workloads

import (
	"heapmd/internal/event"
	"heapmd/internal/faults"
	"heapmd/internal/logger"
	"heapmd/internal/prog"
)

// RunConfig bundles everything needed to execute one logged run.
type RunConfig struct {
	// Version selects the commercial development version (1..5);
	// SPEC workloads ignore it. Zero means version 1.
	Version int
	// Plan is the fault-injection plan; nil means fault-free.
	Plan *faults.Plan
	// Logger configures the execution logger. A zero Frequency
	// defaults to DefaultFrequency (see RunLogged).
	Logger logger.Options
	// Observers are attached to the logger before the run (e.g. an
	// online anomaly detector).
	Observers []logger.SampleObserver
	// ExtraSinks receive the raw event stream (e.g. a trace writer
	// or the SWAT baseline).
	ExtraSinks []event.Sink
}

// DefaultFrequency is the sampling frequency used by the experiment
// harnesses: the shared simulation-wide constant (see
// logger.SimulationFrequency for why it differs from the paper's
// every-100,000th-entry frq).
const DefaultFrequency = logger.SimulationFrequency

// RunLogged executes w on the given input under a fresh process and
// logger and returns the metric report. The returned process allows
// post-run heap inspection (leak counting, invariant checks).
func RunLogged(w Workload, in Input, cfg RunConfig) (*logger.Report, *prog.Process, error) {
	if cfg.Version == 0 {
		cfg.Version = 1
	}
	if cfg.Logger.Frequency == 0 {
		cfg.Logger.Frequency = DefaultFrequency
	}
	p := prog.NewProcess(prog.Options{Seed: in.Seed, Plan: cfg.Plan})
	l := logger.New(cfg.Logger)
	l.SetRun(w.Name(), in.Name, cfg.Version)
	for _, o := range cfg.Observers {
		l.Observe(o)
	}
	p.Subscribe(l)
	for _, s := range cfg.ExtraSinks {
		p.Subscribe(s)
	}
	err := prog.Run(func() { w.Run(p, in, cfg.Version) })
	return l.Report(), p, err
}

// Train runs w on n training inputs and returns their reports.
func Train(w Workload, n int, cfg RunConfig) ([]*logger.Report, error) {
	var reports []*logger.Report
	for _, in := range w.Inputs(n) {
		rep, _, err := RunLogged(w, in, cfg)
		if err != nil {
			return nil, err
		}
		reports = append(reports, rep)
	}
	return reports, nil
}
