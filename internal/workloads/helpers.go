package workloads

import (
	"math/rand"

	"heapmd/internal/faults"
	"heapmd/internal/prog"
)

// ptrTable is a heap-allocated array of pointer slots — the ubiquitous
// "table of objects" idiom of real programs (transposition tables,
// buffer pools, session tables, object stores). Objects referenced
// from a table slot have indegree >= 1 without needing linking nodes,
// which is what lets table-heavy workloads keep very high percentages
// of leaf vertices.
type ptrTable struct {
	p    *prog.Process
	addr uint64
	n    int
	name string
}

func newPtrTable(p *prog.Process, name string, n int) *ptrTable {
	defer p.Enter(name + ".newTable")()
	return &ptrTable{p: p, addr: p.AllocWords(n), n: n, name: name}
}

func (t *ptrTable) len() int { return t.n }

func (t *ptrTable) get(i int) uint64 { return t.p.LoadField(t.addr, i) }

func (t *ptrTable) set(i int, v uint64) { t.p.StoreField(t.addr, i, v) }

// replace frees the object currently in slot i (if any) and stores a
// fresh allocation of the given word count, returning its address. It
// is a function entry (real programs wrap allocation in helpers), and
// the free/alloc/store triple happens with no intervening entries, so
// metric samples never observe the slot half-replaced.
func (t *ptrTable) replace(i, words int) uint64 {
	defer t.p.Enter(t.name + ".replace")()
	if old := t.get(i); old != 0 {
		// faults.LeakPlateau: the replace path forgets to release the
		// outgoing object. Budgeted with MaxTriggers, the leak grows
		// early in a run and then plateaus — the leak-then-stop shape
		// the soak harness must still detect.
		if !t.p.Hit(faults.LeakPlateau) {
			t.p.Free(old)
		}
	}
	obj := t.p.AllocWords(words)
	t.set(i, obj)
	return obj
}

// fill populates every slot with a fresh allocation of the given
// word count inside a single function entry. Startup code uses fill
// (rather than per-slot replace) so program initialization costs a
// handful of metric computation points instead of thousands — the
// simulated analogue of an initializer that builds its tables in one
// call.
func (t *ptrTable) fill(words int) {
	defer t.p.Enter(t.name + ".fill")()
	for i := 0; i < t.n; i++ {
		if old := t.get(i); old != 0 {
			t.p.Free(old)
		}
		t.set(i, t.p.AllocWords(words))
	}
}

// fillSized is fill with a per-slot size function.
func (t *ptrTable) fillSized(words func(i int) int) {
	defer t.p.Enter(t.name + ".fill")()
	for i := 0; i < t.n; i++ {
		if old := t.get(i); old != 0 {
			t.p.Free(old)
		}
		t.set(i, t.p.AllocWords(words(i)))
	}
}

// freeAll frees every referenced object and the table itself.
func (t *ptrTable) freeAll() {
	for i := 0; i < t.n; i++ {
		if o := t.get(i); o != 0 {
			t.p.Free(o)
			t.set(i, 0)
		}
	}
	t.p.Free(t.addr)
	t.addr = 0
}

// chain allocates a singly linked chain of length n (node layout
// [data, next]) and returns the head. Interior nodes have outdegree
// exactly 1 — chains are how netlist/IR-like workloads control their
// "Outdeg=1" populations.
func chain(p *prog.Process, name string, n int) uint64 {
	defer p.Enter(name + ".chain")()
	var head uint64
	for i := 0; i < n; i++ {
		node := p.AllocWords(2)
		p.StoreField(node, 0, uint64(i)) // scalar payload
		p.StoreField(node, 1, head)
		head = node
	}
	return head
}

// freeChain releases a chain built by chain.
func freeChain(p *prog.Process, name string, head uint64) {
	defer p.Enter(name + ".freeChain")()
	for head != 0 {
		next := p.LoadField(head, 1)
		p.Free(head)
		head = next
	}
}

// rebuildChain frees the chain in table slot i and installs a fresh
// one of length n within a single function entry, so samples never see
// the slot torn down but not yet rebuilt.
func rebuildChain(t *ptrTable, i, n int) {
	defer t.p.Enter(t.name + ".rebuild")()
	head := t.get(i)
	for head != 0 {
		next := t.p.LoadField(head, 1)
		t.p.Free(head)
		head = next
	}
	var newHead uint64
	for k := 0; k < n; k++ {
		node := t.p.AllocWords(2)
		t.p.StoreField(node, 0, uint64(k))
		t.p.StoreField(node, 1, newHead)
		newHead = node
	}
	t.set(i, newHead)
}

// fillChains installs a fresh chain of the given length in every slot
// of t within one function entry (bulk netlist/IR construction).
func fillChains(t *ptrTable, length int) {
	defer t.p.Enter(t.name + ".fillChains")()
	for i := 0; i < t.n; i++ {
		var head uint64
		for k := 0; k < length; k++ {
			node := t.p.AllocWords(2)
			t.p.StoreField(node, 0, uint64(k))
			t.p.StoreField(node, 1, head)
			head = node
		}
		t.set(i, head)
	}
}

// chainLen walks a chain, returning its length (issues Load traffic).
func chainLen(p *prog.Process, head uint64) int {
	n := 0
	for head != 0 {
		head = p.LoadField(head, 1)
		n++
	}
	return n
}

// propertyTable models the Figure 11 code: an array of descriptor
// slots, each holding the head of a property-description list. Its
// migrate operation copies a descriptor's list pointer to an output
// list and clears the slot; under faults.TypoLeak it reads the WRONG
// slot ("'j' should be used in place of 'i'"), so the cleared slot's
// list is leaked.
type propertyTable struct {
	p     *prog.Process
	table *ptrTable
	name  string
}

func newPropertyTable(p *prog.Process, name string, slots int) *propertyTable {
	return &propertyTable{p: p, table: newPtrTable(p, name, slots), name: name}
}

// fill populates slot j with a fresh property list of the given
// length (a chain).
func (pt *propertyTable) fill(j, listLen int) {
	defer pt.p.Enter(pt.name + ".fill")()
	if old := pt.table.get(j); old != 0 {
		freeChain(pt.p, pt.name, old)
	}
	pt.table.set(j, chain(pt.p, pt.name, listLen))
}

// migrate moves slot j's list into the collector table at slot dst.
// Under faults.TypoLeak the copy reads a stale index — slot 0, which
// callers keep permanently empty — while slot j is still cleared, so
// slot j's list becomes unreachable: the Figure 11 leak. (The paper's
// fragment uses 'i' where 'j' was meant; modelling the stale index as
// an always-NULL slot keeps the leak without aliasing ownership.)
func (pt *propertyTable) migrate(collector *ptrTable, dst, j int) {
	defer pt.p.Enter(pt.name + ".migrate")()
	lst := pt.table.get(j)
	if lst == 0 {
		return
	}
	if old := collector.get(dst); old != 0 {
		freeChain(pt.p, pt.name, old)
	}
	src := j
	if pt.p.Hit(faults.TypoLeak) {
		src = 0 // the typo: wrong index
	}
	collector.set(dst, pt.table.get(src))
	// "pTableDesc[j].pPropDesc = NULL" — clears j regardless, so
	// with the typo, slot j's list leaks.
	pt.table.set(j, 0)
}

// freeAll releases all remaining lists and the table.
func (pt *propertyTable) freeAll() {
	defer pt.p.Enter(pt.name + ".freeAll")()
	for i := 0; i < pt.table.len(); i++ {
		if h := pt.table.get(i); h != 0 {
			freeChain(pt.p, pt.name, h)
			pt.table.set(i, 0)
		}
	}
	pt.p.Free(pt.table.addr)
}

// clear frees the object in slot i (if any) and nulls the slot,
// within one function entry.
func (t *ptrTable) clear(i int) {
	defer t.p.Enter(t.name + ".clear")()
	if old := t.get(i); old != 0 {
		t.p.Free(old)
		t.set(i, 0)
	}
}

// churnPool drives a ptrTable's occupancy on a slow bounded random
// walk between lo and hi occupied slots. Real heaps breathe — the
// number of live buffers, sessions or particles drifts a few percent
// with load — and that breathing is what gives the paper's calibrated
// ranges their width: a metric can be globally stable (average change
// ~0, small deviation) while still spanning a usable [min, max] band.
// Without it, steady-state percentages degenerate to zero-width
// ranges and every novel input becomes a false positive.
type churnPool struct {
	t      *ptrTable
	words  int
	count  int // occupied slots (kept accurate by tick)
	target int
	lo, hi int
	// frag holds fragments stranded by the FragStorm fault: objects
	// from storm bursts whose release is deferred, so a standing
	// population of mixed-size, unreferenced allocations builds up
	// while the storm lasts.
	frag []uint64
}

// newChurnPool wraps a table whose slots 0..hi-1 participate; it
// fills to hi occupancy immediately (single entry via fill).
func newChurnPool(t *ptrTable, words int) *churnPool {
	cp := &churnPool{t: t, words: words, lo: t.len() * 7 / 10, hi: t.len()}
	t.fill(words)
	cp.count = t.len()
	cp.target = t.len()
	return cp
}

// stormBurst is the number of mixed-size allocations one FragStorm
// trigger performs; half are freed immediately (churning the
// allocator's size-class free lists), half are stranded in frag.
const stormBurst = 32

// stormKeep caps the stranded-fragment population: when it overflows,
// the oldest half is released — the storm keeps the allocator hot
// without turning into an unbounded leak.
const stormKeep = 384

// storm is the faults.FragStorm body: an alloc/free size-churn burst.
// The stranded fragments are isolated heap-graph vertices (no in- or
// out-edges), so a sustained storm inflates the Roots, Leaves and
// In=Out populations out of their calibrated bands while it lasts.
func (cp *churnPool) storm() {
	defer cp.t.p.Enter(cp.t.name + ".storm")()
	p := cp.t.p
	sizes := [...]int{1, 17, 2, 33, 3, 9}
	for k := 0; k < stormBurst; k++ {
		o := p.AllocWords(sizes[k%len(sizes)])
		if k%2 == 0 {
			p.Free(o)
			continue
		}
		cp.frag = append(cp.frag, o)
	}
	if len(cp.frag) > stormKeep {
		n := len(cp.frag) / 2
		for _, o := range cp.frag[:n] {
			p.Free(o)
		}
		cp.frag = append(cp.frag[:0], cp.frag[n:]...)
	}
}

// tick advances the random walk: the occupancy target drifts by at
// most one slot-step per call, and one slot is allocated, freed or
// replaced to chase it. Every mutation is a single function entry.
func (cp *churnPool) tick(rng *rand.Rand) {
	if cp.t.p.Hit(faults.FragStorm) {
		cp.storm()
	}
	step := cp.t.len() / 50
	if step < 1 {
		step = 1
	}
	cp.target += (rng.Intn(3) - 1) * step
	if cp.target < cp.lo {
		cp.target = cp.lo
	}
	if cp.target > cp.hi {
		cp.target = cp.hi
	}
	switch {
	case cp.count < cp.target:
		// Grow: fill an empty slot.
		for k := 0; k < 8; k++ {
			i := rng.Intn(cp.t.len())
			if cp.t.get(i) == 0 {
				cp.t.replace(i, cp.words)
				cp.count++
				return
			}
		}
	case cp.count > cp.target:
		// Shrink: clear an occupied slot.
		for k := 0; k < 8; k++ {
			i := rng.Intn(cp.t.len())
			if cp.t.get(i) != 0 {
				cp.t.clear(i)
				cp.count--
				return
			}
		}
	default:
		// Steady: replace an occupied slot (turnover without
		// occupancy change).
		for k := 0; k < 8; k++ {
			i := rng.Intn(cp.t.len())
			if cp.t.get(i) != 0 {
				cp.t.replace(i, cp.words)
				return
			}
		}
	}
}

// scratchRoots allocates a per-input-constant population of
// unreferenced scratch objects (parse buffers, staging areas — data
// referenced only from the stack, which the heap-graph counts as
// roots). The count is constant within a run but input-dependent, so
// the "Roots" metric calibrates to a band wide enough that a leak of
// a couple of objects stays disguised while a systemic leak still
// crosses it.
func scratchRoots(p *prog.Process, name string, in Input) []uint64 {
	defer p.Enter(name + ".scratch")()
	n := 4 + 5*in.knob(2, 5) // 4..24, one level per input class
	out := make([]uint64, n)
	for i := range out {
		out[i] = p.AllocWords(3)
	}
	return out
}

// freeScratch releases a scratchRoots population.
func freeScratch(p *prog.Process, name string, objs []uint64) {
	defer p.Enter(name + ".freeScratch")()
	for _, o := range objs {
		p.Free(o)
	}
}

// leakObjects allocates n unreferenced objects and abandons them: the
// primitive behind the SmallLeak (well-disguised) negative experiment.
func leakObjects(p *prog.Process, name string, n, words int) {
	defer p.Enter(name + ".leak")()
	for i := 0; i < n; i++ {
		p.AllocWords(words)
	}
}

// burstPool models transient operation-scoped scratch buffers
// (request assembly areas, decode staging) and carries the
// faults.AllocCascade site. Healthy code allocates a couple of
// buffers per operation and frees them before returning — the heap
// image at sample points never sees them. Under the fault, each
// opportunity instead allocates a large burst whose release is
// deferred several operations, so bursts overlap: standing allocator
// pressure from unreferenced mixed-size objects, plus event spikes
// that stress the monitoring pipeline.
type burstPool struct {
	p       *prog.Process
	name    string
	pending [][]uint64
}

// cascadeBurst is the allocations per AllocCascade trigger;
// cascadeHold is how many operations a burst is retained before
// release, so cascadeHold bursts overlap at steady state.
const (
	cascadeBurst = 128
	cascadeHold  = 3
)

func newBurstPool(p *prog.Process, name string) *burstPool {
	return &burstPool{p: p, name: name}
}

// tick is called once per operation (request, frame, edit).
func (b *burstPool) tick() {
	defer b.p.Enter(b.name + ".scratch")()
	for len(b.pending) >= cascadeHold {
		for _, o := range b.pending[0] {
			b.p.Free(o)
		}
		b.pending = b.pending[1:]
	}
	if b.p.Hit(faults.AllocCascade) {
		objs := make([]uint64, cascadeBurst)
		for i := range objs {
			objs[i] = b.p.AllocWords(2 + i%7)
		}
		b.pending = append(b.pending, objs)
		return
	}
	// Healthy path: short-lived scratch, allocated and released
	// within the same entry, invisible at sample boundaries.
	a := b.p.AllocWords(3)
	c := b.p.AllocWords(5)
	b.p.Free(a)
	b.p.Free(c)
}

// drain releases every still-pending burst (shutdown).
func (b *burstPool) drain() {
	defer b.p.Enter(b.name + ".drain")()
	for _, batch := range b.pending {
		for _, o := range batch {
			b.p.Free(o)
		}
	}
	b.pending = nil
}
