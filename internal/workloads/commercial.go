package workloads

import (
	"heapmd/internal/ds"
	"heapmd/internal/faults"
	"heapmd/internal/prog"
)

// The five commercial-application-like workloads. Unlike the SPEC
// models these support 5 development versions (Figure 7(B)) and
// contain the fault sites for the paper's bug study (Tables 1 and 2):
// every workload exercises a property-table migration (the Figure 11
// typo site), shared circular-list maintenance (the Figure 12 site),
// back-pointer-carrying structures (the Figure 1 / Figure 10 sites),
// and the indirect-bug structures of Figure 9; plus the negative-
// control leak sites (SmallLeak, ReachableLeak).

func init() {
	register(&multimediaWL{base{name: "multimedia", class: Commercial, stable: "In=Out", scale: 260, spread: 120, desc: "media player: frame pools + per-stream ring buffers"}})
	register(&webappWL{base{name: "webapp", class: Commercial, stable: "Indeg=1", scale: 240, spread: 120, desc: "interactive web app: session tables, request queues"}})
	register(&gameSimWL{base{name: "game_sim", class: Commercial, stable: "Outdeg=1", scale: 220, spread: 110, desc: "simulation game: entity chains per region + components"}})
	register(&gameActionWL{base{name: "game_action", class: Commercial, stable: "Indeg=1", scale: 200, spread: 100, desc: "action game: scene BST with parent pointers + particle pools"}})
	register(&productivityWL{base{name: "productivity", class: Commercial, stable: "Leaves", scale: 220, spread: 110, desc: "productivity suite: B-tree index, paragraph dlist, text blobs"}})
}

// slowDriftCap bounds the faults.SlowDrift creep: the total drifted
// population stays an order of magnitude below every calibrated band
// width — the sub-±1% drift of the paper's stability threshold that
// HeapMD must NOT report.
const slowDriftCap = 3

// negativeLeaks executes the negative-control leak sites shared by
// all commercial workloads: a tiny unreachable leak (well disguised —
// HeapMD must not fire), a slow sub-threshold drift (well disguised —
// a trickle of tiny objects capped at slowDriftCap so the metrics
// creep by well under the stability threshold), and a reachable
// "cache that is never pruned" leak (invisible to HeapMD, stale for
// SWAT). The reachable leak parks objects in spare slots of a
// preallocated cache table: each trigger adds one leaf object and
// nothing else, so the heap-graph barely notices, while SWAT sees a
// growing pile of never-accessed objects at one allocation site.
func negativeLeaks(p *prog.Process, name string, cache *ptrTable, next, drift *int) {
	if p.Hit(faults.SmallLeak) {
		leakObjects(p, name, 1, 4)
	}
	if p.Hit(faults.SlowDrift) && *drift < slowDriftCap {
		leakObjects(p, name, 1, 2)
		*drift++
	}
	if p.Hit(faults.ReachableLeak) && *next < cache.len() {
		defer p.Enter(name + ".cacheStore")()
		cache.set(*next, p.AllocWords(6))
		*next++
	}
}

// multimediaWL models a media player: a large frame-buffer pool, a
// set of per-stream ring buffers whose interior nodes have
// indegree = outdegree = 1, and a playlist. The ring interiors pin
// "In=Out" in a low narrow band (paper: 6.7-9.7%). Ring retire and
// refill are phase-shifted across streams so a dangling tail left by
// the SharedFree fault persists long enough to shift "Indeg=2".
type multimediaWL struct{ base }

func (w *multimediaWL) Run(p *prog.Process, in Input, version int) {
	rng := p.Rand()
	frames := in.Scale * 3
	const streams = 24
	ringLen := 5 + in.Scale/80
	var framePool *ptrTable
	var frameChurn *churnPool
	rings := make([]*ds.CircularList, streams)
	var playlist *ds.DList
	var props *propertyTable
	var collector *ptrTable
	var codec *ds.HashTable
	var cache *ptrTable
	cacheNext := 0
	driftN := 0
	var scratch []uint64
	phase(p, "mm.startup", func() {
		framePool = newPtrTable(p, "mm.frames", frames)
		frameChurn = newChurnPool(framePool, 6)
		for s := range rings {
			rings[s] = ds.NewCircularList(p, "mm.ring")
			for i := 0; i < ringLen; i++ {
				rings[s].Append(uint64(i))
			}
		}
		playlist = ds.NewDList(p, "mm.playlist")
		for i := 0; i < 14; i++ {
			playlist.PushBack(uint64(i))
		}
		props = newPropertyTable(p, "mm.props", 24)
		for j := 1; j < 24; j++ { // slot 0 stays empty (see migrate)
			props.fill(j, 3)
		}
		collector = newPtrTable(p, "mm.collected", 24)
		codec = ds.NewHashTable(p, "mm.codec", 96)
		for k := 0; k < 256; k++ {
			codec.Put(uint64(k), uint64(k*3))
		}
		cache = newPtrTable(p, "mm.cachetab", 64)
		scratch = scratchRoots(p, "mm", in)
	})
	ticks := int(float64(110) * versionFactor(version))
	for t := 0; t < ticks; t++ {
		phase(p, "mm.decodeFrame", func() {
			for k := 0; k < frames/35; k++ {
				frameChurn.tick(rng)
			}
			// Stream buffer management — the Figure 12 shared-free
			// site. Each tick drains one node from the current
			// stream's ring; the ring is only refilled once it runs
			// low, so a dangling tail left by a faulty PopFront
			// persists for a couple of drain cycles before an
			// append overwrites it.
			r := rings[t%streams]
			r.PopFront()
			if r.Len() < ringLen-2 {
				for r.Len() < ringLen {
					r.Append(uint64(t))
				}
			}
			codec.Get(uint64(rng.Intn(300)))
			// Playlist edits — the Figure 1 dlist site.
			if t%5 == 2 {
				playlist.InsertAfter(playlist.Head(), uint64(t))
				if playlist.Len() > 18 {
					playlist.Remove(playlist.Tail())
				}
			}
			// Metadata migration — the Figure 11 typo site.
			if t%5 == 2 {
				j := 1 + rng.Intn(23)
				props.fill(j, 3)
				props.migrate(collector, rng.Intn(24), j)
			}
			negativeLeaks(p, "mm", cache, &cacheNext, &driftN)
		})
	}
	phase(p, "mm.shutdown", func() {
		freeScratch(p, "mm", scratch)
		codec.FreeAll()
		framePool.freeAll()
		for _, r := range rings {
			r.FreeAll()
		}
		playlist.FreeAll()
		props.freeAll()
		for i := 0; i < collector.len(); i++ {
			if h := collector.get(i); h != 0 {
				freeChain(p, "mm", h)
				collector.set(i, 0)
			}
		}
		collector.freeAll()
	})
}

// webappWL models an interactive web application: a session table
// whose objects are singly referenced, with roughly half also held in
// an LRU index (indegree 2), plus routing tables and request queues.
// The singly-referenced majority pins "Indeg=1" (paper: 43.5-55.1%).
type webappWL struct{ base }

func (w *webappWL) Run(p *prog.Process, in Input, version int) {
	rng := p.Rand()
	sessions := in.Scale * 2
	lruN := sessions * (3 + in.knob(12, 3)) / 10 // 30-50% hot
	var sessTab, lru, respTab *ptrTable
	var respChurn *churnPool
	var queue, notices *ds.DList
	var routes *ds.HashTable
	var props *propertyTable
	var collector *ptrTable
	var cache *ptrTable
	var assemble *burstPool
	cacheNext := 0
	driftN := 0
	var scratch []uint64
	phase(p, "web.startup", func() {
		sessTab = newPtrTable(p, "web.sessions", sessions)
		sessTab.fill(5)
		// Hot sessions carry a second reference from the LRU index.
		lru = newPtrTable(p, "web.lru", lruN)
		for i := 0; i < lruN; i++ {
			lru.set(i, sessTab.get(i*2))
		}
		queue = ds.NewDList(p, "web.queue")
		notices = ds.NewDList(p, "web.notices")
		vals := make([]uint64, 40)
		for i := range vals {
			vals[i] = uint64(i)
		}
		notices.PushBackMany(vals)
		routes = ds.NewHashTable(p, "web.routes", 32)
		for r := 0; r < 48; r++ {
			routes.Put(uint64(r), uint64(r))
		}
		props = newPropertyTable(p, "web.props", 12)
		for j := 1; j < 12; j++ { // slot 0 stays empty (see migrate)
			props.fill(j, 3)
		}
		collector = newPtrTable(p, "web.collected", 12)
		respTab = newPtrTable(p, "web.responses", in.Scale)
		respChurn = newChurnPool(respTab, 4)
		assemble = newBurstPool(p, "web.assemble")
		cache = newPtrTable(p, "web.cachetab", 64)
		scratch = scratchRoots(p, "web", in)
	})
	requests := int(float64(80) * versionFactor(version))
	for r := 0; r < requests; r++ {
		phase(p, "web.handleRequest", func() {
			// Session churn: replace one session and refresh its
			// LRU slot in the same entry.
			i := rng.Intn(lruN)
			obj := sessTab.replace(i*2, 5)
			lru.set(i, obj)
			sessTab.replace(1+2*rng.Intn(sessions/2-1), 5)
			// Request queue: enqueue, process, dequeue.
			queue.PushBack(uint64(r))
			if queue.Len() > 8 {
				queue.Remove(queue.Head())
			}
			routes.Get(uint64(rng.Intn(64)))
			// Notification feed edits — dlist invariant site with a
			// persistent population.
			notices.InsertAfter(notices.Head(), uint64(r))
			if notices.Len() > 44 {
				notices.Remove(notices.Tail())
			}
			respChurn.tick(rng)
			respChurn.tick(rng)
			// Response assembly scratch — the AllocCascade site.
			assemble.tick()
			if r%8 == 5 {
				j := 1 + rng.Intn(11)
				props.fill(j, 3)
				dst := rng.Intn(12)
				props.migrate(collector, dst, j)
				// Responses are assembled and released immediately,
				// so the collector never accumulates.
				if h := collector.get(dst); h != 0 {
					freeChain(p, "web.props", h)
					collector.set(dst, 0)
				}
			}
			negativeLeaks(p, "web", cache, &cacheNext, &driftN)
		})
	}
	phase(p, "web.shutdown", func() {
		freeScratch(p, "web", scratch)
		assemble.drain()
		respTab.freeAll()
		notices.FreeAll()
		sessTab.freeAll()
		lru.p.Free(lru.addr) // LRU holds second references only
		queue.FreeAll()
		routes.FreeAll()
		props.freeAll()
		for i := 0; i < collector.len(); i++ {
			if h := collector.get(i); h != 0 {
				freeChain(p, "web", h)
				collector.set(i, 0)
			}
		}
		collector.freeAll()
	})
}

// gameSimWL models a simulation game: entity chains per region plus
// leaf component blobs. Chain interiors keep "Outdeg=1" stable
// (paper: 17.9-28.8%).
type gameSimWL struct{ base }

func (w *gameSimWL) Run(p *prog.Process, in Input, version int) {
	rng := p.Rand()
	regions := in.Scale / 10
	entPerRegion := 6 + 2*in.knob(11, 3) // 6, 8 or 10 per class
	var regionTab, compTab *ptrTable
	var compChurn *churnPool
	jobs := make([]*ds.CircularList, 16)
	var nav *ds.AdjGraph
	var blueprints *ds.DList
	var props *propertyTable
	var collector *ptrTable
	var cache *ptrTable
	cacheNext := 0
	driftN := 0
	var scratch []uint64
	phase(p, "sim.startup", func() {
		regionTab = newPtrTable(p, "sim.regions", regions)
		for i := 0; i < regions; i++ {
			rebuildChain(regionTab, i, entPerRegion)
		}
		compTab = newPtrTable(p, "sim.components", in.Scale*2)
		compChurn = newChurnPool(compTab, 4)
		for j := range jobs {
			jobs[j] = ds.NewCircularList(p, "sim.jobs")
			for i := 0; i < 6; i++ {
				jobs[j].Append(uint64(i))
			}
		}
		nav = ds.NewAdjGraph(p, "sim.nav", in.Scale/8)
		nav.Populate(2)
		blueprints = ds.NewDList(p, "sim.blueprints")
		for i := 0; i < 16; i++ {
			blueprints.PushBack(uint64(i))
		}
		props = newPropertyTable(p, "sim.props", 12)
		for j := 1; j < 12; j++ {
			props.fill(j, 3)
		}
		collector = newPtrTable(p, "sim.collected", 12)
		cache = newPtrTable(p, "sim.cachetab", 64)
		scratch = scratchRoots(p, "sim", in)
	})
	ticks := int(float64(110) * versionFactor(version))
	for t := 0; t < ticks; t++ {
		phase(p, "sim.tick", func() {
			// Respawn one region's entity chain atomically.
			rebuildChain(regionTab, rng.Intn(regions), entPerRegion)
			// Component updates; population breathes with entity
			// activity.
			for k := 0; k < compTab.len()/40; k++ {
				compChurn.tick(rng)
			}
			// Job queue drain/refill — shared-free site. Queues
			// drain before being refilled, so a dangling tail from
			// a faulty PopFront lives for much of a drain cycle.
			jq := jobs[t%len(jobs)]
			jq.PopFront()
			if jq.Len() < 4 {
				for jq.Len() < 6 {
					jq.Append(uint64(t))
				}
			}
			// Blueprint edits — dlist invariant site.
			if t%4 == 1 {
				blueprints.InsertAfter(blueprints.Head(), uint64(t))
				if blueprints.Len() > 20 {
					blueprints.Remove(blueprints.Tail())
				}
			}
			// Path queries over the nav graph.
			nav.Rewire(rng.Intn(nav.N()))
			// Save-state migration — typo site.
			if t%4 == 1 {
				j := 1 + rng.Intn(11)
				props.fill(j, 3)
				props.migrate(collector, rng.Intn(12), j)
			}
			negativeLeaks(p, "sim", cache, &cacheNext, &driftN)
		})
	}
	phase(p, "sim.shutdown", func() {
		freeScratch(p, "sim", scratch)
		for i := 0; i < regions; i++ {
			freeChain(p, "sim.entities", regionTab.get(i))
			regionTab.set(i, 0)
		}
		regionTab.freeAll()
		compTab.freeAll()
		for _, jq := range jobs {
			jq.FreeAll()
		}
		nav.FreeAll()
		blueprints.FreeAll()
		props.freeAll()
		for i := 0; i < collector.len(); i++ {
			if h := collector.get(i); h != 0 {
				freeChain(p, "sim", h)
				collector.set(i, 0)
			}
		}
		collector.freeAll()
	})
}

// gameActionWL models an action game: a scene graph kept as a BST
// with parent back-pointers (the Figure 10 fault site) plus a
// particle pool whose objects carry two references each (pool table +
// active-set table). Only BST leaves and scratch sit at indegree 1,
// so "Indeg=1" is stable and low (paper: 13.2-18.5%); the
// TreeNoParent fault pushes it up and out of band over time.
type gameActionWL struct{ base }

func (w *gameActionWL) Run(p *prog.Process, in Input, version int) {
	rng := p.Rand()
	particles := in.Scale * 2
	sceneN := in.Scale * (8 + in.knob(13, 5)) / 10 // 80-120% of scale
	var scene *ds.BST
	var pool, activeTab, fxTab *ptrTable
	var fxChurn *churnPool
	var octree *ds.OctTree
	var bvh uint64
	replays := make([]*ds.CircularList, 6)
	var props *propertyTable
	var collector *ptrTable
	var cache *ptrTable
	cacheNext := 0
	driftN := 0
	var scratch []uint64
	sceneKeys := make([]uint64, 0, 512)
	phase(p, "act.startup", func() {
		scene = ds.NewBST(p, "act.scene")
		for i := 0; i < sceneN; i++ {
			sceneKeys = append(sceneKeys, uint64(rng.Intn(1<<20)))
		}
		scene.InsertMany(sceneKeys)
		pool = newPtrTable(p, "act.particles", particles)
		activeTab = newPtrTable(p, "act.active", particles)
		for i := 0; i < particles; i++ {
			obj := p.AllocWords(4)
			pool.set(i, obj)
			activeTab.set(i, obj) // second reference
		}
		// Spatial index: the oct-tree (OctDAG fault site) is built
		// during startup — which is why the paper's oct-DAG bug is
		// "poorly disguised": it pins the metric from startup on.
		octree = ds.BuildOctTree(p, "act.octree", 2)
		fxTab = newPtrTable(p, "act.effects", in.Scale/2)
		fxChurn = newChurnPool(fxTab, 4)
		// Bounding-volume hierarchy — the SingleChild indirect site.
		bvh = ds.FullBinaryTree(p, "act.bvh", 4)
		for j := range replays {
			replays[j] = ds.NewCircularList(p, "act.replay")
			for i := 0; i < 6; i++ {
				replays[j].Append(uint64(i))
			}
		}
		props = newPropertyTable(p, "act.assets", 10)
		for j := 1; j < 10; j++ {
			props.fill(j, 3)
		}
		collector = newPtrTable(p, "act.collected", 10)
		cache = newPtrTable(p, "act.cachetab", 64)
		scratch = scratchRoots(p, "act", in)
	})
	framesN := int(float64(220) * versionFactor(version))
	for f := 0; f < framesN; f++ {
		phase(p, "act.frame", func() {
			// Scene graph edits — the TreeNoParent site. Inserts
			// and deletes alternate, holding the node count steady
			// on healthy runs.
			k := uint64(rng.Intn(1 << 20))
			scene.Insert(k)
			sceneKeys = append(sceneKeys, k)
			i := rng.Intn(len(sceneKeys))
			if scene.Delete(sceneKeys[i]) {
				sceneKeys = append(sceneKeys[:i], sceneKeys[i+1:]...)
			}
			// Particle updates.
			for k := 0; k < particles/40; k++ {
				if o := pool.get(rng.Intn(particles)); o != 0 {
					p.StoreField(o, 1, uint64(f))
				}
			}
			// Particle lifecycle: expire one, respawn into free
			// slots. The Figure 12 shared-state site: a faulty
			// expiry frees the particle but forgets the active-set
			// entry, and the respawner — which trusts the active
			// set — then never reuses the slot, so the damage is
			// systemic.
			phase(p, "act.expireParticle", func() {
				i := rng.Intn(particles)
				if o := pool.get(i); o != 0 {
					p.Free(o)
					pool.set(i, 0)
					if !p.Hit(faults.SharedFree) {
						activeTab.set(i, 0)
					}
				}
				for k := 0; k < 2; k++ {
					j := rng.Intn(particles)
					if pool.get(j) == 0 && activeTab.get(j) == 0 {
						obj := p.AllocWords(4)
						pool.set(j, obj)
						activeTab.set(j, obj)
						break
					}
				}
			})
			fxChurn.tick(rng)
			fxChurn.tick(rng)
			// Replay buffer drain/refill — shared-free site.
			rp := replays[f%len(replays)]
			rp.PopFront()
			if rp.Len() < 4 {
				for rp.Len() < 6 {
					rp.Append(uint64(f))
				}
			}
			// Asset metadata migration — typo site.
			if f%9 == 4 {
				j := 1 + rng.Intn(9)
				props.fill(j, 3)
				props.migrate(collector, rng.Intn(10), j)
			}
			negativeLeaks(p, "act", cache, &cacheNext, &driftN)
		})
	}
	phase(p, "act.shutdown", func() {
		freeScratch(p, "act", scratch)
		ds.FreeBinaryTree(p, "act.bvh", bvh)
		for _, rp := range replays {
			rp.FreeAll()
		}
		props.freeAll()
		for i := 0; i < collector.len(); i++ {
			if h := collector.get(i); h != 0 {
				freeChain(p, "act", h)
				collector.set(i, 0)
			}
		}
		collector.freeAll()
		fxTab.freeAll()
		octree.FreeAll()
		p.Free(activeTab.addr) // second references only
		pool.freeAll()
		scene.FreeAll()
	})
}

// productivityWL models a productivity suite: a B-tree document
// index, paragraph records in a doubly linked list, and text buffers.
// B-tree leaf nodes plus text blobs hold "Leaves" in a mid band
// (paper: 27.9-41.1%).
type productivityWL struct{ base }

func (w *productivityWL) Run(p *prog.Process, in Input, version int) {
	rng := p.Rand()
	paras := in.Scale
	var index *ds.BTree
	var doc *ds.DList
	var textTab *ptrTable
	var textChurn *churnPool
	var undo *ds.List
	var styles *ds.HashTable
	var cache *ptrTable
	cacheNext := 0
	driftN := 0
	var scratch []uint64
	phase(p, "prod.startup", func() {
		index = ds.NewBTree(p, "prod.index")
		textTab = newPtrTable(p, "prod.text", paras/2)
		textChurn = newChurnPool(textTab, 10)
		doc = ds.NewDList(p, "prod.doc")
		vals := make([]uint64, paras)
		for i := range vals {
			vals[i] = uint64(i)
		}
		doc.PushBackMany(vals)
		index.InsertMany(vals)
		undo = ds.NewList(p, "prod.undo")
		for i := 0; i < 20; i++ {
			undo.PushFront(uint64(i))
		}
		styles = ds.NewHashTable(p, "prod.styles", 16)
		for k := 0; k < 30; k++ {
			styles.Put(uint64(k), uint64(k))
		}
		cache = newPtrTable(p, "prod.cachetab", 64)
		scratch = scratchRoots(p, "prod", in)
	})
	edits := int(float64(80) * versionFactor(version))
	for e := 0; e < edits; e++ {
		phase(p, "prod.edit", func() {
			// Rewrite paragraph text; the buffer population breathes
			// with document edits.
			textChurn.tick(rng)
			textChurn.tick(rng)
			// Structural edit — dlist fault site; inserts and
			// removals alternate so the document stays its size.
			doc.InsertAfter(doc.Head(), uint64(1000+e))
			doc.Remove(doc.Tail())
			// Undo stack rotation at constant depth.
			undo.PushFront(uint64(e))
			undo.PopFront()
			styles.Get(uint64(rng.Intn(32)))
			negativeLeaks(p, "prod", cache, &cacheNext, &driftN)
		})
	}
	phase(p, "prod.shutdown", func() {
		freeScratch(p, "prod", scratch)
		styles.FreeAll()
		undo.FreeAll()
		doc.FreeAll()
		textTab.freeAll()
		index.FreeAll()
	})
}
