package model

import (
	"bytes"
	"math"
	"testing"

	"heapmd/internal/logger"
	"heapmd/internal/metrics"
	"heapmd/internal/stats"
)

// mkReport builds a raw report with the given per-metric series. All
// series must have equal length.
func mkReport(input string, names []string, series ...[]float64) *logger.Report {
	rep := &logger.Report{Program: "prog", Input: input, Suite: names}
	n := len(series[0])
	for i := 0; i < n; i++ {
		snap := metrics.Snapshot{Tick: uint64(i + 1), Values: make([]float64, len(series))}
		for j := range series {
			snap.Values[j] = series[j][i]
		}
		rep.Snapshots = append(rep.Snapshots, snap)
	}
	return rep
}

// flat returns a constant series of length n with small jitter-free
// value v.
func flat(v float64, n int) []float64 {
	out := make([]float64, n)
	for i := range out {
		out[i] = v
	}
	return out
}

// ramp returns a steadily growing series.
func ramp(start, step float64, n int) []float64 {
	out := make([]float64, n)
	for i := range out {
		out[i] = start + step*float64(i)
	}
	return out
}

// phased returns a two-phase series: value a for the first half, b
// for the second.
func phased(a, b float64, n int) []float64 {
	out := make([]float64, n)
	for i := range out {
		if i < n/2 {
			out[i] = a
		} else {
			out[i] = b
		}
	}
	return out
}

var testNames = []string{metrics.Roots.String(), metrics.Leaves.String()}

func TestBuildNoReports(t *testing.T) {
	if _, err := Build(nil, Defaults()); err != ErrNoReports {
		t.Fatalf("err = %v, want ErrNoReports", err)
	}
}

func TestGloballyStableFlatMetric(t *testing.T) {
	reports := []*logger.Report{
		mkReport("in1", testNames, flat(10, 100), ramp(5, 1, 100)),
		mkReport("in2", testNames, flat(12, 100), ramp(5, 1, 100)),
		mkReport("in3", testNames, flat(11, 100), ramp(5, 1, 100)),
	}
	res, err := Build(reports, Defaults())
	if err != nil {
		t.Fatal(err)
	}
	roots := res.Report(metrics.Roots)
	if roots == nil || roots.Class != GloballyStable {
		t.Fatalf("Roots class = %+v, want globally stable", roots)
	}
	if roots.StableInputs != 3 {
		t.Errorf("StableInputs = %d, want 3", roots.StableInputs)
	}
	if roots.Range.Min != 10 || roots.Range.Max != 12 {
		t.Errorf("Range = %+v, want [10,12]", roots.Range)
	}
	leaves := res.Report(metrics.Leaves)
	if leaves.Class == GloballyStable {
		t.Error("steadily growing metric classified globally stable")
	}
	// Model contains only the stable metric.
	if _, ok := res.Model.RangeOf(metrics.Roots); !ok {
		t.Error("model missing Roots")
	}
	if _, ok := res.Model.RangeOf(metrics.Leaves); ok {
		t.Error("model contains unstable Leaves")
	}
	if res.StableCount() != 1 {
		t.Errorf("StableCount = %d, want 1", res.StableCount())
	}
}

func TestLocallyStableClassification(t *testing.T) {
	// One 80% step between two long flat phases: average change is
	// tiny (single spike averaged over many samples) but the
	// deviation blows past the threshold.
	series := phased(10, 18, 200)
	reports := []*logger.Report{
		mkReport("in1", testNames, series, flat(1, 200)),
		mkReport("in2", testNames, series, flat(1, 200)),
	}
	res, err := Build(reports, Defaults())
	if err != nil {
		t.Fatal(err)
	}
	got := res.Report(metrics.Roots)
	if got.Class != LocallyStable {
		t.Fatalf("phase-shift metric class = %v, want locally-stable", got.Class)
	}
	if _, ok := res.Model.RangeOf(metrics.Roots); ok {
		t.Error("locally stable metric must not enter the model")
	}
}

func TestFortyPercentRule(t *testing.T) {
	mk := func(stableCount, total int) []*logger.Report {
		var reps []*logger.Report
		for i := 0; i < total; i++ {
			var s []float64
			if i < stableCount {
				s = flat(20, 100)
			} else {
				s = ramp(1, 2, 100) // wildly unstable
			}
			reps = append(reps, mkReport("in"+string(rune('a'+i)), testNames, s, flat(1, 100)))
		}
		return reps
	}
	// 2 of 5 = 40%: exactly at threshold -> stable.
	res, err := Build(mk(2, 5), Defaults())
	if err != nil {
		t.Fatal(err)
	}
	if res.Report(metrics.Roots).Class != GloballyStable {
		t.Error("metric stable on exactly 40% of inputs should be globally stable")
	}
	// 1 of 5 = 20%: below threshold.
	res, err = Build(mk(1, 5), Defaults())
	if err != nil {
		t.Fatal(err)
	}
	if res.Report(metrics.Roots).Class == GloballyStable {
		t.Error("metric stable on 20% of inputs must not be globally stable")
	}
}

func TestRangeComesFromStableInputsOnly(t *testing.T) {
	reports := []*logger.Report{
		mkReport("s1", testNames, flat(10, 100), flat(1, 100)),
		mkReport("s2", testNames, flat(15, 100), flat(1, 100)),
		// Unstable input ranging far beyond: must not widen range.
		mkReport("u1", testNames, ramp(0, 5, 100), flat(1, 100)),
	}
	res, err := Build(reports, Defaults())
	if err != nil {
		t.Fatal(err)
	}
	got := res.Report(metrics.Roots)
	if got.Class != GloballyStable {
		t.Fatalf("class = %v", got.Class)
	}
	if got.Range.Min != 10 || got.Range.Max != 15 {
		t.Errorf("Range = %+v, want [10,15]", got.Range)
	}
	// The unstable input left the calibrated range: suspect.
	if len(got.SuspectInputs) != 1 || got.SuspectInputs[0] != "u1" {
		t.Errorf("SuspectInputs = %v, want [u1]", got.SuspectInputs)
	}
}

func TestUnstableInputWithinRangeNotSuspect(t *testing.T) {
	// An input can be non-stable (oscillating) yet remain within the
	// calibrated range: permitted, not suspect (paper Section 2.2).
	osc := make([]float64, 100)
	for i := range osc {
		if i%2 == 0 {
			osc[i] = 10
		} else {
			osc[i] = 14 // 40% swings: stddev >> 5
		}
	}
	reports := []*logger.Report{
		mkReport("s1", testNames, flat(10, 100), flat(1, 100)),
		mkReport("s2", testNames, flat(15, 100), flat(1, 100)),
		mkReport("osc", testNames, osc, flat(1, 100)),
	}
	res, err := Build(reports, Defaults())
	if err != nil {
		t.Fatal(err)
	}
	got := res.Report(metrics.Roots)
	if got.Class != GloballyStable {
		t.Fatalf("class = %v", got.Class)
	}
	if len(got.SuspectInputs) != 0 {
		t.Errorf("SuspectInputs = %v, want none", got.SuspectInputs)
	}
}

func TestTrimmingShieldsStartupNoise(t *testing.T) {
	// Wild startup and shutdown samples around a flat middle: with
	// 10% trimming the metric is stable.
	series := make([]float64, 100)
	for i := range series {
		switch {
		case i < 8:
			series[i] = float64(90 - 10*i) // startup churn
		case i >= 92:
			series[i] = float64(10 * (i - 91)) // shutdown churn
		default:
			series[i] = 25
		}
	}
	reports := []*logger.Report{
		mkReport("in1", testNames, series, flat(1, 100)),
	}
	res, err := Build(reports, Defaults())
	if err != nil {
		t.Fatal(err)
	}
	got := res.Report(metrics.Roots)
	if got.Class != GloballyStable {
		t.Fatalf("class with trimming = %v, want globally stable", got.Class)
	}
	if got.Range.Min != 25 || got.Range.Max != 25 {
		t.Errorf("Range = %+v, want [25,25]", got.Range)
	}
}

func TestMinSamplesSkip(t *testing.T) {
	reports := []*logger.Report{
		mkReport("tiny", testNames, flat(10, 2), flat(1, 2)),
	}
	res, err := Build(reports, Defaults())
	if err != nil {
		t.Fatal(err)
	}
	got := res.Report(metrics.Roots)
	if !got.Inputs[0].Skipped {
		t.Error("2-sample input should be skipped")
	}
	if got.Class == GloballyStable {
		t.Error("no classified inputs must not produce a stable metric")
	}
}

func TestMismatchedSuites(t *testing.T) {
	a := mkReport("a", testNames, flat(1, 10), flat(1, 10))
	b := mkReport("b", []string{"Roots", "Outdeg=1"}, flat(1, 10), flat(1, 10))
	if _, err := Build([]*logger.Report{a, b}, Defaults()); err == nil {
		t.Fatal("mismatched suites must be rejected")
	}
}

func TestZeroThresholdsUseDefaults(t *testing.T) {
	reports := []*logger.Report{mkReport("a", testNames, flat(3, 50), flat(1, 50))}
	res, err := Build(reports, Thresholds{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Model.Thresholds.MaxAvgChange != 1.0 || res.Model.Thresholds.MaxStdDev != 5.0 {
		t.Errorf("thresholds = %+v, want defaults", res.Model.Thresholds)
	}
}

func TestModelSaveLoadRoundTrip(t *testing.T) {
	reports := []*logger.Report{
		mkReport("in1", testNames, flat(10, 100), flat(7, 100)),
		mkReport("in2", testNames, flat(12, 100), flat(9, 100)),
	}
	res, err := Build(reports, Defaults())
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := res.Model.Save(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if loaded.Program != "prog" || loaded.TrainingInputs != 2 {
		t.Errorf("loaded header = %+v", loaded)
	}
	r1, ok1 := res.Model.RangeOf(metrics.Roots)
	r2, ok2 := loaded.RangeOf(metrics.Roots)
	if ok1 != ok2 || math.Abs(r1.Min-r2.Min) > 1e-12 || math.Abs(r1.Max-r2.Max) > 1e-12 {
		t.Errorf("range round-trip mismatch: %+v vs %+v", r1, r2)
	}
	ids := loaded.StableIDs()
	if len(ids) != 2 {
		t.Errorf("StableIDs = %v, want both metrics", ids)
	}
}

func TestLoadGarbage(t *testing.T) {
	if _, err := Load(bytes.NewBufferString("{nope")); err == nil {
		t.Fatal("Load of garbage should fail")
	}
}

func TestClassString(t *testing.T) {
	if GloballyStable.String() != "globally-stable" ||
		LocallyStable.String() != "locally-stable" ||
		Unstable.String() != "unstable" {
		t.Error("Class.String mismatch")
	}
}

func BenchmarkBuild(b *testing.B) {
	var reports []*logger.Report
	for i := 0; i < 50; i++ {
		reports = append(reports, mkReport("in", testNames, flat(10+float64(i%5), 1000), ramp(1, 0.5, 1000)))
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Build(reports, Defaults()); err != nil {
			b.Fatal(err)
		}
	}
}

func TestLocallyStableExtensionOptIn(t *testing.T) {
	// A two-phase metric: flat at 10, then flat at 18 — locally
	// stable. With the extension enabled its cross-phase envelope
	// enters the model; without it, it does not.
	series := phased(10, 18, 200)
	reports := []*logger.Report{
		mkReport("in1", testNames, series, flat(1, 200)),
		mkReport("in2", testNames, series, flat(1, 200)),
	}

	// Paper behaviour: no envelope.
	res, err := Build(reports, Defaults())
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := res.Model.LocalRangeOf(metrics.Roots); ok {
		t.Fatal("locally stable envelope present without opt-in")
	}

	// Extension enabled.
	th := Defaults()
	th.IncludeLocallyStable = true
	res, err = Build(reports, th)
	if err != nil {
		t.Fatal(err)
	}
	if res.Report(metrics.Roots).Class != LocallyStable {
		t.Fatalf("class = %v", res.Report(metrics.Roots).Class)
	}
	env, ok := res.Model.LocalRangeOf(metrics.Roots)
	if !ok {
		t.Fatal("envelope missing with opt-in")
	}
	// Envelope spans both phase levels (plus the guard band).
	if env.Min > 10 || env.Max < 18 {
		t.Errorf("envelope = %+v, must cover [10,18]", env)
	}
	ids := res.Model.LocallyStableIDs()
	if len(ids) != 1 || ids[0] != metrics.Roots {
		t.Errorf("LocallyStableIDs = %v", ids)
	}
}

func TestLocallyStableEnvelopeNotForGloballyStable(t *testing.T) {
	th := Defaults()
	th.IncludeLocallyStable = true
	reports := []*logger.Report{
		mkReport("in1", testNames, flat(10, 100), flat(1, 100)),
	}
	res, err := Build(reports, th)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := res.Model.LocalRangeOf(metrics.Roots); ok {
		t.Error("globally stable metric must not get a local envelope")
	}
	if _, ok := res.Model.RangeOf(metrics.Roots); !ok {
		t.Error("globally stable range missing")
	}
}

// TestSkipStartSamplesMatchesTrim is the regression test for the
// summarizer/detector trim divergence: the online detector's
// startup-skip window must equal the number of leading samples the
// summarizer's stats.Trim discards, for every run length and TrimFrac
// — including the short runs and out-of-range fractions where the old
// int(TrimFrac*TrainingSamples) formula disagreed with Trim's
// clamping.
func TestSkipStartSamplesMatchesTrim(t *testing.T) {
	lengths := []int{0, 1, 2, 3, 4, 5, 7, 9, 10, 11, 19, 20, 21, 100, 997}
	fracs := []float64{-0.2, 0, 0.05, 0.10, 0.25, 0.4999, 0.5, 0.9}
	for _, n := range lengths {
		for _, frac := range fracs {
			m := &Model{TrainingSamples: n}
			m.Thresholds.TrimFrac = frac
			skip := m.SkipStartSamples()
			lo, _ := stats.TrimBounds(n, frac)
			if skip != lo {
				t.Errorf("n=%d frac=%v: SkipStartSamples=%d, summarizer trims %d", n, frac, skip, lo)
			}
			// The skip window must never swallow the whole run the
			// summarizer calibrated on.
			if n >= 1 && 2*skip >= n {
				t.Errorf("n=%d frac=%v: skip=%d leaves no samples", n, frac, skip)
			}
		}
	}

	// The specific divergence the fix closes: a short run with a
	// half-range fraction. The old formula skipped 5 of 10 samples;
	// Trim keeps indices [4, 6), so the detector must skip 4.
	m := &Model{TrainingSamples: 10}
	m.Thresholds.TrimFrac = 0.5
	if got := m.SkipStartSamples(); got != 4 {
		t.Errorf("n=10 frac=0.5: SkipStartSamples = %d, want 4", got)
	}
}
