// Package model implements HeapMD's metric summarizer and the heap
// behaviour model it produces (paper Sections 2.1 and 3).
//
// The summarizer consolidates raw metric reports from runs of the
// program on a training input set. For each metric it computes, per
// input, the fluctuation series (percentage change between consecutive
// metric computation points, after trimming startup and shutdown
// samples) and classifies the metric on that input as stable when the
// average change is within ±MaxAvgChange percent and the standard
// deviation of change is below MaxStdDev (paper defaults: ±1% and 5).
// A metric is *globally stable* when it is stable on at least
// MinStableFraction of the training inputs (paper: 40%). The model
// records, for each globally stable metric, the [min, max] range it
// attained on the stable training runs; the anomaly detector treats
// leaving that range as a bug signal.
//
// Training inputs on which a globally stable metric was not stable are
// still required to stay inside the calibrated range; if one does not,
// the summarizer flags that input as suspect — "this training input is
// treated as buggy" in the paper's words (Section 4.1).
package model

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"sort"

	"heapmd/internal/logger"
	"heapmd/internal/metrics"
	"heapmd/internal/stats"
)

// Thresholds are the stability thresholds of the summarizer.
type Thresholds struct {
	// MaxAvgChange is the largest absolute average inter-sample
	// change (in percent) a stable metric may have. Paper: 1.0.
	MaxAvgChange float64 `json:"max_avg_change"`
	// MaxStdDev is the largest standard deviation of inter-sample
	// change a stable metric may have. Paper: 5.0.
	MaxStdDev float64 `json:"max_std_dev"`
	// TrimFrac is the fraction of samples discarded at each end of a
	// run as startup/shutdown noise. Paper: 0.10.
	TrimFrac float64 `json:"trim_frac"`
	// MinStableFraction is the fraction of training inputs on which
	// a metric must be stable to be globally stable. Paper: 0.40.
	MinStableFraction float64 `json:"min_stable_fraction"`
	// MinSamples is the minimum number of post-trim samples a run
	// must contribute to participate in classification; shorter runs
	// are skipped (too little evidence either way).
	MinSamples int `json:"min_samples"`
	// GuardFrac widens each calibrated range by this fraction of its
	// width on both sides before it enters the model. The paper uses
	// the raw observed min/max; a small guard band compensates for
	// training sets that undersample the extremes of a metric's
	// natural excursion (real bugs move metrics far past any guard).
	// Set to 0 for strict paper behaviour.
	GuardFrac float64 `json:"guard_frac"`
	// IncludeLocallyStable additionally calibrates ranges for
	// locally stable metrics — the extension the paper names as
	// future work ("we plan to extend the implementation of HeapMD
	// to also include locally stable metrics in the model", Section
	// 2.1). A locally stable metric jumps between program phases but
	// holds steady within each; its calibrated range is the envelope
	// of every phase seen in training, so it is a weaker detector
	// than a globally stable metric, but it can catch bugs whose
	// effect exceeds all normal phase levels. Off by default (paper
	// behaviour).
	IncludeLocallyStable bool `json:"include_locally_stable,omitempty"`
}

// Defaults returns the paper's thresholds.
func Defaults() Thresholds {
	return Thresholds{
		MaxAvgChange:      1.0,
		MaxStdDev:         5.0,
		TrimFrac:          0.10,
		MinStableFraction: 0.40,
		MinSamples:        3,
		GuardFrac:         0.15,
	}
}

// Class is the stability classification of one metric across the
// training set (paper Section 2.1, "metric summarizer").
type Class int

const (
	// Unstable metrics are neither globally nor locally stable.
	Unstable Class = iota
	// LocallyStable metrics have near-zero average change but large
	// deviation: they jump between program phases yet hold steady
	// within each phase.
	LocallyStable
	// GloballyStable metrics satisfy both thresholds on enough
	// training inputs; only these enter the model.
	GloballyStable
)

func (c Class) String() string {
	switch c {
	case GloballyStable:
		return "globally-stable"
	case LocallyStable:
		return "locally-stable"
	default:
		return "unstable"
	}
}

// InputSummary is the per-training-input evidence for one metric.
type InputSummary struct {
	Input   string        `json:"input"`
	Stable  bool          `json:"stable"`
	Summary stats.Summary `json:"summary"`
	// Skipped marks inputs with too few samples to classify.
	Skipped bool `json:"skipped,omitempty"`
}

// MetricReport is the summarizer's verdict on one metric.
type MetricReport struct {
	Metric string         `json:"metric"`
	Class  Class          `json:"-"`
	Klass  string         `json:"class"` // serialized form of Class
	Inputs []InputSummary `json:"inputs"`
	// StableInputs counts inputs where the metric met both
	// thresholds.
	StableInputs int `json:"stable_inputs"`
	// Range is the union of observed value ranges on stable inputs;
	// meaningful only for globally stable metrics.
	Range stats.Range `json:"range"`
	// AvgChange / StdDevChange are the means of the per-stable-input
	// statistics, the numbers reported in the paper's Figure 7.
	AvgChange    float64 `json:"avg_change"`
	StdDevChange float64 `json:"std_dev_change"`
	// SuspectInputs are training inputs on which the metric was not
	// stable AND left the calibrated range — treated as potentially
	// buggy training runs.
	SuspectInputs []string `json:"suspect_inputs,omitempty"`
}

// Model is the summarized metric report: the artifact handed to the
// anomaly detector. It contains the calibrated ranges of the globally
// stable metrics only.
type Model struct {
	Program    string     `json:"program"`
	Thresholds Thresholds `json:"thresholds"`
	// Stable maps metric name -> calibrated range.
	Stable map[string]stats.Range `json:"stable"`
	// LocallyStable maps metric name -> the cross-phase envelope
	// range, populated only when Thresholds.IncludeLocallyStable is
	// set (the paper's future-work extension).
	LocallyStable map[string]stats.Range `json:"locally_stable,omitempty"`
	// Classes records the training-time classification of every
	// metric in the suite ("globally-stable", "locally-stable",
	// "unstable"). The anomaly detector uses it to notice
	// *pathological* bugs: normally-unstable metrics that become
	// stable during checking (paper Section 4.1).
	Classes map[string]string `json:"classes"`
	// TrainingInputs is the number of inputs used for calibration.
	TrainingInputs int `json:"training_inputs"`
	// TrainingSamples is the mean number of metric samples per
	// training run. Online detectors derive their startup-skip
	// window from it (the paper configures the skip count in the
	// settings file).
	TrainingSamples int `json:"training_samples"`
}

// SkipStartSamples returns the number of leading samples an online
// detector should ignore, mirroring the summarizer's startup trim. It
// shares stats.TrimCount with stats.Trim so the detector and the
// summarizer always agree on the ignored prefix — computing the count
// independently here (the old int(TrimFrac*TrainingSamples)) diverged
// from Trim's clamping on short runs and out-of-range TrimFrac values.
func (m *Model) SkipStartSamples() int {
	return stats.TrimCount(m.TrainingSamples, m.Thresholds.TrimFrac)
}

// ClassOf returns the training-time classification of a metric.
func (m *Model) ClassOf(id metrics.ID) (Class, bool) {
	name, ok := m.Classes[id.String()]
	if !ok {
		return Unstable, false
	}
	switch name {
	case GloballyStable.String():
		return GloballyStable, true
	case LocallyStable.String():
		return LocallyStable, true
	default:
		return Unstable, true
	}
}

// StableIDs returns the globally stable metric IDs in the model,
// sorted by name for determinism.
func (m *Model) StableIDs() []metrics.ID {
	names := make([]string, 0, len(m.Stable))
	for n := range m.Stable {
		names = append(names, n)
	}
	sort.Strings(names)
	out := make([]metrics.ID, 0, len(names))
	for _, n := range names {
		if id, err := metrics.ParseID(n); err == nil {
			out = append(out, id)
		}
	}
	return out
}

// RangeOf returns the calibrated range of a metric, if globally
// stable.
func (m *Model) RangeOf(id metrics.ID) (stats.Range, bool) {
	r, ok := m.Stable[id.String()]
	return r, ok
}

// LocalRangeOf returns the cross-phase envelope range of a locally
// stable metric, when the model was built with IncludeLocallyStable.
func (m *Model) LocalRangeOf(id metrics.ID) (stats.Range, bool) {
	r, ok := m.LocallyStable[id.String()]
	return r, ok
}

// LocallyStableIDs returns the locally stable metric IDs in the
// model, sorted by name.
func (m *Model) LocallyStableIDs() []metrics.ID {
	names := make([]string, 0, len(m.LocallyStable))
	for n := range m.LocallyStable {
		names = append(names, n)
	}
	sort.Strings(names)
	out := make([]metrics.ID, 0, len(names))
	for _, n := range names {
		if id, err := metrics.ParseID(n); err == nil {
			out = append(out, id)
		}
	}
	return out
}

// Save serializes the model as JSON.
func (m *Model) Save(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(m)
}

// Load deserializes a model previously written by Save.
func Load(r io.Reader) (*Model, error) {
	var m Model
	if err := json.NewDecoder(r).Decode(&m); err != nil {
		return nil, fmt.Errorf("model: decoding: %w", err)
	}
	if m.Stable == nil {
		m.Stable = make(map[string]stats.Range)
	}
	return &m, nil
}

// BuildResult couples the model with the full per-metric evidence, so
// experiment harnesses can print Figure 6/7-style tables.
type BuildResult struct {
	Model   *Model
	Reports []MetricReport // one per metric in the suite, suite order
}

// Report returns the MetricReport for a metric ID, or nil.
func (b *BuildResult) Report(id metrics.ID) *MetricReport {
	for i := range b.Reports {
		if b.Reports[i].Metric == id.String() {
			return &b.Reports[i]
		}
	}
	return nil
}

// StableCount returns the number of globally stable metrics found.
func (b *BuildResult) StableCount() int {
	n := 0
	for _, r := range b.Reports {
		if r.Class == GloballyStable {
			n++
		}
	}
	return n
}

// ErrNoReports is returned when Build receives no usable reports.
var ErrNoReports = errors.New("model: no training reports")

// Build runs the metric summarizer over raw reports from the training
// inputs and produces the model. All reports must come from the same
// program and share the same metric suite (the suite of the first
// report is authoritative; reports with a different suite are
// rejected).
func Build(reports []*logger.Report, th Thresholds) (*BuildResult, error) {
	if len(reports) == 0 {
		return nil, ErrNoReports
	}
	if th.MaxAvgChange == 0 && th.MaxStdDev == 0 {
		th = Defaults()
	}
	suite := reports[0].Suite
	for _, r := range reports[1:] {
		if len(r.Suite) != len(suite) {
			return nil, fmt.Errorf("model: report %q has mismatched suite", r.Input)
		}
		for i := range suite {
			if r.Suite[i] != suite[i] {
				return nil, fmt.Errorf("model: report %q has mismatched suite", r.Input)
			}
		}
	}

	totalSamples := 0
	for _, r := range reports {
		totalSamples += len(r.Snapshots)
	}
	res := &BuildResult{
		Model: &Model{
			Program:         reports[0].Program,
			Thresholds:      th,
			Stable:          make(map[string]stats.Range),
			Classes:         make(map[string]string),
			TrainingInputs:  len(reports),
			TrainingSamples: totalSamples / len(reports),
		},
	}

	res.Reports = make([]MetricReport, 0, len(suite))
	// One scratch series, reused across every (metric, report) pair:
	// Trim subslices it and Summarize consumes it before the next
	// iteration overwrites it, so nothing escapes.
	var scratch []float64
	for mi, name := range suite {
		mr := MetricReport{Metric: name, Inputs: make([]InputSummary, 0, len(reports))}
		var stableRange stats.Range
		haveRange := false
		var sumAvg, sumStd float64
		classified := 0
		for _, rep := range reports {
			scratch = seriesInto(scratch[:0], rep, mi)
			series := scratch
			trimmed := stats.Trim(series, th.TrimFrac)
			if len(trimmed) < th.MinSamples {
				mr.Inputs = append(mr.Inputs, InputSummary{Input: rep.Input, Skipped: true})
				continue
			}
			sum, err := stats.Summarize(trimmed)
			if err != nil {
				mr.Inputs = append(mr.Inputs, InputSummary{Input: rep.Input, Skipped: true})
				continue
			}
			classified++
			stable := abs(sum.AvgChange) <= th.MaxAvgChange && sum.StdDevChange <= th.MaxStdDev
			mr.Inputs = append(mr.Inputs, InputSummary{Input: rep.Input, Stable: stable, Summary: sum})
			if stable {
				mr.StableInputs++
				sumAvg += sum.AvgChange
				sumStd += sum.StdDevChange
				if haveRange {
					stableRange = stableRange.Union(sum.Observed)
				} else {
					stableRange = sum.Observed
					haveRange = true
				}
			}
		}
		// Classify the metric across the training set.
		switch {
		case classified > 0 && float64(mr.StableInputs) >= th.MinStableFraction*float64(classified):
			mr.Class = GloballyStable
		case classified > 0 && locallyStable(mr.Inputs, th):
			mr.Class = LocallyStable
		default:
			mr.Class = Unstable
		}
		if mr.Class == LocallyStable && th.IncludeLocallyStable {
			// Envelope across every classified input: the union of
			// all observed phase levels.
			var env stats.Range
			haveEnv := false
			for _, in := range mr.Inputs {
				if in.Skipped {
					continue
				}
				if haveEnv {
					env = env.Union(in.Summary.Observed)
				} else {
					env = in.Summary.Observed
					haveEnv = true
				}
			}
			if haveEnv {
				if g := th.GuardFrac * env.Width(); g > 0 {
					env.Min -= g
					env.Max += g
				}
				if res.Model.LocallyStable == nil {
					res.Model.LocallyStable = make(map[string]stats.Range)
				}
				res.Model.LocallyStable[name] = env
				mr.Range = env
			}
		}
		mr.Klass = mr.Class.String()
		res.Model.Classes[name] = mr.Klass
		if mr.Class == GloballyStable && haveRange {
			mr.Range = stableRange
			mr.AvgChange = sumAvg / float64(mr.StableInputs)
			mr.StdDevChange = sumStd / float64(mr.StableInputs)
			guarded := stableRange
			if g := th.GuardFrac * stableRange.Width(); g > 0 {
				guarded.Min -= g
				guarded.Max += g
			}
			res.Model.Stable[name] = guarded
			// Non-stable training inputs must still respect the
			// range; flag the ones that do not (paper 4.1).
			for _, in := range mr.Inputs {
				if in.Stable || in.Skipped {
					continue
				}
				if in.Summary.Observed.Min < stableRange.Min || in.Summary.Observed.Max > stableRange.Max {
					mr.SuspectInputs = append(mr.SuspectInputs, in.Input)
				}
			}
		}
		res.Reports = append(res.Reports, mr)
	}
	return res, nil
}

// locallyStable reports whether the per-input evidence matches the
// locally-stable pattern: average change near zero on most inputs but
// deviation beyond the global threshold (phase transitions).
func locallyStable(inputs []InputSummary, th Thresholds) bool {
	nearZeroAvg := 0
	classified := 0
	for _, in := range inputs {
		if in.Skipped {
			continue
		}
		classified++
		if abs(in.Summary.AvgChange) <= th.MaxAvgChange {
			nearZeroAvg++
		}
	}
	return classified > 0 && float64(nearZeroAvg) >= th.MinStableFraction*float64(classified)
}

// seriesInto appends column idx of a report's snapshots to dst and
// returns it, letting Build reuse one buffer for every extraction.
// Snapshots narrower than the suite (a v1 report hand-edited or
// replayed against extended metric names) are skipped rather than
// indexed out of range.
func seriesInto(dst []float64, rep *logger.Report, idx int) []float64 {
	for _, s := range rep.Snapshots {
		if idx >= len(s.Values) {
			continue
		}
		dst = append(dst, s.Values[idx])
	}
	return dst
}

func abs(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}
