// Package metrics defines the heap-graph metric suite HeapMD computes
// at metric computation points (paper Section 2.1).
//
// The paper's model constructor computes seven degree-based metrics,
// each the percentage of heap-graph vertices with a given degree
// property. The architecture "allows other metrics to be easily added
// in the future"; this package mirrors that by defining an ID space
// with the seven degree metrics as the default suite and the
// structure metrics the paper names as candidates (connected and
// strongly connected component counts) as an optional extension.
package metrics

import (
	"fmt"

	"heapmd/internal/heapgraph"
)

// ID identifies one heap-graph metric.
type ID int

// The paper's seven degree-based metrics (Section 2.1), in the order
// the paper lists them, followed by extension metrics.
const (
	// Roots is the percentage of vertices with indegree = 0: data
	// structures referenced only from the stack and globals — or
	// leaked.
	Roots ID = iota
	// InDeg1 is the percentage of vertices with indegree = 1.
	InDeg1
	// InDeg2 is the percentage of vertices with indegree = 2.
	InDeg2
	// Leaves is the percentage of vertices with outdegree = 0.
	Leaves
	// OutDeg1 is the percentage of vertices with outdegree = 1.
	OutDeg1
	// OutDeg2 is the percentage of vertices with outdegree = 2.
	OutDeg2
	// InEqOut is the percentage of vertices with indegree equal to
	// outdegree.
	InEqOut

	// Components is the number of weakly connected components per
	// 100 vertices. Normalizing by graph size keeps the metric
	// comparable across heap sizes, like the percentage metrics.
	// Extension metric: a full graph walk per sample in snapshot
	// mode, O(churn) under the incremental tracker.
	Components
	// SCCs is the number of strongly connected components per 100
	// vertices. Extension metric: like Components, a walk per sample
	// only in snapshot mode.
	SCCs

	numIDs
)

// NumIDs is the total number of defined metric IDs.
const NumIDs = int(numIDs)

var names = [...]string{
	Roots:      "Roots",
	InDeg1:     "Indeg=1",
	InDeg2:     "Indeg=2",
	Leaves:     "Leaves",
	OutDeg1:    "Outdeg=1",
	OutDeg2:    "Outdeg=2",
	InEqOut:    "In=Out",
	Components: "WCC/100v",
	SCCs:       "SCC/100v",
}

// String returns the metric's display name, matching the labels used
// in the paper's Figure 7 ("Outdeg=2", "Leaves", "Root", ...).
func (id ID) String() string {
	if id < 0 || id >= numIDs {
		return fmt.Sprintf("metrics.ID(%d)", int(id))
	}
	return names[id]
}

// NeedsWalk reports whether evaluating the metric requires a full
// graph walk at metric points, given the graph's configured component
// modes. Only the extension metrics ever walk, and only in snapshot
// mode: incremental mode maintains the count under mutation, and
// verify mode pays its oracle walk inline on the writer goroutine (a
// deterministic divergence check cannot ride the async worker). This
// replaces the old hardcoded ID.Expensive() gate, which predates the
// incremental trackers and would spin up async machinery for suites
// that never dispatch a job.
func (id ID) NeedsWalk(conn, scc heapgraph.ConnectivityMode) bool {
	switch id {
	case Components:
		return conn == heapgraph.ConnectivitySnapshot
	case SCCs:
		return scc == heapgraph.ConnectivitySnapshot
	}
	return false
}

// NeedsAsync reports whether any metric in the suite would benefit
// from async dispatch under the given component modes — the gate for
// constructing an Async evaluator at all.
func (s Suite) NeedsAsync(conn, scc heapgraph.ConnectivityMode) bool {
	for _, id := range s.ids {
		if id.NeedsWalk(conn, scc) {
			return true
		}
	}
	return false
}

// ParseID resolves a display name back to an ID.
func ParseID(name string) (ID, error) {
	for id, n := range names {
		if n == name {
			return ID(id), nil
		}
	}
	return 0, fmt.Errorf("metrics: unknown metric %q", name)
}

// Suite is an ordered set of metrics to compute at each metric
// computation point.
type Suite struct {
	ids []ID
}

// NewSuite builds a suite from the given metric IDs. Duplicates are
// removed, order is preserved.
func NewSuite(ids ...ID) Suite {
	seen := make(map[ID]bool, len(ids))
	out := make([]ID, 0, len(ids))
	for _, id := range ids {
		if id < 0 || id >= numIDs || seen[id] {
			continue
		}
		seen[id] = true
		out = append(out, id)
	}
	return Suite{ids: out}
}

// DefaultSuite returns the paper's seven degree-based metrics.
func DefaultSuite() Suite {
	return NewSuite(Roots, InDeg1, InDeg2, Leaves, OutDeg1, OutDeg2, InEqOut)
}

// ExtendedSuite returns the default suite plus the structure
// extension metrics.
func ExtendedSuite() Suite {
	return NewSuite(Roots, InDeg1, InDeg2, Leaves, OutDeg1, OutDeg2, InEqOut, Components, SCCs)
}

// IDs returns the suite's metric IDs in evaluation order. The caller
// must not modify the returned slice.
func (s Suite) IDs() []ID { return s.ids }

// Len returns the number of metrics in the suite.
func (s Suite) Len() int { return len(s.ids) }

// Index returns the position of id within the suite, or -1.
func (s Suite) Index(id ID) int {
	for i, x := range s.ids {
		if x == id {
			return i
		}
	}
	return -1
}

// Snapshot is one evaluation of a Suite: Values[i] corresponds to
// Suite.IDs()[i]. Tick records the metric-computation-point ordinal at
// which it was taken, and Vertices/Edges the graph size, so reports can
// reconstruct the execution-progress axis of the paper's figures.
type Snapshot struct {
	Tick     uint64    `json:"tick"`
	Vertices int       `json:"vertices"`
	Edges    int       `json:"edges"`
	Values   []float64 `json:"values"`
}

// Compute evaluates the suite against g. An empty graph yields zeros
// for every metric: with no vertices there is no population to take
// percentages of, and treating the metrics as zero keeps startup
// samples well-defined (they are trimmed away by the summarizer
// anyway).
func (s Suite) Compute(g *heapgraph.Graph, tick uint64) Snapshot {
	snap := Snapshot{
		Tick:     tick,
		Vertices: g.NumVertices(),
		Edges:    g.NumEdges(),
		Values:   make([]float64, len(s.ids)),
	}
	n := g.NumVertices()
	if n == 0 {
		return snap
	}
	pct := func(count int) float64 { return float64(count) / float64(n) * 100 }
	for i, id := range s.ids {
		switch id {
		case Roots:
			snap.Values[i] = pct(g.CountInDegree(0))
		case InDeg1:
			snap.Values[i] = pct(g.CountInDegree(1))
		case InDeg2:
			snap.Values[i] = pct(g.CountInDegree(2))
		case Leaves:
			snap.Values[i] = pct(g.CountOutDegree(0))
		case OutDeg1:
			snap.Values[i] = pct(g.CountOutDegree(1))
		case OutDeg2:
			snap.Values[i] = pct(g.CountOutDegree(2))
		case InEqOut:
			snap.Values[i] = pct(g.CountInEqOut())
		case Components:
			// ConnectedComponentCount dispatches on the graph's
			// connectivity mode: the incremental union-find tracker,
			// the generation-memoized snapshot walk (consecutive
			// samples over an unchanged graph skip the walk entirely),
			// or both with a divergence check in verify mode.
			snap.Values[i] = float64(g.ConnectedComponentCount()) / float64(n) * 100
		case SCCs:
			// Mode dispatch mirrors Components: incremental tracker,
			// memoized snapshot walk, or verify (both + panic on
			// divergence).
			snap.Values[i] = float64(g.StronglyConnectedComponentCount()) / float64(n) * 100
		}
	}
	return snap
}

// Series extracts the time series of a single metric from a sequence
// of snapshots taken with this suite. It returns nil if the metric is
// not in the suite. Snapshots narrower than the suite — a v1 trace's
// report replayed against an extended suite — are skipped rather than
// indexed out of range; use SeriesChecked to learn how many were.
func (s Suite) Series(snaps []Snapshot, id ID) []float64 {
	out, _ := s.SeriesChecked(snaps, id)
	return out
}

// SeriesChecked is Series plus a count of snapshots skipped because
// they carried fewer values than the suite's index for id requires.
// A nonzero skip count means the snapshots were taken with a
// different (narrower) suite than s.
func (s Suite) SeriesChecked(snaps []Snapshot, id ID) (series []float64, skipped int) {
	idx := s.Index(id)
	if idx < 0 {
		return nil, 0
	}
	out := make([]float64, 0, len(snaps))
	for _, sn := range snaps {
		if idx >= len(sn.Values) {
			skipped++
			continue
		}
		out = append(out, sn.Values[idx])
	}
	return out, skipped
}
