package metrics

import (
	"testing"

	"heapmd/internal/heapgraph"
)

// buildChains grows a small graph with chains, a cycle and a deletion,
// so every metric in the extended suite has a non-trivial value.
func buildChains(g *heapgraph.Graph) {
	next := heapgraph.VertexID(1)
	for i := 0; i < 30; i++ {
		g.AddVertex(next)
		if next > 1 {
			g.AddEdge(next-1, next)
		}
		next++
	}
	g.AddEdge(next-1, next-5)
	g.RemoveVertex(next - 10)
}

// TestAsyncComputeAfterClose is the regression test for the
// send-on-closed-channel panic: Compute after Close must degrade to
// synchronous inline evaluation, never panic, and the snapshot must be
// exact immediately (no job is in flight to fill it later).
func TestAsyncComputeAfterClose(t *testing.T) {
	suite := ExtendedSuite()
	a := NewAsync(suite, 2)
	g := heapgraph.New()
	buildChains(g)
	a.Compute(g, 1)
	a.Close()
	a.Close() // idempotent

	// Mutate so neither the memo generation nor the graph cache can
	// mask a missing computation.
	g.AddVertex(1000)
	g.AddEdge(1, 1000)
	snap, observed := a.Compute(g, 2)
	want := suite.Compute(g, 2)
	for j := range want.Values {
		if snap.Values[j] != want.Values[j] || observed[j] != want.Values[j] {
			t.Fatalf("post-Close metric %s: got %v/%v, want %v",
				suite.IDs()[j], snap.Values[j], observed[j], want.Values[j])
		}
	}
	// Wait must also remain safe after Close.
	a.Wait()
}

// TestAsyncCarrySlotsDoNotLeak pins the carry-slot fix: a suite that
// lacks one expensive metric has no slot for the other's carry (or
// memo) to leak into, and the present metric's values still converge
// to the synchronous result.
func TestAsyncCarrySlotsDoNotLeak(t *testing.T) {
	suite := NewSuite(Roots, SCCs) // Components deliberately absent
	a := NewAsync(suite, 2)
	defer a.Close()
	if a.wccIdx != -1 {
		t.Fatalf("wccIdx = %d for a suite without Components", a.wccIdx)
	}
	g := heapgraph.New()
	buildChains(g)
	var snaps []Snapshot
	for tick := uint64(1); tick <= 10; tick++ {
		g.AddVertex(heapgraph.VertexID(2000 + tick))
		snap, _ := a.Compute(g, tick)
		snaps = append(snaps, snap)
	}
	a.Wait()
	a.mu.Lock()
	hasWCC := a.memo.hasWCC
	a.mu.Unlock()
	if hasWCC {
		t.Fatal("memo recorded a WCC result for a suite without Components")
	}
	// Exactness after Wait: the final tick was computed on the final
	// graph state, so synchronous evaluation reproduces it directly.
	final := snaps[len(snaps)-1]
	want := suite.Compute(g, final.Tick)
	for j := range want.Values {
		if final.Values[j] != want.Values[j] {
			t.Fatalf("metric %s: got %v, want %v", suite.IDs()[j], final.Values[j], want.Values[j])
		}
	}
}

// TestAsyncIncrementalInlineWCC checks the incremental fast path: with
// the graph in incremental connectivity mode, the Components slot is
// exact synchronously — in both the recorded snapshot and the observed
// copy — before any worker has run, and the final report still matches
// synchronous evaluation.
func TestAsyncIncrementalInlineWCC(t *testing.T) {
	suite := ExtendedSuite()
	a := NewAsync(suite, 2)
	defer a.Close()
	g := heapgraph.New()
	g.SetConnectivity(heapgraph.ConnectivityIncremental, 0)
	buildChains(g)

	wccIdx := suite.Index(Components)
	wantWCC := float64(g.WeaklyConnectedComponents().Count) / float64(g.NumVertices()) * 100
	snap, observed := a.Compute(g, 1)
	if snap.Values[wccIdx] != wantWCC || observed[wccIdx] != wantWCC {
		t.Fatalf("incremental WCC slot = %v/%v before Wait, want %v",
			snap.Values[wccIdx], observed[wccIdx], wantWCC)
	}
	a.Wait()
	want := suite.Compute(g, 1)
	for j := range want.Values {
		if snap.Values[j] != want.Values[j] {
			t.Fatalf("metric %s: async %v, sync %v", suite.IDs()[j], snap.Values[j], want.Values[j])
		}
	}
}

// TestAsyncIncrementalWCCOnlyNeverDispatches checks the no-freeze fast
// path: a suite whose only expensive metric is Components, on an
// incremental graph, computes everything inline — Compute returns the
// recorded slice itself (the documented signal that no job went to the
// workers).
func TestAsyncIncrementalWCCOnlyNeverDispatches(t *testing.T) {
	suite := NewSuite(Roots, Leaves, Components) // no SCCs
	a := NewAsync(suite, 2)
	defer a.Close()
	g := heapgraph.New()
	g.SetConnectivity(heapgraph.ConnectivityIncremental, 0)
	buildChains(g)
	snap, observed := a.Compute(g, 1)
	if &snap.Values[0] != &observed[0] {
		t.Fatal("WCC-only incremental Compute dispatched a job (observed copy was taken)")
	}
	want := suite.Compute(g, 1)
	for j := range want.Values {
		if snap.Values[j] != want.Values[j] {
			t.Fatalf("metric %s: got %v, want %v", suite.IDs()[j], snap.Values[j], want.Values[j])
		}
	}
}

// TestAsyncSCCWithFreezeSCC checks that the reduced out-only freeze
// (incremental mode, SCCs async) produces the same SCC percentages as
// the full snapshot path, including on graphs with many isolated
// vertices.
func TestAsyncSCCWithFreezeSCC(t *testing.T) {
	suite := ExtendedSuite()
	a := NewAsync(suite, 2)
	defer a.Close()
	g := heapgraph.New()
	g.SetConnectivity(heapgraph.ConnectivityIncremental, 0)
	// A 3-cycle plus isolated vertices: FreezeSCC excludes the
	// isolated ones and the worker must add them back.
	for i := 1; i <= 20; i++ {
		g.AddVertex(heapgraph.VertexID(i))
	}
	g.AddEdge(1, 2)
	g.AddEdge(2, 3)
	g.AddEdge(3, 1)
	snap, _ := a.Compute(g, 1)
	a.Wait()
	want := suite.Compute(g, 1)
	for j := range want.Values {
		if snap.Values[j] != want.Values[j] {
			t.Fatalf("metric %s: got %v, want %v", suite.IDs()[j], snap.Values[j], want.Values[j])
		}
	}
}

// TestAsyncIncrementalInlineSCC checks the strong-connectivity fast
// path: with the graph's SCC metric in incremental mode (Components
// still snapshot), the SCCs slot is exact synchronously — in both the
// recorded snapshot and the observed copy — before any worker has
// run, while Components still rides the async walk; the final report
// matches synchronous evaluation.
func TestAsyncIncrementalInlineSCC(t *testing.T) {
	suite := ExtendedSuite()
	a := NewAsync(suite, 2)
	defer a.Close()
	g := heapgraph.New()
	g.SetSCC(heapgraph.ConnectivityIncremental, 0)
	buildChains(g)

	sccIdx := suite.Index(SCCs)
	wantSCC := float64(g.StronglyConnectedComponents().Count) / float64(g.NumVertices()) * 100
	snap, observed := a.Compute(g, 1)
	if snap.Values[sccIdx] != wantSCC || observed[sccIdx] != wantSCC {
		t.Fatalf("incremental SCC slot = %v/%v before Wait, want %v",
			snap.Values[sccIdx], observed[sccIdx], wantSCC)
	}
	a.Wait()
	want := suite.Compute(g, 1)
	for j := range want.Values {
		if snap.Values[j] != want.Values[j] {
			t.Fatalf("metric %s: async %v, sync %v", suite.IDs()[j], snap.Values[j], want.Values[j])
		}
	}
}

// TestAsyncBothIncrementalNeverDispatches checks the tentpole fast
// path: with BOTH component metrics incremental, the full extended
// suite computes every sample inline — no freeze, no dispatch
// (Compute returns the recorded slice itself, the documented signal),
// and the values match synchronous evaluation exactly.
func TestAsyncBothIncrementalNeverDispatches(t *testing.T) {
	suite := ExtendedSuite()
	a := NewAsync(suite, 2)
	defer a.Close()
	g := heapgraph.New()
	g.SetConnectivity(heapgraph.ConnectivityIncremental, 0)
	g.SetSCC(heapgraph.ConnectivityIncremental, 0)
	buildChains(g)
	for tick := uint64(1); tick <= 5; tick++ {
		g.AddVertex(heapgraph.VertexID(3000 + tick))
		g.AddEdge(3000+heapgraph.VertexID(tick), 1)
		snap, observed := a.Compute(g, tick)
		if &snap.Values[0] != &observed[0] {
			t.Fatal("fully incremental Compute dispatched a job (observed copy was taken)")
		}
		want := suite.Compute(g, tick)
		for j := range want.Values {
			if snap.Values[j] != want.Values[j] {
				t.Fatalf("tick %d metric %s: got %v, want %v",
					tick, suite.IDs()[j], snap.Values[j], want.Values[j])
			}
		}
	}
}

// TestAsyncIncrementalSCCOnlyNeverDispatches is the SCC mirror of the
// WCC-only fast path: a suite whose only walk-capable metric is SCCs,
// on a graph with the SCC tracker on, never freezes and never
// dispatches.
func TestAsyncIncrementalSCCOnlyNeverDispatches(t *testing.T) {
	suite := NewSuite(Roots, Leaves, SCCs) // no Components
	a := NewAsync(suite, 2)
	defer a.Close()
	g := heapgraph.New()
	g.SetSCC(heapgraph.ConnectivityIncremental, 0)
	buildChains(g)
	snap, observed := a.Compute(g, 1)
	if &snap.Values[0] != &observed[0] {
		t.Fatal("SCC-only incremental Compute dispatched a job (observed copy was taken)")
	}
	want := suite.Compute(g, 1)
	for j := range want.Values {
		if snap.Values[j] != want.Values[j] {
			t.Fatalf("metric %s: got %v, want %v", suite.IDs()[j], snap.Values[j], want.Values[j])
		}
	}
}
