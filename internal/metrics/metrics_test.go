package metrics

import (
	"math"
	"testing"
	"testing/quick"

	"heapmd/internal/heapgraph"
)

func TestIDString(t *testing.T) {
	if Roots.String() != "Roots" || OutDeg1.String() != "Outdeg=1" || InEqOut.String() != "In=Out" {
		t.Errorf("unexpected names: %s %s %s", Roots, OutDeg1, InEqOut)
	}
	if got := ID(-1).String(); got != "metrics.ID(-1)" {
		t.Errorf("invalid ID name = %q", got)
	}
}

func TestParseIDRoundTrip(t *testing.T) {
	for id := ID(0); id < numIDs; id++ {
		got, err := ParseID(id.String())
		if err != nil {
			t.Fatalf("ParseID(%q): %v", id.String(), err)
		}
		if got != id {
			t.Errorf("ParseID(%q) = %v, want %v", id.String(), got, id)
		}
	}
	if _, err := ParseID("bogus"); err == nil {
		t.Error("ParseID of unknown name should fail")
	}
}

func TestNewSuiteDeduplicates(t *testing.T) {
	s := NewSuite(Roots, Roots, Leaves, ID(-3), ID(999))
	if s.Len() != 2 {
		t.Fatalf("Len = %d, want 2", s.Len())
	}
	if s.Index(Roots) != 0 || s.Index(Leaves) != 1 || s.Index(InDeg1) != -1 {
		t.Error("suite ordering/index wrong")
	}
}

func TestDefaultSuite(t *testing.T) {
	s := DefaultSuite()
	if s.Len() != 7 {
		t.Fatalf("default suite has %d metrics, want 7", s.Len())
	}
	for _, id := range s.IDs() {
		if id.NeedsWalk(heapgraph.ConnectivitySnapshot, heapgraph.ConnectivitySnapshot) {
			t.Errorf("default suite contains walk-requiring metric %v", id)
		}
	}
	if s.NeedsAsync(heapgraph.ConnectivitySnapshot, heapgraph.ConnectivitySnapshot) {
		t.Error("default suite claims to need async dispatch")
	}
}

// TestNeedsWalkModeAware pins the mode-aware dispatch decisions that
// replaced the hardcoded Expensive() gate: a component metric needs a
// whole-graph walk at metric points only in snapshot mode.
func TestNeedsWalkModeAware(t *testing.T) {
	snapM, inc, ver := heapgraph.ConnectivitySnapshot, heapgraph.ConnectivityIncremental, heapgraph.ConnectivityVerify
	cases := []struct {
		id       ID
		conn, sc heapgraph.ConnectivityMode
		want     bool
	}{
		{Components, snapM, snapM, true},
		{Components, inc, snapM, false},
		{Components, ver, snapM, false}, // verify walks inline, not async
		{Components, snapM, inc, true},  // SCC mode is irrelevant to Components
		{SCCs, snapM, snapM, true},
		{SCCs, snapM, inc, false},
		{SCCs, snapM, ver, false},
		{SCCs, inc, snapM, true}, // WCC mode is irrelevant to SCCs
		{Roots, snapM, snapM, false},
		{InEqOut, snapM, snapM, false},
	}
	for _, c := range cases {
		if got := c.id.NeedsWalk(c.conn, c.sc); got != c.want {
			t.Errorf("%v.NeedsWalk(%v, %v) = %v, want %v", c.id, c.conn, c.sc, got, c.want)
		}
	}
	if !ExtendedSuite().NeedsAsync(inc, snapM) {
		t.Error("extended suite with snapshot SCCs should need async")
	}
	if ExtendedSuite().NeedsAsync(inc, inc) {
		t.Error("fully incremental extended suite should not need async")
	}
	if ExtendedSuite().NeedsAsync(ver, ver) {
		t.Error("verify modes pay their walks inline; no async needed")
	}
}

func TestComputeEmptyGraph(t *testing.T) {
	g := heapgraph.New()
	snap := DefaultSuite().Compute(g, 3)
	if snap.Tick != 3 || snap.Vertices != 0 {
		t.Fatalf("snapshot header = %+v", snap)
	}
	for i, v := range snap.Values {
		if v != 0 {
			t.Errorf("metric %d on empty graph = %v, want 0", i, v)
		}
	}
}

// linkedListGraph builds the canonical k-node singly linked list used
// in the paper's Figure 3 discussion.
func linkedListGraph(k int) *heapgraph.Graph {
	g := heapgraph.New()
	for i := 0; i < k; i++ {
		g.AddVertex(heapgraph.VertexID(i))
	}
	for i := 0; i+1 < k; i++ {
		g.AddEdge(heapgraph.VertexID(i), heapgraph.VertexID(i+1))
	}
	return g
}

func TestComputeLinkedList(t *testing.T) {
	// For a 10-node list at object granularity: 1 root, 9 nodes with
	// indegree 1, 1 leaf, 9 with outdegree 1, and 8 interior nodes
	// with in==out (the head has 0/1, the tail 1/0).
	g := linkedListGraph(10)
	s := DefaultSuite()
	snap := s.Compute(g, 0)
	want := map[ID]float64{
		Roots:   10,
		InDeg1:  90,
		InDeg2:  0,
		Leaves:  10,
		OutDeg1: 90,
		OutDeg2: 0,
		InEqOut: 80,
	}
	for id, w := range want {
		got := snap.Values[s.Index(id)]
		if math.Abs(got-w) > 1e-9 {
			t.Errorf("%v = %v, want %v", id, got, w)
		}
	}
}

func TestComputeExtended(t *testing.T) {
	// Two disjoint 5-node lists: 2 WCCs over 10 vertices = 20 per
	// 100 vertices; 10 SCCs (acyclic) = 100 per 100 vertices.
	g := heapgraph.New()
	for i := 0; i < 10; i++ {
		g.AddVertex(heapgraph.VertexID(i))
	}
	for i := 0; i < 4; i++ {
		g.AddEdge(heapgraph.VertexID(i), heapgraph.VertexID(i+1))
		g.AddEdge(heapgraph.VertexID(5+i), heapgraph.VertexID(6+i))
	}
	s := ExtendedSuite()
	snap := s.Compute(g, 0)
	if got := snap.Values[s.Index(Components)]; math.Abs(got-20) > 1e-9 {
		t.Errorf("Components = %v, want 20", got)
	}
	if got := snap.Values[s.Index(SCCs)]; math.Abs(got-100) > 1e-9 {
		t.Errorf("SCCs = %v, want 100", got)
	}
}

// TestPercentagesSumProperties checks cross-metric consistency on
// random graphs: every percentage is within [0,100], and the indegree
// buckets 0,1,2 plus the rest account for all vertices.
func TestPercentagesSumProperties(t *testing.T) {
	type edge struct{ U, V uint8 }
	f := func(edges []edge, nSeed uint8) bool {
		n := int(nSeed%50) + 1
		g := heapgraph.New()
		for i := 0; i < n; i++ {
			g.AddVertex(heapgraph.VertexID(i))
		}
		for _, e := range edges {
			g.AddEdge(heapgraph.VertexID(int(e.U)%n), heapgraph.VertexID(int(e.V)%n))
		}
		s := DefaultSuite()
		snap := s.Compute(g, 0)
		for _, v := range snap.Values {
			if v < 0 || v > 100+1e-9 {
				return false
			}
		}
		in012 := snap.Values[s.Index(Roots)] + snap.Values[s.Index(InDeg1)] + snap.Values[s.Index(InDeg2)]
		return in012 <= 100+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestSeries(t *testing.T) {
	s := DefaultSuite()
	g := linkedListGraph(4)
	snaps := []Snapshot{s.Compute(g, 0)}
	g.AddVertex(100) // new isolated root+leaf
	snaps = append(snaps, s.Compute(g, 1))
	series := s.Series(snaps, Roots)
	if len(series) != 2 {
		t.Fatalf("series length = %d", len(series))
	}
	if series[0] != 25 || series[1] != 40 {
		t.Errorf("Roots series = %v, want [25 40]", series)
	}
	if s.Series(snaps, Components) != nil {
		t.Error("Series of absent metric should be nil")
	}
}

func BenchmarkComputeDefault(b *testing.B) {
	g := linkedListGraph(100000)
	s := DefaultSuite()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Compute(g, uint64(i))
	}
}

func BenchmarkComputeExtended(b *testing.B) {
	g := linkedListGraph(10000)
	s := ExtendedSuite()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Compute(g, uint64(i))
	}
}

// TestSeriesCheckedSkipsNarrowSnapshots: indexing an extended suite
// into snapshots recorded with the narrower v1 suite must skip (and
// count) them, not panic.
func TestSeriesCheckedSkipsNarrowSnapshots(t *testing.T) {
	ext := ExtendedSuite()
	narrowW := DefaultSuite().Len() // 7
	snaps := []Snapshot{
		{Tick: 1, Values: make([]float64, narrowW)},
		{Tick: 2, Values: make([]float64, ext.Len())},
		{Tick: 3, Values: make([]float64, narrowW)},
		{Tick: 4, Values: make([]float64, ext.Len())},
	}
	snaps[1].Values[ext.Index(Components)] = 42
	snaps[3].Values[ext.Index(Components)] = 43

	series, skipped := ext.SeriesChecked(snaps, Components)
	if skipped != 2 {
		t.Errorf("skipped = %d, want 2", skipped)
	}
	if len(series) != 2 || series[0] != 42 || series[1] != 43 {
		t.Errorf("series = %v, want [42 43]", series)
	}

	// A metric that fits inside the narrow width sees every snapshot.
	all, skipped := ext.SeriesChecked(snaps, Roots)
	if skipped != 0 || len(all) != len(snaps) {
		t.Errorf("cheap metric: skipped=%d len=%d, want 0 and %d", skipped, len(all), len(snaps))
	}

	// Absent metric: nil series, no skips reported.
	if s, k := DefaultSuite().SeriesChecked(snaps, Components); s != nil || k != 0 {
		t.Errorf("absent metric gave (%v, %d)", s, k)
	}
}

// TestAsyncMatchesSyncCompute drives the asynchronous evaluator
// through a mutating graph and verifies that once Wait returns, every
// recorded snapshot holds exactly the values synchronous evaluation
// produced at the same points.
func TestAsyncMatchesSyncCompute(t *testing.T) {
	suite := ExtendedSuite()
	a := NewAsync(suite, 3)
	defer a.Close()

	g := heapgraph.New()
	var syncSnaps, asyncSnaps []Snapshot
	next := heapgraph.VertexID(1)
	for tick := uint64(1); tick <= 40; tick++ {
		// Grow a few linked chains, occasionally closing cycles.
		for i := 0; i < 5; i++ {
			g.AddVertex(next)
			if next > 1 {
				g.AddEdge(next-1, next)
			}
			next++
		}
		if tick%7 == 0 {
			g.AddEdge(next-1, next-4)
		}
		if tick%11 == 0 {
			g.RemoveVertex(next - 2)
		}
		syncSnaps = append(syncSnaps, suite.Compute(g, tick))
		snap, observed := a.Compute(g, tick)
		if len(observed) != suite.Len() {
			t.Fatalf("tick %d: observed width %d, want %d", tick, len(observed), suite.Len())
		}
		asyncSnaps = append(asyncSnaps, snap)
	}
	a.Wait()

	for i := range syncSnaps {
		w, g := syncSnaps[i], asyncSnaps[i]
		if w.Tick != g.Tick || w.Vertices != g.Vertices || w.Edges != g.Edges {
			t.Fatalf("snapshot %d metadata differs: %+v vs %+v", i, g, w)
		}
		for j := range w.Values {
			if w.Values[j] != g.Values[j] {
				t.Fatalf("snapshot %d metric %s: async %v, sync %v",
					i, suite.IDs()[j], g.Values[j], w.Values[j])
			}
		}
	}

	// Quiescent memo hit: with no mutation since the last completed
	// job, Compute returns exact values immediately.
	snap, observed := a.Compute(g, 41)
	want := suite.Compute(g, 41)
	for j := range want.Values {
		if snap.Values[j] != want.Values[j] || observed[j] != want.Values[j] {
			t.Fatalf("memo-hit metric %s: got %v/%v, want %v",
				suite.IDs()[j], snap.Values[j], observed[j], want.Values[j])
		}
	}
	a.Wait()
}
