// Asynchronous evaluation of the expensive extension metrics. The
// degree metrics are O(1) histogram reads, but Components and SCCs
// walk the whole graph; computing them inline at a metric computation
// point stalls event ingestion for the duration of the walk. The
// Async evaluator keeps Suite.Compute semantics for the cheap metrics
// and moves the walks onto worker goroutines: at each sample it
// freezes the graph's connectivity (one cheap pass), dispatches the
// component analyses, and fills the snapshot's expensive slots with
// the most recent completed values; when a worker finishes, it joins
// the exact results back into the snapshot recorded for its tick.
// Wait() joins all outstanding work, after which every recorded
// snapshot holds exact values — the final Report is identical to one
// computed synchronously.
//
// Whether a walk is needed at all depends on the graph's component
// modes, not on the metric's identity: in an incremental mode,
// Components reads the union-find tracker and SCCs reads the
// strong-connectivity tracker, both synchronously (O(churn), not
// O(size)), and neither dispatches. Only snapshot-mode component
// metrics go to the workers — SCC-only jobs on a reduced out-only
// FreezeSCC snapshot (isolated vertices counted, not materialized),
// anything needing the weak walk on a full Freeze. With both metrics
// incremental the evaluator never freezes and never dispatches: the
// worker pool, snapshot structures, and carry memo are pure fallback
// paths (and the snapshot walk remains the differential oracle that
// verify mode diffs the trackers against). Callers can skip
// constructing an Async entirely in that configuration — see
// Suite.NeedsAsync.
package metrics

import (
	"sync"

	"heapmd/internal/heapgraph"
)

// expensiveMemo caches the last completed component analyses together
// with the graph generation they were computed at. The carry values
// (the expensive metric *values* of the newest completed tick,
// pre-filling snapshots whose exact results are still in flight) live
// in fixed per-metric slots: their positions in the suite were
// resolved once at construction, so Compute never performs per-call
// suite lookups, and a metric absent from the suite has no slot for a
// stale value to leak into.
type expensiveMemo struct {
	gen      uint64
	tick     uint64
	wcc      heapgraph.ComponentStats
	scc      heapgraph.ComponentStats
	hasWCC   bool
	hasSCC   bool
	carryWCC float64 // valid iff hasWCC
	carrySCC float64 // valid iff hasSCC
}

// asyncJob is one tick's expensive-metric computation.
type asyncJob struct {
	st   *heapgraph.Structure
	dest []float64 // the snapshot's Values array, shared by tick
	tick uint64
	// vertices is the live vertex count at the tick; the percentage
	// base. With FreezeSCC it differs from st.NumVertices().
	vertices int
	// isolated counts vertices excluded from a FreezeSCC snapshot,
	// each a singleton SCC to add back to the Tarjan result. Always 0
	// for full Freeze snapshots.
	isolated int
	// positions of the expensive metrics within dest, -1 if absent
	// or computed synchronously this tick.
	wccAt, sccAt int
}

// Async evaluates a Suite with the expensive extension metrics
// computed on worker goroutines. Compute, Wait and Close must be
// called from a single goroutine (the monitoring pipeline's
// consumer); the returned snapshots' expensive slots are filled in
// place as workers finish.
type Async struct {
	suite   Suite
	wccIdx  int // index of Components in the suite, -1 if absent
	sccIdx  int
	jobs    chan asyncJob
	pending sync.WaitGroup
	mu      sync.Mutex // guards memo and closed
	memo    expensiveMemo
	closed  bool
	once    sync.Once
}

// NewAsync builds an asynchronous evaluator for the suite with the
// given number of workers (minimum 1). If the suite contains no
// expensive metrics the evaluator still works and simply never
// dispatches a job.
func NewAsync(suite Suite, workers int) *Async {
	if workers < 1 {
		workers = 1
	}
	a := &Async{
		suite:  suite,
		wccIdx: suite.Index(Components),
		sccIdx: suite.Index(SCCs),
		// 2x workers of buffer: sampling only blocks when every
		// worker is busy and the backlog is full, which bounds the
		// memory pinned by in-flight Structure snapshots.
		jobs: make(chan asyncJob, 2*workers),
	}
	for i := 0; i < workers; i++ {
		go a.worker()
	}
	return a
}

// Compute evaluates the suite against g for one tick. Cheap metrics
// are computed inline; expensive slots receive the newest completed
// values immediately (zero until the first completion) and are
// overwritten in place with the tick's exact results once its worker
// finishes. The second return value is a stable copy of the snapshot's
// values safe to hand to immediate consumers (observers): once a job
// is in flight the recorded Values array belongs jointly to the worker,
// so the copy is taken before dispatch. When no job was dispatched the
// recorded slice itself is returned (nothing will mutate it).
//
// Compute after Close degrades to a defined synchronous fallback: the
// expensive slots are computed inline on the calling goroutine (the
// graph's writer, per the single-goroutine contract) and the snapshot
// is exact immediately. It never panics.
func (a *Async) Compute(g *heapgraph.Graph, tick uint64) (Snapshot, []float64) {
	snap := Snapshot{
		Tick:     tick,
		Vertices: g.NumVertices(),
		Edges:    g.NumEdges(),
		Values:   make([]float64, len(a.suite.ids)),
	}
	n := snap.Vertices
	if n == 0 {
		return snap, snap.Values
	}
	pct := func(count int) float64 { return float64(count) / float64(n) * 100 }
	for i, id := range a.suite.ids {
		switch id {
		case Roots:
			snap.Values[i] = pct(g.CountInDegree(0))
		case InDeg1:
			snap.Values[i] = pct(g.CountInDegree(1))
		case InDeg2:
			snap.Values[i] = pct(g.CountInDegree(2))
		case Leaves:
			snap.Values[i] = pct(g.CountOutDegree(0))
		case OutDeg1:
			snap.Values[i] = pct(g.CountOutDegree(1))
		case OutDeg2:
			snap.Values[i] = pct(g.CountOutDegree(2))
		case InEqOut:
			snap.Values[i] = pct(g.CountInEqOut())
		}
	}
	incrementalWCC := g.Connectivity() != heapgraph.ConnectivitySnapshot
	incrementalSCC := g.SCCMode() != heapgraph.ConnectivitySnapshot
	if a.wccIdx >= 0 && incrementalWCC {
		// Fast path: the incremental tracker answers without freezing
		// anything — exact, synchronous, costed by churn not size.
		snap.Values[a.wccIdx] = pct(g.ConnectedComponentCount())
	}
	if a.sccIdx >= 0 && incrementalSCC {
		// Same fast path for strong connectivity.
		snap.Values[a.sccIdx] = pct(g.StronglyConnectedComponentCount())
	}
	wccAsync := a.wccIdx >= 0 && !incrementalWCC
	sccAsync := a.sccIdx >= 0 && !incrementalSCC
	if !wccAsync && !sccAsync {
		// Both component metrics (if present) were answered inline:
		// no freeze, no dispatch, nothing for the workers to do.
		return snap, snap.Values
	}

	// Reuse completed results when the graph has not mutated since
	// they were computed: no snapshot, no walk, exact values now.
	gen := g.Generation()
	a.mu.Lock()
	if a.memo.gen == gen && (!wccAsync || a.memo.hasWCC) && (!sccAsync || a.memo.hasSCC) {
		if wccAsync {
			snap.Values[a.wccIdx] = pct(a.memo.wcc.Count)
		}
		if sccAsync {
			snap.Values[a.sccIdx] = pct(a.memo.scc.Count)
		}
		a.mu.Unlock()
		return snap, snap.Values
	}
	// Carry the newest completed values forward so the snapshot's
	// async slots are always defined for immediate consumers
	// (observers see a slightly stale but real value, never NaN). The
	// slots were resolved at construction; a metric the suite lacks
	// has index -1 and no carry to leak.
	if wccAsync && a.memo.hasWCC {
		snap.Values[a.wccIdx] = a.memo.carryWCC
	}
	if sccAsync && a.memo.hasSCC {
		snap.Values[a.sccIdx] = a.memo.carrySCC
	}
	closed := a.closed
	a.mu.Unlock()

	if closed {
		// Post-Close fallback: the workers are gone and the jobs
		// channel is closed; compute the expensive slots inline
		// (generation-memoized, writer goroutine) instead of
		// dispatching. Compute and Close share one goroutine, so
		// `closed` cannot change between the check and here.
		if wccAsync {
			snap.Values[a.wccIdx] = pct(g.WeaklyConnectedComponentsCached().Count)
		}
		if sccAsync {
			snap.Values[a.sccIdx] = pct(g.StronglyConnectedComponentsCached().Count)
		}
		return snap, snap.Values
	}

	job := asyncJob{
		dest:     snap.Values,
		tick:     tick,
		vertices: n,
		wccAt:    -1,
		sccAt:    -1,
	}
	if wccAsync {
		job.wccAt = a.wccIdx
	}
	if sccAsync {
		job.sccAt = a.sccIdx
	}
	if job.wccAt < 0 {
		// Only SCCs go to the worker: freeze the reduced out-only
		// structure Tarjan actually needs. The isolated vertices it
		// excludes ride along as a count the worker adds back.
		job.st, job.isolated = g.FreezeSCC()
	} else {
		job.st = g.Freeze()
	}

	// The copy for immediate consumers must precede the dispatch: the
	// moment the job is on the channel, a worker may overwrite the
	// recorded array's expensive slots.
	observed := append([]float64(nil), snap.Values...)
	a.pending.Add(1)
	a.jobs <- job
	return snap, observed
}

func (a *Async) worker() {
	for job := range a.jobs {
		n := job.vertices
		var wcc, scc heapgraph.ComponentStats
		var wccVal, sccVal float64
		if job.wccAt >= 0 {
			wcc = job.st.WeaklyConnectedComponents()
			wccVal = float64(wcc.Count) / float64(n) * 100
			job.dest[job.wccAt] = wccVal
		}
		if job.sccAt >= 0 {
			scc = job.st.StronglyConnectedComponents()
			scc.Count += job.isolated
			if job.isolated > 0 && scc.Largest < 1 {
				scc.Largest = 1
			}
			sccVal = float64(scc.Count) / float64(n) * 100
			job.dest[job.sccAt] = sccVal
		}
		a.mu.Lock()
		// Jobs can complete out of tick order; only a newer tick may
		// advance the memo and carry values.
		if job.tick >= a.memo.tick {
			a.memo.tick = job.tick
			a.memo.gen = job.st.Generation()
			if job.wccAt >= 0 {
				a.memo.wcc, a.memo.hasWCC = wcc, true
				a.memo.carryWCC = wccVal
			}
			if job.sccAt >= 0 {
				a.memo.scc, a.memo.hasSCC = scc, true
				a.memo.carrySCC = sccVal
			}
		}
		a.mu.Unlock()
		a.pending.Done()
	}
}

// Wait blocks until every dispatched job has joined its results back
// into the recorded snapshots. After Wait, all snapshots returned by
// Compute hold exact values.
func (a *Async) Wait() { a.pending.Wait() }

// Close waits for outstanding work and stops the workers. Compute
// after Close falls back to synchronous inline evaluation (see
// Compute); previously it panicked with a send on the closed jobs
// channel.
func (a *Async) Close() {
	a.once.Do(func() {
		a.pending.Wait()
		a.mu.Lock()
		a.closed = true
		a.mu.Unlock()
		close(a.jobs)
	})
}

// Suite returns the suite the evaluator computes.
func (a *Async) Suite() Suite { return a.suite }
