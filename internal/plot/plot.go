// Package plot renders metric time series as ASCII charts — the
// terminal stand-in for the paper's GUI "that plots heap metrics while
// the program executes". The experiment harness uses it for Figures
// 4, 5 and 10, where the paper shows metric trajectories and
// calibrated bounds.
package plot

import (
	"fmt"
	"math"
	"strings"
)

// Series is one named line on a chart.
type Series struct {
	Name   string
	Values []float64
}

// Options configures a chart.
type Options struct {
	// Title is printed above the chart.
	Title string
	// Width and Height of the plot area in characters; defaults 72
	// and 16.
	Width, Height int
	// YMin/YMax fix the vertical range; when both are zero the range
	// is derived from the data with a small margin.
	YMin, YMax float64
	// HLines draws labelled horizontal rules (e.g. calibrated
	// min/max, the paper's Figure 10 bounds).
	HLines map[string]float64
}

const markers = "*o+x#@"

// Render draws the series over a shared x-axis (sample index) and
// returns the chart as a string.
func Render(opts Options, series ...Series) string {
	w, h := opts.Width, opts.Height
	if w <= 0 {
		w = 72
	}
	if h <= 0 {
		h = 16
	}
	maxLen := 0
	for _, s := range series {
		if len(s.Values) > maxLen {
			maxLen = len(s.Values)
		}
	}
	if maxLen == 0 {
		return opts.Title + "\n(no data)\n"
	}

	ymin, ymax := opts.YMin, opts.YMax
	if ymin == 0 && ymax == 0 {
		ymin, ymax = math.Inf(1), math.Inf(-1)
		for _, s := range series {
			for _, v := range s.Values {
				ymin = math.Min(ymin, v)
				ymax = math.Max(ymax, v)
			}
		}
		for _, v := range opts.HLines {
			ymin = math.Min(ymin, v)
			ymax = math.Max(ymax, v)
		}
		if math.IsInf(ymin, 1) {
			ymin, ymax = 0, 1
		}
		margin := (ymax - ymin) * 0.05
		if margin == 0 {
			margin = 1
		}
		ymin -= margin
		ymax += margin
	}
	if ymax <= ymin {
		ymax = ymin + 1
	}

	grid := make([][]byte, h)
	for r := range grid {
		grid[r] = []byte(strings.Repeat(" ", w))
	}
	row := func(v float64) int {
		frac := (v - ymin) / (ymax - ymin)
		r := int(math.Round(float64(h-1) * (1 - frac)))
		if r < 0 {
			r = 0
		}
		if r >= h {
			r = h - 1
		}
		return r
	}
	// Horizontal rules first so data overdraws them.
	for _, v := range opts.HLines {
		r := row(v)
		for c := 0; c < w; c++ {
			grid[r][c] = '-'
		}
	}
	for si, s := range series {
		m := markers[si%len(markers)]
		for i, v := range s.Values {
			c := 0
			if maxLen > 1 {
				c = i * (w - 1) / (maxLen - 1)
			}
			grid[row(v)][c] = m
		}
	}

	var b strings.Builder
	if opts.Title != "" {
		fmt.Fprintf(&b, "%s\n", opts.Title)
	}
	for r := 0; r < h; r++ {
		label := "        "
		switch r {
		case 0:
			label = fmt.Sprintf("%7.1f ", ymax)
		case h - 1:
			label = fmt.Sprintf("%7.1f ", ymin)
		case (h - 1) / 2:
			label = fmt.Sprintf("%7.1f ", (ymax+ymin)/2)
		}
		fmt.Fprintf(&b, "%s|%s\n", label, string(grid[r]))
	}
	fmt.Fprintf(&b, "%s+%s\n", strings.Repeat(" ", 8), strings.Repeat("-", w))
	fmt.Fprintf(&b, "%sx: metric computation points (0..%d)\n", strings.Repeat(" ", 9), maxLen-1)
	// Legend.
	for si, s := range series {
		fmt.Fprintf(&b, "%s%c %s\n", strings.Repeat(" ", 9), markers[si%len(markers)], s.Name)
	}
	for _, kv := range sortedHLines(opts.HLines) {
		fmt.Fprintf(&b, "%s- %s = %.2f\n", strings.Repeat(" ", 9), kv.name, kv.value)
	}
	return b.String()
}

type hline struct {
	name  string
	value float64
}

func sortedHLines(m map[string]float64) []hline {
	out := make([]hline, 0, len(m))
	for k, v := range m {
		out = append(out, hline{k, v})
	}
	for i := 1; i < len(out); i++ {
		for j := i; j > 0 && out[j].name < out[j-1].name; j-- {
			out[j], out[j-1] = out[j-1], out[j]
		}
	}
	return out
}
