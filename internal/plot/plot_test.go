package plot

import (
	"strings"
	"testing"
)

func TestRenderBasics(t *testing.T) {
	out := Render(Options{Title: "demo", Width: 40, Height: 8},
		Series{Name: "indeg=1", Values: []float64{10, 20, 30, 20, 10}})
	if !strings.Contains(out, "demo") {
		t.Error("missing title")
	}
	if !strings.Contains(out, "indeg=1") {
		t.Error("missing legend entry")
	}
	if !strings.Contains(out, "*") {
		t.Error("missing data markers")
	}
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	// title + 8 rows + axis + x-label + legend
	if len(lines) < 11 {
		t.Errorf("only %d lines rendered", len(lines))
	}
}

func TestRenderEmpty(t *testing.T) {
	out := Render(Options{Title: "empty"})
	if !strings.Contains(out, "(no data)") {
		t.Errorf("empty render = %q", out)
	}
}

func TestRenderHLines(t *testing.T) {
	out := Render(Options{
		Width: 40, Height: 10,
		HLines: map[string]float64{"max": 30, "min": 10},
	}, Series{Name: "m", Values: []float64{15, 20, 25}})
	if !strings.Contains(out, "max = 30.00") || !strings.Contains(out, "min = 10.00") {
		t.Error("missing hline legend")
	}
	if !strings.Contains(out, "----") {
		t.Error("missing rule line")
	}
}

func TestRenderMultiSeriesMarkers(t *testing.T) {
	out := Render(Options{Width: 30, Height: 6},
		Series{Name: "a", Values: []float64{1, 2, 3}},
		Series{Name: "b", Values: []float64{3, 2, 1}})
	if !strings.Contains(out, "*") || !strings.Contains(out, "o") {
		t.Error("each series should have a distinct marker")
	}
}

func TestRenderConstantSeries(t *testing.T) {
	// Degenerate Y range must not divide by zero.
	out := Render(Options{Width: 20, Height: 5},
		Series{Name: "flat", Values: []float64{5, 5, 5}})
	if !strings.Contains(out, "*") {
		t.Error("constant series rendered no markers")
	}
}

func TestRenderSingleSample(t *testing.T) {
	out := Render(Options{Width: 20, Height: 5},
		Series{Name: "one", Values: []float64{42}})
	if !strings.Contains(out, "*") {
		t.Error("single sample not rendered")
	}
}

func TestFixedYRangeClamps(t *testing.T) {
	// Values beyond the fixed range must clamp, not panic.
	out := Render(Options{Width: 20, Height: 5, YMin: 0, YMax: 10},
		Series{Name: "hot", Values: []float64{-5, 5, 50}})
	if !strings.Contains(out, "*") {
		t.Error("clamped series not rendered")
	}
}
