package heap

import (
	"testing"
	"testing/quick"

	"heapmd/internal/event"
)

func mustAlloc(t *testing.T, s *Sim, size uint64) uint64 {
	t.Helper()
	a, err := s.Alloc(size)
	if err != nil {
		t.Fatalf("Alloc(%d): %v", size, err)
	}
	return a
}

func TestAllocBasics(t *testing.T) {
	s := New()
	a := mustAlloc(t, s, 16)
	b := mustAlloc(t, s, 16)
	if a == b {
		t.Fatal("two live allocations share an address")
	}
	if a < Base || b < Base {
		t.Fatal("allocation below heap base")
	}
	if s.Live() != 2 {
		t.Fatalf("Live = %d, want 2", s.Live())
	}
	st := s.Stats()
	if st.LiveBytes != 32 || st.Allocs != 2 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestAllocZeroSize(t *testing.T) {
	s := New()
	if _, err := s.Alloc(0); err != ErrBadSize {
		t.Fatalf("Alloc(0) err = %v, want ErrBadSize", err)
	}
}

func TestAllocRoundsUpToWord(t *testing.T) {
	s := New()
	a := mustAlloc(t, s, 3)
	size, ok := s.SizeOf(a)
	if !ok || size != WordSize {
		t.Fatalf("SizeOf = (%d,%v), want (%d,true)", size, ok, WordSize)
	}
}

func TestFreeAndReuse(t *testing.T) {
	s := New()
	a := mustAlloc(t, s, 24)
	if err := s.Free(a); err != nil {
		t.Fatal(err)
	}
	if s.Live() != 0 {
		t.Fatalf("Live = %d after free", s.Live())
	}
	// The same size class should reuse the freed address.
	b := mustAlloc(t, s, 24)
	if b != a {
		t.Errorf("freed address not reused: got %#x, freed %#x", b, a)
	}
}

func TestDoubleFree(t *testing.T) {
	s := New()
	a := mustAlloc(t, s, 8)
	if err := s.Free(a); err != nil {
		t.Fatal(err)
	}
	if err := s.Free(a); err != ErrDoubleFree {
		t.Fatalf("double free err = %v, want ErrDoubleFree", err)
	}
}

func TestFreeInteriorPointer(t *testing.T) {
	s := New()
	a := mustAlloc(t, s, 32)
	if err := s.Free(a + 8); err != ErrInvalidFree {
		t.Fatalf("interior free err = %v, want ErrInvalidFree", err)
	}
}

func TestStoreLoadRoundTrip(t *testing.T) {
	s := New()
	a := mustAlloc(t, s, 32)
	for i := uint64(0); i < 4; i++ {
		if err := s.Store(a+i*8, 100+i); err != nil {
			t.Fatal(err)
		}
	}
	for i := uint64(0); i < 4; i++ {
		v, err := s.Load(a + i*8)
		if err != nil {
			t.Fatal(err)
		}
		if v != 100+i {
			t.Errorf("Load word %d = %d, want %d", i, v, 100+i)
		}
	}
}

func TestStoreMisaligned(t *testing.T) {
	s := New()
	a := mustAlloc(t, s, 16)
	if err := s.Store(a+3, 1); err != ErrMisaligned {
		t.Fatalf("misaligned store err = %v, want ErrMisaligned", err)
	}
	if _, err := s.Load(a + 5); err != ErrMisaligned {
		t.Fatalf("misaligned load err = %v, want ErrMisaligned", err)
	}
}

func TestWildStoreTolerated(t *testing.T) {
	// Stores through dangling pointers must be permitted: buggy
	// programs perform them, and the instrumentation must observe
	// them rather than crash.
	s := New()
	a := mustAlloc(t, s, 16)
	if err := s.Free(a); err != nil {
		t.Fatal(err)
	}
	if err := s.Store(a, 42); err != nil {
		t.Fatalf("wild store err = %v, want nil", err)
	}
	if s.Stats().WildStores != 1 {
		t.Errorf("WildStores = %d, want 1", s.Stats().WildStores)
	}
	if v, _ := s.Load(a); v != 0 {
		t.Errorf("wild load = %d, want 0", v)
	}
}

func TestDanglingAliasing(t *testing.T) {
	// After free + reallocation of the same range, a stale pointer
	// addresses the NEW object — the aliasing that underlies real
	// dangling-pointer bugs (paper Figure 12).
	s := New()
	a := mustAlloc(t, s, 16)
	if err := s.Free(a); err != nil {
		t.Fatal(err)
	}
	b := mustAlloc(t, s, 16)
	if b != a {
		t.Skip("allocator did not recycle the range")
	}
	if err := s.Store(a, 7); err != nil { // store through stale pointer
		t.Fatal(err)
	}
	if v, _ := s.Load(b); v != 7 {
		t.Errorf("new object did not observe aliased store: %d", v)
	}
}

func TestReallocGrowPreservesContents(t *testing.T) {
	s := New()
	a := mustAlloc(t, s, 16)
	if err := s.Store(a, 11); err != nil {
		t.Fatal(err)
	}
	if err := s.Store(a+8, 22); err != nil {
		t.Fatal(err)
	}
	b, err := s.Realloc(a, 64)
	if err != nil {
		t.Fatal(err)
	}
	if b == a {
		t.Fatal("grow realloc should move the object")
	}
	if v, _ := s.Load(b); v != 11 {
		t.Errorf("word 0 = %d, want 11", v)
	}
	if v, _ := s.Load(b + 8); v != 22 {
		t.Errorf("word 1 = %d, want 22", v)
	}
	// Old range is gone.
	if _, _, ok := s.Contains(a); ok {
		t.Error("old range still mapped after realloc move")
	}
}

func TestReallocShrinkInPlace(t *testing.T) {
	s := New()
	a := mustAlloc(t, s, 64)
	b, err := s.Realloc(a, 16)
	if err != nil {
		t.Fatal(err)
	}
	if b != a {
		t.Error("shrink realloc should not move")
	}
	if size, _ := s.SizeOf(a); size != 16 {
		t.Errorf("size after shrink = %d, want 16", size)
	}
}

func TestReallocOfDeadObject(t *testing.T) {
	s := New()
	a := mustAlloc(t, s, 8)
	if err := s.Free(a); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Realloc(a, 16); err != ErrNotAllocated {
		t.Fatalf("realloc dead err = %v, want ErrNotAllocated", err)
	}
}

func TestContainsInteriorPointer(t *testing.T) {
	s := New()
	a := mustAlloc(t, s, 40)
	base, size, ok := s.Contains(a + 24)
	if !ok || base != a || size != 40 {
		t.Fatalf("Contains(interior) = (%#x,%d,%v), want (%#x,40,true)", base, size, ok, a)
	}
	if _, _, ok := s.Contains(a + 40); ok {
		t.Error("Contains one-past-end should be false")
	}
}

func TestEventEmission(t *testing.T) {
	s := New()
	var c event.Counter
	s.Subscribe(&c)
	s.SetSite(7)

	a := mustAlloc(t, s, 16)
	if err := s.Store(a, 1); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Load(a); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Realloc(a, 32); err != nil {
		t.Fatal(err)
	}

	if c.Count(event.Alloc) != 1 || c.Count(event.Store) != 1 ||
		c.Count(event.Load) != 1 || c.Count(event.Realloc) != 1 {
		t.Errorf("event counts = %+v", c.ByType)
	}
}

func TestEventAttribution(t *testing.T) {
	s := New()
	var got []event.Event
	s.Subscribe(event.SinkFunc(func(e event.Event) { got = append(got, e) }))
	s.SetSite(42)
	a := mustAlloc(t, s, 8)
	if len(got) != 1 || got[0].Fn != 42 || got[0].Addr != a || got[0].Size != 8 {
		t.Fatalf("alloc event = %+v", got)
	}
	site, ok := s.SiteOf(a)
	if !ok || site != 42 {
		t.Errorf("SiteOf = (%d,%v), want (42,true)", site, ok)
	}
}

func TestStoreEventCarriesOldValue(t *testing.T) {
	s := New()
	var last event.Event
	s.Subscribe(event.SinkFunc(func(e event.Event) { last = e }))
	a := mustAlloc(t, s, 8)
	if err := s.Store(a, 5); err != nil {
		t.Fatal(err)
	}
	if last.Old != 0 || last.Value != 5 {
		t.Fatalf("first store event = %+v", last)
	}
	if err := s.Store(a, 9); err != nil {
		t.Fatal(err)
	}
	if last.Old != 5 || last.Value != 9 {
		t.Fatalf("second store event = %+v", last)
	}
}

func TestWalkLiveOrdered(t *testing.T) {
	s := New()
	for i := 0; i < 50; i++ {
		mustAlloc(t, s, 8*uint64(1+i%5))
	}
	prev := uint64(0)
	n := 0
	s.WalkLive(func(base, size uint64) bool {
		if base <= prev {
			t.Fatalf("WalkLive out of order: %#x after %#x", base, prev)
		}
		prev = base
		n++
		return true
	})
	if n != 50 {
		t.Errorf("WalkLive visited %d objects, want 50", n)
	}
}

func TestAddressSpaceExhaustion(t *testing.T) {
	s := New(WithAddressSpace(64))
	if _, err := s.Alloc(32); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Alloc(64); err != ErrOutOfSpace {
		t.Fatalf("err = %v, want ErrOutOfSpace", err)
	}
}

// op encodes a randomized allocator operation for the property test.
type op struct {
	Kind byte
	Size uint16
	Pick uint16
}

// TestAllocatorInvariants drives random alloc/free/store sequences and
// checks global invariants: live ranges never overlap, LiveBytes
// matches the sum of live object sizes, and Live() matches the count.
func TestAllocatorInvariants(t *testing.T) {
	f := func(ops []op) bool {
		s := New()
		var live []uint64
		for _, o := range ops {
			switch o.Kind % 3 {
			case 0:
				size := uint64(o.Size%256) + 1
				a, err := s.Alloc(size)
				if err != nil {
					return false
				}
				live = append(live, a)
			case 1:
				if len(live) == 0 {
					continue
				}
				i := int(o.Pick) % len(live)
				if err := s.Free(live[i]); err != nil {
					return false
				}
				live = append(live[:i], live[i+1:]...)
			case 2:
				if len(live) == 0 {
					continue
				}
				i := int(o.Pick) % len(live)
				if err := s.Store(live[i], uint64(o.Size)); err != nil {
					return false
				}
			}
		}
		if s.Live() != len(live) {
			return false
		}
		// Live ranges must be disjoint and account for LiveBytes.
		var total uint64
		prevEnd := uint64(0)
		okRanges := true
		s.WalkLive(func(base, size uint64) bool {
			if base < prevEnd {
				okRanges = false
				return false
			}
			prevEnd = base + size
			total += size
			return true
		})
		return okRanges && total == s.Stats().LiveBytes
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// TestAddrMapContaining cross-checks the treap's containing-object
// query against a brute-force scan.
func TestAddrMapContaining(t *testing.T) {
	f := func(sizes []uint8, probes []uint16) bool {
		s := New()
		type rng struct{ base, size uint64 }
		var ranges []rng
		for _, sz := range sizes {
			size := uint64(sz%64) + 8
			a, err := s.Alloc(size)
			if err != nil {
				return false
			}
			ranges = append(ranges, rng{a, roundUp(size)})
		}
		for _, p := range probes {
			addr := Base + uint64(p)*8
			base, _, ok := s.Contains(addr)
			// brute force
			var wantBase uint64
			var wantOK bool
			for _, r := range ranges {
				if addr >= r.base && addr < r.base+r.size {
					wantBase, wantOK = r.base, true
					break
				}
			}
			if ok != wantOK || (ok && base != wantBase) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func BenchmarkAllocFree(b *testing.B) {
	s := New()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		a, err := s.Alloc(32)
		if err != nil {
			b.Fatal(err)
		}
		if err := s.Free(a); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkStore(b *testing.B) {
	s := New()
	a, err := s.Alloc(4096)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := s.Store(a+uint64(i%512)*8, uint64(i)); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkContaining(b *testing.B) {
	s := New()
	var addrs []uint64
	for i := 0; i < 10000; i++ {
		a, err := s.Alloc(uint64(8 + i%128))
		if err != nil {
			b.Fatal(err)
		}
		addrs = append(addrs, a)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Contains(addrs[i%len(addrs)] + 8)
	}
}
