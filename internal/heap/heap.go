// Package heap implements the simulated process heap that plays the
// role of the instrumented x86 process in the paper.
//
// The paper's binary instrumenter exposes three things to HeapMD's
// execution logger: allocator activity (malloc/realloc/free with
// addresses and sizes), every instruction that writes to the heap (the
// written address and value), and — for the SWAT comparison — heap
// reads. Package heap reproduces that observable surface: Sim is a
// word-addressed allocator with a virtual address space whose every
// Alloc, Realloc, Free, Store and Load emits an event.Event to the
// registered sinks.
//
// The simulation is deliberately faithful in the respects that matter
// to heap-graph construction:
//
//   - Freed address ranges are recycled (size-class free lists), so a
//     stale pointer can end up referring to a different, newer object —
//     the aliasing that makes real dangling-pointer bugs subtle.
//   - Stores through dangling pointers are permitted (they emit events
//     and are visible to the logger), because buggy programs do exactly
//     that; only the workload harness decides whether that is a fault.
//   - Interior pointers (addresses strictly inside an object) resolve
//     to the containing object, as the paper's object-granularity
//     heap-graph requires.
package heap

import (
	"errors"
	"fmt"

	"heapmd/internal/event"
	"heapmd/internal/intervals"
)

// WordSize is the size in bytes of one heap word. The simulated
// machine is 64-bit, matching the pointer-sized granularity at which
// the paper's instrumenter observes heap writes.
const WordSize = 8

// Base is the lowest address the allocator hands out. It is far above
// the range of ordinary scalar values (counters, random keys, sizes)
// so that data words stored into the heap are never mistaken for
// pointers by the execution logger — the same role the high canonical
// user-space addresses play for a real 64-bit process.
const Base uint64 = 0x100_0000_0000

// Common error conditions surfaced by the simulator. Workloads under
// fault injection may trigger these deliberately; the harness decides
// whether they abort the run.
var (
	ErrDoubleFree   = errors.New("heap: double free")
	ErrInvalidFree  = errors.New("heap: free of address that is not an object base")
	ErrBadSize      = errors.New("heap: allocation size must be positive")
	ErrMisaligned   = errors.New("heap: misaligned word access")
	ErrOutOfSpace   = errors.New("heap: virtual address space exhausted")
	ErrNotAllocated = errors.New("heap: address does not belong to a live object")
)

// object is a live allocation.
type object struct {
	base  uint64
	size  uint64 // bytes
	words []uint64
	site  event.FnID // allocation site
	seq   uint64     // allocation sequence number (generation)
}

// Stats summarizes allocator activity.
type Stats struct {
	Allocs     uint64 // total successful allocations
	Frees      uint64 // total successful frees
	Reallocs   uint64 // total successful reallocs
	Stores     uint64
	Loads      uint64
	LiveBytes  uint64 // bytes in live objects
	PeakBytes  uint64 // high-water mark of LiveBytes
	LiveCount  int    // number of live objects
	WildStores uint64 // stores to addresses outside any live object
	WildLoads  uint64
}

// Sim is the simulated heap. It is not safe for concurrent use; the
// simulated program is single-threaded, as are the paper's
// instrumented runs.
type Sim struct {
	objects *intervals.Map[*object]
	free    map[uint64][]uint64 // size class (bytes) -> reusable bases
	next    uint64              // bump pointer
	limit   uint64              // end of address space
	seq     uint64              // allocation counter
	sinks   event.Multi
	stats   Stats
	site    event.FnID // current allocation-site attribution
}

// Option configures a Sim.
type Option func(*Sim)

// WithAddressSpace limits the simulated virtual address space to n
// bytes above Base. The default is 1<<40.
func WithAddressSpace(n uint64) Option {
	return func(s *Sim) { s.limit = Base + n }
}

// New creates an empty simulated heap.
func New(opts ...Option) *Sim {
	s := &Sim{
		objects: intervals.New[*object](),
		free:    make(map[uint64][]uint64),
		next:    Base,
		limit:   Base + (1 << 40),
	}
	for _, o := range opts {
		o(s)
	}
	return s
}

// Subscribe registers a sink to receive every heap event. Sinks are
// invoked in registration order. This is the moral equivalent of the
// paper's instrumentation: after Subscribe, nothing can happen to the
// heap without the sink seeing it.
func (s *Sim) Subscribe(sink event.Sink) { s.sinks = append(s.sinks, sink) }

// SetSite sets the allocation-site attribution used for subsequent
// Alloc events. The workload runtime keeps this synchronized with the
// top of the simulated call stack.
func (s *Sim) SetSite(fn event.FnID) { s.site = fn }

func (s *Sim) emit(e event.Event) {
	if len(s.sinks) > 0 {
		s.sinks.Emit(e)
	}
}

// roundUp rounds n up to a whole number of words.
func roundUp(n uint64) uint64 {
	return (n + WordSize - 1) &^ (WordSize - 1)
}

// Alloc allocates size bytes (rounded up to whole words) and returns
// the object's base address. Freed ranges of the same size class are
// reused before fresh address space is consumed, so addresses recycle
// as they do under a real allocator.
func (s *Sim) Alloc(size uint64) (uint64, error) {
	if size == 0 {
		return 0, ErrBadSize
	}
	size = roundUp(size)
	var base uint64
	if lst := s.free[size]; len(lst) > 0 {
		base = lst[len(lst)-1]
		s.free[size] = lst[:len(lst)-1]
	} else {
		if s.next+size > s.limit || s.next+size < s.next {
			return 0, ErrOutOfSpace
		}
		base = s.next
		s.next += size
	}
	s.seq++
	obj := &object{
		base:  base,
		size:  size,
		words: make([]uint64, size/WordSize),
		site:  s.site,
		seq:   s.seq,
	}
	s.objects.Insert(base, size, obj)
	s.stats.Allocs++
	s.stats.LiveCount++
	s.stats.LiveBytes += size
	if s.stats.LiveBytes > s.stats.PeakBytes {
		s.stats.PeakBytes = s.stats.LiveBytes
	}
	s.emit(event.Event{Type: event.Alloc, Fn: s.site, Addr: base, Size: size})
	return base, nil
}

// Free releases the object based at addr. Freeing an address that is
// not a live object base is an error (double free or wild free); the
// object's memory contents are discarded and its address range becomes
// reusable.
func (s *Sim) Free(addr uint64) error {
	obj, ok := s.objects.Get(addr)
	if !ok {
		if _, _, _, stab := s.objects.Stab(addr); stab {
			return ErrInvalidFree
		}
		return ErrDoubleFree
	}
	s.objects.Remove(addr)
	s.free[obj.size] = append(s.free[obj.size], addr)
	s.stats.Frees++
	s.stats.LiveCount--
	s.stats.LiveBytes -= obj.size
	s.emit(event.Event{Type: event.Free, Fn: s.site, Addr: addr, Size: obj.size})
	return nil
}

// Realloc resizes the object based at addr to newSize bytes, moving it
// to a fresh address if it grows, and returns the (possibly new) base.
// Word contents are preserved up to the smaller of the two sizes.
func (s *Sim) Realloc(addr uint64, newSize uint64) (uint64, error) {
	if newSize == 0 {
		return 0, ErrBadSize
	}
	obj, ok := s.objects.Get(addr)
	if !ok {
		return 0, ErrNotAllocated
	}
	newSize = roundUp(newSize)
	if newSize == obj.size {
		return addr, nil
	}
	// Shrink in place. The trailing bytes are abandoned rather than
	// returned to a free list (mirroring realloc implementations
	// that do not split blocks); the interval map must be re-keyed
	// so stabbing queries stop matching the abandoned tail.
	if newSize < obj.size {
		s.stats.LiveBytes -= obj.size - newSize
		obj.size = newSize
		obj.words = obj.words[:newSize/WordSize]
		s.objects.Remove(addr)
		s.objects.Insert(addr, newSize, obj)
		s.stats.Reallocs++
		s.emit(event.Event{Type: event.Realloc, Fn: s.site, Addr: addr, Value: addr, Size: newSize})
		return addr, nil
	}
	// Grow by moving: allocate fresh, copy, release old range.
	var base uint64
	if lst := s.free[newSize]; len(lst) > 0 {
		base = lst[len(lst)-1]
		s.free[newSize] = lst[:len(lst)-1]
	} else {
		if s.next+newSize > s.limit || s.next+newSize < s.next {
			return 0, ErrOutOfSpace
		}
		base = s.next
		s.next += newSize
	}
	words := make([]uint64, newSize/WordSize)
	copy(words, obj.words)
	s.objects.Remove(addr)
	s.free[obj.size] = append(s.free[obj.size], addr)
	s.stats.LiveBytes += newSize - obj.size
	if s.stats.LiveBytes > s.stats.PeakBytes {
		s.stats.PeakBytes = s.stats.LiveBytes
	}
	s.seq++
	moved := &object{base: base, size: newSize, words: words, site: obj.site, seq: s.seq}
	s.objects.Insert(base, newSize, moved)
	s.stats.Reallocs++
	s.emit(event.Event{Type: event.Realloc, Fn: s.site, Addr: addr, Value: base, Size: newSize})
	return base, nil
}

// Store writes value into the word at addr. Stores to addresses that
// do not belong to any live object ("wild" stores — e.g. through a
// dangling pointer after the range was freed and not yet recycled) are
// tolerated and counted but have no backing storage; the event is still
// emitted because the paper's instrumenter observes every write
// instruction regardless of where it lands.
func (s *Sim) Store(addr, value uint64) error {
	if addr%WordSize != 0 {
		return ErrMisaligned
	}
	obj := s.containing(addr)
	var old uint64
	if obj != nil {
		idx := (addr - obj.base) / WordSize
		old = obj.words[idx]
		obj.words[idx] = value
	} else {
		s.stats.WildStores++
	}
	s.stats.Stores++
	s.emit(event.Event{Type: event.Store, Fn: s.site, Addr: addr, Value: value, Old: old})
	return nil
}

// Load reads the word at addr. Loads from wild addresses return 0.
func (s *Sim) Load(addr uint64) (uint64, error) {
	if addr%WordSize != 0 {
		return 0, ErrMisaligned
	}
	obj := s.containing(addr)
	var v uint64
	if obj != nil {
		v = obj.words[(addr-obj.base)/WordSize]
	} else {
		s.stats.WildLoads++
	}
	s.stats.Loads++
	s.emit(event.Event{Type: event.Load, Fn: s.site, Addr: addr, Value: v})
	return v, nil
}

// Peek reads a word without emitting a Load event or touching access
// statistics; harness and verification code uses it to inspect heap
// state out of band.
func (s *Sim) Peek(addr uint64) (uint64, bool) {
	obj := s.containing(addr)
	if obj == nil {
		return 0, false
	}
	return obj.words[(addr-obj.base)/WordSize], true
}

// Contains reports whether addr lies inside a live object and, if so,
// returns the object's base address and size.
func (s *Sim) Contains(addr uint64) (base, size uint64, ok bool) {
	obj := s.containing(addr)
	if obj == nil {
		return 0, 0, false
	}
	return obj.base, obj.size, true
}

// containing resolves addr to its containing live object, if any.
func (s *Sim) containing(addr uint64) *object {
	_, _, obj, ok := s.objects.Stab(addr)
	if !ok {
		return nil
	}
	return obj
}

// SizeOf returns the size of the live object based exactly at addr.
func (s *Sim) SizeOf(addr uint64) (uint64, bool) {
	obj, ok := s.objects.Get(addr)
	if !ok {
		return 0, false
	}
	return obj.size, true
}

// SiteOf returns the allocation site recorded for the live object
// based at addr.
func (s *Sim) SiteOf(addr uint64) (event.FnID, bool) {
	obj, ok := s.objects.Get(addr)
	if !ok {
		return event.NoFn, false
	}
	return obj.site, true
}

// Live returns the number of live objects.
func (s *Sim) Live() int { return s.objects.Len() }

// Stats returns a copy of the allocator statistics.
func (s *Sim) Stats() Stats { return s.stats }

// WalkLive visits each live object in ascending address order, calling
// fn with the base address and size; iteration stops if fn returns
// false.
func (s *Sim) WalkLive(fn func(base, size uint64) bool) {
	s.objects.Walk(func(base, size uint64, _ *object) bool {
		return fn(base, size)
	})
}

// String implements fmt.Stringer with a one-line allocator summary.
func (s *Sim) String() string {
	return fmt.Sprintf("heap{live=%d bytes=%d peak=%d allocs=%d frees=%d}",
		s.stats.LiveCount, s.stats.LiveBytes, s.stats.PeakBytes, s.stats.Allocs, s.stats.Frees)
}
