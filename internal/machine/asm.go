package machine

// The assembler: a small text format so test programs and demos can
// be written as "binaries" rather than Go code. Syntax:
//
//	; line comment
//	fn main
//	  loadi r1, 16
//	  call build
//	  halt
//	fn build
//	loop:
//	  alloc r2, r1       ; r2 = alloc(r1 bytes)
//	  store r2, 0, r3    ; mem[r2+0] = r3
//	  load  r4, r2, 1    ; r4 = mem[r2+1 word]
//	  rnd   r5, r1
//	  cmplt r6, r5, r1
//	  jnz   r6, loop
//	  ret
//
// Operands: rN registers, decimal/hex immediates, label or function
// names. Jump targets are labels within the same function; call
// targets are function names. ENTER/LEAVE cannot be written in
// source — the instrumenter owns them, as Vulcan owns the probes it
// injects into x86 binaries.

import (
	"fmt"
	"strconv"
	"strings"

	"heapmd/internal/event"
)

// Assemble parses assembly text into a Program.
func Assemble(src string) (*Program, error) {
	type pendingJump struct {
		fnIdx int
		inIdx int
		label string
		// fieldB selects Instr.B (conditional jumps) instead of
		// Instr.A as the target field. Targets are resolved by
		// index because the code slice reallocates as it grows.
		fieldB bool
	}
	type pendingCall struct {
		fnIdx int
		inIdx int
		name  string
	}
	prog := &Program{}
	var jumps []pendingJump
	var calls []pendingCall
	labels := map[string]int{} // per current function

	cur := -1
	flushLabels := func() error {
		if len(labels) > 0 {
			labels = map[string]int{}
		}
		return nil
	}
	lines := strings.Split(src, "\n")
	// First pass: build functions, record label positions and
	// pending jump/call targets.
	resolveLabel := func(fnIdx int, lbls map[string]int, j pendingJump) error {
		t, ok := lbls[j.label]
		if !ok {
			return fmt.Errorf("machine: undefined label %q in %s", j.label, prog.Fns[fnIdx].Name)
		}
		if j.fieldB {
			prog.Fns[fnIdx].Code[j.inIdx].B = t
		} else {
			prog.Fns[fnIdx].Code[j.inIdx].A = t
		}
		return nil
	}
	var fnJumps []pendingJump
	endFn := func() error {
		for _, j := range fnJumps {
			if err := resolveLabel(j.fnIdx, labels, j); err != nil {
				return err
			}
		}
		fnJumps = nil
		return flushLabels()
	}

	for lineNo, raw := range lines {
		line := raw
		if i := strings.IndexByte(line, ';'); i >= 0 {
			line = line[:i]
		}
		line = strings.TrimSpace(line)
		if line == "" {
			continue
		}
		errf := func(format string, args ...any) error {
			return fmt.Errorf("machine: line %d: %s", lineNo+1, fmt.Sprintf(format, args...))
		}

		if name, ok := strings.CutPrefix(line, "fn "); ok {
			if cur >= 0 {
				if err := endFn(); err != nil {
					return nil, err
				}
			}
			name = strings.TrimSpace(name)
			if name == "" {
				return nil, errf("missing function name")
			}
			if prog.FnIndex(name) >= 0 {
				return nil, errf("duplicate function %q", name)
			}
			prog.Fns = append(prog.Fns, Fn{Name: name})
			cur = len(prog.Fns) - 1
			continue
		}
		if cur < 0 {
			return nil, errf("instruction outside a function")
		}
		if lbl, ok := strings.CutSuffix(line, ":"); ok {
			lbl = strings.TrimSpace(lbl)
			if _, dup := labels[lbl]; dup {
				return nil, errf("duplicate label %q", lbl)
			}
			labels[lbl] = len(prog.Fns[cur].Code)
			continue
		}

		fields := strings.Fields(strings.ReplaceAll(line, ",", " "))
		mn := fields[0]
		args := fields[1:]
		reg := func(i int) (int, error) {
			if i >= len(args) {
				return 0, errf("%s: missing operand %d", mn, i+1)
			}
			a := args[i]
			if len(a) < 2 || a[0] != 'r' {
				return 0, errf("%s: operand %d (%q) is not a register", mn, i+1, a)
			}
			n, err := strconv.Atoi(a[1:])
			if err != nil || n < 0 || n >= NumRegs {
				return 0, errf("%s: bad register %q", mn, a)
			}
			return n, nil
		}
		imm := func(i int) (uint64, error) {
			if i >= len(args) {
				return 0, errf("%s: missing operand %d", mn, i+1)
			}
			n, err := strconv.ParseUint(args[i], 0, 64)
			if err != nil {
				return 0, errf("%s: bad immediate %q", mn, args[i])
			}
			return n, nil
		}
		smallImm := func(i int) (int, error) {
			n, err := imm(i)
			return int(n), err
		}
		emit := func(in Instr) { prog.Fns[cur].Code = append(prog.Fns[cur].Code, in) }

		var err error
		var in Instr
		switch mn {
		case "nop":
			in = Instr{Op: NOP}
		case "halt":
			in = Instr{Op: HALT}
		case "ret":
			in = Instr{Op: RET}
		case "loadi":
			in.Op = LOADI
			if in.A, err = reg(0); err != nil {
				return nil, err
			}
			if in.Imm, err = imm(1); err != nil {
				return nil, err
			}
		case "mov":
			in.Op = MOV
			if in.A, err = reg(0); err != nil {
				return nil, err
			}
			if in.B, err = reg(1); err != nil {
				return nil, err
			}
		case "add", "sub", "mul", "div", "mod", "cmplt", "cmpeq":
			in.Op = map[string]Op{"add": ADD, "sub": SUB, "mul": MUL, "div": DIV,
				"mod": MOD, "cmplt": CMPLT, "cmpeq": CMPEQ}[mn]
			if in.A, err = reg(0); err != nil {
				return nil, err
			}
			if in.B, err = reg(1); err != nil {
				return nil, err
			}
			if in.C, err = reg(2); err != nil {
				return nil, err
			}
		case "rnd":
			in.Op = RND
			if in.A, err = reg(0); err != nil {
				return nil, err
			}
			if in.B, err = reg(1); err != nil {
				return nil, err
			}
		case "alloc":
			in.Op = ALLOC
			if in.A, err = reg(0); err != nil {
				return nil, err
			}
			if in.B, err = reg(1); err != nil {
				return nil, err
			}
		case "free":
			in.Op = FREE
			if in.A, err = reg(0); err != nil {
				return nil, err
			}
		case "load":
			in.Op = LOAD
			if in.A, err = reg(0); err != nil {
				return nil, err
			}
			if in.B, err = reg(1); err != nil {
				return nil, err
			}
			if in.C, err = smallImm(2); err != nil {
				return nil, err
			}
		case "store":
			in.Op = STORE
			if in.A, err = reg(0); err != nil {
				return nil, err
			}
			if in.B, err = smallImm(1); err != nil {
				return nil, err
			}
			if in.C, err = reg(2); err != nil {
				return nil, err
			}
		case "jmp":
			if len(args) != 1 {
				return nil, errf("jmp takes one label")
			}
			in.Op = JMP
			emit(in)
			fnJumps = append(fnJumps, pendingJump{cur, len(prog.Fns[cur].Code) - 1, args[0], false})
			continue
		case "jnz", "jz":
			in.Op = JNZ
			if mn == "jz" {
				in.Op = JZ
			}
			if in.A, err = reg(0); err != nil {
				return nil, err
			}
			if len(args) != 2 {
				return nil, errf("%s takes a register and a label", mn)
			}
			emit(in)
			fnJumps = append(fnJumps, pendingJump{cur, len(prog.Fns[cur].Code) - 1, args[1], true})
			continue
		case "call":
			if len(args) != 1 {
				return nil, errf("call takes a function name")
			}
			in.Op = CALL
			emit(in)
			calls = append(calls, pendingCall{cur, len(prog.Fns[cur].Code) - 1, args[0]})
			continue
		case "enter", "leave":
			return nil, errf("%s is an instrumentation hook; the instrumenter inserts it", mn)
		default:
			return nil, errf("unknown mnemonic %q", mn)
		}
		emit(in)
		_ = jumps
	}
	if cur >= 0 {
		if err := endFn(); err != nil {
			return nil, err
		}
	}
	if len(prog.Fns) == 0 {
		return nil, ErrNoProgram
	}
	// Resolve calls across functions.
	for _, c := range calls {
		idx := prog.FnIndex(c.name)
		if idx < 0 {
			return nil, fmt.Errorf("machine: call to undefined function %q", c.name)
		}
		prog.Fns[c.fnIdx].Code[c.inIdx].A = idx
	}
	return prog, nil
}

// Disassemble renders a program back to readable assembly, including
// the ENTER/LEAVE hooks an instrumenter may have inserted (labelled
// with their resolved names when a symbol table is supplied). Jump
// targets print as absolute instruction indices.
func Disassemble(p *Program, sym *event.Symtab) string {
	var b strings.Builder
	for _, fn := range p.Fns {
		fmt.Fprintf(&b, "fn %s\n", fn.Name)
		for i, in := range fn.Code {
			fmt.Fprintf(&b, "%4d  ", i)
			switch in.Op {
			case LOADI:
				fmt.Fprintf(&b, "loadi r%d, %d", in.A, in.Imm)
			case MOV:
				fmt.Fprintf(&b, "mov r%d, r%d", in.A, in.B)
			case ADD, SUB, MUL, DIV, MOD, CMPLT, CMPEQ:
				fmt.Fprintf(&b, "%s r%d, r%d, r%d", in.Op, in.A, in.B, in.C)
			case RND:
				fmt.Fprintf(&b, "rnd r%d, r%d", in.A, in.B)
			case JMP:
				fmt.Fprintf(&b, "jmp -> %d", in.A)
			case JNZ, JZ:
				fmt.Fprintf(&b, "%s r%d -> %d", in.Op, in.A, in.B)
			case CALL:
				name := "?"
				if in.A >= 0 && in.A < len(p.Fns) {
					name = p.Fns[in.A].Name
				}
				fmt.Fprintf(&b, "call %s", name)
			case ALLOC:
				fmt.Fprintf(&b, "alloc r%d, r%d", in.A, in.B)
			case FREE:
				fmt.Fprintf(&b, "free r%d", in.A)
			case LOAD:
				fmt.Fprintf(&b, "load r%d, r%d, %d", in.A, in.B, in.C)
			case STORE:
				fmt.Fprintf(&b, "store r%d, %d, r%d", in.A, in.B, in.C)
			case ENTER:
				name := fmt.Sprintf("#%d", in.Imm)
				if sym != nil {
					name = sym.Name(event.FnID(in.Imm))
				}
				fmt.Fprintf(&b, "enter %s", name)
			default:
				b.WriteString(in.Op.String())
			}
			b.WriteByte('\n')
		}
	}
	return b.String()
}
