package machine

import (
	"errors"
	"strings"
	"testing"

	"heapmd/internal/event"
)

func mustAssemble(t *testing.T, src string) *Program {
	t.Helper()
	p, err := Assemble(src)
	if err != nil {
		t.Fatalf("assemble: %v", err)
	}
	return p
}

func run(t *testing.T, src string, opts ...Option) *VM {
	t.Helper()
	p := mustAssemble(t, src)
	vm := New(p, event.NewSymtab(), opts...)
	if err := vm.Run(); err != nil {
		t.Fatalf("run: %v", err)
	}
	return vm
}

func TestArithmetic(t *testing.T) {
	vm := run(t, `
fn main
  loadi r1, 6
  loadi r2, 7
  mul r3, r1, r2
  loadi r4, 4
  div r5, r3, r4   ; 42/4 = 10
  mod r6, r3, r4   ; 42%4 = 2
  sub r7, r1, r2   ; wraps
  halt
`)
	if vm.Reg(3) != 42 || vm.Reg(5) != 10 || vm.Reg(6) != 2 {
		t.Errorf("regs: r3=%d r5=%d r6=%d", vm.Reg(3), vm.Reg(5), vm.Reg(6))
	}
	if vm.Reg(7) != ^uint64(0) {
		t.Errorf("sub underflow should wrap: %d", vm.Reg(7))
	}
}

func TestCompareAndBranch(t *testing.T) {
	// Sum 1..10 with a loop.
	vm := run(t, `
fn main
  loadi r1, 0    ; sum
  loadi r2, 1    ; i
  loadi r3, 11   ; bound
loop:
  add r1, r1, r2
  loadi r4, 1
  add r2, r2, r4
  cmplt r5, r2, r3
  jnz r5, loop
  halt
`)
	if vm.Reg(1) != 55 {
		t.Errorf("sum = %d, want 55", vm.Reg(1))
	}
}

func TestCallRet(t *testing.T) {
	vm := run(t, `
fn main
  loadi r1, 5
  call double
  call double
  halt
fn double
  add r1, r1, r1
  ret
`)
	if vm.Reg(1) != 20 {
		t.Errorf("r1 = %d, want 20", vm.Reg(1))
	}
}

func TestHeapOps(t *testing.T) {
	vm := run(t, `
fn main
  loadi r1, 24
  alloc r2, r1       ; 3-word object
  loadi r3, 99
  store r2, 1, r3
  load r4, r2, 1
  free r2
  halt
`)
	if vm.Reg(4) != 99 {
		t.Errorf("load = %d, want 99", vm.Reg(4))
	}
	if vm.Heap().Live() != 0 {
		t.Errorf("leaked %d objects", vm.Heap().Live())
	}
}

func TestDoubleFreeSurfacesAsError(t *testing.T) {
	p := mustAssemble(t, `
fn main
  loadi r1, 8
  alloc r2, r1
  free r2
  free r2
  halt
`)
	vm := New(p, event.NewSymtab())
	err := vm.Run()
	if err == nil || !strings.Contains(err.Error(), "double free") {
		t.Fatalf("err = %v, want double free", err)
	}
}

func TestDivByZero(t *testing.T) {
	p := mustAssemble(t, `
fn main
  loadi r1, 1
  loadi r2, 0
  div r3, r1, r2
`)
	if err := New(p, event.NewSymtab()).Run(); !errors.Is(err, ErrDivideByZero) {
		t.Fatalf("err = %v", err)
	}
}

func TestStepBudget(t *testing.T) {
	p := mustAssemble(t, `
fn main
loop:
  jmp loop
`)
	err := New(p, event.NewSymtab(), WithStepBudget(1000)).Run()
	if !errors.Is(err, ErrStepBudget) {
		t.Fatalf("err = %v, want step budget", err)
	}
}

func TestRndDeterministic(t *testing.T) {
	src := `
fn main
  loadi r1, 1000
  rnd r2, r1
  rnd r3, r1
  halt
`
	a := run(t, src, WithSeed(7))
	b := run(t, src, WithSeed(7))
	c := run(t, src, WithSeed(8))
	if a.Reg(2) != b.Reg(2) || a.Reg(3) != b.Reg(3) {
		t.Error("same seed diverged")
	}
	if a.Reg(2) == c.Reg(2) && a.Reg(3) == c.Reg(3) {
		t.Error("different seeds produced identical stream")
	}
	if a.Reg(2) >= 1000 {
		t.Errorf("rnd out of range: %d", a.Reg(2))
	}
}

func TestFallThroughEndActsAsRet(t *testing.T) {
	vm := run(t, `
fn main
  loadi r1, 1
  call f
  halt
fn f
  loadi r1, 2
`)
	if vm.Reg(1) != 2 {
		t.Errorf("r1 = %d", vm.Reg(1))
	}
}

func TestAssembleErrors(t *testing.T) {
	cases := map[string]string{
		"no function":     "loadi r1, 1",
		"bad register":    "fn main\n loadi r99, 1",
		"bad mnemonic":    "fn main\n frobnicate r1",
		"undefined label": "fn main\n jmp nowhere",
		"undefined fn":    "fn main\n call missing",
		"duplicate fn":    "fn main\n ret\nfn main\n ret",
		"duplicate label": "fn main\nx:\nx:\n ret",
		"hook in source":  "fn main\n enter",
		"missing operand": "fn main\n add r1, r2",
		"empty program":   "; nothing",
		"bad immediate":   "fn main\n loadi r1, banana",
	}
	for name, src := range cases {
		t.Run(name, func(t *testing.T) {
			if _, err := Assemble(src); err == nil {
				t.Errorf("assembled invalid program %q", src)
			}
		})
	}
}

func TestAssembleHexAndComments(t *testing.T) {
	vm := run(t, `
; leading comment
fn main
  loadi r1, 0x10   ; hex immediate
  halt
`)
	if vm.Reg(1) != 16 {
		t.Errorf("r1 = %d", vm.Reg(1))
	}
}

func TestEventsWithSink(t *testing.T) {
	p := mustAssemble(t, `
fn main
  loadi r1, 16
  alloc r2, r1
  loadi r3, 5
  store r2, 0, r3
  free r2
  halt
`)
	var c event.Counter
	vm := New(p, event.NewSymtab(), WithSink(&c))
	if err := vm.Run(); err != nil {
		t.Fatal(err)
	}
	if c.Count(event.Alloc) != 1 || c.Count(event.Store) != 1 || c.Count(event.Free) != 1 {
		t.Errorf("event counts: %+v", c.ByType)
	}
	// Source programs carry no hooks: no Enter/Leave events.
	if c.Count(event.Enter) != 0 || c.Count(event.Leave) != 0 {
		t.Error("uninstrumented program emitted call hooks")
	}
}

func TestBadFunctionIndex(t *testing.T) {
	p := &Program{Fns: []Fn{{Name: "main", Code: []Instr{{Op: CALL, A: 9}}}}}
	if err := New(p, event.NewSymtab()).Run(); !errors.Is(err, ErrBadFunction) {
		t.Fatalf("err = %v, want ErrBadFunction", err)
	}
}

func TestBadJumpTarget(t *testing.T) {
	p := &Program{Fns: []Fn{{Name: "main", Code: []Instr{{Op: JMP, A: -1}}}}}
	if err := New(p, event.NewSymtab()).Run(); !errors.Is(err, ErrBadJump) {
		t.Fatalf("err = %v, want ErrBadJump", err)
	}
	p = &Program{Fns: []Fn{{Name: "main", Code: []Instr{{Op: JNZ, A: 0, B: 99}, {Op: LOADI, A: 0, Imm: 1}}}}}
	// r0 is zero so JNZ not taken; loop back via raw program to hit
	// the taken path with a bad target:
	p.Fns[0].Code = []Instr{{Op: LOADI, A: 0, Imm: 1}, {Op: JNZ, A: 0, B: 99}}
	if err := New(p, event.NewSymtab()).Run(); !errors.Is(err, ErrBadJump) {
		t.Fatalf("taken-branch err = %v, want ErrBadJump", err)
	}
}

func TestBadOpcode(t *testing.T) {
	p := &Program{Fns: []Fn{{Name: "main", Code: []Instr{{Op: Op(200)}}}}}
	if err := New(p, event.NewSymtab()).Run(); !errors.Is(err, ErrBadOpcode) {
		t.Fatalf("err = %v, want ErrBadOpcode", err)
	}
}

func TestBadRegisterInRawProgram(t *testing.T) {
	p := &Program{Fns: []Fn{{Name: "main", Code: []Instr{{Op: MOV, A: 99, B: 0}}}}}
	if err := New(p, event.NewSymtab()).Run(); !errors.Is(err, ErrBadRegister) {
		t.Fatalf("err = %v, want ErrBadRegister", err)
	}
}

func TestEmptyProgram(t *testing.T) {
	if err := New(&Program{}, event.NewSymtab()).Run(); !errors.Is(err, ErrNoProgram) {
		t.Fatalf("err = %v, want ErrNoProgram", err)
	}
}

func TestWithRegBounds(t *testing.T) {
	p := mustAssemble(t, "fn main\n halt")
	vm := New(p, event.NewSymtab(), WithReg(3, 7), WithReg(-1, 9), WithReg(99, 9))
	if err := vm.Run(); err != nil {
		t.Fatal(err)
	}
	if vm.Reg(3) != 7 {
		t.Errorf("r3 = %d, want 7", vm.Reg(3))
	}
	if vm.Reg(-1) != 0 || vm.Reg(99) != 0 {
		t.Error("out-of-range Reg reads should be 0")
	}
}

func TestStepsCounted(t *testing.T) {
	vm := run(t, "fn main\n nop\n nop\n halt")
	if vm.Steps() != 3 {
		t.Errorf("Steps = %d, want 3", vm.Steps())
	}
}

func TestModByZero(t *testing.T) {
	p := mustAssemble(t, "fn main\n loadi r1, 5\n loadi r2, 0\n mod r3, r1, r2")
	if err := New(p, event.NewSymtab()).Run(); !errors.Is(err, ErrDivideByZero) {
		t.Fatalf("err = %v", err)
	}
}

func TestRndZeroModulus(t *testing.T) {
	vm := run(t, "fn main\n loadi r1, 0\n rnd r2, r1\n halt")
	if vm.Reg(2) != 0 {
		t.Errorf("rnd with zero modulus = %d, want 0", vm.Reg(2))
	}
}

func TestCmpEq(t *testing.T) {
	vm := run(t, `
fn main
  loadi r1, 5
  loadi r2, 5
  cmpeq r3, r1, r2
  loadi r4, 6
  cmpeq r5, r1, r4
  halt
`)
	if vm.Reg(3) != 1 || vm.Reg(5) != 0 {
		t.Errorf("cmpeq: r3=%d r5=%d", vm.Reg(3), vm.Reg(5))
	}
}

func TestOpString(t *testing.T) {
	if ALLOC.String() != "alloc" || ENTER.String() != "enter" {
		t.Error("op names wrong")
	}
	if !strings.Contains(Op(201).String(), "201") {
		t.Error("unknown op should embed number")
	}
}

func TestFnIndex(t *testing.T) {
	p := mustAssemble(t, "fn main\n halt\nfn other\n ret")
	if p.FnIndex("other") != 1 || p.FnIndex("main") != 0 || p.FnIndex("x") != -1 {
		t.Error("FnIndex wrong")
	}
}

func TestDisassembleRoundTripMnemonics(t *testing.T) {
	src := `
fn main
  loadi r1, 16
  alloc r2, r1
  loadi r3, 7
  store r2, 0, r3
  load r4, r2, 0
  mov r5, r4
  add r6, r5, r4
  cmplt r7, r6, r1
  rnd r8, r1
  jnz r7, out
  jmp out
out:
  call helper
  free r2
  halt
fn helper
  ret
`
	p := mustAssemble(t, src)
	out := Disassemble(p, nil)
	for _, want := range []string{"fn main", "fn helper", "loadi r1, 16",
		"alloc r2, r1", "store r2, 0, r3", "load r4, r2, 0", "call helper",
		"jnz r7", "free r2", "halt", "ret"} {
		if !strings.Contains(out, want) {
			t.Errorf("disassembly missing %q:\n%s", want, out)
		}
	}
}
