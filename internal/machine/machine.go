// Package machine implements a small register virtual machine whose
// programs allocate and manipulate objects on the simulated heap.
//
// It exists to reproduce the paper's deployment model faithfully:
// HeapMD works on x86 *binaries*, with a binary transformation tool
// (Vulcan) inserting the instrumentation that exposes allocator
// activity and function boundaries. Here, machine code is the binary:
// an uninstrumented program runs silently (its heap activity happens,
// but nothing reports function entries or allocation sites), and
// package instrument rewrites the code — without source knowledge —
// to insert the ENTER/LEAVE hooks HeapMD samples at.
//
// The ISA is deliberately minimal: 16 word registers, arithmetic,
// compare-and-branch, call/ret, and the four heap instructions
// (ALLOC, FREE, LOAD, STORE) whose traffic builds the heap-graph.
package machine

import (
	"errors"
	"fmt"

	"heapmd/internal/event"
	"heapmd/internal/heap"
)

// Op is an instruction opcode.
type Op uint8

// The instruction set.
const (
	// NOP does nothing.
	NOP Op = iota
	// LOADI rd, imm: rd = imm.
	LOADI
	// MOV rd, ra: rd = ra.
	MOV
	// ADD rd, ra, rb: rd = ra + rb. SUB/MUL/DIV/MOD likewise; DIV
	// and MOD by zero fault the program.
	ADD
	SUB
	MUL
	DIV
	MOD
	// CMPLT rd, ra, rb: rd = 1 if ra < rb else 0. CMPEQ likewise
	// for equality.
	CMPLT
	CMPEQ
	// JMP target: jump to instruction index within the function.
	JMP
	// JNZ ra, target: jump if ra != 0. JZ jumps if ra == 0.
	JNZ
	JZ
	// CALL fn: push the return site and enter function index fn.
	// Arguments and results pass through registers by convention.
	CALL
	// RET returns to the caller (or halts when the entry frame
	// returns).
	RET
	// ALLOC rd, ra: allocate ra bytes, rd = base address.
	ALLOC
	// FREE ra: free the object based at ra.
	FREE
	// LOAD rd, ra, off: rd = mem[ra + off] (off in words).
	LOAD
	// STORE ra, off, rb: mem[ra + off] = rb.
	STORE
	// RND rd, ra: rd = deterministic pseudo-random value in [0, ra).
	RND
	// HALT stops the program.
	HALT

	// ENTER and LEAVE are instrumentation hooks: they do not occur
	// in source programs, the instrumenter inserts them. ENTER's A
	// field carries the interned function name.
	ENTER
	LEAVE
)

var opNames = map[Op]string{
	NOP: "nop", LOADI: "loadi", MOV: "mov", ADD: "add", SUB: "sub",
	MUL: "mul", DIV: "div", MOD: "mod", CMPLT: "cmplt", CMPEQ: "cmpeq",
	JMP: "jmp", JNZ: "jnz", JZ: "jz", CALL: "call", RET: "ret",
	ALLOC: "alloc", FREE: "free", LOAD: "load", STORE: "store",
	RND: "rnd", HALT: "halt", ENTER: "enter", LEAVE: "leave",
}

func (o Op) String() string {
	if n, ok := opNames[o]; ok {
		return n
	}
	return fmt.Sprintf("op(%d)", uint8(o))
}

// NumRegs is the register file size.
const NumRegs = 16

// Instr is one instruction. A, B, C are register indices or, for
// control flow, targets; Imm carries immediates (LOADI) and interned
// names (ENTER).
type Instr struct {
	Op  Op
	A   int
	B   int
	C   int
	Imm uint64
}

// Fn is one function's code.
type Fn struct {
	Name string
	Code []Instr
}

// Program is a compiled program: function 0 is the entry point.
type Program struct {
	Fns []Fn
}

// FnIndex returns the index of the named function, or -1.
func (p *Program) FnIndex(name string) int {
	for i, f := range p.Fns {
		if f.Name == name {
			return i
		}
	}
	return -1
}

// Execution errors.
var (
	ErrNoProgram     = errors.New("machine: empty program")
	ErrBadRegister   = errors.New("machine: register index out of range")
	ErrBadFunction   = errors.New("machine: call to unknown function")
	ErrBadJump       = errors.New("machine: jump target out of range")
	ErrDivideByZero  = errors.New("machine: divide by zero")
	ErrStepBudget    = errors.New("machine: step budget exhausted")
	ErrStackOverflow = errors.New("machine: call stack overflow")
	ErrBadOpcode     = errors.New("machine: undefined opcode")
)

// VM executes a Program against a simulated heap.
type VM struct {
	prog  *Program
	heap  *heap.Sim
	sinks event.Multi
	sym   *event.Symtab

	regs  [NumRegs]uint64
	rng   uint64
	steps uint64
	limit uint64

	stack []frame
}

type frame struct {
	fn int
	pc int
}

// Option configures a VM.
type Option func(*VM)

// WithStepBudget bounds execution to n instructions (default 10M);
// runaway loops fail with ErrStepBudget instead of hanging.
func WithStepBudget(n uint64) Option {
	return func(v *VM) { v.limit = n }
}

// WithSeed sets the RND instruction's deterministic stream.
func WithSeed(seed uint64) Option {
	return func(v *VM) { v.rng = seed | 1 }
}

// WithReg presets a register before execution — the VM's argv: how a
// harness passes input parameters (sizes, mode flags) to a binary.
func WithReg(i int, v uint64) Option {
	return func(vm *VM) {
		if i >= 0 && i < NumRegs {
			vm.regs[i] = v
		}
	}
}

// WithSink subscribes a sink to the VM's instrumentation events
// (ENTER/LEAVE hooks) and the heap's memory events.
func WithSink(s event.Sink) Option {
	return func(v *VM) {
		v.sinks = append(v.sinks, s)
		v.heap.Subscribe(s)
	}
}

// New creates a VM for the program with a fresh heap. The symbol
// table resolves the interned names carried by ENTER hooks (the
// instrumenter produces both).
func New(prog *Program, sym *event.Symtab, opts ...Option) *VM {
	v := &VM{
		prog:  prog,
		heap:  heap.New(),
		sym:   sym,
		rng:   0x2545F4914F6CDD1D,
		limit: 10_000_000,
	}
	for _, o := range opts {
		o(v)
	}
	return v
}

// Heap exposes the VM's heap for post-run inspection.
func (v *VM) Heap() *heap.Sim { return v.heap }

// Reg returns register i's value after execution.
func (v *VM) Reg(i int) uint64 {
	if i < 0 || i >= NumRegs {
		return 0
	}
	return v.regs[i]
}

// Steps returns the number of instructions executed.
func (v *VM) Steps() uint64 { return v.steps }

func (v *VM) next() uint64 {
	x := v.rng
	x ^= x >> 12
	x ^= x << 25
	x ^= x >> 27
	v.rng = x
	return x * 0x2545F4914F6CDD1D
}

// Run executes the program from function 0 until HALT, final RET, or
// an execution error. Heap misuse (double free, wild free) surfaces
// as an error, as a crash would in a real process.
func (v *VM) Run() error {
	if v.prog == nil || len(v.prog.Fns) == 0 {
		return ErrNoProgram
	}
	fn, pc := 0, 0
	for {
		if v.steps >= v.limit {
			return ErrStepBudget
		}
		v.steps++
		code := v.prog.Fns[fn].Code
		if pc >= len(code) {
			// Falling off the end behaves like RET.
			var ok bool
			fn, pc, ok = v.ret()
			if !ok {
				return nil
			}
			continue
		}
		in := code[pc]
		pc++
		switch in.Op {
		case NOP:
		case LOADI:
			if err := v.checkReg(in.A); err != nil {
				return err
			}
			v.regs[in.A] = in.Imm
		case MOV:
			if err := v.checkReg(in.A, in.B); err != nil {
				return err
			}
			v.regs[in.A] = v.regs[in.B]
		case ADD, SUB, MUL, DIV, MOD, CMPLT, CMPEQ:
			if err := v.checkReg(in.A, in.B, in.C); err != nil {
				return err
			}
			a, b := v.regs[in.B], v.regs[in.C]
			var r uint64
			switch in.Op {
			case ADD:
				r = a + b
			case SUB:
				r = a - b
			case MUL:
				r = a * b
			case DIV:
				if b == 0 {
					return fmt.Errorf("%w in %s at %d", ErrDivideByZero, v.prog.Fns[fn].Name, pc-1)
				}
				r = a / b
			case MOD:
				if b == 0 {
					return fmt.Errorf("%w in %s at %d", ErrDivideByZero, v.prog.Fns[fn].Name, pc-1)
				}
				r = a % b
			case CMPLT:
				if a < b {
					r = 1
				}
			case CMPEQ:
				if a == b {
					r = 1
				}
			}
			v.regs[in.A] = r
		case JMP:
			if in.A < 0 || in.A > len(code) {
				return ErrBadJump
			}
			pc = in.A
		case JNZ, JZ:
			if err := v.checkReg(in.A); err != nil {
				return err
			}
			taken := (v.regs[in.A] != 0) == (in.Op == JNZ)
			if taken {
				if in.B < 0 || in.B > len(code) {
					return ErrBadJump
				}
				pc = in.B
			}
		case CALL:
			if in.A < 0 || in.A >= len(v.prog.Fns) {
				return fmt.Errorf("%w: index %d", ErrBadFunction, in.A)
			}
			if len(v.stack) >= 1<<16 {
				return ErrStackOverflow
			}
			v.stack = append(v.stack, frame{fn: fn, pc: pc})
			fn, pc = in.A, 0
		case RET:
			var ok bool
			fn, pc, ok = v.ret()
			if !ok {
				return nil
			}
		case ALLOC:
			if err := v.checkReg(in.A, in.B); err != nil {
				return err
			}
			addr, err := v.heap.Alloc(v.regs[in.B])
			if err != nil {
				return fmt.Errorf("in %s at %d: %w", v.prog.Fns[fn].Name, pc-1, err)
			}
			v.regs[in.A] = addr
		case FREE:
			if err := v.checkReg(in.A); err != nil {
				return err
			}
			if err := v.heap.Free(v.regs[in.A]); err != nil {
				return fmt.Errorf("in %s at %d: %w", v.prog.Fns[fn].Name, pc-1, err)
			}
		case LOAD:
			if err := v.checkReg(in.A, in.B); err != nil {
				return err
			}
			val, err := v.heap.Load(v.regs[in.B] + uint64(in.C)*heap.WordSize)
			if err != nil {
				return fmt.Errorf("in %s at %d: %w", v.prog.Fns[fn].Name, pc-1, err)
			}
			v.regs[in.A] = val
		case STORE:
			if err := v.checkReg(in.A, in.C); err != nil {
				return err
			}
			if err := v.heap.Store(v.regs[in.A]+uint64(in.B)*heap.WordSize, v.regs[in.C]); err != nil {
				return fmt.Errorf("in %s at %d: %w", v.prog.Fns[fn].Name, pc-1, err)
			}
		case RND:
			if err := v.checkReg(in.A, in.B); err != nil {
				return err
			}
			if m := v.regs[in.B]; m == 0 {
				v.regs[in.A] = 0
			} else {
				v.regs[in.A] = v.next() % m
			}
		case HALT:
			return nil
		case ENTER:
			if len(v.sinks) > 0 {
				v.sinks.Emit(event.Event{Type: event.Enter, Fn: event.FnID(in.Imm)})
			}
			v.heap.SetSite(event.FnID(in.Imm))
		case LEAVE:
			if len(v.sinks) > 0 {
				v.sinks.Emit(event.Event{Type: event.Leave})
			}
		default:
			return fmt.Errorf("%w: %d", ErrBadOpcode, in.Op)
		}
	}
}

// ret pops a frame; ok is false when the entry frame returns.
func (v *VM) ret() (fn, pc int, ok bool) {
	if len(v.stack) == 0 {
		return 0, 0, false
	}
	top := v.stack[len(v.stack)-1]
	v.stack = v.stack[:len(v.stack)-1]
	return top.fn, top.pc, true
}

func (v *VM) checkReg(rs ...int) error {
	for _, r := range rs {
		if r < 0 || r >= NumRegs {
			return fmt.Errorf("%w: r%d", ErrBadRegister, r)
		}
	}
	return nil
}
