// Package soak is the chaos harness: it drives workloads through the
// full concurrent ingestion pipeline for a wall-clock budget while
// injecting catalogued faults on a phase schedule, and scores the
// detector's behaviour per failure mode.
//
// Each cell (fault × workload × config, see DefaultCells) runs a
// warmup → fault window → recovery schedule of complete workload
// iterations. Warmup and recovery are fault-free; any detection
// signal there is a false positive. The fault window enables the
// cell's fault on a fresh plan each iteration and records detection
// latency — the distance in metric computation points from the first
// fault trigger to the first finding. The verdict compares what
// happened against the paper's taxonomy: systemic, indirect and
// poorly-disguised faults must be detected; well-disguised and
// invisible faults must stay quiet (detecting one would be a
// false alarm against the taxonomy, i.e. the harness's expectations
// are miscalibrated).
//
// Every iteration runs the real MPSC pipeline — the workload goroutine
// produces events through a logger.Producer while the pipeline's
// consumer applies them — so the soak also exercises backpressure:
// under the Drop policy, shed events surface in the scoreboard's
// dropped-event accounting, and health-based detections (wild-store
// counters) are no longer guaranteed, which downgrades the
// expectation for catalog entries marked HealthBased.
package soak

import (
	"fmt"
	"io"
	"sync"
	"time"

	"heapmd/internal/detect"
	"heapmd/internal/faults"
	"heapmd/internal/heapgraph"
	"heapmd/internal/logger"
	"heapmd/internal/metrics"
	"heapmd/internal/model"
	"heapmd/internal/prog"
	"heapmd/internal/sched"
	"heapmd/internal/workloads"
)

// Options configures a soak run.
type Options struct {
	// Duration is the wall-clock budget for extra iterations beyond
	// the minimum schedule; 0 runs the minimum schedule only (the
	// short mode used by tests and CI smoke).
	Duration time.Duration
	// Seed perturbs the held-out input seeds so different soak runs
	// explore different executions while staying deterministic.
	Seed int64
	// Faults optionally restricts the run to the named catalog
	// entries; empty means the full default cell set.
	Faults []string
	// Policy is the pipeline backpressure policy (Block default).
	Policy logger.BackpressurePolicy
	// QueueDepth is the pipeline queue depth in batches (default
	// 256). Soak iterations are bounded — 50..150 batches each — so
	// the default buffers a whole iteration: under Drop, shed events
	// then indicate genuine saturation, not the transient
	// producer/consumer rate mismatch every run begins with. Set it
	// low (e.g. logger.DefaultQueueDepth) to study exactly that
	// mismatch; the scoreboard accounts the shed events either way.
	QueueDepth int
	// Parallel is the number of cells soaked concurrently: 0 or 1
	// serial, <0 GOMAXPROCS.
	Parallel int
	// TrainInputs is the number of training inputs per workload
	// model (default 12; at 8 the calibrated ranges are tight enough
	// that held-out clean runs occasionally graze them).
	TrainInputs int
	// Warmup, FaultIters and Recovery are the minimum iteration
	// counts per phase (defaults 2, 3, 2). With a Duration budget the
	// phases extend beyond the minimums in a 1:2:1 time split.
	Warmup, FaultIters, Recovery int
	// Thresholds are the model-construction thresholds; the zero
	// value means model.Defaults().
	Thresholds model.Thresholds
	// Extended soaks (and trains) with the extended metric suite —
	// the degree metrics plus the WCC/SCC structure metrics. Required
	// for the Connectivity setting to be observable: only the
	// Components metric consults the connectivity path.
	Extended bool
	// Connectivity selects how the Components metric obtains the
	// weak component count in every iteration's logger (and during
	// training, so models and soak runs see the same path); see
	// heapgraph.ConnectivityMode. Zero value is the snapshot walk.
	Connectivity heapgraph.ConnectivityMode
	// SCC selects the same for the SCCs metric's strong component
	// count. Zero value is the snapshot walk.
	SCC heapgraph.ConnectivityMode
	// RebuildThreshold is the incremental trackers' dirty budget
	// between amortized rebuilds; 0 selects the default.
	RebuildThreshold int
	// IngestWorkers >= 2 routes every iteration's pipeline through the
	// speculative ingest stage (one in-order mutator plus
	// IngestWorkers-1 pre-resolvers, see logger.Ingest), soaking the
	// full decode → pre-resolve → mutate pressure path. Scoreboards
	// are byte-identical at any setting; 0 or 1 keeps the direct
	// consumer.
	IngestWorkers int
	// Progress, when set, receives one line per completed cell.
	Progress io.Writer
}

func (o Options) withDefaults() Options {
	if o.TrainInputs == 0 {
		o.TrainInputs = 12
	}
	if o.Warmup == 0 {
		o.Warmup = 2
	}
	if o.FaultIters == 0 {
		o.FaultIters = 3
	}
	if o.Recovery == 0 {
		o.Recovery = 2
	}
	if o.QueueDepth == 0 {
		o.QueueDepth = 256
	}
	if o.Thresholds == (model.Thresholds{}) {
		o.Thresholds = model.Defaults()
	}
	return o
}

// heldPool is the number of held-out inputs each cell cycles through;
// they come after the training inputs in the workload's input
// sequence, so training and soak never share an input.
const heldPool = 8

type runner struct {
	opts     Options
	models   map[string]*model.Model
	deadline time.Time     // zero when Duration is 0
	share    time.Duration // per-cell time budget

	mu sync.Mutex // guards Progress writes
}

// Run executes the soak schedule and returns the scoreboard.
func Run(opts Options) (*Scoreboard, error) {
	opts = opts.withDefaults()
	cells, err := selectCells(opts.Faults)
	if err != nil {
		return nil, err
	}

	var wl []string
	seen := map[string]bool{}
	for _, c := range cells {
		if !seen[c.Workload] {
			seen[c.Workload] = true
			wl = append(wl, c.Workload)
		}
	}

	workers := opts.Parallel
	if workers < 0 {
		workers = sched.Workers(0)
	}
	if workers == 0 {
		workers = 1
	}

	r := &runner{opts: opts, models: make(map[string]*model.Model, len(wl))}

	// Calibrate one clean model per distinct workload. Training time
	// is excluded from the soak budget: the budget buys fault
	// exposure, not setup.
	trained, err := sched.Map(workers, len(wl), func(i int) (*model.Model, error) {
		w, err := workloads.Get(wl[i])
		if err != nil {
			return nil, err
		}
		reps, err := workloads.Train(w, opts.TrainInputs, workloads.RunConfig{Logger: r.loggerOptions()})
		if err != nil {
			return nil, fmt.Errorf("soak: training %s: %w", wl[i], err)
		}
		br, err := model.Build(reps, opts.Thresholds)
		if err != nil {
			return nil, fmt.Errorf("soak: building model for %s: %w", wl[i], err)
		}
		return br.Model, nil
	})
	if err != nil {
		return nil, err
	}
	for i, m := range trained {
		r.models[wl[i]] = m
	}

	if opts.Duration > 0 {
		r.deadline = time.Now().Add(opts.Duration)
		r.share = time.Duration(int64(opts.Duration) * int64(workers) / int64(len(cells)))
	}

	results, err := sched.Map(workers, len(cells), func(i int) (CellResult, error) {
		return r.runCell(cells[i])
	})
	if err != nil {
		return nil, err
	}

	sb := &Scoreboard{
		Seed:        opts.Seed,
		Policy:      opts.Policy.String(),
		Duration:    opts.Duration.String(),
		TrainInputs: opts.TrainInputs,
		Cells:       results,
	}
	sb.summarize()
	return sb, nil
}

// heldInputs returns the cell's input cycle: the held-out tail of the
// workload's input sequence, seed-shifted by the soak seed. Only the
// seed moves — name, scale and class are preserved, so every input
// stays inside a training-covered class (the property behind the
// zero-false-positive expectation).
func (r *runner) heldInputs(w workloads.Workload) []workloads.Input {
	all := w.Inputs(r.opts.TrainInputs + heldPool)
	held := append([]workloads.Input(nil), all[r.opts.TrainInputs:]...)
	for i := range held {
		held[i].Seed += r.opts.Seed * 1000003
	}
	return held
}

// signal reports whether a finding counts as a detection for
// scoreboard purposes. Range violations and extreme stability are the
// paper's bug signals. Instrumentation anomalies count only under the
// Block policy: with Drop, the health counters run on an incomplete
// event stream, so they are evidence but not a reliable verdict
// input. Unexpected stability is excluded entirely — it is a
// run-level curiosity report, not a bug claim.
func (r *runner) signal(f *detect.Finding) bool {
	switch f.Kind {
	case detect.RangeViolation, detect.ExtremeStability:
		return true
	case detect.InstrumentationAnomaly:
		return r.opts.Policy == logger.Block
	default:
		return false
	}
}

// loggerOptions builds the logger configuration shared by training
// runs and soak iterations: suite and connectivity must match so the
// calibrated model and the soaked runs measure the same thing.
func (r *runner) loggerOptions() logger.Options {
	opts := logger.Options{
		Frequency:        workloads.DefaultFrequency,
		Connectivity:     r.opts.Connectivity,
		SCC:              r.opts.SCC,
		RebuildThreshold: r.opts.RebuildThreshold,
	}
	if r.opts.Extended {
		opts.Suite = metrics.ExtendedSuite()
	}
	return opts
}

// iteration executes one complete workload run through the concurrent
// pipeline. The returned bool reports whether the workload crashed on
// a simulator fault (the report then covers the prefix).
func (r *runner) iteration(w workloads.Workload, in workloads.Input, plan *faults.Plan) (*logger.Report, bool, error) {
	p := prog.NewProcess(prog.Options{Seed: in.Seed, Plan: plan})
	l := logger.New(r.loggerOptions())
	l.SetRun(w.Name(), in.Name, 1)
	pipe := logger.NewPipeline(l, logger.PipelineOptions{
		Policy:        r.opts.Policy,
		QueueDepth:    r.opts.QueueDepth,
		IngestWorkers: r.opts.IngestWorkers,
	})
	prod := pipe.NewProducer()
	p.Subscribe(prod)
	err := prog.Run(func() { w.Run(p, in, 1) })
	prod.Close()
	if cerr := pipe.Close(); cerr != nil {
		return nil, false, cerr
	}
	return l.Report(), err != nil, nil
}

func (r *runner) runCell(c Cell) (CellResult, error) {
	entry, ok := faults.Lookup(c.Fault)
	if !ok {
		return CellResult{}, fmt.Errorf("soak: fault %q not in catalog", c.Fault)
	}
	w, err := workloads.Get(c.Workload)
	if err != nil {
		return CellResult{}, err
	}
	mdl := r.models[c.Workload]
	held := r.heldInputs(w)

	res := CellResult{
		Fault:                 c.Fault,
		Workload:              c.Workload,
		Class:                 entry.Class.String(),
		Mechanism:             entry.Mechanism,
		DetectionLatencyTicks: -1,
	}
	expect := entry.ExpectDetect
	if entry.HealthBased && r.opts.Policy == logger.Drop {
		// The fault's only footprint is in health counters, which the
		// Drop policy makes approximate; don't demand detection.
		expect = false
	}
	res.ExpectDetect = expect

	var cum uint64 // metric computation points elapsed across iterations
	var faultEpoch uint64
	epochSet := false // first observed trigger
	var windowStart uint64
	windowSet := false // first fault-window iteration
	iter := 0

	runOne := func(ph *PhaseStats, faulty bool) error {
		in := held[iter%len(held)]
		iter++
		var plan *faults.Plan
		if faulty {
			plan = faults.NewPlan().Enable(c.Fault, c.Config)
		}
		rep, crashed, err := r.iteration(w, in, plan)
		if err != nil {
			return err
		}
		ph.Iterations++
		if crashed {
			ph.Crashes++
		}
		var iterTicks uint64
		if n := len(rep.Snapshots); n > 0 {
			iterTicks = rep.Snapshots[n-1].Tick
		}
		ph.Ticks += iterTicks
		res.Health.Add(rep.Health)
		res.DroppedEvents += rep.Health.DroppedEvents

		if faulty {
			if !windowSet {
				windowStart = cum
				windowSet = true
			}
			if t := plan.Triggers(c.Fault); t > 0 {
				res.Triggers += t
				if !epochSet {
					faultEpoch = cum
					epochSet = true
				}
			}
		}
		for _, f := range detect.CheckReport(mdl, rep, detect.Options{}) {
			if !r.signal(f) {
				continue
			}
			ph.Findings++
			if !faulty {
				ph.FalsePositives++
				continue
			}
			if !res.Detected {
				res.Detected = true
				res.DetectedKind = f.Kind.String()
				res.DetectedMetric = f.Metric
				at := f.Tick
				if at == 0 {
					// Run-level finding (extreme stability,
					// instrumentation anomaly): the evidence is only
					// complete at the end of the iteration.
					at = iterTicks
				}
				// Mode faults (consulted via Plan().Enabled, never
				// incrementing Triggers) are active from the start of
				// the fault window; anchor their latency there.
				base := faultEpoch
				if !epochSet {
					base = windowStart
				}
				res.DetectionLatencyTicks = int64(cum + at - base)
			}
		}
		cum += iterTicks
		return nil
	}

	// Phase time budgets split the cell's share 1:2:1; each phase
	// always runs its minimum iterations, then spends budget while the
	// global deadline holds.
	runPhase := func(ph *PhaseStats, min int, budget time.Duration, faulty bool) error {
		start := time.Now()
		for i := 0; ; i++ {
			if i >= min {
				if r.deadline.IsZero() || time.Since(start) >= budget || !time.Now().Before(r.deadline) {
					break
				}
			}
			if err := runOne(ph, faulty); err != nil {
				return err
			}
		}
		return nil
	}

	wBudget := r.share / 4
	fBudget := r.share / 2
	rBudget := r.share - wBudget - fBudget
	if err := runPhase(&res.Warmup, r.opts.Warmup, wBudget, false); err != nil {
		return CellResult{}, err
	}
	if err := runPhase(&res.FaultWindow, r.opts.FaultIters, fBudget, true); err != nil {
		return CellResult{}, err
	}
	if err := runPhase(&res.Recovery, r.opts.Recovery, rBudget, false); err != nil {
		return CellResult{}, err
	}

	res.Verdict, res.OK = verdictOf(res.ExpectDetect, res.Detected)
	r.progress("soak %-22s on %-11s %-12s triggers=%-6d latency=%d\n",
		c.Fault, c.Workload, res.Verdict, res.Triggers, res.DetectionLatencyTicks)
	return res, nil
}

func (r *runner) progress(format string, args ...any) {
	if r.opts.Progress == nil {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	fmt.Fprintf(r.opts.Progress, format, args...)
}
