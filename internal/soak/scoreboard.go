package soak

import (
	"encoding/json"
	"fmt"
	"io"

	"heapmd/internal/faults"
	"heapmd/internal/health"
)

// Cell pairs one catalog fault with the workload and configuration
// the soak harness drives it through. Every cell soaks independently:
// it trains (or reuses) a clean model for its workload, then runs the
// warmup → fault window → recovery schedule against it.
type Cell struct {
	Fault    string
	Workload string
	Config   faults.Config
}

// DefaultCells pairs every catalog entry with a workload whose
// structures exercise the fault's code site (the pairings proven by
// the Table 1/2 experiments, extended to the new catalog entries), in
// catalog order.
func DefaultCells() []Cell {
	return []Cell{
		{faults.DListNoPrev, "webapp", faults.Always()},
		{faults.TypoLeak, "multimedia", faults.Always()},
		{faults.SharedFree, "multimedia", faults.Always()},
		{faults.TreeNoParent, "game_action", faults.Always()},
		{faults.OctDAG, "game_action", faults.Always()},
		{faults.BadHash, "webapp", faults.Always()},
		{faults.SingleChild, "game_action", faults.Always()},
		{faults.AtypicalGraph, "game_sim", faults.Always()},
		{faults.SmallLeak, "multimedia", faults.Config{MaxTriggers: 2}},
		{faults.ReachableLeak, "multimedia", faults.Config{MaxTriggers: 4}},
		{faults.FragStorm, "multimedia", faults.ProbOf(0.25)},
		{faults.LeakPlateau, "webapp", faults.Config{MaxTriggers: 160}},
		{faults.ABARewire, "webapp", faults.Always()},
		{faults.AllocCascade, "webapp", faults.Always()},
		{faults.SlowDrift, "multimedia", faults.ProbOf(0.08)},
	}
}

// selectCells resolves an optional fault-name filter against the
// default cell set, preserving catalog order.
func selectCells(names []string) ([]Cell, error) {
	all := DefaultCells()
	if len(names) == 0 {
		return all, nil
	}
	byFault := make(map[string]Cell, len(all))
	for _, c := range all {
		byFault[c.Fault] = c
	}
	want := make(map[string]bool, len(names))
	for _, n := range names {
		if _, ok := byFault[n]; !ok {
			return nil, fmt.Errorf("soak: unknown fault %q (see 'heapmd faults')", n)
		}
		want[n] = true
	}
	var out []Cell
	for _, c := range all {
		if want[c.Fault] {
			out = append(out, c)
		}
	}
	return out, nil
}

// PhaseStats accounts one phase of a cell's schedule.
type PhaseStats struct {
	// Iterations is the number of complete workload runs in the phase.
	Iterations int `json:"iterations"`
	// Ticks is the total metric computation points observed.
	Ticks uint64 `json:"ticks"`
	// Findings counts detection-signal findings (range violations,
	// extreme stability, and — under Block — instrumentation
	// anomalies) across the phase's iterations.
	Findings int `json:"findings"`
	// FalsePositives equals Findings for fault-free phases (warmup,
	// recovery), where any signal is spurious; it is zero for the
	// fault window.
	FalsePositives int `json:"false_positives"`
	// Crashes counts iterations aborted by simulator faults (dangling
	// frees do occasionally crash, as in the paper).
	Crashes int `json:"crashes"`
}

// CellResult is one row of the scoreboard.
type CellResult struct {
	Fault     string `json:"fault"`
	Workload  string `json:"workload"`
	Class     string `json:"class"`
	Mechanism string `json:"mechanism"`
	// ExpectDetect is the taxonomy verdict the cell is scored
	// against (health-based faults are not expected under Drop).
	ExpectDetect bool `json:"expect_detect"`
	// Detected reports whether any fault-window iteration produced a
	// detection signal.
	Detected bool `json:"detected"`
	// Verdict is "detected", "missed", "quiet" or "false-alarm";
	// OK marks the two verdicts that match the taxonomy.
	Verdict string `json:"verdict"`
	OK      bool   `json:"ok"`
	// DetectionLatencyTicks is the distance in metric computation
	// points from the first fault trigger to the first finding
	// (cumulative across fault-window iterations); -1 when not
	// detected.
	DetectionLatencyTicks int64 `json:"detection_latency_ticks"`
	// DetectedKind/DetectedMetric identify the first signal.
	DetectedKind   string `json:"detected_kind,omitempty"`
	DetectedMetric string `json:"detected_metric,omitempty"`
	// Triggers is the total number of fault firings across the fault
	// window.
	Triggers int `json:"triggers"`

	Warmup      PhaseStats `json:"warmup"`
	FaultWindow PhaseStats `json:"fault_window"`
	Recovery    PhaseStats `json:"recovery"`

	// Health aggregates the instrumentation-health counters of every
	// iteration in the cell; DroppedEvents surfaces the pipeline's
	// backpressure accounting separately for quick scanning.
	Health        health.Counters `json:"health"`
	DroppedEvents uint64          `json:"dropped_events"`
}

// Summary aggregates the scoreboard.
type Summary struct {
	Cells       int `json:"cells"`
	OK          int `json:"ok"`
	Missed      int `json:"missed"`
	FalseAlarms int `json:"false_alarms"`
	// WarmupFalsePositives and RecoveryFalsePositives sum the
	// fault-free phases' spurious findings across all cells; the
	// acceptance bar is zero on warmup.
	WarmupFalsePositives   int    `json:"warmup_false_positives"`
	RecoveryFalsePositives int    `json:"recovery_false_positives"`
	Crashes                int    `json:"crashes"`
	DroppedEvents          uint64 `json:"dropped_events"`
}

// Scoreboard is the soak run's machine-readable result.
type Scoreboard struct {
	Seed        int64        `json:"seed"`
	Policy      string       `json:"policy"`
	Duration    string       `json:"duration"`
	TrainInputs int          `json:"train_inputs"`
	Cells       []CellResult `json:"cells"`
	Summary     Summary      `json:"summary"`
}

// OK reports whether every cell's verdict matched the taxonomy and
// the fault-free warmup phases stayed silent.
func (s *Scoreboard) OK() bool {
	return s.Summary.Missed == 0 && s.Summary.FalseAlarms == 0 &&
		s.Summary.WarmupFalsePositives == 0
}

// WriteJSON renders the scoreboard as indented JSON.
func (s *Scoreboard) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(s)
}

func (s *Scoreboard) summarize() {
	var sum Summary
	sum.Cells = len(s.Cells)
	for _, c := range s.Cells {
		if c.OK {
			sum.OK++
		}
		switch c.Verdict {
		case "missed":
			sum.Missed++
		case "false-alarm":
			sum.FalseAlarms++
		}
		sum.WarmupFalsePositives += c.Warmup.FalsePositives
		sum.RecoveryFalsePositives += c.Recovery.FalsePositives
		sum.Crashes += c.Warmup.Crashes + c.FaultWindow.Crashes + c.Recovery.Crashes
		sum.DroppedEvents += c.DroppedEvents
	}
	s.Summary = sum
}

func verdictOf(expect, detected bool) (string, bool) {
	switch {
	case expect && detected:
		return "detected", true
	case expect && !detected:
		return "missed", false
	case !expect && detected:
		return "false-alarm", false
	default:
		return "quiet", true
	}
}
