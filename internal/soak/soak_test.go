package soak

import (
	"bytes"
	"encoding/json"
	"testing"

	"heapmd/internal/faults"
	"heapmd/internal/logger"
)

// TestSoakShortScoreboard is the CI smoke: the minimum schedule
// (Duration 0) over the full default cell set must reproduce the
// paper's taxonomy exactly — every systemic, indirect and
// poorly-disguised fault detected with finite latency, every
// well-disguised and invisible fault quiet, and not a single false
// positive on the fault-free warmup phases.
func TestSoakShortScoreboard(t *testing.T) {
	sb, err := Run(Options{Seed: 1, Parallel: -1})
	if err != nil {
		t.Fatal(err)
	}
	if got, want := len(sb.Cells), len(DefaultCells()); got != want {
		t.Fatalf("scoreboard has %d cells, want %d", got, want)
	}
	for _, c := range sb.Cells {
		if !c.OK {
			t.Errorf("%s on %s: verdict %s (expect_detect=%v, detected=%v)",
				c.Fault, c.Workload, c.Verdict, c.ExpectDetect, c.Detected)
		}
		if c.ExpectDetect {
			if c.DetectionLatencyTicks < 0 {
				t.Errorf("%s: detected but latency = %d", c.Fault, c.DetectionLatencyTicks)
			}
		} else if c.DetectionLatencyTicks != -1 {
			t.Errorf("%s: quiet cell has latency %d", c.Fault, c.DetectionLatencyTicks)
		}
		if c.Warmup.FalsePositives != 0 {
			t.Errorf("%s: %d warmup false positives", c.Fault, c.Warmup.FalsePositives)
		}
		if c.Warmup.Iterations < 2 || c.FaultWindow.Iterations < 3 || c.Recovery.Iterations < 2 {
			t.Errorf("%s: schedule %d/%d/%d below minimums", c.Fault,
				c.Warmup.Iterations, c.FaultWindow.Iterations, c.Recovery.Iterations)
		}
	}
	// Spot-check the taxonomy anchors by name.
	verdicts := map[string]string{}
	for _, c := range sb.Cells {
		verdicts[c.Fault] = c.Verdict
	}
	for _, f := range []string{faults.DListNoPrev, faults.TypoLeak, faults.FragStorm,
		faults.LeakPlateau, faults.ABARewire, faults.AllocCascade} {
		if verdicts[f] != "detected" {
			t.Errorf("%s: verdict %q, want detected", f, verdicts[f])
		}
	}
	for _, f := range []string{faults.SmallLeak, faults.ReachableLeak, faults.SlowDrift} {
		if verdicts[f] != "quiet" {
			t.Errorf("%s: verdict %q, want quiet", f, verdicts[f])
		}
	}
	if !sb.OK() {
		t.Errorf("scoreboard not OK: %+v", sb.Summary)
	}
	if sb.Summary.OK != len(sb.Cells) {
		t.Errorf("summary OK=%d, want %d", sb.Summary.OK, len(sb.Cells))
	}

	// The scoreboard must round-trip as JSON.
	var buf bytes.Buffer
	if err := sb.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var back Scoreboard
	if err := json.Unmarshal(buf.Bytes(), &back); err != nil {
		t.Fatalf("scoreboard JSON does not round-trip: %v", err)
	}
	if back.Summary != sb.Summary {
		t.Errorf("summary changed across JSON round-trip: %+v vs %+v", back.Summary, sb.Summary)
	}
}

// TestSoakDropDowngradesHealthBased pins the Drop-policy semantics:
// a fault whose only footprint is in the instrumentation-health
// counters (ABARewire's wild stores) cannot be reliably detected when
// the pipeline may shed events, so the harness must not demand it —
// and must not count health findings as signals either.
func TestSoakDropDowngradesHealthBased(t *testing.T) {
	sb, err := Run(Options{Seed: 1, Faults: []string{faults.ABARewire}, Policy: logger.Drop})
	if err != nil {
		t.Fatal(err)
	}
	if len(sb.Cells) != 1 {
		t.Fatalf("got %d cells, want 1", len(sb.Cells))
	}
	c := sb.Cells[0]
	if c.ExpectDetect {
		t.Error("health-based fault still expected under Drop policy")
	}
	if !c.OK {
		t.Errorf("verdict %s not OK", c.Verdict)
	}
	if sb.Policy != "drop" {
		t.Errorf("scoreboard policy = %q", sb.Policy)
	}

	// The same cell under Block must be both expected and detected,
	// through the wild-store counter.
	sb, err = Run(Options{Seed: 1, Faults: []string{faults.ABARewire}})
	if err != nil {
		t.Fatal(err)
	}
	c = sb.Cells[0]
	if !c.ExpectDetect || c.Verdict != "detected" {
		t.Errorf("under Block: expect=%v verdict=%s, want detected", c.ExpectDetect, c.Verdict)
	}
	if c.DetectedKind != "instrumentation-anomaly" || c.DetectedMetric != "wild-stores" {
		t.Errorf("detected via %s/%s, want instrumentation-anomaly/wild-stores",
			c.DetectedKind, c.DetectedMetric)
	}
	if c.Health.WildStores == 0 {
		t.Error("ABARewire produced no wild stores")
	}
}

// TestSoakDeterministic: equal options must produce byte-identical
// scoreboards — the property CI assertions and bisection depend on.
func TestSoakDeterministic(t *testing.T) {
	opts := Options{Seed: 3, Faults: []string{faults.DListNoPrev}}
	var runs [2]bytes.Buffer
	for i := range runs {
		sb, err := Run(opts)
		if err != nil {
			t.Fatal(err)
		}
		if err := sb.WriteJSON(&runs[i]); err != nil {
			t.Fatal(err)
		}
	}
	if !bytes.Equal(runs[0].Bytes(), runs[1].Bytes()) {
		t.Error("same options produced different scoreboards")
	}
}

func TestSelectCells(t *testing.T) {
	all, err := selectCells(nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(all) != len(faults.Catalog()) {
		t.Errorf("default cells = %d, want one per catalog entry (%d)",
			len(all), len(faults.Catalog()))
	}
	for _, c := range all {
		if _, ok := faults.Lookup(c.Fault); !ok {
			t.Errorf("cell fault %q not in catalog", c.Fault)
		}
	}
	two, err := selectCells([]string{faults.FragStorm, faults.TypoLeak})
	if err != nil {
		t.Fatal(err)
	}
	if len(two) != 2 || two[0].Fault != faults.TypoLeak || two[1].Fault != faults.FragStorm {
		t.Errorf("filtered cells = %+v, want typo then frag-storm in catalog order", two)
	}
	if _, err := selectCells([]string{"bogus"}); err == nil {
		t.Error("unknown fault name accepted")
	}
}

func TestVerdictOf(t *testing.T) {
	cases := []struct {
		expect, detected bool
		verdict          string
		ok               bool
	}{
		{true, true, "detected", true},
		{true, false, "missed", false},
		{false, true, "false-alarm", false},
		{false, false, "quiet", true},
	}
	for _, c := range cases {
		v, ok := verdictOf(c.expect, c.detected)
		if v != c.verdict || ok != c.ok {
			t.Errorf("verdictOf(%v, %v) = %s, %v; want %s, %v",
				c.expect, c.detected, v, ok, c.verdict, c.ok)
		}
	}
}
