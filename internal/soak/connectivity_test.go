package soak

import (
	"bytes"
	"testing"

	"heapmd/internal/faults"
	"heapmd/internal/heapgraph"
)

// TestSoakConnectivityVerify drives the full warmup → fault → recovery
// schedule with the extended suite in verify connectivity mode, at a
// rebuild threshold of 1 (rebuild on every conservative delete) and 8
// (amortized), over the two faults that stress the incremental
// tracker hardest: frag-storm (detach-heavy churn) and
// aba-dangling-rewire (wild rewiring). Verify mode panics on the
// first divergence between the incremental count and the snapshot
// walk, so completing the schedule IS the differential result.
func TestSoakConnectivityVerify(t *testing.T) {
	for _, th := range []int{1, 8} {
		sb, err := Run(Options{
			Seed:             1,
			Faults:           []string{faults.FragStorm, faults.ABARewire},
			Extended:         true,
			Connectivity:     heapgraph.ConnectivityVerify,
			RebuildThreshold: th,
			Parallel:         -1,
		})
		if err != nil {
			t.Fatalf("threshold %d: %v", th, err)
		}
		if len(sb.Cells) == 0 {
			t.Fatalf("threshold %d: no cells ran", th)
		}
	}
}

// TestSoakConnectivityScoreboardEquivalence runs the same seeded cells
// under snapshot and incremental connectivity and requires
// byte-identical scoreboards: the metric path must not change a single
// verdict, latency or counter.
func TestSoakConnectivityScoreboardEquivalence(t *testing.T) {
	run := func(mode heapgraph.ConnectivityMode) []byte {
		sb, err := Run(Options{
			Seed:         1,
			Faults:       []string{faults.FragStorm, faults.ABARewire, faults.TypoLeak},
			Extended:     true,
			Connectivity: mode,
			Parallel:     -1,
		})
		if err != nil {
			t.Fatalf("%s: %v", mode, err)
		}
		var buf bytes.Buffer
		if err := sb.WriteJSON(&buf); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}
	snap := run(heapgraph.ConnectivitySnapshot)
	inc := run(heapgraph.ConnectivityIncremental)
	if !bytes.Equal(snap, inc) {
		t.Fatalf("scoreboards differ between connectivity modes:\nsnapshot:    %s\nincremental: %s", snap, inc)
	}
}

// TestSoakSCCVerify mirrors TestSoakConnectivityVerify for the strong
// connectivity tracker: the frag-storm and aba-dangling-rewire cells
// run the full warmup → fault → recovery schedule with the SCCs metric
// in verify mode at rebuild thresholds 1 and 8. Every metric point
// compares the incremental SCC count against the snapshot Tarjan walk
// and panics on divergence, so a completed schedule is the
// differential result.
func TestSoakSCCVerify(t *testing.T) {
	for _, th := range []int{1, 8} {
		sb, err := Run(Options{
			Seed:             1,
			Faults:           []string{faults.FragStorm, faults.ABARewire},
			Extended:         true,
			SCC:              heapgraph.ConnectivityVerify,
			RebuildThreshold: th,
			Parallel:         -1,
		})
		if err != nil {
			t.Fatalf("threshold %d: %v", th, err)
		}
		if len(sb.Cells) == 0 {
			t.Fatalf("threshold %d: no cells ran", th)
		}
	}
}

// TestSoakSCCScoreboardEquivalence requires that switching the SCCs
// metric from the snapshot walk to the incremental tracker — with the
// weak connectivity tracker incremental as well, the all-incremental
// production configuration — changes nothing observable: byte-identical
// scoreboards, down to every verdict, latency bucket and counter.
func TestSoakSCCScoreboardEquivalence(t *testing.T) {
	run := func(scc heapgraph.ConnectivityMode) []byte {
		sb, err := Run(Options{
			Seed:         1,
			Faults:       []string{faults.FragStorm, faults.ABARewire, faults.TypoLeak},
			Extended:     true,
			Connectivity: heapgraph.ConnectivityIncremental,
			SCC:          scc,
			Parallel:     -1,
		})
		if err != nil {
			t.Fatalf("scc %s: %v", scc, err)
		}
		var buf bytes.Buffer
		if err := sb.WriteJSON(&buf); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}
	snap := run(heapgraph.ConnectivitySnapshot)
	inc := run(heapgraph.ConnectivityIncremental)
	if !bytes.Equal(snap, inc) {
		t.Fatalf("scoreboards differ between scc modes:\nsnapshot:    %s\nincremental: %s", snap, inc)
	}
}
