// Package instrument is the reproduction's stand-in for Vulcan, the
// binary transformation tool the paper builds its instrumenter on
// (Section 2.1, Figure 2: input.exe -> binary instrumenter ->
// output.exe).
//
// Instrument rewrites machine code it has never seen source for: it
// prepends an ENTER hook to every function (interning the function's
// name in the symbol table so bug reports can resolve call stacks),
// and plants a LEAVE hook before every RET and at the fall-through
// end of each function. ENTER hooks are what give HeapMD its metric
// computation points and allocation-site attribution; the heap
// instructions need no rewriting because the simulated heap already
// reports every allocator call and heap access, just as the paper's
// instrumented malloc/free and write instructions do.
package instrument

import (
	"fmt"

	"heapmd/internal/event"
	"heapmd/internal/machine"
)

// Instrument returns a rewritten copy of prog with ENTER/LEAVE hooks
// inserted, plus the symbol table mapping hook IDs to function names.
// The input program is not modified.
func Instrument(prog *machine.Program) (*machine.Program, *event.Symtab, error) {
	if prog == nil || len(prog.Fns) == 0 {
		return nil, nil, machine.ErrNoProgram
	}
	sym := event.NewSymtab()
	out := &machine.Program{Fns: make([]machine.Fn, len(prog.Fns))}
	for i, fn := range prog.Fns {
		for _, in := range fn.Code {
			if in.Op == machine.ENTER || in.Op == machine.LEAVE {
				return nil, nil, fmt.Errorf("instrument: %s already instrumented (found %s)", fn.Name, in.Op)
			}
		}
		id := sym.Intern(fn.Name)
		code := make([]machine.Instr, 0, len(fn.Code)+4)
		code = append(code, machine.Instr{Op: machine.ENTER, Imm: uint64(id)})
		// Jump targets shift by one because of the prologue; RET
		// sites gain a preceding LEAVE, shifting everything after
		// them too. Compute the new index of every old instruction
		// first, then rewrite targets.
		newIndex := make([]int, len(fn.Code)+1)
		idx := 1 // after the ENTER prologue
		for j, in := range fn.Code {
			newIndex[j] = idx
			if in.Op == machine.RET {
				idx += 2 // LEAVE + RET
			} else {
				idx++
			}
		}
		newIndex[len(fn.Code)] = idx // one-past-end target
		for _, in := range fn.Code {
			switch in.Op {
			case machine.RET:
				code = append(code, machine.Instr{Op: machine.LEAVE}, in)
				continue
			case machine.JMP:
				in.A = newIndex[in.A]
			case machine.JNZ, machine.JZ:
				in.B = newIndex[in.B]
			}
			code = append(code, in)
		}
		// Fall-through exit: a trailing LEAVE so the hook fires for
		// functions that end (or branch to one-past-the-end) without
		// RET. When every path RETs this is dead code, which is
		// cheaper than proving it so.
		code = append(code, machine.Instr{Op: machine.LEAVE})
		out.Fns[i] = machine.Fn{Name: fn.Name, Code: code}
	}
	return out, sym, nil
}
