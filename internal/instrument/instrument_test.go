package instrument

import (
	"strings"
	"testing"

	"heapmd/internal/detect"
	"heapmd/internal/event"
	"heapmd/internal/logger"
	"heapmd/internal/machine"
	"heapmd/internal/model"
)

// listBinary is the "input.exe" of the end-to-end test: it builds a
// table of N singly linked chains and then churns them — rebuilding a
// random chain per iteration. With the buggy flag (r15 != 0) the
// rebuild path drops the last node of each chain instead of linking
// it, leaking one node per rebuild: a systemic typo-style bug in
// machine code.
const listBinary = `
fn main
  loadi r1, 64         ; table: 8 slots
  alloc r10, r1        ; r10 = table base
  loadi r11, 0         ; slot index
fill:
  call buildchain      ; r2 = chain head
  mov r3, r11
  ; store chain head into table[r11] via computed address:
  ; addresses are byte-based, so use store with word offset trick:
  call storeslot
  loadi r4, 1
  add r11, r11, r4
  loadi r5, 8
  cmplt r6, r11, r5
  jnz r6, fill
  ; churn: 600 iterations of rebuild-random-slot
  loadi r12, 0
churn:
  loadi r5, 8
  rnd r11, r5
  call loadslot        ; r2 = old head
  call freechain
  call buildchain      ; r2 = new head
  call storeslot
  loadi r4, 1
  add r12, r12, r4
  loadi r5, 600
  cmplt r6, r12, r5
  jnz r6, churn
  halt

; storeslot: table[r11] = r2  (r10 = table base)
fn storeslot
  loadi r7, 8
  mul r8, r11, r7
  add r8, r10, r8      ; byte address of slot
  store r8, 0, r2
  ret

; loadslot: r2 = table[r11]
fn loadslot
  loadi r7, 8
  mul r8, r11, r7
  add r8, r10, r8
  load r2, r8, 0
  ret

; buildchain: r2 = head of a fresh 5-node chain [payload, next]
fn buildchain
  loadi r2, 0          ; head = nil
  loadi r9, 0          ; count
bloop:
  loadi r7, 16
  alloc r8, r7         ; node
  store r8, 0, r9      ; payload
  jnz r15, buggy       ; buggy build skips linking the old head
  store r8, 1, r2      ; node.next = head
buggy:
  mov r2, r8
  loadi r7, 1
  add r9, r9, r7
  loadi r7, 5
  cmplt r6, r9, r7
  jnz r6, bloop
  ret

; freechain: free nodes from r2 following next pointers
fn freechain
floop:
  jz r2, fdone
  load r8, r2, 1       ; next
  free r2
  mov r2, r8
  jmp floop
fdone:
  ret
`

func assemble(t *testing.T) *machine.Program {
	t.Helper()
	p, err := machine.Assemble(listBinary)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func TestInstrumentInsertsHooks(t *testing.T) {
	prog := assemble(t)
	inst, sym, err := Instrument(prog)
	if err != nil {
		t.Fatal(err)
	}
	if len(inst.Fns) != len(prog.Fns) {
		t.Fatalf("function count changed")
	}
	for i, fn := range inst.Fns {
		if fn.Code[0].Op != machine.ENTER {
			t.Errorf("%s: first op = %s, want enter", fn.Name, fn.Code[0].Op)
		}
		if sym.Name(event.FnID(fn.Code[0].Imm)) != fn.Name {
			t.Errorf("%s: enter hook resolves to %q", fn.Name,
				sym.Name(event.FnID(fn.Code[0].Imm)))
		}
		// Every RET is preceded by a LEAVE.
		for j, in := range fn.Code {
			if in.Op == machine.RET && fn.Code[j-1].Op != machine.LEAVE {
				t.Errorf("%s: ret at %d lacks preceding leave", fn.Name, j)
			}
		}
		// Original is untouched.
		for _, in := range prog.Fns[i].Code {
			if in.Op == machine.ENTER || in.Op == machine.LEAVE {
				t.Fatal("instrumentation leaked into the input program")
			}
		}
	}
}

func TestInstrumentRejectsDoubleInstrumentation(t *testing.T) {
	prog := assemble(t)
	inst, _, err := Instrument(prog)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := Instrument(inst); err == nil {
		t.Fatal("double instrumentation not rejected")
	}
}

// TestInstrumentedSemanticsUnchanged runs the same program plain and
// instrumented and checks the heap ends in the same state: hook
// insertion must not change behaviour (the Vulcan property).
func TestInstrumentedSemanticsUnchanged(t *testing.T) {
	prog := assemble(t)
	plain := machine.New(prog, event.NewSymtab(), machine.WithSeed(3))
	if err := plain.Run(); err != nil {
		t.Fatalf("plain run: %v", err)
	}
	inst, sym, err := Instrument(prog)
	if err != nil {
		t.Fatal(err)
	}
	vm := machine.New(inst, sym, machine.WithSeed(3))
	if err := vm.Run(); err != nil {
		t.Fatalf("instrumented run: %v", err)
	}
	if plain.Heap().Live() != vm.Heap().Live() {
		t.Errorf("live objects diverge: %d vs %d", plain.Heap().Live(), vm.Heap().Live())
	}
	if plain.Heap().Stats().Allocs != vm.Heap().Stats().Allocs {
		t.Errorf("alloc counts diverge")
	}
}

// TestBinaryPipelineEndToEnd is the paper's whole Figure 2 on machine
// code: instrument the binary, train a model over clean executions,
// then catch the buggy build (r15=1 path drops chain links) via a
// range violation.
func TestBinaryPipelineEndToEnd(t *testing.T) {
	prog := assemble(t)
	inst, sym, err := Instrument(prog)
	if err != nil {
		t.Fatal(err)
	}

	runOnce := func(seed uint64, buggy bool) *logger.Report {
		l := logger.New(logger.Options{Frequency: 8, Symtab: sym})
		l.SetRun("listbinary", "seed", 1)
		// r15 is the program's mode flag: the buggy build path (skip
		// chain linking) is taken when it is non-zero — the
		// machine-code analogue of "a specific call-site that was
		// only exercised on the buggy input".
		flag := uint64(0)
		if buggy {
			flag = 1
		}
		vm := machine.New(inst, sym, machine.WithSeed(seed), machine.WithSink(l), machine.WithReg(15, flag))
		if err := vm.Run(); err != nil {
			t.Fatalf("vm run: %v", err)
		}
		return l.Report()
	}

	var reports []*logger.Report
	for seed := uint64(1); seed <= 6; seed++ {
		reports = append(reports, runOnce(seed, false))
	}
	build, err := model.Build(reports, model.Defaults())
	if err != nil {
		t.Fatal(err)
	}
	if build.StableCount() == 0 {
		t.Fatal("no stable metrics for the list binary")
	}

	clean := runOnce(77, false)
	for _, f := range detect.CheckReport(build.Model, clean, detect.Options{}) {
		t.Errorf("false positive on clean binary: %s", f.Metric)
	}

	buggy := runOnce(78, true)
	findings := detect.CheckReport(build.Model, buggy, detect.Options{})
	if len(findings) == 0 {
		t.Fatal("buggy binary not detected")
	}
	var names []string
	for _, f := range findings {
		names = append(names, f.Metric+" "+f.Direction.String())
	}
	t.Logf("detected: %s", strings.Join(names, ", "))
}
