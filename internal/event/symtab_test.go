package event

import "testing"

func TestSymtabInternAndName(t *testing.T) {
	s := NewSymtab()
	a := s.Intern("alpha")
	b := s.Intern("beta")
	if a == NoFn || b == NoFn || a == b {
		t.Fatalf("bad ids: %d %d", a, b)
	}
	if s.Intern("alpha") != a {
		t.Error("re-intern changed the id")
	}
	if s.Name(a) != "alpha" || s.Name(b) != "beta" {
		t.Error("name resolution failed")
	}
	if s.Name(NoFn) != "<none>" {
		t.Errorf("NoFn name = %q", s.Name(NoFn))
	}
	if s.Name(12345) != "?" {
		t.Errorf("unknown id name = %q", s.Name(12345))
	}
}

func TestSymtabEmptyName(t *testing.T) {
	s := NewSymtab()
	if s.Intern("") != NoFn {
		t.Error("empty name must intern to NoFn")
	}
	if s.Len() != 0 {
		t.Errorf("Len = %d after empty intern", s.Len())
	}
}

func TestSymtabLookup(t *testing.T) {
	s := NewSymtab()
	a := s.Intern("x")
	if id, ok := s.Lookup("x"); !ok || id != a {
		t.Error("Lookup of interned name failed")
	}
	if _, ok := s.Lookup("y"); ok {
		t.Error("Lookup of absent name succeeded")
	}
}

func TestSymtabNames(t *testing.T) {
	s := NewSymtab()
	a := s.Intern("f")
	b := s.Intern("g")
	got := s.Names([]FnID{b, a, NoFn})
	want := []string{"g", "f", "<none>"}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("Names[%d] = %q, want %q", i, got[i], want[i])
		}
	}
}

func TestSymtabLen(t *testing.T) {
	s := NewSymtab()
	for i, name := range []string{"a", "b", "c"} {
		s.Intern(name)
		if s.Len() != i+1 {
			t.Fatalf("Len = %d, want %d", s.Len(), i+1)
		}
	}
}
