package event

// Symtab interns function names to FnIDs. It plays the role of the
// symbol-table information the paper's tool reads from the binary
// (Section 4.4 notes HeapMD had access to symbol tables): events carry
// compact FnIDs, and bug reports resolve them back to names through
// the run's Symtab.
//
// FnID 0 is reserved for NoFn ("no attribution"); the first interned
// name receives ID 1.
type Symtab struct {
	byName map[string]FnID
	byID   []string // byID[0] == "" for NoFn
}

// NewSymtab returns an empty symbol table.
func NewSymtab() *Symtab {
	return &Symtab{
		byName: make(map[string]FnID),
		byID:   []string{""},
	}
}

// Intern returns the FnID for name, assigning a fresh one on first
// use. The empty string maps to NoFn.
func (s *Symtab) Intern(name string) FnID {
	if name == "" {
		return NoFn
	}
	if id, ok := s.byName[name]; ok {
		return id
	}
	id := FnID(len(s.byID))
	s.byName[name] = id
	s.byID = append(s.byID, name)
	return id
}

// Name resolves an FnID back to its function name. Unknown IDs
// resolve to "?".
func (s *Symtab) Name(id FnID) string {
	if int(id) < len(s.byID) {
		if id == NoFn {
			return "<none>"
		}
		return s.byID[id]
	}
	return "?"
}

// Lookup returns the FnID for name without interning.
func (s *Symtab) Lookup(name string) (FnID, bool) {
	id, ok := s.byName[name]
	return id, ok
}

// Len returns the number of interned names (excluding NoFn).
func (s *Symtab) Len() int { return len(s.byID) - 1 }

// Names resolves a slice of FnIDs (e.g. a captured call stack) to
// names, outermost first.
func (s *Symtab) Names(ids []FnID) []string {
	out := make([]string, len(ids))
	for i, id := range ids {
		out[i] = s.Name(id)
	}
	return out
}
