// Package event defines the instrumentation event stream that connects
// the simulated program substrate to HeapMD's analysis components.
//
// In the paper, a binary instrumenter (built on Vulcan) rewrites an x86
// binary so that every allocator call and every heap write reports to
// the execution logger. This reproduction replaces the x86 process with
// a simulated heap (package heap) and a workload runtime (package
// prog); both report through the Event type defined here. Everything
// downstream of this interface — the execution logger, the metric
// summarizer, the anomaly detector, and the SWAT baseline — consumes
// only Events, exactly as the paper's components consume only
// instrumentation callbacks.
package event

import "fmt"

// Type enumerates the kinds of instrumentation events.
type Type uint8

const (
	// Alloc reports a new heap object: Addr is its base address,
	// Size its length in bytes. Fn identifies the function that
	// performed the allocation (the allocation site).
	Alloc Type = iota
	// Free reports object deallocation: Addr is the base address,
	// Size the released length.
	Free
	// Realloc reports an object resize/move: Addr is the old base,
	// Value the new base, Size the new length.
	Realloc
	// Store reports a heap write: Addr is the written location,
	// Value the word written, Old the word previously stored there.
	Store
	// Load reports a heap read: Addr is the location read, Value
	// the word observed. Loads do not affect the heap-graph; they
	// exist for access-tracking tools such as the SWAT baseline.
	Load
	// Enter reports entry into a function. Function entries are
	// HeapMD's metric computation points (Section 2.1).
	Enter
	// Leave reports return from a function.
	Leave
)

// NumTypes is the number of defined event types.
const NumTypes = 7

// Known reports whether t is a defined event type. Trace replay and
// the execution logger use it to route corrupted or version-skewed
// records into health accounting instead of misinterpreting them.
func (t Type) Known() bool { return t < NumTypes }

// String returns the mnemonic name of the event type.
func (t Type) String() string {
	switch t {
	case Alloc:
		return "alloc"
	case Free:
		return "free"
	case Realloc:
		return "realloc"
	case Store:
		return "store"
	case Load:
		return "load"
	case Enter:
		return "enter"
	case Leave:
		return "leave"
	default:
		return fmt.Sprintf("event.Type(%d)", uint8(t))
	}
}

// FnID is an interned function identifier. The symbol table mapping
// FnIDs back to names travels with the run (see package prog), mirroring
// the symbol information the paper's tool reads from the binary.
type FnID uint32

// NoFn marks events that carry no function attribution.
const NoFn FnID = 0

// Event is a single instrumentation record. The struct is fixed-size
// and contains no pointers so that high-frequency event streams do not
// pressure the garbage collector.
type Event struct {
	Type  Type
	Fn    FnID   // attributed function (allocation site / entered fn)
	Addr  uint64 // subject address (object base or written location)
	Value uint64 // stored word, new base (realloc), or loaded word
	Old   uint64 // previously stored word (Store only)
	Size  uint64 // object size in bytes (Alloc/Free/Realloc)
}

// Sink consumes instrumentation events. Implementations must tolerate
// being invoked once per simulated heap operation; anything expensive
// must be amortized internally (the execution logger, for example,
// samples metrics only at every frq-th Enter event).
type Sink interface {
	Emit(Event)
}

// SinkFunc adapts a function to the Sink interface.
type SinkFunc func(Event)

// Emit implements Sink.
func (f SinkFunc) Emit(e Event) { f(e) }

// BatchSink is an optional extension of Sink for consumers that can
// accept decoded events a frame at a time. Batch delivery replaces one
// interface dispatch per event with one per batch, which matters on
// replay paths pushing tens of millions of events per second. The
// batch slice is borrowed: it is valid only for the duration of the
// call and is overwritten afterwards, so implementations must finish
// with (or copy) it before returning.
type BatchSink interface {
	Sink
	EmitBatch([]Event)
}

// Batch is a reusable event buffer: a growable []Event that trace
// writers and frame decoders recycle across record batches so that
// steady-state batch processing allocates nothing. The zero value is
// an empty, ready-to-use batch. Slices returned by Grow and Events
// are borrowed — they alias the buffer and are overwritten by the
// next Grow/Append/Reset, exactly like the BatchSink contract.
type Batch struct{ evs []Event }

// Append adds one event to the batch.
func (b *Batch) Append(e Event) { b.evs = append(b.evs, e) }

// Len returns the number of buffered events.
func (b *Batch) Len() int { return len(b.evs) }

// Reset empties the batch, keeping its capacity.
func (b *Batch) Reset() { b.evs = b.evs[:0] }

// Grow resizes the batch to exactly n events (contents unspecified),
// reusing the existing allocation when it is large enough, and
// returns the resized slice for the caller to fill in place.
func (b *Batch) Grow(n int) []Event {
	if cap(b.evs) < n {
		b.evs = make([]Event, n)
	}
	b.evs = b.evs[:n]
	return b.evs
}

// Events returns the buffered events (borrowed).
func (b *Batch) Events() []Event { return b.evs }

// EmitAll delivers batch through sink's EmitBatch when implemented,
// falling back to per-event Emit calls. The borrowed-slice contract of
// BatchSink.EmitBatch applies.
func EmitAll(sink Sink, batch []Event) {
	if bs, ok := sink.(BatchSink); ok {
		bs.EmitBatch(batch)
		return
	}
	for _, e := range batch {
		sink.Emit(e)
	}
}

// Multi fans a single event stream out to several sinks in order.
type Multi []Sink

// Emit implements Sink by forwarding e to every registered sink.
func (m Multi) Emit(e Event) {
	for _, s := range m {
		s.Emit(e)
	}
}

// Counter is a Sink that tallies events by type; useful in tests and
// for run statistics. Events with an out-of-range type byte (possible
// when counting a damaged trace) land in Unknown rather than
// panicking.
type Counter struct {
	ByType  [NumTypes]uint64
	Unknown uint64
	Total   uint64
}

// Emit implements Sink.
func (c *Counter) Emit(e Event) {
	if e.Type.Known() {
		c.ByType[e.Type]++
	} else {
		c.Unknown++
	}
	c.Total++
}

// EmitBatch implements BatchSink.
func (c *Counter) EmitBatch(batch []Event) {
	for _, e := range batch {
		c.Emit(e)
	}
}

// Count returns the number of events of type t seen so far.
func (c *Counter) Count(t Type) uint64 { return c.ByType[t] }
