package event

import (
	"strings"
	"testing"
)

func TestTypeString(t *testing.T) {
	tests := []struct {
		tp   Type
		want string
	}{
		{Alloc, "alloc"}, {Free, "free"}, {Realloc, "realloc"},
		{Store, "store"}, {Load, "load"}, {Enter, "enter"}, {Leave, "leave"},
	}
	for _, tt := range tests {
		if got := tt.tp.String(); got != tt.want {
			t.Errorf("%d.String() = %q, want %q", tt.tp, got, tt.want)
		}
	}
	if got := Type(99).String(); !strings.Contains(got, "99") {
		t.Errorf("unknown type String() = %q", got)
	}
}

func TestSinkFunc(t *testing.T) {
	var got Event
	s := SinkFunc(func(e Event) { got = e })
	s.Emit(Event{Type: Store, Addr: 8})
	if got.Type != Store || got.Addr != 8 {
		t.Errorf("SinkFunc delivered %+v", got)
	}
}

func TestMultiFanOutOrder(t *testing.T) {
	var order []int
	m := Multi{
		SinkFunc(func(Event) { order = append(order, 1) }),
		SinkFunc(func(Event) { order = append(order, 2) }),
		SinkFunc(func(Event) { order = append(order, 3) }),
	}
	m.Emit(Event{})
	if len(order) != 3 || order[0] != 1 || order[1] != 2 || order[2] != 3 {
		t.Errorf("fan-out order = %v", order)
	}
}

func TestCounter(t *testing.T) {
	var c Counter
	c.Emit(Event{Type: Alloc})
	c.Emit(Event{Type: Alloc})
	c.Emit(Event{Type: Enter})
	if c.Count(Alloc) != 2 || c.Count(Enter) != 1 || c.Total != 3 {
		t.Errorf("counter = %+v", c)
	}
	if c.Count(Free) != 0 {
		t.Errorf("Count(Free) = %d, want 0", c.Count(Free))
	}
}
