// Package swat reimplements the SWAT memory-leak detector (Chilimbi &
// Hauswirth, ASPLOS 2004) to the fidelity the paper's Table 1
// comparison requires.
//
// SWAT's premise is *staleness*, not reachability: it monitors heap
// accesses (with adaptive sampling to bound overhead) and flags
// objects that have not been touched for a long time as leaks,
// aggregated by allocation site. Two consequences the paper leans on:
//
//   - SWAT finds leaks HeapMD cannot: objects that remain *reachable*
//     but are never used again (a forgotten cache) are stale even
//     though no heap-graph metric moves.
//   - SWAT reports false positives HeapMD does not: "cached objects
//     that are reachable but not accessed" look exactly like leaks to
//     a staleness detector; HeapMD, which tracks structure rather
//     than staleness, stays quiet (Table 1 shows 1 SWAT false positive
//     each on two of the three applications, and none for HeapMD).
//
// The detector consumes the same event stream as HeapMD's execution
// logger, so one run can drive both tools — how the paper ran its
// side-by-side comparison.
package swat

import (
	"sort"

	"heapmd/internal/event"
	"heapmd/internal/intervals"
)

// Options configures the detector.
type Options struct {
	// IdleFraction: an object is stale when it has been idle for at
	// least this fraction of the observed run. Default 0.5.
	IdleFraction float64
	// MinStaleCount: a site is reported only when at least this many
	// of its live objects are stale — single stray objects are
	// noise, systemic leaks accumulate. Default 3.
	MinStaleCount int
	// MinStaleFraction: a site is reported only when at least this
	// fraction of its live objects are stale. Churning pools have
	// long-lifetime tails; requiring a substantial share of a site's
	// population to be stale separates leaks from tails. Default
	// 0.3 — leaks share allocation sites with healthy objects (the
	// Figure 11 typo leaks lists from a site that also feeds live
	// lists), so demanding near-total staleness hides them.
	MinStaleFraction float64
	// SampleAfter enables adaptive access sampling: once a site has
	// observed this many accesses, only every 8th access updates
	// staleness bookkeeping (SWAT samples frequently-executed code
	// paths at reduced rates). Zero disables sampling. Default 4096.
	SampleAfter uint64
}

func (o Options) withDefaults() Options {
	if o.IdleFraction == 0 {
		o.IdleFraction = 0.5
	}
	if o.MinStaleCount == 0 {
		o.MinStaleCount = 3
	}
	if o.MinStaleFraction == 0 {
		o.MinStaleFraction = 0.3
	}
	if o.SampleAfter == 0 {
		o.SampleAfter = 4096
	}
	return o
}

// objRec tracks one live object.
type objRec struct {
	site       event.FnID
	allocTick  uint64
	lastAccess uint64
}

// Leak is one reported leak site.
type Leak struct {
	// Site is the allocation site whose objects went stale.
	Site event.FnID
	// SiteName is the resolved name (when a symtab was supplied).
	SiteName string
	// Stale is the number of stale live objects at the site.
	Stale int
	// Live is the total number of live objects at the site.
	Live int
	// MaxIdle is the longest idle period among the stale objects,
	// in event ticks.
	MaxIdle uint64
}

// Detector implements event.Sink.
type Detector struct {
	opts     Options
	clock    uint64 // advances once per event
	objects  *intervals.Map[*objRec]
	siteHits map[event.FnID]uint64
}

// New creates a SWAT detector.
func New(opts Options) *Detector {
	return &Detector{
		opts:     opts.withDefaults(),
		objects:  intervals.New[*objRec](),
		siteHits: make(map[event.FnID]uint64),
	}
}

// Emit implements event.Sink.
func (d *Detector) Emit(e event.Event) {
	d.clock++
	switch e.Type {
	case event.Alloc:
		d.objects.Insert(e.Addr, e.Size, &objRec{
			site:       e.Fn,
			allocTick:  d.clock,
			lastAccess: d.clock, // initialization counts as an access
		})
	case event.Free:
		d.objects.Remove(e.Addr)
	case event.Realloc:
		if rec, ok := d.objects.Get(e.Addr); ok {
			d.objects.Remove(e.Addr)
			rec.lastAccess = d.clock
			d.objects.Insert(e.Value, e.Size, rec)
		}
	case event.Store, event.Load:
		d.touch(e.Addr)
	}
}

// touch records an access to the object containing addr, subject to
// adaptive sampling.
func (d *Detector) touch(addr uint64) {
	_, _, rec, ok := d.objects.Stab(addr)
	if !ok {
		return
	}
	hits := d.siteHits[rec.site]
	d.siteHits[rec.site] = hits + 1
	if d.opts.SampleAfter > 0 && hits > d.opts.SampleAfter && hits%8 != 0 {
		// Sampled out: SWAT trades access-tracking precision on hot
		// paths for overhead; occasionally this manufactures
		// staleness, one source of its false positives.
		return
	}
	rec.lastAccess = d.clock
}

// Clock returns the number of events observed.
func (d *Detector) Clock() uint64 { return d.clock }

// Live returns the number of tracked live objects.
func (d *Detector) Live() int { return d.objects.Len() }

// Report aggregates stale live objects by allocation site and returns
// the sites that cross the reporting thresholds, most stale first.
// sym, when non-nil, resolves site names.
func (d *Detector) Report(sym *event.Symtab) []Leak {
	idleCut := uint64(float64(d.clock) * d.opts.IdleFraction)
	type agg struct {
		stale, live int
		maxIdle     uint64
	}
	sites := make(map[event.FnID]*agg)
	d.objects.Walk(func(_, _ uint64, rec *objRec) bool {
		a := sites[rec.site]
		if a == nil {
			a = &agg{}
			sites[rec.site] = a
		}
		a.live++
		if idle := d.clock - rec.lastAccess; idle >= idleCut {
			a.stale++
			if idle > a.maxIdle {
				a.maxIdle = idle
			}
		}
		return true
	})
	var out []Leak
	for site, a := range sites {
		if a.stale < d.opts.MinStaleCount {
			continue
		}
		if float64(a.stale) < d.opts.MinStaleFraction*float64(a.live) {
			continue
		}
		l := Leak{Site: site, Stale: a.stale, Live: a.live, MaxIdle: a.maxIdle}
		if sym != nil {
			l.SiteName = sym.Name(site)
		}
		out = append(out, l)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Stale != out[j].Stale {
			return out[i].Stale > out[j].Stale
		}
		return out[i].Site < out[j].Site
	})
	return out
}
