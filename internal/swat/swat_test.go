package swat

import (
	"testing"

	"heapmd/internal/event"
	"heapmd/internal/faults"
	"heapmd/internal/workloads"
)

// drive sends a synthetic event sequence: n objects allocated at a
// site, optionally touched periodically, padded with filler events to
// advance the clock.
func drive(d *Detector, site event.FnID, n int, touchEvery int, filler int) []uint64 {
	var addrs []uint64
	for i := 0; i < n; i++ {
		addr := uint64(0x1000_0000 + i*64)
		addrs = append(addrs, addr)
		d.Emit(event.Event{Type: event.Alloc, Fn: site, Addr: addr, Size: 32})
	}
	for t := 0; t < filler; t++ {
		if touchEvery > 0 && t%touchEvery == 0 {
			for _, a := range addrs {
				d.Emit(event.Event{Type: event.Load, Addr: a})
			}
		} else {
			// Filler access to untracked memory advances the clock.
			d.Emit(event.Event{Type: event.Load, Addr: 1})
		}
	}
	return addrs
}

func TestAbandonedObjectsReported(t *testing.T) {
	d := New(Options{})
	drive(d, 7, 5, 0, 1000) // 5 objects, never touched again
	leaks := d.Report(nil)
	if len(leaks) != 1 {
		t.Fatalf("leaks = %d, want 1", len(leaks))
	}
	if leaks[0].Site != 7 || leaks[0].Stale != 5 || leaks[0].Live != 5 {
		t.Errorf("leak = %+v", leaks[0])
	}
}

func TestTouchedObjectsNotReported(t *testing.T) {
	d := New(Options{})
	drive(d, 7, 5, 100, 1000) // touched every 100 events
	if leaks := d.Report(nil); len(leaks) != 0 {
		t.Fatalf("touched objects reported: %+v", leaks)
	}
}

func TestFreedObjectsNotReported(t *testing.T) {
	d := New(Options{})
	addrs := drive(d, 7, 5, 0, 500)
	for _, a := range addrs {
		d.Emit(event.Event{Type: event.Free, Addr: a, Size: 32})
	}
	for t2 := 0; t2 < 500; t2++ {
		d.Emit(event.Event{Type: event.Load, Addr: 1})
	}
	if leaks := d.Report(nil); len(leaks) != 0 {
		t.Fatalf("freed objects reported: %+v", leaks)
	}
	if d.Live() != 0 {
		t.Errorf("Live = %d", d.Live())
	}
}

func TestMinStaleCount(t *testing.T) {
	d := New(Options{MinStaleCount: 3})
	drive(d, 7, 2, 0, 1000) // only 2 stale: under threshold
	if leaks := d.Report(nil); len(leaks) != 0 {
		t.Fatalf("under-threshold site reported: %+v", leaks)
	}
}

func TestMinStaleFraction(t *testing.T) {
	d := New(Options{MinStaleFraction: 0.8, MinStaleCount: 3})
	// 4 stale objects and 16 busy ones at the same site: 20% stale.
	site := event.FnID(9)
	var busy []uint64
	for i := 0; i < 16; i++ {
		a := uint64(0x2000_0000 + i*64)
		busy = append(busy, a)
		d.Emit(event.Event{Type: event.Alloc, Fn: site, Addr: a, Size: 32})
	}
	for i := 0; i < 4; i++ {
		d.Emit(event.Event{Type: event.Alloc, Fn: site, Addr: uint64(0x3000_0000 + i*64), Size: 32})
	}
	for t2 := 0; t2 < 2000; t2++ {
		d.Emit(event.Event{Type: event.Load, Addr: busy[t2%len(busy)]})
	}
	if leaks := d.Report(nil); len(leaks) != 0 {
		t.Fatalf("mostly-busy site reported: %+v", leaks)
	}
}

func TestReallocKeepsTracking(t *testing.T) {
	d := New(Options{})
	for i := 0; i < 4; i++ {
		d.Emit(event.Event{Type: event.Alloc, Fn: 7, Addr: uint64(0x1000 + i*64), Size: 32})
	}
	// Move one object; it stays tracked at its new address.
	d.Emit(event.Event{Type: event.Realloc, Addr: 0x1000, Value: 0x9000, Size: 64})
	for t2 := 0; t2 < 1000; t2++ {
		d.Emit(event.Event{Type: event.Load, Addr: 1})
	}
	leaks := d.Report(nil)
	if len(leaks) != 1 || leaks[0].Stale != 4 {
		t.Fatalf("leaks after realloc = %+v", leaks)
	}
}

func TestSiteNameResolution(t *testing.T) {
	sym := event.NewSymtab()
	site := sym.Intern("assets.load")
	d := New(Options{})
	drive(d, site, 4, 0, 800)
	leaks := d.Report(sym)
	if len(leaks) != 1 || leaks[0].SiteName != "assets.load" {
		t.Fatalf("leaks = %+v", leaks)
	}
}

// TestReachableLeakVisibleToSWAT is the Table 1 division of labour:
// a reachable-but-never-accessed cache is exactly what SWAT sees and
// HeapMD does not (Section 4.2).
func TestReachableLeakVisibleToSWAT(t *testing.T) {
	w, err := workloads.Get("multimedia")
	if err != nil {
		t.Fatal(err)
	}
	in := w.Inputs(1)[0]
	plan := faults.NewPlan().Enable(faults.ReachableLeak, faults.Config{MaxTriggers: 8})
	d := New(Options{})
	_, p, err := workloads.RunLogged(w, in, workloads.RunConfig{
		Plan:       plan,
		ExtraSinks: []event.Sink{d},
	})
	if err != nil {
		t.Fatal(err)
	}
	leaks := d.Report(p.Sym())
	found := false
	for _, l := range leaks {
		if l.SiteName == "mm.leak" || l.SiteName == "mm.cacheStore" {
			found = true
		}
	}
	if !found {
		t.Errorf("SWAT missed the reachable leak; reports: %+v", leaks)
	}
}

func TestCleanWorkloadRunFewReports(t *testing.T) {
	// On a fault-free run SWAT should report at most a couple of
	// cache-like sites (its documented false-positive mode), not a
	// flood.
	w, err := workloads.Get("multimedia")
	if err != nil {
		t.Fatal(err)
	}
	in := w.Inputs(1)[0]
	d := New(Options{})
	_, p, err := workloads.RunLogged(w, in, workloads.RunConfig{
		ExtraSinks: []event.Sink{d},
	})
	if err != nil {
		t.Fatal(err)
	}
	leaks := d.Report(p.Sym())
	if len(leaks) > 3 {
		names := make([]string, len(leaks))
		for i, l := range leaks {
			names[i] = l.SiteName
		}
		t.Errorf("SWAT reported %d sites on a clean run: %v", len(leaks), names)
	}
}

func BenchmarkEmitStore(b *testing.B) {
	d := New(Options{})
	for i := 0; i < 1000; i++ {
		d.Emit(event.Event{Type: event.Alloc, Fn: 1, Addr: uint64(0x1000 + i*64), Size: 32})
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		d.Emit(event.Event{Type: event.Store, Addr: uint64(0x1000 + (i%1000)*64)})
	}
}
