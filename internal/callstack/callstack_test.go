package callstack

import (
	"testing"
	"testing/quick"

	"heapmd/internal/event"
)

func TestTrackerEnterLeave(t *testing.T) {
	tr := NewTracker()
	if tr.Depth() != 0 || tr.Top() != event.NoFn {
		t.Fatal("fresh tracker not empty")
	}
	tr.Enter(1)
	tr.Enter(2)
	tr.Enter(3)
	if tr.Depth() != 3 || tr.Top() != 3 {
		t.Fatalf("depth=%d top=%d", tr.Depth(), tr.Top())
	}
	tr.Leave()
	if tr.Top() != 2 {
		t.Errorf("after leave top = %d, want 2", tr.Top())
	}
	snap := tr.Snapshot()
	if len(snap) != 2 || snap[0] != 1 || snap[1] != 2 {
		t.Errorf("snapshot = %v, want [1 2]", snap)
	}
}

func TestTrackerLeaveEmpty(t *testing.T) {
	tr := NewTracker()
	tr.Leave() // must not panic
	if tr.Depth() != 0 {
		t.Error("leave on empty stack changed depth")
	}
}

func TestTrackerObserve(t *testing.T) {
	tr := NewTracker()
	if !tr.Observe(event.Event{Type: event.Enter, Fn: 5}) {
		t.Error("Observe(Enter) should report true")
	}
	if tr.Observe(event.Event{Type: event.Store}) {
		t.Error("Observe(Store) should report false")
	}
	if tr.Depth() != 1 || tr.Top() != 5 {
		t.Error("Observe did not track Enter")
	}
	if !tr.Observe(event.Event{Type: event.Leave}) {
		t.Error("Observe(Leave) should report true")
	}
	if tr.Depth() != 0 {
		t.Error("Observe did not track Leave")
	}
}

func TestSnapshotIsCopy(t *testing.T) {
	tr := NewTracker()
	tr.Enter(1)
	snap := tr.Snapshot()
	tr.Enter(2)
	if len(snap) != 1 {
		t.Error("snapshot aliases live stack")
	}
}

func TestRingBasics(t *testing.T) {
	r := NewRing(3)
	if r.Cap() != 3 || r.Len() != 0 {
		t.Fatalf("fresh ring cap=%d len=%d", r.Cap(), r.Len())
	}
	r.Add(Capture{Tick: 1})
	r.Add(Capture{Tick: 2})
	if r.Len() != 2 {
		t.Fatalf("Len = %d, want 2", r.Len())
	}
	got := r.Snapshot()
	if got[0].Tick != 1 || got[1].Tick != 2 {
		t.Errorf("snapshot order = %v", got)
	}
}

func TestRingEviction(t *testing.T) {
	r := NewRing(3)
	for tick := uint64(1); tick <= 5; tick++ {
		r.Add(Capture{Tick: tick})
	}
	got := r.Snapshot()
	if len(got) != 3 {
		t.Fatalf("Len after overflow = %d, want 3", len(got))
	}
	// Oldest two (1, 2) evicted; 3, 4, 5 retained oldest-first.
	for i, want := range []uint64{3, 4, 5} {
		if got[i].Tick != want {
			t.Errorf("snapshot[%d].Tick = %d, want %d", i, got[i].Tick, want)
		}
	}
}

func TestRingClear(t *testing.T) {
	r := NewRing(2)
	r.Add(Capture{Tick: 1})
	r.Clear()
	if r.Len() != 0 || len(r.Snapshot()) != 0 {
		t.Error("Clear did not empty the ring")
	}
	r.Add(Capture{Tick: 9})
	if got := r.Snapshot(); len(got) != 1 || got[0].Tick != 9 {
		t.Error("ring unusable after Clear")
	}
}

func TestRingNonPositiveCapacity(t *testing.T) {
	r := NewRing(0)
	if r.Cap() != 1 {
		t.Errorf("Cap = %d, want 1", r.Cap())
	}
	r.Add(Capture{Tick: 1})
	r.Add(Capture{Tick: 2})
	if got := r.Snapshot(); len(got) != 1 || got[0].Tick != 2 {
		t.Errorf("capacity-1 ring = %v", got)
	}
}

// TestRingKeepsNewestSuffix: after any sequence of adds, the ring
// holds exactly the last min(n, cap) captures in order.
func TestRingKeepsNewestSuffix(t *testing.T) {
	f := func(ticks []uint64, capSeed uint8) bool {
		capacity := int(capSeed%10) + 1
		r := NewRing(capacity)
		for _, tk := range ticks {
			r.Add(Capture{Tick: tk})
		}
		got := r.Snapshot()
		want := ticks
		if len(want) > capacity {
			want = want[len(want)-capacity:]
		}
		if len(got) != len(want) {
			return false
		}
		for i := range want {
			if got[i].Tick != want[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestSymtab(t *testing.T) {
	s := event.NewSymtab()
	a := s.Intern("alpha")
	b := s.Intern("beta")
	if a == b || a == event.NoFn || b == event.NoFn {
		t.Fatalf("interning collided: %d %d", a, b)
	}
	if s.Intern("alpha") != a {
		t.Error("re-interning returned different ID")
	}
	if s.Name(a) != "alpha" || s.Name(event.NoFn) != "<none>" || s.Name(999) != "?" {
		t.Error("Name resolution wrong")
	}
	if id, ok := s.Lookup("beta"); !ok || id != b {
		t.Error("Lookup failed")
	}
	if _, ok := s.Lookup("gamma"); ok {
		t.Error("Lookup of absent name should fail")
	}
	if s.Len() != 2 {
		t.Errorf("Len = %d, want 2", s.Len())
	}
	names := s.Names([]event.FnID{a, b})
	if names[0] != "alpha" || names[1] != "beta" {
		t.Errorf("Names = %v", names)
	}
	if s.Intern("") != event.NoFn {
		t.Error("empty name should intern to NoFn")
	}
}
