// Package callstack tracks the simulated program's call stack and
// maintains the circular buffer of stack captures that HeapMD uses for
// root-cause reporting.
//
// Paper Section 2.2: "HeapMD enables call-stack logging when a metric
// that was identified as stable during training approaches its
// calibrated maximum value with a positive slope, or when it
// approaches its minimum value with a negative slope. This call-stack
// logging into a circular buffer continues until either the metric
// moves away from the minimum/maximum calibrated value, or it crosses
// either extreme value, thus triggering a bug report." The anomaly
// detector (package detect) drives the arming policy; this package
// provides the mechanism.
package callstack

import "heapmd/internal/event"

// Tracker mirrors the simulated program's call stack from the
// Enter/Leave event stream.
type Tracker struct {
	stack []event.FnID
}

// NewTracker returns an empty call-stack tracker.
func NewTracker() *Tracker {
	return &Tracker{stack: make([]event.FnID, 0, 64)}
}

// Enter pushes fn.
func (t *Tracker) Enter(fn event.FnID) { t.stack = append(t.stack, fn) }

// Leave pops the top frame. Mismatched leaves (possible when a trace
// is truncated mid-call) pop whatever is on top; leaving an empty
// stack is a no-op.
func (t *Tracker) Leave() {
	if len(t.stack) > 0 {
		t.stack = t.stack[:len(t.stack)-1]
	}
}

// Observe updates the tracker from an event, ignoring non-call events,
// and reports whether the event affected the stack.
func (t *Tracker) Observe(e event.Event) bool {
	switch e.Type {
	case event.Enter:
		t.Enter(e.Fn)
		return true
	case event.Leave:
		t.Leave()
		return true
	}
	return false
}

// Depth returns the current stack depth.
func (t *Tracker) Depth() int { return len(t.stack) }

// Top returns the innermost frame, or NoFn when the stack is empty.
func (t *Tracker) Top() event.FnID {
	if len(t.stack) == 0 {
		return event.NoFn
	}
	return t.stack[len(t.stack)-1]
}

// Snapshot copies the current stack, outermost frame first.
func (t *Tracker) Snapshot() []event.FnID {
	out := make([]event.FnID, len(t.stack))
	copy(out, t.stack)
	return out
}

// Capture is one logged call stack, tagged with the metric sample that
// triggered logging.
type Capture struct {
	Tick  uint64       // metric computation point ordinal
	Value float64      // metric value at capture time
	Stack []event.FnID // outermost first
}

// Ring is a fixed-capacity circular buffer of Captures. When full, new
// captures overwrite the oldest — exactly the paper's design, which
// retains context "before, during, and after the metric crosses its
// calibrated minimum/maximum value".
type Ring struct {
	buf   []Capture
	start int // index of oldest element
	n     int // number of valid elements
}

// NewRing creates a ring holding up to capacity captures. Capacity
// must be positive; a non-positive value is treated as 1.
func NewRing(capacity int) *Ring {
	if capacity < 1 {
		capacity = 1
	}
	return &Ring{buf: make([]Capture, capacity)}
}

// Add appends a capture, evicting the oldest if full.
func (r *Ring) Add(c Capture) {
	if r.n < len(r.buf) {
		r.buf[(r.start+r.n)%len(r.buf)] = c
		r.n++
		return
	}
	r.buf[r.start] = c
	r.start = (r.start + 1) % len(r.buf)
}

// Len returns the number of captures currently held.
func (r *Ring) Len() int { return r.n }

// Cap returns the ring capacity.
func (r *Ring) Cap() int { return len(r.buf) }

// Snapshot returns the held captures oldest-first.
func (r *Ring) Snapshot() []Capture {
	out := make([]Capture, r.n)
	for i := 0; i < r.n; i++ {
		out[i] = r.buf[(r.start+i)%len(r.buf)]
	}
	return out
}

// Clear discards all captures.
func (r *Ring) Clear() {
	r.start, r.n = 0, 0
}
