package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func almostEqual(a, b float64) bool {
	return math.Abs(a-b) < 1e-9
}

func TestMean(t *testing.T) {
	tests := []struct {
		name string
		in   []float64
		want float64
	}{
		{"empty", nil, 0},
		{"single", []float64{4}, 4},
		{"pair", []float64{2, 4}, 3},
		{"negatives", []float64{-1, 1}, 0},
		{"mixed", []float64{1, 2, 3, 4, 5}, 3},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := Mean(tt.in); !almostEqual(got, tt.want) {
				t.Errorf("Mean(%v) = %v, want %v", tt.in, got, tt.want)
			}
		})
	}
}

func TestStdDev(t *testing.T) {
	tests := []struct {
		name string
		in   []float64
		want float64
	}{
		{"empty", nil, 0},
		{"single", []float64{7}, 0},
		{"constant", []float64{5, 5, 5, 5}, 0},
		{"spread", []float64{2, 4, 4, 4, 5, 5, 7, 9}, 2},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := StdDev(tt.in); !almostEqual(got, tt.want) {
				t.Errorf("StdDev(%v) = %v, want %v", tt.in, got, tt.want)
			}
		})
	}
}

func TestMinMax(t *testing.T) {
	if _, _, err := MinMax(nil); err != ErrEmpty {
		t.Fatalf("MinMax(nil) err = %v, want ErrEmpty", err)
	}
	min, max, err := MinMax([]float64{3, -1, 4, 1, 5})
	if err != nil {
		t.Fatal(err)
	}
	if min != -1 || max != 5 {
		t.Errorf("MinMax = (%v,%v), want (-1,5)", min, max)
	}
}

func TestFluctuation(t *testing.T) {
	tests := []struct {
		name string
		in   []float64
		want []float64
	}{
		{"short", []float64{1}, nil},
		{"doubling", []float64{1, 2}, []float64{100}},
		{"halving", []float64{2, 1}, []float64{-50}},
		{"flat", []float64{5, 5, 5}, []float64{0, 0}},
		{"zero to zero", []float64{0, 0}, []float64{0}},
		{"zero to nonzero", []float64{0, 3}, []float64{100}},
		{"nonzero to zero", []float64{4, 0}, []float64{-100}},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			got := Fluctuation(tt.in)
			if len(got) != len(tt.want) {
				t.Fatalf("Fluctuation(%v) = %v, want %v", tt.in, got, tt.want)
			}
			for i := range got {
				if !almostEqual(got[i], tt.want[i]) {
					t.Errorf("Fluctuation(%v)[%d] = %v, want %v", tt.in, i, got[i], tt.want[i])
				}
			}
		})
	}
}

func TestFluctuationLength(t *testing.T) {
	if err := quick.Check(func(xs []float64) bool {
		fl := Fluctuation(xs)
		if len(xs) < 2 {
			return fl == nil
		}
		return len(fl) == len(xs)-1
	}, nil); err != nil {
		t.Error(err)
	}
}

func TestTrim(t *testing.T) {
	xs := make([]float64, 100)
	for i := range xs {
		xs[i] = float64(i)
	}
	got := Trim(xs, 0.10)
	if len(got) != 80 {
		t.Fatalf("Trim kept %d elements, want 80", len(got))
	}
	if got[0] != 10 || got[len(got)-1] != 89 {
		t.Errorf("Trim bounds = [%v,%v], want [10,89]", got[0], got[len(got)-1])
	}
}

func TestTrimSmall(t *testing.T) {
	// Trimming must never discard everything.
	for n := 1; n <= 5; n++ {
		xs := make([]float64, n)
		if got := Trim(xs, 0.49); len(got) == 0 {
			t.Errorf("Trim of %d elements returned empty", n)
		}
	}
}

func TestTrimClamps(t *testing.T) {
	xs := []float64{1, 2, 3, 4}
	if got := Trim(xs, -1); len(got) != 4 {
		t.Errorf("Trim with negative frac kept %d, want 4", len(got))
	}
	if got := Trim(xs, 0.9); len(got) == 0 {
		t.Error("Trim with frac>=0.5 returned empty")
	}
}

func TestTrimBoundsMatchesTrim(t *testing.T) {
	if err := quick.Check(func(raw []float64, fracSeed uint8) bool {
		frac := float64(fracSeed%60) / 100 // 0.00 .. 0.59
		lo, hi := TrimBounds(len(raw), frac)
		trimmed := Trim(raw, frac)
		if len(raw) == 0 {
			return lo == 0 && hi == 0 && trimmed == nil
		}
		return hi-lo == len(trimmed) && lo >= 0 && hi <= len(raw)
	}, nil); err != nil {
		t.Error(err)
	}
}

func TestRange(t *testing.T) {
	r := NewRange(5)
	if !r.Contains(5) {
		t.Error("NewRange(5) should contain 5")
	}
	if r.Contains(5.1) || r.Contains(4.9) {
		t.Error("degenerate range should contain only its point")
	}
	r = r.Extend(3).Extend(9)
	if r.Min != 3 || r.Max != 9 {
		t.Errorf("Extend = %+v, want {3 9}", r)
	}
	if r.Width() != 6 {
		t.Errorf("Width = %v, want 6", r.Width())
	}
	u := r.Union(Range{Min: -2, Max: 4})
	if u.Min != -2 || u.Max != 9 {
		t.Errorf("Union = %+v, want {-2 9}", u)
	}
}

func TestRangeUnionProperties(t *testing.T) {
	// Union is commutative and contains both operands.
	if err := quick.Check(func(a, b, c, d float64) bool {
		r := Range{Min: math.Min(a, b), Max: math.Max(a, b)}
		s := Range{Min: math.Min(c, d), Max: math.Max(c, d)}
		u1, u2 := r.Union(s), s.Union(r)
		return u1 == u2 &&
			u1.Contains(r.Min) && u1.Contains(r.Max) &&
			u1.Contains(s.Min) && u1.Contains(s.Max)
	}, nil); err != nil {
		t.Error(err)
	}
}

func TestRangeOf(t *testing.T) {
	if _, err := RangeOf(nil); err != ErrEmpty {
		t.Fatalf("RangeOf(nil) err = %v, want ErrEmpty", err)
	}
	r, err := RangeOf([]float64{2, 8, 4})
	if err != nil {
		t.Fatal(err)
	}
	if r.Min != 2 || r.Max != 8 {
		t.Errorf("RangeOf = %+v, want {2 8}", r)
	}
}

func TestSummarize(t *testing.T) {
	if _, err := Summarize(nil); err != ErrEmpty {
		t.Fatalf("Summarize(nil) err = %v, want ErrEmpty", err)
	}
	// A perfectly flat series: zero change, zero deviation.
	s, err := Summarize([]float64{10, 10, 10, 10})
	if err != nil {
		t.Fatal(err)
	}
	if s.AvgChange != 0 || s.StdDevChange != 0 {
		t.Errorf("flat series summary = %+v, want zero change", s)
	}
	if s.Observed.Min != 10 || s.Observed.Max != 10 {
		t.Errorf("flat series observed = %+v", s.Observed)
	}
	if s.Samples != 4 {
		t.Errorf("Samples = %d, want 4", s.Samples)
	}
}

func TestSummarizeGrowth(t *testing.T) {
	// A steadily growing series has positive average change.
	s, err := Summarize([]float64{10, 11, 12.1, 13.31})
	if err != nil {
		t.Fatal(err)
	}
	if !almostEqual(s.AvgChange, 10) {
		t.Errorf("AvgChange = %v, want 10", s.AvgChange)
	}
	if s.StdDevChange > 1e-9 {
		t.Errorf("StdDevChange = %v, want ~0 for constant-rate growth", s.StdDevChange)
	}
}

func BenchmarkFluctuation(b *testing.B) {
	xs := make([]float64, 10000)
	for i := range xs {
		xs[i] = float64(i%37) + 1
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Fluctuation(xs)
	}
}

func BenchmarkSummarize(b *testing.B) {
	xs := make([]float64, 10000)
	for i := range xs {
		xs[i] = 50 + math.Sin(float64(i)/100)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Summarize(xs); err != nil {
			b.Fatal(err)
		}
	}
}

// TestTrimCountProperties pins the single rounding rule shared by the
// summarizer's trim and the detector's startup-skip window.
func TestTrimCountProperties(t *testing.T) {
	fracs := []float64{-1, -0.3, 0, 0.05, 0.1, 0.25, 0.4999, 0.5, 0.75, 1, 2.5}
	for n := 0; n <= 60; n++ {
		xs := make([]float64, n)
		for i := range xs {
			xs[i] = float64(i)
		}
		for _, frac := range fracs {
			k := TrimCount(n, frac)
			if k < 0 {
				t.Fatalf("TrimCount(%d, %v) = %d < 0", n, frac, k)
			}
			if n >= 1 && 2*k >= n {
				t.Fatalf("TrimCount(%d, %v) = %d empties the series", n, frac, k)
			}
			lo, hi := TrimBounds(n, frac)
			if lo != k || hi != n-k {
				t.Fatalf("TrimBounds(%d, %v) = (%d, %d), want (%d, %d)", n, frac, lo, hi, k, n-k)
			}
			trimmed := Trim(xs, frac)
			if n == 0 {
				if trimmed != nil {
					t.Fatalf("Trim(empty) = %v", trimmed)
				}
				continue
			}
			if len(trimmed) != n-2*k {
				t.Fatalf("len(Trim(%d, %v)) = %d, want %d", n, frac, len(trimmed), n-2*k)
			}
			if trimmed[0] != float64(k) || trimmed[len(trimmed)-1] != float64(n-k-1) {
				t.Fatalf("Trim(%d, %v) kept [%v, %v], want [%d, %d]",
					n, frac, trimmed[0], trimmed[len(trimmed)-1], k, n-k-1)
			}
		}
	}
}
