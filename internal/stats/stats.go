// Package stats provides the small statistical toolkit HeapMD uses to
// summarize metric time series: means, standard deviations, min/max
// ranges, and the inter-sample fluctuation series that underlies the
// paper's stability definition (Section 3).
//
// All functions operate on float64 slices and are deliberately
// allocation-light; the execution logger calls them on every metric
// report consolidation.
package stats

import (
	"errors"
	"math"
)

// ErrEmpty is returned by functions that cannot produce a meaningful
// result for an empty input series.
var ErrEmpty = errors.New("stats: empty series")

// Mean returns the arithmetic mean of xs. It returns 0 for an empty
// slice; callers that must distinguish emptiness should check first.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	sum := 0.0
	for _, x := range xs {
		sum += x
	}
	return sum / float64(len(xs))
}

// StdDev returns the population standard deviation of xs (the paper
// reports population deviations over the full fluctuation series).
// It returns 0 for series shorter than 2.
func StdDev(xs []float64) float64 {
	if len(xs) < 2 {
		return 0
	}
	m := Mean(xs)
	sum := 0.0
	for _, x := range xs {
		d := x - m
		sum += d * d
	}
	return math.Sqrt(sum / float64(len(xs)))
}

// MinMax returns the minimum and maximum of xs.
func MinMax(xs []float64) (min, max float64, err error) {
	if len(xs) == 0 {
		return 0, 0, ErrEmpty
	}
	min, max = xs[0], xs[0]
	for _, x := range xs[1:] {
		if x < min {
			min = x
		}
		if x > max {
			max = x
		}
	}
	return min, max, nil
}

// Fluctuation computes the percentage-change series of xs exactly as
// defined in Section 3 of the paper: if a metric changes from y1 to y2
// between consecutive metric computation points, the fluctuation at the
// second point is (y2-y1)/y1 * 100.
//
// When y1 is zero the relative change is undefined; HeapMD treats a
// 0 -> 0 transition as 0% change, and a 0 -> y2 transition as a 100%
// change (the metric appeared from nothing). This matches the intent of
// the stability test: a metric that sits at zero is perfectly stable,
// while one that jumps away from zero is not.
//
// The result has len(xs)-1 entries; it is empty for series shorter
// than 2.
func Fluctuation(xs []float64) []float64 {
	if len(xs) < 2 {
		return nil
	}
	out := make([]float64, 0, len(xs)-1)
	for i := 1; i < len(xs); i++ {
		y1, y2 := xs[i-1], xs[i]
		switch {
		case y1 == 0 && y2 == 0:
			out = append(out, 0)
		case y1 == 0:
			out = append(out, 100)
		default:
			out = append(out, (y2-y1)/y1*100)
		}
	}
	return out
}

// TrimCount returns the number of samples Trim discards at EACH end of
// an n-sample series: the single rounding rule shared by the
// summarizer's trim (Trim/TrimBounds) and the online detector's
// startup-skip window (model.SkipStartSamples). Keeping one
// implementation matters: if the detector computed its own count with
// different rounding or clamping, it would start checking samples the
// summarizer's calibration had discarded as startup noise — or keep
// skipping samples the model was calibrated on. frac is clamped to
// [0, 0.5); for n >= 1 the clamp guarantees 2*TrimCount(n, frac) < n,
// so a trimmed series is never empty.
func TrimCount(n int, frac float64) int {
	if n <= 0 {
		return 0
	}
	if frac < 0 {
		frac = 0
	}
	if frac >= 0.5 {
		frac = 0.4999
	}
	k := int(float64(n) * frac)
	if 2*k >= n {
		// Unreachable for clamped frac (floor(n*frac) < n/2), kept as
		// a guard so the "never empty" contract survives refactoring.
		k = (n - 1) / 2
	}
	return k
}

// Trim removes the leading and trailing fraction frac of xs, returning
// the middle portion. HeapMD uses Trim with frac=0.10 to discard
// startup and shutdown samples (Section 2.1). frac is clamped to
// [0, 0.5). Trim always leaves at least one element when xs is
// non-empty.
func Trim(xs []float64, frac float64) []float64 {
	if len(xs) == 0 {
		return nil
	}
	k := TrimCount(len(xs), frac)
	return xs[k : len(xs)-k]
}

// TrimBounds returns the [lo, hi) index range that Trim would keep.
func TrimBounds(n int, frac float64) (lo, hi int) {
	if n == 0 {
		return 0, 0
	}
	k := TrimCount(n, frac)
	return k, n - k
}

// Range is an inclusive [Min, Max] interval of observed metric values.
// The summarized metric report (the model) stores one Range per
// globally stable metric.
type Range struct {
	Min float64 `json:"min"`
	Max float64 `json:"max"`
}

// NewRange returns the degenerate range containing only x.
func NewRange(x float64) Range { return Range{Min: x, Max: x} }

// Contains reports whether x lies within r (inclusive).
func (r Range) Contains(x float64) bool { return x >= r.Min && x <= r.Max }

// Extend grows r to include x and returns the result.
func (r Range) Extend(x float64) Range {
	if x < r.Min {
		r.Min = x
	}
	if x > r.Max {
		r.Max = x
	}
	return r
}

// Union returns the smallest range containing both r and s.
func (r Range) Union(s Range) Range {
	if s.Min < r.Min {
		r.Min = s.Min
	}
	if s.Max > r.Max {
		r.Max = s.Max
	}
	return r
}

// Width returns Max-Min. Wide stable ranges make weaker anomaly
// detectors (paper Section 3.1), so experiment code reports Width.
func (r Range) Width() float64 { return r.Max - r.Min }

// RangeOf computes the range spanned by xs.
func RangeOf(xs []float64) (Range, error) {
	min, max, err := MinMax(xs)
	if err != nil {
		return Range{}, err
	}
	return Range{Min: min, Max: max}, nil
}

// Summary bundles the statistics HeapMD's summarizer derives from one
// metric's fluctuation series on one input.
type Summary struct {
	// AvgChange is the mean of the fluctuation series, in percent.
	AvgChange float64
	// StdDevChange is the standard deviation of the fluctuation
	// series.
	StdDevChange float64
	// Observed is the range of raw metric values (after trimming).
	Observed Range
	// Samples is the number of (trimmed) metric samples consumed.
	Samples int
}

// Summarize computes a Summary from a trimmed metric value series.
func Summarize(trimmed []float64) (Summary, error) {
	if len(trimmed) == 0 {
		return Summary{}, ErrEmpty
	}
	fl := Fluctuation(trimmed)
	obs, err := RangeOf(trimmed)
	if err != nil {
		return Summary{}, err
	}
	return Summary{
		AvgChange:    Mean(fl),
		StdDevChange: StdDev(fl),
		Observed:     obs,
		Samples:      len(trimmed),
	}, nil
}
