package addrindex

import (
	"testing"

	"heapmd/internal/intervals"
)

// BenchmarkAddrResolve measures the core hot-path operation — resolve
// an address to its containing object — on the pagemap table against
// the treap it replaces, over an identical 64k-object heap image.
//
//   - scatter: every probe lands in a different object (cache-hostile).
//   - burst: runs of consecutive probes land in one object, the
//     pattern the one-entry last-hit cache targets.
//   - churn: resolve mixed with insert/remove pairs, the full
//     alloc/free/store mix the logger generates.
func BenchmarkAddrResolve(b *testing.B) {
	const n = 1 << 16
	const objBytes = 64
	base := func(i int) uint64 { return uint64(0x100_0000_0000) + uint64(i)*objBytes }

	buildTable := func() *Table[int] {
		t := New[int]()
		for i := 0; i < n; i++ {
			t.Insert(base(i), objBytes, i)
		}
		return t
	}
	buildTreap := func() *intervals.Map[int] {
		m := intervals.New[int]()
		for i := 0; i < n; i++ {
			m.Insert(base(i), objBytes, i)
		}
		return m
	}

	b.Run("pagemap/scatter", func(b *testing.B) {
		t := buildTable()
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, _, _, ok := t.Stab(base((i*31+7)&(n-1)) + 8); !ok {
				b.Fatal("miss")
			}
		}
	})
	b.Run("treap/scatter", func(b *testing.B) {
		m := buildTreap()
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, _, _, ok := m.Stab(base((i*31+7)&(n-1)) + 8); !ok {
				b.Fatal("miss")
			}
		}
	})
	b.Run("pagemap/burst", func(b *testing.B) {
		t := buildTable()
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, _, _, ok := t.Stab(base((i/8)&(n-1)) + uint64(i%8)*8); !ok {
				b.Fatal("miss")
			}
		}
	})
	b.Run("treap/burst", func(b *testing.B) {
		m := buildTreap()
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, _, _, ok := m.Stab(base((i/8)&(n-1)) + uint64(i%8)*8); !ok {
				b.Fatal("miss")
			}
		}
	})
	b.Run("pagemap/churn", func(b *testing.B) {
		t := buildTable()
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			k := (i * 17) & (n - 1)
			t.Remove(base(k))
			t.Insert(base(k), objBytes, i)
			if _, _, _, ok := t.Stab(base((i*31+7)&(n-1)) + 8); !ok {
				b.Fatal("miss")
			}
		}
	})
	b.Run("treap/churn", func(b *testing.B) {
		m := buildTreap()
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			k := (i * 17) & (n - 1)
			m.Remove(base(k))
			m.Insert(base(k), objBytes, i)
			if _, _, _, ok := m.Stab(base((i*31+7)&(n-1)) + 8); !ok {
				b.Fatal("miss")
			}
		}
	})
}
