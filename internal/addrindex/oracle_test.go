package addrindex

import (
	"math/rand"
	"testing"

	"heapmd/internal/intervals"
)

// TestOracleAgainstIntervals drives identical randomized operation
// sequences through the pagemap table and the treap it replaces,
// comparing every query result. The treap is the semantic oracle: any
// divergence in Stab, Get, Remove or Len is a bug in the pagemap.
func TestOracleAgainstIntervals(t *testing.T) {
	for seed := int64(0); seed < 8; seed++ {
		seed := seed
		t.Run("", func(t *testing.T) {
			rng := rand.New(rand.NewSource(seed))
			tb := New[int]()
			or := intervals.New[int]()
			live := make(map[uint64]uint64) // base -> size

			// Address pool mixing tight same-page clusters, page-
			// spanning objects and far-apart chunks.
			randBase := func() uint64 {
				region := uint64(rng.Intn(4)+1) << 32
				return region + uint64(rng.Intn(1<<16))*8
			}
			randSize := func() uint64 {
				switch rng.Intn(10) {
				case 0:
					return 0 // degenerate
				case 1, 2:
					return uint64(rng.Intn(4*pageSize) + 1) // page-spanning
				default:
					return uint64(rng.Intn(256) + 8) // typical object
				}
			}

			for step := 0; step < 20000; step++ {
				switch rng.Intn(10) {
				case 0, 1, 2, 3: // insert
					base := randBase()
					size := randSize()
					// Keep the disjointness invariant both structures
					// assume: skip candidates overlapping a live range
					// or duplicating a live base. (A zero-size range
					// strictly inside another range is permitted —
					// that is exactly the transparency edge case.)
					conflict := false
					for b, s := range live {
						if base == b || (base < b+s && b < base+size) {
							conflict = true
							break
						}
					}
					if conflict {
						continue
					}
					tb.Insert(base, size, step)
					or.Insert(base, size, step)
					live[base] = size
				case 4: // remove a live base
					for b := range live {
						gotV, gotOK := tb.Remove(b)
						wantV, wantOK := or.Get(b)
						if !or.Remove(b) || !gotOK || gotV != wantV || !wantOK {
							t.Fatalf("seed %d step %d: Remove(%#x) = (%d,%v), oracle (%d,%v)",
								seed, step, b, gotV, gotOK, wantV, wantOK)
						}
						delete(live, b)
						break
					}
				case 5: // remove an absent base
					b := randBase()
					if _, isLive := live[b]; isLive {
						continue
					}
					_, gotOK := tb.Remove(b)
					wantOK := or.Remove(b)
					if gotOK != wantOK {
						t.Fatalf("seed %d step %d: absent Remove(%#x) = %v, oracle %v", seed, step, b, gotOK, wantOK)
					}
				default: // stab + get probes
					var addr uint64
					if len(live) > 0 && rng.Intn(2) == 0 {
						// Probe around a live range: interior, base,
						// one-past-end, just-below.
						for b, s := range live {
							switch rng.Intn(4) {
							case 0:
								addr = b
							case 1:
								addr = b + s // one past the end: must miss or hit a neighbour
							case 2:
								addr = b + s/2
							default:
								addr = b - 1
							}
							break
						}
					} else {
						addr = randBase() + uint64(rng.Intn(64))
					}
					gb, gs, gv, gok := tb.Stab(addr)
					wb, ws, wv, wok := or.Stab(addr)
					if gok != wok || (gok && (gb != wb || gs != ws || *gv != wv)) {
						t.Fatalf("seed %d step %d: Stab(%#x) = (%#x,%d,ok=%v), oracle (%#x,%d,ok=%v)",
							seed, step, addr, gb, gs, gok, wb, ws, wok)
					}
					g := tb.Get(addr)
					ov, ook := or.Get(addr)
					if (g != nil) != ook || (g != nil && *g != ov) {
						t.Fatalf("seed %d step %d: Get(%#x) mismatch", seed, step, addr)
					}
				}
				if tb.Len() != or.Len() {
					t.Fatalf("seed %d step %d: Len %d, oracle %d", seed, step, tb.Len(), or.Len())
				}
			}

			// Final sweep: walk both and compare the full contents.
			type rec struct{ base, size uint64 }
			var got, want []rec
			tb.Walk(func(b, s uint64, _ *int) bool { got = append(got, rec{b, s}); return true })
			or.Walk(func(b, s uint64, _ int) bool { want = append(want, rec{b, s}); return true })
			if len(got) != len(want) {
				t.Fatalf("seed %d: walk lengths %d vs %d", seed, len(got), len(want))
			}
			for i := range want {
				if got[i] != want[i] {
					t.Fatalf("seed %d: walk[%d] = %+v, oracle %+v", seed, i, got[i], want[i])
				}
			}
		})
	}
}
