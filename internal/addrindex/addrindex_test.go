package addrindex

import (
	"testing"
)

func TestInsertGetRemove(t *testing.T) {
	tb := New[string]()
	tb.Insert(100, 24, "a")
	tb.Insert(200, 8, "b")
	if tb.Len() != 2 {
		t.Fatalf("Len = %d, want 2", tb.Len())
	}
	if v := tb.Get(100); v == nil || *v != "a" {
		t.Errorf("Get(100) = %v", v)
	}
	if v := tb.Get(101); v != nil {
		t.Error("Get of interior address should fail")
	}
	if v, ok := tb.Remove(100); !ok || v != "a" {
		t.Errorf("Remove(100) = (%q,%v)", v, ok)
	}
	if _, ok := tb.Remove(100); ok {
		t.Error("second Remove(100) should succeed only once")
	}
	if tb.Len() != 1 {
		t.Errorf("Len = %d, want 1", tb.Len())
	}
}

func TestStabBasics(t *testing.T) {
	tb := New[int]()
	tb.Insert(100, 24, 1)
	tb.Insert(200, 8, 2)

	base, size, v, ok := tb.Stab(116)
	if !ok || base != 100 || size != 24 || *v != 1 {
		t.Errorf("Stab(116) = (%d,%d,%v,%v)", base, size, v, ok)
	}
	if _, _, _, ok := tb.Stab(124); ok {
		t.Error("Stab one-past-end should miss")
	}
	if _, _, _, ok := tb.Stab(50); ok {
		t.Error("Stab below all ranges should miss")
	}
	if _, _, _, ok := tb.Stab(150); ok {
		t.Error("Stab in gap should miss")
	}
	if base, _, v, ok := tb.Stab(200); !ok || base != 200 || *v != 2 {
		t.Error("Stab at exact base should hit")
	}
}

// TestStabEdgeCases mirrors the intervals.Map table exactly: the
// pagemap must implement the same half-open, zero-size-transparent
// semantics the treap does.
func TestStabEdgeCases(t *testing.T) {
	type rng struct {
		base, size uint64
		val        int
	}
	type probe struct {
		addr     uint64
		wantBase uint64
		wantOK   bool
	}
	cases := []struct {
		name   string
		ranges []rng
		probes []probe
	}{
		{
			name:   "half-open end",
			ranges: []rng{{base: 100, size: 24, val: 1}},
			probes: []probe{
				{addr: 100, wantBase: 100, wantOK: true},
				{addr: 123, wantBase: 100, wantOK: true},
				{addr: 124, wantOK: false},
				{addr: 99, wantOK: false},
			},
		},
		{
			name:   "adjacent ranges share no address",
			ranges: []rng{{base: 64, size: 32, val: 1}, {base: 96, size: 32, val: 2}},
			probes: []probe{
				{addr: 95, wantBase: 64, wantOK: true},
				{addr: 96, wantBase: 96, wantOK: true},
				{addr: 127, wantBase: 96, wantOK: true},
				{addr: 128, wantOK: false},
			},
		},
		{
			name:   "zero-size range is never stabbed",
			ranges: []rng{{base: 200, size: 0, val: 1}},
			probes: []probe{
				{addr: 200, wantOK: false},
				{addr: 199, wantOK: false},
				{addr: 201, wantOK: false},
			},
		},
		{
			name:   "zero-size range does not shadow its container",
			ranges: []rng{{base: 100, size: 64, val: 1}, {base: 128, size: 0, val: 2}},
			probes: []probe{
				{addr: 127, wantBase: 100, wantOK: true},
				{addr: 128, wantBase: 100, wantOK: true},
				{addr: 163, wantBase: 100, wantOK: true},
				{addr: 164, wantOK: false},
			},
		},
		{
			name: "range ending at the top of the address space",
			ranges: []rng{
				{base: ^uint64(0) - 15, size: 16, val: 1},
			},
			probes: []probe{
				{addr: ^uint64(0) - 16, wantOK: false},
				{addr: ^uint64(0) - 15, wantBase: ^uint64(0) - 15, wantOK: true},
				{addr: ^uint64(0), wantBase: ^uint64(0) - 15, wantOK: true},
				{addr: 0, wantOK: false},
			},
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			tb := New[int]()
			for _, r := range tc.ranges {
				tb.Insert(r.base, r.size, r.val)
			}
			for _, p := range tc.probes {
				base, _, _, ok := tb.Stab(p.addr)
				if ok != p.wantOK || (ok && base != p.wantBase) {
					t.Errorf("Stab(%#x) = (base=%#x, ok=%v), want (base=%#x, ok=%v)",
						p.addr, base, ok, p.wantBase, p.wantOK)
				}
			}
			for _, r := range tc.ranges {
				if v := tb.Get(r.base); v == nil || *v != r.val {
					t.Errorf("Get(%#x) = %v, want %d", r.base, v, r.val)
				}
			}
		})
	}
}

// TestLastHitCacheInvalidation: a removed range must not keep
// resolving through the last-hit cache, and a recycled arena slot must
// resolve to its new range only.
func TestLastHitCacheInvalidation(t *testing.T) {
	tb := New[int]()
	tb.Insert(4096, 64, 1)
	if _, _, _, ok := tb.Stab(4100); !ok {
		t.Fatal("warm-up stab missed")
	}
	tb.Remove(4096)
	if _, _, _, ok := tb.Stab(4100); ok {
		t.Fatal("stab hit a removed range via the cache")
	}
	// Recycle the slot with a different range.
	tb.Insert(8192, 32, 2)
	if _, _, _, ok := tb.Stab(4100); ok {
		t.Fatal("stab hit the old range after slot recycling")
	}
	if base, _, v, ok := tb.Stab(8200); !ok || base != 8192 || *v != 2 {
		t.Fatalf("stab of recycled slot = (%d,%v,%v)", base, v, ok)
	}
}

// TestMultiPageObjects: ranges spanning page and chunk boundaries must
// resolve from any interior page.
func TestMultiPageObjects(t *testing.T) {
	tb := New[int]()
	const base = uint64(0x100_0000_0000)
	const size = uint64(5 * pageSize)        // five pages
	tb.Insert(base-64, 64, 7)                // neighbour before
	tb.Insert(base, size, 1)                 // the spanning object
	tb.Insert(base+size, 128, 9)             // neighbour after
	tb.Insert(base+7*chunkPages*pageSize, 3*chunkPages*pageSize, 2) // spans 3 chunks

	probes := []struct {
		addr uint64
		want int
	}{
		{base, 1},
		{base + pageSize, 1},
		{base + 3*pageSize + 17, 1},
		{base + size - 1, 1},
		{base - 1, 7},
		{base + size, 9},
		{base + 7*chunkPages*pageSize + chunkPages*pageSize + 5, 2},
		{base + 10*chunkPages*pageSize - 1, 2},
	}
	for _, p := range probes {
		_, _, v, ok := tb.Stab(p.addr)
		if !ok || *v != p.want {
			t.Errorf("Stab(%#x) = (%v,%v), want %d", p.addr, v, ok, p.want)
		}
	}
	if _, ok := tb.Remove(base); !ok {
		t.Fatal("Remove of spanning object failed")
	}
	for _, p := range probes[:4] {
		if _, _, _, ok := tb.Stab(p.addr); ok {
			t.Errorf("Stab(%#x) hit after removal", p.addr)
		}
	}
	// Neighbours survive.
	if _, _, v, ok := tb.Stab(base - 1); !ok || *v != 7 {
		t.Error("neighbour before lost")
	}
	if _, _, v, ok := tb.Stab(base + size); !ok || *v != 9 {
		t.Error("neighbour after lost")
	}
}

// TestHugeObject: a range wider than maxSpanPages goes through the
// side list with identical semantics.
func TestHugeObject(t *testing.T) {
	tb := New[int]()
	const base = uint64(1) << 40
	const size = uint64(maxSpanPages+3) * pageSize
	tb.Insert(base, size, 1)
	tb.Insert(base-4096, 4096, 2)
	if _, _, v, ok := tb.Stab(base + size/2); !ok || *v != 1 {
		t.Fatalf("interior stab of huge object = (%v,%v)", v, ok)
	}
	if _, _, _, ok := tb.Stab(base + size); ok {
		t.Fatal("stab one-past-end of huge object should miss")
	}
	if v := tb.Get(base); v == nil || *v != 1 {
		t.Fatal("Get of huge object failed")
	}
	if _, _, v, ok := tb.Stab(base - 1); !ok || *v != 2 {
		t.Fatal("neighbour of huge object lost")
	}
	if _, ok := tb.Remove(base); !ok {
		t.Fatal("Remove of huge object failed")
	}
	if _, _, _, ok := tb.Stab(base + size/2); ok {
		t.Fatal("huge object still stabbable after removal")
	}
	// A pathological size must neither loop nor allocate per page.
	tb.Insert(64, ^uint64(0)-128, 3)
	if _, _, v, ok := tb.Stab(1 << 50); !ok || *v != 3 {
		t.Fatal("pathological range did not resolve")
	}
	if _, ok := tb.Remove(64); !ok {
		t.Fatal("Remove of pathological range failed")
	}
}

// TestValuePointerStability: pointers returned by Insert/Get/Stab must
// allow in-place mutation visible to later queries (until the next
// Insert/Remove, which the logger respects).
func TestValuePointerStability(t *testing.T) {
	tb := New[[2]int]()
	tb.Insert(4096, 64, [2]int{1, 2})
	_, _, v, ok := tb.Stab(4100)
	if !ok {
		t.Fatal("stab missed")
	}
	v[0] = 42
	if g := tb.Get(4096); g == nil || g[0] != 42 {
		t.Fatalf("mutation through Stab pointer not visible: %v", g)
	}
}

func TestWalkOrdered(t *testing.T) {
	tb := New[int]()
	bases := []uint64{1 << 30, 64, 4096, 1 << 20, 8192}
	for i, b := range bases {
		tb.Insert(b, 32, i)
	}
	tb.Remove(4096)
	var got []uint64
	tb.Walk(func(base, size uint64, _ *int) bool {
		got = append(got, base)
		return true
	})
	want := []uint64{64, 8192, 1 << 20, 1 << 30}
	if len(got) != len(want) {
		t.Fatalf("walk visited %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("walk order %v, want %v", got, want)
		}
	}
	n := 0
	tb.Walk(func(uint64, uint64, *int) bool { n++; return false })
	if n != 1 {
		t.Errorf("early-stop walk visited %d, want 1", n)
	}
}

// TestArenaRecycling: steady-state free/alloc traffic must reuse arena
// slots instead of growing the arena.
func TestArenaRecycling(t *testing.T) {
	tb := New[int]()
	for i := 0; i < 64; i++ {
		tb.Insert(uint64(4096+i*64), 64, i)
	}
	grown := len(tb.arena)
	for round := 0; round < 100; round++ {
		b := uint64(4096 + (round%64)*64)
		tb.Remove(b)
		tb.Insert(b, 64, round)
	}
	if len(tb.arena) != grown {
		t.Fatalf("arena grew from %d to %d under steady-state churn", grown, len(tb.arena))
	}
	if tb.Len() != 64 {
		t.Fatalf("Len = %d, want 64", tb.Len())
	}
}
