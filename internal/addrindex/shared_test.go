package addrindex

import (
	"math/rand"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
)

// TestSharedStabMirrorsStab drives a table through randomized
// insert/remove churn with shared reads enabled and, after every
// mutation, cross-checks SharedStab against serial Stab for a spread
// of probe addresses. With no overlapping ranges the two must agree
// exactly — same hit/miss and same arena entry.
func TestSharedStabMirrorsStab(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	tb := New[int]()
	tb.EnableSharedReads()

	live := make(map[uint64]uint64) // base -> size
	bases := []uint64{}

	check := func() {
		t.Helper()
		probes := make([]uint64, 0, 64)
		for _, b := range bases {
			sz := live[b]
			probes = append(probes, b, b+sz/2, b+sz, b-1)
		}
		for i := 0; i < 8; i++ {
			probes = append(probes, uint64(rng.Int63()))
		}
		for _, addr := range probes {
			base, size, _, ok := tb.Stab(addr)
			idx, sok := tb.SharedStab(addr)
			if ok != sok {
				t.Fatalf("Stab(%#x) ok=%v but SharedStab ok=%v", addr, ok, sok)
			}
			if !ok {
				continue
			}
			sb, ss, _ := tb.At(idx)
			if sb != base || ss != size {
				t.Fatalf("Stab(%#x) = [%#x,+%d) but SharedStab entry = [%#x,+%d)",
					addr, base, size, sb, ss)
			}
		}
	}

	for step := 0; step < 3000; step++ {
		if len(bases) == 0 || rng.Intn(3) != 0 {
			// Insert a fresh non-overlapping range on a 64 KiB lattice
			// so ranges never collide.
			slot := uint64(rng.Intn(4096))
			base := 0x1000_0000 + slot<<16
			if _, taken := live[base]; taken {
				continue
			}
			size := uint64(rng.Intn(1<<14) + 1)
			tb.Insert(base, size, step)
			live[base] = size
			bases = append(bases, base)
		} else {
			k := rng.Intn(len(bases))
			base := bases[k]
			if _, ok := tb.Remove(base); !ok {
				t.Fatalf("Remove(%#x) missed a live range", base)
			}
			delete(live, base)
			bases[k] = bases[len(bases)-1]
			bases = bases[:len(bases)-1]
		}
		if tb.Gen()%2 != 0 {
			t.Fatalf("generation odd (%d) after settled mutation", tb.Gen())
		}
		if step%37 == 0 {
			check()
		}
	}
	check()
	if tb.Overlapped() {
		t.Fatal("overlap flag set on a disjoint workload")
	}
	if want := uint64(0); tb.Gen() == want {
		t.Fatal("generation never advanced")
	}
}

// TestSharedStabSpansAndLateEnable covers multi-page ranges, mirroring
// of pre-existing entries at EnableSharedReads time, and zero-size
// transparency.
func TestSharedStabSpansAndLateEnable(t *testing.T) {
	tb := New[string]()
	tb.Insert(0x10000, 3*pageSize, "span") // crosses pages
	tb.Insert(0x80000, 0, "zero")          // invisible to stabs
	tb.Insert(0x90000, 64, "small")
	tb.EnableSharedReads()

	if idx, ok := tb.SharedStab(0x10000 + 2*pageSize + 5); !ok {
		t.Fatal("SharedStab missed a mirrored multi-page range")
	} else if base, size, v := tb.At(idx); base != 0x10000 || size != 3*pageSize || *v != "span" {
		t.Fatalf("At = (%#x, %d, %q)", base, size, *v)
	}
	if _, ok := tb.SharedStab(0x80000); ok {
		t.Fatal("zero-size range must stay invisible to SharedStab")
	}
	if _, ok := tb.SharedStab(0x90000 + 64); ok {
		t.Fatal("one-past-end must miss")
	}
	if tb.Overlapped() {
		t.Fatal("no overlap expected")
	}

	// Removal unregisters every spanned page.
	tb.Remove(0x10000)
	for off := uint64(0); off < 3*pageSize; off += 512 {
		if _, ok := tb.SharedStab(0x10000 + off); ok {
			t.Fatalf("SharedStab still hits removed range at +%d", off)
		}
	}
}

// TestSharedOverlapSticky: the first overlapping insert flips the
// sticky flag, and it stays set after the overlap is removed.
func TestSharedOverlapSticky(t *testing.T) {
	tb := New[int]()
	tb.EnableSharedReads()
	tb.Insert(0x1000, 256, 1)
	if tb.Overlapped() {
		t.Fatal("flag set too early")
	}
	tb.Insert(0x1080, 256, 2) // overlaps the first
	if !tb.Overlapped() {
		t.Fatal("overlapping insert must set the sticky flag")
	}
	tb.Remove(0x1080)
	if !tb.Overlapped() {
		t.Fatal("flag must be sticky across removal")
	}
}

// TestSharedHugeConservative: a range wider than maxSpanPages is
// mirrored via the huge list and conservatively sets the overlap flag.
func TestSharedHugeConservative(t *testing.T) {
	tb := New[int]()
	tb.EnableSharedReads()
	huge := uint64(maxSpanPages+1) * pageSize
	tb.Insert(0x4000_0000, huge, 7)
	if !tb.Overlapped() {
		t.Fatal("huge insert must set the conservative overlap flag")
	}
	if idx, ok := tb.SharedStab(0x4000_0000 + huge - 1); !ok {
		t.Fatal("huge range must still be stabbable")
	} else if base, size, _ := tb.At(idx); base != 0x4000_0000 || size != huge {
		t.Fatalf("At = (%#x, %d)", base, size)
	}
	tb.Remove(0x4000_0000)
	if _, ok := tb.SharedStab(0x4000_0000 + 100); ok {
		t.Fatal("removed huge range must miss")
	}
}

// TestSharedStabConcurrent hammers SharedStab from reader goroutines
// while the owner churns inserts and removes, validating the
// generation protocol end to end: any result captured under a stable
// even generation must exactly match what the serial table said once
// the owner observes that same generation. Run under -race this is
// also the memory-safety proof for the COW path.
func TestSharedStabConcurrent(t *testing.T) {
	tb := New[int]()
	tb.EnableSharedReads()

	const nReaders = 4
	var stop atomic.Bool
	var wg sync.WaitGroup
	type claim struct {
		addr  uint64
		stamp uint64
		idx   int32
		ok    bool
	}
	claims := make(chan claim, 1024)

	for r := 0; r < nReaders; r++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			for !stop.Load() {
				addr := 0x2000_0000 + uint64(rng.Intn(512))<<12 + uint64(rng.Intn(4096))
				g1 := tb.Gen()
				if g1&1 != 0 {
					continue
				}
				idx, ok := tb.SharedStab(addr)
				if tb.Gen() != g1 {
					continue
				}
				select {
				case claims <- claim{addr: addr, stamp: g1, idx: idx, ok: ok}:
				default:
				}
			}
		}(int64(100 + r))
	}

	rng := rand.New(rand.NewSource(5))
	live := map[uint64]bool{}
	validated := 0
	steps := 4000
	if testing.Short() {
		steps = 500
	}
	for step := 0; step < steps; step++ {
		base := 0x2000_0000 + uint64(rng.Intn(512))<<12
		if live[base] {
			tb.Remove(base)
			delete(live, base)
		} else {
			tb.Insert(base, uint64(rng.Intn(4096)+1), step)
			live[base] = true
		}
		// Periodically hold the table still so reader claims can land
		// while their stamp is current — without this, a churn-every-
		// step owner (especially on one core) goes stale before any
		// claim is validated.
		if step%50 == 0 {
			for spin := 0; spin < 100 && len(claims) < 32; spin++ {
				runtime.Gosched()
			}
		}
		// Validate any claim whose stamp still matches the settled
		// generation: the serial table must agree entry-for-entry.
	drain:
		for {
			select {
			case c := <-claims:
				if c.stamp != tb.Gen() {
					continue // stale speculation; would be a fallback
				}
				base, size, _, ok := tb.Stab(c.addr)
				if ok != c.ok {
					t.Fatalf("claim(%#x) ok=%v, serial ok=%v at gen %d", c.addr, c.ok, ok, c.stamp)
				}
				if ok {
					sb, ss, _ := tb.At(c.idx)
					if sb != base || ss != size {
						t.Fatalf("claim(%#x) entry [%#x,+%d), serial [%#x,+%d)", c.addr, sb, ss, base, size)
					}
				}
				validated++
			default:
				break drain
			}
		}
	}
	stop.Store(true)
	wg.Wait()
	if tb.Overlapped() {
		t.Fatal("overlap flag set on a disjoint workload")
	}
	t.Logf("validated %d in-generation claims", validated)
}
