// Shared read view: the race-safe concurrent read path behind the
// ingest pipeline's speculative pre-resolvers.
//
// The Table proper is single-goroutine by design — its arena, chunk
// directory and caches are mutated in place on every Insert/Remove,
// and the hot Stab path is tuned around that freedom. Pre-resolution
// needs concurrent readers *while the owner keeps mutating*, so
// instead of retrofitting locks onto the hot path, the owner
// maintains a second, reader-only projection of the live ranges built
// entirely from immutable snapshots behind atomic pointers:
//
//	owner (mutator)                      pre-resolver workers
//	Insert/Remove ──▶ COW page lists ──▶ SharedStab (lock-free)
//	      │                 │
//	      └── gen += 2 ─────┴──────────▶ Gen() stamps
//
// Every page's ref list, the huge-range list, and the chunk directory
// are copy-on-write: a mutation builds a fresh slice/map and publishes
// it with one atomic store, so a concurrent reader always sees *some*
// complete snapshot and never a torn one. Readers therefore need no
// locks and can never fault — at worst they observe a stale mix of
// pages, which the generation protocol turns into an abandoned
// speculation rather than a wrong answer:
//
//   - gen starts even. Each Insert/Remove increments it once before
//     mutating (odd: mutation in flight) and once after (even:
//     settled).
//   - A reader loads gen, performs its lookups, and loads gen again.
//     If the first load was even and the second equals it, every
//     lookup observed the settled state of exactly that generation,
//     and the generation number is a valid stamp for the result.
//   - The owner accepts a speculative result only while its stamp
//     still equals the current generation — i.e. no Insert/Remove has
//     happened since the reader looked. Under that condition the
//     shared view and the serial table describe the identical range
//     set, so SharedStab's answer is exactly what Stab would return.
//
// Overlapping live ranges (possible only under damaged traces — see
// Stab's walk-back) make stab answers depend on *which* containing
// range wins, which on the serial path depends on cache history. The
// shared view cannot reproduce cache history, so the first Insert
// that creates an overlap sets a sticky flag and the owner stops
// accepting speculative results for good; correctness degrades to the
// serial path, never to a divergent answer. Ranges wider than
// maxSpanPages are mirrored in a shared huge list; because verifying
// them against every page they span is unbounded, such an Insert also
// conservatively sets the sticky flag (well-formed workloads never
// allocate a >256 MiB object, and a damaged trace that does was
// headed for the fallback anyway).
//
// Zero-size ranges are transparent to Stab, so the shared view simply
// omits them; their Insert/Remove still bumps the generation, which
// costs at most a spurious fallback.
package addrindex

import "sync/atomic"

// NoEntry is the miss sentinel for index-returning APIs (SharedStab).
const NoEntry = noEntry

// sharedRange is one live range in the reader-only projection. The
// struct is embedded by value in immutable slices; idx is the arena
// index the owner can dereference with At while the stamp holds.
type sharedRange struct {
	base uint64
	size uint64
	idx  int32
}

// sharedChunk holds one atomic pointer per page, each to an immutable
// sorted-by-base slice of the ranges intersecting that page. A nil
// pointer means no ranges.
type sharedChunk struct {
	pages [chunkPages]atomic.Pointer[[]sharedRange]
}

// sharedView is the reader-side state. The chunk directory itself is
// COW (chunk creation is rare — one per fresh 2 MiB of address space);
// the *sharedChunk values it points to are stable, their page slots
// are the atomics that change.
type sharedView struct {
	gen     atomic.Uint64
	dir     atomic.Pointer[map[uint64]*sharedChunk]
	huge    atomic.Pointer[[]sharedRange]
	overlap atomic.Bool
}

// EnableSharedReads switches the table into shared mode: from now on
// every Insert and Remove additionally maintains the reader-only
// projection and bumps the mutation generation. Existing live ranges
// are mirrored immediately. Idempotent. Must be called by the owning
// goroutine before any concurrent reader starts.
func (t *Table[V]) EnableSharedReads() {
	if t.shared != nil {
		return
	}
	v := &sharedView{}
	dir := make(map[uint64]*sharedChunk)
	v.dir.Store(&dir)
	t.shared = v
	for i := range t.arena {
		e := &t.arena[i]
		if e.live {
			t.sharedInsert(int32(i), e.base, e.size)
		}
	}
}

// SharedReads reports whether EnableSharedReads has been called.
func (t *Table[V]) SharedReads() bool { return t.shared != nil }

// Gen returns the current mutation generation. Even values mean the
// table is settled; odd values mean a mutation is in flight. Always 0
// before EnableSharedReads. Safe to call from any goroutine.
func (t *Table[V]) Gen() uint64 {
	if s := t.shared; s != nil {
		return s.gen.Load()
	}
	return 0
}

// Overlapped reports whether the table has ever held two overlapping
// live ranges since shared reads were enabled. Sticky: once set, every
// speculative result must be rejected, because stab answers under
// overlap depend on serial cache history that the shared view cannot
// reproduce. Safe to call from any goroutine.
func (t *Table[V]) Overlapped() bool {
	if s := t.shared; s != nil {
		return s.overlap.Load()
	}
	return false
}

// SharedStab resolves addr against the reader-only projection,
// returning the arena index of the containing live range (NoEntry on
// miss). Semantics match Stab for non-overlapping tables: half-open
// ranges, interior addresses resolve, zero-size ranges are invisible.
// Safe to call from any goroutine after EnableSharedReads; the result
// is only meaningful under the generation protocol described in the
// package comment.
func (t *Table[V]) SharedStab(addr uint64) (int32, bool) {
	s := t.shared
	dir := *s.dir.Load()
	if c := dir[addr>>PageShift>>chunkShift]; c != nil {
		if lp := c.pages[(addr>>PageShift)&(chunkPages-1)].Load(); lp != nil {
			refs := *lp
			// First base > addr, then walk back over non-containing
			// predecessors — the same shape as Stab, minus the caches.
			lo, hi := 0, len(refs)
			for lo < hi {
				mid := int(uint(lo+hi) >> 1)
				if refs[mid].base > addr {
					hi = mid
				} else {
					lo = mid + 1
				}
			}
			for pos := lo - 1; pos >= 0; pos-- {
				r := &refs[pos]
				if addr-r.base < r.size {
					return r.idx, true
				}
			}
		}
	}
	if hp := s.huge.Load(); hp != nil {
		for _, r := range *hp {
			if addr-r.base < r.size {
				return r.idx, true
			}
		}
	}
	return NoEntry, false
}

// At returns the base, size and value pointer of the arena slot i, as
// previously returned by SharedStab. Owner-only, and only valid while
// the generation that produced i still holds — any Insert or Remove
// may recycle or relocate the slot.
func (t *Table[V]) At(i int32) (base, size uint64, value *V) {
	e := &t.arena[i]
	return e.base, e.size, &e.value
}

// Contains reports whether the arena slot i currently holds a live
// range containing addr. Owner-only; i must be a valid index from any
// past generation (the arena never shrinks). This is the stale-stamp
// revalidation primitive: live ranges are disjoint, so if slot i
// contains addr *now*, it is exactly the entry a serial Stab would
// return now — regardless of what has been inserted, removed or
// recycled since the speculation was made. A dead or recycled-away
// slot fails the check (Remove zeroes the size), and a miss can never
// be revalidated this way, because a newer insert may have claimed
// the address.
func (t *Table[V]) Contains(i int32, addr uint64) bool {
	e := &t.arena[i]
	return addr-e.base < e.size
}

// Remember records arena index i as the most recent Stab hit, exactly
// as a successful serial Stab would. The ingest mutator calls it when
// applying a pre-resolved store so the last-hit cache evolves
// identically to the serial path and interleaved fallback lookups keep
// their locality. Owner-only.
func (t *Table[V]) Remember(i int32) { t.remember(i) }

// sharedChunkFor returns the shared chunk covering page, publishing a
// COW-extended directory if the chunk is new. Owner-only.
func (s *sharedView) sharedChunkFor(page uint64) *sharedChunk {
	key := page >> chunkShift
	dir := *s.dir.Load()
	if c := dir[key]; c != nil {
		return c
	}
	// Chunk creation copies the directory — one map copy per fresh
	// 2 MiB of address space ever touched, amortized to nothing against
	// the per-page work of populating the chunk.
	next := make(map[uint64]*sharedChunk, len(dir)+1)
	for k, v := range dir {
		next[k] = v
	}
	c := new(sharedChunk)
	next[key] = c
	s.dir.Store(&next)
	return c
}

// rangesIntersect reports whether [base, base+size) intersects the
// live range r, with the same end-of-address-space clamping as
// pageRange. Both sizes must be non-zero.
func rangesIntersect(base, size uint64, r *sharedRange) bool {
	end := base + size - 1
	if end < base {
		end = ^uint64(0)
	}
	rend := r.base + r.size - 1
	if rend < r.base {
		rend = ^uint64(0)
	}
	return r.base <= end && base <= rend
}

// sharedInsert mirrors Insert i = [base, base+size) into the reader
// view and performs overlap detection. Owner-only; called between the
// generation increments.
func (t *Table[V]) sharedInsert(i int32, base, size uint64) {
	s := t.shared
	if size == 0 {
		return // invisible to Stab, nothing to mirror
	}
	// Any intersection with an existing huge range is an overlap.
	if hp := s.huge.Load(); hp != nil {
		for k := range *hp {
			if rangesIntersect(base, size, &(*hp)[k]) {
				s.overlap.Store(true)
				break
			}
		}
	}
	nr := sharedRange{base: base, size: size, idx: i}
	first, last := pageRange(base, size)
	if last-first+1 > maxSpanPages {
		// Mirror into the huge list; checking a 256 MiB+ range against
		// every page it spans is unbounded, so flag conservatively.
		s.overlap.Store(true)
		old := s.huge.Load()
		var next []sharedRange
		if old != nil {
			next = make([]sharedRange, len(*old), len(*old)+1)
			copy(next, *old)
		}
		next = append(next, nr)
		s.huge.Store(&next)
		return
	}
	for p := first; ; p++ {
		c := s.sharedChunkFor(p)
		slot := &c.pages[p&(chunkPages-1)]
		var refs []sharedRange
		if lp := slot.Load(); lp != nil {
			refs = *lp
		}
		pos := len(refs)
		next := make([]sharedRange, len(refs)+1)
		for k := range refs {
			if !s.overlap.Load() && rangesIntersect(base, size, &refs[k]) {
				s.overlap.Store(true)
			}
			if refs[k].base >= base && pos == len(refs) {
				pos = k
			}
		}
		copy(next, refs[:pos])
		next[pos] = nr
		copy(next[pos+1:], refs[pos:])
		slot.Store(&next)
		if p == last {
			break
		}
	}
}

// sharedRemove mirrors the removal of arena index i, previously
// registered over [base, base+size), out of the reader view.
// Owner-only; called between the generation increments.
func (t *Table[V]) sharedRemove(i int32, base, size uint64) {
	s := t.shared
	if size == 0 {
		return
	}
	first, last := pageRange(base, size)
	if last-first+1 > maxSpanPages {
		old := s.huge.Load()
		if old == nil {
			return
		}
		next := make([]sharedRange, 0, len(*old))
		for k := range *old {
			if (*old)[k].idx != i {
				next = append(next, (*old)[k])
			}
		}
		s.huge.Store(&next)
		return
	}
	dir := *s.dir.Load()
	for p := first; ; p++ {
		if c := dir[p>>chunkShift]; c != nil {
			slot := &c.pages[p&(chunkPages-1)]
			if lp := slot.Load(); lp != nil {
				refs := *lp
				for k := range refs {
					if refs[k].idx == i {
						next := make([]sharedRange, len(refs)-1)
						copy(next, refs[:k])
						copy(next[k:], refs[k+1:])
						slot.Store(&next)
						break
					}
				}
			}
		}
		if p == last {
			break
		}
	}
}
