// Package addrindex provides the execution logger's O(1) address
// resolution structure: a page-indexed object table in the style of
// tcmalloc's pagemap and the Go runtime's span index.
//
// The logger resolves two addresses per observed pointer store (the
// written slot and the stored value), so address resolution dominates
// the per-event hot path. The treap behind intervals.Map answers the
// same queries in O(log n) pointer-chasing steps through GC-scanned
// nodes; this table answers them with a couple of array indexes:
//
//	addr ──▶ chunk directory ──▶ page ref list ──▶ object record
//	         (hash, cached)      (array index)     (arena slot)
//
// Layout. The address space is cut into 4 KiB pages and pages are
// grouped into 512-page (2 MiB) chunks. A chunk holds, per page, the
// list of object records whose [base, base+size) range intersects that
// page, sorted by base. Object records themselves live in a flat arena
// slice with freelist recycling, so steady-state alloc/free traffic
// performs no heap allocation at all. Two single-entry caches make the
// common cases pure array work: a last-hit cache (store bursts into
// one object resolve with one comparison) and a last-chunk cache
// (locality across objects skips the chunk directory hash).
//
// Objects spanning more than maxSpanPages pages would make per-page
// registration arbitrarily expensive (a malformed trace can claim a
// 2^63-byte allocation), so such ranges go to a small linear side
// list instead — semantics are identical, and well-formed workloads
// never hit it.
//
// Semantics match intervals.Map exactly (the treap remains the test
// oracle): ranges are half-open, interior addresses resolve to their
// containing range, a stab at base+size misses, and zero-size ranges
// are Get/Remove-able but transparent to Stab.
package addrindex

import "sort"

const (
	// PageShift selects the 4 KiB page granularity of the index.
	PageShift = 12
	pageSize  = 1 << PageShift

	// chunkShift groups 512 pages (2 MiB of address space) per chunk.
	chunkShift = 9
	chunkPages = 1 << chunkShift

	// maxSpanPages bounds per-page registration work for one object;
	// larger ranges are kept in the linear huge list.
	maxSpanPages = 1 << 16 // 256 MiB

	noEntry = int32(-1)
)

// entry is one object record in the arena.
type entry[V any] struct {
	base  uint64
	size  uint64
	value V
	live  bool
}

// chunk holds the per-page object ref lists for one 2 MiB address
// range. refs[i] lists arena indices of every live object whose range
// intersects page i, sorted by base. Most pages hold a handful of
// objects, so the lists stay in the small-slice regime.
type chunk struct {
	refs [chunkPages][]int32
}

// Table maps disjoint [base, base+size) ranges to values of type V
// with O(1) expected stabbing queries. The zero Table is not ready to
// use; call New. A Table is single-goroutine, like the logger that
// owns it — except for the opt-in concurrent read path behind
// EnableSharedReads/SharedStab (see shared.go), which other goroutines
// may query while the owner keeps mutating.
type Table[V any] struct {
	chunks map[uint64]*chunk
	arena  []entry[V]
	free   []int32
	huge   []int32 // arena indices of ranges wider than maxSpanPages
	n      int

	// lastHits caches the arena indices of recent successful Stabs
	// (noEntry when empty), most recent first. Two entries, because
	// the logger stabs two addresses per store — the written slot and
	// the stored value — and a single entry would thrash between them.
	lastHits  [2]int32
	lastChunk *chunk // chunk of the last directory lookup
	lastKey   uint64

	// shared, when non-nil, is the reader-only projection maintained
	// for concurrent SharedStab queries (see shared.go). Set once by
	// EnableSharedReads, never cleared.
	shared *sharedView
}

// New returns an empty table.
func New[V any]() *Table[V] {
	return &Table[V]{chunks: make(map[uint64]*chunk), lastHits: [2]int32{noEntry, noEntry}}
}

// Len returns the number of live ranges.
func (t *Table[V]) Len() int { return t.n }

// chunkFor returns the chunk covering page, creating it if needed.
func (t *Table[V]) chunkFor(page uint64) *chunk {
	key := page >> chunkShift
	if t.lastChunk != nil && t.lastKey == key {
		return t.lastChunk
	}
	c := t.chunks[key]
	if c == nil {
		c = new(chunk)
		t.chunks[key] = c
	}
	t.lastKey, t.lastChunk = key, c
	return c
}

// lookupChunk returns the chunk covering page without creating it.
func (t *Table[V]) lookupChunk(page uint64) *chunk {
	key := page >> chunkShift
	if t.lastChunk != nil && t.lastKey == key {
		return t.lastChunk
	}
	c := t.chunks[key]
	if c != nil {
		t.lastKey, t.lastChunk = key, c
	}
	return c
}

// pageRange returns the inclusive page span of [base, base+size),
// clamping the degenerate and wrapping cases: a zero-size range
// occupies only its base page (for Get/Remove reachability), and a
// range whose end wraps past the top of the address space is clamped
// to the last page.
func pageRange(base, size uint64) (first, last uint64) {
	first = base >> PageShift
	if size == 0 {
		return first, first
	}
	end := base + size - 1
	if end < base { // wrapped
		end = ^uint64(0)
	}
	return first, end >> PageShift
}

// insertRef adds arena index i into the sorted ref list of one page.
func (t *Table[V]) insertRef(refs []int32, i int32, base uint64) []int32 {
	pos := sort.Search(len(refs), func(k int) bool {
		return t.arena[refs[k]].base >= base
	})
	refs = append(refs, 0)
	copy(refs[pos+1:], refs[pos:])
	refs[pos] = i
	return refs
}

// removeRef deletes arena index i from one page's ref list.
func removeRef(refs []int32, i int32) []int32 {
	for k, r := range refs {
		if r == i {
			copy(refs[k:], refs[k+1:])
			return refs[:len(refs)-1]
		}
	}
	return refs
}

// Insert adds the range [base, base+size) with the given value. The
// caller must guarantee the range does not overlap an existing one;
// allocators never hand out overlapping live ranges. The returned
// pointer refers to the stored value and remains valid until the next
// Insert or Remove on the table.
func (t *Table[V]) Insert(base, size uint64, value V) *V {
	s := t.shared
	if s != nil {
		s.gen.Add(1) // odd: mutation in flight
	}
	var i int32
	if k := len(t.free); k > 0 {
		i = t.free[k-1]
		t.free = t.free[:k-1]
		t.arena[i] = entry[V]{base: base, size: size, value: value, live: true}
	} else {
		i = int32(len(t.arena))
		t.arena = append(t.arena, entry[V]{base: base, size: size, value: value, live: true})
	}
	first, last := pageRange(base, size)
	if size > 0 && last-first+1 > maxSpanPages {
		t.huge = append(t.huge, i)
	} else {
		for p := first; ; p++ {
			c := t.chunkFor(p)
			pi := p & (chunkPages - 1)
			c.refs[pi] = t.insertRef(c.refs[pi], i, base)
			if p == last {
				break
			}
		}
	}
	t.n++
	if s != nil {
		t.sharedInsert(i, base, size)
		s.gen.Add(1) // even: settled
	}
	return &t.arena[i].value
}

// findExact returns the arena index of the range based exactly at
// base, or noEntry.
func (t *Table[V]) findExact(base uint64) int32 {
	c := t.lookupChunk(base >> PageShift)
	if c != nil {
		refs := c.refs[(base>>PageShift)&(chunkPages-1)]
		// Binary search for the first entry with base >= target (hand
		// rolled: the sort.Search closure is measurable on the event
		// hot path), then check for an exact base match.
		lo, hi := 0, len(refs)
		for lo < hi {
			mid := int(uint(lo+hi) >> 1)
			if t.arena[refs[mid]].base >= base {
				hi = mid
			} else {
				lo = mid + 1
			}
		}
		if lo < len(refs) && t.arena[refs[lo]].base == base {
			return refs[lo]
		}
	}
	for _, i := range t.huge {
		if t.arena[i].base == base {
			return i
		}
	}
	return noEntry
}

// Get returns a pointer to the value of the range based exactly at
// base, or nil. The pointer remains valid until the next Insert or
// Remove.
func (t *Table[V]) Get(base uint64) *V {
	i := t.findExact(base)
	if i == noEntry {
		return nil
	}
	return &t.arena[i].value
}

// Remove deletes the range based exactly at base, returning its value
// and whether an entry was removed.
func (t *Table[V]) Remove(base uint64) (V, bool) {
	i := t.findExact(base)
	if i == noEntry {
		var zero V
		return zero, false
	}
	s := t.shared
	if s != nil {
		s.gen.Add(1) // odd: mutation in flight
	}
	e := &t.arena[i]
	rbase, rsize := e.base, e.size
	first, last := pageRange(e.base, e.size)
	if e.size > 0 && last-first+1 > maxSpanPages {
		t.huge = removeRef(t.huge, i)
	} else {
		for p := first; ; p++ {
			c := t.lookupChunk(p)
			if c != nil {
				pi := p & (chunkPages - 1)
				c.refs[pi] = removeRef(c.refs[pi], i)
			}
			if p == last {
				break
			}
		}
	}
	v := e.value
	var zero V
	e.value = zero // release references held by the recycled slot
	e.live = false
	e.size = 0
	t.free = append(t.free, i)
	t.n--
	if t.lastHits[0] == i {
		t.lastHits[0] = noEntry
	}
	if t.lastHits[1] == i {
		t.lastHits[1] = noEntry
	}
	if s != nil {
		t.sharedRemove(i, rbase, rsize)
		s.gen.Add(1) // even: settled
	}
	return v, true
}

// remember records arena index i as the most recent Stab hit.
func (t *Table[V]) remember(i int32) {
	if t.lastHits[0] != i {
		t.lastHits[1] = t.lastHits[0]
		t.lastHits[0] = i
	}
}

// Stab returns the base, size and value of the range containing addr.
// Interior addresses resolve to their containing range. The semantics
// are identical to intervals.Map.Stab: half-open ranges, zero-size
// ranges transparent. The value pointer remains valid until the next
// Insert or Remove.
func (t *Table[V]) Stab(addr uint64) (base, size uint64, value *V, ok bool) {
	// Last-hit cache: consecutive stores into one object resolve with
	// a single comparison. addr-e.base underflows to a huge value when
	// addr < base, so one unsigned comparison checks both bounds.
	for k, i := range t.lastHits {
		if i == noEntry {
			continue
		}
		e := &t.arena[i]
		if addr-e.base < e.size {
			if k != 0 {
				t.remember(i)
			}
			return e.base, e.size, &e.value, true
		}
	}
	c := t.lookupChunk(addr >> PageShift)
	if c != nil {
		refs := c.refs[(addr>>PageShift)&(chunkPages-1)]
		// The candidate is the entry with the largest base <= addr.
		// Walking back over non-containing predecessors (instead of
		// testing only the immediate one) makes zero-size entries
		// transparent — they are registered on their base page for
		// Get/Remove but always fail the containment check — and keeps
		// the search robust when a damaged trace registers
		// overlapping ranges. The binary search (first base > addr) is
		// hand rolled: this is the hottest loop in the logger, and the
		// sort.Search closure calls are measurable here.
		lo, hi := 0, len(refs)
		for lo < hi {
			mid := int(uint(lo+hi) >> 1)
			if t.arena[refs[mid]].base > addr {
				hi = mid
			} else {
				lo = mid + 1
			}
		}
		for pos := lo - 1; pos >= 0; pos-- {
			e := &t.arena[refs[pos]]
			if addr-e.base < e.size {
				t.remember(refs[pos])
				return e.base, e.size, &e.value, true
			}
		}
	}
	for _, i := range t.huge {
		e := &t.arena[i]
		if addr-e.base < e.size {
			t.remember(i)
			return e.base, e.size, &e.value, true
		}
	}
	return 0, 0, nil, false
}

// Walk visits every live range in ascending base order; iteration
// stops if fn returns false. fn must not mutate the table. Walk sorts
// an index of the arena per call — it exists for tests and
// diagnostics, not the hot path.
func (t *Table[V]) Walk(fn func(base, size uint64, value *V) bool) {
	idx := make([]int32, 0, t.n)
	for i := range t.arena {
		if t.arena[i].live {
			idx = append(idx, int32(i))
		}
	}
	sort.Slice(idx, func(a, b int) bool {
		return t.arena[idx[a]].base < t.arena[idx[b]].base
	})
	for _, i := range idx {
		e := &t.arena[i]
		if !fn(e.base, e.size, &e.value) {
			return
		}
	}
}
