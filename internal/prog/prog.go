// Package prog provides the simulated-process runtime that workloads
// are written against.
//
// In the paper, the subject is an instrumented x86 binary: Vulcan
// rewrites it so that allocator calls, heap writes and (for HeapMD's
// metric computation points) function entries report to the execution
// logger. Here, a workload is Go code driving a Process; the Process
// plays the instrumented binary's role, forwarding one merged event
// stream — heap activity from the simulated allocator plus
// Enter/Leave call events — to every subscribed sink (the execution
// logger, the trace writer, the SWAT baseline).
//
// Process methods panic with *Fault on simulator errors (double free,
// wild free of a non-base address, address-space exhaustion) instead
// of returning errors, keeping workload code linear; the Run harness
// converts such panics into returned errors.
package prog

import (
	"errors"
	"fmt"
	"math/rand"

	"heapmd/internal/event"
	"heapmd/internal/faults"
	"heapmd/internal/heap"
)

// Fault wraps a simulator error raised during workload execution.
type Fault struct {
	Op   string // operation that failed ("alloc", "free", ...)
	Addr uint64
	Err  error
}

func (f *Fault) Error() string {
	return fmt.Sprintf("prog: %s at %#x: %v", f.Op, f.Addr, f.Err)
}

func (f *Fault) Unwrap() error { return f.Err }

// Process is one simulated program execution context.
type Process struct {
	heap   *heap.Sim
	sym    *event.Symtab
	sinks  event.Multi
	stack  []event.FnID
	rng    *rand.Rand
	plan   *faults.Plan
	frees  int
	closed bool
}

// Options configures a Process.
type Options struct {
	// Seed drives the deterministic RNG workloads use; runs with
	// equal seeds and equal workload parameters are bit-identical.
	Seed int64
	// Plan is the fault-injection plan; nil means no faults.
	Plan *faults.Plan
	// AddressSpace optionally limits the simulated heap.
	AddressSpace uint64
}

// NewProcess creates a process with its own heap, symbol table and RNG.
func NewProcess(opts Options) *Process {
	var heapOpts []heap.Option
	if opts.AddressSpace != 0 {
		heapOpts = append(heapOpts, heap.WithAddressSpace(opts.AddressSpace))
	}
	p := &Process{
		heap: heap.New(heapOpts...),
		sym:  event.NewSymtab(),
		rng:  rand.New(rand.NewSource(opts.Seed)),
		plan: opts.Plan,
	}
	return p
}

// Subscribe attaches a sink to the merged event stream. Must be
// called before the workload runs.
func (p *Process) Subscribe(sink event.Sink) {
	p.sinks = append(p.sinks, sink)
	p.heap.Subscribe(sink)
}

// Sym returns the process symbol table.
func (p *Process) Sym() *event.Symtab { return p.sym }

// Heap exposes the underlying simulated heap for inspection.
func (p *Process) Heap() *heap.Sim { return p.heap }

// Rand returns the process's deterministic RNG.
func (p *Process) Rand() *rand.Rand { return p.rng }

// Plan returns the fault plan (never nil; a disabled plan is returned
// when none was configured).
func (p *Process) Plan() *faults.Plan {
	if p.plan == nil {
		p.plan = faults.NewPlan()
	}
	return p.plan
}

// Hit consults the fault plan with the process RNG.
func (p *Process) Hit(fault string) bool {
	return p.plan.Hit(fault, p.rng)
}

// Enter records entry into the named function — a metric computation
// point candidate — and returns the matching leave function:
//
//	defer p.Enter("rebuildIndex")()
func (p *Process) Enter(fn string) func() {
	id := p.sym.Intern(fn)
	p.stack = append(p.stack, id)
	p.heap.SetSite(id)
	p.emit(event.Event{Type: event.Enter, Fn: id})
	return p.leave
}

func (p *Process) leave() {
	if len(p.stack) == 0 {
		return
	}
	top := p.stack[len(p.stack)-1]
	p.stack = p.stack[:len(p.stack)-1]
	p.emit(event.Event{Type: event.Leave, Fn: top})
	if len(p.stack) > 0 {
		p.heap.SetSite(p.stack[len(p.stack)-1])
	} else {
		p.heap.SetSite(event.NoFn)
	}
}

func (p *Process) emit(e event.Event) {
	if len(p.sinks) > 0 {
		p.sinks.Emit(e)
	}
}

// Depth returns the current simulated call-stack depth.
func (p *Process) Depth() int { return len(p.stack) }

// Alloc allocates size bytes and returns the base address.
func (p *Process) Alloc(size uint64) uint64 {
	a, err := p.heap.Alloc(size)
	if err != nil {
		panic(&Fault{Op: "alloc", Err: err})
	}
	return a
}

// AllocWords allocates n words.
func (p *Process) AllocWords(n int) uint64 {
	return p.Alloc(uint64(n) * heap.WordSize)
}

// Free releases the object at addr.
func (p *Process) Free(addr uint64) {
	if err := p.heap.Free(addr); err != nil {
		panic(&Fault{Op: "free", Addr: addr, Err: err})
	}
	p.frees++
}

// Realloc resizes the object at addr, returning the new base.
func (p *Process) Realloc(addr, newSize uint64) uint64 {
	b, err := p.heap.Realloc(addr, newSize)
	if err != nil {
		panic(&Fault{Op: "realloc", Addr: addr, Err: err})
	}
	return b
}

// Store writes value at addr (word-aligned).
func (p *Process) Store(addr, value uint64) {
	if err := p.heap.Store(addr, value); err != nil {
		panic(&Fault{Op: "store", Addr: addr, Err: err})
	}
}

// StoreField writes value into word field of the object at base.
func (p *Process) StoreField(base uint64, field int, value uint64) {
	p.Store(base+uint64(field)*heap.WordSize, value)
}

// Load reads the word at addr.
func (p *Process) Load(addr uint64) uint64 {
	v, err := p.heap.Load(addr)
	if err != nil {
		panic(&Fault{Op: "load", Addr: addr, Err: err})
	}
	return v
}

// LoadField reads word field of the object at base.
func (p *Process) LoadField(base uint64, field int) uint64 {
	return p.Load(base + uint64(field)*heap.WordSize)
}

// ErrPanicked wraps non-Fault panics escaping a workload.
var ErrPanicked = errors.New("prog: workload panicked")

// Run executes fn, converting *Fault panics (and any other panic)
// into a returned error. This is the boundary between workload code
// (which panics on simulator misuse, as a real program would crash)
// and the harness.
func Run(fn func()) (err error) {
	defer func() {
		if r := recover(); r != nil {
			if f, ok := r.(*Fault); ok {
				err = f
				return
			}
			err = fmt.Errorf("%w: %v", ErrPanicked, r)
		}
	}()
	fn()
	return nil
}
