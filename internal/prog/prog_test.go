package prog

import (
	"errors"
	"testing"

	"heapmd/internal/event"
	"heapmd/internal/faults"
	"heapmd/internal/heap"
	"heapmd/internal/logger"
)

func TestEnterLeaveEvents(t *testing.T) {
	p := NewProcess(Options{Seed: 1})
	var got []event.Event
	p.Subscribe(event.SinkFunc(func(e event.Event) { got = append(got, e) }))

	func() {
		defer p.Enter("outer")()
		func() {
			defer p.Enter("inner")()
			if p.Depth() != 2 {
				t.Errorf("Depth = %d, want 2", p.Depth())
			}
		}()
	}()
	if p.Depth() != 0 {
		t.Fatalf("Depth after returns = %d", p.Depth())
	}
	if len(got) != 4 {
		t.Fatalf("events = %d, want 4", len(got))
	}
	wantTypes := []event.Type{event.Enter, event.Enter, event.Leave, event.Leave}
	for i, w := range wantTypes {
		if got[i].Type != w {
			t.Errorf("event %d type = %v, want %v", i, got[i].Type, w)
		}
	}
	if p.Sym().Name(got[0].Fn) != "outer" || p.Sym().Name(got[1].Fn) != "inner" {
		t.Error("function attribution wrong")
	}
}

func TestAllocSiteFollowsStack(t *testing.T) {
	p := NewProcess(Options{Seed: 1})
	var allocs []event.Event
	p.Subscribe(event.SinkFunc(func(e event.Event) {
		if e.Type == event.Alloc {
			allocs = append(allocs, e)
		}
	}))
	var inner uint64
	func() {
		defer p.Enter("f")()
		func() {
			defer p.Enter("g")()
			inner = p.AllocWords(2)
		}()
		p.AllocWords(2) // attributed to f after g returns
	}()
	_ = inner
	if len(allocs) != 2 {
		t.Fatalf("allocs = %d", len(allocs))
	}
	if p.Sym().Name(allocs[0].Fn) != "g" {
		t.Errorf("first alloc site = %s, want g", p.Sym().Name(allocs[0].Fn))
	}
	if p.Sym().Name(allocs[1].Fn) != "f" {
		t.Errorf("second alloc site = %s, want f", p.Sym().Name(allocs[1].Fn))
	}
}

func TestStoreLoadField(t *testing.T) {
	p := NewProcess(Options{Seed: 1})
	a := p.AllocWords(4)
	p.StoreField(a, 2, 99)
	if got := p.LoadField(a, 2); got != 99 {
		t.Errorf("LoadField = %d, want 99", got)
	}
	if got := p.Load(a + 2*heap.WordSize); got != 99 {
		t.Errorf("Load = %d, want 99", got)
	}
}

func TestRunConvertsFaultPanics(t *testing.T) {
	p := NewProcess(Options{Seed: 1})
	a := p.AllocWords(1)
	p.Free(a)
	err := Run(func() { p.Free(a) }) // double free
	var f *Fault
	if !errors.As(err, &f) {
		t.Fatalf("err = %v, want *Fault", err)
	}
	if !errors.Is(err, heap.ErrDoubleFree) {
		t.Errorf("err chain missing ErrDoubleFree: %v", err)
	}
	if f.Op != "free" {
		t.Errorf("fault op = %q", f.Op)
	}
}

func TestRunConvertsOtherPanics(t *testing.T) {
	err := Run(func() { panic("boom") })
	if !errors.Is(err, ErrPanicked) {
		t.Fatalf("err = %v, want ErrPanicked", err)
	}
}

func TestRunNilError(t *testing.T) {
	if err := Run(func() {}); err != nil {
		t.Fatalf("err = %v", err)
	}
}

func TestDeterministicRNG(t *testing.T) {
	a := NewProcess(Options{Seed: 42}).Rand().Uint64()
	b := NewProcess(Options{Seed: 42}).Rand().Uint64()
	c := NewProcess(Options{Seed: 43}).Rand().Uint64()
	if a != b {
		t.Error("same seed produced different RNG streams")
	}
	if a == c {
		t.Error("different seeds produced identical first values")
	}
}

func TestFaultPlanWiring(t *testing.T) {
	plan := faults.NewPlan().EnableAlways(faults.DListNoPrev)
	p := NewProcess(Options{Seed: 1, Plan: plan})
	if !p.Hit(faults.DListNoPrev) {
		t.Error("enabled fault did not fire through process")
	}
	if p.Hit(faults.OctDAG) {
		t.Error("disabled fault fired")
	}
	// Nil plan: Plan() returns usable empty plan.
	q := NewProcess(Options{Seed: 1})
	if q.Plan() == nil || q.Hit(faults.DListNoPrev) {
		t.Error("default plan misbehaves")
	}
}

func TestProcessDrivesLogger(t *testing.T) {
	p := NewProcess(Options{Seed: 1})
	l := logger.New(logger.Options{Frequency: 1})
	p.Subscribe(l)

	func() {
		defer p.Enter("build")()
		a := p.AllocWords(2)
		b := p.AllocWords(2)
		p.StoreField(a, 1, b)
	}()
	func() {
		defer p.Enter("tick")()
	}()

	if l.Ticks() != 2 {
		t.Fatalf("ticks = %d, want 2", l.Ticks())
	}
	g := l.Graph()
	if g.NumVertices() != 2 || g.NumEdges() != 1 {
		t.Errorf("graph V=%d E=%d, want 2/1", g.NumVertices(), g.NumEdges())
	}
}

func TestAddressSpaceOption(t *testing.T) {
	p := NewProcess(Options{Seed: 1, AddressSpace: 16})
	err := Run(func() {
		p.AllocWords(2)
		p.AllocWords(2) // exceeds 16-byte space
	})
	if !errors.Is(err, heap.ErrOutOfSpace) {
		t.Fatalf("err = %v, want ErrOutOfSpace", err)
	}
}
