package ds

import (
	"heapmd/internal/faults"
	"heapmd/internal/prog"
)

// AdjGraph is a directed graph represented with heap adjacency lists
// — the representation behind the paper's "localization bug that
// produced atypical graphs" (Figure 9).
//
// Layout: a header [vertexTable, nvertices], a vertex table object of
// nvertices pointer words, vertex objects [id, adjHead, degree], and
// adjacency nodes [targetVertexAddr, next].
type AdjGraph struct {
	p    *prog.Process
	hdr  uint64
	name string
}

const (
	agvID  = 0
	agvAdj = 1
	agvDeg = 2

	agnTarget = 0
	agnNext   = 1
)

// NewAdjGraph allocates a graph with n isolated vertices.
func NewAdjGraph(p *prog.Process, name string, n int) *AdjGraph {
	defer p.Enter(name + ".new")()
	if n < 1 {
		n = 1
	}
	g := &AdjGraph{p: p, hdr: p.AllocWords(2), name: name}
	table := p.AllocWords(n)
	p.StoreField(g.hdr, 0, table)
	p.StoreField(g.hdr, 1, uint64(n))
	for i := 0; i < n; i++ {
		v := p.AllocWords(3)
		p.StoreField(v, agvID, uint64(i))
		p.StoreField(table, i, v)
	}
	return g
}

// N returns the vertex count.
func (g *AdjGraph) N() int { return int(g.p.LoadField(g.hdr, 1)) }

func (g *AdjGraph) table() uint64 { return g.p.LoadField(g.hdr, 0) }

// vertex returns the i-th vertex object address.
func (g *AdjGraph) vertex(i int) uint64 { return g.p.LoadField(g.table(), i) }

// AddEdge links vertex u to vertex v by prepending an adjacency node.
func (g *AdjGraph) AddEdge(u, v int) {
	defer g.p.Enter(g.name + ".addEdge")()
	vu, vv := g.vertex(u), g.vertex(v)
	n := g.p.AllocWords(2)
	g.p.StoreField(n, agnTarget, vv)
	g.p.StoreField(n, agnNext, g.p.LoadField(vu, agvAdj))
	g.p.StoreField(vu, agvAdj, n)
	g.p.StoreField(vu, agvDeg, g.p.LoadField(vu, agvDeg)+1)
}

// Degree returns the out-degree of vertex u.
func (g *AdjGraph) Degree(u int) int {
	return int(g.p.LoadField(g.vertex(u), agvDeg))
}

// Populate adds roughly avgDeg edges per vertex inside a single
// function entry (bulk graph construction is one call in the modelled
// programs). With a healthy generator the edge targets are uniform;
// under faults.AtypicalGraph every edge targets vertex 0 (a star
// collapse), the malformed topology of the localization bug.
func (g *AdjGraph) Populate(avgDeg int) {
	defer g.p.Enter(g.name + ".populate")()
	n := g.N()
	rng := g.p.Rand()
	atypical := g.p.Plan().Enabled(faults.AtypicalGraph)
	for u := 0; u < n; u++ {
		vu := g.vertex(u)
		for e := 0; e < avgDeg; e++ {
			var v int
			if atypical {
				v = 0
			} else {
				v = rng.Intn(n)
			}
			node := g.p.AllocWords(2)
			g.p.StoreField(node, agnTarget, g.vertex(v))
			g.p.StoreField(node, agnNext, g.p.LoadField(vu, agvAdj))
			g.p.StoreField(vu, agvAdj, node)
			g.p.StoreField(vu, agvDeg, g.p.LoadField(vu, agvDeg)+1)
		}
	}
}

// Rewire points a random existing adjacency node of vertex u at a new
// random target: edge churn without growth, the steady-state update a
// network-simplex pivot performs.
func (g *AdjGraph) Rewire(u int) {
	defer g.p.Enter(g.name + ".rewire")()
	vu := g.vertex(u)
	adj := g.p.LoadField(vu, agvAdj)
	if adj == 0 {
		return
	}
	// Walk a few hops to pick a pseudo-random node on the list.
	hops := g.p.Rand().Intn(4)
	for h := 0; h < hops; h++ {
		next := g.p.LoadField(adj, agnNext)
		if next == 0 {
			break
		}
		adj = next
	}
	g.p.StoreField(adj, agnTarget, g.vertex(g.p.Rand().Intn(g.N())))
}

// FreeAll frees adjacency nodes, vertices, the table and the header.
func (g *AdjGraph) FreeAll() {
	defer g.p.Enter(g.name + ".freeAll")()
	table := g.table()
	n := g.N()
	for i := 0; i < n; i++ {
		v := g.p.LoadField(table, i)
		adj := g.p.LoadField(v, agvAdj)
		for adj != 0 {
			next := g.p.LoadField(adj, agnNext)
			g.p.Free(adj)
			adj = next
		}
		g.p.Free(v)
	}
	g.p.Free(table)
	g.p.Free(g.hdr)
	g.hdr = 0
}
