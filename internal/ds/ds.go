// Package ds implements the heap data structures the synthetic
// workloads allocate: singly, doubly and circular linked lists, binary
// search trees, oct-trees, B-trees, chained hash tables and
// adjacency-list graphs.
//
// Every structure lives entirely on the simulated heap: nodes are
// prog.Process allocations and every link is a pointer word written
// with Store, so the execution logger observes the same allocation and
// pointer-write traffic the paper's instrumenter saw. The paper's
// commercial benchmarks were "heterogeneous in the types of data
// structures allocated" (Section 4.5); workloads mix these structures
// to reproduce that.
//
// Each structure exposes the operation sites where the paper's bug
// taxonomy applies and consults the process fault plan there — e.g.
// DList.PushFront omits prev pointers under faults.DListNoPrev
// (Figure 1), and CircularList.PopFront leaves the tail dangling under
// faults.SharedFree (Figure 12).
package ds

import (
	"heapmd/internal/prog"
)

// Field offsets shared by the list node layouts. A list node is
// [value, next] and a dlist node is [value, prev, next].
const (
	nodeValue = 0
	nodeNext  = 1

	dnodeValue = 0
	dnodePrev  = 1
	dnodeNext  = 2
)

// List is a singly linked list with head and length stored in a heap
// header object, layout [head, len].
type List struct {
	p    *prog.Process
	hdr  uint64
	name string
}

// NewList allocates a list header on the heap. name tags the
// allocation functions (e.g. "assetList") so call stacks in bug
// reports identify the owner.
func NewList(p *prog.Process, name string) *List {
	defer p.Enter(name + ".new")()
	return &List{p: p, hdr: p.AllocWords(2), name: name}
}

// Head returns the address of the first node, or 0.
func (l *List) Head() uint64 { return l.p.LoadField(l.hdr, 0) }

// Len returns the stored length.
func (l *List) Len() int { return int(l.p.LoadField(l.hdr, 1)) }

func (l *List) setHead(n uint64) { l.p.StoreField(l.hdr, 0, n) }
func (l *List) setLen(n int)     { l.p.StoreField(l.hdr, 1, uint64(n)) }

// PushFront inserts a new node carrying value at the head.
func (l *List) PushFront(value uint64) uint64 {
	defer l.p.Enter(l.name + ".pushFront")()
	n := l.p.AllocWords(2)
	l.p.StoreField(n, nodeValue, value)
	l.p.StoreField(n, nodeNext, l.Head())
	l.setHead(n)
	l.setLen(l.Len() + 1)
	return n
}

// PopFront removes the head node and returns its value; ok is false
// on an empty list.
func (l *List) PopFront() (value uint64, ok bool) {
	defer l.p.Enter(l.name + ".popFront")()
	h := l.Head()
	if h == 0 {
		return 0, false
	}
	value = l.p.LoadField(h, nodeValue)
	l.setHead(l.p.LoadField(h, nodeNext))
	l.setLen(l.Len() - 1)
	l.p.Free(h)
	return value, true
}

// Each walks the list, calling fn with each node address and value;
// it stops early if fn returns false.
func (l *List) Each(fn func(node, value uint64) bool) {
	defer l.p.Enter(l.name + ".each")()
	for n := l.Head(); n != 0; n = l.p.LoadField(n, nodeNext) {
		if !fn(n, l.p.LoadField(n, nodeValue)) {
			return
		}
	}
}

// Drop discards the list's contents WITHOUT freeing the nodes and
// resets the header: the leak primitive used by typo-style faults.
func (l *List) Drop() {
	defer l.p.Enter(l.name + ".drop")()
	l.setHead(0)
	l.setLen(0)
}

// FreeAll frees every node and then the header. The list is unusable
// afterwards.
func (l *List) FreeAll() {
	defer l.p.Enter(l.name + ".freeAll")()
	n := l.Head()
	for n != 0 {
		next := l.p.LoadField(n, nodeNext)
		l.p.Free(n)
		n = next
	}
	l.p.Free(l.hdr)
	l.hdr = 0
}
