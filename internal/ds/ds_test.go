package ds

import (
	"testing"

	"heapmd/internal/faults"
	"heapmd/internal/heapgraph"
	"heapmd/internal/logger"
	"heapmd/internal/prog"
)

// newProc returns a process with an attached logger so tests can
// inspect the heap-graph the structures induce.
func newProc(t *testing.T, plan *faults.Plan) (*prog.Process, *logger.Logger) {
	t.Helper()
	p := prog.NewProcess(prog.Options{Seed: 7, Plan: plan})
	l := logger.New(logger.Options{Frequency: 1})
	p.Subscribe(l)
	return p, l
}

func TestListPushPop(t *testing.T) {
	p, _ := newProc(t, nil)
	l := NewList(p, "t")
	for i := uint64(1); i <= 5; i++ {
		l.PushFront(i)
	}
	if l.Len() != 5 {
		t.Fatalf("Len = %d", l.Len())
	}
	// LIFO order.
	for want := uint64(5); want >= 1; want-- {
		v, ok := l.PopFront()
		if !ok || v != want {
			t.Fatalf("PopFront = (%d,%v), want (%d,true)", v, ok, want)
		}
	}
	if _, ok := l.PopFront(); ok {
		t.Error("PopFront on empty list succeeded")
	}
}

func TestListEachAndDrop(t *testing.T) {
	p, _ := newProc(t, nil)
	l := NewList(p, "t")
	for i := uint64(0); i < 4; i++ {
		l.PushFront(i)
	}
	var seen []uint64
	l.Each(func(_, v uint64) bool {
		seen = append(seen, v)
		return true
	})
	if len(seen) != 4 {
		t.Fatalf("Each saw %d", len(seen))
	}
	live := p.Heap().Live()
	l.Drop() // leak the nodes
	if l.Len() != 0 || l.Head() != 0 {
		t.Error("Drop did not clear header")
	}
	if p.Heap().Live() != live {
		t.Error("Drop freed nodes (it must leak them)")
	}
}

func TestListFreeAllReleasesEverything(t *testing.T) {
	p, _ := newProc(t, nil)
	before := p.Heap().Live()
	l := NewList(p, "t")
	for i := uint64(0); i < 10; i++ {
		l.PushFront(i)
	}
	l.FreeAll()
	if p.Heap().Live() != before {
		t.Errorf("leaked %d objects", p.Heap().Live()-before)
	}
}

func TestListGraphShape(t *testing.T) {
	p, lg := newProc(t, nil)
	l := NewList(p, "t")
	for i := uint64(0); i < 10; i++ {
		l.PushFront(i)
	}
	g := lg.Graph()
	// 10 nodes + header: each node pointed at by predecessor or
	// header; all vertices have indegree 1 except the header.
	if g.NumVertices() != 11 {
		t.Fatalf("V = %d, want 11", g.NumVertices())
	}
	if g.CountInDegree(1) != 10 {
		t.Errorf("indeg-1 count = %d, want 10", g.CountInDegree(1))
	}
	if g.CountInDegree(0) != 1 {
		t.Errorf("roots = %d, want 1 (header)", g.CountInDegree(0))
	}
}

func TestDListInvariantHealthy(t *testing.T) {
	p, _ := newProc(t, nil)
	l := NewDList(p, "t")
	n1 := l.PushBack(1)
	l.PushBack(2)
	l.PushFront(0)
	l.InsertAfter(n1, 99)
	if l.Len() != 4 {
		t.Fatalf("Len = %d", l.Len())
	}
	if v := l.CheckPrevInvariant(); v != 0 {
		t.Errorf("healthy dlist has %d prev violations", v)
	}
	var vals []uint64
	l.Each(func(_, v uint64) bool { vals = append(vals, v); return true })
	want := []uint64{0, 1, 99, 2}
	for i := range want {
		if vals[i] != want[i] {
			t.Fatalf("order = %v, want %v", vals, want)
		}
	}
}

func TestDListNoPrevFault(t *testing.T) {
	plan := faults.NewPlan().EnableAlways(faults.DListNoPrev)
	p, lg := newProc(t, plan)
	l := NewDList(p, "t")
	head := l.PushBack(0)
	for i := uint64(1); i <= 20; i++ {
		l.InsertAfter(head, i)
	}
	if v := l.CheckPrevInvariant(); v == 0 {
		t.Fatal("fault did not break prev invariant")
	}
	if plan.Triggers(faults.DListNoPrev) == 0 {
		t.Fatal("fault never fired")
	}
	// Metric effect (Figure 1): interior nodes that should have
	// indegree 2 have indegree 1 — more indeg-1 vertices than the
	// healthy equivalent.
	g := lg.Graph()
	faultyIndeg1 := g.CountInDegree(1)

	p2, lg2 := newProc(t, nil)
	l2 := NewDList(p2, "t")
	head2 := l2.PushBack(0)
	for i := uint64(1); i <= 20; i++ {
		l2.InsertAfter(head2, i)
	}
	healthyIndeg1 := lg2.Graph().CountInDegree(1)
	if faultyIndeg1 <= healthyIndeg1 {
		t.Errorf("indeg-1 under fault (%d) should exceed healthy (%d)", faultyIndeg1, healthyIndeg1)
	}
}

func TestDListRemoveSurvivesDamagedPrev(t *testing.T) {
	plan := faults.NewPlan().EnableAlways(faults.DListNoPrev)
	p, _ := newProc(t, plan)
	l := NewDList(p, "t")
	l.PushBack(1)
	n2 := l.PushBack(2)
	l.PushBack(3)
	l.Remove(n2) // must find the true predecessor by walking
	var vals []uint64
	l.Each(func(_, v uint64) bool { vals = append(vals, v); return true })
	if len(vals) != 2 || vals[0] != 1 || vals[1] != 3 {
		t.Errorf("after remove: %v", vals)
	}
}

func TestDListFreeAll(t *testing.T) {
	p, _ := newProc(t, nil)
	before := p.Heap().Live()
	l := NewDList(p, "t")
	for i := uint64(0); i < 8; i++ {
		l.PushBack(i)
	}
	l.FreeAll()
	if p.Heap().Live() != before {
		t.Error("dlist FreeAll leaked")
	}
}

func TestCircularListInvariant(t *testing.T) {
	p, _ := newProc(t, nil)
	l := NewCircularList(p, "t")
	if !l.CheckCircularInvariant() {
		t.Error("empty list should satisfy invariant")
	}
	for i := uint64(1); i <= 6; i++ {
		l.Append(i)
		if !l.CheckCircularInvariant() {
			t.Fatalf("invariant broken after append %d", i)
		}
	}
	l.Rotate()
	if !l.CheckCircularInvariant() {
		t.Error("invariant broken after rotate")
	}
	v, ok := l.PopFront()
	if !ok || v != 2 { // rotated once, so head was 2
		t.Errorf("PopFront = (%d,%v), want (2,true)", v, ok)
	}
	if !l.CheckCircularInvariant() {
		t.Error("invariant broken after healthy PopFront")
	}
}

func TestCircularSharedFreeFault(t *testing.T) {
	plan := faults.NewPlan().EnableAlways(faults.SharedFree)
	p, _ := newProc(t, plan)
	l := NewCircularList(p, "t")
	for i := uint64(1); i <= 5; i++ {
		l.Append(i)
	}
	if _, ok := l.PopFront(); !ok {
		t.Fatal("PopFront failed")
	}
	if l.CheckCircularInvariant() {
		t.Error("faulty PopFront left the invariant intact")
	}
	if plan.Triggers(faults.SharedFree) != 1 {
		t.Errorf("fault triggers = %d", plan.Triggers(faults.SharedFree))
	}
	// Cleanup must not double-free despite the dangling tail.
	if err := prog.Run(func() { l.FreeAll() }); err != nil {
		t.Errorf("FreeAll on damaged list: %v", err)
	}
}

func TestCircularPopToEmpty(t *testing.T) {
	p, _ := newProc(t, nil)
	before := p.Heap().Live()
	l := NewCircularList(p, "t")
	l.Append(1)
	l.Append(2)
	if v, _ := l.PopFront(); v != 1 {
		t.Error("wrong pop order")
	}
	if v, _ := l.PopFront(); v != 2 {
		t.Error("wrong pop order")
	}
	if _, ok := l.PopFront(); ok {
		t.Error("pop on empty circular list succeeded")
	}
	l.FreeAll()
	if p.Heap().Live() != before {
		t.Error("leaked")
	}
}

func TestBSTInsertFindDelete(t *testing.T) {
	p, _ := newProc(t, nil)
	tr := NewBST(p, "t")
	keys := []uint64{50, 30, 70, 20, 40, 60, 80, 35, 45}
	for _, k := range keys {
		tr.Insert(k)
	}
	if tr.Size() != len(keys) {
		t.Fatalf("Size = %d", tr.Size())
	}
	for _, k := range keys {
		if tr.Find(k) == 0 {
			t.Errorf("Find(%d) missed", k)
		}
	}
	if tr.Find(99) != 0 {
		t.Error("Find(99) should miss")
	}
	if v := tr.CheckParentInvariant(); v != 0 {
		t.Fatalf("healthy BST has %d parent violations", v)
	}
	// Delete leaf, one-child and two-children cases.
	for _, k := range []uint64{20, 30, 50} {
		if !tr.Delete(k) {
			t.Fatalf("Delete(%d) failed", k)
		}
		if tr.Find(k) != 0 {
			t.Fatalf("key %d still present", k)
		}
		if v := tr.CheckParentInvariant(); v != 0 {
			t.Fatalf("parent invariant broken after Delete(%d)", k)
		}
	}
	if tr.Delete(99) {
		t.Error("Delete of absent key succeeded")
	}
	if tr.Size() != len(keys)-3 {
		t.Errorf("Size = %d", tr.Size())
	}
}

func TestBSTOrderPreserved(t *testing.T) {
	p, _ := newProc(t, nil)
	tr := NewBST(p, "t")
	rng := p.Rand()
	inserted := map[uint64]bool{}
	for i := 0; i < 200; i++ {
		k := uint64(rng.Intn(1000))
		tr.Insert(k)
		inserted[k] = true
	}
	for k := range inserted {
		if tr.Find(k) == 0 {
			t.Fatalf("lost key %d", k)
		}
	}
}

func TestBSTNoParentFaultMetricEffect(t *testing.T) {
	build := func(plan *faults.Plan) *heapgraph.Graph {
		p, lg := newProc(t, plan)
		tr := NewBST(p, "t")
		rng := p.Rand()
		for i := 0; i < 100; i++ {
			tr.Insert(uint64(rng.Intn(100000)))
		}
		return lg.Graph()
	}
	healthy := build(nil)
	faulty := build(faults.NewPlan().EnableAlways(faults.TreeNoParent))
	h1 := float64(healthy.CountInDegree(1)) / float64(healthy.NumVertices())
	f1 := float64(faulty.CountInDegree(1)) / float64(faulty.NumVertices())
	// Figure 10: missing parent back-pointers inflate indeg-1.
	if f1 <= h1 {
		t.Errorf("faulty indeg-1 fraction %.3f should exceed healthy %.3f", f1, h1)
	}
}

func TestBSTFreeAll(t *testing.T) {
	p, _ := newProc(t, nil)
	before := p.Heap().Live()
	tr := NewBST(p, "t")
	for i := uint64(0); i < 50; i++ {
		tr.Insert(i * 37 % 100)
	}
	tr.FreeAll()
	if p.Heap().Live() != before {
		t.Error("BST FreeAll leaked")
	}
}

func TestFullBinaryTree(t *testing.T) {
	p, _ := newProc(t, nil)
	before := p.Heap().Live()
	root := FullBinaryTree(p, "t", 4)
	// 2^5 - 1 = 31 nodes.
	if got := p.Heap().Live() - before; got != 31 {
		t.Fatalf("allocated %d nodes, want 31", got)
	}
	FreeBinaryTree(p, "t", root)
	if p.Heap().Live() != before {
		t.Error("leaked")
	}
}

func TestSingleChildFault(t *testing.T) {
	plan := faults.NewPlan().EnableAlways(faults.SingleChild)
	p, _ := newProc(t, plan)
	before := p.Heap().Live()
	root := FullBinaryTree(p, "t", 4)
	// Degenerate to a path: depth+1 = 5 nodes.
	if got := p.Heap().Live() - before; got != 5 {
		t.Fatalf("allocated %d nodes under fault, want 5", got)
	}
	FreeBinaryTree(p, "t", root)
}

func TestOctTreeHealthy(t *testing.T) {
	p, lg := newProc(t, nil)
	tr := BuildOctTree(p, "t", 2)
	// 1 + 8 + 64 = 73 nodes.
	if got := tr.CountNodes(); got != 73 {
		t.Fatalf("CountNodes = %d, want 73", got)
	}
	// Every non-root vertex has indegree exactly 1.
	g := lg.Graph()
	if g.CountInDegree(1) != 72 {
		t.Errorf("indeg-1 = %d, want 72", g.CountInDegree(1))
	}
	tr.FreeAll()
	if p.Heap().Live() != 0 {
		t.Error("oct-tree FreeAll leaked")
	}
}

func TestOctDAGFault(t *testing.T) {
	plan := faults.NewPlan().EnableAlways(faults.OctDAG)
	p, lg := newProc(t, plan)
	tr := BuildOctTree(p, "t", 2)
	// Shared subtrees: 1 + 1 + 1 = 3 distinct nodes.
	if got := tr.CountNodes(); got != 3 {
		t.Fatalf("CountNodes = %d, want 3", got)
	}
	// The shared children have indegree 8: indeg-1 population
	// collapses (the poorly-disguised signature).
	g := lg.Graph()
	if g.CountInDegree(1) != 0 {
		t.Errorf("indeg-1 = %d, want 0 under full sharing", g.CountInDegree(1))
	}
	tr.FreeAll()
	if p.Heap().Live() != 0 {
		t.Error("oct-DAG FreeAll leaked or double-freed")
	}
}

func TestHashTablePutGetDelete(t *testing.T) {
	p, _ := newProc(t, nil)
	h := NewHashTable(p, "t", 16)
	for k := uint64(0); k < 100; k++ {
		h.Put(k, k*10)
	}
	if h.Size() != 100 {
		t.Fatalf("Size = %d", h.Size())
	}
	h.Put(5, 999) // update
	if h.Size() != 100 {
		t.Error("update changed size")
	}
	if v, ok := h.Get(5); !ok || v != 999 {
		t.Errorf("Get(5) = (%d,%v)", v, ok)
	}
	if _, ok := h.Get(1000); ok {
		t.Error("Get of absent key succeeded")
	}
	if !h.Delete(5) || h.Delete(5) {
		t.Error("Delete semantics wrong")
	}
	if h.Size() != 99 {
		t.Errorf("Size after delete = %d", h.Size())
	}
}

func TestHashTableResize(t *testing.T) {
	p, _ := newProc(t, nil)
	h := NewHashTable(p, "t", 4)
	for k := uint64(0); k < 64; k++ {
		h.Put(k, k)
	}
	h.Resize(64)
	if h.NBuckets() != 64 {
		t.Fatalf("NBuckets = %d", h.NBuckets())
	}
	for k := uint64(0); k < 64; k++ {
		if v, ok := h.Get(k); !ok || v != k {
			t.Fatalf("lost key %d after resize", k)
		}
	}
}

func TestBadHashFault(t *testing.T) {
	build := func(plan *faults.Plan) int {
		p, _ := newProc(t, plan)
		h := NewHashTable(p, "t", 64)
		for k := uint64(0); k < 256; k++ {
			h.Put(k, k)
		}
		return h.MaxChainLen()
	}
	healthy := build(nil)
	degenerate := build(faults.NewPlan().EnableAlways(faults.BadHash))
	if degenerate < 4*healthy {
		t.Errorf("bad hash max chain %d should dwarf healthy %d", degenerate, healthy)
	}
}

func TestHashTableFreeAll(t *testing.T) {
	p, _ := newProc(t, nil)
	before := p.Heap().Live()
	h := NewHashTable(p, "t", 8)
	for k := uint64(0); k < 30; k++ {
		h.Put(k, k)
	}
	h.FreeAll()
	if p.Heap().Live() != before {
		t.Error("hash table FreeAll leaked")
	}
}

func TestBTreeInsertContains(t *testing.T) {
	p, _ := newProc(t, nil)
	tr := NewBTree(p, "t")
	rng := p.Rand()
	var keys []uint64
	for i := 0; i < 500; i++ {
		k := uint64(rng.Intn(100000))
		tr.Insert(k)
		keys = append(keys, k)
		if i%50 == 0 {
			if msg := tr.CheckInvariants(); msg != "" {
				t.Fatalf("invariants after %d inserts: %s", i+1, msg)
			}
		}
	}
	if tr.Size() != 500 {
		t.Fatalf("Size = %d", tr.Size())
	}
	for _, k := range keys {
		if !tr.Contains(k) {
			t.Fatalf("lost key %d", k)
		}
	}
	if tr.Contains(200000) {
		t.Error("Contains of absent key")
	}
	if msg := tr.CheckInvariants(); msg != "" {
		t.Fatalf("final invariants: %s", msg)
	}
}

func TestBTreeSequentialInsert(t *testing.T) {
	p, _ := newProc(t, nil)
	tr := NewBTree(p, "t")
	for k := uint64(0); k < 200; k++ {
		tr.Insert(k)
	}
	if msg := tr.CheckInvariants(); msg != "" {
		t.Fatalf("invariants: %s", msg)
	}
	for k := uint64(0); k < 200; k++ {
		if !tr.Contains(k) {
			t.Fatalf("lost key %d", k)
		}
	}
}

func TestBTreeFreeAll(t *testing.T) {
	p, _ := newProc(t, nil)
	before := p.Heap().Live()
	tr := NewBTree(p, "t")
	for k := uint64(0); k < 300; k++ {
		tr.Insert(k * 7 % 1000)
	}
	tr.FreeAll()
	if p.Heap().Live() != before {
		t.Error("B-tree FreeAll leaked")
	}
}

func TestAdjGraphPopulate(t *testing.T) {
	p, _ := newProc(t, nil)
	g := NewAdjGraph(p, "t", 20)
	g.Populate(3)
	total := 0
	for u := 0; u < 20; u++ {
		total += g.Degree(u)
	}
	if total != 60 {
		t.Fatalf("total degree = %d, want 60", total)
	}
	g.FreeAll()
	if p.Heap().Live() != 0 {
		t.Error("graph FreeAll leaked")
	}
}

func TestAtypicalGraphFault(t *testing.T) {
	build := func(plan *faults.Plan) (*heapgraph.Graph, *AdjGraph, *prog.Process) {
		p, lg := newProc(t, plan)
		g := NewAdjGraph(p, "t", 30)
		g.Populate(4)
		return lg.Graph(), g, p
	}
	hg, _, _ := build(nil)
	fg, fgraph, _ := build(faults.NewPlan().EnableAlways(faults.AtypicalGraph))
	// Star collapse: vertex 0's object accumulates huge indegree
	// while every other vertex object is referenced only by the
	// vertex table (indegree 1) — the indegree-1 population swells
	// relative to the healthy topology.
	if fgraph.Degree(0) != 4 {
		t.Errorf("out-degree unchanged by fault, got %d", fgraph.Degree(0))
	}
	healthy1 := float64(hg.CountInDegree(1)) / float64(hg.NumVertices())
	faulty1 := float64(fg.CountInDegree(1)) / float64(fg.NumVertices())
	if faulty1 <= healthy1 {
		t.Errorf("star topology indeg-1 fraction %.3f should exceed healthy %.3f", faulty1, healthy1)
	}
}
