package ds

import (
	"heapmd/internal/faults"
	"heapmd/internal/prog"
)

// DList is a doubly linked list; header layout [head, tail, len],
// node layout [value, prev, next].
//
// Interior nodes of a healthy doubly linked list have indegree 2 (the
// next pointer of their predecessor and the prev pointer of their
// successor). The Figure 1 bug — insertions that forget to update
// prev pointers — turns those nodes into indegree-1 vertices, which is
// exactly the metric shift HeapMD detected in the paper; the
// faults.DListNoPrev plan reproduces it at the insertion sites.
type DList struct {
	p    *prog.Process
	hdr  uint64
	name string
}

// NewDList allocates the header.
func NewDList(p *prog.Process, name string) *DList {
	defer p.Enter(name + ".new")()
	return &DList{p: p, hdr: p.AllocWords(3), name: name}
}

// Head returns the first node address, or 0.
func (l *DList) Head() uint64 { return l.p.LoadField(l.hdr, 0) }

// Tail returns the last node address, or 0.
func (l *DList) Tail() uint64 { return l.p.LoadField(l.hdr, 1) }

// Len returns the stored length.
func (l *DList) Len() int { return int(l.p.LoadField(l.hdr, 2)) }

func (l *DList) setHead(n uint64) { l.p.StoreField(l.hdr, 0, n) }
func (l *DList) setTail(n uint64) { l.p.StoreField(l.hdr, 1, n) }
func (l *DList) setLen(n int)     { l.p.StoreField(l.hdr, 2, uint64(n)) }

// PushFront inserts value at the head. Under faults.DListNoPrev the
// new node's prev linkage is silently skipped, replicating Figure 1.
func (l *DList) PushFront(value uint64) uint64 {
	defer l.p.Enter(l.name + ".pushFront")()
	n := l.p.AllocWords(3)
	l.p.StoreField(n, dnodeValue, value)
	h := l.Head()
	l.p.StoreField(n, dnodeNext, h)
	if h != 0 {
		if !l.p.Hit(faults.DListNoPrev) {
			l.p.StoreField(h, dnodePrev, n)
		}
	} else {
		l.setTail(n)
	}
	l.setHead(n)
	l.setLen(l.Len() + 1)
	return n
}

// PushBack appends value at the tail, with the same fault site.
func (l *DList) PushBack(value uint64) uint64 {
	defer l.p.Enter(l.name + ".pushBack")()
	n := l.p.AllocWords(3)
	l.p.StoreField(n, dnodeValue, value)
	t := l.Tail()
	if t != 0 {
		l.p.StoreField(t, dnodeNext, n)
		if !l.p.Hit(faults.DListNoPrev) {
			l.p.StoreField(n, dnodePrev, t)
		}
	} else {
		l.setHead(n)
	}
	l.setTail(n)
	l.setLen(l.Len() + 1)
	return n
}

// PushBackMany appends all values within one function entry (bulk
// construction at startup). The fault site matches PushBack's.
func (l *DList) PushBackMany(values []uint64) {
	defer l.p.Enter(l.name + ".pushBackMany")()
	for _, v := range values {
		n := l.p.AllocWords(3)
		l.p.StoreField(n, dnodeValue, v)
		t := l.Tail()
		if t != 0 {
			l.p.StoreField(t, dnodeNext, n)
			if !l.p.Hit(faults.DListNoPrev) {
				l.p.StoreField(n, dnodePrev, t)
			}
		} else {
			l.setHead(n)
		}
		l.setTail(n)
		l.setLen(l.Len() + 1)
	}
}

// InsertAfter inserts value after the given node — the shape of the
// Figure 1 code fragment (insert after pAssetList). The same fault
// site applies.
func (l *DList) InsertAfter(node uint64, value uint64) uint64 {
	defer l.p.Enter(l.name + ".insertAfter")()
	n := l.p.AllocWords(3)
	l.p.StoreField(n, dnodeValue, value)
	next := l.p.LoadField(node, dnodeNext)
	l.p.StoreField(n, dnodeNext, next)
	l.p.StoreField(node, dnodeNext, n)
	if l.p.Hit(faults.DListNoPrev) {
		// Figure 1: "prev pointers are not correctly updated here."
	} else {
		l.p.StoreField(n, dnodePrev, node)
		if next != 0 {
			l.p.StoreField(next, dnodePrev, n)
		}
	}
	if next == 0 {
		l.setTail(n)
	}
	l.setLen(l.Len() + 1)
	return n
}

// Remove unlinks and frees the given node, using whatever linkage is
// actually present (tolerating fault-damaged prev pointers by
// searching forward when needed).
//
// Under faults.ABARewire the node is handed back to the allocator
// *before* the unlink completes — the ABA shape: a concurrent-looking
// remove path that frees first and rewires through the stale pointer.
// The neighbor stores still land in live objects, but clearing the
// node's own linkage goes through a dangling pointer, and once the
// allocator recycles the address those use-after-free stores would
// corrupt whatever object lives there now. The heap simulator counts
// them as wild stores, which the health thresholds surface as an
// InstrumentationAnomaly.
func (l *DList) Remove(node uint64) {
	defer l.p.Enter(l.name + ".remove")()
	prev := l.p.LoadField(node, dnodePrev)
	next := l.p.LoadField(node, dnodeNext)
	if prev == 0 && l.Head() != node {
		// Damaged prev linkage: find the true predecessor.
		for n := l.Head(); n != 0; n = l.p.LoadField(n, dnodeNext) {
			if l.p.LoadField(n, dnodeNext) == node {
				prev = n
				break
			}
		}
	}
	aba := l.p.Hit(faults.ABARewire)
	if aba {
		l.p.Free(node) // freed before the unlink is complete
	}
	if prev != 0 {
		l.p.StoreField(prev, dnodeNext, next)
	} else {
		l.setHead(next)
	}
	if next != 0 {
		l.p.StoreField(next, dnodePrev, prev)
	} else {
		l.setTail(prev)
	}
	if aba {
		// "Poison on destroy" through the stale pointer: wild stores
		// into freed (possibly recycled) memory.
		l.p.StoreField(node, dnodePrev, 0)
		l.p.StoreField(node, dnodeNext, 0)
	} else {
		l.p.Free(node)
	}
	l.setLen(l.Len() - 1)
}

// Each walks forward through the list.
func (l *DList) Each(fn func(node, value uint64) bool) {
	defer l.p.Enter(l.name + ".each")()
	for n := l.Head(); n != 0; n = l.p.LoadField(n, dnodeNext) {
		if !fn(n, l.p.LoadField(n, dnodeValue)) {
			return
		}
	}
}

// CheckPrevInvariant walks the list and counts nodes whose prev
// pointer disagrees with the forward linkage — the data-structure
// invariant the Figure 1 bug violates. Verification helper for tests
// and fix-validation (paper Section 4.3: "we verified that the fix did
// indeed cause the affected metric to remain stable").
func (l *DList) CheckPrevInvariant() (violations int) {
	defer l.p.Enter(l.name + ".checkPrev")()
	var prev uint64
	for n := l.Head(); n != 0; n = l.p.LoadField(n, dnodeNext) {
		if l.p.LoadField(n, dnodePrev) != prev {
			violations++
		}
		prev = n
	}
	return violations
}

// FreeAll frees all nodes and the header.
func (l *DList) FreeAll() {
	defer l.p.Enter(l.name + ".freeAll")()
	n := l.Head()
	for n != 0 {
		next := l.p.LoadField(n, dnodeNext)
		l.p.Free(n)
		n = next
	}
	l.p.Free(l.hdr)
	l.hdr = 0
}
