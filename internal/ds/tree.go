package ds

import (
	"heapmd/internal/faults"
	"heapmd/internal/prog"
)

// BST node layout: [key, left, right, parent].
const (
	bstKey    = 0
	bstLeft   = 1
	bstRight  = 2
	bstParent = 3
)

// BST is a binary search tree whose nodes carry parent back-pointers;
// header layout [root, size].
//
// In a healthy BST with parent pointers, an interior node has
// indegree 3 (its parent's child pointer plus back-pointers from both
// children) and every non-root node at least indegree 1 from its
// parent plus contributes a parent edge upward. The Figure 10 / PC
// Game(action) bug — "newly-inserted tree nodes were missing parent
// pointers from their children" — is reproduced at the insertion site
// under faults.TreeNoParent: the fresh node's children (none at
// insert time) never gain parent pointers later because the node is
// inserted as a leaf and the *link from the new node back to its
// parent* is skipped, leaving the parent with indegree reduced by one
// and inflating the population of indegree-1 vertices.
type BST struct {
	p    *prog.Process
	hdr  uint64
	name string
}

// NewBST allocates the header.
func NewBST(p *prog.Process, name string) *BST {
	defer p.Enter(name + ".new")()
	return &BST{p: p, hdr: p.AllocWords(2), name: name}
}

// Root returns the root node address, or 0.
func (t *BST) Root() uint64 { return t.p.LoadField(t.hdr, 0) }

// Size returns the stored node count.
func (t *BST) Size() int { return int(t.p.LoadField(t.hdr, 1)) }

func (t *BST) setRoot(n uint64) { t.p.StoreField(t.hdr, 0, n) }
func (t *BST) setSize(n int)    { t.p.StoreField(t.hdr, 1, uint64(n)) }

// Insert adds key (duplicates go right) and returns the new node.
// Under faults.TreeNoParent the child->parent back-pointer is skipped.
func (t *BST) Insert(key uint64) uint64 {
	defer t.p.Enter(t.name + ".insert")()
	return t.insertNoEnter(key)
}

// InsertMany inserts all keys within one function entry — bulk scene
// or index loading, so startup costs one metric computation point.
// The fault site is identical to Insert's.
func (t *BST) InsertMany(keys []uint64) {
	defer t.p.Enter(t.name + ".insertMany")()
	for _, k := range keys {
		t.insertNoEnter(k)
	}
}

func (t *BST) insertNoEnter(key uint64) uint64 {
	n := t.p.AllocWords(4)
	t.p.StoreField(n, bstKey, key)
	cur := t.Root()
	if cur == 0 {
		t.setRoot(n)
		t.setSize(t.Size() + 1)
		return n
	}
	for {
		k := t.p.LoadField(cur, bstKey)
		var childField int
		if key < k {
			childField = bstLeft
		} else {
			childField = bstRight
		}
		child := t.p.LoadField(cur, childField)
		if child == 0 {
			t.p.StoreField(cur, childField, n)
			if !t.p.Hit(faults.TreeNoParent) {
				t.p.StoreField(n, bstParent, cur)
			}
			t.setSize(t.Size() + 1)
			return n
		}
		cur = child
	}
}

// Find returns the node holding key, or 0. It issues Load traffic,
// giving access-tracking tools (SWAT) something to observe.
func (t *BST) Find(key uint64) uint64 {
	defer t.p.Enter(t.name + ".find")()
	cur := t.Root()
	for cur != 0 {
		k := t.p.LoadField(cur, bstKey)
		switch {
		case key == k:
			return cur
		case key < k:
			cur = t.p.LoadField(cur, bstLeft)
		default:
			cur = t.p.LoadField(cur, bstRight)
		}
	}
	return 0
}

// Min returns the minimum node under n (n itself if it has no left
// child), or 0 for an empty subtree.
func (t *BST) Min(n uint64) uint64 {
	for n != 0 {
		l := t.p.LoadField(n, bstLeft)
		if l == 0 {
			return n
		}
		n = l
	}
	return 0
}

// Delete removes the node holding key, reporting whether a node was
// removed. Navigation never trusts the stored parent back-pointers —
// they are an auxiliary invariant, not a navigation aid — so a tree
// damaged by the TreeNoParent fault still deletes correctly, matching
// the paper's observation that data-structure-invariant bugs
// "typically never result in crashes".
func (t *BST) Delete(key uint64) bool {
	defer t.p.Enter(t.name + ".delete")()
	var parent uint64
	n := t.Root()
	for n != 0 {
		k := t.p.LoadField(n, bstKey)
		if key == k {
			break
		}
		parent = n
		if key < k {
			n = t.p.LoadField(n, bstLeft)
		} else {
			n = t.p.LoadField(n, bstRight)
		}
	}
	if n == 0 {
		return false
	}
	t.deleteNode(n, parent)
	t.setSize(t.Size() - 1)
	return true
}

func (t *BST) findNoEnter(key uint64) uint64 {
	cur := t.Root()
	for cur != 0 {
		k := t.p.LoadField(cur, bstKey)
		switch {
		case key == k:
			return cur
		case key < k:
			cur = t.p.LoadField(cur, bstLeft)
		default:
			cur = t.p.LoadField(cur, bstRight)
		}
	}
	return 0
}

// replaceChild repoints parent's link from old to new (parent == 0
// means old was the root) and refreshes new's parent back-pointer.
func (t *BST) replaceChild(parent, old, new uint64) {
	switch {
	case parent == 0:
		t.setRoot(new)
	case t.p.LoadField(parent, bstLeft) == old:
		t.p.StoreField(parent, bstLeft, new)
	default:
		t.p.StoreField(parent, bstRight, new)
	}
	if new != 0 {
		t.p.StoreField(new, bstParent, parent)
	}
}

func (t *BST) deleteNode(n, parent uint64) {
	left := t.p.LoadField(n, bstLeft)
	right := t.p.LoadField(n, bstRight)
	switch {
	case left == 0:
		t.replaceChild(parent, n, right)
		t.p.Free(n)
	case right == 0:
		t.replaceChild(parent, n, left)
		t.p.Free(n)
	default:
		// Two children: splice in the successor (min of the right
		// subtree), tracking its parent by descent.
		sp, s := n, right
		for {
			l := t.p.LoadField(s, bstLeft)
			if l == 0 {
				break
			}
			sp, s = s, l
		}
		if sp != n {
			t.replaceChild(sp, s, t.p.LoadField(s, bstRight))
			t.p.StoreField(s, bstRight, right)
			t.p.StoreField(right, bstParent, s)
		}
		t.replaceChild(parent, n, s)
		t.p.StoreField(s, bstLeft, left)
		t.p.StoreField(left, bstParent, s)
		t.p.Free(n)
	}
}

// CheckParentInvariant counts nodes whose parent pointer disagrees
// with the downward linkage — the invariant the TreeNoParent fault
// breaks.
func (t *BST) CheckParentInvariant() (violations int) {
	defer t.p.Enter(t.name + ".checkParent")()
	var walk func(n, parent uint64)
	walk = func(n, parent uint64) {
		if n == 0 {
			return
		}
		if t.p.LoadField(n, bstParent) != parent {
			violations++
		}
		walk(t.p.LoadField(n, bstLeft), n)
		walk(t.p.LoadField(n, bstRight), n)
	}
	walk(t.Root(), 0)
	return violations
}

// FreeAll frees the whole tree and header.
func (t *BST) FreeAll() {
	defer t.p.Enter(t.name + ".freeAll")()
	var walk func(n uint64)
	walk = func(n uint64) {
		if n == 0 {
			return
		}
		walk(t.p.LoadField(n, bstLeft))
		walk(t.p.LoadField(n, bstRight))
		t.p.Free(n)
	}
	walk(t.Root())
	t.p.Free(t.hdr)
	t.hdr = 0
}

// FullBinaryTree builds a complete binary tree of the given depth and
// returns its root; node layout [payload, left, right]. Every
// interior node normally has two children; under faults.SingleChild
// interior nodes get only a left child — the indirect logic bug from
// Figure 9 ("many tree vertexes having a single child rather than
// two").
func FullBinaryTree(p *prog.Process, name string, depth int) uint64 {
	defer p.Enter(name + ".build")()
	return buildFull(p, depth)
}

func buildFull(p *prog.Process, depth int) uint64 {
	n := p.AllocWords(3)
	p.StoreField(n, 0, uint64(depth))
	if depth <= 0 {
		return n
	}
	p.StoreField(n, 1, buildFull(p, depth-1))
	if !p.Hit(faults.SingleChild) {
		p.StoreField(n, 2, buildFull(p, depth-1))
	}
	return n
}

// FreeBinaryTree releases a tree built by FullBinaryTree.
func FreeBinaryTree(p *prog.Process, name string, root uint64) {
	defer p.Enter(name + ".free")()
	var walk func(n uint64)
	walk = func(n uint64) {
		if n == 0 {
			return
		}
		walk(p.LoadField(n, 1))
		walk(p.LoadField(n, 2))
		p.Free(n)
	}
	walk(root)
}

// OctTree nodes have eight child slots plus a payload word: layout
// [child0..child7, payload]. A healthy oct-tree gives every non-root
// node indegree exactly 1. Under faults.OctDAG the builder reuses the
// first child subtree for ALL eight slots, producing an oct-DAG whose
// shared subtree roots have indegree 8 — this collapses the
// percentage of indegree-1 vertices to an extreme value from startup
// onward, the paper's only "poorly disguised" bug (Section 4.3).
type OctTree struct {
	p    *prog.Process
	root uint64
	name string
}

// BuildOctTree constructs an oct-tree of the given depth.
func BuildOctTree(p *prog.Process, name string, depth int) *OctTree {
	defer p.Enter(name + ".build")()
	t := &OctTree{p: p, name: name}
	t.root = t.build(depth)
	return t
}

func (t *OctTree) build(depth int) uint64 {
	n := t.p.AllocWords(9)
	t.p.StoreField(n, 8, uint64(depth))
	if depth <= 0 {
		return n
	}
	if t.p.Hit(faults.OctDAG) {
		shared := t.build(depth - 1)
		for c := 0; c < 8; c++ {
			t.p.StoreField(n, c, shared)
		}
		return n
	}
	for c := 0; c < 8; c++ {
		t.p.StoreField(n, c, t.build(depth-1))
	}
	return n
}

// Root returns the root node address.
func (t *OctTree) Root() uint64 { return t.root }

// CountNodes walks the structure counting distinct nodes (shared
// subtrees counted once).
func (t *OctTree) CountNodes() int {
	defer t.p.Enter(t.name + ".count")()
	seen := make(map[uint64]bool)
	var walk func(n uint64)
	walk = func(n uint64) {
		if n == 0 || seen[n] {
			return
		}
		seen[n] = true
		for c := 0; c < 8; c++ {
			walk(t.p.LoadField(n, c))
		}
	}
	walk(t.root)
	return len(seen)
}

// FreeAll releases every distinct node.
func (t *OctTree) FreeAll() {
	defer t.p.Enter(t.name + ".free")()
	seen := make(map[uint64]bool)
	var collect func(n uint64)
	collect = func(n uint64) {
		if n == 0 || seen[n] {
			return
		}
		seen[n] = true
		for c := 0; c < 8; c++ {
			collect(t.p.LoadField(n, c))
		}
	}
	collect(t.root)
	for n := range seen {
		t.p.Free(n)
	}
	t.root = 0
}
