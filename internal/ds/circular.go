package ds

import (
	"heapmd/internal/faults"
	"heapmd/internal/prog"
)

// CircularList is a singly linked circular list; header layout
// [head, tail, len], node layout [value, next]. The tail's next
// pointer always aims at the head, so every node of a healthy
// circular list has indegree >= 1 from within the structure, and the
// head has indegree 2 once the list has more than one node (tail.next
// plus its predecessor's next... precisely: head receives tail.next
// and, if len > 1, nothing else; interior nodes receive exactly one).
//
// The Figure 12 bug frees the head while the tail still points at it:
// under faults.SharedFree, PopFront skips the tail fix-up, leaving a
// dangling tail pointer. In the heap-graph image the freed vertex
// disappears along with the tail's edge, shifting the indegree/
// outdegree balance — the paper reports this via the indegree = 2
// metric leaving its range.
type CircularList struct {
	p    *prog.Process
	hdr  uint64
	name string
}

// NewCircularList allocates the header.
func NewCircularList(p *prog.Process, name string) *CircularList {
	defer p.Enter(name + ".new")()
	return &CircularList{p: p, hdr: p.AllocWords(3), name: name}
}

// Head returns the head node address, or 0.
func (l *CircularList) Head() uint64 { return l.p.LoadField(l.hdr, 0) }

// Tail returns the tail node address, or 0.
func (l *CircularList) Tail() uint64 { return l.p.LoadField(l.hdr, 1) }

// Len returns the stored length.
func (l *CircularList) Len() int { return int(l.p.LoadField(l.hdr, 2)) }

func (l *CircularList) setHead(n uint64) { l.p.StoreField(l.hdr, 0, n) }
func (l *CircularList) setTail(n uint64) { l.p.StoreField(l.hdr, 1, n) }
func (l *CircularList) setLen(n int)     { l.p.StoreField(l.hdr, 2, uint64(n)) }

// Append adds a node at the tail, maintaining circularity.
func (l *CircularList) Append(value uint64) uint64 {
	defer l.p.Enter(l.name + ".append")()
	n := l.p.AllocWords(2)
	l.p.StoreField(n, nodeValue, value)
	h, t := l.Head(), l.Tail()
	if h == 0 {
		l.p.StoreField(n, nodeNext, n) // self-circular singleton
		l.setHead(n)
		l.setTail(n)
	} else {
		l.p.StoreField(n, nodeNext, h)
		l.p.StoreField(t, nodeNext, n)
		l.setTail(n)
	}
	l.setLen(l.Len() + 1)
	return n
}

// PopFront frees the head and advances it — the Figure 12 code shape.
// Correct code repoints tail.next at the new head before freeing;
// under faults.SharedFree that fix-up is skipped and the tail keeps a
// dangling pointer to freed memory.
func (l *CircularList) PopFront() (value uint64, ok bool) {
	defer l.p.Enter(l.name + ".popFront")()
	h := l.Head()
	if h == 0 {
		return 0, false
	}
	value = l.p.LoadField(h, nodeValue)
	if l.Len() == 1 {
		l.p.Free(h)
		l.setHead(0)
		l.setTail(0)
		l.setLen(0)
		return value, true
	}
	newHead := l.p.LoadField(h, nodeNext)
	if !l.p.Hit(faults.SharedFree) {
		l.p.StoreField(l.Tail(), nodeNext, newHead)
	}
	// "The tail of the list now has a dangling pointer" (Figure 12)
	// when the fault fired: we free h regardless.
	l.p.Free(h)
	l.setHead(newHead)
	l.setLen(l.Len() - 1)
	return value, true
}

// Rotate advances the head by one position without freeing anything
// (the common scheduler idiom circular lists exist for).
func (l *CircularList) Rotate() {
	defer l.p.Enter(l.name + ".rotate")()
	h := l.Head()
	if h == 0 || l.Len() == 1 {
		return
	}
	l.setTail(h)
	l.setHead(l.p.LoadField(h, nodeNext))
}

// CheckCircularInvariant verifies that following next pointers from
// the head returns to the head in exactly Len steps and that
// tail.next == head. It reports whether the invariant holds; a
// dangling tail (SharedFree damage) breaks it.
func (l *CircularList) CheckCircularInvariant() bool {
	defer l.p.Enter(l.name + ".checkCircular")()
	h := l.Head()
	if h == 0 {
		return l.Len() == 0
	}
	n := h
	for i := 0; i < l.Len(); i++ {
		n = l.p.LoadField(n, nodeNext)
	}
	return n == h && l.p.LoadField(l.Tail(), nodeNext) == h
}

// FreeAll frees all nodes and the header. The walk is bounded by the
// stored length rather than by circularity, so a fault-damaged list
// (dangling tail pointer after SharedFree) releases exactly its live
// nodes instead of chasing stale pointers into freed memory.
func (l *CircularList) FreeAll() {
	defer l.p.Enter(l.name + ".freeAll")()
	n := l.Head()
	for i := l.Len(); i > 0 && n != 0; i-- {
		next := l.p.LoadField(n, nodeNext)
		l.p.Free(n)
		n = next
	}
	l.p.Free(l.hdr)
	l.hdr = 0
}
