package ds

import (
	"heapmd/internal/faults"
	"heapmd/internal/prog"
)

// HashTable is a chained hash table: header [bucketArray, nbuckets,
// size], bucket array is one heap object of nbuckets words (each the
// head of a chain), chain node layout [key, value, next].
//
// With a sound hash function, chains stay short: most chain nodes are
// roots-with-outdegree<=1 pointed at only by the bucket array, and
// the degree profile of the table is flat. Under faults.BadHash the
// hash collapses to a handful of buckets, producing a few very long
// chains — the paper's "performance bug" (Figure 9), which indirectly
// shifts degree metrics (the percentage of outdegree-1 vertices grows
// with chain length).
type HashTable struct {
	p    *prog.Process
	hdr  uint64
	name string
}

const (
	htBuckets  = 0
	htNBuckets = 1
	htSize     = 2

	hnKey   = 0
	hnValue = 1
	hnNext  = 2
)

// NewHashTable allocates a table with the given bucket count.
func NewHashTable(p *prog.Process, name string, nbuckets int) *HashTable {
	defer p.Enter(name + ".new")()
	if nbuckets < 1 {
		nbuckets = 1
	}
	h := &HashTable{p: p, hdr: p.AllocWords(3), name: name}
	arr := p.AllocWords(nbuckets)
	p.StoreField(h.hdr, htBuckets, arr)
	p.StoreField(h.hdr, htNBuckets, uint64(nbuckets))
	return h
}

// Size returns the number of stored entries.
func (h *HashTable) Size() int { return int(h.p.LoadField(h.hdr, htSize)) }

// NBuckets returns the bucket count.
func (h *HashTable) NBuckets() int { return int(h.p.LoadField(h.hdr, htNBuckets)) }

func (h *HashTable) bucketArray() uint64 { return h.p.LoadField(h.hdr, htBuckets) }

// hash mixes key over the bucket space; under BadHash it degenerates
// to the low two bits, collapsing the table into at most 4 chains.
func (h *HashTable) hash(key uint64) int {
	n := h.NBuckets()
	if h.p.Plan().Enabled(faults.BadHash) {
		return int(key % 4 % uint64(n))
	}
	x := key
	x ^= x >> 33
	x *= 0xFF51AFD7ED558CCD
	x ^= x >> 33
	return int(x % uint64(n))
}

// Put inserts or updates key -> value.
func (h *HashTable) Put(key, value uint64) {
	defer h.p.Enter(h.name + ".put")()
	arr := h.bucketArray()
	b := h.hash(key)
	head := h.p.LoadField(arr, b)
	for n := head; n != 0; n = h.p.LoadField(n, hnNext) {
		if h.p.LoadField(n, hnKey) == key {
			h.p.StoreField(n, hnValue, value)
			return
		}
	}
	n := h.p.AllocWords(3)
	h.p.StoreField(n, hnKey, key)
	h.p.StoreField(n, hnValue, value)
	h.p.StoreField(n, hnNext, head)
	h.p.StoreField(arr, b, n)
	h.p.StoreField(h.hdr, htSize, uint64(h.Size()+1))
}

// Get looks up key; ok is false if absent.
func (h *HashTable) Get(key uint64) (value uint64, ok bool) {
	defer h.p.Enter(h.name + ".get")()
	arr := h.bucketArray()
	for n := h.p.LoadField(arr, h.hash(key)); n != 0; n = h.p.LoadField(n, hnNext) {
		if h.p.LoadField(n, hnKey) == key {
			return h.p.LoadField(n, hnValue), true
		}
	}
	return 0, false
}

// Delete removes key, reporting whether it was present.
func (h *HashTable) Delete(key uint64) bool {
	defer h.p.Enter(h.name + ".delete")()
	arr := h.bucketArray()
	b := h.hash(key)
	var prev uint64
	for n := h.p.LoadField(arr, b); n != 0; n = h.p.LoadField(n, hnNext) {
		if h.p.LoadField(n, hnKey) == key {
			next := h.p.LoadField(n, hnNext)
			if prev == 0 {
				h.p.StoreField(arr, b, next)
			} else {
				h.p.StoreField(prev, hnNext, next)
			}
			h.p.Free(n)
			h.p.StoreField(h.hdr, htSize, uint64(h.Size()-1))
			return true
		}
		prev = n
	}
	return false
}

// MaxChainLen returns the longest chain — the collision diagnostic
// the BadHash experiment reports.
func (h *HashTable) MaxChainLen() int {
	defer h.p.Enter(h.name + ".maxChain")()
	arr := h.bucketArray()
	max := 0
	for b := 0; b < h.NBuckets(); b++ {
		n := h.p.LoadField(arr, b)
		length := 0
		for ; n != 0; n = h.p.LoadField(n, hnNext) {
			length++
		}
		if length > max {
			max = length
		}
	}
	return max
}

// Resize rehashes into a new bucket array of the given size.
func (h *HashTable) Resize(nbuckets int) {
	defer h.p.Enter(h.name + ".resize")()
	if nbuckets < 1 {
		nbuckets = 1
	}
	oldArr := h.bucketArray()
	oldN := h.NBuckets()
	newArr := h.p.AllocWords(nbuckets)
	h.p.StoreField(h.hdr, htBuckets, newArr)
	h.p.StoreField(h.hdr, htNBuckets, uint64(nbuckets))
	for b := 0; b < oldN; b++ {
		n := h.p.LoadField(oldArr, b)
		for n != 0 {
			next := h.p.LoadField(n, hnNext)
			nb := h.hash(h.p.LoadField(n, hnKey))
			h.p.StoreField(n, hnNext, h.p.LoadField(newArr, nb))
			h.p.StoreField(newArr, nb, n)
			n = next
		}
	}
	h.p.Free(oldArr)
}

// FreeAll frees chains, bucket array and header.
func (h *HashTable) FreeAll() {
	defer h.p.Enter(h.name + ".freeAll")()
	arr := h.bucketArray()
	for b := 0; b < h.NBuckets(); b++ {
		n := h.p.LoadField(arr, b)
		for n != 0 {
			next := h.p.LoadField(n, hnNext)
			h.p.Free(n)
			n = next
		}
	}
	h.p.Free(arr)
	h.p.Free(h.hdr)
	h.hdr = 0
}
