package ds

// Oracle-based property tests: each heap data structure is driven by
// random operation sequences mirrored against a plain Go structure,
// and must agree exactly. These catch the class of bookkeeping bug
// the simulator's own fault taxonomy is about — which would otherwise
// contaminate every experiment built on the workloads.

import (
	"testing"
	"testing/quick"

	"heapmd/internal/prog"
)

func TestHashTableMatchesMapOracle(t *testing.T) {
	type op struct {
		Kind byte
		Key  uint16
		Val  uint16
	}
	f := func(ops []op) bool {
		p := prog.NewProcess(prog.Options{Seed: 1})
		h := NewHashTable(p, "t", 16)
		oracle := map[uint64]uint64{}
		for _, o := range ops {
			k, v := uint64(o.Key%128), uint64(o.Val)
			switch o.Kind % 3 {
			case 0:
				h.Put(k, v)
				oracle[k] = v
			case 1:
				got, ok := h.Get(k)
				wantV, wantOK := oracle[k]
				if ok != wantOK || (ok && got != wantV) {
					return false
				}
			case 2:
				deleted := h.Delete(k)
				_, existed := oracle[k]
				if deleted != existed {
					return false
				}
				delete(oracle, k)
			}
		}
		if h.Size() != len(oracle) {
			return false
		}
		for k, v := range oracle {
			if got, ok := h.Get(k); !ok || got != v {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestBTreeMatchesSetOracle(t *testing.T) {
	f := func(keys []uint16) bool {
		p := prog.NewProcess(prog.Options{Seed: 1})
		tr := NewBTree(p, "t")
		oracle := map[uint64]bool{}
		for _, k := range keys {
			tr.Insert(uint64(k))
			oracle[uint64(k)] = true
		}
		if msg := tr.CheckInvariants(); msg != "" {
			return false
		}
		for k := range oracle {
			if !tr.Contains(k) {
				return false
			}
		}
		// Spot-check absences.
		for probe := uint64(1 << 20); probe < 1<<20+16; probe++ {
			if tr.Contains(probe) {
				return false
			}
		}
		return tr.Size() == len(keys)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestBSTMatchesMapOracle(t *testing.T) {
	type op struct {
		Kind byte
		Key  uint16
	}
	f := func(ops []op) bool {
		p := prog.NewProcess(prog.Options{Seed: 1})
		tr := NewBST(p, "t")
		// The BST stores duplicates; restrict the oracle to a set by
		// only inserting unseen keys.
		oracle := map[uint64]bool{}
		for _, o := range ops {
			k := uint64(o.Key % 256)
			switch o.Kind % 3 {
			case 0:
				if !oracle[k] {
					tr.Insert(k)
					oracle[k] = true
				}
			case 1:
				if (tr.Find(k) != 0) != oracle[k] {
					return false
				}
			case 2:
				if tr.Delete(k) != oracle[k] {
					return false
				}
				delete(oracle, k)
			}
			if tr.CheckParentInvariant() != 0 {
				return false
			}
		}
		return tr.Size() == len(oracle)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestDListMatchesSliceOracle(t *testing.T) {
	type op struct {
		Kind byte
		Val  uint16
		Pick uint16
	}
	f := func(ops []op) bool {
		p := prog.NewProcess(prog.Options{Seed: 1})
		l := NewDList(p, "t")
		var oracle []uint64
		nodes := map[uint64]uint64{} // node addr -> value
		var order []uint64           // node addrs in list order
		for _, o := range ops {
			v := uint64(o.Val)
			switch o.Kind % 4 {
			case 0:
				n := l.PushFront(v)
				oracle = append([]uint64{v}, oracle...)
				order = append([]uint64{n}, order...)
				nodes[n] = v
			case 1:
				n := l.PushBack(v)
				oracle = append(oracle, v)
				order = append(order, n)
				nodes[n] = v
			case 2:
				if len(order) == 0 {
					continue
				}
				i := int(o.Pick) % len(order)
				n := order[i]
				m := l.InsertAfter(n, v)
				oracle = append(oracle[:i+1], append([]uint64{v}, oracle[i+1:]...)...)
				order = append(order[:i+1], append([]uint64{m}, order[i+1:]...)...)
				nodes[m] = v
			case 3:
				if len(order) == 0 {
					continue
				}
				i := int(o.Pick) % len(order)
				l.Remove(order[i])
				oracle = append(oracle[:i], oracle[i+1:]...)
				order = append(order[:i], order[i+1:]...)
			}
		}
		if l.Len() != len(oracle) {
			return false
		}
		if l.CheckPrevInvariant() != 0 {
			return false
		}
		var got []uint64
		l.Each(func(_, v uint64) bool {
			got = append(got, v)
			return true
		})
		if len(got) != len(oracle) {
			return false
		}
		for i := range got {
			if got[i] != oracle[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestCircularListMatchesSliceOracle(t *testing.T) {
	type op struct {
		Kind byte
		Val  uint16
	}
	f := func(ops []op) bool {
		p := prog.NewProcess(prog.Options{Seed: 1})
		l := NewCircularList(p, "t")
		var oracle []uint64
		for _, o := range ops {
			switch o.Kind % 3 {
			case 0:
				l.Append(uint64(o.Val))
				oracle = append(oracle, uint64(o.Val))
			case 1:
				v, ok := l.PopFront()
				if ok != (len(oracle) > 0) {
					return false
				}
				if ok {
					if v != oracle[0] {
						return false
					}
					oracle = oracle[1:]
				}
			case 2:
				l.Rotate()
				if len(oracle) > 1 {
					oracle = append(oracle[1:], oracle[0])
				}
			}
			if !l.CheckCircularInvariant() {
				return false
			}
		}
		return l.Len() == len(oracle)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}
