package ds

import "heapmd/internal/prog"

// BTree is a B-tree of minimum degree btDegree (CLRS formulation):
// every node holds at most 2*btDegree-1 keys and 2*btDegree children.
// Node layout: [nkeys, leaf, key_0..key_{2t-2}, child_0..child_{2t-1}].
//
// The paper notes HeapMD "has detected several bugs due to invariant
// violations in more complex data structures such as B-Trees"
// (Section 4.5); the B-tree gives workloads that heterogeneity: its
// nodes are wide (many pointer slots), so B-tree-heavy heaps have a
// very different degree profile from list- or BST-heavy heaps.
type BTree struct {
	p    *prog.Process
	hdr  uint64 // [root, size]
	name string
}

const btDegree = 3 // minimum degree t: max 5 keys, 6 children

const (
	btMaxKeys     = 2*btDegree - 1
	btMaxChildren = 2 * btDegree
	btNKeys       = 0
	btLeaf        = 1
	btKey0        = 2
	btChild0      = btKey0 + btMaxKeys
	btNodeWords   = btChild0 + btMaxChildren
)

// NewBTree allocates an empty tree (a single leaf root).
func NewBTree(p *prog.Process, name string) *BTree {
	defer p.Enter(name + ".new")()
	t := &BTree{p: p, hdr: p.AllocWords(2), name: name}
	root := t.newNode(true)
	p.StoreField(t.hdr, 0, root)
	return t
}

func (t *BTree) newNode(leaf bool) uint64 {
	n := t.p.AllocWords(btNodeWords)
	if leaf {
		t.p.StoreField(n, btLeaf, 1)
	}
	return n
}

// Root returns the root node address.
func (t *BTree) Root() uint64 { return t.p.LoadField(t.hdr, 0) }

// Size returns the number of stored keys.
func (t *BTree) Size() int { return int(t.p.LoadField(t.hdr, 1)) }

func (t *BTree) nkeys(n uint64) int   { return int(t.p.LoadField(n, btNKeys)) }
func (t *BTree) isLeaf(n uint64) bool { return t.p.LoadField(n, btLeaf) != 0 }
func (t *BTree) key(n uint64, i int) uint64 {
	return t.p.LoadField(n, btKey0+i)
}
func (t *BTree) child(n uint64, i int) uint64 {
	return t.p.LoadField(n, btChild0+i)
}
func (t *BTree) setNKeys(n uint64, k int)           { t.p.StoreField(n, btNKeys, uint64(k)) }
func (t *BTree) setKey(n uint64, i int, k uint64)   { t.p.StoreField(n, btKey0+i, k) }
func (t *BTree) setChild(n uint64, i int, c uint64) { t.p.StoreField(n, btChild0+i, c) }

// Contains reports whether key is present.
func (t *BTree) Contains(key uint64) bool {
	defer t.p.Enter(t.name + ".contains")()
	n := t.Root()
	for n != 0 {
		i := 0
		for i < t.nkeys(n) && key > t.key(n, i) {
			i++
		}
		if i < t.nkeys(n) && key == t.key(n, i) {
			return true
		}
		if t.isLeaf(n) {
			return false
		}
		n = t.child(n, i)
	}
	return false
}

// Insert adds key (duplicates are stored).
func (t *BTree) Insert(key uint64) {
	defer t.p.Enter(t.name + ".insert")()
	t.insertNoEnter(key)
}

// InsertMany inserts all keys within one function entry (bulk index
// construction at startup).
func (t *BTree) InsertMany(keys []uint64) {
	defer t.p.Enter(t.name + ".insertMany")()
	for _, k := range keys {
		t.insertNoEnter(k)
	}
}

func (t *BTree) insertNoEnter(key uint64) {
	root := t.Root()
	if t.nkeys(root) == btMaxKeys {
		// Root is full: grow the tree upward.
		newRoot := t.newNode(false)
		t.setChild(newRoot, 0, root)
		t.p.StoreField(t.hdr, 0, newRoot)
		t.splitChild(newRoot, 0)
		root = newRoot
	}
	t.insertNonFull(root, key)
	t.p.StoreField(t.hdr, 1, uint64(t.Size()+1))
}

// splitChild splits the full i-th child of parent.
func (t *BTree) splitChild(parent uint64, i int) {
	full := t.child(parent, i)
	right := t.newNode(t.isLeaf(full))
	// Move the top t-1 keys (and t children) of full into right.
	for j := 0; j < btDegree-1; j++ {
		t.setKey(right, j, t.key(full, j+btDegree))
	}
	if !t.isLeaf(full) {
		for j := 0; j < btDegree; j++ {
			t.setChild(right, j, t.child(full, j+btDegree))
			t.setChild(full, j+btDegree, 0)
		}
	}
	t.setNKeys(right, btDegree-1)
	median := t.key(full, btDegree-1)
	t.setNKeys(full, btDegree-1)
	// Shift parent's children/keys to make room.
	for j := t.nkeys(parent); j > i; j-- {
		t.setChild(parent, j+1, t.child(parent, j))
		t.setKey(parent, j, t.key(parent, j-1))
	}
	t.setChild(parent, i+1, right)
	t.setKey(parent, i, median)
	t.setNKeys(parent, t.nkeys(parent)+1)
}

func (t *BTree) insertNonFull(n uint64, key uint64) {
	for {
		i := t.nkeys(n) - 1
		if t.isLeaf(n) {
			for i >= 0 && key < t.key(n, i) {
				t.setKey(n, i+1, t.key(n, i))
				i--
			}
			t.setKey(n, i+1, key)
			t.setNKeys(n, t.nkeys(n)+1)
			return
		}
		for i >= 0 && key < t.key(n, i) {
			i--
		}
		i++
		if t.nkeys(t.child(n, i)) == btMaxKeys {
			t.splitChild(n, i)
			if key > t.key(n, i) {
				i++
			}
		}
		n = t.child(n, i)
	}
}

// CheckInvariants verifies B-tree structural invariants: key ordering
// within nodes, key-count bounds (root excepted on the lower bound),
// and uniform leaf depth. It returns "" when consistent.
func (t *BTree) CheckInvariants() string {
	defer t.p.Enter(t.name + ".check")()
	root := t.Root()
	leafDepth := -1
	var walk func(n uint64, depth int, min, max uint64) string
	walk = func(n uint64, depth int, min, max uint64) string {
		nk := t.nkeys(n)
		if n != root && (nk < btDegree-1 || nk > btMaxKeys) {
			return "key count out of bounds"
		}
		for i := 0; i < nk; i++ {
			k := t.key(n, i)
			if k < min || k > max {
				return "key outside permitted range"
			}
			if i > 0 && k < t.key(n, i-1) {
				return "keys out of order"
			}
		}
		if t.isLeaf(n) {
			if leafDepth == -1 {
				leafDepth = depth
			} else if leafDepth != depth {
				return "leaves at different depths"
			}
			return ""
		}
		lo := min
		for i := 0; i <= nk; i++ {
			hi := max
			if i < nk {
				hi = t.key(n, i)
			}
			c := t.child(n, i)
			if c == 0 {
				return "missing child"
			}
			if msg := walk(c, depth+1, lo, hi); msg != "" {
				return msg
			}
			if i < nk {
				lo = t.key(n, i)
			}
		}
		return ""
	}
	return walk(root, 0, 0, ^uint64(0))
}

// FreeAll frees every node and the header.
func (t *BTree) FreeAll() {
	defer t.p.Enter(t.name + ".freeAll")()
	var walk func(n uint64)
	walk = func(n uint64) {
		if n == 0 {
			return
		}
		if !t.isLeaf(n) {
			for i := 0; i <= t.nkeys(n); i++ {
				walk(t.child(n, i))
			}
		}
		t.p.Free(n)
	}
	walk(t.Root())
	t.p.Free(t.hdr)
	t.hdr = 0
}
