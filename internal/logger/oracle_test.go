package logger_test

// This file is the end-to-end oracle for the optimization that moved
// the logger from treap address resolution + map-based graph storage
// onto the page-indexed address table, the vertex arena and the inline
// slot/adjacency tables. The reference implementation below rebuilds
// the logger's exact pre-optimization semantics on the old structures
// — intervals.Map for address resolution, absolute-address slot maps,
// per-vertex adjacency maps with brute-force degree counting — and
// both implementations consume identical event streams. Every metric
// value must match bit for bit, every health counter exactly, and the
// detector must derive identical findings: the optimization is a
// storage change, not a semantic one.
//
// It lives in the external test package because it exercises the
// model/detect layers and the workload harness, both of which import
// the logger.

import (
	"math"
	"math/rand"
	"testing"

	"heapmd/internal/detect"
	"heapmd/internal/event"
	"heapmd/internal/health"
	"heapmd/internal/heapgraph"
	"heapmd/internal/intervals"
	"heapmd/internal/logger"
	"heapmd/internal/metrics"
	"heapmd/internal/model"
	"heapmd/internal/workloads"
)

// ---- reference graph: map adjacency, degrees recomputed on demand ----

type refVertex struct {
	out map[heapgraph.VertexID]int
	in  map[heapgraph.VertexID]int
}

type refGraph struct {
	v     map[heapgraph.VertexID]*refVertex
	edges int
}

func newRefGraph() *refGraph { return &refGraph{v: make(map[heapgraph.VertexID]*refVertex)} }

func (g *refGraph) addVertex(id heapgraph.VertexID) {
	if _, ok := g.v[id]; !ok {
		g.v[id] = &refVertex{out: make(map[heapgraph.VertexID]int), in: make(map[heapgraph.VertexID]int)}
	}
}

func (g *refGraph) removeVertex(id heapgraph.VertexID) {
	vx, ok := g.v[id]
	if !ok {
		return
	}
	for succ, mult := range vx.out {
		g.edges -= mult
		if succ != id {
			delete(g.v[succ].in, id)
		}
	}
	for pred, mult := range vx.in {
		if pred == id {
			continue
		}
		g.edges -= mult
		delete(g.v[pred].out, id)
	}
	delete(g.v, id)
}

func (g *refGraph) addEdge(u, v heapgraph.VertexID) bool {
	ux, ok := g.v[u]
	if !ok {
		return false
	}
	vx, ok := g.v[v]
	if !ok {
		return false
	}
	ux.out[v]++
	vx.in[u]++
	g.edges++
	return true
}

func (g *refGraph) removeEdge(u, v heapgraph.VertexID) bool {
	ux, ok := g.v[u]
	if !ok || ux.out[v] == 0 {
		return false
	}
	ux.out[v]--
	if ux.out[v] == 0 {
		delete(ux.out, v)
	}
	vx := g.v[v]
	vx.in[u]--
	if vx.in[u] == 0 {
		delete(vx.in, u)
	}
	g.edges--
	return true
}

func (vx *refVertex) degrees() (in, out int) {
	for _, m := range vx.in {
		in += m
	}
	for _, m := range vx.out {
		out += m
	}
	return in, out
}

// wccCount counts weakly connected components by BFS.
func (g *refGraph) wccCount() int {
	seen := make(map[heapgraph.VertexID]bool, len(g.v))
	count := 0
	var queue []heapgraph.VertexID
	for root := range g.v {
		if seen[root] {
			continue
		}
		count++
		queue = append(queue[:0], root)
		seen[root] = true
		for len(queue) > 0 {
			id := queue[len(queue)-1]
			queue = queue[:len(queue)-1]
			vx := g.v[id]
			for s := range vx.out {
				if !seen[s] {
					seen[s] = true
					queue = append(queue, s)
				}
			}
			for p := range vx.in {
				if !seen[p] {
					seen[p] = true
					queue = append(queue, p)
				}
			}
		}
	}
	return count
}

// sccCount counts strongly connected components (iterative Tarjan).
// Map iteration order varies run to run, but the number of SCCs is a
// graph property, independent of visit order.
func (g *refGraph) sccCount() int {
	index := make(map[heapgraph.VertexID]int, len(g.v))
	lowlink := make(map[heapgraph.VertexID]int, len(g.v))
	onStack := make(map[heapgraph.VertexID]bool, len(g.v))
	var sccStack []heapgraph.VertexID
	next, count := 1, 0

	type frame struct {
		v     heapgraph.VertexID
		succs []heapgraph.VertexID
		pos   int
	}
	succsOf := func(id heapgraph.VertexID) []heapgraph.VertexID {
		vx := g.v[id]
		out := make([]heapgraph.VertexID, 0, len(vx.out))
		for s := range vx.out {
			out = append(out, s)
		}
		return out
	}
	for root := range g.v {
		if index[root] != 0 {
			continue
		}
		stack := []frame{{v: root, succs: succsOf(root)}}
		index[root], lowlink[root] = next, next
		next++
		sccStack = append(sccStack, root)
		onStack[root] = true
		for len(stack) > 0 {
			f := &stack[len(stack)-1]
			if f.pos < len(f.succs) {
				w := f.succs[f.pos]
				f.pos++
				if index[w] == 0 {
					index[w], lowlink[w] = next, next
					next++
					sccStack = append(sccStack, w)
					onStack[w] = true
					stack = append(stack, frame{v: w, succs: succsOf(w)})
				} else if onStack[w] && index[w] < lowlink[f.v] {
					lowlink[f.v] = index[w]
				}
				continue
			}
			v := f.v
			stack = stack[:len(stack)-1]
			if len(stack) > 0 {
				parent := stack[len(stack)-1].v
				if lowlink[v] < lowlink[parent] {
					lowlink[parent] = lowlink[v]
				}
			}
			if lowlink[v] == index[v] {
				for {
					w := sccStack[len(sccStack)-1]
					sccStack = sccStack[:len(sccStack)-1]
					onStack[w] = false
					if w == v {
						break
					}
				}
				count++
			}
		}
	}
	return count
}

// ---- reference logger: the pre-optimization event semantics ----

type refObj struct {
	vertex       heapgraph.VertexID
	base, size   uint64
	slots        map[uint64]heapgraph.VertexID // keyed by absolute address
	wordVertices []heapgraph.VertexID
}

type refLogger struct {
	field     bool
	frequency uint64
	suite     metrics.Suite

	graph   *refGraph
	objects *intervals.Map[*refObj]

	vertexSeq uint64
	fnEntries uint64
	events    uint64
	tick      uint64

	freed  map[uint64]struct{}
	health health.Counters
	snaps  []metrics.Snapshot
}

func newRefLogger(suite metrics.Suite, frequency uint64, field bool) *refLogger {
	return &refLogger{
		field:     field,
		frequency: frequency,
		suite:     suite,
		graph:     newRefGraph(),
		objects:   intervals.New[*refObj](),
		freed:     make(map[uint64]struct{}),
	}
}

func (l *refLogger) newVertex() heapgraph.VertexID {
	l.vertexSeq++
	return heapgraph.VertexID(l.vertexSeq)
}

func (l *refLogger) Emit(e event.Event) {
	l.events++
	switch e.Type {
	case event.Alloc:
		l.onAlloc(e.Addr, e.Size)
	case event.Free:
		l.onFree(e.Addr)
	case event.Realloc:
		l.onRealloc(e.Addr, e.Value, e.Size)
	case event.Store:
		l.onStore(e.Addr, e.Value)
	case event.Load:
	case event.Enter:
		l.fnEntries++
		if l.fnEntries%l.frequency == 0 {
			l.sample()
		}
	case event.Leave:
	default:
		l.health.UnknownEvents++
	}
}

func (l *refLogger) onAlloc(base, size uint64) {
	info := &refObj{base: base, size: size, slots: make(map[uint64]heapgraph.VertexID)}
	if l.field {
		info.wordVertices = make([]heapgraph.VertexID, size/8)
		for i := range info.wordVertices {
			v := l.newVertex()
			info.wordVertices[i] = v
			l.graph.addVertex(v)
		}
	} else {
		info.vertex = l.newVertex()
		l.graph.addVertex(info.vertex)
	}
	l.objects.Insert(base, size, info)
	delete(l.freed, base)
}

func (l *refLogger) onFree(base uint64) {
	info, ok := l.objects.Get(base)
	if !ok {
		if _, was := l.freed[base]; was {
			l.health.DoubleFrees++
		} else {
			l.health.WildFrees++
		}
		return
	}
	l.freed[base] = struct{}{}
	l.objects.Remove(base)
	if info.wordVertices != nil {
		for _, v := range info.wordVertices {
			l.graph.removeVertex(v)
		}
	} else {
		l.graph.removeVertex(info.vertex)
	}
}

func (l *refLogger) onRealloc(oldBase, newBase, newSize uint64) {
	info, ok := l.objects.Get(oldBase)
	if !ok {
		l.health.BadReallocs++
		return
	}
	l.objects.Remove(oldBase)
	if newBase != oldBase {
		l.freed[oldBase] = struct{}{}
	}
	delete(l.freed, newBase)
	if info.wordVertices != nil {
		oldWords := uint64(len(info.wordVertices))
		newWords := newSize / 8
		for i := newWords; i < oldWords; i++ {
			l.graph.removeVertex(info.wordVertices[i])
		}
		wv := make([]heapgraph.VertexID, newWords)
		copy(wv, info.wordVertices[:min(oldWords, newWords)])
		for i := oldWords; i < newWords; i++ {
			v := l.newVertex()
			wv[i] = v
			l.graph.addVertex(v)
		}
		// Slots whose source word vertex survives are rekeyed to the
		// new base; the rest died with their vertices.
		newSlots := make(map[uint64]heapgraph.VertexID, len(info.slots))
		for addr, target := range info.slots {
			if off := addr - oldBase; off/8 < newWords {
				newSlots[newBase+off] = target
			}
		}
		info.base, info.size, info.slots, info.wordVertices = newBase, newSize, newSlots, wv
		l.objects.Insert(newBase, newSize, info)
		return
	}
	newSlots := make(map[uint64]heapgraph.VertexID, len(info.slots))
	for addr, target := range info.slots {
		off := addr - oldBase
		if off >= newSize {
			l.graph.removeEdge(info.vertex, target)
			continue
		}
		newSlots[newBase+off] = target
	}
	info.base, info.size, info.slots = newBase, newSize, newSlots
	l.objects.Insert(newBase, newSize, info)
}

func (l *refLogger) sourceVertex(info *refObj, addr uint64) (heapgraph.VertexID, bool) {
	if info.wordVertices != nil {
		if i := (addr - info.base) / 8; i < uint64(len(info.wordVertices)) {
			return info.wordVertices[i], true
		}
		return 0, false
	}
	return info.vertex, true
}

func (l *refLogger) targetVertex(value uint64) (heapgraph.VertexID, bool) {
	base, _, info, ok := l.objects.Stab(value)
	if !ok {
		return 0, false
	}
	if info.wordVertices != nil {
		if i := (value - base) / 8; i < uint64(len(info.wordVertices)) {
			return info.wordVertices[i], true
		}
		return 0, false
	}
	return info.vertex, true
}

func (l *refLogger) onStore(addr, value uint64) {
	_, _, info, ok := l.objects.Stab(addr)
	if !ok {
		l.health.WildStores++
		return
	}
	src, srcOK := l.sourceVertex(info, addr)
	if !srcOK {
		l.health.WildStores++
		return
	}
	if oldTarget, had := info.slots[addr]; had {
		l.graph.removeEdge(src, oldTarget)
		delete(info.slots, addr)
	}
	if target, isPtr := l.targetVertex(value); isPtr {
		l.graph.addEdge(src, target)
		info.slots[addr] = target
	}
}

// sample recomputes every metric by brute force, using the same
// floating-point expression the suite does, so an agreeing count
// yields the identical bit pattern.
func (l *refLogger) sample() {
	l.tick++
	n := len(l.graph.v)
	snap := metrics.Snapshot{
		Tick:     l.tick,
		Vertices: n,
		Edges:    l.graph.edges,
		Values:   make([]float64, l.suite.Len()),
	}
	if n == 0 {
		l.snaps = append(l.snaps, snap)
		return
	}
	var in0, in1, in2, out0, out1, out2, eq int
	for _, vx := range l.graph.v {
		in, out := vx.degrees()
		switch in {
		case 0:
			in0++
		case 1:
			in1++
		case 2:
			in2++
		}
		switch out {
		case 0:
			out0++
		case 1:
			out1++
		case 2:
			out2++
		}
		if in == out {
			eq++
		}
	}
	pct := func(count int) float64 { return float64(count) / float64(n) * 100 }
	for i, id := range l.suite.IDs() {
		switch id {
		case metrics.Roots:
			snap.Values[i] = pct(in0)
		case metrics.InDeg1:
			snap.Values[i] = pct(in1)
		case metrics.InDeg2:
			snap.Values[i] = pct(in2)
		case metrics.Leaves:
			snap.Values[i] = pct(out0)
		case metrics.OutDeg1:
			snap.Values[i] = pct(out1)
		case metrics.OutDeg2:
			snap.Values[i] = pct(out2)
		case metrics.InEqOut:
			snap.Values[i] = pct(eq)
		case metrics.Components:
			snap.Values[i] = float64(l.graph.wccCount()) / float64(n) * 100
		case metrics.SCCs:
			snap.Values[i] = float64(l.graph.sccCount()) / float64(n) * 100
		}
	}
	l.snaps = append(l.snaps, snap)
}

func (l *refLogger) report(program, input string, version int) *logger.Report {
	names := make([]string, l.suite.Len())
	for i, id := range l.suite.IDs() {
		names[i] = id.String()
	}
	return &logger.Report{
		Program:   program,
		Input:     input,
		Version:   version,
		Suite:     names,
		Snapshots: l.snaps,
		FnEntries: l.fnEntries,
		Events:    l.events,
		Health:    l.health,
	}
}

// ---- deterministic event-stream generator ----

// genCfg sizes a generated stream. bigOdds is the 1-in-N chance that
// an allocation lands in the large-object region; bigPagesMax bounds
// its page count. Field-granularity runs use small values for both:
// every word of a large object is a vertex there, and the reference
// implementation rescans all of them at every sample.
type genCfg struct {
	nOps        int
	bigOdds     int
	bigPagesMax int
}

// genEvents produces a deterministic mixed workload: allocation and
// free churn with address recycling, reallocs (moving, resizing and
// invalid), pointer stores (interior targets, overwrites, self-loops,
// misses), wild operations of every flavour, unknown event types and
// enough function entries to sample steadily. All sizes and store
// offsets are word multiples, matching what real instrumentation of a
// word-aligned allocator emits.
func genEvents(seed int64, cfg genCfg) []event.Event {
	nOps := cfg.nOps
	rng := rand.New(rand.NewSource(seed))
	const (
		cellPitch = 1024 // small-object region: one object per KiB cell
		smallBase = 0x100_0000_0000
		bigPitch  = 1 << 20 // large-object region: page-spanning objects
		bigBase   = 0x200_0000_0000
		wildBase  = 0x300_0000_0000 // never allocated
	)
	var evs []event.Event
	var live []uint64 // bases
	size := make(map[uint64]uint64)
	nextSmall, nextBig := uint64(0), uint64(0)
	var freeSmall, freeBig []uint64 // recyclable cells

	alignedSize := func(big bool) uint64 {
		if big {
			return uint64(rng.Intn(cfg.bigPagesMax)+1) * 4096 // page-spanning
		}
		return uint64(rng.Intn(64)+1) * 8 // 8..512 bytes
	}
	newBase := func(big bool) uint64 {
		if big {
			if len(freeBig) > 0 && rng.Intn(2) == 0 {
				b := freeBig[len(freeBig)-1]
				freeBig = freeBig[:len(freeBig)-1]
				return b
			}
			nextBig++
			return bigBase + (nextBig-1)*bigPitch
		}
		if len(freeSmall) > 0 && rng.Intn(2) == 0 {
			b := freeSmall[len(freeSmall)-1]
			freeSmall = freeSmall[:len(freeSmall)-1]
			return b
		}
		nextSmall++
		return smallBase + (nextSmall-1)*cellPitch
	}
	recycle := func(b uint64) {
		if b >= bigBase {
			freeBig = append(freeBig, b)
		} else {
			freeSmall = append(freeSmall, b)
		}
	}
	pickLive := func() int { return rng.Intn(len(live)) }

	for op := 0; op < nOps; op++ {
		switch r := rng.Intn(100); {
		case r < 22: // alloc
			big := rng.Intn(cfg.bigOdds) == 0
			b := newBase(big)
			s := alignedSize(big)
			evs = append(evs, event.Event{Type: event.Alloc, Addr: b, Size: s, Fn: 1})
			live = append(live, b)
			size[b] = s
		case r < 34: // free
			switch {
			case len(live) > 0 && rng.Intn(10) != 0:
				i := pickLive()
				b := live[i]
				live[i] = live[len(live)-1]
				live = live[:len(live)-1]
				evs = append(evs, event.Event{Type: event.Free, Addr: b, Size: size[b]})
				delete(size, b)
				recycle(b)
			case rng.Intn(2) == 0: // double free of a retired cell
				if len(freeSmall) > 0 {
					evs = append(evs, event.Event{Type: event.Free, Addr: freeSmall[rng.Intn(len(freeSmall))]})
				}
			default: // wild free
				evs = append(evs, event.Event{Type: event.Free, Addr: wildBase + uint64(rng.Intn(1<<20))*8})
			}
		case r < 42: // realloc
			if len(live) == 0 || rng.Intn(12) == 0 {
				// Bad realloc: never-allocated base.
				evs = append(evs, event.Event{Type: event.Realloc, Addr: wildBase + 64, Value: wildBase + 64, Size: 128})
				continue
			}
			i := pickLive()
			oldB := live[i]
			big := oldB >= bigBase
			newS := alignedSize(big)
			newB := oldB
			if rng.Intn(2) == 0 { // move
				newB = newBase(big)
			}
			evs = append(evs, event.Event{Type: event.Realloc, Addr: oldB, Value: newB, Size: newS})
			if newB != oldB {
				live[i] = newB
				delete(size, oldB)
				recycle(oldB)
			}
			size[newB] = newS
		case r < 75: // store
			if len(live) == 0 {
				continue
			}
			src := live[pickLive()]
			off := uint64(rng.Intn(int(size[src]/8))) * 8
			var val uint64
			switch rng.Intn(10) {
			case 0, 1, 2, 3, 4, 5: // pointer into a live object (maybe interior, maybe unaligned)
				dst := live[pickLive()]
				val = dst + uint64(rng.Intn(int(size[dst])))
			case 6: // one past the end: not a pointer
				dst := live[pickLive()]
				val = dst + size[dst]
			case 7: // self-loop
				val = src
			default: // plain integer
				val = uint64(rng.Intn(1 << 20))
			}
			evs = append(evs, event.Event{Type: event.Store, Addr: src + off, Value: val})
		case r < 78: // wild store
			evs = append(evs, event.Event{Type: event.Store, Addr: wildBase + uint64(rng.Intn(1<<20))*8, Value: 7})
		case r < 80: // load (no graph effect)
			evs = append(evs, event.Event{Type: event.Load, Addr: smallBase, Value: 0})
		case r < 81: // unknown type byte
			evs = append(evs, event.Event{Type: event.Type(200)})
		case r < 93: // enter (metric computation points)
			evs = append(evs, event.Event{Type: event.Enter, Fn: event.FnID(rng.Intn(8) + 1)})
		default:
			evs = append(evs, event.Event{Type: event.Leave})
		}
	}
	return evs
}

// replayBoth drives one event stream through the production logger and
// the reference and returns both reports.
func replayBoth(evs []event.Event, gran logger.Granularity) (*logger.Report, *logger.Report) {
	const freq = 4
	suite := metrics.ExtendedSuite()
	l := logger.New(logger.Options{Suite: suite, Frequency: freq, Granularity: gran})
	l.SetRun("oracle", "gen", 1)
	ref := newRefLogger(suite, freq, gran == logger.FieldGranularity)
	for _, e := range evs {
		l.Emit(e)
		ref.Emit(e)
	}
	return l.Report(), ref.report("oracle", "gen", 1)
}

func diffReports(t *testing.T, got, want *logger.Report) {
	t.Helper()
	if len(got.Suite) != len(want.Suite) {
		t.Fatalf("suite length %d, want %d", len(got.Suite), len(want.Suite))
	}
	for i := range want.Suite {
		if got.Suite[i] != want.Suite[i] {
			t.Fatalf("suite[%d] = %q, want %q", i, got.Suite[i], want.Suite[i])
		}
	}
	if got.FnEntries != want.FnEntries || got.Events != want.Events {
		t.Fatalf("fnEntries/events = %d/%d, want %d/%d", got.FnEntries, got.Events, want.FnEntries, want.Events)
	}
	if got.Health != want.Health {
		t.Fatalf("health counters = %+v, want %+v", got.Health, want.Health)
	}
	if len(got.Snapshots) != len(want.Snapshots) {
		t.Fatalf("%d snapshots, want %d", len(got.Snapshots), len(want.Snapshots))
	}
	for i := range want.Snapshots {
		g, w := got.Snapshots[i], want.Snapshots[i]
		if g.Tick != w.Tick || g.Vertices != w.Vertices || g.Edges != w.Edges {
			t.Fatalf("snapshot %d header (tick=%d V=%d E=%d), want (tick=%d V=%d E=%d)",
				i, g.Tick, g.Vertices, g.Edges, w.Tick, w.Vertices, w.Edges)
		}
		if len(g.Values) != len(w.Values) {
			t.Fatalf("snapshot %d has %d values, want %d", i, len(g.Values), len(w.Values))
		}
		for j := range w.Values {
			if math.Float64bits(g.Values[j]) != math.Float64bits(w.Values[j]) {
				t.Fatalf("snapshot %d metric %q = %v (bits %x), want %v (bits %x)",
					i, want.Suite[j], g.Values[j], math.Float64bits(g.Values[j]),
					w.Values[j], math.Float64bits(w.Values[j]))
			}
		}
	}
}

// TestOracleObjectGranularity: the new storage stack must reproduce
// the reference report bit for bit at object granularity.
func TestOracleObjectGranularity(t *testing.T) {
	for seed := int64(1); seed <= 4; seed++ {
		stream := genEvents(seed, genCfg{nOps: 30000, bigOdds: 10, bigPagesMax: 20})
		got, want := replayBoth(stream, logger.ObjectGranularity)
		diffReports(t, got, want)
		h := got.Health
		if h.WildStores+h.DoubleFrees+h.WildFrees+h.BadReallocs+h.UnknownEvents == 0 {
			t.Fatalf("seed %d: generator produced no anomalous events; oracle lost coverage", seed)
		}
	}
}

// TestOracleFieldGranularity: same, with every word its own vertex.
func TestOracleFieldGranularity(t *testing.T) {
	for seed := int64(10); seed <= 11; seed++ {
		stream := genEvents(seed, genCfg{nOps: 5000, bigOdds: 60, bigPagesMax: 1})
		got, want := replayBoth(stream, logger.FieldGranularity)
		diffReports(t, got, want)
	}
}

// TestOracleWorkloadStream replays an event stream recorded from a
// real workload run — not the synthetic generator — through both
// implementations. Workload allocations are not all word multiples,
// which the synthetic streams are, so this also covers odd-size
// objects at object granularity.
func TestOracleWorkloadStream(t *testing.T) {
	ran := 0
	for _, w := range workloads.All() {
		if w.Name() != "webapp" && w.Name() != "mcf" {
			continue
		}
		ran++
		rec := &recorder{}
		in := w.Inputs(1)[0]
		if _, _, err := workloads.RunLogged(w, in, workloads.RunConfig{
			ExtraSinks: []event.Sink{rec},
		}); err != nil {
			t.Fatalf("%s: %v", w.Name(), err)
		}
		if len(rec.evs) == 0 {
			t.Fatalf("%s: recorded no events", w.Name())
		}
		got, want := replayBoth(rec.evs, logger.ObjectGranularity)
		diffReports(t, got, want)
	}
	if ran == 0 {
		t.Fatal("no workloads matched")
	}
}

type recorder struct{ evs []event.Event }

func (r *recorder) Emit(e event.Event) { r.evs = append(r.evs, e) }

// TestOracleFindings: a model trained on reference reports must judge
// the production report exactly as it judges the reference report —
// same findings, same metrics, same kinds.
func TestOracleFindings(t *testing.T) {
	var trainGot, trainWant []*logger.Report
	for seed := int64(20); seed <= 25; seed++ {
		stream := genEvents(seed, genCfg{nOps: 20000, bigOdds: 10, bigPagesMax: 20})
		g, w := replayBoth(stream, logger.ObjectGranularity)
		trainGot = append(trainGot, g)
		trainWant = append(trainWant, w)
	}
	built, err := model.Build(trainWant[:5], model.Defaults())
	if err != nil {
		t.Fatal(err)
	}
	fGot := detect.CheckReport(built.Model, trainGot[5], detect.Options{})
	fWant := detect.CheckReport(built.Model, trainWant[5], detect.Options{})
	if len(fGot) != len(fWant) {
		t.Fatalf("%d findings, reference %d", len(fGot), len(fWant))
	}
	for i := range fWant {
		if fGot[i].Kind != fWant[i].Kind || fGot[i].Metric != fWant[i].Metric {
			t.Fatalf("finding %d = (%v,%q), reference (%v,%q)",
				i, fGot[i].Kind, fGot[i].Metric, fWant[i].Kind, fWant[i].Metric)
		}
	}
}
