package logger_test

// Equivalence oracle and stress coverage for the pipeline-parallel
// ingest stage (logger.Ingest). The contract under test is absolute:
// the speculative pre-resolvers must be unobservable in every Report —
// bit-identical metric values, identical health counters — at every
// worker count, batch size, and stream shape, including the anomalous
// streams (wild ops, overlapping allocations) where speculation must
// know to give up. The serial logger itself is the reference; the
// oracle in oracle_test.go ties that reference to the pre-optimization
// semantics.

import (
	"runtime"
	"sync"
	"testing"
	"time"

	"heapmd/internal/event"
	"heapmd/internal/logger"
	"heapmd/internal/metrics"
	"heapmd/internal/workloads"
)

// ingestWorkerCounts is the worker matrix: the smallest pipeline (one
// resolver) and a host-sized pool (at least 4 so multiple resolvers
// race for batches even on small CI boxes).
func ingestWorkerCounts() []int {
	wmax := runtime.GOMAXPROCS(0)
	if wmax < 4 {
		wmax = 4
	}
	return []int{2, wmax}
}

func replaySerialLogger(evs []event.Event, gran logger.Granularity) *logger.Report {
	const freq = 4
	l := logger.New(logger.Options{Suite: metrics.ExtendedSuite(), Frequency: freq, Granularity: gran})
	l.SetRun("ingest", "gen", 1)
	for _, e := range evs {
		l.Emit(e)
	}
	return l.Report()
}

// replayIngest drives the stream through an Ingest stage, feeding it
// in deliberately uneven chunks so EmitBatch's copy/split across
// pipeline batch boundaries is exercised along with the speculation.
func replayIngest(evs []event.Event, gran logger.Granularity, opts logger.IngestOptions) (*logger.Report, logger.IngestStats) {
	const freq = 4
	l := logger.New(logger.Options{Suite: metrics.ExtendedSuite(), Frequency: freq, Granularity: gran})
	l.SetRun("ingest", "gen", 1)
	ing := logger.NewIngest(l, opts)
	for i := 0; i < len(evs); {
		n := 1 + (i*7919)%97
		if i+n > len(evs) {
			n = len(evs) - i
		}
		ing.EmitBatch(evs[i : i+n])
		i += n
	}
	ing.Close()
	return l.Report(), ing.Stats()
}

func countStores(evs []event.Event) uint64 {
	var n uint64
	for i := range evs {
		if evs[i].Type == event.Store {
			n++
		}
	}
	return n
}

// TestIngestEquivalence: synthetic mixed streams — churn, reallocs,
// wild everything — replayed serially and through the pipeline at
// every worker count and at a pathological batch size must produce
// bit-identical reports, and every store must be accounted as exactly
// one hit or one fallback.
func TestIngestEquivalence(t *testing.T) {
	for seed := int64(1); seed <= 3; seed++ {
		stream := genEvents(seed, genCfg{nOps: 20000, bigOdds: 10, bigPagesMax: 20})
		want := replaySerialLogger(stream, logger.ObjectGranularity)
		stores := countStores(stream)
		for _, workers := range ingestWorkerCounts() {
			for _, batch := range []int{0, 7} {
				got, st := replayIngest(stream, logger.ObjectGranularity,
					logger.IngestOptions{Workers: workers, BatchSize: batch})
				diffReports(t, got, want)
				if st.SpeculationHits+st.SpeculationFallbacks != stores {
					t.Fatalf("seed %d workers %d batch %d: hits %d + fallbacks %d != %d stores",
						seed, workers, batch, st.SpeculationHits, st.SpeculationFallbacks, stores)
				}
			}
		}
		h := want.Health
		if h.WildStores+h.DoubleFrees+h.WildFrees+h.BadReallocs+h.UnknownEvents == 0 {
			t.Fatalf("seed %d: generator produced no anomalous events; oracle lost coverage", seed)
		}
	}
}

// TestIngestEquivalenceFieldGranularity: same contract with every word
// its own vertex — the granularity-dependent part of a store (word
// vertex selection, bounds) happens mutator-side, so speculation must
// be equally invisible here.
func TestIngestEquivalenceFieldGranularity(t *testing.T) {
	for seed := int64(10); seed <= 11; seed++ {
		stream := genEvents(seed, genCfg{nOps: 5000, bigOdds: 60, bigPagesMax: 1})
		want := replaySerialLogger(stream, logger.FieldGranularity)
		for _, workers := range ingestWorkerCounts() {
			got, _ := replayIngest(stream, logger.FieldGranularity,
				logger.IngestOptions{Workers: workers})
			diffReports(t, got, want)
		}
	}
}

// TestIngestEquivalenceWorkloads replays the event stream of every
// workload in the catalog through the pipeline. Workload allocations
// are not all word multiples and their phase structure (build, churn,
// leak, ...) is nothing like the synthetic generator's, so this is the
// closest stand-in for production streams.
func TestIngestEquivalenceWorkloads(t *testing.T) {
	all := workloads.All()
	if testing.Short() {
		all = all[:3]
	}
	for _, w := range all {
		rec := &recorder{}
		in := w.Inputs(1)[0]
		if _, _, err := workloads.RunLogged(w, in, workloads.RunConfig{
			ExtraSinks: []event.Sink{rec},
		}); err != nil {
			t.Fatalf("%s: %v", w.Name(), err)
		}
		if len(rec.evs) == 0 {
			t.Fatalf("%s: recorded no events", w.Name())
		}
		want := replaySerialLogger(rec.evs, logger.ObjectGranularity)
		for _, workers := range ingestWorkerCounts() {
			got, _ := replayIngest(rec.evs, logger.ObjectGranularity,
				logger.IngestOptions{Workers: workers})
			diffReports(t, got, want)
		}
	}
}

// TestIngestOverlapForcesFallback: overlapping live allocations — the
// corrupt-trace shape whose stab answers depend on serial cache
// history — must permanently disable speculation (sticky flag) while
// the report stays identical to the serial replay.
func TestIngestOverlapForcesFallback(t *testing.T) {
	const base = uint64(0x100_0000_0000)
	evs := []event.Event{
		{Type: event.Alloc, Addr: base, Size: 256, Fn: 1},
		{Type: event.Alloc, Addr: base + 64, Size: 64, Fn: 1}, // overlaps the first
	}
	for i := 0; i < 2000; i++ {
		evs = append(evs,
			event.Event{Type: event.Store, Addr: base + uint64(i%12)*8, Value: base + 64},
			event.Event{Type: event.Enter, Fn: 1},
		)
	}
	want := replaySerialLogger(evs, logger.ObjectGranularity)
	for _, workers := range ingestWorkerCounts() {
		got, st := replayIngest(evs, logger.ObjectGranularity,
			logger.IngestOptions{Workers: workers})
		diffReports(t, got, want)
		if st.SpeculationHits != 0 {
			t.Fatalf("workers %d: %d speculation hits on an overlapped table; the sticky flag must reject all",
				workers, st.SpeculationHits)
		}
		if st.SpeculationFallbacks != countStores(evs) {
			t.Fatalf("workers %d: %d fallbacks, want %d (every store)",
				workers, st.SpeculationFallbacks, countStores(evs))
		}
	}
}

// ingestStoreHeavyStream builds the pipeline's best case: a settled
// object population followed by a long pointer-store phase with no
// table mutation at all.
func ingestStoreHeavyStream(objects, stores int) []event.Event {
	const base = uint64(0x100_0000_0000)
	evs := make([]event.Event, 0, objects+stores)
	addr := func(i int) uint64 { return base + uint64(i)*1024 }
	for i := 0; i < objects; i++ {
		evs = append(evs, event.Event{Type: event.Alloc, Addr: addr(i), Size: 512, Fn: 1})
	}
	for i := 0; i < stores; i++ {
		src := addr((i * 17) % objects)
		dst := addr((i*31 + 7) % objects)
		evs = append(evs, event.Event{Type: event.Store, Addr: src + uint64(i%64)*8, Value: dst})
	}
	return evs
}

// TestIngestSpeculationStoreHeavy: once the table settles, the
// generation freezes and every pre-resolution stays valid no matter
// how far the resolvers run ahead — the overwhelming majority of
// stores must be speculation hits, bounded below by the batches that
// can be in flight while the allocation phase is still being applied.
func TestIngestSpeculationStoreHeavy(t *testing.T) {
	const stores = 100000
	evs := ingestStoreHeavyStream(1024, stores)
	want := replaySerialLogger(evs, logger.ObjectGranularity)
	got, st := replayIngest(evs, logger.ObjectGranularity, logger.IngestOptions{Workers: 4})
	diffReports(t, got, want)
	if st.SpeculationHits+st.SpeculationFallbacks != stores {
		t.Fatalf("hits %d + fallbacks %d != %d stores", st.SpeculationHits, st.SpeculationFallbacks, stores)
	}
	if st.SpeculationHits < stores/2 {
		t.Errorf("only %d/%d stores were speculation hits on a store-only phase (fallbacks %d, pre-resolve stalls %d)",
			st.SpeculationHits, stores, st.SpeculationFallbacks, st.PreResolveStalls)
	}
	t.Logf("store-only phase: %d/%d hits (%.1f%%), %d fallbacks, %d pre-resolve stalls, %d mutator stalls",
		st.SpeculationHits, stores, float64(st.SpeculationHits)/float64(stores)*100,
		st.SpeculationFallbacks, st.PreResolveStalls, st.MutatorStalls)
}

// TestIngestRevalidationUnderChurn: stores between long-lived objects
// while short-lived allocations churn the generation. Nearly every
// stamp is stale by apply time, so accepted speculations must come
// from containment revalidation — the majority case for real
// workloads, where most stores touch objects that outlive the
// pipeline's lead.
func TestIngestRevalidationUnderChurn(t *testing.T) {
	const (
		base    = uint64(0x100_0000_0000)
		tmpBase = uint64(0x200_0000_0000)
		stable  = 512
		rounds  = 20000
	)
	addr := func(i int) uint64 { return base + uint64(i)*1024 }
	evs := make([]event.Event, 0, stable+6*rounds)
	for i := 0; i < stable; i++ {
		evs = append(evs, event.Event{Type: event.Alloc, Addr: addr(i), Size: 512, Fn: 1})
	}
	var stores uint64
	for r := 0; r < rounds; r++ {
		tmp := tmpBase + uint64(r)*1024
		evs = append(evs, event.Event{Type: event.Alloc, Addr: tmp, Size: 64, Fn: 1})
		for j := 0; j < 4; j++ {
			src := addr((r*4 + j) % stable)
			dst := addr((r*13 + j*5) % stable)
			evs = append(evs, event.Event{Type: event.Store, Addr: src + uint64(j)*8, Value: dst})
			stores++
		}
		evs = append(evs, event.Event{Type: event.Free, Addr: tmp})
	}
	want := replaySerialLogger(evs, logger.ObjectGranularity)
	got, st := replayIngest(evs, logger.ObjectGranularity, logger.IngestOptions{Workers: 4})
	diffReports(t, got, want)
	if st.SpeculationHits+st.SpeculationFallbacks != stores {
		t.Fatalf("hits %d + fallbacks %d != %d stores", st.SpeculationHits, st.SpeculationFallbacks, stores)
	}
	if st.SpeculationHits <= st.SpeculationFallbacks {
		t.Errorf("churn defeated revalidation: %d hits vs %d fallbacks over %d stores (pre-resolve stalls %d)",
			st.SpeculationHits, st.SpeculationFallbacks, stores, st.PreResolveStalls)
	}
	t.Logf("churn phase: %d/%d hits (%.1f%%), %d fallbacks, %d pre-resolve stalls",
		st.SpeculationHits, stores, float64(st.SpeculationHits)/float64(stores)*100,
		st.SpeculationFallbacks, st.PreResolveStalls)
}

// TestIngestCloseSemantics: Close flushes the partial producer batch
// (every emitted event lands in the report) and is idempotent.
func TestIngestCloseSemantics(t *testing.T) {
	l := logger.New(logger.Options{Frequency: 4})
	l.SetRun("ingest", "close", 1)
	ing := logger.NewIngest(l, logger.IngestOptions{Workers: 2})
	ing.Emit(event.Event{Type: event.Alloc, Addr: 0x1000, Size: 64, Fn: 1})
	ing.Emit(event.Event{Type: event.Store, Addr: 0x1000, Value: 0x1000})
	ing.Emit(event.Event{Type: event.Enter, Fn: 1})
	if err := ing.Close(); err != nil {
		t.Fatal(err)
	}
	if err := ing.Close(); err != nil {
		t.Fatal(err)
	}
	rep := l.Report()
	if rep.Events != 3 || rep.FnEntries != 1 {
		t.Fatalf("report saw %d events / %d entries, want 3 / 1 (partial batch lost?)", rep.Events, rep.FnEntries)
	}
	if st := ing.Stats(); st.Workers != 2 || st.SpeculationHits+st.SpeculationFallbacks != 1 {
		t.Fatalf("stats = %+v, want Workers 2 and one accounted store", st)
	}
}

// TestIngestNoGoroutineLeak: every create/feed/Close cycle must tear
// down the resolver pool and the mutator completely.
func TestIngestNoGoroutineLeak(t *testing.T) {
	evs := ingestStoreHeavyStream(64, 2000)
	before := runtime.NumGoroutine()
	for i := 0; i < 50; i++ {
		l := logger.New(logger.Options{Frequency: 1 << 62})
		ing := logger.NewIngest(l, logger.IngestOptions{Workers: 4})
		ing.EmitBatch(evs)
		ing.Close()
	}
	deadline := time.Now().Add(2 * time.Second)
	for {
		if after := runtime.NumGoroutine(); after <= before+2 {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("goroutines grew from %d to %d after 50 ingest cycles", before, runtime.NumGoroutine())
		}
		runtime.Gosched()
		time.Sleep(10 * time.Millisecond)
	}
}

// TestIngestStressConcurrent runs several independent pipelines at
// once — resolvers from different stages interleaving on the same
// cores — and holds each to the equivalence contract. Primarily a
// -race workout for the shared-view protocol under real scheduling
// noise.
func TestIngestStressConcurrent(t *testing.T) {
	var wg sync.WaitGroup
	errs := make(chan string, 4)
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			stream := genEvents(seed, genCfg{nOps: 6000, bigOdds: 10, bigPagesMax: 4})
			want := replaySerialLogger(stream, logger.ObjectGranularity)
			got, _ := replayIngest(stream, logger.ObjectGranularity, logger.IngestOptions{Workers: 3})
			// diffReports would t.Fatal off the test goroutine; compare the
			// cheap invariants here and let the main goroutine re-verify.
			if got.Events != want.Events || got.Health != want.Health ||
				len(got.Snapshots) != len(want.Snapshots) {
				errs <- "report mismatch"
			}
		}(int64(30 + g))
	}
	wg.Wait()
	close(errs)
	for e := range errs {
		t.Fatal(e)
	}
	// Full bit-level check once, on the main goroutine.
	stream := genEvents(30, genCfg{nOps: 6000, bigOdds: 10, bigPagesMax: 4})
	want := replaySerialLogger(stream, logger.ObjectGranularity)
	got, _ := replayIngest(stream, logger.ObjectGranularity, logger.IngestOptions{Workers: 3})
	diffReports(t, got, want)
}

// TestParallelIngestThroughputGate: on a multi-core machine the
// pipeline must actually buy throughput on its target shape — a
// store-dominated stream, where pre-resolution offloads the two
// pagemap stabs (~40% of store cost) from the mutator. Gate is 1.4x
// over the serial EmitBatch fast path at ≥ 4 cores; skipped below
// (a 1-core pipeline is pure overhead, which is why
// sched.ParseIngestWorkers resolves 0 to the serial path there).
func TestParallelIngestThroughputGate(t *testing.T) {
	if runtime.GOMAXPROCS(0) < 4 {
		t.Skipf("GOMAXPROCS=%d: pipeline speedup unobservable, skipping throughput gate", runtime.GOMAXPROCS(0))
	}
	if testing.Short() {
		t.Skip("short mode")
	}
	const events = 1 << 20
	evs := ingestStoreHeavyStream(4096, events)

	serial := func() float64 {
		l := logger.New(logger.Options{Frequency: 1 << 62})
		start := time.Now()
		for i := 0; i < len(evs); i += 4096 {
			end := i + 4096
			if end > len(evs) {
				end = len(evs)
			}
			l.EmitBatch(evs[i:end])
		}
		return float64(len(evs)) / time.Since(start).Seconds()
	}
	pipelined := func() float64 {
		l := logger.New(logger.Options{Frequency: 1 << 62})
		ing := logger.NewIngest(l, logger.IngestOptions{Workers: runtime.GOMAXPROCS(0)})
		start := time.Now()
		for i := 0; i < len(evs); i += 4096 {
			end := i + 4096
			if end > len(evs) {
				end = len(evs)
			}
			ing.EmitBatch(evs[i:end])
		}
		ing.Close()
		return float64(len(evs)) / time.Since(start).Seconds()
	}

	best := func(f func() float64) float64 {
		b := 0.0
		for trial := 0; trial < 3; trial++ {
			if r := f(); r > b {
				b = r
			}
		}
		return b
	}
	s := best(serial)
	p := best(pipelined)
	t.Logf("store-heavy ingest: serial %.1fM ev/s, pipelined %.1fM ev/s (%.2fx, %d cores)",
		s/1e6, p/1e6, p/s, runtime.GOMAXPROCS(0))
	if p < 1.4*s {
		t.Errorf("pipelined ingest %.1fM ev/s is under 1.4x serial %.1fM ev/s on %d cores",
			p/1e6, s/1e6, runtime.GOMAXPROCS(0))
	}
}
