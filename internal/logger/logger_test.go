package logger

import (
	"strings"
	"testing"

	"heapmd/internal/callstack"
	"heapmd/internal/event"
	"heapmd/internal/heap"
	"heapmd/internal/metrics"
)

// rig wires a simulated heap to a logger, the way the workload runtime
// does in production code.
type rig struct {
	t   *testing.T
	h   *heap.Sim
	l   *Logger
	sym *event.Symtab
}

func newRig(t *testing.T, opts Options) *rig {
	h := heap.New()
	l := New(opts)
	h.Subscribe(l)
	return &rig{t: t, h: h, l: l, sym: event.NewSymtab()}
}

func (r *rig) alloc(size uint64) uint64 {
	r.t.Helper()
	a, err := r.h.Alloc(size)
	if err != nil {
		r.t.Fatalf("Alloc: %v", err)
	}
	return a
}

func (r *rig) store(addr, val uint64) {
	r.t.Helper()
	if err := r.h.Store(addr, val); err != nil {
		r.t.Fatalf("Store: %v", err)
	}
}

func (r *rig) free(addr uint64) {
	r.t.Helper()
	if err := r.h.Free(addr); err != nil {
		r.t.Fatalf("Free: %v", err)
	}
}

func (r *rig) enter(fn string) {
	r.l.Emit(event.Event{Type: event.Enter, Fn: r.sym.Intern(fn)})
}

func TestVertexPerAllocation(t *testing.T) {
	r := newRig(t, Options{})
	r.alloc(16)
	r.alloc(16)
	if got := r.l.Graph().NumVertices(); got != 2 {
		t.Fatalf("vertices = %d, want 2", got)
	}
	if got := r.l.Graph().NumEdges(); got != 0 {
		t.Fatalf("edges = %d, want 0", got)
	}
}

func TestPointerStoreCreatesEdge(t *testing.T) {
	r := newRig(t, Options{})
	a := r.alloc(16)
	b := r.alloc(16)
	r.store(a, b) // a points to b
	g := r.l.Graph()
	if g.NumEdges() != 1 {
		t.Fatalf("edges = %d, want 1", g.NumEdges())
	}
	// b now has indegree 1; a has outdegree 1.
	if g.CountInDegree(1) != 1 || g.CountOutDegree(1) != 1 {
		t.Error("degree histograms wrong after pointer store")
	}
}

func TestScalarStoreCreatesNoEdge(t *testing.T) {
	r := newRig(t, Options{})
	a := r.alloc(16)
	r.store(a, 12345) // small scalar, below heap.Base
	if r.l.Graph().NumEdges() != 0 {
		t.Error("scalar store created an edge")
	}
}

func TestInteriorPointerResolvesToObject(t *testing.T) {
	r := newRig(t, Options{})
	a := r.alloc(16)
	b := r.alloc(32)
	r.store(a, b+16) // interior pointer into b
	g := r.l.Graph()
	if g.NumEdges() != 1 {
		t.Fatalf("edges = %d, want 1", g.NumEdges())
	}
	if g.CountInDegree(1) != 1 {
		t.Error("interior pointer did not resolve to containing object")
	}
}

func TestOverwriteRetiresOldEdge(t *testing.T) {
	r := newRig(t, Options{})
	a := r.alloc(16)
	b := r.alloc(16)
	c := r.alloc(16)
	r.store(a, b)
	r.store(a, c) // overwrite: edge a->b replaced by a->c
	g := r.l.Graph()
	if g.NumEdges() != 1 {
		t.Fatalf("edges = %d, want 1", g.NumEdges())
	}
	if g.CountInDegree(0) != 2 { // a and b are now indegree 0
		t.Errorf("CountInDegree(0) = %d, want 2", g.CountInDegree(0))
	}
}

func TestNullingAPointerRemovesEdge(t *testing.T) {
	r := newRig(t, Options{})
	a := r.alloc(16)
	b := r.alloc(16)
	r.store(a, b)
	r.store(a, 0) // null it
	if r.l.Graph().NumEdges() != 0 {
		t.Error("nulled pointer left an edge behind")
	}
}

func TestFreeRemovesVertexAndEdges(t *testing.T) {
	r := newRig(t, Options{})
	a := r.alloc(16)
	b := r.alloc(16)
	r.store(a, b)
	r.store(b, a) // cycle
	r.free(b)
	g := r.l.Graph()
	if g.NumVertices() != 1 || g.NumEdges() != 0 {
		t.Fatalf("after free: V=%d E=%d, want 1/0", g.NumVertices(), g.NumEdges())
	}
}

func TestRecycledAddressIsFreshVertex(t *testing.T) {
	r := newRig(t, Options{})
	a := r.alloc(16)
	b := r.alloc(16)
	r.store(a, b)
	r.free(b)
	// Recycle b's range; the old a->b edge must NOT resurrect.
	c := r.alloc(16)
	if c != b {
		t.Skip("allocator did not recycle")
	}
	g := r.l.Graph()
	if g.NumEdges() != 0 {
		t.Error("edge resurrected on address recycling")
	}
	if g.NumVertices() != 2 {
		t.Errorf("vertices = %d, want 2", g.NumVertices())
	}
}

func TestDoubleStoreSameTarget(t *testing.T) {
	// Two fields of a pointing at b: indegree(b) must be 2
	// (multi-edge), then drop to 1 when one field is cleared.
	r := newRig(t, Options{})
	a := r.alloc(32)
	b := r.alloc(16)
	r.store(a, b)
	r.store(a+8, b)
	g := r.l.Graph()
	if g.NumEdges() != 2 {
		t.Fatalf("edges = %d, want 2", g.NumEdges())
	}
	if g.CountInDegree(2) != 1 {
		t.Errorf("CountInDegree(2) = %d, want 1", g.CountInDegree(2))
	}
	r.store(a+8, 0)
	if g.CountInDegree(1) != 1 {
		t.Errorf("after clearing one field, CountInDegree(1) = %d, want 1", g.CountInDegree(1))
	}
}

func TestReallocPreservesEdges(t *testing.T) {
	r := newRig(t, Options{})
	a := r.alloc(16)
	b := r.alloc(16)
	c := r.alloc(16)
	r.store(a, b)                 // a -> b
	r.store(b, c)                 // b -> c
	nb, err := r.h.Realloc(b, 64) // move b
	if err != nil {
		t.Fatal(err)
	}
	if nb == b {
		t.Fatal("expected realloc to move")
	}
	g := r.l.Graph()
	// Object identity survives the move: both edges persist.
	if g.NumEdges() != 2 {
		t.Fatalf("edges after realloc = %d, want 2", g.NumEdges())
	}
	// And the moved object's slot is rebased: overwriting the
	// pointer through the new address retires the b->c edge.
	r.store(nb, 0)
	if g.NumEdges() != 1 {
		t.Errorf("edges after overwrite at new base = %d, want 1", g.NumEdges())
	}
}

func TestReallocShrinkDropsTailEdges(t *testing.T) {
	r := newRig(t, Options{})
	a := r.alloc(32)
	b := r.alloc(16)
	r.store(a+24, b) // pointer in the tail word
	if _, err := r.h.Realloc(a, 16); err != nil {
		t.Fatal(err)
	}
	if r.l.Graph().NumEdges() != 0 {
		t.Error("edge stored beyond the shrunk size survived")
	}
}

func TestSamplingCadence(t *testing.T) {
	r := newRig(t, Options{Frequency: 10})
	for i := 0; i < 95; i++ {
		r.enter("f")
	}
	if got := r.l.Ticks(); got != 9 {
		t.Fatalf("Ticks = %d, want 9", got)
	}
	rep := r.l.Report()
	if len(rep.Snapshots) != 9 {
		t.Fatalf("snapshots = %d", len(rep.Snapshots))
	}
	if rep.FnEntries != 95 {
		t.Errorf("FnEntries = %d, want 95", rep.FnEntries)
	}
}

func TestSampleObserverSeesStack(t *testing.T) {
	r := newRig(t, Options{Frequency: 3})
	var depths []int
	r.l.Observe(sampleFunc(func(snap metrics.Snapshot, stack *callstack.Tracker) {
		depths = append(depths, stack.Depth())
	}))
	r.enter("a") // depth 1
	r.enter("b") // depth 2
	r.enter("c") // depth 3 -> sample here (3rd entry)
	if len(depths) != 1 || depths[0] != 3 {
		t.Fatalf("observer depths = %v, want [3]", depths)
	}
}

type sampleFunc func(metrics.Snapshot, *callstack.Tracker)

func (f sampleFunc) Sample(s metrics.Snapshot, st *callstack.Tracker) { f(s, st) }

func TestReportSeries(t *testing.T) {
	r := newRig(t, Options{Frequency: 1})
	a := r.alloc(16)
	b := r.alloc(16)
	r.store(a, b)
	r.enter("f")
	r.enter("f")
	rep := r.l.Report()
	roots := rep.Series(metrics.Roots)
	if len(roots) != 2 {
		t.Fatalf("series length = %d, want 2", len(roots))
	}
	if roots[0] != 50 { // a is a root, b is not
		t.Errorf("Roots = %v, want 50", roots[0])
	}
	if rep.Series(metrics.Components) != nil {
		t.Error("series of absent metric should be nil")
	}
	if rep.Snapshots[0].Vertices != 2 {
		t.Errorf("snapshot vertices = %d", rep.Snapshots[0].Vertices)
	}
}

// TestFigure3FieldGranularity reproduces the paper's Figure 3 claim:
// at field granularity the In=Out metric depends on field layout, while
// at object granularity both layouts look identical.
func TestFigure3FieldGranularity(t *testing.T) {
	// Layout A (Figure 3A): node = [data, next]; pointer in word 1
	// points AT THE HEAD (word 0) of the next node.
	buildA := func(gran Granularity) *Logger {
		h := heap.New()
		l := New(Options{Granularity: gran, Frequency: 1})
		h.Subscribe(l)
		const k = 10
		var nodes []uint64
		for i := 0; i < k; i++ {
			a, err := h.Alloc(16)
			if err != nil {
				t.Fatal(err)
			}
			nodes = append(nodes, a)
		}
		for i := 0; i+1 < k; i++ {
			if err := h.Store(nodes[i]+8, nodes[i+1]); err != nil { // next at offset 8 -> head of next
				t.Fatal(err)
			}
		}
		return l
	}
	// Layout B (Figure 3B): node = [next, data]; pointer in word 0
	// points at the NEXT-node field (word 0) of the next node —
	// same graph shape but the data words are laid out after.
	buildB := func(gran Granularity) *Logger {
		h := heap.New()
		l := New(Options{Granularity: gran, Frequency: 1})
		h.Subscribe(l)
		const k = 10
		var nodes []uint64
		for i := 0; i < k; i++ {
			a, err := h.Alloc(16)
			if err != nil {
				t.Fatal(err)
			}
			nodes = append(nodes, a)
		}
		for i := 0; i+1 < k; i++ {
			if err := h.Store(nodes[i], nodes[i+1]); err != nil { // next at offset 0 -> next field of next node
				t.Fatal(err)
			}
		}
		return l
	}

	inEqOut := func(l *Logger) float64 {
		g := l.Graph()
		return float64(g.CountInEqOut()) / float64(g.NumVertices()) * 100
	}

	// Object granularity: layouts indistinguishable.
	objA, objB := inEqOut(buildA(ObjectGranularity)), inEqOut(buildB(ObjectGranularity))
	if objA != objB {
		t.Errorf("object granularity differs across layouts: %v vs %v", objA, objB)
	}
	// Field granularity: layouts produce different In=Out.
	fldA, fldB := inEqOut(buildA(FieldGranularity)), inEqOut(buildB(FieldGranularity))
	if fldA == fldB {
		t.Errorf("field granularity should differ across layouts: %v vs %v", fldA, fldB)
	}
}

func TestWildStoreIgnored(t *testing.T) {
	r := newRig(t, Options{})
	a := r.alloc(16)
	r.free(a)
	// Store through dangling pointer: heap permits, logger ignores.
	if err := r.h.Store(a, 99); err != nil {
		t.Fatal(err)
	}
	if r.l.Graph().NumVertices() != 0 {
		t.Error("wild store materialized a vertex")
	}
}

func TestLoggerStandaloneEvents(t *testing.T) {
	// The logger must also work when driven directly from replayed
	// trace events (offline mode), including redundant allocs.
	l := New(Options{Frequency: 1})
	l.Emit(event.Event{Type: event.Alloc, Addr: 4096, Size: 16})
	l.Emit(event.Event{Type: event.Alloc, Addr: 4096, Size: 16}) // duplicate: graph AddVertex dedups by fresh ID... should not crash
	l.Emit(event.Event{Type: event.Free, Addr: 8192})            // unknown free: ignored
	l.Emit(event.Event{Type: event.Enter, Fn: 1})
	if l.Ticks() != 1 {
		t.Fatalf("ticks = %d", l.Ticks())
	}
}

func BenchmarkLoggerStore(b *testing.B) {
	h := heap.New()
	l := New(Options{})
	h.Subscribe(l)
	var nodes []uint64
	for i := 0; i < 1000; i++ {
		a, err := h.Alloc(32)
		if err != nil {
			b.Fatal(err)
		}
		nodes = append(nodes, a)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		src := nodes[i%1000]
		dst := nodes[(i*7)%1000]
		if err := h.Store(src, dst); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSample100kVertices(b *testing.B) {
	h := heap.New()
	l := New(Options{Frequency: 1})
	h.Subscribe(l)
	var prev uint64
	for i := 0; i < 100000; i++ {
		a, err := h.Alloc(16)
		if err != nil {
			b.Fatal(err)
		}
		if prev != 0 {
			if err := h.Store(prev, a); err != nil {
				b.Fatal(err)
			}
		}
		prev = a
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		l.Emit(event.Event{Type: event.Enter, Fn: 1})
	}
}

func TestFieldGranularityAllocFree(t *testing.T) {
	r := newRig(t, Options{Granularity: FieldGranularity})
	a := r.alloc(32) // 4 word vertices
	if got := r.l.Graph().NumVertices(); got != 4 {
		t.Fatalf("vertices = %d, want 4 (one per word)", got)
	}
	b := r.alloc(16)
	r.store(a+8, b+8) // word 1 of a -> word 1 of b
	g := r.l.Graph()
	if g.NumEdges() != 1 {
		t.Fatalf("edges = %d, want 1", g.NumEdges())
	}
	// The edge runs between individual word vertices: exactly one
	// vertex has outdegree 1, exactly one has indegree 1.
	if g.CountOutDegree(1) != 1 || g.CountInDegree(1) != 1 {
		t.Errorf("degree counts: out1=%d in1=%d", g.CountOutDegree(1), g.CountInDegree(1))
	}
	r.free(a)
	if g.NumVertices() != 2 || g.NumEdges() != 0 {
		t.Errorf("after free: V=%d E=%d, want 2/0", g.NumVertices(), g.NumEdges())
	}
}

func TestFieldGranularityReallocGrow(t *testing.T) {
	r := newRig(t, Options{Granularity: FieldGranularity})
	a := r.alloc(16) // 2 words
	b := r.alloc(8)
	r.store(a, b)                 // word 0 of a -> b
	na, err := r.h.Realloc(a, 40) // grow to 5 words
	if err != nil {
		t.Fatal(err)
	}
	g := r.l.Graph()
	// 5 words of a + 1 word of b.
	if g.NumVertices() != 6 {
		t.Fatalf("vertices = %d, want 6", g.NumVertices())
	}
	// The word-0 edge survives the move; overwriting through the new
	// base retires it.
	if g.NumEdges() != 1 {
		t.Fatalf("edges after grow = %d, want 1", g.NumEdges())
	}
	r.store(na, 0)
	if g.NumEdges() != 0 {
		t.Errorf("edge not retired after overwrite at new base")
	}
}

func TestFieldGranularityReallocShrink(t *testing.T) {
	r := newRig(t, Options{Granularity: FieldGranularity})
	a := r.alloc(32) // 4 words
	b := r.alloc(8)
	r.store(a+24, b) // tail word -> b
	if _, err := r.h.Realloc(a, 16); err != nil {
		t.Fatal(err)
	}
	g := r.l.Graph()
	// 2 surviving words of a + 1 word of b; the tail edge died with
	// its source vertex.
	if g.NumVertices() != 3 || g.NumEdges() != 0 {
		t.Errorf("after shrink: V=%d E=%d, want 3/0", g.NumVertices(), g.NumEdges())
	}
}

func TestLoggerString(t *testing.T) {
	l := New(Options{Frequency: 5})
	if s := l.String(); !strings.Contains(s, "frq=5") {
		t.Errorf("String() = %q", s)
	}
}

func TestReportSeriesAbsentMetric(t *testing.T) {
	l := New(Options{Frequency: 1, Suite: metrics.NewSuite(metrics.Roots)})
	l.Emit(event.Event{Type: event.Enter, Fn: 1})
	rep := l.Report()
	if rep.Series(metrics.Leaves) != nil {
		t.Error("absent metric series should be nil")
	}
	if got := rep.Series(metrics.Roots); len(got) != 1 {
		t.Errorf("Roots series = %v", got)
	}
}
