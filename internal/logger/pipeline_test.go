package logger

import (
	"math/rand"
	"reflect"
	"sync"
	"testing"

	"heapmd/internal/callstack"
	"heapmd/internal/event"
	"heapmd/internal/metrics"
)

// arenaEvents builds a deterministic event stream confined to its own
// address arena: n allocations linked into a list, a churn of relinks,
// then frees of every other object, with function entries sprinkled in
// so sampling fires. Streams from different arenas touch disjoint
// addresses, so the aggregate graph counts after ingesting several
// streams are independent of how they interleave.
func arenaEvents(arena uint64, n int) []event.Event {
	base := (arena + 1) << 32
	const objSize = 32
	var evs []event.Event
	addr := func(i int) uint64 { return base + uint64(i)*64 }
	for i := 0; i < n; i++ {
		evs = append(evs, event.Event{Type: event.Alloc, Addr: addr(i), Size: objSize, Fn: 1})
		if i > 0 {
			evs = append(evs, event.Event{Type: event.Store, Addr: addr(i-1) + 8, Value: addr(i)})
		}
		evs = append(evs, event.Event{Type: event.Enter, Fn: 2}, event.Event{Type: event.Leave})
	}
	for i := 0; i+2 < n; i += 3 {
		evs = append(evs, event.Event{Type: event.Store, Addr: addr(i) + 16, Value: addr(i + 2)})
		evs = append(evs, event.Event{Type: event.Enter, Fn: 3}, event.Event{Type: event.Leave})
	}
	for i := 0; i < n; i += 2 {
		evs = append(evs, event.Event{Type: event.Free, Addr: addr(i)})
	}
	return evs
}

// graphCounts collects every concurrently-readable aggregate of a
// logger's graph.
func graphCounts(l *Logger) map[string]int {
	g := l.Graph()
	out := map[string]int{
		"vertices": g.NumVertices(),
		"edges":    g.NumEdges(),
		"eq":       g.CountInEqOut(),
	}
	for d := 0; d <= 8; d++ {
		out["in"+string(rune('0'+d))] = g.CountInDegree(d)
		out["out"+string(rune('0'+d))] = g.CountOutDegree(d)
	}
	return out
}

// TestPipelineSingleProducerMatchesDirect: with one producer the
// pipeline preserves event order, so the entire report — snapshots
// included — must be identical to feeding the logger directly.
func TestPipelineSingleProducerMatchesDirect(t *testing.T) {
	evs := arenaEvents(0, 500)

	direct := New(Options{Frequency: 16})
	for _, e := range evs {
		direct.Emit(e)
	}
	want := direct.Report()

	piped := New(Options{Frequency: 16})
	p := NewPipeline(piped, PipelineOptions{BatchSize: 64, QueueDepth: 4})
	pr := p.NewProducer()
	for _, e := range evs {
		pr.Emit(e)
	}
	pr.Close()
	if err := p.Close(); err != nil {
		t.Fatal(err)
	}
	got := piped.Report()

	if got.Events != want.Events || got.FnEntries != want.FnEntries {
		t.Fatalf("event accounting differs: got (%d, %d), want (%d, %d)",
			got.Events, got.FnEntries, want.Events, want.FnEntries)
	}
	if !reflect.DeepEqual(got.Snapshots, want.Snapshots) {
		t.Fatalf("snapshots differ between direct and pipelined ingestion")
	}
	if got.Health != want.Health {
		t.Fatalf("health differs: got %+v, want %+v", got.Health, want.Health)
	}
}

// TestPipelineConcurrentProducersDeterministicCounts: ≥4 producers in
// disjoint arenas ingested concurrently must yield exactly the graph
// aggregates of a serial reference ingestion, regardless of
// interleaving — the sharded degree counts may not lose or double-count
// under any schedule.
func TestPipelineConcurrentProducersDeterministicCounts(t *testing.T) {
	const producers = 4
	const objs = 400

	serial := New(Options{Frequency: 16})
	total := 0
	for a := 0; a < producers; a++ {
		evs := arenaEvents(uint64(a), objs)
		total += len(evs)
		for _, e := range evs {
			serial.Emit(e)
		}
	}
	want := graphCounts(serial)

	l := New(Options{Frequency: 16})
	p := NewPipeline(l, PipelineOptions{BatchSize: 32, QueueDepth: 8})
	var wg sync.WaitGroup
	for a := 0; a < producers; a++ {
		wg.Add(1)
		go func(arena int) {
			defer wg.Done()
			pr := p.NewProducer()
			defer pr.Close()
			for _, e := range arenaEvents(uint64(arena), objs) {
				pr.Emit(e)
			}
		}(a)
	}
	wg.Wait()
	if err := p.Close(); err != nil {
		t.Fatal(err)
	}

	if l.events != uint64(total) {
		t.Fatalf("consumed %d events, produced %d", l.events, total)
	}
	if p.Dropped() != 0 {
		t.Fatalf("Block policy dropped %d events", p.Dropped())
	}
	got := graphCounts(l)
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("concurrent ingestion counts = %v, want %v", got, want)
	}
	if msg := l.Graph().CheckInvariants(); msg != "" {
		t.Fatalf("graph invariants violated after concurrent ingestion: %s", msg)
	}
}

// TestPipelineStressRace hammers the pipeline with 8 producers emitting
// randomized (per-arena) operation mixes. Run under -race this
// exercises every producer/consumer/reader interleaving; correctness
// assertions are conservation (produced == consumed + dropped) and
// graph invariants.
func TestPipelineStressRace(t *testing.T) {
	const producers = 8
	const perProducer = 3000

	l := New(Options{Frequency: 64})
	p := NewPipeline(l, PipelineOptions{BatchSize: 128, QueueDepth: 16})

	// Concurrent readers: poll the sharded counts while ingestion
	// runs. Values are transient; the assertion is purely that -race
	// stays quiet and nothing panics.
	stopReaders := make(chan struct{})
	var readers sync.WaitGroup
	for r := 0; r < 2; r++ {
		readers.Add(1)
		go func() {
			defer readers.Done()
			g := l.Graph()
			for {
				select {
				case <-stopReaders:
					return
				default:
					_ = g.CountInDegree(0) + g.CountOutDegree(1) + g.CountInEqOut() +
						g.NumVertices() + g.NumEdges() + int(g.Generation())
				}
			}
		}()
	}

	var wg sync.WaitGroup
	for a := 0; a < producers; a++ {
		wg.Add(1)
		go func(arena int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(arena)))
			base := (uint64(arena) + 1) << 32
			pr := p.NewProducer()
			defer pr.Close()
			live := make([]uint64, 0, 256)
			for i := 0; i < perProducer; i++ {
				switch rng.Intn(10) {
				case 0, 1, 2, 3:
					addr := base + uint64(i)*64
					pr.Emit(event.Event{Type: event.Alloc, Addr: addr, Size: 32, Fn: 1})
					live = append(live, addr)
				case 4, 5, 6:
					if len(live) >= 2 {
						src := live[rng.Intn(len(live))]
						dst := live[rng.Intn(len(live))]
						pr.Emit(event.Event{Type: event.Store, Addr: src + 8, Value: dst})
					}
				case 7:
					if len(live) > 0 {
						k := rng.Intn(len(live))
						pr.Emit(event.Event{Type: event.Free, Addr: live[k]})
						live = append(live[:k], live[k+1:]...)
					}
				default:
					pr.Emit(event.Event{Type: event.Enter, Fn: 2})
					pr.Emit(event.Event{Type: event.Leave})
				}
			}
		}(a)
	}
	wg.Wait()
	if err := p.Close(); err != nil {
		t.Fatal(err)
	}
	close(stopReaders)
	readers.Wait()

	if p.Dropped() != 0 {
		t.Fatalf("Block policy dropped %d events", p.Dropped())
	}
	if msg := l.Graph().CheckInvariants(); msg != "" {
		t.Fatalf("graph invariants violated: %s", msg)
	}
	rep := l.Report()
	if rep.Events == 0 || rep.Health.DroppedEvents != 0 {
		t.Fatalf("unexpected report accounting: events=%d health=%+v", rep.Events, rep.Health)
	}
}

// TestPipelineDropPolicy gates the consumer shut, overfills the queue,
// and verifies the drop accounting: every produced event is either
// consumed or counted dropped, and the drops surface in the report's
// health counters.
func TestPipelineDropPolicy(t *testing.T) {
	const produced = 64
	gate := make(chan struct{})
	l := New(Options{Frequency: 16})
	p := NewPipeline(l, PipelineOptions{
		BatchSize:  1,
		QueueDepth: 2,
		Policy:     Drop,
		Gate:       gate,
	})
	pr := p.NewProducer()
	for _, e := range arenaEvents(0, produced/4)[:produced] {
		pr.Emit(e)
	}
	pr.Close()
	close(gate) // release the consumer to drain what was accepted
	if err := p.Close(); err != nil {
		t.Fatal(err)
	}

	dropped := p.Dropped()
	// With the gate held through every emit, at most QueueDepth
	// batches plus the one in the consumer's hands were accepted.
	if dropped == 0 {
		t.Fatal("gated Drop pipeline dropped nothing")
	}
	if got := l.events + dropped; got != produced {
		t.Fatalf("conservation: consumed %d + dropped %d != produced %d", l.events, dropped, produced)
	}
	rep := l.Report()
	if rep.Health.DroppedEvents != dropped {
		t.Fatalf("health.DroppedEvents = %d, want %d", rep.Health.DroppedEvents, dropped)
	}
	if rep.Health.Zero() {
		t.Fatal("drops must make the health counters nonzero")
	}
}

// TestPipelineAsyncMetricsMatchSync: a logger with MetricWorkers joins
// exact WCC/SCC values back into the recorded snapshots by tick, so
// after Close/Report the snapshots must equal a synchronous run over
// the same events.
func TestPipelineAsyncMetricsMatchSync(t *testing.T) {
	evs := arenaEvents(0, 600)

	sync1 := New(Options{Frequency: 16, Suite: metrics.ExtendedSuite()})
	for _, e := range evs {
		sync1.Emit(e)
	}
	want := sync1.Report()

	asyncL := New(Options{Frequency: 16, Suite: metrics.ExtendedSuite(), MetricWorkers: 3})
	p := NewPipeline(asyncL, PipelineOptions{BatchSize: 64})
	pr := p.NewProducer()
	for _, e := range evs {
		pr.Emit(e)
	}
	pr.Close()
	if err := p.Close(); err != nil {
		t.Fatal(err)
	}
	got := asyncL.Report()

	if len(got.Snapshots) != len(want.Snapshots) {
		t.Fatalf("snapshot count: got %d, want %d", len(got.Snapshots), len(want.Snapshots))
	}
	for i := range want.Snapshots {
		if !reflect.DeepEqual(got.Snapshots[i], want.Snapshots[i]) {
			t.Fatalf("snapshot %d differs:\nasync: %+v\nsync:  %+v", i, got.Snapshots[i], want.Snapshots[i])
		}
	}
}

// TestPipelineAsyncObserverSeesDefinedValues: observers in async mode
// receive carry-forward values for expensive metrics — defined (not
// NaN) and not racing with the workers' in-place joins.
func TestPipelineAsyncObserverSeesDefinedValues(t *testing.T) {
	l := New(Options{Frequency: 16, Suite: metrics.ExtendedSuite(), MetricWorkers: 2})
	suite := l.Suite()
	wccIdx := suite.Index(metrics.Components)
	var observed [][]float64
	l.Observe(observerFunc(func(snap metrics.Snapshot) {
		vals := append([]float64(nil), snap.Values...)
		observed = append(observed, vals)
	}))
	p := NewPipeline(l, PipelineOptions{BatchSize: 32})
	pr := p.NewProducer()
	for _, e := range arenaEvents(0, 400) {
		pr.Emit(e)
	}
	pr.Close()
	if err := p.Close(); err != nil {
		t.Fatal(err)
	}
	if len(observed) == 0 {
		t.Fatal("observer saw no samples")
	}
	for i, vals := range observed {
		if len(vals) != suite.Len() {
			t.Fatalf("sample %d has %d values, want %d", i, len(vals), suite.Len())
		}
		if v := vals[wccIdx]; v != v { // NaN check
			t.Fatalf("sample %d carries NaN for %s", i, metrics.Components)
		}
	}
}

// observerFunc adapts a function to SampleObserver.
type observerFunc func(metrics.Snapshot)

func (f observerFunc) Sample(snap metrics.Snapshot, _ *callstack.Tracker) { f(snap) }
