// Pipeline-parallel ingestion: speculative address pre-resolution.
//
// After the decode pipeline (trace readers) and the MPSC Pipeline
// (live producers), the logger's own event loop is the last serial
// stage: every event funnels through one goroutine at ~170–190
// ns/event, and roughly 40% of a store's cost is the two pagemap
// stabs that resolve its source and target addresses. Those stabs are
// pure reads — so while the strictly serial, strictly in-order
// mutator applies batch k, a pool of pre-resolver workers can perform
// the address resolution for batches k+1, k+2, … against the address
// table's shared read view (addrindex/shared.go) and attach the
// results to the batch:
//
//	producer ──▶ work ──▶ resolvers (SharedStab ×2 per store, stamped)
//	     │                    │ ready
//	     └─────▶ pending ─────▼──────▶ mutator (in order, validates
//	            (FIFO, bounded)         stamps, applies every event)
//
// Correctness is by generation stamping, not locking. Each
// speculative resolution records the (even, unchanged-across-the-
// lookup-pair) addrindex generation it read under; the mutator — the
// only goroutine that ever mutates the table — accepts it only while
// that stamp still equals the current generation and the table has
// never held overlapping ranges. Under those conditions the shared
// view and the serial table are element-for-element identical, so the
// pre-resolved answer (including a miss: a wild store is a valid
// resolution) is exactly what the serial stabs would have returned at
// apply time. Any intervening alloc/free/realloc bumps the generation
// and the affected events silently fall back to the serial lookup.
// Mutation order is untouched in every case, so reports, findings and
// health counters are byte-identical to the serial path by
// construction — only the ingest stall/fallback counters (surfaced
// via trace.Stats, never via health) depend on the configuration.
package logger

import (
	"sync"
	"sync/atomic"

	"heapmd/internal/addrindex"
	"heapmd/internal/event"
)

// resolution is one event's speculative pre-resolution. Only Store
// events are resolved; src/tgt hold arena indices from SharedStab
// (addrindex.NoEntry on miss), valid while stamp equals the table's
// current generation.
type resolution struct {
	stamp uint64
	src   int32
	tgt   int32
	state uint8
}

const (
	resNone uint8 = iota // not attempted, or abandoned mid-generation
	resDone              // resolved under a settled generation
)

// ResolvedBatch is an owned batch of events travelling through the
// ingest pipeline with its per-event speculative resolutions. Batches
// are pooled; the ready channel (capacity 1) carries the resolver's
// completion token to the mutator, so a recycled batch reuses it.
type ResolvedBatch struct {
	events []event.Event
	res    []resolution
	ready  chan struct{}
}

// IngestStats are the pipeline's configuration-dependent counters.
// They are surfaced through trace.Stats and the replay CLI — never
// through health.Counters, which travel inside Reports and must stay
// byte-identical across worker settings.
type IngestStats struct {
	// Workers is the resolved total worker count (1 mutator + N-1
	// pre-resolvers).
	Workers int
	// SpeculationHits counts stores applied from an accepted
	// pre-resolution.
	SpeculationHits uint64
	// SpeculationFallbacks counts stores applied through the serial
	// lookup despite the pipeline — the resolution was abandoned, or
	// its generation stamp was invalidated by an intervening
	// alloc/free/realloc, or the table is in sticky-overlap mode.
	SpeculationFallbacks uint64
	// PreResolveStalls counts stores a resolver abandoned because the
	// generation was odd (mutation in flight) or moved between the two
	// lookups of the pair.
	PreResolveStalls uint64
	// MutatorStalls counts batches whose resolution the in-order
	// mutator had to wait for.
	MutatorStalls uint64
}

// IngestOptions configures an Ingest pipeline.
type IngestOptions struct {
	// Workers is the total ingest worker count: 1 mutator plus
	// Workers-1 pre-resolvers. Values below 2 are clamped to 2 — a
	// caller wanting the serial path should not construct an Ingest
	// at all (sched.ParseIngestWorkers encodes that policy).
	Workers int
	// BatchSize is the events per pipeline batch; 0 means
	// DefaultBatchSize.
	BatchSize int
	// QueueDepth bounds the batches in flight between the producer,
	// the resolvers and the mutator; 0 means DefaultQueueDepth.
	QueueDepth int
}

func (o IngestOptions) withDefaults() IngestOptions {
	if o.Workers < 2 {
		o.Workers = 2
	}
	if o.BatchSize <= 0 {
		o.BatchSize = DefaultBatchSize
	}
	if o.QueueDepth <= 0 {
		o.QueueDepth = DefaultQueueDepth
	}
	return o
}

// Ingest is the pipeline-parallel ingestion front end to one Logger.
// It implements event.Sink and event.BatchSink for a single producing
// goroutine (trace replay, or the Pipeline's consumer); events are
// copied into pooled owned batches, speculatively pre-resolved by the
// worker pool, and applied strictly in order by a dedicated mutator
// goroutine. Close flushes, drains, and stops every goroutine; after
// Close returns the Logger is exclusively the caller's again.
type Ingest struct {
	log  *Logger
	opts IngestOptions

	buf       *ResolvedBatch      // producer-side batch being filled
	work      chan *ResolvedBatch // producer -> resolvers
	pending   chan *ResolvedBatch // producer -> mutator, order-defining
	pool      sync.Pool
	done      chan struct{}
	closeOnce sync.Once

	preResolveStalls atomic.Uint64 // resolvers (shared)
	hits             uint64        // mutator-only
	fallbacks        uint64        // mutator-only
	mutatorStalls    uint64        // mutator-only
}

// NewIngest starts an ingest pipeline feeding l. It enables the
// address table's shared read view and spawns opts.Workers-1 resolver
// goroutines plus the mutator. The Logger must not be used directly
// by any goroutine until Close returns.
func NewIngest(l *Logger, opts IngestOptions) *Ingest {
	opts = opts.withDefaults()
	ing := &Ingest{
		log:     l,
		opts:    opts,
		work:    make(chan *ResolvedBatch, opts.QueueDepth),
		pending: make(chan *ResolvedBatch, opts.QueueDepth),
		done:    make(chan struct{}),
	}
	ing.pool.New = func() any {
		return &ResolvedBatch{
			events: make([]event.Event, 0, opts.BatchSize),
			res:    make([]resolution, 0, opts.BatchSize),
			ready:  make(chan struct{}, 1),
		}
	}
	ing.buf = ing.getBatch()
	l.objects.EnableSharedReads()
	for i := 0; i < opts.Workers-1; i++ {
		go ing.resolver()
	}
	go ing.mutate()
	return ing
}

func (ing *Ingest) getBatch() *ResolvedBatch {
	b := ing.pool.Get().(*ResolvedBatch)
	b.events = b.events[:0]
	return b
}

// Emit implements event.Sink for the single producer.
func (ing *Ingest) Emit(e event.Event) {
	ing.buf.events = append(ing.buf.events, e)
	if len(ing.buf.events) >= ing.opts.BatchSize {
		ing.flush()
	}
}

// EmitBatch implements event.BatchSink: the borrowed slice is copied
// into owned pipeline batches before return.
func (ing *Ingest) EmitBatch(batch []event.Event) {
	for len(batch) > 0 {
		n := ing.opts.BatchSize - len(ing.buf.events)
		if n > len(batch) {
			n = len(batch)
		}
		ing.buf.events = append(ing.buf.events, batch[:n]...)
		batch = batch[n:]
		if len(ing.buf.events) >= ing.opts.BatchSize {
			ing.flush()
		}
	}
}

// Flush hands any partial batch to the pipeline without waiting for a
// full one.
func (ing *Ingest) Flush() {
	if len(ing.buf.events) > 0 {
		ing.flush()
	}
}

// flush dispatches the producer batch. The work send precedes the
// pending send so a batch visible to the mutator is always already
// visible to some resolver — pending is the bounded, order-defining
// queue; when it fills, the producer stalls (Block semantics, every
// event lands).
func (ing *Ingest) flush() {
	b := ing.buf
	ing.buf = ing.getBatch()
	b.res = b.res[:len(b.events)]
	ing.work <- b
	ing.pending <- b
}

// resolver is one pre-resolution worker: it stamps and resolves the
// Store events of each batch against the shared read view, then posts
// the batch's ready token.
func (ing *Ingest) resolver() {
	tab := ing.log.objects
	var stalls uint64
	for b := range ing.work {
		for i := range b.events {
			e := &b.events[i]
			if e.Type != event.Store {
				b.res[i].state = resNone
				continue
			}
			g := tab.Gen()
			if g&1 != 0 {
				// Mutation in flight: no settled state to stamp.
				b.res[i].state = resNone
				stalls++
				continue
			}
			src, _ := tab.SharedStab(e.Addr)
			tgt, _ := tab.SharedStab(e.Value)
			if tab.Gen() != g {
				// The pair straddled a mutation; the two lookups may
				// disagree about which generation they saw.
				b.res[i].state = resNone
				stalls++
				continue
			}
			b.res[i] = resolution{stamp: g, src: src, tgt: tgt, state: resDone}
		}
		if stalls != 0 {
			ing.preResolveStalls.Add(stalls)
			stalls = 0
		}
		b.ready <- struct{}{}
	}
}

// mutate is the strictly serial, strictly in-order application loop.
// It consumes batches in production order, waits (counting stalls)
// for each batch's resolution, applies it, and recycles it.
func (ing *Ingest) mutate() {
	defer close(ing.done)
	for b := range ing.pending {
		select {
		case <-b.ready:
		default:
			ing.mutatorStalls++
			<-b.ready
		}
		h, f := ing.log.applyBatch(b.events, b.res)
		ing.hits += h
		ing.fallbacks += f
		ing.pool.Put(b)
	}
}

// Close flushes the producer's partial batch, drains the pipeline,
// stops every worker goroutine, and releases the logger's metric
// workers. After Close the Logger is exclusively the caller's again
// (Report is safe). Idempotent.
func (ing *Ingest) Close() error {
	ing.closeOnce.Do(func() {
		ing.Flush()
		close(ing.work)
		close(ing.pending)
		<-ing.done
		ing.log.DrainMetrics()
	})
	return nil
}

// Logger returns the consuming logger. Until Close has returned it is
// only safe from the mutator's own callbacks (observers).
func (ing *Ingest) Logger() *Logger { return ing.log }

// Stats returns the pipeline's counters. Call after Close; while the
// pipeline is running only Workers is stable.
func (ing *Ingest) Stats() IngestStats {
	return IngestStats{
		Workers:              ing.opts.Workers,
		SpeculationHits:      ing.hits,
		SpeculationFallbacks: ing.fallbacks,
		PreResolveStalls:     ing.preResolveStalls.Load(),
		MutatorStalls:        ing.mutatorStalls,
	}
}

// acceptResolution decides whether a speculative resolution may
// replace the serial stabs for the store (addr, value) at apply time.
// A stamp still equal to the current generation means the table has
// not mutated since the resolver looked, so the resolution — hits and
// misses alike — is exact. A stale stamp is the common case under
// deep pipelines (any alloc/free between resolution and apply bumps
// the generation), so stale double-hit resolutions are revalidated by
// containment: live ranges are disjoint, so if the resolved arena
// slots still contain their addresses *now*, they are exactly the
// entries serial stabs would return now (see addrindex.Contains).
// Stale misses can never be revalidated — a newer insert may have
// claimed the address — and any overlap makes stab answers depend on
// serial cache history, so both reject.
func (l *Logger) acceptResolution(r *resolution, addr, value uint64) bool {
	if r.state != resDone || l.objects.Overlapped() {
		return false
	}
	if r.stamp == l.objects.Gen() {
		return true
	}
	if r.src == addrindex.NoEntry || !l.objects.Contains(r.src, addr) {
		return false
	}
	return r.tgt != addrindex.NoEntry && l.objects.Contains(r.tgt, value)
}

// onStoreResolved applies one store from an accepted pre-resolution.
// The caller has already validated the resolution (generation stamp or
// containment revalidation, plus the overlap flag), so srcIdx/tgtIdx
// describe exactly the entries (or misses) the serial stabs in onStore
// would find; only the graph and slot mutations remain. Remember calls replicate the serial path's
// last-hit cache evolution so interleaved fallback lookups keep their
// locality.
func (l *Logger) onStoreResolved(addr, value uint64, srcIdx, tgtIdx int32) {
	if srcIdx == addrindex.NoEntry {
		l.health.WildStores++
		return
	}
	base, _, info := l.objects.At(srcIdx)
	l.objects.Remember(srcIdx)
	off := addr - base
	src, srcOK := sourceVertex(info, off)
	if !srcOK {
		l.health.WildStores++
		return
	}
	if oldTarget, had := info.slots.get(off); had {
		l.graph.RemoveEdge(src, oldTarget)
		info.slots.del(off)
	}
	if tgtIdx == addrindex.NoEntry {
		return
	}
	tbase, _, tinfo := l.objects.At(tgtIdx)
	l.objects.Remember(tgtIdx)
	var target = tinfo.vertex
	if tinfo.wordVertices != nil {
		i := (value - tbase) / 8
		if i >= uint64(len(tinfo.wordVertices)) {
			return // past the last whole word: not a pointer target
		}
		target = tinfo.wordVertices[i]
	}
	l.graph.AddEdge(src, target)
	info.slots.set(off, target, info.size)
}
