package logger

import (
	"fmt"
	"runtime"
	"runtime/debug"
	"testing"

	"heapmd/internal/event"
)

// ingestAllocBatches builds a steady-state store-only batch set over a
// settled object population: the shape on which the pipeline must not
// allocate at all once warm (batches come from the pool, resolutions
// ride in place, slots and adjacency are overwrites).
func ingestAllocBatches(n int) [][]event.Event {
	addrs := make([]uint64, n)
	allocs := make([]event.Event, n)
	for i := range addrs {
		addrs[i] = uint64(0x100_0000_0000) + uint64(i)*1024
		allocs[i] = event.Event{Type: event.Alloc, Addr: addrs[i], Size: 512, Fn: 1}
	}
	batches := make([][]event.Event, 0, 64)
	batches = append(batches, allocs)
	for b := 0; b < 63; b++ {
		batch := make([]event.Event, DefaultBatchSize)
		for j := range batch {
			i := b*DefaultBatchSize + j
			src := addrs[(i*17)%n]
			dst := addrs[(i*31+7)%n]
			batch[j] = event.Event{Type: event.Store, Addr: src + uint64(i%64)*8, Value: dst}
		}
		batches = append(batches, batch)
	}
	return batches
}

// TestIngestPipelineAllocs is the allocation budget for the pipeline's
// steady state, enforced in CI: once the pool, the channels and the
// slot tables are warm, pushing a full batch of pointer stores through
// producer, resolver and mutator must not allocate — under one
// allocation per 256-event batch on average, and in practice zero.
// A regression means a per-batch structure went back to allocating
// (a non-pooled batch, a res slice regrown, a boxed send).
func TestIngestPipelineAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("race instrumentation allocates on the hot path")
	}
	// sync.Pool is emptied by GC; park it so a background cycle cannot
	// charge a pool refill to the measurement.
	defer debug.SetGCPercent(debug.SetGCPercent(-1))

	l := New(Options{Frequency: 1 << 62})
	ing := NewIngest(l, IngestOptions{Workers: 2})
	warm := ingestAllocBatches(4096)
	for _, b := range warm {
		ing.EmitBatch(b)
	}
	steady := warm[1:]
	iter := 0
	avg := testing.AllocsPerRun(200, func() {
		ing.EmitBatch(steady[iter%len(steady)])
		iter++
	})
	ing.Close()
	if avg >= 1 {
		t.Fatalf("ingest pipeline allocates %.2f times per %d-event batch in steady state; budget is < 1", avg, DefaultBatchSize)
	}
}

// BenchmarkEmitBatch measures the serial batched fast path on the
// pipeline's target shape (settled population, pointer stores): the
// baseline the ingest stage has to beat.
func BenchmarkEmitBatch(b *testing.B) {
	l := New(Options{Frequency: 1 << 62})
	batches := ingestAllocBatches(4096)
	l.EmitBatch(batches[0]) // population
	steady := batches[1:]
	perBatch := len(steady[0])
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		l.EmitBatch(steady[i%len(steady)])
	}
	b.SetBytes(int64(perBatch))
}

// BenchmarkIngestEmitBatch measures the same stream through the
// speculative pipeline at small and host-sized worker counts. On a
// single core this is expected to lose to BenchmarkEmitBatch (the
// stage is pure overhead there — hence ParseIngestWorkers(0) == 1);
// the multi-core win is gated by TestParallelIngestThroughputGate.
func BenchmarkIngestEmitBatch(b *testing.B) {
	for _, workers := range []int{2, runtime.GOMAXPROCS(0)} {
		if workers < 2 {
			continue
		}
		b.Run(fmt.Sprintf("workers-%d", workers), func(b *testing.B) {
			l := New(Options{Frequency: 1 << 62})
			ing := NewIngest(l, IngestOptions{Workers: workers})
			batches := ingestAllocBatches(4096)
			ing.EmitBatch(batches[0])
			steady := batches[1:]
			perBatch := len(steady[0])
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				ing.EmitBatch(steady[i%len(steady)])
			}
			b.StopTimer()
			ing.Close()
			b.SetBytes(int64(perBatch))
		})
	}
}
