// The concurrent monitoring pipeline. The Logger itself is
// single-goroutine: one event stream in, one heap image out. That was
// fine when the only producer was a single simulated process, but it
// caps ingestion at one core and forces every instrumented thread of a
// real workload to serialize on the logger. The Pipeline decouples
// production from consumption with a multi-producer/single-consumer
// batched channel:
//
//	producer goroutines          consumer goroutine
//	┌──────────┐  batches   ┌─────────────────────────┐
//	│ Producer │──┐         │ Logger.Emit per event   │
//	├──────────┤  ├──▶ ch ──▶ graph mutation,         │
//	│ Producer │──┘         │ sampling, observers     │
//	└──────────┘            └─────────────────────────┘
//
// Each Producer owns a private batch buffer, so the only cross-thread
// operation is one channel send per BatchSize events. Backpressure is
// a policy choice: Block (default) stalls producers when the consumer
// falls behind — every event lands, matching single-threaded
// semantics; Drop sheds whole batches when the queue is full and
// tallies the loss in the logger's health counters (DroppedEvents),
// because a monitoring pipeline for production services must be able
// to prefer the service's latency over its own completeness, but must
// never lose events silently.
package logger

import (
	"sync"
	"sync/atomic"

	"heapmd/internal/event"
)

// BackpressurePolicy selects what a Producer does when the pipeline's
// queue is full.
type BackpressurePolicy int

const (
	// Block stalls the producer until the consumer drains a batch.
	// No events are lost; ingestion throughput is bounded by the
	// consumer. This is the default.
	Block BackpressurePolicy = iota
	// Drop discards the producer's current batch and counts the loss
	// in health.Counters.DroppedEvents. Producers never stall; the
	// heap image becomes approximate under overload.
	Drop
)

func (p BackpressurePolicy) String() string {
	if p == Drop {
		return "drop"
	}
	return "block"
}

// DefaultBatchSize is the number of events a Producer accumulates
// before handing a batch to the consumer.
const DefaultBatchSize = 256

// DefaultQueueDepth is the number of batches the pipeline buffers
// between producers and the consumer.
const DefaultQueueDepth = 32

// PipelineOptions configures a Pipeline.
type PipelineOptions struct {
	// BatchSize is the events per batch; 0 means DefaultBatchSize.
	BatchSize int
	// QueueDepth is the batches buffered in the channel; 0 means
	// DefaultQueueDepth.
	QueueDepth int
	// Policy is the backpressure policy; the zero value is Block.
	Policy BackpressurePolicy
	// Gate, when non-nil, makes the consumer receive from it before
	// applying each batch. Testing hook: holding the gate closed
	// deterministically fills the queue to exercise backpressure.
	Gate <-chan struct{}
	// IngestWorkers >= 2 puts the pipeline-parallel ingestion stage
	// (see ingest.go) between the consumer and the Logger: the
	// consumer becomes the ingest pipeline's single producer and
	// batches are speculatively pre-resolved before the mutator
	// applies them. Values below 2 keep the direct path. Use
	// sched.ParseIngestWorkers to resolve a user-facing flag value.
	IngestWorkers int
}

func (o PipelineOptions) withDefaults() PipelineOptions {
	if o.BatchSize <= 0 {
		o.BatchSize = DefaultBatchSize
	}
	if o.QueueDepth <= 0 {
		o.QueueDepth = DefaultQueueDepth
	}
	return o
}

// Pipeline fans concurrent event producers into one Logger. Create
// with NewPipeline, hand each producing goroutine its own Producer,
// and Close the pipeline (after closing every Producer) to drain.
type Pipeline struct {
	log    *Logger
	opts   PipelineOptions
	ch     chan []event.Event
	free   sync.Pool
	ingest *Ingest // non-nil when IngestWorkers >= 2

	dropped   atomic.Uint64
	producers sync.WaitGroup
	done      chan struct{}
	closeOnce sync.Once
}

// NewPipeline starts a pipeline feeding l. The consumer goroutine
// starts immediately. The Logger must not be used directly (Emit,
// Report) by any other goroutine until Close returns.
func NewPipeline(l *Logger, opts PipelineOptions) *Pipeline {
	opts = opts.withDefaults()
	p := &Pipeline{
		log:  l,
		opts: opts,
		ch:   make(chan []event.Event, opts.QueueDepth),
		done: make(chan struct{}),
	}
	p.free.New = func() any { return make([]event.Event, 0, opts.BatchSize) }
	if opts.IngestWorkers >= 2 {
		p.ingest = NewIngest(l, IngestOptions{
			Workers:    opts.IngestWorkers,
			BatchSize:  opts.BatchSize,
			QueueDepth: opts.QueueDepth,
		})
	}
	go p.consume()
	return p
}

func (p *Pipeline) consume() {
	defer close(p.done)
	for batch := range p.ch {
		if p.opts.Gate != nil {
			<-p.opts.Gate
		}
		if p.ingest != nil {
			// The consumer is the ingest pipeline's single producer;
			// EmitBatch copies, honouring the pool round-trip below.
			p.ingest.EmitBatch(batch)
		} else {
			p.log.EmitBatch(batch)
		}
		p.free.Put(batch[:0]) //nolint:staticcheck // slice round-trips through the pool by value
	}
}

func (p *Pipeline) getBuf() []event.Event {
	return p.free.Get().([]event.Event)[:0]
}

// NewProducer registers a producer. Each producing goroutine must use
// its own Producer; a Producer is not safe for concurrent use.
func (p *Pipeline) NewProducer() *Producer {
	p.producers.Add(1)
	return &Producer{p: p, buf: p.getBuf()}
}

// Dropped returns the number of events shed so far under the Drop
// policy. Safe to call concurrently.
func (p *Pipeline) Dropped() uint64 { return p.dropped.Load() }

// Logger returns the consuming logger. Until Close has returned, the
// logger's accessors are only safe from the consumer's own callbacks
// (observers); the counts-only methods of its Graph are safe anywhere.
func (p *Pipeline) Logger() *Logger { return p.log }

// Close waits for every Producer to be closed, drains the queue, stops
// the consumer, folds the drop counter into the logger's health
// accounting, and releases the logger's metric workers. After Close
// the Logger is exclusively the caller's again (Report is safe).
func (p *Pipeline) Close() error {
	p.closeOnce.Do(func() {
		p.producers.Wait()
		close(p.ch)
		<-p.done
		if p.ingest != nil {
			p.ingest.Close()
		}
		p.log.Health().DroppedEvents += p.dropped.Load()
		p.log.DrainMetrics()
	})
	return nil
}

// IngestStats returns the ingest stage's counters (zero value when
// IngestWorkers < 2 left the direct path in place). Call after Close.
func (p *Pipeline) IngestStats() IngestStats {
	if p.ingest == nil {
		return IngestStats{}
	}
	return p.ingest.Stats()
}

// Producer is one goroutine's batching front-end to the pipeline. It
// implements event.Sink, so it can be subscribed anywhere a Logger
// could.
type Producer struct {
	p      *Pipeline
	buf    []event.Event
	closed bool
}

// Emit implements event.Sink: it appends to the producer's private
// batch and hands the batch to the consumer when full.
func (pr *Producer) Emit(e event.Event) {
	pr.buf = append(pr.buf, e)
	if len(pr.buf) >= pr.p.opts.BatchSize {
		pr.flush()
	}
}

// EmitBatch implements event.BatchSink: bulk-append the borrowed batch
// into the producer's private buffer, flushing at batch-size
// boundaries. Events are copied before return, honouring the
// borrowed-slice contract.
func (pr *Producer) EmitBatch(batch []event.Event) {
	for len(batch) > 0 {
		n := pr.p.opts.BatchSize - len(pr.buf)
		if n > len(batch) {
			n = len(batch)
		}
		pr.buf = append(pr.buf, batch[:n]...)
		batch = batch[n:]
		if len(pr.buf) >= pr.p.opts.BatchSize {
			pr.flush()
		}
	}
}

// Flush sends any buffered events without waiting for a full batch.
func (pr *Producer) Flush() {
	if len(pr.buf) > 0 {
		pr.flush()
	}
}

func (pr *Producer) flush() {
	batch := pr.buf
	pr.buf = pr.p.getBuf()
	if pr.p.opts.Policy == Drop {
		select {
		case pr.p.ch <- batch:
		default:
			pr.p.dropped.Add(uint64(len(batch)))
			pr.p.free.Put(batch[:0]) //nolint:staticcheck
		}
		return
	}
	pr.p.ch <- batch
}

// Close flushes the producer's remaining events and deregisters it
// from the pipeline. It must be called exactly once per Producer
// before Pipeline.Close; the Producer must not be used afterwards.
func (pr *Producer) Close() {
	if pr.closed {
		return
	}
	pr.closed = true
	pr.Flush()
	pr.p.producers.Done()
}
