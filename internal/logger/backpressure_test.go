package logger

import (
	"sync"
	"testing"
)

// TestDropPolicyExactAccounting pins the Drop policy's bookkeeping
// under sustained overload: with the consumer gated shut, producers
// far outrun the queue and shed most of their batches — but every
// single event must be accounted for, either consumed by the logger
// or tallied in the drop counter. produced == consumed + dropped,
// exactly, and the loss must surface in the report's health counters
// (never lose events silently).
func TestDropPolicyExactAccounting(t *testing.T) {
	gate := make(chan struct{})
	l := New(Options{Frequency: 16})
	p := NewPipeline(l, PipelineOptions{
		BatchSize:  8,
		QueueDepth: 2,
		Policy:     Drop,
		Gate:       gate,
	})

	// Two producers on separate goroutines: the MPSC shape the
	// pipeline exists for. Each stream lives in its own arena, so
	// the event mix is valid regardless of which batches survive.
	const producers = 2
	counts := make([]uint64, producers)
	var wg sync.WaitGroup
	for g := 0; g < producers; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			pr := p.NewProducer()
			for _, e := range arenaEvents(uint64(g), 400) {
				pr.Emit(e)
				counts[g]++
			}
			pr.Close()
		}(g)
	}
	wg.Wait()

	// All producers are done; whatever still sits in the queue (and
	// the one batch the consumer holds at the gate) drains now.
	close(gate)
	if err := p.Close(); err != nil {
		t.Fatal(err)
	}

	var produced uint64
	for _, n := range counts {
		produced += n
	}
	dropped := p.Dropped()
	rep := l.Report()

	if dropped == 0 {
		t.Fatal("gated queue of 2×8 events shed nothing under sustained overload")
	}
	if rep.Events+dropped != produced {
		t.Errorf("events unaccounted for: consumed %d + dropped %d != produced %d",
			rep.Events, dropped, produced)
	}
	if rep.Health.DroppedEvents != dropped {
		t.Errorf("report health has %d dropped events, pipeline counted %d",
			rep.Health.DroppedEvents, dropped)
	}
}

// TestDropPolicyCleanUnderrun: a Drop pipeline whose consumer keeps up
// must shed nothing and report clean health — Drop may only cost
// completeness under overload, never in the steady state.
func TestDropPolicyCleanUnderrun(t *testing.T) {
	l := New(Options{Frequency: 16})
	p := NewPipeline(l, PipelineOptions{Policy: Drop})
	pr := p.NewProducer()
	evs := arenaEvents(0, 300)
	for _, e := range evs {
		pr.Emit(e)
	}
	pr.Close()
	if err := p.Close(); err != nil {
		t.Fatal(err)
	}
	if got := p.Dropped(); got != 0 {
		t.Errorf("unloaded pipeline dropped %d events", got)
	}
	rep := l.Report()
	if rep.Events != uint64(len(evs)) {
		t.Errorf("consumed %d of %d events", rep.Events, len(evs))
	}
	if rep.Health.DroppedEvents != 0 {
		t.Errorf("health reports %d dropped events", rep.Health.DroppedEvents)
	}
}
