package logger

import (
	"testing"

	"heapmd/internal/event"
)

// TestStoreHotPathAllocs is the allocation budget for the per-event
// hot path, enforced in CI: a steady-state batch of one free, one
// re-allocation at the same address and six pointer stores must
// average at most two heap allocations — and with the arena-backed
// address table, inline slot tables and inline adjacency it actually
// averages zero. A regression here means some per-event structure
// went back to allocating (a map, a spilled slot table, a treap
// node), which is exactly what this PR removed.
func TestStoreHotPathAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("race instrumentation allocates on the hot path")
	}
	const n = 4096
	l := New(Options{Frequency: 1 << 62})
	addrs := make([]uint64, n)
	for i := range addrs {
		addr := uint64(0x100_0000_0000) + uint64(i)*64
		addrs[i] = addr
		l.Emit(event.Event{Type: event.Alloc, Addr: addr, Size: 64, Fn: 1})
	}
	// Warm up: visit every object once so one-time growth (spill maps,
	// page ref lists, arena capacity) happens before measurement.
	for i := 0; i < n*8; i++ {
		src := addrs[i&(n-1)]
		dst := addrs[(i*31+7)&(n-1)]
		l.Emit(event.Event{Type: event.Store, Addr: src + 8, Value: dst})
	}
	iter := 0
	avg := testing.AllocsPerRun(2000, func() {
		i := iter
		iter++
		k := (i * 17) & (n - 1)
		l.Emit(event.Event{Type: event.Free, Addr: addrs[k]})
		l.Emit(event.Event{Type: event.Alloc, Addr: addrs[k], Size: 64, Fn: 1})
		for j := 0; j < 6; j++ {
			src := addrs[(i*8+j)&(n-1)]
			dst := addrs[((i*8+j)*31+7)&(n-1)]
			l.Emit(event.Event{Type: event.Store, Addr: src + 8, Value: dst})
		}
	})
	if avg > 2 {
		t.Fatalf("store hot path allocates %.1f times per 8-event batch; budget is 2", avg)
	}
}
