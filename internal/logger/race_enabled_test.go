//go:build race

package logger

// raceEnabled reports whether the race detector is compiled in; the
// allocation-budget tests skip under it because instrumentation
// allocates on paths that are allocation-free in normal builds.
const raceEnabled = true
