package logger

import "heapmd/internal/heapgraph"

// slotTable records which words of one live object currently hold a
// pointer, mapping the slot's offset within the object to the target
// vertex recorded when the write was observed. It is the per-object
// companion of the heap-graph's adjacency sets and shares their
// size-class philosophy: almost every heap object holds at most a few
// pointers, so the table begins as a fixed inline array and only
// escalates when the object proves bigger than that.
//
// Tiers, in escalation order:
//
//   - inline: up to inlineSlots (offset, target) pairs, no allocation.
//   - words: a word-indexed slice of targets for objects up to
//     maxWordBytes whose slots are all word-aligned — one direct index
//     per lookup, ceil(size/8) entries, VertexID 0 meaning "no
//     pointer here" (the logger's vertex IDs start at 1).
//   - spill: an offset-keyed map, the fully general fallback for huge
//     objects and the unaligned stores only damaged raw traces
//     produce.
//
// Keying by offset rather than absolute address means realloc never
// rewrites keys: a moved object keeps its table and only drops the
// slots the shrink cut off (see resize).
//
// The zero slotTable is an empty table.
type slotTable struct {
	n      int32 // inline entries in use; 0 once promoted
	inline [inlineSlots]slotEntry
	words  []heapgraph.VertexID
	spill  map[uint64]heapgraph.VertexID
}

// inlineSlots is the inline capacity of a slotTable; chosen to match
// the heap-graph's inline adjacency degree.
const inlineSlots = 4

// maxWordBytes bounds the words tier: an object larger than this uses
// the spill map beyond its inline slots, so one giant allocation
// cannot force a proportionally giant slot slice.
const maxWordBytes = 1 << 16

type slotEntry struct {
	off    uint64
	target heapgraph.VertexID
}

// get returns the target recorded at offset off, if any.
func (t *slotTable) get(off uint64) (heapgraph.VertexID, bool) {
	if t.spill != nil {
		v, ok := t.spill[off]
		return v, ok
	}
	if t.words != nil {
		if off%8 == 0 {
			if i := off / 8; i < uint64(len(t.words)) && t.words[i] != 0 {
				return t.words[i], true
			}
		}
		return 0, false
	}
	for i := int32(0); i < t.n; i++ {
		if t.inline[i].off == off {
			return t.inline[i].target, true
		}
	}
	return 0, false
}

// set records target at offset off. size is the object's current size,
// consulted when the inline tier overflows to pick the next tier.
// target must be non-zero (logger vertex IDs start at 1).
func (t *slotTable) set(off uint64, target heapgraph.VertexID, size uint64) {
	if t.spill != nil {
		t.spill[off] = target
		return
	}
	if t.words != nil {
		if off%8 == 0 && off/8 < uint64(len(t.words)) {
			t.words[off/8] = target
			return
		}
		// An unaligned (or out-of-bounds) slot in word mode: only
		// damaged raw traces get here. Fall back to the map.
		t.demote()
		t.spill[off] = target
		return
	}
	for i := int32(0); i < t.n; i++ {
		if t.inline[i].off == off {
			t.inline[i].target = target
			return
		}
	}
	if t.n < inlineSlots {
		t.inline[t.n] = slotEntry{off: off, target: target}
		t.n++
		return
	}
	// Inline tier full: promote. Word-aligned slots in a modest object
	// go to the direct-indexed slice; everything else to the map.
	if size <= maxWordBytes && off%8 == 0 && t.inlineAligned() {
		t.words = make([]heapgraph.VertexID, (size+7)/8)
		for i := int32(0); i < t.n; i++ {
			t.words[t.inline[i].off/8] = t.inline[i].target
		}
		t.n = 0
		t.words[off/8] = target
		return
	}
	m := make(map[uint64]heapgraph.VertexID, 2*inlineSlots)
	for i := int32(0); i < t.n; i++ {
		m[t.inline[i].off] = t.inline[i].target
	}
	t.n = 0
	m[off] = target
	t.spill = m
}

// inlineAligned reports whether every inline slot offset is
// word-aligned (the words tier's representability condition).
func (t *slotTable) inlineAligned() bool {
	for i := int32(0); i < t.n; i++ {
		if t.inline[i].off%8 != 0 {
			return false
		}
	}
	return true
}

// demote converts the words tier to the spill map.
func (t *slotTable) demote() {
	m := make(map[uint64]heapgraph.VertexID, 2*inlineSlots)
	for i, v := range t.words {
		if v != 0 {
			m[uint64(i)*8] = v
		}
	}
	t.words = nil
	t.spill = m
}

// del removes the slot at offset off, if present.
func (t *slotTable) del(off uint64) {
	if t.spill != nil {
		delete(t.spill, off)
		return
	}
	if t.words != nil {
		if off%8 == 0 && off/8 < uint64(len(t.words)) {
			t.words[off/8] = 0
		}
		return
	}
	for i := int32(0); i < t.n; i++ {
		if t.inline[i].off == off {
			t.n--
			t.inline[i] = t.inline[t.n] // swap-remove
			return
		}
	}
}

// resize drops every slot at offset >= newSize, calling drop (if
// non-nil) for each removed entry, and re-bounds the words tier to the
// new size. Realloc calls this: offset keys make it the whole of slot
// rebasing.
func (t *slotTable) resize(newSize uint64, drop func(off uint64, target heapgraph.VertexID)) {
	switch {
	case t.spill != nil:
		for off, target := range t.spill {
			if off >= newSize {
				if drop != nil {
					drop(off, target)
				}
				delete(t.spill, off)
			}
		}
	case t.words != nil:
		for i := range t.words {
			if off := uint64(i) * 8; off >= newSize && t.words[i] != 0 {
				if drop != nil {
					drop(off, t.words[i])
				}
				t.words[i] = 0
			}
		}
		if newSize > maxWordBytes {
			t.demote()
			return
		}
		newWords := (newSize + 7) / 8
		switch {
		case uint64(len(t.words)) > newWords:
			t.words = t.words[:newWords]
		case uint64(cap(t.words)) >= newWords:
			old := len(t.words)
			t.words = t.words[:newWords]
			for i := old; i < len(t.words); i++ {
				t.words[i] = 0 // a prior shrink may have left stale entries in the cap region
			}
		default:
			grown := make([]heapgraph.VertexID, newWords)
			copy(grown, t.words)
			t.words = grown
		}
	default:
		for i := int32(0); i < t.n; {
			if t.inline[i].off >= newSize {
				if drop != nil {
					drop(t.inline[i].off, t.inline[i].target)
				}
				t.n--
				t.inline[i] = t.inline[t.n]
				continue
			}
			i++
		}
	}
}
