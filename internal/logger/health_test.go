package logger

import (
	"testing"

	"heapmd/internal/callstack"
	"heapmd/internal/event"
	"heapmd/internal/metrics"
)

// emit is shorthand for driving a logger with raw events.
func emitAll(l *Logger, evs ...event.Event) {
	for _, e := range evs {
		l.Emit(e)
	}
}

func TestDoubleFreeCounted(t *testing.T) {
	l := New(Options{})
	emitAll(l,
		event.Event{Type: event.Alloc, Addr: 0x1000, Size: 16},
		event.Event{Type: event.Free, Addr: 0x1000, Size: 16},
		event.Event{Type: event.Free, Addr: 0x1000, Size: 16},
	)
	h := l.Health()
	if h.DoubleFrees != 1 || h.WildFrees != 0 {
		t.Errorf("double-free: %+v", *h)
	}
	if rep := l.Report(); rep.Health.DoubleFrees != 1 {
		t.Error("health not surfaced in Report")
	}
}

func TestWildFreeCounted(t *testing.T) {
	l := New(Options{})
	emitAll(l, event.Event{Type: event.Free, Addr: 0xdead, Size: 16})
	if h := l.Health(); h.WildFrees != 1 || h.DoubleFrees != 0 {
		t.Errorf("wild-free: %+v", *h)
	}
}

func TestRecycledAddressFreeIsLegitimate(t *testing.T) {
	l := New(Options{})
	emitAll(l,
		event.Event{Type: event.Alloc, Addr: 0x1000, Size: 16},
		event.Event{Type: event.Free, Addr: 0x1000, Size: 16},
		// The allocator hands the range out again; freeing it later
		// must NOT be misread as a double free.
		event.Event{Type: event.Alloc, Addr: 0x1000, Size: 16},
		event.Event{Type: event.Free, Addr: 0x1000, Size: 16},
	)
	if h := l.Health(); !h.Zero() {
		t.Errorf("recycled free miscounted: %+v", *h)
	}
}

func TestWildStoreCounted(t *testing.T) {
	l := New(Options{})
	emitAll(l,
		event.Event{Type: event.Alloc, Addr: 0x1000, Size: 16},
		event.Event{Type: event.Store, Addr: 0x5000, Value: 0x1000},
	)
	if h := l.Health(); h.WildStores != 1 {
		t.Errorf("wild-store: %+v", *h)
	}
}

// TestStoreIntoFreedThenRecycled covers the dangling-pointer dance:
// a store into freed memory is wild (counted), but once the range is
// recycled by a fresh allocation the same address is valid again and
// the store lands in the new object without further counting.
func TestStoreIntoFreedThenRecycled(t *testing.T) {
	l := New(Options{})
	emitAll(l,
		event.Event{Type: event.Alloc, Addr: 0x1000, Size: 32},
		event.Event{Type: event.Alloc, Addr: 0x2000, Size: 32},
		event.Event{Type: event.Free, Addr: 0x2000, Size: 32},
		// Dangling write into the freed range: wild.
		event.Event{Type: event.Store, Addr: 0x2008, Value: 0x1000},
	)
	if h := l.Health(); h.WildStores != 1 {
		t.Fatalf("dangling store not counted: %+v", *h)
	}
	emitAll(l,
		// Range recycled; same address now belongs to a live object.
		event.Event{Type: event.Alloc, Addr: 0x2000, Size: 32},
		event.Event{Type: event.Store, Addr: 0x2008, Value: 0x1000},
	)
	if h := l.Health(); h.WildStores != 1 {
		t.Errorf("store into recycled object miscounted as wild: %+v", *h)
	}
	if got := l.Graph().NumEdges(); got != 1 {
		t.Errorf("recycled store produced %d edges, want 1", got)
	}
}

func TestBadReallocUnknownBase(t *testing.T) {
	l := New(Options{})
	emitAll(l, event.Event{Type: event.Realloc, Addr: 0x4000, Value: 0x5000, Size: 64})
	if h := l.Health(); h.BadReallocs != 1 {
		t.Errorf("bad-realloc: %+v", *h)
	}
	if l.Graph().NumVertices() != 0 {
		t.Error("bad realloc mutated the graph")
	}
}

func TestBadReallocFieldGranularity(t *testing.T) {
	l := New(Options{Granularity: FieldGranularity})
	emitAll(l, event.Event{Type: event.Realloc, Addr: 0x4000, Value: 0x5000, Size: 64})
	if h := l.Health(); h.BadReallocs != 1 {
		t.Errorf("bad-realloc (field): %+v", *h)
	}
}

func TestReallocOfFreedBaseIsBadRealloc(t *testing.T) {
	l := New(Options{})
	emitAll(l,
		event.Event{Type: event.Alloc, Addr: 0x1000, Size: 16},
		event.Event{Type: event.Free, Addr: 0x1000, Size: 16},
		event.Event{Type: event.Realloc, Addr: 0x1000, Value: 0x2000, Size: 32},
	)
	if h := l.Health(); h.BadReallocs != 1 {
		t.Errorf("realloc-after-free: %+v", *h)
	}
}

// TestFieldGranularityReallocShrinkToZero drives the field-granular
// realloc path to its degenerate end: every word vertex must be
// retired, no slot may survive, and nothing may panic.
func TestFieldGranularityReallocShrinkToZero(t *testing.T) {
	l := New(Options{Granularity: FieldGranularity})
	emitAll(l,
		event.Event{Type: event.Alloc, Addr: 0x1000, Size: 32}, // 4 word vertices
		event.Event{Type: event.Alloc, Addr: 0x2000, Size: 8},  // target
		event.Event{Type: event.Store, Addr: 0x1008, Value: 0x2000},
	)
	if v := l.Graph().NumVertices(); v != 5 {
		t.Fatalf("setup vertices = %d, want 5", v)
	}
	if e := l.Graph().NumEdges(); e != 1 {
		t.Fatalf("setup edges = %d, want 1", e)
	}
	emitAll(l, event.Event{Type: event.Realloc, Addr: 0x1000, Value: 0x1000, Size: 0})
	if v := l.Graph().NumVertices(); v != 1 {
		t.Errorf("post-shrink vertices = %d, want 1 (target only)", v)
	}
	if e := l.Graph().NumEdges(); e != 0 {
		t.Errorf("post-shrink edges = %d, want 0", e)
	}
	if h := l.Health(); !h.Zero() {
		t.Errorf("legitimate shrink counted as anomaly: %+v", *h)
	}
}

func TestReallocMoveReleasesOldBase(t *testing.T) {
	l := New(Options{})
	emitAll(l,
		event.Event{Type: event.Alloc, Addr: 0x1000, Size: 16},
		event.Event{Type: event.Realloc, Addr: 0x1000, Value: 0x3000, Size: 64},
		// The old placement is freed memory now: freeing it again is
		// a double free, not a wild free.
		event.Event{Type: event.Free, Addr: 0x1000, Size: 16},
	)
	if h := l.Health(); h.DoubleFrees != 1 || h.WildFrees != 0 {
		t.Errorf("free of realloc-released base: %+v", *h)
	}
}

func TestUnknownEventTypeCounted(t *testing.T) {
	l := New(Options{})
	emitAll(l, event.Event{Type: event.Type(42), Addr: 1})
	if h := l.Health(); h.UnknownEvents != 1 {
		t.Errorf("unknown-event: %+v", *h)
	}
}

// panicObserver blows up on its nth sample.
type panicObserver struct {
	calls   int
	panicOn int
}

func (o *panicObserver) Sample(metrics.Snapshot, *callstack.Tracker) {
	o.calls++
	if o.calls == o.panicOn {
		panic("observer bug")
	}
}

// countObserver tallies samples delivered.
type countObserver struct{ calls int }

func (o *countObserver) Sample(metrics.Snapshot, *callstack.Tracker) { o.calls++ }

// TestObserverPanicQuarantine: a panicking observer must not abort
// the run; it is quarantined after its first panic while healthy
// observers keep receiving samples.
func TestObserverPanicQuarantine(t *testing.T) {
	l := New(Options{Frequency: 1})
	bad := &panicObserver{panicOn: 2}
	good := &countObserver{}
	l.Observe(bad)
	l.Observe(good)
	for i := 0; i < 5; i++ {
		l.Emit(event.Event{Type: event.Enter, Fn: 1}) // sample each entry
	}
	if good.calls != 5 {
		t.Errorf("healthy observer saw %d samples, want 5", good.calls)
	}
	if bad.calls != 2 {
		t.Errorf("panicking observer saw %d samples, want 2 (quarantined after panic)", bad.calls)
	}
	if h := l.Health(); h.ObserverPanics != 1 {
		t.Errorf("observer-panics: %+v", *h)
	}
	if q := l.Quarantined(); len(q) != 1 || q[0] != bad {
		t.Errorf("quarantine list wrong: %v", q)
	}
	if rep := l.Report(); rep.Health.ObserverPanics != 1 {
		t.Error("observer panic not surfaced in Report")
	}
}

func TestObserverPanicFirstOfSeveral(t *testing.T) {
	l := New(Options{Frequency: 1})
	first := &panicObserver{panicOn: 1}
	mid := &countObserver{}
	last := &countObserver{}
	l.Observe(first)
	l.Observe(mid)
	l.Observe(last)
	for i := 0; i < 3; i++ {
		l.Emit(event.Event{Type: event.Enter, Fn: 1})
	}
	if mid.calls != 3 || last.calls != 3 {
		t.Errorf("later observers starved: mid=%d last=%d, want 3 each", mid.calls, last.calls)
	}
}
