// Package logger implements HeapMD's execution logger (paper Section
// 2.1, Figure 2): the component that consumes the instrumentation
// event stream, maintains an image of the heap-graph, and computes the
// metric suite at metric computation points.
//
// Design notes carried over from the paper:
//
//   - The logger maintains its own image of heap connectivity rather
//     than traversing the program's heap, "preserving cache-locality";
//     here that translates to the logger holding an independent
//     page-indexed object table (addrindex.Table) and per-object
//     edge-slot tables, driven purely by events.
//   - Metric computation points are function entries; metrics are
//     computed once every Frequency entries (paper: frq = 1/100,000).
//   - The heap-graph is built at object granularity by default. Field
//     granularity (every word is a vertex, Figure 3) is available for
//     the layout-sensitivity ablation.
//   - Edges are created and destroyed only by observed writes, frees
//     and reallocs: a pointer whose referent is freed silently loses
//     its edge, and a recycled address does not resurrect old edges.
package logger

import (
	"fmt"

	"heapmd/internal/addrindex"
	"heapmd/internal/callstack"
	"heapmd/internal/event"
	"heapmd/internal/health"
	"heapmd/internal/heapgraph"
	"heapmd/internal/metrics"
)

// Granularity selects how heap-graph vertices map onto heap memory
// (paper Figure 3).
type Granularity int

const (
	// ObjectGranularity makes each allocated object one vertex; all
	// pointers between two objects collapse onto multi-edges between
	// their vertices. This is the paper's default: it requires no
	// type information and is insensitive to field layout.
	ObjectGranularity Granularity = iota
	// FieldGranularity makes each word of each object a vertex. The
	// resulting metrics are sensitive to field layout within
	// objects, which is exactly the pathology the paper's Figure 3
	// illustrates; provided for the ablation experiment.
	FieldGranularity
)

func (g Granularity) String() string {
	if g == FieldGranularity {
		return "field"
	}
	return "object"
}

// DefaultFrequency is the paper's sampling frequency: one metric
// computation per 100,000 function entries.
const DefaultFrequency = 100000

// SimulationFrequency is the sampling frequency for the simulated
// workloads and trace replay (one metric computation per 16 function
// entries). It differs from the paper's frq = 1/100,000 because the
// paper instruments real x86 binaries that execute hundreds of
// millions of function entries per run, while the simulated workloads
// here generate only thousands; both settings yield a few hundred
// metric computation points per run, which is what the summarizer
// and detector actually need. Every simulation-side default
// (Session.NewRun, ReplayTrace, the workload harness) derives from
// this one constant so recorded and replayed reports stay comparable.
const SimulationFrequency = 16

// Options configures a Logger.
type Options struct {
	// Suite is the metric suite to evaluate; zero value means
	// metrics.DefaultSuite().
	Suite metrics.Suite
	// Frequency samples metrics once every Frequency function
	// entries. Zero means DefaultFrequency.
	Frequency uint64
	// Granularity selects object- or field-granularity graphs.
	Granularity Granularity
	// Symtab resolves function IDs for reporting; optional.
	Symtab *event.Symtab
	// MetricWorkers > 0 evaluates snapshot-mode extension metrics
	// (WCC/SCC) on that many worker goroutines instead of inline at
	// the metric computation point, so sampling never stalls event
	// ingestion for a whole-graph walk. Exact results are joined back
	// into the recorded snapshots by tick before Report returns;
	// observers see the newest completed values in the async slots
	// (carry-forward) rather than blocking. Ignored when no metric in
	// the suite needs async dispatch under the configured component
	// modes — with both Components and SCCs incremental there is
	// nothing to dispatch and no worker is started.
	MetricWorkers int
	// Connectivity selects how the Components metric obtains the weak
	// component count: recomputed from a snapshot walk (the zero
	// value, the original behavior), maintained incrementally under
	// mutation, or both with a divergence check (verify — an oracle
	// mode for tests). See heapgraph.ConnectivityMode.
	Connectivity heapgraph.ConnectivityMode
	// SCC selects the same for the SCCs metric's strong component
	// count, independently of Connectivity (the modes share spellings
	// and semantics).
	SCC heapgraph.ConnectivityMode
	// RebuildThreshold is the incremental trackers' dirty budget
	// between amortized rebuilds, shared by both trackers; zero
	// selects heapgraph.DefaultRebuildThreshold. Ignored in snapshot
	// modes.
	RebuildThreshold int
}

// SampleObserver is notified at every metric computation point with
// the fresh snapshot and a view of the current call stack. The online
// anomaly detector and the live plotter attach here.
type SampleObserver interface {
	Sample(snap metrics.Snapshot, stack *callstack.Tracker)
}

// objInfo is the logger's record of one live heap object. It is
// stored by value inside the address table's arena; pointers obtained
// from Stab/Get are valid until the table's next Insert or Remove.
type objInfo struct {
	vertex heapgraph.VertexID // object-granularity vertex
	base   uint64
	size   uint64
	// slots records which offsets within the object currently hold a
	// pointer, mapping each to the *target vertex* recorded when the
	// write was observed. At field granularity the key is the same
	// but the source vertex is the slot's own word vertex.
	slots slotTable
	// wordVertices holds per-word vertex IDs at field granularity;
	// nil at object granularity.
	wordVertices []heapgraph.VertexID
}

// Report is the raw metric report of one execution: the sequence of
// snapshots taken at metric computation points, plus identifying
// metadata. The metric summarizer (package model) consolidates
// Reports from training runs into a model.
type Report struct {
	Program   string             `json:"program"`
	Input     string             `json:"input"`
	Version   int                `json:"version"`
	Suite     []string           `json:"suite"` // metric names, in order
	Snapshots []metrics.Snapshot `json:"snapshots"`
	// FnEntries is the total number of function entries observed.
	FnEntries uint64 `json:"fn_entries"`
	// Events is the total number of events consumed.
	Events uint64 `json:"events"`
	// Health tallies instrumentation the logger observed but could
	// not apply to the heap image — double frees, wild stores and
	// friends. These drops are bug evidence in their own right; the
	// detector raises InstrumentationAnomaly findings from them.
	Health health.Counters `json:"health"`
}

// Series extracts the value series of the named metric from the
// report, or nil if absent.
func (r *Report) Series(id metrics.ID) []float64 {
	idx := -1
	for i, name := range r.Suite {
		if name == id.String() {
			idx = i
			break
		}
	}
	if idx < 0 {
		return nil
	}
	// Skip snapshots narrower than the suite (a report whose snapshot
	// rows predate a suite extension) instead of indexing out of range.
	out := make([]float64, 0, len(r.Snapshots))
	for _, s := range r.Snapshots {
		if idx >= len(s.Values) {
			continue
		}
		out = append(out, s.Values[idx])
	}
	return out
}

// Logger consumes events and produces a Report. It implements
// event.Sink. A Logger is single-goroutine; to feed it from several
// producers, put a Pipeline in front of it.
type Logger struct {
	opts  Options
	suite metrics.Suite
	async *metrics.Async // non-nil when MetricWorkers > 0 and the suite needs it

	graph   *heapgraph.Graph
	objects *addrindex.Table[objInfo]
	stack   *callstack.Tracker

	vertexSeq uint64 // vertex ID generator (generation counter)
	fnEntries uint64
	events    uint64
	tick      uint64 // metric computation points taken so far

	// freed remembers base addresses that were live and then freed
	// (and not since recycled), so a miss in onFree can be
	// classified as a double free rather than a wild free.
	freed  map[uint64]struct{}
	health health.Counters

	snaps       []metrics.Snapshot
	observers   []SampleObserver
	quarantined []SampleObserver

	program string
	input   string
	version int
}

// New creates a Logger.
func New(opts Options) *Logger {
	if opts.Frequency == 0 {
		opts.Frequency = DefaultFrequency
	}
	if opts.Suite.Len() == 0 {
		opts.Suite = metrics.DefaultSuite()
	}
	l := &Logger{
		opts:    opts,
		suite:   opts.Suite,
		graph:   heapgraph.New(),
		objects: addrindex.New[objInfo](),
		stack:   callstack.NewTracker(),
		freed:   make(map[uint64]struct{}),
	}
	l.graph.SetConnectivity(opts.Connectivity, opts.RebuildThreshold)
	l.graph.SetSCC(opts.SCC, opts.RebuildThreshold)
	// Async machinery exists for snapshot-mode component walks only:
	// a suite whose component metrics are all incremental (or absent)
	// computes every sample inline and skips the workers entirely.
	if opts.MetricWorkers > 0 && opts.Suite.NeedsAsync(opts.Connectivity, opts.SCC) {
		l.async = metrics.NewAsync(opts.Suite, opts.MetricWorkers)
	}
	return l
}

// SetRun records identifying metadata copied into the Report.
func (l *Logger) SetRun(program, input string, version int) {
	l.program, l.input, l.version = program, input, version
}

// Observe registers a sample observer.
func (l *Logger) Observe(o SampleObserver) { l.observers = append(l.observers, o) }

// Graph exposes the live heap-graph image (read-only by convention);
// tests and diagnostic tools use it.
func (l *Logger) Graph() *heapgraph.Graph { return l.graph }

// Stack exposes the live call-stack tracker.
func (l *Logger) Stack() *callstack.Tracker { return l.stack }

// Suite returns the metric suite in use.
func (l *Logger) Suite() metrics.Suite { return l.suite }

// Health exposes the logger's instrumentation-health counters. The
// returned pointer is live: trace ingestion uses it to record salvage
// gaps, and the counters are copied into the Report.
func (l *Logger) Health() *health.Counters { return &l.health }

// Quarantined returns the observers removed after panicking.
func (l *Logger) Quarantined() []SampleObserver { return l.quarantined }

// Emit implements event.Sink.
func (l *Logger) Emit(e event.Event) {
	l.events++
	switch e.Type {
	case event.Alloc:
		l.onAlloc(e.Addr, e.Size)
	case event.Free:
		l.onFree(e.Addr)
	case event.Realloc:
		l.onRealloc(e.Addr, e.Value, e.Size)
	case event.Store:
		l.onStore(e.Addr, e.Value)
	case event.Load:
		// Loads do not change the heap-graph.
	case event.Enter:
		l.stack.Enter(e.Fn)
		l.fnEntries++
		if l.fnEntries%l.opts.Frequency == 0 {
			l.sample()
		}
	case event.Leave:
		l.stack.Leave()
	default:
		// Unknown type byte: version skew or a damaged trace that
		// still checksummed (v1 has no checksums at all). Count it;
		// a spike means the stream itself is suspect.
		l.health.UnknownEvents++
	}
}

// EmitBatch implements event.BatchSink: one devirtualized dispatch per
// frame of replayed events instead of one interface call per event.
// The batch slice is borrowed (see event.BatchSink) and fully consumed
// before return.
func (l *Logger) EmitBatch(batch []event.Event) {
	l.applyBatch(batch, nil)
}

// applyBatch is the batch fast path shared by EmitBatch (res == nil)
// and the ingest mutator (res carries per-event speculative
// resolutions). Relative to per-event Emit it hoists the bookkeeping
// out of the inner loop: the event counter becomes one add per batch,
// and the Frequency modulo on every Enter becomes a countdown
// re-armed only at sampling points. Event semantics and ordering are
// identical to Emit called in a loop.
func (l *Logger) applyBatch(batch []event.Event, res []resolution) (hits, fallbacks uint64) {
	l.events += uint64(len(batch))
	frq := l.opts.Frequency
	toNext := frq - l.fnEntries%frq
	for i := range batch {
		e := &batch[i]
		switch e.Type {
		case event.Store:
			if res != nil {
				if r := &res[i]; l.acceptResolution(r, e.Addr, e.Value) {
					l.onStoreResolved(e.Addr, e.Value, r.src, r.tgt)
					hits++
					continue
				}
				fallbacks++
			}
			l.onStore(e.Addr, e.Value)
		case event.Enter:
			l.stack.Enter(e.Fn)
			l.fnEntries++
			if toNext--; toNext == 0 {
				l.sample()
				toNext = frq
			}
		case event.Leave:
			l.stack.Leave()
		case event.Alloc:
			l.onAlloc(e.Addr, e.Size)
		case event.Free:
			l.onFree(e.Addr)
		case event.Realloc:
			l.onRealloc(e.Addr, e.Value, e.Size)
		case event.Load:
			// Loads do not change the heap-graph.
		default:
			l.health.UnknownEvents++
		}
	}
	return hits, fallbacks
}

func (l *Logger) newVertex() heapgraph.VertexID {
	l.vertexSeq++
	return heapgraph.VertexID(l.vertexSeq)
}

func (l *Logger) onAlloc(base, size uint64) {
	info := objInfo{base: base, size: size}
	if l.opts.Granularity == FieldGranularity {
		nWords := size / 8
		info.wordVertices = make([]heapgraph.VertexID, nWords)
		for i := range info.wordVertices {
			v := l.newVertex()
			info.wordVertices[i] = v
			l.graph.AddVertex(v)
		}
	} else {
		info.vertex = l.newVertex()
		l.graph.AddVertex(info.vertex)
	}
	l.objects.Insert(base, size, info)
	delete(l.freed, base) // address recycled: a future free is legitimate
}

func (l *Logger) onFree(base uint64) {
	info, ok := l.objects.Remove(base)
	if !ok {
		// Nothing in the image — but that absence is evidence.
		if _, was := l.freed[base]; was {
			l.health.DoubleFrees++
		} else {
			l.health.WildFrees++
		}
		return
	}
	l.freed[base] = struct{}{}
	if info.wordVertices != nil {
		for _, v := range info.wordVertices {
			l.graph.RemoveVertex(v)
		}
	} else {
		l.graph.RemoveVertex(info.vertex)
	}
}

func (l *Logger) onRealloc(oldBase, newBase, newSize uint64) {
	info, ok := l.objects.Remove(oldBase)
	if !ok {
		// Realloc of a freed, never-allocated or interior address.
		l.health.BadReallocs++
		return
	}
	if newBase != oldBase {
		l.freed[oldBase] = struct{}{} // the old placement is released
	}
	delete(l.freed, newBase)
	if info.wordVertices != nil {
		l.reallocField(&info, newBase, newSize)
		return
	}
	// Object granularity: the vertex survives the move; slots beyond
	// the new size lose their outgoing edges. Slot keys are offsets,
	// so the move itself rewrites nothing.
	info.slots.resize(newSize, func(_ uint64, target heapgraph.VertexID) {
		l.graph.RemoveEdge(info.vertex, target)
	})
	info.base, info.size = newBase, newSize
	l.objects.Insert(newBase, newSize, info)
}

func (l *Logger) reallocField(info *objInfo, newBase, newSize uint64) {
	oldWords := uint64(len(info.wordVertices))
	newWords := newSize / 8
	// Shrink: drop vertices past the end (their edges die with them).
	for i := newWords; i < oldWords; i++ {
		l.graph.RemoveVertex(info.wordVertices[i])
	}
	wv := make([]heapgraph.VertexID, newWords)
	copy(wv, info.wordVertices[:min(oldWords, newWords)])
	// Grow: fresh vertices for the new words.
	for i := oldWords; i < newWords; i++ {
		v := l.newVertex()
		wv[i] = v
		l.graph.AddVertex(v)
	}
	// Drop the slots whose source word vertex no longer exists — their
	// edges died with the vertices above, so no drop callback. The
	// cutoff is the surviving word span, not newSize: with a size not
	// a multiple of 8, a slot can sit below newSize but inside the
	// truncated tail word.
	info.slots.resize(newWords*8, nil)
	info.base, info.size, info.wordVertices = newBase, newSize, wv
	l.objects.Insert(newBase, newSize, *info)
}

// sourceVertex returns the vertex that an edge stored at offset off
// inside info originates from. The second return is false when the
// offset has no vertex — the tail bytes of a field-granularity object
// whose size is not a whole number of words.
func sourceVertex(info *objInfo, off uint64) (heapgraph.VertexID, bool) {
	if info.wordVertices != nil {
		if i := off / 8; i < uint64(len(info.wordVertices)) {
			return info.wordVertices[i], true
		}
		return 0, false
	}
	return info.vertex, true
}

// targetVertex resolves a stored word to a vertex if it points into a
// live object.
func (l *Logger) targetVertex(value uint64) (heapgraph.VertexID, bool) {
	base, _, info, ok := l.objects.Stab(value)
	if !ok {
		return 0, false
	}
	if info.wordVertices != nil {
		if i := (value - base) / 8; i < uint64(len(info.wordVertices)) {
			return info.wordVertices[i], true
		}
		return 0, false
	}
	return info.vertex, true
}

func (l *Logger) onStore(addr, value uint64) {
	base, _, info, ok := l.objects.Stab(addr)
	if !ok {
		// Wild store: not part of the live heap image. The write is
		// dropped, but its existence is a corruption signal.
		l.health.WildStores++
		return
	}
	off := addr - base
	src, srcOK := sourceVertex(info, off)
	if !srcOK {
		// Inside a live object but past its last whole word — no
		// vertex can anchor the edge, so the write cannot be applied.
		l.health.WildStores++
		return
	}
	// Retire the slot's previous edge, if any.
	if oldTarget, had := info.slots.get(off); had {
		l.graph.RemoveEdge(src, oldTarget)
		info.slots.del(off)
	}
	// Install the new edge if the value points into a live object.
	// targetVertex stabs the table but never inserts or removes, so
	// the info pointer stays valid across it.
	if target, isPtr := l.targetVertex(value); isPtr {
		l.graph.AddEdge(src, target)
		info.slots.set(off, target, info.size)
	}
}

// sample computes a metric snapshot and dispatches it to observers.
// A panicking observer is quarantined — removed from the dispatch
// list and tallied in the health counters — rather than being allowed
// to kill the monitored run: HeapMD exists to watch buggy programs,
// and one faulty diagnostic attachment must not end the diagnosis.
func (l *Logger) sample() {
	l.tick++
	var snap metrics.Snapshot
	if l.async != nil {
		// Workers overwrite the recorded snapshot's expensive slots in
		// place when exact results land; observers get the stable copy
		// Compute took before dispatch, so a retained slice never
		// mutates under them.
		var observed []float64
		snap, observed = l.async.Compute(l.graph, l.tick)
		l.snaps = append(l.snaps, snap)
		snap.Values = observed
	} else {
		snap = l.suite.Compute(l.graph, l.tick)
		l.snaps = append(l.snaps, snap)
	}
	for i := 0; i < len(l.observers); i++ {
		if l.dispatch(l.observers[i], snap) {
			continue
		}
		l.health.ObserverPanics++
		l.quarantined = append(l.quarantined, l.observers[i])
		l.observers = append(l.observers[:i], l.observers[i+1:]...)
		i--
	}
}

// dispatch delivers one sample to one observer, converting a panic
// into a false return.
func (l *Logger) dispatch(o SampleObserver, snap metrics.Snapshot) (ok bool) {
	defer func() {
		if recover() != nil {
			ok = false
		}
	}()
	o.Sample(snap, l.stack)
	return true
}

// Ticks returns the number of metric computation points sampled.
func (l *Logger) Ticks() uint64 { return l.tick }

// Join blocks until every in-flight asynchronous metric computation
// has written its exact results into the recorded snapshots. No-op
// without MetricWorkers.
func (l *Logger) Join() {
	if l.async != nil {
		l.async.Wait()
	}
}

// DrainMetrics joins outstanding asynchronous metric work and stops
// the metric workers. Call it when the logger is done ingesting (the
// Pipeline does this in Close); the logger remains usable, but further
// samples evaluate expensive metrics inline.
func (l *Logger) DrainMetrics() {
	if l.async != nil {
		l.async.Close()
		l.async = nil
	}
}

// Report finalizes and returns the metric report for the run.
func (l *Logger) Report() *Report {
	l.Join()
	names := make([]string, l.suite.Len())
	for i, id := range l.suite.IDs() {
		names[i] = id.String()
	}
	return &Report{
		Program:   l.program,
		Input:     l.input,
		Version:   l.version,
		Suite:     names,
		Snapshots: l.snaps,
		FnEntries: l.fnEntries,
		Events:    l.events,
		Health:    l.health,
	}
}

// String summarizes logger state.
func (l *Logger) String() string {
	return fmt.Sprintf("logger{gran=%s frq=%d ticks=%d %s}",
		l.opts.Granularity, l.opts.Frequency, l.tick, l.graph)
}
