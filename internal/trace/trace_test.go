package trace

import (
	"bytes"
	"errors"
	"testing"
	"testing/quick"

	"heapmd/internal/event"
	"heapmd/internal/heap"
	"heapmd/internal/logger"
)

// seekBuffer adapts bytes.Reader construction for replay.
func replayBytes(t *testing.T, data []byte, sink event.Sink) (*event.Symtab, uint64, error) {
	t.Helper()
	return Replay(bytes.NewReader(data), sink)
}

func TestRoundTripEmpty(t *testing.T) {
	var buf bytes.Buffer
	w, err := NewWriter(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Close(event.NewSymtab()); err != nil {
		t.Fatal(err)
	}
	var c event.Counter
	sym, n, err := replayBytes(t, buf.Bytes(), &c)
	if err != nil {
		t.Fatal(err)
	}
	if n != 0 || c.Total != 0 || sym.Len() != 0 {
		t.Errorf("empty trace replay: n=%d total=%d syms=%d", n, c.Total, sym.Len())
	}
}

func TestRoundTripEvents(t *testing.T) {
	var buf bytes.Buffer
	w, err := NewWriter(&buf)
	if err != nil {
		t.Fatal(err)
	}
	sym := event.NewSymtab()
	f1 := sym.Intern("alpha")
	f2 := sym.Intern("beta")
	in := []event.Event{
		{Type: event.Enter, Fn: f1},
		{Type: event.Alloc, Fn: f1, Addr: 0x1000, Size: 32},
		{Type: event.Store, Fn: f2, Addr: 0x1008, Value: 0x2000, Old: 7},
		{Type: event.Load, Fn: f2, Addr: 0x1008, Value: 0x2000},
		{Type: event.Realloc, Addr: 0x1000, Value: 0x3000, Size: 64},
		{Type: event.Free, Addr: 0x3000, Size: 64},
		{Type: event.Leave},
	}
	for _, e := range in {
		w.Emit(e)
	}
	if w.Events() != uint64(len(in)) {
		t.Fatalf("Events = %d, want %d", w.Events(), len(in))
	}
	if err := w.Close(sym); err != nil {
		t.Fatal(err)
	}

	var got []event.Event
	gotSym, n, err := replayBytes(t, buf.Bytes(), event.SinkFunc(func(e event.Event) {
		got = append(got, e)
	}))
	if err != nil {
		t.Fatal(err)
	}
	if n != uint64(len(in)) || len(got) != len(in) {
		t.Fatalf("replayed %d events, want %d", n, len(in))
	}
	for i := range in {
		if got[i] != in[i] {
			t.Errorf("event %d = %+v, want %+v", i, got[i], in[i])
		}
	}
	if gotSym.Name(f1) != "alpha" || gotSym.Name(f2) != "beta" {
		t.Error("symtab did not round-trip")
	}
}

func TestRoundTripProperty(t *testing.T) {
	f := func(raw []struct {
		T    uint8
		Fn   uint16
		A, V uint64
	}) bool {
		var buf bytes.Buffer
		w, err := NewWriter(&buf)
		if err != nil {
			return false
		}
		var in []event.Event
		for _, r := range raw {
			e := event.Event{Type: event.Type(r.T % 7), Fn: event.FnID(r.Fn), Addr: r.A, Value: r.V}
			in = append(in, e)
			w.Emit(e)
		}
		if err := w.Close(nil); err != nil {
			return false
		}
		var got []event.Event
		_, n, err := Replay(bytes.NewReader(buf.Bytes()), event.SinkFunc(func(e event.Event) {
			got = append(got, e)
		}))
		if err != nil || n != uint64(len(in)) {
			return false
		}
		for i := range in {
			if got[i] != in[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestCorruptHeader(t *testing.T) {
	cases := map[string][]byte{
		"empty":     {},
		"short":     {'H', 'M'},
		"bad magic": []byte("XXXXYYYYZZZZZZZZZZZZZZZZZZZZZZZZ"),
	}
	for name, data := range cases {
		t.Run(name, func(t *testing.T) {
			_, _, err := Replay(bytes.NewReader(data), event.SinkFunc(func(event.Event) {}))
			if !errors.Is(err, ErrCorrupt) {
				t.Errorf("err = %v, want ErrCorrupt", err)
			}
		})
	}
}

func TestCorruptTruncatedTrailer(t *testing.T) {
	var buf bytes.Buffer
	w, err := NewWriter(&buf)
	if err != nil {
		t.Fatal(err)
	}
	w.Emit(event.Event{Type: event.Enter, Fn: 1})
	if err := w.Close(nil); err != nil {
		t.Fatal(err)
	}
	data := buf.Bytes()
	// Chop off the trailer.
	_, _, errReplay := Replay(bytes.NewReader(data[:len(data)-8]), event.SinkFunc(func(event.Event) {}))
	if !errors.Is(errReplay, ErrCorrupt) {
		t.Errorf("truncated trailer err = %v, want ErrCorrupt", errReplay)
	}
}

func TestVersionMismatch(t *testing.T) {
	var buf bytes.Buffer
	w, err := NewWriter(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Close(nil); err != nil {
		t.Fatal(err)
	}
	data := buf.Bytes()
	data[4] = 99 // bump version
	_, _, errReplay := Replay(bytes.NewReader(data), event.SinkFunc(func(event.Event) {}))
	if errReplay == nil {
		t.Fatal("version mismatch not detected")
	}
}

// TestOfflinePipeline exercises the paper's post-mortem mode: record a
// real simulated execution to a trace, then replay it into a fresh
// logger and check that the reconstructed heap-graph matches the live
// one.
func TestOfflinePipeline(t *testing.T) {
	var buf bytes.Buffer
	w, err := NewWriter(&buf)
	if err != nil {
		t.Fatal(err)
	}
	sym := event.NewSymtab()

	h := heap.New()
	live := logger.New(logger.Options{Frequency: 2})
	h.Subscribe(live)
	h.Subscribe(w)

	// Simulated program: build a 100-node list, free every third
	// node, with function-entry events interleaved.
	enter := func(name string) {
		e := event.Event{Type: event.Enter, Fn: sym.Intern(name)}
		live.Emit(e)
		w.Emit(e)
	}
	var nodes []uint64
	var prev uint64
	for i := 0; i < 100; i++ {
		enter("build")
		a, err := h.Alloc(16)
		if err != nil {
			t.Fatal(err)
		}
		if prev != 0 {
			if err := h.Store(prev+8, a); err != nil {
				t.Fatal(err)
			}
		}
		prev = a
		nodes = append(nodes, a)
	}
	for i := 0; i < len(nodes); i += 3 {
		enter("teardown")
		if err := h.Free(nodes[i]); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Close(sym); err != nil {
		t.Fatal(err)
	}

	replayed := logger.New(logger.Options{Frequency: 2})
	gotSym, n, err := Replay(bytes.NewReader(buf.Bytes()), replayed)
	if err != nil {
		t.Fatal(err)
	}
	if n == 0 {
		t.Fatal("no events replayed")
	}
	if gotSym.Len() != 2 {
		t.Errorf("symtab len = %d, want 2", gotSym.Len())
	}

	lg, rg := live.Graph(), replayed.Graph()
	if lg.NumVertices() != rg.NumVertices() || lg.NumEdges() != rg.NumEdges() {
		t.Fatalf("replayed graph V=%d E=%d, live V=%d E=%d",
			rg.NumVertices(), rg.NumEdges(), lg.NumVertices(), lg.NumEdges())
	}
	for d := 0; d <= 2; d++ {
		if lg.CountInDegree(d) != rg.CountInDegree(d) || lg.CountOutDegree(d) != rg.CountOutDegree(d) {
			t.Errorf("degree-%d histograms diverge", d)
		}
	}
	if live.Ticks() != replayed.Ticks() {
		t.Errorf("ticks: live %d, replayed %d", live.Ticks(), replayed.Ticks())
	}
}

// countingWriter tallies bytes without retaining them, so the write
// benchmark measures encoding cost and size, not buffer management.
type countingWriter struct{ n int64 }

func (w *countingWriter) Write(p []byte) (int, error) {
	w.n += int64(len(p))
	return len(p), nil
}

// BenchmarkWriterEmit measures the per-event cost and storage density
// of the emit path across formats. The bytes/event metric is what the
// CI trace-size gate budgets; allocs/op must stay flat (the encode
// buffers are reused per frame, gated by TestWriterEmitAllocs).
func BenchmarkWriterEmit(b *testing.B) {
	evs := v3TestEvents(DefaultBatchRecords)
	for _, tc := range []struct {
		name string
		opts WriterOptions
	}{
		{"v2", WriterOptions{Version: Version}},
		{"v3", WriterOptions{Version: VersionV3}},
		{"v3-flate", WriterOptions{Version: VersionV3, Compress: true}},
		{"v3-workers", WriterOptions{Version: VersionV3, Workers: 2}},
		{"v3-flate-workers", WriterOptions{Version: VersionV3, Compress: true, Workers: 2}},
	} {
		b.Run(tc.name, func(b *testing.B) {
			var cw countingWriter
			w, err := NewWriterWith(&cw, tc.opts)
			if err != nil {
				b.Fatal(err)
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				w.Emit(evs[i%len(evs)])
			}
			b.StopTimer()
			if err := w.Close(nil); err != nil {
				b.Fatal(err)
			}
			b.ReportMetric(float64(cw.n)/float64(b.N), "bytes/event")
		})
	}
}

func BenchmarkReplay(b *testing.B) {
	var buf bytes.Buffer
	w, err := NewWriter(&buf)
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < 100000; i++ {
		w.Emit(event.Event{Type: event.Store, Fn: 1, Addr: uint64(i), Value: uint64(i * 2)})
	}
	if err := w.Close(nil); err != nil {
		b.Fatal(err)
	}
	data := buf.Bytes()
	sink := event.SinkFunc(func(event.Event) {})
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := Replay(bytes.NewReader(data), sink); err != nil {
			b.Fatal(err)
		}
	}
}
