// Parallel frame-encode pipeline: the WriterOptions.Workers ≥ 1 write
// path (v3 only — that is the format whose encode cost is real:
// columnar delta encoding plus optional per-frame flate).
//
// The caller's Emit path only appends events to the current batch.
// When a batch seals (DefaultBatchRecords events, or Flush/Close), it
// is handed to an encode pool; each worker owns its columnar scratch,
// compression buffer, and flate state, encodes the batch into a frame
// payload, computes the frame CRC, and passes the finished payload to
// a single writer goroutine that restores sequence order and performs
// all file I/O. This is the pigz shape: compression fans out, bytes
// land in order.
//
// Invariants:
//
//   - Output is byte-identical to the synchronous writer at any worker
//     count: encoding is deterministic per batch (each worker resets
//     its flate state per frame, exactly like the serial path), the
//     compress-only-if-smaller choice depends only on the batch, and
//     the writer goroutine resequences frames into submission order.
//     Symtab checkpoints and the end frame are encoded on the caller
//     at seal time and submitted with their own sequence numbers, so
//     interleaving matches the serial writer frame for frame.
//   - Every submission (event batch, control frame, flush/close
//     marker) first acquires a slot from a depth-sized window, and the
//     writer goroutine releases the slot when that sequence number is
//     written. In-flight sequence numbers therefore span less than
//     depth, a depth-sized resequencing ring suffices, and no stage
//     can deadlock: the payload-buffer pool also holds depth buffers,
//     and at most depth-1 are owned by frames other than the one the
//     writer is waiting for.
//   - Errors are sticky, like the synchronous writer's: the writer
//     goroutine records the first failure, keeps draining (so the
//     producer never blocks), and surfaces it on the next Flush or
//     Close acknowledgment.
//   - Close submits the final symtab, the end frame, and a close
//     marker, then waits for the marker's ack. The writer goroutine
//     processes the marker only after every earlier frame was written,
//     so by then the workers are idle and closing the work channel
//     tears everything down; close waits for all goroutines to exit.
package trace

import (
	"bufio"
	"bytes"
	"encoding/binary"
	"hash/crc32"
	"sync"

	"heapmd/internal/event"
)

// Marker kinds processed by the writer goroutine. Real frame kinds
// occupy 1..3; markers sit far above and never hit the wire.
const (
	wireFlush byte = 0xfe
	wireClose byte = 0xff
)

// encJob is one sealed event batch awaiting encode.
type encJob struct {
	seq uint64
	evs *event.Batch
}

// wireMsg is one ordered unit for the writer goroutine: an encoded
// frame (payload + CRC), or a flush/close marker carrying an ack.
type wireMsg struct {
	seq     uint64
	kind    byte
	payload []byte
	scratch []byte // payload arena to recycle after writing (event frames)
	crc     uint32
	err     error
	ack     chan error
}

// encodePipeline runs the encode pool and the ordered writer.
// Submission methods are caller-side only; the Writer serializes them.
type encodePipeline struct {
	bw       *bufio.Writer
	compress bool

	slots     chan struct{} // sequence-window semaphore, cap depth
	freeBatch chan *event.Batch
	freeEnc   chan []byte
	work      chan encJob
	out       chan wireMsg
	wg        sync.WaitGroup

	seq uint64     // next sequence number to assign (caller side)
	ack chan error // reused for flush/close acknowledgments

	depth int
}

func newEncodePipeline(bw *bufio.Writer, compress bool, workers int) *encodePipeline {
	depth := 2*workers + 2
	p := &encodePipeline{
		bw:        bw,
		compress:  compress,
		slots:     make(chan struct{}, depth),
		freeBatch: make(chan *event.Batch, workers+2),
		freeEnc:   make(chan []byte, depth),
		work:      make(chan encJob, depth),
		out:       make(chan wireMsg, depth),
		ack:       make(chan error, 1),
		depth:     depth,
	}
	for i := 0; i < depth; i++ {
		p.slots <- struct{}{}
		p.freeEnc <- nil
	}
	for i := 0; i < workers+2; i++ {
		// Full-capacity batches up front: Emit never pays append
		// doubling, and the steady-state seal path allocates nothing.
		b := new(event.Batch)
		b.Grow(DefaultBatchRecords)
		b.Reset()
		p.freeBatch <- b
	}
	p.wg.Add(workers + 1)
	for i := 0; i < workers; i++ {
		go p.worker()
	}
	go p.writer()
	return p
}

// submitEvents hands a sealed batch to the encode pool and returns a
// recycled batch for the caller to keep filling.
func (p *encodePipeline) submitEvents(b *event.Batch) *event.Batch {
	<-p.slots
	p.work <- encJob{seq: p.seq, evs: b}
	p.seq++
	return <-p.freeBatch
}

// submitFrame sends a caller-encoded frame (symtab, end) in order.
func (p *encodePipeline) submitFrame(kind byte, payload []byte) {
	<-p.slots
	p.out <- wireMsg{seq: p.seq, kind: kind, payload: payload, crc: crc32.Checksum(payload, crcTable)}
	p.seq++
}

// barrier submits a flush or close marker and waits for the writer
// goroutine to reach it, returning the sticky error.
func (p *encodePipeline) barrier(kind byte) error {
	<-p.slots
	p.out <- wireMsg{seq: p.seq, kind: kind, ack: p.ack}
	p.seq++
	return <-p.ack
}

// flush waits until every submitted frame is written and the
// underlying writer is flushed.
func (p *encodePipeline) flush() error { return p.barrier(wireFlush) }

// close drains the pipeline, flushes, and tears down all goroutines.
// The pipeline is unusable afterwards.
func (p *encodePipeline) close() error {
	err := p.barrier(wireClose)
	close(p.work)
	p.wg.Wait()
	return err
}

// worker encodes sealed batches into frame payloads. Columnar scratch,
// compression buffer, and flate state are per-worker and reused, so
// steady-state encode allocates nothing.
func (p *encodePipeline) worker() {
	defer p.wg.Done()
	var enc []byte
	var comp bytes.Buffer
	var cdc flateCodec
	for job := range p.work {
		msg := wireMsg{seq: job.seq, kind: frameEvents}
		enc = encodeColumns(enc[:0], job.evs.Events())
		body := enc
		flags := codecRaw
		if p.compress {
			comp.Reset()
			if err := cdc.Compress(&comp, body); err != nil {
				msg.err = err
			} else if comp.Len() < len(body) {
				body = comp.Bytes()
				flags = cdc.ID()
			}
		}
		count := uint32(job.evs.Len())
		job.evs.Reset()
		p.freeBatch <- job.evs // pool-sized channel: never blocks
		if msg.err == nil {
			pb := <-p.freeEnc
			if pb == nil {
				pb = make([]byte, 0, 5+len(body))
			}
			pb = append(pb[:0], flags)
			var cnt [4]byte
			binary.LittleEndian.PutUint32(cnt[:], count)
			pb = append(pb, cnt[:]...)
			pb = append(pb, body...)
			msg.payload = pb
			msg.scratch = pb
			msg.crc = crc32.Checksum(pb, crcTable)
		}
		p.out <- msg
	}
}

// writer restores sequence order and performs all I/O. It records the
// first error and keeps draining so producers never block; it exits
// when the close marker's turn comes.
func (p *encodePipeline) writer() {
	defer p.wg.Done()
	ring := make([]wireMsg, p.depth)
	have := make([]bool, p.depth)
	var nextSeq uint64
	var hdr [frameHeaderSize]byte
	var err error
	for {
		m := <-p.out
		s := m.seq % uint64(p.depth)
		ring[s] = m
		have[s] = true
		for {
			slot := nextSeq % uint64(p.depth)
			if !have[slot] {
				break
			}
			m := ring[slot]
			ring[slot] = wireMsg{}
			have[slot] = false
			nextSeq++
			if err == nil && m.err != nil {
				err = m.err
			}
			switch m.kind {
			case wireFlush, wireClose:
				if err == nil {
					err = p.bw.Flush()
				}
				p.slots <- struct{}{}
				m.ack <- err
				if m.kind == wireClose {
					return
				}
			default:
				if err == nil {
					hdr[0] = m.kind
					binary.LittleEndian.PutUint32(hdr[1:], uint32(len(m.payload)))
					binary.LittleEndian.PutUint32(hdr[5:], m.crc)
					if _, werr := p.bw.Write(hdr[:]); werr != nil {
						err = werr
					} else if _, werr := p.bw.Write(m.payload); werr != nil {
						err = werr
					}
				}
				if m.scratch != nil {
					p.freeEnc <- m.scratch[:0]
				}
				p.slots <- struct{}{}
			}
		}
	}
}
