package trace

import (
	"bytes"
	"compress/flate"
	"io"
	"math/rand"
	"testing"
)

// inflateStdlib is the reference decoder: the stdlib flate reader
// with the codec's output bound. Returns the decoded bytes, or an
// error when the stream is malformed, truncated, or inflates past
// max. (The pre-PR8 codec wrapper used io.ReadFull, which conflated
// the decompressor's own io.ErrUnexpectedEOF — a truncated stream —
// with a stream that simply produced fewer than max bytes, silently
// accepting truncated input; the custom inflater follows the actual
// stdlib semantics and rejects it.)
func inflateStdlib(body []byte, max int) ([]byte, error) {
	fr := flate.NewReader(bytes.NewReader(body))
	dst := make([]byte, 0, max)
	buf := make([]byte, 4096)
	for {
		n, err := fr.Read(buf)
		if len(dst)+n > max {
			return nil, errOversizedFrame
		}
		dst = append(dst, buf[:n]...)
		if err == io.EOF {
			return dst, nil
		}
		if err != nil {
			return nil, err
		}
	}
}

// inflateCustom runs the package inflater with the same contract.
func inflateCustom(body []byte, max int) ([]byte, error) {
	var c flateCodec
	return c.Decompress(nil, body, max)
}

// deflateLevel compresses payload at the given stdlib level.
func deflateLevel(t testing.TB, payload []byte, level int) []byte {
	t.Helper()
	var buf bytes.Buffer
	fw, err := flate.NewWriter(&buf, level)
	if err != nil {
		t.Fatalf("flate.NewWriter(level %d): %v", level, err)
	}
	if _, err := fw.Write(payload); err != nil {
		t.Fatalf("compress: %v", err)
	}
	if err := fw.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}
	return buf.Bytes()
}

// inflatePayloads builds a spread of payload shapes: empty, tiny,
// runny (RLE-like matches, distance 1), random (mostly literals),
// columnar-like (what v3 frames actually contain), and long repeats
// at varied distances (exercises overlapping and far copies).
func inflatePayloads(t testing.TB) map[string][]byte {
	t.Helper()
	rng := rand.New(rand.NewSource(42))
	random := make([]byte, 1<<16)
	rng.Read(random)
	runny := make([]byte, 1<<16)
	for i := range runny {
		runny[i] = byte(i / 997)
	}
	periodic := make([]byte, 1<<16)
	for i := range periodic {
		periodic[i] = byte(i % 313)
	}
	evs := v3TestEvents(4096)
	columnar := encodeColumns(nil, evs)
	mixed := make([]byte, 0, 1<<15)
	for len(mixed) < 1<<15 {
		n := 1 + rng.Intn(64)
		if rng.Intn(2) == 0 {
			b := byte(rng.Intn(256))
			for i := 0; i < n; i++ {
				mixed = append(mixed, b)
			}
		} else {
			for i := 0; i < n; i++ {
				mixed = append(mixed, byte(rng.Intn(256)))
			}
		}
	}
	return map[string][]byte{
		"empty":    {},
		"one":      {0x5a},
		"tiny":     []byte("abcabcabcabc"),
		"random":   random,
		"runny":    runny,
		"periodic": periodic,
		"columnar": columnar,
		"mixed":    mixed,
	}
}

// TestInflateDifferential round-trips every payload shape through
// every stdlib compression level and demands byte-identical output
// from the custom inflater, at a loose bound, an exact-size bound,
// and a too-small bound (which must yield errOversizedFrame).
func TestInflateDifferential(t *testing.T) {
	levels := []int{flate.NoCompression, flate.BestSpeed, 6, flate.BestCompression, flate.HuffmanOnly}
	for name, payload := range inflatePayloads(t) {
		for _, level := range levels {
			body := deflateLevel(t, payload, level)
			max := len(payload) + 64
			want, wantErr := inflateStdlib(body, max)
			got, gotErr := inflateCustom(body, max)
			if wantErr != nil || gotErr != nil {
				t.Fatalf("%s/level %d: clean stream rejected: stdlib err %v, custom err %v", name, level, wantErr, gotErr)
			}
			if !bytes.Equal(want, got) {
				t.Fatalf("%s/level %d: output mismatch: stdlib %d bytes, custom %d bytes", name, level, len(want), len(got))
			}
			if !bytes.Equal(got, payload) {
				t.Fatalf("%s/level %d: round-trip mismatch", name, level)
			}
			// Exact bound: produces exactly len(payload) bytes, no more.
			if got, err := inflateCustom(body, len(payload)); err != nil {
				t.Fatalf("%s/level %d: exact-size bound failed: %v", name, level, err)
			} else if !bytes.Equal(got, payload) {
				t.Fatalf("%s/level %d: exact-size output mismatch", name, level)
			}
			// Undersized bound: the oversize guard must fire, as it does
			// on the stdlib path.
			if len(payload) > 0 {
				if _, err := inflateCustom(body, len(payload)-1); err != errOversizedFrame {
					t.Fatalf("%s/level %d: undersized bound: got err %v, want errOversizedFrame", name, level, err)
				}
				if _, err := inflateStdlib(body, len(payload)-1); err != errOversizedFrame {
					t.Fatalf("%s/level %d: stdlib undersized bound: got err %v", name, level, err)
				}
			}
		}
	}
}

// TestInflateReuse decodes many streams through one codec instance in
// varied order — reused tables and scratch must not leak state between
// streams.
func TestInflateReuse(t *testing.T) {
	var c flateCodec
	payloads := inflatePayloads(t)
	names := make([]string, 0, len(payloads))
	for name := range payloads {
		names = append(names, name)
	}
	rng := rand.New(rand.NewSource(7))
	var dst []byte
	for i := 0; i < 64; i++ {
		name := names[rng.Intn(len(names))]
		payload := payloads[name]
		level := []int{flate.NoCompression, flate.BestSpeed, 6, flate.HuffmanOnly}[rng.Intn(4)]
		body := deflateLevel(t, payload, level)
		got, err := c.Decompress(dst, body, len(payload)+64)
		if err != nil {
			t.Fatalf("iter %d (%s, level %d): %v", i, name, level, err)
		}
		if !bytes.Equal(got, payload) {
			t.Fatalf("iter %d (%s, level %d): output mismatch", i, name, level)
		}
		dst = got[:0]
	}
}

// TestInflateTruncation cuts a valid stream at every byte offset; the
// custom decoder must reject every cut the stdlib rejects and may
// never succeed with different bytes. (A truncated DEFLATE stream can
// still be "complete" if the cut lands after the final block's EOB —
// both decoders must then agree on the output.)
func TestInflateTruncation(t *testing.T) {
	payloads := inflatePayloads(t)
	for _, name := range []string{"tiny", "columnar", "mixed"} {
		payload := payloads[name]
		for _, level := range []int{flate.NoCompression, flate.BestSpeed, 6} {
			body := deflateLevel(t, payload, level)
			max := len(payload) + 64
			for cut := 0; cut < len(body); cut++ {
				want, wantErr := inflateStdlib(body[:cut], max)
				got, gotErr := inflateCustom(body[:cut], max)
				if (wantErr == nil) != (gotErr == nil) {
					t.Fatalf("%s/level %d cut %d: stdlib err %v, custom err %v", name, level, cut, wantErr, gotErr)
				}
				if wantErr == nil && !bytes.Equal(want, got) {
					t.Fatalf("%s/level %d cut %d: output mismatch on accepted truncation", name, level, cut)
				}
			}
		}
	}
}

// TestInflateBitFlips flips every bit of a small stream and checks
// accept/reject + output agreement with the stdlib. Most flips are
// caught as corruption; some yield a different valid stream — then
// both decoders must produce identical bytes.
func TestInflateBitFlips(t *testing.T) {
	payload := []byte("the quick brown fox jumps over the lazy dog, twice over: the quick brown fox")
	for _, level := range []int{flate.NoCompression, flate.BestSpeed, 6} {
		body := deflateLevel(t, payload, level)
		max := len(payload) + 64
		for i := 0; i < len(body)*8; i++ {
			mut := bytes.Clone(body)
			mut[i/8] ^= 1 << (i % 8)
			want, wantErr := inflateStdlib(mut, max)
			got, gotErr := inflateCustom(mut, max)
			if (wantErr == nil) != (gotErr == nil) {
				t.Fatalf("level %d bit %d: stdlib err %v, custom err %v", level, i, wantErr, gotErr)
			}
			if wantErr == nil && !bytes.Equal(want, got) {
				t.Fatalf("level %d bit %d: output mismatch", level, i)
			}
		}
	}
}

// TestInflateTrailingGarbage: bytes after the final block are ignored
// by the stdlib reader and must be ignored here too (the frame body
// length is authoritative on this format, but the decoders must still
// agree).
func TestInflateTrailingGarbage(t *testing.T) {
	payload := []byte("hello hello hello hello")
	body := deflateLevel(t, payload, flate.BestSpeed)
	body = append(body, 0xde, 0xad, 0xbe, 0xef)
	got, err := inflateCustom(body, len(payload)+16)
	if err != nil {
		t.Fatalf("trailing garbage rejected: %v", err)
	}
	if !bytes.Equal(got, payload) {
		t.Fatalf("output mismatch with trailing garbage")
	}
}

// TestInflateRawRejected feeds raw (uncompressed) columnar bytes to
// the inflater — the exact shape of the "bad compressed body"
// structural corruption case in v3_test.go: a frame whose flags byte
// lies about the codec. It must not decode cleanly to the same bytes
// as the stdlib rejects.
func TestInflateRawRejected(t *testing.T) {
	body := encodeColumns(nil, v3TestEvents(512))
	max := len(body) + 64
	_, wantErr := inflateStdlib(body, max)
	_, gotErr := inflateCustom(body, max)
	if (wantErr == nil) != (gotErr == nil) {
		t.Fatalf("raw columnar body: stdlib err %v, custom err %v", wantErr, gotErr)
	}
}

// FuzzInflate drives arbitrary bytes through both decoders and
// requires them to agree on accept/reject and on every output byte.
func FuzzInflate(f *testing.F) {
	payloads := inflatePayloads(f)
	for _, name := range []string{"tiny", "columnar"} {
		for _, level := range []int{flate.NoCompression, flate.BestSpeed, 6, flate.HuffmanOnly} {
			f.Add(deflateLevel(f, payloads[name], level))
		}
	}
	f.Add([]byte{})
	f.Add([]byte{0x01, 0x00, 0x00, 0xff, 0xff}) // stored, n=0, final
	f.Add([]byte{0x03, 0x00})                   // fixed, EOB only
	f.Add([]byte{0xed, 0xfd, 0x01})             // dynamic header fragment
	f.Fuzz(func(t *testing.T, body []byte) {
		const max = 1 << 17
		want, wantErr := inflateStdlib(body, max)
		got, gotErr := inflateCustom(body, max)
		if (wantErr == nil) != (gotErr == nil) {
			t.Fatalf("accept/reject mismatch: stdlib err %v, custom err %v", wantErr, gotErr)
		}
		if wantErr == nil && !bytes.Equal(want, got) {
			t.Fatalf("output mismatch: stdlib %d bytes, custom %d bytes", len(want), len(got))
		}
	})
}
