// One-shot DEFLATE decoder with fully reusable state.
//
// The stdlib flate reader supports Resetter, but its Huffman table
// builder allocates link tables per *dynamic block*
// (huffmanDecoder.init's links [][]uint32) — on a flate-compressed v3
// trace that is ~84% of replay's allocations (1919 allocs per replay,
// O(frames), not O(decoders)). The trace codec has a much easier job
// than io.Reader-shaped flate: the whole compressed body is in memory
// (frames are CRC-checked before decoding) and the output bound is
// known (the frame's declared record count), so decoding can be a
// single pass over byte slices with zero steady-state allocations —
// table arenas, scratch arrays, and the output buffer all live on the
// inflater and are recycled across frames.
//
// Acceptance rules mirror compress/flate exactly where it matters for
// the differential oracle in inflate_test.go: the same complete-code /
// degenerate-code / empty-code rules for Huffman tables, the same
// header bounds (HLIT ≤ 286, HDIST ≤ 30, distance symbols ≥ 30
// rejected), matches never reaching before the output start, stored
// blocks validated via LEN/NLEN, and trailing input bytes after the
// final block ignored. A stream is either decoded to the identical
// bytes the stdlib produces or rejected; only the error values differ
// (everything maps to "bad compressed event frame" one level up).
package trace

import (
	"encoding/binary"
	"errors"
	"io"
	"math/bits"
	"sync"
)

// errInflate covers every malformed-stream condition: bad block type,
// bad Huffman code, invalid symbol, match before output start, LEN/
// NLEN mismatch, or truncation. The frame decoder folds it into its
// "bad compressed event frame" corruption report, so finer-grained
// values would be invisible anyway.
var errInflate = errors.New("trace: malformed deflate stream")

// bitReader reads LSB-first bits from an in-memory buffer through a
// 64-bit accumulator. Invariants: bits holds cnt valid bits (low
// first); bit positions ≥ cnt are zero or hold a consistent preview of
// in[pos:] (refilling ORs the same byte content at the same logical
// position, so stale high bits never conflict); in[pos] is the first
// byte not yet counted into the accumulator.
type bitReader struct {
	in   []byte
	pos  int
	bits uint64
	cnt  int
}

// fill tops the accumulator up to ≥ 56 valid bits (fewer only when the
// input is nearly exhausted). The fast path loads 8 bytes at once and
// advances pos by the bytes that fit entirely.
func (b *bitReader) fill() {
	if b.pos+8 <= len(b.in) {
		b.bits |= binary.LittleEndian.Uint64(b.in[b.pos:]) << uint(b.cnt&63)
		n := (63 - b.cnt) >> 3
		b.pos += n
		b.cnt += n << 3
		return
	}
	for b.cnt <= 55 && b.pos < len(b.in) {
		b.bits |= uint64(b.in[b.pos]) << uint(b.cnt)
		b.pos++
		b.cnt += 8
	}
}

// read consumes n ≤ 32 bits, failing with the stdlib's truncation
// error when the input cannot supply them.
func (b *bitReader) read(n int) (uint32, error) {
	if b.cnt < n {
		b.fill()
		if b.cnt < n {
			return 0, io.ErrUnexpectedEOF
		}
	}
	v := uint32(b.bits) & (1<<uint(n) - 1)
	b.bits >>= uint(n)
	b.cnt -= n
	return v, nil
}

// Huffman decode tables: a primary table indexed by the next
// huffTableBits input bits, with an arena of subtables for codes
// longer than that. Entries pack sym<<8 | codeLength; a primary entry
// with huffSubFlag set instead packs subFlag | arenaOffset<<8 |
// subtableBits, and the subtable entry carries the code's total
// length. Entry 0 (length 0) marks an invalid bit pattern — how the
// degenerate and empty codes stdlib accepts at build time fail at
// first use, exactly like decompressor.huffSym.
const (
	huffTableBits = 10
	huffSubFlag   = 1 << 31
	huffSubOffs   = 1<<23 - 1 // mask for the arena offset after >>8
)

type huffTable struct {
	bits    int    // primary index width (≤ huffTableBits)
	mask    uint32 // 1<<bits - 1
	primary []uint32
	sub     []uint32
	subw    []uint8 // build scratch: per-slot subtable width
}

func growU32(s []uint32, n int) []uint32 {
	if cap(s) < n {
		s = make([]uint32, n)
	}
	s = s[:n]
	clear(s)
	return s
}

// build constructs the decode table for the canonical code described
// by lengths (bits per symbol, 0 = absent), applying stdlib flate's
// acceptance rules: any complete code, the degenerate single-symbol
// length-1 code, and the empty code (which then fails on first read).
func (t *huffTable) build(lengths []int) bool {
	var count [16]int
	min, max := 0, 0
	for _, n := range lengths {
		if n == 0 {
			continue
		}
		if min == 0 || n < min {
			min = n
		}
		if n > max {
			max = n
		}
		count[n]++
	}
	if max == 0 {
		t.bits, t.mask = 0, 0
		t.primary = growU32(t.primary, 1)
		return true
	}

	code := 0
	var nextcode [16]int
	for i := min; i <= max; i++ {
		code <<= 1
		nextcode[i] = code
		code += count[i]
	}
	if code != 1<<uint(max) && !(code == 1 && max == 1) {
		return false
	}

	tb := max
	if tb > huffTableBits {
		tb = huffTableBits
	}
	t.bits = tb
	t.mask = uint32(1)<<uint(tb) - 1
	size := 1 << uint(tb)
	t.primary = growU32(t.primary, size)

	if max > tb {
		// First pass: each primary slot's subtable is as wide as the
		// longest code sharing that tb-bit prefix requires.
		if cap(t.subw) < size {
			t.subw = make([]uint8, size)
		}
		t.subw = t.subw[:size]
		clear(t.subw)
		nc := nextcode
		for _, n := range lengths {
			if n == 0 {
				continue
			}
			c := nc[n]
			nc[n]++
			if n <= tb {
				continue
			}
			rev := int(bits.Reverse16(uint16(c))) >> uint(16-n)
			if s := rev & int(t.mask); int(t.subw[s]) < n-tb {
				t.subw[s] = uint8(n - tb)
			}
		}
		off := 0
		for s, w := range t.subw {
			if w == 0 {
				continue
			}
			t.primary[s] = huffSubFlag | uint32(off)<<8 | uint32(w)
			off += 1 << uint(w)
		}
		t.sub = growU32(t.sub, off)
	}

	for sym, n := range lengths {
		if n == 0 {
			continue
		}
		c := nextcode[n]
		nextcode[n]++
		rev := int(bits.Reverse16(uint16(c))) >> uint(16-n)
		entry := uint32(sym)<<8 | uint32(n)
		if n <= tb {
			for off := rev; off < size; off += 1 << uint(n) {
				t.primary[off] = entry
			}
		} else {
			p := t.primary[rev&int(t.mask)]
			base := int(p>>8) & huffSubOffs
			w := int(p & 0xff)
			for off := rev >> uint(tb); off < 1<<uint(w); off += 1 << uint(n-tb) {
				t.sub[base+off] = entry
			}
		}
	}
	return true
}

// readSym decodes one symbol (non-hot path: the code-length code of a
// dynamic header). The hot block loop inlines the same logic.
func (b *bitReader) readSym(t *huffTable) (int, error) {
	if b.cnt < 15 {
		b.fill()
	}
	e := t.primary[uint32(b.bits)&t.mask]
	if e&huffSubFlag != 0 {
		e = t.sub[(int(e>>8)&huffSubOffs)+int(uint32(b.bits)>>uint(t.bits))&(1<<(e&0xff)-1)]
	}
	n := int(e & 0xff)
	if n == 0 || n > b.cnt {
		return 0, errInflate
	}
	b.bits >>= uint(n)
	b.cnt -= n
	return int(e >> 8), nil
}

// Length and distance symbol expansions, RFC 1951 §3.2.5. Symbol 257+i
// maps to base lenBase[i] plus lenExtra[i] extra bits; distance symbol
// i to distBase[i] plus distExtra[i].
var (
	lenBase = [29]uint16{
		3, 4, 5, 6, 7, 8, 9, 10, 11, 13, 15, 17, 19, 23, 27, 31,
		35, 43, 51, 59, 67, 83, 99, 115, 131, 163, 195, 227, 258,
	}
	lenExtra = [29]uint8{
		0, 0, 0, 0, 0, 0, 0, 0, 1, 1, 1, 1, 2, 2, 2, 2,
		3, 3, 3, 3, 4, 4, 4, 4, 5, 5, 5, 5, 0,
	}
	distBase = [30]uint16{
		1, 2, 3, 4, 5, 7, 9, 13, 17, 25, 33, 49, 65, 97, 129, 193,
		257, 385, 513, 769, 1025, 1537, 2049, 3073, 4097, 6145,
		8193, 12289, 16385, 24577,
	}
	distExtra = [30]uint8{
		0, 0, 0, 0, 1, 1, 2, 2, 3, 3, 4, 4, 5, 5, 6, 6,
		7, 7, 8, 8, 9, 9, 10, 10, 11, 11, 12, 12, 13, 13,
	}
)

// Fixed Huffman tables (RFC 1951 §3.2.6), built once and shared
// read-only by every inflater — including codec instances on parallel
// decode workers (sync.Once publishes the fully-built tables).
var (
	fixedOnce        sync.Once
	fixedLitTable    huffTable
	fixedDistTable   huffTable
	inflateCodeOrder = [19]int{16, 17, 18, 0, 8, 7, 9, 6, 10, 5, 11, 4, 12, 3, 13, 2, 14, 1, 15}
)

func fixedTables() (*huffTable, *huffTable) {
	fixedOnce.Do(func() {
		var lens [288]int
		for i := 0; i < 144; i++ {
			lens[i] = 8
		}
		for i := 144; i < 256; i++ {
			lens[i] = 9
		}
		for i := 256; i < 280; i++ {
			lens[i] = 7
		}
		for i := 280; i < 288; i++ {
			lens[i] = 8
		}
		fixedLitTable.build(lens[:])
		// All 32 five-bit distance codes get table entries; symbols 30
		// and 31 are rejected at use, like stdlib's dist switch.
		var dlens [32]int
		for i := range dlens {
			dlens[i] = 5
		}
		fixedDistTable.build(dlens[:])
	})
	return &fixedLitTable, &fixedDistTable
}

const (
	inflateMaxLit  = 286 // maxNumLit: HLIT bound and lit/len symbol bound
	inflateMaxDist = 30  // maxNumDist: HDIST bound and distance symbol bound
)

// inflater decodes one whole DEFLATE stream per call, reusing its
// tables and scratch across calls. Not goroutine-safe; each frame
// decoder / codec worker owns one.
type inflater struct {
	br   bitReader
	lit  huffTable // dynamic literal/length table
	dist huffTable // dynamic distance table
	cl   huffTable // code-length code table
	lens [inflateMaxLit + inflateMaxDist]int
}

// decompress decodes the stream in src into out, returning the number
// of bytes produced. A stream that would produce more than len(out)
// bytes fails with errOversizedFrame (len(out) is the caller's
// corruption bound, mirroring the stdlib path's read-past-max probe);
// exactly len(out) is fine. Input bytes after the final block are
// ignored, as the stdlib reader ignores them.
func (d *inflater) decompress(out, src []byte) (int, error) {
	d.br = bitReader{in: src}
	w := 0
	for {
		v, err := d.br.read(3)
		if err != nil {
			return w, err
		}
		final := v&1 != 0
		switch v >> 1 {
		case 0:
			w, err = d.storedBlock(out, w)
		case 1:
			lit, dist := fixedTables()
			w, err = d.huffmanBlock(out, w, lit, dist)
		case 2:
			if err = d.readHuffman(); err == nil {
				w, err = d.huffmanBlock(out, w, &d.lit, &d.dist)
			}
		default:
			err = errInflate
		}
		if err != nil {
			return w, err
		}
		if final {
			return w, nil
		}
	}
}

// storedBlock copies one uncompressed block. The accumulator's whole
// buffered bytes are returned to the input and the partial byte is
// discarded — the same alignment-bit discard as stdlib dataBlock.
func (d *inflater) storedBlock(out []byte, w int) (int, error) {
	b := &d.br
	b.pos -= b.cnt >> 3
	b.bits, b.cnt = 0, 0
	if b.pos+4 > len(b.in) {
		return w, io.ErrUnexpectedEOF
	}
	n := int(binary.LittleEndian.Uint16(b.in[b.pos:]))
	nn := binary.LittleEndian.Uint16(b.in[b.pos+2:])
	b.pos += 4
	if nn != ^uint16(n) {
		return w, errInflate
	}
	if b.pos+n > len(b.in) {
		return w, io.ErrUnexpectedEOF
	}
	if w+n > len(out) {
		return w, errOversizedFrame
	}
	copy(out[w:], b.in[b.pos:b.pos+n])
	b.pos += n
	return w + n, nil
}

// readHuffman parses a dynamic-block header (RFC 1951 §3.2.7) into
// d.lit and d.dist, enforcing the stdlib's bounds: HLIT ≤ 286,
// HDIST ≤ 30, repeat codes staying inside the length array, repeat-
// previous with no previous rejected.
func (d *inflater) readHuffman() error {
	b := &d.br
	v, err := b.read(14)
	if err != nil {
		return err
	}
	nlit := int(v&0x1f) + 257
	ndist := int(v>>5&0x1f) + 1
	nclen := int(v>>10&0xf) + 4
	if nlit > inflateMaxLit || ndist > inflateMaxDist {
		return errInflate
	}
	var clLens [19]int
	for i := 0; i < nclen; i++ {
		c, err := b.read(3)
		if err != nil {
			return err
		}
		clLens[inflateCodeOrder[i]] = int(c)
	}
	if !d.cl.build(clLens[:]) {
		return errInflate
	}
	lens := d.lens[:nlit+ndist]
	for i := 0; i < len(lens); {
		sym, err := b.readSym(&d.cl)
		if err != nil {
			return err
		}
		if sym < 16 {
			lens[i] = sym
			i++
			continue
		}
		var rep, nb, val int
		switch sym {
		case 16:
			if i == 0 {
				return errInflate
			}
			val, rep, nb = lens[i-1], 3, 2
		case 17:
			rep, nb = 3, 3
		default: // 18
			rep, nb = 11, 7
		}
		x, err := b.read(nb)
		if err != nil {
			return err
		}
		rep += int(x)
		if i+rep > len(lens) {
			return errInflate
		}
		for j := 0; j < rep; j++ {
			lens[i] = val
			i++
		}
	}
	if !d.lit.build(lens[:nlit]) || !d.dist.build(lens[nlit:]) {
		return errInflate
	}
	return nil
}

// huffmanBlock decodes one compressed block into out starting at w.
// One fill per iteration covers the worst-case symbol: 15 bits of
// literal/length code + 5 extra + 15 bits of distance code + 13 extra
// = 48 ≤ 56; the per-step cnt checks only fire near true end of input
// (where they mean truncation) — never in steady state.
func (d *inflater) huffmanBlock(out []byte, w int, lit, dist *huffTable) (int, error) {
	b := &d.br
	max := len(out)
	for {
		if b.cnt < 48 {
			b.fill()
		}
		e := lit.primary[uint32(b.bits)&lit.mask]
		if e&huffSubFlag != 0 {
			e = lit.sub[(int(e>>8)&huffSubOffs)+int(uint32(b.bits)>>uint(lit.bits))&(1<<(e&0xff)-1)]
		}
		n := int(e & 0xff)
		if n == 0 || n > b.cnt {
			return w, errInflate
		}
		b.bits >>= uint(n)
		b.cnt -= n
		sym := int(e >> 8)
		if sym < 256 {
			if w >= max {
				return w, errOversizedFrame
			}
			out[w] = byte(sym)
			w++
			continue
		}
		if sym == 256 {
			return w, nil // end of block
		}
		li := sym - 257
		if li >= len(lenBase) {
			return w, errInflate
		}
		length := int(lenBase[li])
		if eb := int(lenExtra[li]); eb > 0 {
			if b.cnt < eb {
				return w, errInflate
			}
			length += int(uint32(b.bits) & (1<<uint(eb) - 1))
			b.bits >>= uint(eb)
			b.cnt -= eb
		}

		e = dist.primary[uint32(b.bits)&dist.mask]
		if e&huffSubFlag != 0 {
			e = dist.sub[(int(e>>8)&huffSubOffs)+int(uint32(b.bits)>>uint(dist.bits))&(1<<(e&0xff)-1)]
		}
		n = int(e & 0xff)
		if n == 0 || n > b.cnt {
			return w, errInflate
		}
		b.bits >>= uint(n)
		b.cnt -= n
		ds := int(e >> 8)
		if ds >= inflateMaxDist {
			return w, errInflate
		}
		dst := int(distBase[ds])
		if eb := int(distExtra[ds]); eb > 0 {
			if b.cnt < eb {
				return w, errInflate
			}
			dst += int(uint32(b.bits) & (1<<uint(eb) - 1))
			b.bits >>= uint(eb)
			b.cnt -= eb
		}

		if dst > w {
			return w, errInflate // match reaches before output start
		}
		if w+length > max {
			return w, errOversizedFrame
		}
		if dst == 1 {
			c := out[w-1]
			for i := 0; i < length; i++ {
				out[w+i] = c
			}
		} else if dst >= length {
			copy(out[w:w+length], out[w-dst:])
		} else {
			for i := 0; i < length; i++ {
				out[w+i] = out[w-dst+i]
			}
		}
		w += length
	}
}
