// Columnar event-batch encoding for trace format v3.
//
// A v2 event frame stores its records row-major at fixed width: 37
// bytes per event, with heap addresses and PCs written at full u64
// width every time even though consecutive events cluster tightly (the
// same locality the addrindex pagemap exploits on the hot path). v3
// turns each frame's batch on its side — one array per Event field —
// and encodes every numeric column as delta-from-previous + varint,
// zigzag-mapped so negative deltas stay short:
//
//	types   n × u8                  (raw; the enum is a byte already)
//	fns     n × zigzag-varint ΔFn
//	addrs   n × zigzag-varint ΔAddr
//	values  n × zigzag-varint ΔValue
//	olds    n × zigzag-varint ΔOld
//	sizes   n × zigzag-varint ΔSize
//
// Each column's delta chain restarts at 0 at the frame boundary, so a
// frame decodes with no state from its predecessors — the property
// salvage needs to keep its keep-every-valid-prefix semantics.
// Monotonic streams (ticks, sequential addresses) collapse to one
// byte per event; an untouched column (Old on an Alloc-heavy frame)
// is a run of zero bytes, which is also what makes the optional flate
// pass effective.
package trace

import (
	"encoding/binary"
	"errors"
	"math/bits"

	"heapmd/internal/event"
)

// maxFrameRecords bounds the record count a v3 event frame may
// declare, so a corrupted count cannot demand a huge allocation. The
// writer seals batches at DefaultBatchRecords; the decoder accepts a
// generous multiple for forward compatibility.
const maxFrameRecords = 1 << 16

// maxEncodedRecord is the worst-case encoded size of one record: the
// type byte plus five maximal varints. It bounds how large a frame
// body can legitimately inflate to.
const maxEncodedRecord = 1 + 5*binary.MaxVarintLen64

var errBadColumn = errors.New("bad column encoding")

// zigzag folds a signed delta into an unsigned value with small
// magnitudes near zero: 0,-1,1,-2,2… → 0,1,2,3,4…
func zigzag(d int64) uint64 { return uint64(d<<1) ^ uint64(d>>63) }

func unzigzag(u uint64) int64 { return int64(u>>1) ^ -int64(u&1) }

// appendDelta appends zigzag(cur-prev) as a varint and returns the
// new current value for the chain. Deltas are computed with wrapping
// u64 subtraction, so any pair of values round-trips exactly.
func appendDelta(dst []byte, prev, cur uint64) ([]byte, uint64) {
	return binary.AppendUvarint(dst, zigzag(int64(cur-prev))), cur
}

// uvarintAt decodes a multi-byte varint from body at pos and returns
// the value and the position after it (or -1 on truncation/
// overflow). It is the slow path behind the single-byte test the
// column loops inline (this function's cost is far past the inliner's
// budget; the call is paid only by multi-byte deltas). When at least
// eight bytes remain, varints up to eight bytes decode branchlessly
// from a single 64-bit load: find the terminator byte with
// TrailingZeros on the inverted continuation bits, then compact the
// 7-bit groups with three shift-merge steps. Column data mixes varint
// widths value by value, so a branchy length chain would mispredict
// constantly; the fixed ~dozen ALU ops win. binary.Uvarint handles
// 9–10 byte varints and the frame's last few bytes.
func uvarintAt(body []byte, pos int) (uint64, int) {
	if pos+8 <= len(body) {
		x := binary.LittleEndian.Uint64(body[pos:])
		if inv := ^x & 0x8080808080808080; inv != 0 {
			n := bits.TrailingZeros64(inv) >> 3 // 0-based terminator byte index
			x &= ^uint64(0) >> ((7 - n) << 3)  // drop bytes past the terminator
			return compact56(x), pos + n + 1
		}
		// All eight loaded bytes carry continuation bits: a 9- or
		// 10-byte varint, the norm for high-entropy columns (stored
		// heap words). Finish from the next one or two bytes rather
		// than re-walking all ten in binary.Uvarint.
		if pos+10 <= len(body) {
			lo := compact56(x)
			if b8 := body[pos+8]; b8 < 0x80 {
				return lo | uint64(b8)<<56, pos + 9
			} else if b9 := body[pos+9]; b9 <= 1 {
				return lo | uint64(b8&0x7f)<<56 | uint64(b9)<<63, pos + 10
			}
			return 0, -1 // 10th byte overflows 64 bits
		}
	}
	u, w := binary.Uvarint(body[pos:])
	if w <= 0 {
		return 0, -1
	}
	return u, pos + w
}

// compact56 extracts the 7-bit payload groups of up to eight varint
// bytes in x into a 56-bit value: mask the continuation bits, then
// merge adjacent groups in three shift steps (8×7 → 4×14 → 2×28 →
// 1×56 bits).
func compact56(x uint64) uint64 {
	x &= 0x7f7f7f7f7f7f7f7f
	x = x&0x007f007f007f007f | (x>>8&0x007f007f007f007f)<<7
	x = x&0x00003fff00003fff | (x>>16&0x00003fff00003fff)<<14
	x = x&0x000000000fffffff | (x>>32&0x000000000fffffff)<<28
	return x
}

// encodeColumns appends the columnar encoding of evs to dst.
func encodeColumns(dst []byte, evs []event.Event) []byte {
	for i := range evs {
		dst = append(dst, byte(evs[i].Type))
	}
	var prev uint64
	for i := range evs {
		dst, prev = appendDelta(dst, prev, uint64(evs[i].Fn))
	}
	prev = 0
	for i := range evs {
		dst, prev = appendDelta(dst, prev, evs[i].Addr)
	}
	prev = 0
	for i := range evs {
		dst, prev = appendDelta(dst, prev, evs[i].Value)
	}
	prev = 0
	for i := range evs {
		dst, prev = appendDelta(dst, prev, evs[i].Old)
	}
	prev = 0
	for i := range evs {
		dst, prev = appendDelta(dst, prev, evs[i].Size)
	}
	return dst
}

// decodeColumns reconstructs count events from a columnar body into
// evs (len == count, provided by the caller's reusable batch). The
// body must be consumed exactly; leftovers or short columns are
// corruption. Each column loop is written out straight-line — one
// indirect call per value would dominate a path pushing tens of
// millions of events per second.
func decodeColumns(body []byte, count int, evs []event.Event) ([]event.Event, error) {
	if len(body) < count {
		return nil, errBadColumn
	}
	for i := 0; i < count; i++ {
		evs[i] = event.Event{Type: event.Type(body[i])}
	}
	// Each column loop inlines the single-byte case — the dominant
	// encoding for clustered deltas — and calls uvarintAt only for
	// multi-byte varints.
	pos := count
	var prev uint64
	var u uint64
	for i := 0; i < count; i++ {
		if pos < len(body) && body[pos] < 0x80 {
			u, pos = uint64(body[pos]), pos+1
		} else if u, pos = uvarintAt(body, pos); pos < 0 {
			return nil, errBadColumn
		}
		prev += uint64(unzigzag(u))
		evs[i].Fn = event.FnID(uint32(prev))
	}
	prev = 0
	for i := 0; i < count; i++ {
		if pos < len(body) && body[pos] < 0x80 {
			u, pos = uint64(body[pos]), pos+1
		} else if u, pos = uvarintAt(body, pos); pos < 0 {
			return nil, errBadColumn
		}
		prev += uint64(unzigzag(u))
		evs[i].Addr = prev
	}
	prev = 0
	for i := 0; i < count; i++ {
		if pos < len(body) && body[pos] < 0x80 {
			u, pos = uint64(body[pos]), pos+1
		} else if u, pos = uvarintAt(body, pos); pos < 0 {
			return nil, errBadColumn
		}
		prev += uint64(unzigzag(u))
		evs[i].Value = prev
	}
	prev = 0
	for i := 0; i < count; i++ {
		if pos < len(body) && body[pos] < 0x80 {
			u, pos = uint64(body[pos]), pos+1
		} else if u, pos = uvarintAt(body, pos); pos < 0 {
			return nil, errBadColumn
		}
		prev += uint64(unzigzag(u))
		evs[i].Old = prev
	}
	prev = 0
	for i := 0; i < count; i++ {
		if pos < len(body) && body[pos] < 0x80 {
			u, pos = uint64(body[pos]), pos+1
		} else if u, pos = uvarintAt(body, pos); pos < 0 {
			return nil, errBadColumn
		}
		prev += uint64(unzigzag(u))
		evs[i].Size = prev
	}
	if pos != len(body) {
		return nil, errBadColumn
	}
	return evs, nil
}
