// Parallel frame-decode pipeline: the DecodeWorkers ≥ 2 read path.
//
// The v3 format was built for this — every frame is self-contained
// (CRC32C envelope, per-frame delta-chain restart, per-frame codec
// byte), so frames can be checked and decoded in any order as long as
// delivery is resequenced. The pipeline has three stages:
//
//	scanner      one goroutine walks the length-delimited envelope,
//	             reading each frame's header + payload into a recycled
//	             frameBuf (the only stage touching the file)
//	workers      n goroutines CRC-check the payload and decode it
//	             (inflate + columnar decode for v3, fixed-width records
//	             for v2, symtab/end parsing) into the frameBuf's batch
//	resequencer  the consumer (replayFramed's loop) reorders decoded
//	             frames by sequence number and feeds the sink
//
// Ownership and ordering invariants:
//
//   - A frameBuf is owned by exactly one stage at a time and travels
//     free → scanner → work → worker → results → consumer → free.
//     The consumer must finish event.EmitAll before releasing (the
//     frame's events alias the buf's batch storage).
//   - Frame sequence numbers are dense. With depth buffers, every
//     in-flight frame lies in [nextSeq, nextSeq+depth-1], so a ring of
//     depth slots resequences without allocation and the stages can
//     never deadlock: the frame the consumer waits for always ends up
//     in the results channel, whose capacity admits every buffer.
//   - Error semantics equal the serial reader's "first bad frame
//     wins": the consumer inspects frames strictly in sequence order,
//     so a decode failure on frame k surfaces if and only if frames
//     < k were intact, with the same error and the same end offset
//     (the start of frame k) the serial decoder would report. Scanner
//     failures (truncated header/payload, implausible length, missing
//     end frame) take the sequence number of the frame being scanned,
//     which likewise only surfaces after every earlier frame decoded
//     cleanly.
//   - Exactly one terminal message reaches the consumer: a scan error
//     or the end frame (the scanner stops after dispatching it). The
//     consumer may stop earlier — on the first bad frame — and then
//     halt() closes the stop channel; every stage's channel operation
//     selects on stop, so all goroutines exit promptly and halt()
//     can wait for them (a scanner mid-read finishes that one read
//     first, so the caller may close the file after replay returns).
package trace

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"sync"
	"sync/atomic"
)

// scanJob is one scanned-but-unverified frame handed to a decode
// worker. payload aliases buf.payload.
type scanJob struct {
	seq     uint64
	kind    byte
	wantCRC uint32
	payload []byte
	buf     *frameBuf
	start   int64 // file offset of the frame header
	end     int64 // file offset just past the frame
}

// decodePipeline wires the stages together. The consumer drives it
// through next/release and must call halt when done (normally or not).
type decodePipeline struct {
	free    chan *frameBuf
	work    chan scanJob
	results chan frameMsg
	stop    chan struct{}
	wg      sync.WaitGroup

	depth   int
	ring    []frameMsg
	have    []bool
	nextSeq uint64

	scannerStalls atomic.Uint64
	stats         *Stats
}

// newDecodePipeline starts the scanner and workers ≥ 2 decode workers
// over the framed region of a v2/v3 trace.
func newDecodePipeline(r io.Reader, version uint32, size int64, workers int, stats *Stats) *decodePipeline {
	// Depth bounds both memory (each in-flight frame owns a frameBuf)
	// and how far the scanner runs ahead: enough for every worker to
	// be busy while the resequencer holds a full window and the
	// scanner keeps one frame in hand.
	depth := 2*workers + 2
	p := &decodePipeline{
		free:    make(chan *frameBuf, depth),
		work:    make(chan scanJob, depth),
		results: make(chan frameMsg, depth),
		stop:    make(chan struct{}),
		depth:   depth,
		ring:    make([]frameMsg, depth),
		have:    make([]bool, depth),
		stats:   stats,
	}
	for i := 0; i < depth; i++ {
		p.free <- new(frameBuf)
	}
	p.wg.Add(1 + workers)
	go p.scan(bufio.NewReaderSize(r, 1<<16), size)
	for i := 0; i < workers; i++ {
		go p.worker(version)
	}
	return p
}

// scan walks frame envelopes and fans whole frames to the workers.
// It owns all file I/O and performs no validation beyond the length
// bound — CRC and payload structure are the workers' job.
func (p *decodePipeline) scan(br *bufio.Reader, size int64) {
	defer p.wg.Done()
	defer close(p.work)
	offset := int64(8) // consumed through the last fully-scanned frame
	var seq uint64
	var hdr [frameHeaderSize]byte
	terminal := func(buf *frameBuf, err error) {
		m := frameMsg{seq: seq, end: offset, buf: buf, err: err}
		select {
		case p.results <- m:
		case <-p.stop:
		}
	}
	for {
		var buf *frameBuf
		select {
		case buf = <-p.free:
		default:
			// A frame is ready to scan but every buffer is downstream:
			// decode or the sink is the bottleneck.
			p.scannerStalls.Add(1)
			select {
			case buf = <-p.free:
			case <-p.stop:
				return
			}
		}
		if _, err := io.ReadFull(br, hdr[:]); err != nil {
			if err == io.EOF && offset == size {
				terminal(buf, errors.New("missing end frame"))
			} else {
				terminal(buf, errors.New("truncated frame header"))
			}
			return
		}
		kind := hdr[0]
		payloadLen := binary.LittleEndian.Uint32(hdr[1:])
		wantCRC := binary.LittleEndian.Uint32(hdr[5:])
		if payloadLen > maxFramePayload {
			terminal(buf, fmt.Errorf("implausible frame length %d", payloadLen))
			return
		}
		if cap(buf.payload) < int(payloadLen) {
			buf.payload = make([]byte, max(int(payloadLen), 2*cap(buf.payload)))
		}
		payload := buf.payload[:payloadLen]
		if _, err := io.ReadFull(br, payload); err != nil {
			terminal(buf, errors.New("truncated frame payload"))
			return
		}
		job := scanJob{
			seq:     seq,
			kind:    kind,
			wantCRC: wantCRC,
			payload: payload,
			buf:     buf,
			start:   offset,
			end:     offset + int64(frameHeaderSize) + int64(payloadLen),
		}
		select {
		case p.work <- job:
		case <-p.stop:
			return
		}
		seq++
		offset = job.end
		if kind == frameEnd {
			// Terminal frame dispatched; its decoded message (or error)
			// ends the stream. Bytes past it are the consumer's
			// trailing-garbage check, not ours to read.
			return
		}
	}
}

// worker CRC-checks and decodes scanned frames. Each worker owns one
// payloadDecoder, so inflate state and decompression scratch are
// O(workers), reused across all frames the worker touches.
func (p *decodePipeline) worker(version uint32) {
	defer p.wg.Done()
	dec := payloadDecoder{version: version}
	for job := range p.work {
		msg := frameMsg{seq: job.seq, buf: job.buf, end: job.start}
		if crc32.Checksum(job.payload, crcTable) != job.wantCRC {
			msg.err = errors.New("frame checksum mismatch")
		} else {
			dec.decodePayload(job.kind, job.payload, job.buf, &msg)
		}
		if msg.err == nil {
			msg.end = job.end
		}
		select {
		case p.results <- msg:
		case <-p.stop:
			return
		}
	}
}

// next returns the frame with the next sequence number, buffering
// out-of-order arrivals in the ring.
func (p *decodePipeline) next() frameMsg {
	slot := p.nextSeq % uint64(p.depth)
	for !p.have[slot] {
		m := <-p.results
		if m.seq != p.nextSeq && p.stats != nil {
			// Arrived ahead of an earlier frame still being decoded:
			// worker skew is gating in-order delivery.
			p.stats.ResequencerStalls++
		}
		s := m.seq % uint64(p.depth)
		p.ring[s] = m
		p.have[s] = true
	}
	m := p.ring[slot]
	p.ring[slot] = frameMsg{}
	p.have[slot] = false
	p.nextSeq++
	return m
}

// release returns a frameBuf to the scanner.
func (p *decodePipeline) release(b *frameBuf) {
	if b == nil {
		return
	}
	select {
	case p.free <- b:
	case <-p.stop:
	}
}

// halt tears the pipeline down and waits for every stage to exit,
// then folds the scanner's stall count into Stats. Safe to call on
// any consumer exit path, clean or corrupt.
func (p *decodePipeline) halt() {
	close(p.stop)
	p.wg.Wait()
	if p.stats != nil {
		p.stats.ScannerStalls = p.scannerStalls.Load()
	}
}
