package trace

import (
	"bytes"
	"testing"

	"heapmd/internal/event"
)

// emitOnly wraps a sink so it does NOT satisfy event.BatchSink,
// forcing the per-event fallback in event.EmitAll.
type emitOnly struct{ s event.Sink }

func (w emitOnly) Emit(e event.Event) { w.s.Emit(e) }

// batchCollector records events and counts EmitBatch calls, copying
// each borrowed batch before returning as the contract requires.
type batchCollector struct {
	events  []event.Event
	batches int
	singles int
}

func (c *batchCollector) Emit(e event.Event) {
	c.singles++
	c.events = append(c.events, e)
}

func (c *batchCollector) EmitBatch(batch []event.Event) {
	c.batches++
	c.events = append(c.events, batch...)
}

// TestBatchSinkEquivalence checks that batch delivery reaches the sink
// through EmitBatch (not per-event Emit) and yields exactly the event
// sequence the per-event path yields.
func TestBatchSinkEquivalence(t *testing.T) {
	sym := event.NewSymtab()
	sym.Intern("alpha")
	sym.Intern("beta")
	evs := testEvents(3 * DefaultBatchRecords / 2) // multiple frames, last partial
	data := writeV2(t, evs, sym, 0)

	var perEvent []event.Event
	_, nSerial, err := Replay(bytes.NewReader(data), emitOnly{collectSink(&perEvent)})
	if err != nil {
		t.Fatal(err)
	}

	var bc batchCollector
	_, nBatch, err := Replay(bytes.NewReader(data), &bc)
	if err != nil {
		t.Fatal(err)
	}
	if bc.batches == 0 {
		t.Fatal("BatchSink.EmitBatch was never called")
	}
	if bc.singles != 0 {
		t.Fatalf("batch-capable sink received %d per-event Emit calls", bc.singles)
	}
	if nSerial != nBatch || len(perEvent) != len(bc.events) {
		t.Fatalf("per-event replayed %d/%d, batch replayed %d/%d",
			nSerial, len(perEvent), nBatch, len(bc.events))
	}
	for i := range perEvent {
		if perEvent[i] != bc.events[i] {
			t.Fatalf("event %d: per-event %+v, batch %+v", i, perEvent[i], bc.events[i])
		}
	}
}

// TestReadAheadEquivalence checks that the read-ahead decoder produces
// outcomes identical to the synchronous reader — same events, same
// counts, same errors in strict mode, same SalvageInfo in salvage mode
// — on a clean trace, on every possible truncation, and on a bit flip.
func TestReadAheadEquivalence(t *testing.T) {
	sym := event.NewSymtab()
	sym.Intern("alpha")
	evs := testEvents(4 * DefaultBatchRecords)
	clean := writeV2(t, evs, sym, DefaultBatchRecords)

	variants := [][]byte{clean}
	for cut := 9; cut < len(clean); cut += 97 {
		variants = append(variants, clean[:cut])
	}
	flipped := bytes.Clone(clean)
	flipped[len(flipped)/2] ^= 0x40
	variants = append(variants, flipped)

	for vi, data := range variants {
		var syncEvents, raEvents []event.Event
		syncSym, syncN, syncErr := ReplayWith(bytes.NewReader(data), collectSink(&syncEvents), ReadOptions{})
		raSym, raN, raErr := ReplayWith(bytes.NewReader(data), collectSink(&raEvents), ReadOptions{ReadAhead: true})
		if (syncErr == nil) != (raErr == nil) ||
			(syncErr != nil && syncErr.Error() != raErr.Error()) {
			t.Fatalf("variant %d strict: sync err %v, readahead err %v", vi, syncErr, raErr)
		}
		if syncN != raN || len(syncEvents) != len(raEvents) {
			t.Fatalf("variant %d strict: sync %d/%d events, readahead %d/%d",
				vi, syncN, len(syncEvents), raN, len(raEvents))
		}
		for i := range syncEvents {
			if syncEvents[i] != raEvents[i] {
				t.Fatalf("variant %d strict: event %d differs", vi, i)
			}
		}
		if syncErr == nil && syncSym.Len() != raSym.Len() {
			t.Fatalf("variant %d strict: symtab %d vs %d", vi, syncSym.Len(), raSym.Len())
		}

		var syncSalv, raSalv []event.Event
		_, syncInfo, syncErr2 := SalvageWith(bytes.NewReader(data), collectSink(&syncSalv), ReadOptions{})
		_, raInfo, raErr2 := SalvageWith(bytes.NewReader(data), collectSink(&raSalv), ReadOptions{ReadAhead: true})
		if syncErr2 != nil || raErr2 != nil {
			t.Fatalf("variant %d salvage: errs %v, %v", vi, syncErr2, raErr2)
		}
		if *syncInfo != *raInfo {
			t.Fatalf("variant %d salvage: info %+v vs %+v", vi, *syncInfo, *raInfo)
		}
		if len(syncSalv) != len(raSalv) {
			t.Fatalf("variant %d salvage: %d vs %d events", vi, len(syncSalv), len(raSalv))
		}
		for i := range syncSalv {
			if syncSalv[i] != raSalv[i] {
				t.Fatalf("variant %d salvage: event %d differs", vi, i)
			}
		}
	}
}

// TestReplayFrameDecodeAllocs is the zero-alloc gate for the frame
// decode loop: replaying a trace with 64x more event frames must cost
// exactly the same number of allocations as a small one, proving the
// payload and batch buffers are reused across frames and batch
// delivery allocates nothing per frame. (The fixed per-call overhead —
// bufio.Reader, decoder, symtab, info — is allowed; scaling with frame
// count is not.)
func TestReplayFrameDecodeAllocs(t *testing.T) {
	mkTrace := func(frames int, wopts WriterOptions) []byte {
		var buf bytes.Buffer
		w, err := NewWriterWith(&buf, wopts)
		if err != nil {
			t.Fatal(err)
		}
		for _, e := range testEvents(frames * DefaultBatchRecords) {
			w.Emit(e)
		}
		// Close with no symtab: checkpoint frames would legitimately
		// allocate (interned name strings), clouding the measurement.
		if err := w.Close(nil); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}
	measure := func(data []byte, opts ReadOptions) float64 {
		var c event.Counter
		return testing.AllocsPerRun(20, func() {
			if _, _, err := ReplayWith(bytes.NewReader(data), &c, opts); err != nil {
				t.Fatal(err)
			}
		})
	}
	for _, w := range []struct {
		name string
		opts WriterOptions
		// flate's inflater keeps per-stream state the stdlib may top up
		// lazily; allow a handful of allocs, never one per frame.
		slack float64
	}{
		{"v2", WriterOptions{Version: Version}, 0},
		{"v3", WriterOptions{Version: VersionV3}, 0},
		{"v3-flate", WriterOptions{Version: VersionV3, Compress: true}, 8},
	} {
		small, large := mkTrace(2, w.opts), mkTrace(128, w.opts)
		for _, tc := range []struct {
			name  string
			opts  ReadOptions
			slack float64
		}{
			{"sync", ReadOptions{}, 0},
			// The read-ahead path blocks on channels, and the runtime may
			// allocate a sudog per park; allow a few allocs of noise but
			// nothing near one per frame (126 extra frames).
			{"readahead", ReadOptions{ReadAhead: true}, 8},
			// The decode pipeline allocates its channels, ring, and
			// per-worker decoder state once per replay — O(workers), not
			// O(frames). Parking on channels adds runtime noise.
			{"pipeline-3", ReadOptions{DecodeWorkers: 3}, 24},
		} {
			aSmall, aLarge := measure(small, tc.opts), measure(large, tc.opts)
			if aLarge > aSmall+tc.slack+w.slack {
				t.Errorf("%s/%s: 128-frame replay allocates %.0f, 2-frame allocates %.0f — decode loop allocates per frame",
					w.name, tc.name, aLarge, aSmall)
			}
		}
	}
}
