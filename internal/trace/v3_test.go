package trace

import (
	"bytes"
	"encoding/binary"
	"errors"
	"hash/crc32"
	"io"
	"math/rand"
	"testing"

	"heapmd/internal/event"
)

// writeV3 builds a v3 trace from evs with sym attached, flushing
// after every flushEvery events (0 = never).
func writeV3(t testing.TB, evs []event.Event, sym *event.Symtab, flushEvery int, compress bool) []byte {
	t.Helper()
	var buf bytes.Buffer
	w, err := NewWriterWith(&buf, WriterOptions{Version: VersionV3, Compress: compress})
	if err != nil {
		t.Fatal(err)
	}
	w.SetSymtab(sym)
	for i, e := range evs {
		w.Emit(e)
		if flushEvery > 0 && (i+1)%flushEvery == 0 {
			if err := w.Flush(); err != nil {
				t.Fatal(err)
			}
		}
	}
	if err := w.Close(sym); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// frameBoundariesV3 walks a well-formed v3 trace and returns, per
// frame end, the byte offset and cumulative durable event count — the
// v3 counterpart of frameBoundaries (v3 event counts live in the
// payload's count field, not in payloadLen/recordSize).
func frameBoundariesV3(t *testing.T, data []byte) []boundary {
	t.Helper()
	var bounds []boundary
	off := 8
	var events uint64
	for off < len(data) {
		if off+frameHeaderSize > len(data) {
			t.Fatalf("ragged frame header at %d", off)
		}
		kind := data[off]
		payloadLen := int(binary.LittleEndian.Uint32(data[off+1:]))
		if kind == frameEvents {
			events += uint64(binary.LittleEndian.Uint32(data[off+frameHeaderSize+1:]))
		}
		off += frameHeaderSize + payloadLen
		bounds = append(bounds, boundary{offset: off, events: events})
	}
	return bounds
}

// v3TestEvents builds an event mix with the clustering real traces
// have (nearby addresses, small fn deltas) plus occasional jumps, so
// both the one-byte varint fast path and the multi-byte path run.
func v3TestEvents(n int) []event.Event {
	evs := make([]event.Event, n)
	addr := uint64(0x10000)
	for i := range evs {
		if i%97 == 13 {
			addr += 1 << 33 // new arena: a large positive delta
		}
		if i%53 == 7 {
			addr -= 4096 // backwards jump: negative delta, zigzag path
		}
		evs[i] = event.Event{
			Type:  event.Type(i % int(event.NumTypes)),
			Fn:    event.FnID(i%5 + 1),
			Addr:  addr + uint64(i%16)*8,
			Value: addr ^ uint64(i),
			Old:   uint64(i / 3),
			Size:  uint64(16 + i%48),
		}
	}
	return evs
}

func TestV3RoundTrip(t *testing.T) {
	for _, compress := range []bool{false, true} {
		name := "raw"
		if compress {
			name = "flate"
		}
		t.Run(name, func(t *testing.T) {
			sym := event.NewSymtab()
			f1 := sym.Intern("alpha")
			f2 := sym.Intern("beta")
			evs := v3TestEvents(3*DefaultBatchRecords + 17) // multiple frames, ragged tail
			data := writeV3(t, evs, sym, 0, compress)

			var got []event.Event
			gotSym, n, err := Replay(bytes.NewReader(data), collectSink(&got))
			if err != nil {
				t.Fatal(err)
			}
			if n != uint64(len(evs)) || len(got) != len(evs) {
				t.Fatalf("replayed %d events, want %d", n, len(evs))
			}
			for i := range evs {
				if got[i] != evs[i] {
					t.Fatalf("event %d = %+v, want %+v", i, got[i], evs[i])
				}
			}
			if gotSym.Name(f1) != "alpha" || gotSym.Name(f2) != "beta" {
				t.Error("symtab did not round-trip")
			}
			// Salvage of a clean v3 trace is lossless.
			var got2 []event.Event
			_, info, err := Salvage(bytes.NewReader(data), collectSink(&got2))
			if err != nil {
				t.Fatal(err)
			}
			if info.Salvaged() || len(got2) != len(evs) {
				t.Errorf("clean v3 salvage: %d events, info=%v", len(got2), info)
			}
		})
	}
}

func TestV3EmptyTrace(t *testing.T) {
	data := writeV3(t, nil, event.NewSymtab(), 0, true)
	var c event.Counter
	sym, n, err := Replay(bytes.NewReader(data), &c)
	if err != nil {
		t.Fatal(err)
	}
	if n != 0 || c.Total != 0 || sym.Len() != 0 {
		t.Errorf("empty v3 replay: n=%d total=%d syms=%d", n, c.Total, sym.Len())
	}
}

// TestV3SmallerThanV2 pins the point of the format: on clustered
// event streams the columnar encoding is at least 3x smaller than
// v2's fixed-width records.
func TestV3SmallerThanV2(t *testing.T) {
	evs := v3TestEvents(8 * DefaultBatchRecords)
	v2 := writeV2(t, evs, nil, 0)
	v3 := writeV3(t, evs, nil, 0, false)
	if len(v3)*3 > len(v2) {
		t.Errorf("v3 = %d bytes, v2 = %d bytes: less than 3x smaller", len(v3), len(v2))
	}
	v3z := writeV3(t, evs, nil, 0, true)
	if len(v3z) > len(v3) {
		t.Errorf("compressed v3 = %d bytes > uncompressed %d", len(v3z), len(v3))
	}
}

// TestV3IncompressibleStaysRaw checks the per-frame compression flag
// is adaptive: frames whose flate output would be larger are stored
// raw, so -compress never inflates a trace beyond its raw v3 size.
// Single-event frames of random words make flate reliably lose — its
// per-stream framing overhead exceeds any saving on a ~30-byte body.
func TestV3IncompressibleStaysRaw(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	evs := make([]event.Event, 16)
	for i := range evs {
		evs[i] = event.Event{
			Type: event.Type(i % int(event.NumTypes)), Fn: event.FnID(rng.Uint32()),
			Addr: rng.Uint64(), Value: rng.Uint64(), Old: rng.Uint64(), Size: rng.Uint64(),
		}
	}
	data := writeV3(t, evs, nil, 1, true)
	var st Stats
	var c event.Counter
	if _, _, err := ReplayWith(bytes.NewReader(data), &c, ReadOptions{Stats: &st}); err != nil {
		t.Fatal(err)
	}
	if st.CompressedFrames != 0 {
		t.Errorf("%d incompressible frames stored compressed", st.CompressedFrames)
	}
	if st.StoredEventBytes != st.RawEventBytes || st.CompressionRatio() != 1 {
		t.Errorf("raw-stored trace reports ratio %.3f", st.CompressionRatio())
	}
}

// TestV3TruncationAtEveryOffset is the v3 crash-safety acceptance
// test, mirroring TestV2TruncationAtEveryOffset: cut anywhere, and
// salvage recovers exactly the events of every complete frame before
// the cut — compressed or not.
func TestV3TruncationAtEveryOffset(t *testing.T) {
	for _, compress := range []bool{false, true} {
		name := "raw"
		if compress {
			name = "flate"
		}
		t.Run(name, func(t *testing.T) {
			sym := event.NewSymtab()
			sym.Intern("fn")
			evs := v3TestEvents(60)
			data := writeV3(t, evs, sym, 5, compress)
			bounds := frameBoundariesV3(t, data)

			expectAt := func(cut int) (uint64, int) {
				best := boundary{offset: 8}
				for _, b := range bounds {
					if b.offset <= cut && b.offset > best.offset {
						best = b
					}
				}
				return best.events, best.offset
			}
			for cut := 8; cut < len(data); cut++ {
				var got []event.Event
				_, info, err := Salvage(bytes.NewReader(data[:cut]), collectSink(&got))
				if err != nil {
					t.Fatalf("cut=%d: salvage failed: %v", cut, err)
				}
				wantEvents, wantOffset := expectAt(cut)
				if info.EventsRecovered != wantEvents || uint64(len(got)) != wantEvents {
					t.Fatalf("cut=%d: recovered %d events, want %d", cut, info.EventsRecovered, wantEvents)
				}
				if !info.Truncated {
					t.Fatalf("cut=%d: truncation not reported", cut)
				}
				if info.BytesDropped != uint64(cut-wantOffset) {
					t.Fatalf("cut=%d: dropped %d bytes, want %d", cut, info.BytesDropped, cut-wantOffset)
				}
				for i := range got {
					if got[i] != evs[i] {
						t.Fatalf("cut=%d: event %d corrupted in salvage", cut, i)
					}
				}
				if _, _, err := Replay(bytes.NewReader(data[:cut]), event.SinkFunc(func(event.Event) {})); !errors.Is(err, ErrCorrupt) {
					t.Fatalf("cut=%d: strict replay err = %v, want ErrCorrupt", cut, err)
				}
			}
		})
	}
}

// TestV3BitFlipDetected flips every body byte of v3 traces (raw and
// compressed): strict replay must reject each mutant, salvage must
// never panic and must only ever deliver a prefix of the true events.
func TestV3BitFlipDetected(t *testing.T) {
	for _, compress := range []bool{false, true} {
		name := "raw"
		if compress {
			name = "flate"
		}
		t.Run(name, func(t *testing.T) {
			evs := v3TestEvents(40)
			data := writeV3(t, evs, nil, 6, compress)
			for i := 8; i < len(data); i++ {
				mut := bytes.Clone(data)
				mut[i] ^= 0x40
				if _, _, err := Replay(bytes.NewReader(mut), event.SinkFunc(func(event.Event) {})); err == nil {
					t.Fatalf("flip at %d: strict replay accepted a corrupted trace", i)
				}
				var got []event.Event
				if _, _, err := Salvage(bytes.NewReader(mut), collectSink(&got)); err != nil {
					t.Fatalf("flip at %d: salvage errored: %v", i, err)
				}
				for j := range got {
					if got[j] != evs[j] {
						t.Fatalf("flip at %d: salvage delivered corrupted event %d", i, j)
					}
				}
			}
		})
	}
}

// corruptV3Frame rewrites the first event frame of a v3 trace with a
// payload-mangling function and a fresh (valid) CRC, simulating
// writer-side damage the checksum cannot catch.
func corruptV3Frame(t *testing.T, data []byte, mangle func(payload []byte) []byte) []byte {
	t.Helper()
	off := 8
	for off < len(data) {
		kind := data[off]
		payloadLen := int(binary.LittleEndian.Uint32(data[off+1:]))
		if kind != frameEvents {
			off += frameHeaderSize + payloadLen
			continue
		}
		payload := mangle(bytes.Clone(data[off+frameHeaderSize : off+frameHeaderSize+payloadLen]))
		out := bytes.Clone(data[:off])
		var hdr [frameHeaderSize]byte
		hdr[0] = frameEvents
		binary.LittleEndian.PutUint32(hdr[1:], uint32(len(payload)))
		binary.LittleEndian.PutUint32(hdr[5:], crc32.Checksum(payload, crcTable))
		out = append(out, hdr[:]...)
		out = append(out, payload...)
		out = append(out, data[off+frameHeaderSize+payloadLen:]...)
		return out
	}
	t.Fatal("no event frame found")
	return nil
}

// TestV3StructuralCorruption exercises CRC-valid but structurally
// damaged v3 event frames: unknown codec, lying counts, ragged
// columns, short headers. Strict replay must reject each; salvage
// must stop cleanly before the bad frame.
func TestV3StructuralCorruption(t *testing.T) {
	evs := v3TestEvents(3 * DefaultBatchRecords)
	data := writeV3(t, evs, nil, 0, false)
	cases := map[string]func(p []byte) []byte{
		"unknown codec":  func(p []byte) []byte { p[0] = 0x7f; return p },
		"oversize count": func(p []byte) []byte { binary.LittleEndian.PutUint32(p[1:], maxFrameRecords+1); return p },
		"lying count":    func(p []byte) []byte { binary.LittleEndian.PutUint32(p[1:], 9999); return p },
		"short header":   func(p []byte) []byte { return p[:3] },
		"trailing bytes": func(p []byte) []byte { return append(p, 0, 0, 0) },
		"truncated columns": func(p []byte) []byte {
			return p[:len(p)-4]
		},
		"bad compressed body": func(p []byte) []byte {
			p[0] = codecFlate // declare flate over what is raw column data
			return p
		},
	}
	for name, mangle := range cases {
		t.Run(name, func(t *testing.T) {
			mut := corruptV3Frame(t, data, mangle)
			if _, _, err := Replay(bytes.NewReader(mut), event.SinkFunc(func(event.Event) {})); !errors.Is(err, ErrCorrupt) {
				t.Errorf("strict replay err = %v, want ErrCorrupt", err)
			}
			var got []event.Event
			_, info, err := Salvage(bytes.NewReader(mut), collectSink(&got))
			if err != nil {
				t.Fatalf("salvage errored: %v", err)
			}
			if !info.Truncated && info.BytesDropped == 0 {
				t.Error("salvage reported a damaged trace clean")
			}
			for i := range got {
				if got[i] != evs[i] {
					t.Fatalf("salvage delivered corrupted event %d", i)
				}
			}
		})
	}
}

// TestV3ReadAheadEquivalence mirrors TestReadAheadEquivalence for v3
// (raw and compressed): identical events, errors and SalvageInfo
// between the synchronous and read-ahead readers, plus identical
// Stats, on clean, truncated and bit-flipped traces.
func TestV3ReadAheadEquivalence(t *testing.T) {
	for _, compress := range []bool{false, true} {
		sym := event.NewSymtab()
		sym.Intern("alpha")
		evs := v3TestEvents(4 * DefaultBatchRecords)
		clean := writeV3(t, evs, sym, DefaultBatchRecords, compress)

		variants := [][]byte{clean}
		for cut := 9; cut < len(clean); cut += 97 {
			variants = append(variants, clean[:cut])
		}
		flipped := bytes.Clone(clean)
		flipped[len(flipped)/2] ^= 0x40
		variants = append(variants, flipped)

		for vi, data := range variants {
			var syncEvents, raEvents []event.Event
			var syncStats, raStats Stats
			_, syncN, syncErr := ReplayWith(bytes.NewReader(data), collectSink(&syncEvents), ReadOptions{Stats: &syncStats})
			_, raN, raErr := ReplayWith(bytes.NewReader(data), collectSink(&raEvents), ReadOptions{ReadAhead: true, Stats: &raStats})
			if (syncErr == nil) != (raErr == nil) ||
				(syncErr != nil && syncErr.Error() != raErr.Error()) {
				t.Fatalf("compress=%v variant %d: sync err %v, readahead err %v", compress, vi, syncErr, raErr)
			}
			if syncN != raN || len(syncEvents) != len(raEvents) {
				t.Fatalf("compress=%v variant %d: sync %d events, readahead %d", compress, vi, syncN, raN)
			}
			for i := range syncEvents {
				if syncEvents[i] != raEvents[i] {
					t.Fatalf("compress=%v variant %d: event %d differs", compress, vi, i)
				}
			}
			// DecodeWorkers legitimately differs between the readers;
			// every trace-shape field must match.
			if syncStats.shape() != raStats.shape() {
				t.Fatalf("compress=%v variant %d: stats %+v vs %+v", compress, vi, syncStats, raStats)
			}

			var syncSalv, raSalv []event.Event
			_, syncInfo, err1 := SalvageWith(bytes.NewReader(data), collectSink(&syncSalv), ReadOptions{})
			_, raInfo, err2 := SalvageWith(bytes.NewReader(data), collectSink(&raSalv), ReadOptions{ReadAhead: true})
			if err1 != nil || err2 != nil {
				t.Fatalf("compress=%v variant %d salvage: errs %v, %v", compress, vi, err1, err2)
			}
			if *syncInfo != *raInfo || len(syncSalv) != len(raSalv) {
				t.Fatalf("compress=%v variant %d salvage: info %+v vs %+v", compress, vi, *syncInfo, *raInfo)
			}
		}
	}
}

// TestV3Stats checks the replay accounting a clean v3 trace reports:
// version, totals, frame counts, and a compression ratio > 1 when the
// flate pass actually ran.
func TestV3Stats(t *testing.T) {
	evs := v3TestEvents(4 * DefaultBatchRecords)
	for _, tc := range []struct {
		name     string
		compress bool
	}{{"raw", false}, {"flate", true}} {
		t.Run(tc.name, func(t *testing.T) {
			data := writeV3(t, evs, nil, 0, tc.compress)
			var st Stats
			var c event.Counter
			_, n, err := ReplayWith(bytes.NewReader(data), &c, ReadOptions{Stats: &st})
			if err != nil {
				t.Fatal(err)
			}
			if st.Version != VersionV3 || st.TotalBytes != uint64(len(data)) || st.Events != n {
				t.Errorf("stats = %+v, want version 3, %d bytes, %d events", st, len(data), n)
			}
			if st.EventFrames != 4 {
				t.Errorf("EventFrames = %d, want 4", st.EventFrames)
			}
			if st.BytesPerEvent() <= 0 || st.BytesPerEvent() > recordSize {
				t.Errorf("BytesPerEvent = %.2f out of range", st.BytesPerEvent())
			}
			if tc.compress {
				if st.CompressedFrames == 0 || st.CompressionRatio() <= 1 {
					t.Errorf("compressed trace: frames=%d ratio=%.2f", st.CompressedFrames, st.CompressionRatio())
				}
			} else if st.CompressedFrames != 0 || st.CompressionRatio() != 1 {
				t.Errorf("raw trace: frames=%d ratio=%.2f", st.CompressedFrames, st.CompressionRatio())
			}
		})
	}
}

// TestWriterEmitAllocs is the encode-path counterpart of
// TestReplayFrameDecodeAllocs: emitting 64x more event frames may not
// cost more allocations than a short run, proving the batch, columnar
// and compression scratch buffers are reused across frames.
func TestWriterEmitAllocs(t *testing.T) {
	evs := v3TestEvents(DefaultBatchRecords)
	measure := func(opts WriterOptions, frames int) float64 {
		return testing.AllocsPerRun(10, func() {
			w, err := NewWriterWith(io.Discard, opts)
			if err != nil {
				t.Fatal(err)
			}
			for f := 0; f < frames; f++ {
				for _, e := range evs {
					w.Emit(e)
				}
			}
			if err := w.Close(nil); err != nil {
				t.Fatal(err)
			}
		})
	}
	for _, tc := range []struct {
		name  string
		opts  WriterOptions
		slack float64
	}{
		{"v2", WriterOptions{Version: Version}, 0},
		{"v3", WriterOptions{Version: VersionV3}, 0},
		// flate's Reset keeps its state but the stdlib may still grow
		// internal tables once; allow a few allocs, nothing per frame.
		{"v3-flate", WriterOptions{Version: VersionV3, Compress: true}, 8},
		// The encode pipeline's state is O(workers), never O(frames),
		// but some of it materializes lazily under load: the 2-frame
		// run may exercise one worker while the 128-frame run warms
		// both (payload arenas, per-worker flate state), and channel
		// parks add runtime noise. The slack covers that one-time
		// warm-up; 126 extra frames of per-frame allocation would blow
		// far past it.
		{"v3-workers-2", WriterOptions{Version: VersionV3, Workers: 2}, 32},
		{"v3-flate-workers-2", WriterOptions{Version: VersionV3, Compress: true, Workers: 2}, 64},
	} {
		aSmall, aLarge := measure(tc.opts, 2), measure(tc.opts, 128)
		if aLarge > aSmall+tc.slack {
			t.Errorf("%s: 128-frame write allocates %.0f, 2-frame allocates %.0f — encode path allocates per frame",
				tc.name, aLarge, aSmall)
		}
	}
}
