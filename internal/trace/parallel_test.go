package trace

import (
	"bytes"
	"fmt"
	"runtime"
	"testing"
	"time"

	"heapmd/internal/event"
)

// parallelWorkerCounts is the oracle's worker matrix: the read-ahead
// case (1), the smallest real pool (2), and a host-sized pool (at
// least 4 so the resequencer sees real fan-out even on small CI
// boxes).
func parallelWorkerCounts() []int {
	wmax := runtime.GOMAXPROCS(0)
	if wmax < 4 {
		wmax = 4
	}
	return []int{1, 2, wmax}
}

// replayOutcome captures everything externally observable about one
// replay: events, symbols, counts, error text, salvage report, and
// the trace-shape Stats.
type replayOutcome struct {
	events []event.Event
	syms   []string
	n      uint64
	errStr string
	info   SalvageInfo
	stats  Stats
}

func runReplay(t *testing.T, data []byte, salvage bool, workers int) replayOutcome {
	t.Helper()
	var out replayOutcome
	var st Stats
	opts := ReadOptions{DecodeWorkers: workers, Stats: &st}
	if salvage {
		sym, info, err := SalvageWith(bytes.NewReader(data), collectSink(&out.events), opts)
		if err != nil {
			out.errStr = err.Error()
		} else {
			out.info = *info
			out.n = info.EventsRecovered
		}
		if sym != nil {
			out.syms = symNames(sym)
		}
	} else {
		sym, n, err := ReplayWith(bytes.NewReader(data), collectSink(&out.events), opts)
		out.n = n
		if err != nil {
			out.errStr = err.Error()
		}
		if sym != nil {
			out.syms = symNames(sym)
		}
	}
	out.stats = st.shape()
	return out
}

func symNames(sym *event.Symtab) []string {
	names := make([]string, 0, sym.Len())
	for id := event.FnID(1); id <= event.FnID(sym.Len()); id++ {
		names = append(names, sym.Name(id))
	}
	return names
}

func diffOutcome(serial, parallel replayOutcome) string {
	if serial.errStr != parallel.errStr {
		return fmt.Sprintf("error %q vs %q", serial.errStr, parallel.errStr)
	}
	if serial.n != parallel.n || len(serial.events) != len(parallel.events) {
		return fmt.Sprintf("events %d (%d delivered) vs %d (%d delivered)",
			serial.n, len(serial.events), parallel.n, len(parallel.events))
	}
	for i := range serial.events {
		if serial.events[i] != parallel.events[i] {
			return fmt.Sprintf("event %d differs", i)
		}
	}
	if len(serial.syms) != len(parallel.syms) {
		return fmt.Sprintf("symtab size %d vs %d", len(serial.syms), len(parallel.syms))
	}
	for i := range serial.syms {
		if serial.syms[i] != parallel.syms[i] {
			return fmt.Sprintf("symbol %d %q vs %q", i, serial.syms[i], parallel.syms[i])
		}
	}
	if serial.info != parallel.info {
		return fmt.Sprintf("salvage info %+v vs %+v", serial.info, parallel.info)
	}
	if serial.stats != parallel.stats {
		return fmt.Sprintf("stats %+v vs %+v", serial.stats, parallel.stats)
	}
	return ""
}

// parallelOracleTraces builds small many-framed traces in every framed
// format (plus damage-friendly extras): the cross-version matrix the
// parallel reader must replay identically to the serial one.
func parallelOracleTraces(t *testing.T) map[string][]byte {
	sym := event.NewSymtab()
	sym.Intern("alpha")
	sym.Intern("beta")
	evs := v3TestEvents(30)
	big := v3TestEvents(3*DefaultBatchRecords + 17)

	traces := map[string][]byte{
		"v2":       writeV2(t, evs, sym, 5),
		"v3":       writeV3(t, evs, sym, 5, false),
		"v3-flate": writeV3(t, evs, sym, 5, true),
		"v2-big":   writeV2(t, big, sym, 0),
		"v3-big":   writeV3(t, big, sym, 0, false),
		"v3z-big":  writeV3(t, big, sym, 0, true),
	}
	// Trailing garbage after a valid end frame: scanner must stop at
	// the end frame and report the same trailing-byte error/salvage.
	traces["v3-trailing"] = append(bytes.Clone(traces["v3"]), 0xde, 0xad, 0xbe, 0xef)
	return traces
}

// TestParallelDecodeEquivalence is the oracle at the heart of the
// pipeline: for every framed format, every worker count, strict and
// salvage modes, the parallel reader must match the serial reader
// event-for-event, symbol-for-symbol, error-for-error — on the clean
// trace and on every truncation of it at every byte offset.
func TestParallelDecodeEquivalence(t *testing.T) {
	for name, data := range parallelOracleTraces(t) {
		t.Run(name, func(t *testing.T) {
			// Every-offset truncation on the small traces; strided on the
			// big ones (which exist to cross frame-count > depth).
			stride := 1
			if len(data) > 4096 {
				stride = 211
			}
			variants := [][]byte{data}
			for cut := 0; cut < len(data); cut += stride {
				variants = append(variants, data[:cut])
			}
			for _, workers := range parallelWorkerCounts() {
				for _, salvage := range []bool{false, true} {
					for vi, v := range variants {
						serial := runReplay(t, v, salvage, 0)
						parallel := runReplay(t, v, salvage, workers)
						if d := diffOutcome(serial, parallel); d != "" {
							t.Fatalf("workers=%d salvage=%v variant=%d (len %d): %s",
								workers, salvage, vi, len(v), d)
						}
					}
				}
			}
		})
	}
}

// TestParallelBitFlipEquivalence flips every byte of a compressed v3
// trace — frame headers, CRCs, compressed bodies — and demands the
// parallel readers agree with the serial one on the exact failure.
func TestParallelBitFlipEquivalence(t *testing.T) {
	sym := event.NewSymtab()
	sym.Intern("alpha")
	data := writeV3(t, v3TestEvents(30), sym, 5, true)
	for _, workers := range []int{2, parallelWorkerCounts()[2]} {
		for i := range data {
			mut := bytes.Clone(data)
			mut[i] ^= 0x40
			serial := runReplay(t, mut, false, 0)
			parallel := runReplay(t, mut, false, workers)
			if d := diffOutcome(serial, parallel); d != "" {
				t.Fatalf("workers=%d flipped byte %d: %s", workers, i, d)
			}
			serialS := runReplay(t, mut, true, 0)
			parallelS := runReplay(t, mut, true, workers)
			if d := diffOutcome(serialS, parallelS); d != "" {
				t.Fatalf("workers=%d flipped byte %d salvage: %s", workers, i, d)
			}
		}
	}
}

// TestParallelV1Serial: v1 traces have no frames; any DecodeWorkers
// setting must fall back to the synchronous reader and record that in
// Stats.
func TestParallelV1Serial(t *testing.T) {
	var buf bytes.Buffer
	w, err := NewWriterV1(&buf)
	if err != nil {
		t.Fatal(err)
	}
	evs := testEvents(100)
	for _, e := range evs {
		w.Emit(e)
	}
	if err := w.Close(event.NewSymtab()); err != nil {
		t.Fatal(err)
	}
	var st Stats
	var got []event.Event
	_, n, err := ReplayWith(bytes.NewReader(buf.Bytes()), collectSink(&got), ReadOptions{DecodeWorkers: 8, Stats: &st})
	if err != nil || n != uint64(len(evs)) {
		t.Fatalf("v1 replay with workers: n=%d err=%v", n, err)
	}
	if st.DecodeWorkers != 0 {
		t.Errorf("v1 DecodeWorkers = %d, want 0 (unframed format reads synchronously)", st.DecodeWorkers)
	}
}

// TestParallelStats: the pipeline must report its worker count, and a
// sink much slower than decode must register scanner stalls (every
// buffer waits downstream while the scanner has frames ready).
func TestParallelStats(t *testing.T) {
	data := writeV3(t, v3TestEvents(64*8), nil, 8, false) // 64 frames
	var st Stats
	slowBatch := batchSinkFunc(func(evs []event.Event) {
		time.Sleep(500 * time.Microsecond)
	})
	_, n, err := ReplayWith(bytes.NewReader(data), slowBatch, ReadOptions{DecodeWorkers: 2, Stats: &st})
	if err != nil {
		t.Fatal(err)
	}
	if n != 64*8 {
		t.Fatalf("replayed %d events, want %d", n, 64*8)
	}
	if st.DecodeWorkers != 2 {
		t.Errorf("DecodeWorkers = %d, want 2", st.DecodeWorkers)
	}
	if st.ScannerStalls == 0 {
		t.Errorf("ScannerStalls = 0 over %d frames with a slow sink; scanner should have outrun the pipeline", st.EventFrames)
	}
}

// batchSinkFunc adapts a func to event.BatchSink.
type batchSinkFunc func([]event.Event)

func (f batchSinkFunc) Emit(e event.Event)          { f([]event.Event{e}) }
func (f batchSinkFunc) EmitBatch(evs []event.Event) { f(evs) }

// TestParallelWriterDeterminism: the encode pipeline must produce
// byte-identical traces to the synchronous writer at every worker
// count, with and without compression, across flush patterns — the
// resequencer plus deterministic per-frame encoding make worker count
// unobservable on the wire.
func TestParallelWriterDeterminism(t *testing.T) {
	sym := event.NewSymtab()
	sym.Intern("alpha")
	sym.Intern("beta")
	evs := v3TestEvents(10*DefaultBatchRecords + 73) // >8 frames: symtab checkpoints fire

	write := func(workers, flushEvery int, compress bool) []byte {
		var buf bytes.Buffer
		w, err := NewWriterWith(&buf, WriterOptions{Version: VersionV3, Compress: compress, Workers: workers})
		if err != nil {
			t.Fatal(err)
		}
		w.SetSymtab(sym)
		for i, e := range evs {
			w.Emit(e)
			if flushEvery > 0 && (i+1)%flushEvery == 0 {
				if err := w.Flush(); err != nil {
					t.Fatal(err)
				}
			}
		}
		if err := w.Close(sym); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}

	for _, compress := range []bool{false, true} {
		for _, flushEvery := range []int{0, 97} {
			want := write(0, flushEvery, compress)
			for _, workers := range []int{1, 2, 4} {
				got := write(workers, flushEvery, compress)
				if !bytes.Equal(want, got) {
					t.Fatalf("compress=%v flushEvery=%d workers=%d: output differs from synchronous writer (%d vs %d bytes)",
						compress, flushEvery, workers, len(want), len(got))
				}
			}
		}
	}

	// And the parallel reader round-trips the parallel writer's output.
	data := write(3, 0, true)
	serial := runReplay(t, data, false, 0)
	parallel := runReplay(t, data, false, 3)
	if d := diffOutcome(serial, parallel); d != "" {
		t.Fatalf("round-trip: %s", d)
	}
	if serial.errStr != "" || serial.n != uint64(len(evs)) {
		t.Fatalf("round-trip replay: n=%d err=%q", serial.n, serial.errStr)
	}
}

// failAfterWriter fails every Write after the first n bytes.
type failAfterWriter struct {
	n   int
	err error
}

func (w *failAfterWriter) Write(p []byte) (int, error) {
	if w.n <= 0 {
		return 0, w.err
	}
	if len(p) > w.n {
		n := w.n
		w.n = 0
		return n, w.err
	}
	w.n -= len(p)
	return len(p), nil
}

// TestParallelWriterError: an I/O failure under the pipelined writer
// must surface as a sticky error on Flush/Close, without hanging and
// without leaking goroutines.
func TestParallelWriterError(t *testing.T) {
	errBoom := fmt.Errorf("disk full")
	before := runtime.NumGoroutine()
	for i := 0; i < 10; i++ {
		w, err := NewWriterWith(&failAfterWriter{n: 300, err: errBoom}, WriterOptions{Version: VersionV3, Compress: true, Workers: 2})
		if err != nil {
			t.Fatal(err)
		}
		for _, e := range v3TestEvents(4 * DefaultBatchRecords) {
			w.Emit(e)
		}
		if err := w.Close(nil); err == nil {
			t.Fatal("Close succeeded despite write failure")
		}
	}
	deadline := time.Now().Add(2 * time.Second)
	for runtime.NumGoroutine() > before+2 {
		if time.Now().After(deadline) {
			t.Fatalf("goroutines grew from %d to %d after failed pipelined writes", before, runtime.NumGoroutine())
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestParallelWriterRejectsV2: encode workers are a v3 feature; the
// fixed-width v2 writer must refuse them rather than silently ignore
// the knob.
func TestParallelWriterRejectsV2(t *testing.T) {
	var buf bytes.Buffer
	if _, err := NewWriterWith(&buf, WriterOptions{Version: Version, Workers: 2}); err == nil {
		t.Fatal("v2 writer accepted Workers")
	}
}

// TestParallelReplayThroughputGate: on a multi-core machine, the
// decode pipeline must actually buy throughput on compressed traces —
// inflate is ~3/4 of serial flate-replay cost, so fanning it out
// across ≥ 4 cores must at least double events/sec versus the
// synchronous decoder. Skipped below 4 cores (this is a parallelism
// gate; the single-core case is covered by the equivalence oracle and
// by DefaultDecodeWorkers resolving to synchronous there).
func TestParallelReplayThroughputGate(t *testing.T) {
	if runtime.GOMAXPROCS(0) < 4 {
		t.Skipf("GOMAXPROCS=%d: pipeline speedup unobservable, skipping throughput gate", runtime.GOMAXPROCS(0))
	}
	if testing.Short() {
		t.Skip("short mode")
	}
	const events = 1 << 20
	data := writeV3(t, v3TestEvents(events), nil, 0, true)

	run := func(workers int) float64 {
		best := 0.0
		for trial := 0; trial < 3; trial++ {
			var c event.Counter
			start := time.Now()
			_, n, err := ReplayWith(bytes.NewReader(data), &c, ReadOptions{DecodeWorkers: workers})
			if err != nil || n != events {
				t.Fatalf("workers=%d: n=%d err=%v", workers, n, err)
			}
			if rate := float64(events) / time.Since(start).Seconds(); rate > best {
				best = rate
			}
		}
		return best
	}

	serial := run(0)
	parallel := run(runtime.GOMAXPROCS(0))
	t.Logf("v3-flate replay: serial %.1fM ev/s, parallel %.1fM ev/s (%.2fx, %d cores)",
		serial/1e6, parallel/1e6, parallel/serial, runtime.GOMAXPROCS(0))
	if parallel < 2*serial {
		t.Errorf("parallel flate replay %.1fM ev/s is under 2x serial %.1fM ev/s on %d cores",
			parallel/1e6, serial/1e6, runtime.GOMAXPROCS(0))
	}
}

// TestParallelNoGoroutineLeak: every exit path — clean end, strict
// corruption (early consumer exit), salvage — must tear the pipeline
// down completely; halt() waits for the scanner and every worker.
func TestParallelNoGoroutineLeak(t *testing.T) {
	clean := writeV3(t, v3TestEvents(200), nil, 10, true)
	cut := clean[:len(clean)*2/3]
	flipped := bytes.Clone(clean)
	flipped[len(flipped)/3] ^= 0x01

	before := runtime.NumGoroutine()
	for i := 0; i < 50; i++ {
		for _, data := range [][]byte{clean, cut, flipped} {
			var c event.Counter
			ReplayWith(bytes.NewReader(data), &c, ReadOptions{DecodeWorkers: 3})
			SalvageWith(bytes.NewReader(data), &c, ReadOptions{DecodeWorkers: 3})
		}
	}
	// halt() waits synchronously, so no settling loop should be needed;
	// allow a little scheduler noise anyway.
	deadline := time.Now().Add(2 * time.Second)
	for {
		after := runtime.NumGoroutine()
		if after <= before+2 {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("goroutines grew from %d to %d after parallel replays", before, after)
		}
		runtime.Gosched()
		time.Sleep(10 * time.Millisecond)
	}
}
