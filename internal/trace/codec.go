package trace

import (
	"bytes"
	"compress/flate"
	"errors"
	"io"
)

// Wire values of the v3 event-frame flags byte: which codec the frame
// body is stored under. The writer only sets a non-raw codec when the
// compressed body actually came out smaller, so every codec value is
// a pure storage decision — replay output is identical either way.
const (
	codecRaw   byte = 0
	codecFlate byte = 1
)

// codec compresses and decompresses v3 event-frame bodies. One codec
// instance belongs to one Writer or one frame decoder and is reused
// across frames (implementations keep their compression state and
// scratch around), so steady-state framing allocates nothing. Not
// goroutine-safe.
type codec interface {
	// ID is the flags value identifying this codec on the wire.
	ID() byte
	// Compress appends the compressed form of body to dst.
	Compress(dst *bytes.Buffer, body []byte) error
	// Decompress inflates body into dst (reusing its capacity) and
	// returns the decompressed bytes. A stream that inflates to more
	// than max bytes is corrupt — max is derived from the frame's
	// declared record count, bounding what a damaged length field can
	// make replay allocate.
	Decompress(dst, body []byte, max int) ([]byte, error)
}

var errOversizedFrame = errors.New("trace: compressed frame inflates past its declared size")

// flateCodec is the stdlib DEFLATE codec behind the v3 -compress
// option. flate reaches ~2x on columnar residue at BestSpeed, is in
// the standard library (no new dependencies), and both directions
// support state reuse (Writer.Reset, flate.Resetter).
type flateCodec struct {
	fw  *flate.Writer
	fr  io.ReadCloser
	src bytes.Reader
}

func (c *flateCodec) ID() byte { return codecFlate }

func (c *flateCodec) Compress(dst *bytes.Buffer, body []byte) error {
	if c.fw == nil {
		fw, err := flate.NewWriter(dst, flate.BestSpeed)
		if err != nil {
			return err
		}
		c.fw = fw
	} else {
		c.fw.Reset(dst)
	}
	if _, err := c.fw.Write(body); err != nil {
		return err
	}
	return c.fw.Close()
}

func (c *flateCodec) Decompress(dst, body []byte, max int) ([]byte, error) {
	c.src.Reset(body)
	if c.fr == nil {
		c.fr = flate.NewReader(&c.src)
	} else if err := c.fr.(flate.Resetter).Reset(&c.src, nil); err != nil {
		return nil, err
	}
	if cap(dst) < max {
		dst = make([]byte, max)
	}
	dst = dst[:max]
	n, err := io.ReadFull(c.fr, dst)
	if err == io.EOF || err == io.ErrUnexpectedEOF {
		// Stream ended before max bytes: the normal case, since max is
		// a worst-case bound, not the exact size.
		return dst[:n], nil
	}
	if err != nil {
		return nil, err
	}
	// Exactly max bytes so far; anything further means the stream lies
	// about its size.
	var probe [1]byte
	if m, _ := c.fr.Read(probe[:]); m > 0 {
		return nil, errOversizedFrame
	}
	return dst, nil
}
