package trace

import (
	"bytes"
	"compress/flate"
	"errors"
)

// Wire values of the v3 event-frame flags byte: which codec the frame
// body is stored under. The writer only sets a non-raw codec when the
// compressed body actually came out smaller, so every codec value is
// a pure storage decision — replay output is identical either way.
const (
	codecRaw   byte = 0
	codecFlate byte = 1
)

// codec compresses and decompresses v3 event-frame bodies. One codec
// instance belongs to one Writer or one frame decoder and is reused
// across frames (implementations keep their compression state and
// scratch around), so steady-state framing allocates nothing. Not
// goroutine-safe.
type codec interface {
	// ID is the flags value identifying this codec on the wire.
	ID() byte
	// Compress appends the compressed form of body to dst.
	Compress(dst *bytes.Buffer, body []byte) error
	// Decompress inflates body into dst (reusing its capacity) and
	// returns the decompressed bytes. A stream that inflates to more
	// than max bytes is corrupt — max is derived from the frame's
	// declared record count, bounding what a damaged length field can
	// make replay allocate.
	Decompress(dst, body []byte, max int) ([]byte, error)
}

var errOversizedFrame = errors.New("trace: compressed frame inflates past its declared size")

// flateCodec is the DEFLATE codec behind the v3 -compress option.
// flate reaches ~2x on columnar residue at BestSpeed and needs no new
// dependencies: compression is the stdlib flate.Writer (reused via
// Reset), decompression is the in-package one-shot inflater
// (inflate.go), whose tables and scratch are reused across frames —
// the stdlib reader's per-dynamic-block table allocations were ~84%
// of flate-replay's allocation count.
type flateCodec struct {
	fw  *flate.Writer
	inf inflater
}

func (c *flateCodec) ID() byte { return codecFlate }

func (c *flateCodec) Compress(dst *bytes.Buffer, body []byte) error {
	if c.fw == nil {
		fw, err := flate.NewWriter(dst, flate.BestSpeed)
		if err != nil {
			return err
		}
		c.fw = fw
	} else {
		c.fw.Reset(dst)
	}
	if _, err := c.fw.Write(body); err != nil {
		return err
	}
	return c.fw.Close()
}

func (c *flateCodec) Decompress(dst, body []byte, max int) ([]byte, error) {
	if cap(dst) < max {
		dst = make([]byte, max)
	}
	dst = dst[:max]
	n, err := c.inf.decompress(dst, body)
	if err != nil {
		return nil, err
	}
	return dst[:n], nil
}
