// Package trace records and replays instrumentation event streams,
// enabling HeapMD's second usage mode (paper Section 2): post-mortem
// analysis, where the program's execution trace is captured online and
// compared against the model offline. Offline analysis can use whole-
// trace information and avoids perturbing the monitored program beyond
// the cost of logging.
//
// Because HeapMD runs against *buggy* programs, the trace is written
// by a process that may crash, corrupt its own output, or be killed
// mid-run. Format v2 is therefore crash-safe: events travel in framed
// record batches, each frame carrying a CRC32 over its payload, and
// the symbol table is checkpointed periodically instead of living
// only in an end-of-file trailer. Replay of a truncated or corrupted
// v2 trace can salvage every complete, checksum-valid frame before
// the damage (see Salvage and SalvageInfo) instead of failing
// wholesale.
//
// Format v2 (all integers little-endian):
//
//	header:  magic "HMDT" | version u32 (=2)
//	frames:  kind u8 | payloadLen u32 | crc32(payload) u32 | payload
//	  kind 1 (events): payload is n records of 37 bytes each:
//	         type u8 | fn u32 | addr u64 | value u64 | old u64 | size u64
//	  kind 2 (symtab): full symbol-table snapshot:
//	         count u32, then count length-prefixed names.
//	         Later checkpoints supersede earlier ones.
//	  kind 3 (end): eventCount u64 — marks a clean close.
//
// Format v3 (written by NewWriterWith) keeps the v2 envelope — the
// same header shape, frame kinds, CRC32C framing, symtab checkpoints
// and end frame, so frame walking and salvage are version-independent
// — but lays event-frame payloads out columnarly:
//
//	header:  magic "HMDT" | version u32 (=3)
//	  kind 1 (events): flags u8 | count u32 | body
//	         body: one array per Event field, delta+varint encoded
//	         (see columnar.go); flags selects the body codec —
//	         0 = raw, 1 = flate-compressed (only when smaller).
//	  kinds 2 and 3: byte-identical to v2.
//
// Clustered addresses and near-monotonic columns collapse to one or
// two bytes per event (~6x smaller than v2's fixed-width records on
// recorded workload traces), and each frame's delta chains restart at
// zero, so salvage still recovers every complete frame independently.
//
// Format v1 (still readable; written by NewWriterV1):
//
//	header:  magic "HMDT" | version u32 (=1)
//	events:  n records of 37 bytes each (as above, unframed)
//	trailer: symtab (count u32, then count length-prefixed names)
//	         | symtabLen u64 | eventCount u64 | magic "TDMH"
//
// v1 keeps the symbol table solely in the trailer, so a run that
// crashes before Close loses it — and, because nothing in the body is
// checksummed, the best v1 salvage can do is reinterpret the bytes
// after the header as records.
package trace

import (
	"bufio"
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"runtime"

	"heapmd/internal/event"
)

var (
	headerMagic  = [4]byte{'H', 'M', 'D', 'T'}
	trailerMagic = [4]byte{'T', 'D', 'M', 'H'}
)

// Version is the v2 (crash-safe, fixed-width records) trace format
// version: what NewWriter emits and the default interchange format.
const Version uint32 = 2

// VersionV1 is the legacy trailer-based format, still readable.
const VersionV1 uint32 = 1

// VersionV3 is the columnar delta-encoded format (optionally
// flate-compressed per frame), written by NewWriterWith. It shares
// v2's frame envelope and salvage semantics.
const VersionV3 uint32 = 3

const recordSize = 1 + 4 + 8 + 8 + 8 + 8

// Frame kinds (v2).
const (
	frameEvents byte = 1
	frameSymtab byte = 2
	frameEnd    byte = 3
)

const frameHeaderSize = 1 + 4 + 4

// maxFramePayload bounds a single frame so that a corrupted length
// field cannot demand a multi-gigabyte allocation.
const maxFramePayload = 1 << 24

// DefaultBatchRecords is how many event records accumulate before the
// Writer seals them into a checksummed frame. Larger batches amortize
// frame overhead; smaller batches lose less data when the monitored
// process dies mid-batch.
const DefaultBatchRecords = 512

// DefaultCheckpointFrames is how many event frames elapse between
// symbol-table checkpoints (when the Writer has a symtab attached).
const DefaultCheckpointFrames = 8

var crcTable = crc32.MakeTable(crc32.Castagnoli)

// ErrCorrupt indicates a malformed trace file.
var ErrCorrupt = errors.New("trace: corrupt trace")

// SalvageInfo describes what salvage recovered from a damaged trace.
// A clean replay yields the zero value (Truncated false, nothing
// dropped).
type SalvageInfo struct {
	// EventsRecovered is the number of events delivered to the sink.
	EventsRecovered uint64
	// BytesDropped is the size of the unreadable region that salvage
	// skipped (always a suffix: salvage keeps the longest valid
	// prefix).
	BytesDropped uint64
	// Truncated reports that the trace did not end cleanly — the v2
	// end frame (or v1 trailer) was missing or damaged, typically
	// because the monitored process crashed mid-run.
	Truncated bool
}

// Salvaged reports whether anything was lost.
func (s *SalvageInfo) Salvaged() bool { return s.Truncated || s.BytesDropped > 0 }

func (s *SalvageInfo) String() string {
	if !s.Salvaged() {
		return "clean"
	}
	return fmt.Sprintf("salvaged %d events, dropped %d bytes (truncated=%v)",
		s.EventsRecovered, s.BytesDropped, s.Truncated)
}

// Writer streams events to an underlying writer in format v2 or v3.
// It implements event.Sink; I/O errors are sticky and surfaced by
// Close.
//
// Events accumulate into record batches that are sealed into CRC32-
// framed chunks every DefaultBatchRecords events; if the process dies
// between batches, everything already framed remains salvageable.
// Attach the run's symbol table with SetSymtab to also checkpoint it
// periodically, so function names survive a crash too.
type Writer struct {
	w       *bufio.Writer
	version uint32
	n       uint64 // events emitted
	err     error
	batch   []byte       // v2: pending, not-yet-framed records
	evs     event.Batch  // v3: pending, not-yet-framed events
	enc     []byte       // v3: columnar body scratch, reused per frame
	payload []byte       // v3: assembled frame payload scratch
	comp    bytes.Buffer // v3: compressed body scratch
	cdc     codec        // v3: nil = never compress
	frames  int          // event frames since the last symtab checkpoint
	sym     *event.Symtab
	pl      *encodePipeline // non-nil: v3 batches encode on a worker pool
	pevs    *event.Batch    // pipelined path's pending batch (from pl's pool)
	// hdr is the frame-header scratch. A local array would be moved to
	// the heap on every writeFrame call (bufio may hand the slice to
	// the underlying io.Writer, so it escapes); keeping it on the
	// Writer makes the steady-state emit path allocation-free.
	hdr [frameHeaderSize]byte
}

// WriterOptions configure NewWriterWith.
type WriterOptions struct {
	// Version selects the trace format: Version (v2, fixed-width
	// records) or VersionV3 (columnar delta-encoded batches). Zero
	// means VersionV3 — callers reaching for options want the compact
	// format; NewWriter keeps writing v2.
	Version uint32
	// Compress flate-compresses each v3 event-frame body, for traces
	// headed to cold storage. The flag is per frame on the wire: a
	// frame is stored compressed only when that is actually smaller,
	// and replay output is identical either way. Only valid with v3.
	Compress bool
	// Workers moves v3 frame encoding (columnar encode + flate) off
	// the Emit path onto a pool of that many goroutines, with a single
	// ordered writer performing all I/O. Output is byte-identical to
	// the synchronous writer at any worker count. Zero means
	// synchronous; negative is treated as zero. Only valid with v3.
	Workers int
}

// NewWriter writes the v2 header and returns a Writer.
func NewWriter(w io.Writer) (*Writer, error) {
	return NewWriterWith(w, WriterOptions{Version: Version})
}

// NewWriterWith writes the header for the selected format version and
// returns a Writer for it.
func NewWriterWith(w io.Writer, opts WriterOptions) (*Writer, error) {
	v := opts.Version
	if v == 0 {
		v = VersionV3
	}
	if v != Version && v != VersionV3 {
		return nil, fmt.Errorf("trace: cannot write format version %d", v)
	}
	if opts.Compress && v != VersionV3 {
		return nil, errors.New("trace: compression requires format v3")
	}
	if opts.Workers > 0 && v != VersionV3 {
		return nil, errors.New("trace: encode workers require format v3")
	}
	bw := bufio.NewWriterSize(w, 1<<16)
	if err := writeHeader(bw, v); err != nil {
		return nil, err
	}
	tw := &Writer{w: bw, version: v}
	if v == Version {
		tw.batch = make([]byte, 0, DefaultBatchRecords*recordSize)
	}
	if opts.Compress {
		tw.cdc = &flateCodec{}
	}
	if opts.Workers > 0 {
		tw.pl = newEncodePipeline(bw, opts.Compress, opts.Workers)
		tw.pevs = <-tw.pl.freeBatch
	}
	return tw, nil
}

// Version returns the format version this Writer emits.
func (tw *Writer) Version() uint32 { return tw.version }

func writeHeader(w io.Writer, version uint32) error {
	if _, err := w.Write(headerMagic[:]); err != nil {
		return err
	}
	var v [4]byte
	binary.LittleEndian.PutUint32(v[:], version)
	_, err := w.Write(v[:])
	return err
}

// SetSymtab attaches the run's live symbol table; the Writer snapshots
// it into the trace every DefaultCheckpointFrames event frames, so a
// crashed run still replays with symbolized functions. Without it,
// symbols are written only by Close.
func (tw *Writer) SetSymtab(sym *event.Symtab) { tw.sym = sym }

// Emit implements event.Sink.
func (tw *Writer) Emit(e event.Event) {
	if tw.err != nil {
		return
	}
	if tw.version == VersionV3 {
		if tw.pl != nil {
			tw.pevs.Append(e)
			tw.n++
			if tw.pevs.Len() >= DefaultBatchRecords {
				tw.flushBatch()
			}
			return
		}
		tw.evs.Append(e)
		tw.n++
		if tw.evs.Len() >= DefaultBatchRecords {
			tw.flushBatch()
		}
		return
	}
	var rec [recordSize]byte
	b := rec[:]
	b[0] = byte(e.Type)
	binary.LittleEndian.PutUint32(b[1:], uint32(e.Fn))
	binary.LittleEndian.PutUint64(b[5:], e.Addr)
	binary.LittleEndian.PutUint64(b[13:], e.Value)
	binary.LittleEndian.PutUint64(b[21:], e.Old)
	binary.LittleEndian.PutUint64(b[29:], e.Size)
	tw.batch = append(tw.batch, b...)
	tw.n++
	if len(tw.batch) >= DefaultBatchRecords*recordSize {
		tw.flushBatch()
	}
}

// flushBatch seals the pending records into an event frame and, when
// due, follows it with a symtab checkpoint.
func (tw *Writer) flushBatch() {
	if tw.err != nil {
		return
	}
	switch {
	case tw.pl != nil:
		if tw.pevs.Len() == 0 {
			return
		}
		tw.pevs = tw.pl.submitEvents(tw.pevs)
	case tw.version == VersionV3 && tw.evs.Len() > 0:
		payload := tw.encodeEventsV3()
		if tw.err != nil {
			return
		}
		tw.writeFrame(frameEvents, payload)
		tw.evs.Reset()
	case tw.version == Version && len(tw.batch) > 0:
		tw.writeFrame(frameEvents, tw.batch)
		tw.batch = tw.batch[:0]
	default:
		return
	}
	tw.frames++
	if tw.sym != nil && tw.frames >= DefaultCheckpointFrames {
		payload := encodeSymtab(tw.sym)
		if tw.pl != nil {
			tw.pl.submitFrame(frameSymtab, payload)
		} else {
			tw.writeFrame(frameSymtab, payload)
		}
		tw.frames = 0
	}
}

// encodeEventsV3 assembles the pending batch into a v3 event-frame
// payload (flags | count | body), reusing the Writer's scratch
// buffers. With a codec attached, the body is stored compressed only
// when that is smaller — the flags byte records the choice per frame.
func (tw *Writer) encodeEventsV3() []byte {
	evs := tw.evs.Events()
	tw.enc = encodeColumns(tw.enc[:0], evs)
	body := tw.enc
	flags := codecRaw
	if tw.cdc != nil {
		tw.comp.Reset()
		if err := tw.cdc.Compress(&tw.comp, body); err != nil {
			tw.err = err
			return nil
		}
		if tw.comp.Len() < len(body) {
			body = tw.comp.Bytes()
			flags = tw.cdc.ID()
		}
	}
	var count [4]byte
	binary.LittleEndian.PutUint32(count[:], uint32(len(evs)))
	tw.payload = append(tw.payload[:0], flags)
	tw.payload = append(tw.payload, count[:]...)
	tw.payload = append(tw.payload, body...)
	return tw.payload
}

func (tw *Writer) writeFrame(kind byte, payload []byte) {
	if tw.err != nil {
		return
	}
	tw.hdr[0] = kind
	binary.LittleEndian.PutUint32(tw.hdr[1:], uint32(len(payload)))
	binary.LittleEndian.PutUint32(tw.hdr[5:], crc32.Checksum(payload, crcTable))
	if _, err := tw.w.Write(tw.hdr[:]); err != nil {
		tw.err = err
		return
	}
	if _, err := tw.w.Write(payload); err != nil {
		tw.err = err
	}
}

// Events returns the number of events written so far.
func (tw *Writer) Events() uint64 { return tw.n }

// Flush seals any pending batch into a frame and flushes buffered
// bytes to the underlying writer, establishing a salvage point. The
// Writer remains usable.
func (tw *Writer) Flush() error {
	tw.flushBatch()
	if tw.pl != nil {
		if err := tw.pl.flush(); err != nil && tw.err == nil {
			tw.err = err
		}
		return tw.err
	}
	if tw.err == nil {
		tw.err = tw.w.Flush()
	}
	return tw.err
}

// Close seals pending events, writes the final symbol-table
// checkpoint and the end frame, and flushes. The Writer is unusable
// afterwards. sym may be nil if SetSymtab was used (or there are no
// symbols).
func (tw *Writer) Close(sym *event.Symtab) error {
	if tw.err != nil {
		if tw.pl != nil {
			// The pipeline's goroutines must not outlive the Writer even
			// on the sticky-error path.
			tw.pl.close()
			tw.pl = nil
		}
		return tw.err
	}
	tw.flushBatch()
	if sym == nil {
		sym = tw.sym
	}
	if tw.pl != nil {
		var end [8]byte
		binary.LittleEndian.PutUint64(end[:], tw.n)
		tw.pl.submitFrame(frameSymtab, encodeSymtab(sym))
		tw.pl.submitFrame(frameEnd, end[:])
		if err := tw.pl.close(); err != nil && tw.err == nil {
			tw.err = err
		}
		tw.pl = nil
		return tw.err
	}
	tw.writeFrame(frameSymtab, encodeSymtab(sym))
	var end [8]byte
	binary.LittleEndian.PutUint64(end[:], tw.n)
	tw.writeFrame(frameEnd, end[:])
	if tw.err == nil {
		tw.err = tw.w.Flush()
	}
	return tw.err
}

// encodeSymtab renders a full symbol-table snapshot (count, then
// length-prefixed names). A nil symtab encodes as zero entries.
func encodeSymtab(sym *event.Symtab) []byte {
	count := 0
	if sym != nil {
		count = sym.Len()
	}
	size := 4
	for id := event.FnID(1); id <= event.FnID(count); id++ {
		size += 4 + len(sym.Name(id))
	}
	buf := make([]byte, 0, size)
	var u [4]byte
	binary.LittleEndian.PutUint32(u[:], uint32(count))
	buf = append(buf, u[:]...)
	for id := event.FnID(1); id <= event.FnID(count); id++ {
		name := sym.Name(id)
		binary.LittleEndian.PutUint32(u[:], uint32(len(name)))
		buf = append(buf, u[:]...)
		buf = append(buf, name...)
	}
	return buf
}

// decodeSymtab parses an encodeSymtab payload.
func decodeSymtab(payload []byte) (*event.Symtab, error) {
	if len(payload) < 4 {
		return nil, fmt.Errorf("%w: symtab count", ErrCorrupt)
	}
	count := binary.LittleEndian.Uint32(payload)
	rest := payload[4:]
	sym := event.NewSymtab()
	for i := uint32(0); i < count; i++ {
		if len(rest) < 4 {
			return nil, fmt.Errorf("%w: symtab entry", ErrCorrupt)
		}
		n := binary.LittleEndian.Uint32(rest)
		rest = rest[4:]
		if uint64(n) > uint64(len(rest)) {
			return nil, fmt.Errorf("%w: symtab name", ErrCorrupt)
		}
		sym.Intern(string(rest[:n]))
		rest = rest[n:]
	}
	if len(rest) != 0 {
		return nil, fmt.Errorf("%w: symtab trailing bytes", ErrCorrupt)
	}
	return sym, nil
}

func decodeRecord(b []byte) event.Event {
	return event.Event{
		Type:  event.Type(b[0]),
		Fn:    event.FnID(binary.LittleEndian.Uint32(b[1:])),
		Addr:  binary.LittleEndian.Uint64(b[5:]),
		Value: binary.LittleEndian.Uint64(b[13:]),
		Old:   binary.LittleEndian.Uint64(b[21:]),
		Size:  binary.LittleEndian.Uint64(b[29:]),
	}
}

// Stats describes the physical shape of a replayed trace: which
// format it was written in and what the bytes cost per event — the
// numbers the replay CLI surfaces and the trace-size regression gate
// checks. Populated via ReadOptions.Stats; identical between the
// synchronous and read-ahead readers, and in salvage mode covers the
// recovered prefix.
type Stats struct {
	// Version is the format version from the trace header.
	Version uint32
	// TotalBytes is the size of the trace file.
	TotalBytes uint64
	// Events is the number of events delivered to the sink.
	Events uint64
	// EventFrames counts decoded event frames (framed formats only).
	EventFrames uint64
	// CompressedFrames counts v3 event frames stored flate-compressed.
	CompressedFrames uint64
	// StoredEventBytes sums the on-disk payload bytes of event frames.
	StoredEventBytes uint64
	// RawEventBytes sums what those payloads occupy uncompressed —
	// equal to StoredEventBytes when no frame is compressed.
	RawEventBytes uint64
	// DecodeWorkers is the decode parallelism replay actually used: 0
	// for the synchronous reader, 1 for the fused read-ahead goroutine,
	// n ≥ 2 for the scanner + n-worker pipeline. The only Stats field
	// that may legitimately differ between reader configurations; all
	// trace-shape fields above are identical at any worker count.
	DecodeWorkers int
	// ScannerStalls counts the times the pipeline's framing scanner had
	// a frame ready but no recycled buffer to scan it into — the
	// consumer side (decode + sink) is the bottleneck. Pipeline only.
	ScannerStalls uint64
	// ResequencerStalls counts decoded frames that arrived at the
	// resequencer out of order and had to wait for an earlier frame —
	// decode-worker skew; large values with an idle sink mean one slow
	// frame (or worker) is gating delivery. Pipeline only.
	ResequencerStalls uint64

	// IngestWorkers is the ingest parallelism replay actually used: 1
	// (or 0) for the serial in-order consumer, n ≥ 2 for a mutator plus
	// n-1 speculative pre-resolvers (logger.Ingest). Like DecodeWorkers
	// and the counters below it is reader-configuration accounting,
	// filled by the replay plumbing rather than the trace reader — the
	// heap image, reports and health are byte-identical at any setting.
	IngestWorkers int
	// SpeculationHits counts stores applied from an accepted
	// pre-resolution. Ingest pipeline only.
	SpeculationHits uint64
	// SpeculationFallbacks counts stores the mutator applied through
	// the serial lookup despite the pipeline (abandoned or
	// generation-invalidated resolutions). Ingest pipeline only.
	SpeculationFallbacks uint64
	// PreResolveStalls counts stores a pre-resolver abandoned because a
	// table mutation was in flight. Ingest pipeline only.
	PreResolveStalls uint64
	// MutatorStalls counts batches the in-order mutator had to wait on
	// before their resolution landed. Ingest pipeline only.
	MutatorStalls uint64
}

// shape strips the reader-configuration fields, leaving only the
// trace-shape accounting that must be identical across the
// synchronous, read-ahead, and parallel readers — what equivalence
// tests compare.
func (s *Stats) shape() Stats {
	c := *s
	c.DecodeWorkers = 0
	c.ScannerStalls = 0
	c.ResequencerStalls = 0
	c.IngestWorkers = 0
	c.SpeculationHits = 0
	c.SpeculationFallbacks = 0
	c.PreResolveStalls = 0
	c.MutatorStalls = 0
	return c
}

// BytesPerEvent is the trace's whole-file storage cost per event.
func (s *Stats) BytesPerEvent() float64 {
	if s.Events == 0 {
		return 0
	}
	return float64(s.TotalBytes) / float64(s.Events)
}

// CompressionRatio is raw-over-stored for the event payloads: 1 when
// nothing is compressed, >1 when the per-frame flate pass saved space.
func (s *Stats) CompressionRatio() float64 {
	if s.StoredEventBytes == 0 {
		return 1
	}
	return float64(s.RawEventBytes) / float64(s.StoredEventBytes)
}

// DefaultReadAhead reports whether the read-ahead decoder is worth
// enabling on this host. The decode goroutine overlaps CRC checking
// and column decoding with heap-image mutation, but on a single-core
// box it only adds channel overhead (BENCH_pr4.json: 25.6M vs 29.6M
// events/sec synchronous), so the heuristic is: on iff more than one
// core is usable. Callers that know better pass an explicit value.
//
// Deprecated: read-ahead is the DecodeWorkers=1 case of the parallel
// decode pipeline; use DefaultDecodeWorkers.
func DefaultReadAhead() bool { return runtime.GOMAXPROCS(0) > 1 }

// DefaultDecodeWorkers is the recommended ReadOptions.DecodeWorkers
// for this host: one decode worker per usable core on a multi-core
// box, and the synchronous reader (0) on a single core, where any
// pipeline — including the old single-goroutine read-ahead — only
// adds channel overhead for decode work the lone core must do anyway.
func DefaultDecodeWorkers() int {
	if n := runtime.GOMAXPROCS(0); n > 1 {
		return n
	}
	return 0
}

// ReadOptions configure the replay fast path; the zero value is the
// default synchronous reader.
type ReadOptions struct {
	// DecodeWorkers sets the frame-decode parallelism for framed
	// (v2/v3) traces; v1 traces (unframed) always read synchronously.
	//
	//	0   synchronous reader (decode inline with the sink)
	//	1   read-ahead: one goroutine CRC-checks and decodes frame N+1
	//	    while the sink consumes frame N
	//	n≥2 pipeline: a framing scanner fans whole frames to n workers
	//	    (CRC + inflate + columnar decode into recycled buffers)
	//	    and an in-order resequencer feeds the sink
	//
	// Delivery order, salvage behavior, and error semantics are
	// identical to the synchronous reader at any setting — the lowest
	// damaged frame wins, reported at the same offsets. Negative
	// values read synchronously. See DefaultDecodeWorkers for the
	// host heuristic; sched.ParseDecodeWorkers normalizes CLI values.
	DecodeWorkers int
	// ReadAhead is the legacy switch for the single-goroutine
	// read-ahead decoder.
	//
	// Deprecated: equivalent to DecodeWorkers=1, which wins if both
	// are set.
	ReadAhead bool
	// Stats, when non-nil, is filled with the trace's format and size
	// accounting as replay proceeds.
	Stats *Stats
}

// decodeWorkers resolves the configured parallelism: DecodeWorkers
// wins over the deprecated ReadAhead flag.
func (o *ReadOptions) decodeWorkers() int {
	if o.DecodeWorkers > 0 {
		return o.DecodeWorkers
	}
	if o.DecodeWorkers == 0 && o.ReadAhead {
		return 1
	}
	return 0
}

// Replay reads a trace (either format version) and delivers every
// event to sink in order. It returns the reconstructed symbol table
// and the number of events replayed. Replay is strict: any damage
// yields ErrCorrupt (events before the damage may already have been
// delivered). Use Salvage to recover the valid prefix of a damaged
// trace instead.
//
// Events are delivered a frame at a time through event.EmitAll: a sink
// implementing event.BatchSink receives each frame's records as one
// borrowed []event.Event batch instead of one Emit call per record.
// The frame-decode loop reuses its payload and batch buffers, so
// steady-state replay allocates nothing per frame.
func Replay(r io.ReadSeeker, sink event.Sink) (*event.Symtab, uint64, error) {
	return ReplayWith(r, sink, ReadOptions{})
}

// ReplayWith is Replay with control over the reader (see ReadOptions).
func ReplayWith(r io.ReadSeeker, sink event.Sink, opts ReadOptions) (*event.Symtab, uint64, error) {
	sym, n, _, err := replay(r, sink, false, opts)
	return sym, n, err
}

// Salvage reads a possibly-damaged trace, delivering every event from
// the longest valid prefix to sink, and reports what was recovered
// and what was lost. It fails only when not even the 8-byte header
// survives (nothing to salvage) or the version is unknown.
func Salvage(r io.ReadSeeker, sink event.Sink) (*event.Symtab, *SalvageInfo, error) {
	return SalvageWith(r, sink, ReadOptions{})
}

// SalvageWith is Salvage with control over the reader (see ReadOptions).
func SalvageWith(r io.ReadSeeker, sink event.Sink, opts ReadOptions) (*event.Symtab, *SalvageInfo, error) {
	sym, _, info, err := replay(r, sink, true, opts)
	return sym, info, err
}

func replay(r io.ReadSeeker, sink event.Sink, salvage bool, opts ReadOptions) (*event.Symtab, uint64, *SalvageInfo, error) {
	size, err := r.Seek(0, io.SeekEnd)
	if err != nil {
		return nil, 0, nil, err
	}
	if _, err := r.Seek(0, io.SeekStart); err != nil {
		return nil, 0, nil, err
	}
	var hdr [8]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return nil, 0, nil, fmt.Errorf("%w: short header", ErrCorrupt)
	}
	if [4]byte(hdr[:4]) != headerMagic {
		return nil, 0, nil, fmt.Errorf("%w: bad magic", ErrCorrupt)
	}
	v := binary.LittleEndian.Uint32(hdr[4:])
	if opts.Stats != nil {
		*opts.Stats = Stats{Version: v, TotalBytes: uint64(size)}
	}
	switch v {
	case VersionV1:
		return replayV1(r, sink, size, salvage, opts)
	case Version, VersionV3:
		return replayFramed(r, sink, v, size, salvage, opts)
	default:
		if opts.Stats != nil {
			opts.Stats.Version = 0
		}
		return nil, 0, nil, fmt.Errorf("trace: unsupported version %d", v)
	}
}

// frameBuf is the reusable scratch storage for one decoded frame: the
// raw payload bytes and, for event frames, the decoded records. Both
// are recycled across frames, so steady-state frame decoding performs
// no allocation.
type frameBuf struct {
	payload []byte
	events  event.Batch
}

// frameMsg is one fully-validated, fully-decoded frame (or the reason
// decoding stopped). Exactly one terminal message ends every stream:
// either err != nil, or kind == frameEnd.
type frameMsg struct {
	kind       byte
	seq        uint64        // frame sequence number (parallel resequencing)
	events     []event.Event // frameEvents: decoded records (alias buf.events)
	sym        *event.Symtab // frameSymtab: decoded checkpoint
	declared   uint64        // frameEnd: writer's event count
	end        int64         // offset consumed through the last fully-valid frame
	buf        *frameBuf     // must be recycled by the consumer (nil on error paths)
	err        error         // corruption, message-compatible with strict mode
	stored     int           // frameEvents: on-disk payload bytes
	raw        int           // frameEvents: payload bytes before compression
	compressed bool          // frameEvents: body was stored flate-compressed
}

// payloadDecoder turns one CRC-valid frame payload into a frameMsg.
// It is the version-specific half of frame decoding, shared by the
// serial frameDecoder and by each parallel decode worker; its decomp
// and flate state are reused across frames, so one instance belongs
// to exactly one goroutine.
type payloadDecoder struct {
	version uint32
	decomp  []byte     // v3: decompressed body scratch, reused per frame
	inflate flateCodec // v3: reusable flate state
}

// decodePayload validates and decodes payload into msg, filling
// msg.kind and the kind-specific fields, or msg.err. Event records
// decode into buf.events; the caller owns offset bookkeeping.
func (d *payloadDecoder) decodePayload(kind byte, payload []byte, buf *frameBuf, msg *frameMsg) {
	msg.kind = kind
	switch kind {
	case frameEvents:
		if d.version == VersionV3 {
			if err := d.decodeEventsV3(payload, buf, msg); err != nil {
				msg.err = err
			}
			return
		}
		if len(payload)%recordSize != 0 {
			msg.err = errors.New("ragged event frame")
			return
		}
		n := len(payload) / recordSize
		evs := buf.events.Grow(n)
		for i := 0; i < n; i++ {
			evs[i] = decodeRecord(payload[i*recordSize : (i+1)*recordSize])
		}
		msg.events = evs
		msg.stored = len(payload)
		msg.raw = len(payload)
	case frameSymtab:
		s, err := decodeSymtab(payload)
		if err != nil {
			msg.err = errors.New("bad symtab checkpoint")
			return
		}
		msg.sym = s
	case frameEnd:
		if len(payload) != 8 {
			msg.err = errors.New("bad end frame")
			return
		}
		msg.declared = binary.LittleEndian.Uint64(payload)
	default:
		msg.err = fmt.Errorf("unknown frame kind %d", kind)
	}
}

// frameDecoder reads, CRC-checks, and decodes v2/v3 frames
// sequentially. Decoding the payload here — including symtab
// checkpoints and v3 decompression — keeps the consumer side free of
// mid-stream aborts, which is what lets the read-ahead goroutine
// always run to a terminal frame and exit.
type frameDecoder struct {
	br     *bufio.Reader
	offset int64 // consumed through the last fully-valid frame
	size   int64
	hdr    [frameHeaderSize]byte // scratch; a local would escape via io.ReadFull
	dec    payloadDecoder
}

func (d *frameDecoder) next(buf *frameBuf) frameMsg {
	msg := frameMsg{buf: buf, end: d.offset}
	hdr := d.hdr[:]
	if _, err := io.ReadFull(d.br, hdr); err != nil {
		if err == io.EOF && d.offset == d.size {
			// Clean EOF at a frame boundary but no end frame:
			// the writer was killed between batches.
			msg.err = errors.New("missing end frame")
		} else {
			msg.err = errors.New("truncated frame header")
		}
		return msg
	}
	kind := hdr[0]
	payloadLen := binary.LittleEndian.Uint32(hdr[1:])
	wantCRC := binary.LittleEndian.Uint32(hdr[5:])
	if payloadLen > maxFramePayload {
		msg.err = fmt.Errorf("implausible frame length %d", payloadLen)
		return msg
	}
	if cap(buf.payload) < int(payloadLen) {
		// Grow geometrically: v3 frame payloads vary in size (delta
		// content determines length), and exact-fit growth would
		// reallocate on every slightly-larger frame.
		buf.payload = make([]byte, max(int(payloadLen), 2*cap(buf.payload)))
	}
	payload := buf.payload[:payloadLen]
	if _, err := io.ReadFull(d.br, payload); err != nil {
		msg.err = errors.New("truncated frame payload")
		return msg
	}
	if crc32.Checksum(payload, crcTable) != wantCRC {
		msg.err = errors.New("frame checksum mismatch")
		return msg
	}
	d.dec.decodePayload(kind, payload, buf, &msg)
	if msg.err != nil {
		return msg
	}
	d.offset += int64(frameHeaderSize) + int64(payloadLen)
	msg.end = d.offset
	return msg
}

// v3 event-frame payload prefix: flags u8 | count u32.
const v3EventHeaderSize = 5

// decodeEventsV3 decodes a CRC-valid v3 event-frame payload into the
// frame's reusable batch. The CRC already vouches for the bytes, so
// any structural failure here (unknown codec, lying count, ragged
// columns) is writer-side damage and reported as corruption.
func (d *payloadDecoder) decodeEventsV3(payload []byte, buf *frameBuf, msg *frameMsg) error {
	if len(payload) < v3EventHeaderSize {
		return errors.New("short event frame")
	}
	flags := payload[0]
	count := binary.LittleEndian.Uint32(payload[1:])
	if count > maxFrameRecords {
		return fmt.Errorf("implausible event count %d", count)
	}
	body := payload[v3EventHeaderSize:]
	msg.stored = len(payload)
	msg.raw = len(payload)
	if flags != codecRaw {
		if flags != codecFlate {
			return fmt.Errorf("unknown event frame codec %d", flags)
		}
		var err error
		d.decomp, err = d.inflate.Decompress(d.decomp, body, int(count)*maxEncodedRecord+v3EventHeaderSize)
		if err != nil {
			return errors.New("bad compressed event frame")
		}
		body = d.decomp
		msg.raw = v3EventHeaderSize + len(body)
		msg.compressed = true
	}
	evs, err := decodeColumns(body, int(count), buf.events.Grow(int(count)))
	if err != nil {
		return err
	}
	msg.events = evs
	return nil
}

// readAheadDepth is how many decoded frames the read-ahead goroutine
// may run in front of the consumer. Each in-flight frame owns its own
// frameBuf, so depth bounds both memory and the msgs channel.
const readAheadDepth = 4

// replayFramed walks the frame sequence of a v2 or v3 trace — the
// envelope is shared, only the event-frame payload decoding differs.
// Strict mode demands every frame intact plus a matching end frame;
// salvage mode stops at the first damaged frame and keeps everything
// before it. With opts.ReadAhead the frameDecoder runs on its own
// goroutine, recycling frameBufs through a channel pair; the
// goroutine always terminates because the decoder emits exactly one
// terminal message (error or end frame) and the consumer always reads
// to it.
func replayFramed(r io.ReadSeeker, sink event.Sink, version uint32, size int64, salvage bool, opts ReadOptions) (*event.Symtab, uint64, *SalvageInfo, error) {
	workers := opts.decodeWorkers()
	if opts.Stats != nil {
		opts.Stats.DecodeWorkers = workers
	}
	var next func() frameMsg
	var release func(*frameBuf)
	if workers >= 2 {
		pl := newDecodePipeline(r, version, size, workers, opts.Stats)
		defer pl.halt()
		next = pl.next
		release = pl.release
	} else if workers == 1 {
		dec := &frameDecoder{
			br:     bufio.NewReaderSize(r, 1<<16),
			offset: 8,
			size:   size,
			dec:    payloadDecoder{version: version},
		}
		msgs := make(chan frameMsg, readAheadDepth)
		recycle := make(chan *frameBuf, readAheadDepth)
		for i := 0; i < readAheadDepth; i++ {
			recycle <- new(frameBuf)
		}
		go func() {
			for buf := range recycle {
				m := dec.next(buf)
				msgs <- m
				if m.err != nil || m.kind == frameEnd {
					return
				}
			}
		}()
		next = func() frameMsg { return <-msgs }
		release = func(b *frameBuf) { recycle <- b }
	} else {
		dec := &frameDecoder{
			br:     bufio.NewReaderSize(r, 1<<16),
			offset: 8,
			size:   size,
			dec:    payloadDecoder{version: version},
		}
		buf := new(frameBuf)
		next = func() frameMsg { return dec.next(buf) }
		release = func(*frameBuf) {}
	}

	info := &SalvageInfo{Truncated: true}
	sym := event.NewSymtab()
	var replayed uint64
	offset := int64(8) // consumed through the last fully-valid frame
	var declared uint64
	sawEnd := false

	corrupt := func(format string, args ...any) (*event.Symtab, uint64, *SalvageInfo, error) {
		if opts.Stats != nil {
			opts.Stats.Events = replayed
		}
		if salvage {
			info.EventsRecovered = replayed
			info.BytesDropped = uint64(size - offset)
			return sym, replayed, info, nil
		}
		return sym, replayed, nil, fmt.Errorf("%w: "+format, append([]any{ErrCorrupt}, args...)...)
	}

	for !sawEnd {
		msg := next()
		offset = msg.end
		if msg.err != nil {
			return corrupt("%s", msg.err)
		}
		switch msg.kind {
		case frameEvents:
			event.EmitAll(sink, msg.events)
			replayed += uint64(len(msg.events))
			if st := opts.Stats; st != nil {
				st.EventFrames++
				st.StoredEventBytes += uint64(msg.stored)
				st.RawEventBytes += uint64(msg.raw)
				if msg.compressed {
					st.CompressedFrames++
				}
			}
		case frameSymtab:
			sym = msg.sym
		case frameEnd:
			declared = msg.declared
			sawEnd = true
		}
		release(msg.buf)
	}
	if opts.Stats != nil {
		opts.Stats.Events = replayed
	}
	if declared != replayed {
		return corrupt("end frame declares %d events, replayed %d", declared, replayed)
	}
	if offset != size {
		// Bytes after a valid end frame: a concatenation accident or
		// scribbling. The prefix through the end frame is intact.
		if salvage {
			info.Truncated = false
			info.EventsRecovered = replayed
			info.BytesDropped = uint64(size - offset)
			return sym, replayed, info, nil
		}
		return sym, replayed, nil, fmt.Errorf("%w: %d trailing bytes after end frame", ErrCorrupt, size-offset)
	}
	info.Truncated = false
	info.EventsRecovered = replayed
	return sym, replayed, info, nil
}

// replayV1 reads the legacy trailer-based format. Strict mode is the
// original seed behaviour. Salvage mode falls back to a prefix scan
// when the trailer is unusable: with no framing or checksums in v1,
// every complete 37-byte record after the header is reinterpreted as
// an event and the symbol table is lost.
func replayV1(r io.ReadSeeker, sink event.Sink, size int64, salvage bool, opts ReadOptions) (*event.Symtab, uint64, *SalvageInfo, error) {
	v1Stats := func(n uint64) {
		if opts.Stats != nil {
			opts.Stats.Events = n
			opts.Stats.StoredEventBytes = n * recordSize
			opts.Stats.RawEventBytes = n * recordSize
		}
	}
	sym, nEvents, symStart, err := readV1Trailer(r, size)
	if err != nil {
		if !salvage {
			return nil, 0, nil, err
		}
		s, n, info, err := salvageV1Prefix(r, sink, size)
		v1Stats(n)
		return s, n, info, err
	}
	// Replay events.
	if _, err := r.Seek(8, io.SeekStart); err != nil {
		return nil, 0, nil, err
	}
	er := bufio.NewReaderSize(io.LimitReader(r, int64(nEvents)*recordSize), 1<<16)
	var rec [recordSize]byte
	for i := uint64(0); i < nEvents; i++ {
		if _, err := io.ReadFull(er, rec[:]); err != nil {
			v1Stats(i)
			if salvage {
				return sym, i, &SalvageInfo{
					EventsRecovered: i,
					BytesDropped:    uint64(symStart - 8 - int64(i)*recordSize),
					Truncated:       true,
				}, nil
			}
			return sym, i, nil, fmt.Errorf("%w: truncated events", ErrCorrupt)
		}
		sink.Emit(decodeRecord(rec[:]))
	}
	v1Stats(nEvents)
	return sym, nEvents, &SalvageInfo{EventsRecovered: nEvents}, nil
}

// readV1Trailer locates and validates the v1 trailer, returning the
// symbol table, the declared event count, and the symtab start offset.
func readV1Trailer(r io.ReadSeeker, size int64) (*event.Symtab, uint64, int64, error) {
	end := size - 20
	if end < 8 {
		return nil, 0, 0, fmt.Errorf("%w: missing trailer", ErrCorrupt)
	}
	if _, err := r.Seek(end, io.SeekStart); err != nil {
		return nil, 0, 0, fmt.Errorf("%w: missing trailer", ErrCorrupt)
	}
	var tail [20]byte
	if _, err := io.ReadFull(r, tail[:]); err != nil {
		return nil, 0, 0, fmt.Errorf("%w: short trailer", ErrCorrupt)
	}
	if [4]byte(tail[16:]) != trailerMagic {
		return nil, 0, 0, fmt.Errorf("%w: bad trailer magic", ErrCorrupt)
	}
	symLen := binary.LittleEndian.Uint64(tail[0:])
	nEvents := binary.LittleEndian.Uint64(tail[8:])
	if symLen > uint64(end) {
		return nil, 0, 0, fmt.Errorf("%w: implausible symtab length", ErrCorrupt)
	}
	symStart := end - int64(symLen)
	if symStart < 8 {
		return nil, 0, 0, fmt.Errorf("%w: implausible symtab length", ErrCorrupt)
	}
	if nEvents > uint64(symStart-8)/recordSize {
		return nil, 0, 0, fmt.Errorf("%w: implausible event count", ErrCorrupt)
	}
	if int64(8)+int64(nEvents)*recordSize != symStart {
		return nil, 0, 0, fmt.Errorf("%w: event region size mismatch", ErrCorrupt)
	}
	// Read symbol table.
	if _, err := r.Seek(symStart, io.SeekStart); err != nil {
		return nil, 0, 0, err
	}
	payload := make([]byte, symLen)
	if _, err := io.ReadFull(r, payload); err != nil {
		return nil, 0, 0, fmt.Errorf("%w: short symtab", ErrCorrupt)
	}
	sym, err := decodeSymtab(payload)
	if err != nil {
		return nil, 0, 0, err
	}
	return sym, nEvents, symStart, nil
}

// salvageV1Prefix recovers what it can from a v1 trace whose trailer
// is gone: every complete record after the header.
func salvageV1Prefix(r io.ReadSeeker, sink event.Sink, size int64) (*event.Symtab, uint64, *SalvageInfo, error) {
	if _, err := r.Seek(8, io.SeekStart); err != nil {
		return nil, 0, nil, err
	}
	body := size - 8
	n := uint64(body / recordSize)
	er := bufio.NewReaderSize(io.LimitReader(r, int64(n)*recordSize), 1<<16)
	var rec [recordSize]byte
	for i := uint64(0); i < n; i++ {
		if _, err := io.ReadFull(er, rec[:]); err != nil {
			return event.NewSymtab(), i, &SalvageInfo{
				EventsRecovered: i,
				BytesDropped:    uint64(body - int64(i)*recordSize),
				Truncated:       true,
			}, nil
		}
		sink.Emit(decodeRecord(rec[:]))
	}
	return event.NewSymtab(), n, &SalvageInfo{
		EventsRecovered: n,
		BytesDropped:    uint64(body % recordSize),
		Truncated:       true,
	}, nil
}

// WriterV1 writes the legacy v1 format; kept for compatibility tests
// and for interoperating with tools that predate v2.
type WriterV1 struct {
	w   *bufio.Writer
	n   uint64
	err error
	buf [recordSize]byte
}

// NewWriterV1 writes a v1 header and returns a legacy writer.
func NewWriterV1(w io.Writer) (*WriterV1, error) {
	bw := bufio.NewWriterSize(w, 1<<16)
	if err := writeHeader(bw, VersionV1); err != nil {
		return nil, err
	}
	return &WriterV1{w: bw}, nil
}

// Emit implements event.Sink.
func (tw *WriterV1) Emit(e event.Event) {
	if tw.err != nil {
		return
	}
	b := tw.buf[:]
	b[0] = byte(e.Type)
	binary.LittleEndian.PutUint32(b[1:], uint32(e.Fn))
	binary.LittleEndian.PutUint64(b[5:], e.Addr)
	binary.LittleEndian.PutUint64(b[13:], e.Value)
	binary.LittleEndian.PutUint64(b[21:], e.Old)
	binary.LittleEndian.PutUint64(b[29:], e.Size)
	if _, err := tw.w.Write(b); err != nil {
		tw.err = err
		return
	}
	tw.n++
}

// Events returns the number of events written so far.
func (tw *WriterV1) Events() uint64 { return tw.n }

// Close writes the symbol-table trailer and flushes. The Writer is
// unusable afterwards.
func (tw *WriterV1) Close(sym *event.Symtab) error {
	if tw.err != nil {
		return tw.err
	}
	payload := encodeSymtab(sym)
	if _, err := tw.w.Write(payload); err != nil {
		tw.err = err
		return tw.err
	}
	var tail [20]byte
	binary.LittleEndian.PutUint64(tail[0:], uint64(len(payload)))
	binary.LittleEndian.PutUint64(tail[8:], tw.n)
	copy(tail[16:], trailerMagic[:])
	if _, err := tw.w.Write(tail[:]); err != nil {
		tw.err = err
		return tw.err
	}
	tw.err = tw.w.Flush()
	return tw.err
}
