// Package trace records and replays instrumentation event streams,
// enabling HeapMD's second usage mode (paper Section 2): post-mortem
// analysis, where the program's execution trace is captured online and
// compared against the model offline. Offline analysis can use whole-
// trace information and avoids perturbing the monitored program beyond
// the cost of logging.
//
// Format (all integers little-endian):
//
//	header:  magic "HMDT" | version u32
//	events:  n records of 37 bytes each:
//	         type u8 | fn u32 | addr u64 | value u64 | old u64 | size u64
//	trailer: symtab (count u32, then count length-prefixed names)
//	         | symtabLen u64 | eventCount u64 | magic "TDMH"
//
// The symbol table is written as a trailer because it is only complete
// once the run finishes interning function names; Replay locates it by
// seeking to the end.
package trace

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"

	"heapmd/internal/event"
)

var (
	headerMagic  = [4]byte{'H', 'M', 'D', 'T'}
	trailerMagic = [4]byte{'T', 'D', 'M', 'H'}
)

// Version is the trace format version.
const Version uint32 = 1

const recordSize = 1 + 4 + 8 + 8 + 8 + 8

// ErrCorrupt indicates a malformed trace file.
var ErrCorrupt = errors.New("trace: corrupt trace")

// Writer streams events to an underlying writer. It implements
// event.Sink; I/O errors are sticky and surfaced by Close.
type Writer struct {
	w   *bufio.Writer
	n   uint64
	err error
	buf [recordSize]byte
}

// NewWriter writes the header and returns a Writer.
func NewWriter(w io.Writer) (*Writer, error) {
	bw := bufio.NewWriterSize(w, 1<<16)
	if _, err := bw.Write(headerMagic[:]); err != nil {
		return nil, err
	}
	var v [4]byte
	binary.LittleEndian.PutUint32(v[:], Version)
	if _, err := bw.Write(v[:]); err != nil {
		return nil, err
	}
	return &Writer{w: bw}, nil
}

// Emit implements event.Sink.
func (tw *Writer) Emit(e event.Event) {
	if tw.err != nil {
		return
	}
	b := tw.buf[:]
	b[0] = byte(e.Type)
	binary.LittleEndian.PutUint32(b[1:], uint32(e.Fn))
	binary.LittleEndian.PutUint64(b[5:], e.Addr)
	binary.LittleEndian.PutUint64(b[13:], e.Value)
	binary.LittleEndian.PutUint64(b[21:], e.Old)
	binary.LittleEndian.PutUint64(b[29:], e.Size)
	if _, err := tw.w.Write(b); err != nil {
		tw.err = err
		return
	}
	tw.n++
}

// Events returns the number of events written so far.
func (tw *Writer) Events() uint64 { return tw.n }

// Close writes the symbol-table trailer and flushes. The Writer is
// unusable afterwards.
func (tw *Writer) Close(sym *event.Symtab) error {
	if tw.err != nil {
		return tw.err
	}
	var symLen uint64
	writeU32 := func(x uint32) {
		var b [4]byte
		binary.LittleEndian.PutUint32(b[:], x)
		if tw.err == nil {
			if _, err := tw.w.Write(b[:]); err != nil {
				tw.err = err
			}
		}
		symLen += 4
	}
	count := uint32(0)
	if sym != nil {
		count = uint32(sym.Len())
	}
	writeU32(count)
	for id := event.FnID(1); id <= event.FnID(count); id++ {
		name := sym.Name(id)
		writeU32(uint32(len(name)))
		if tw.err == nil {
			if _, err := tw.w.WriteString(name); err != nil {
				tw.err = err
			}
		}
		symLen += uint64(len(name))
	}
	var tail [20]byte
	binary.LittleEndian.PutUint64(tail[0:], symLen)
	binary.LittleEndian.PutUint64(tail[8:], tw.n)
	copy(tail[16:], trailerMagic[:])
	if tw.err == nil {
		if _, err := tw.w.Write(tail[:]); err != nil {
			tw.err = err
		}
	}
	if tw.err == nil {
		tw.err = tw.w.Flush()
	}
	return tw.err
}

// Replay reads a trace and delivers every event to sink in order. It
// returns the reconstructed symbol table and the number of events
// replayed.
func Replay(r io.ReadSeeker, sink event.Sink) (*event.Symtab, uint64, error) {
	// Validate header.
	var hdr [8]byte
	if _, err := r.Seek(0, io.SeekStart); err != nil {
		return nil, 0, err
	}
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return nil, 0, fmt.Errorf("%w: short header", ErrCorrupt)
	}
	if [4]byte(hdr[:4]) != headerMagic {
		return nil, 0, fmt.Errorf("%w: bad magic", ErrCorrupt)
	}
	if v := binary.LittleEndian.Uint32(hdr[4:]); v != Version {
		return nil, 0, fmt.Errorf("trace: unsupported version %d", v)
	}
	// Locate and validate trailer.
	end, err := r.Seek(-20, io.SeekEnd)
	if err != nil {
		return nil, 0, fmt.Errorf("%w: missing trailer", ErrCorrupt)
	}
	var tail [20]byte
	if _, err := io.ReadFull(r, tail[:]); err != nil {
		return nil, 0, fmt.Errorf("%w: short trailer", ErrCorrupt)
	}
	if [4]byte(tail[16:]) != trailerMagic {
		return nil, 0, fmt.Errorf("%w: bad trailer magic", ErrCorrupt)
	}
	symLen := binary.LittleEndian.Uint64(tail[0:])
	nEvents := binary.LittleEndian.Uint64(tail[8:])
	symStart := end - int64(symLen)
	if symStart < 8 {
		return nil, 0, fmt.Errorf("%w: implausible symtab length", ErrCorrupt)
	}
	// Read symbol table.
	if _, err := r.Seek(symStart, io.SeekStart); err != nil {
		return nil, 0, err
	}
	sr := bufio.NewReader(io.LimitReader(r, int64(symLen)))
	readU32 := func() (uint32, error) {
		var b [4]byte
		if _, err := io.ReadFull(sr, b[:]); err != nil {
			return 0, err
		}
		return binary.LittleEndian.Uint32(b[:]), nil
	}
	count, err := readU32()
	if err != nil {
		return nil, 0, fmt.Errorf("%w: symtab count", ErrCorrupt)
	}
	sym := event.NewSymtab()
	for i := uint32(0); i < count; i++ {
		n, err := readU32()
		if err != nil {
			return nil, 0, fmt.Errorf("%w: symtab entry", ErrCorrupt)
		}
		name := make([]byte, n)
		if _, err := io.ReadFull(sr, name); err != nil {
			return nil, 0, fmt.Errorf("%w: symtab name", ErrCorrupt)
		}
		sym.Intern(string(name))
	}
	// Replay events.
	expected := int64(8) + int64(nEvents)*recordSize
	if expected != symStart {
		return nil, 0, fmt.Errorf("%w: event region size mismatch", ErrCorrupt)
	}
	if _, err := r.Seek(8, io.SeekStart); err != nil {
		return nil, 0, err
	}
	er := bufio.NewReaderSize(io.LimitReader(r, int64(nEvents)*recordSize), 1<<16)
	var rec [recordSize]byte
	for i := uint64(0); i < nEvents; i++ {
		if _, err := io.ReadFull(er, rec[:]); err != nil {
			return nil, i, fmt.Errorf("%w: truncated events", ErrCorrupt)
		}
		sink.Emit(event.Event{
			Type:  event.Type(rec[0]),
			Fn:    event.FnID(binary.LittleEndian.Uint32(rec[1:])),
			Addr:  binary.LittleEndian.Uint64(rec[5:]),
			Value: binary.LittleEndian.Uint64(rec[13:]),
			Old:   binary.LittleEndian.Uint64(rec[21:]),
			Size:  binary.LittleEndian.Uint64(rec[29:]),
		})
	}
	return sym, nEvents, nil
}
