package trace

import (
	"bytes"
	"encoding/binary"
	"errors"
	"testing"

	"heapmd/internal/event"
)

// collect replays/salvages data into a slice of events.
func collectSink(dst *[]event.Event) event.Sink {
	return event.SinkFunc(func(e event.Event) { *dst = append(*dst, e) })
}

// writeV2 builds a v2 trace from evs with sym attached, flushing
// after every flushEvery events (0 = never).
func writeV2(t *testing.T, evs []event.Event, sym *event.Symtab, flushEvery int) []byte {
	t.Helper()
	var buf bytes.Buffer
	w, err := NewWriter(&buf)
	if err != nil {
		t.Fatal(err)
	}
	w.SetSymtab(sym)
	for i, e := range evs {
		w.Emit(e)
		if flushEvery > 0 && (i+1)%flushEvery == 0 {
			if err := w.Flush(); err != nil {
				t.Fatal(err)
			}
		}
	}
	if err := w.Close(sym); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

type boundary struct {
	offset int
	events uint64
}

// frameBoundaries walks a well-formed v2 trace and returns, for each
// frame end, the byte offset and the cumulative event count durable
// there — the ground truth a salvage of any prefix must reproduce.
func frameBoundaries(t *testing.T, data []byte) []boundary {
	t.Helper()
	var bounds []boundary
	off := 8
	var events uint64
	for off < len(data) {
		if off+frameHeaderSize > len(data) {
			t.Fatalf("ragged frame header at %d", off)
		}
		kind := data[off]
		payloadLen := int(binary.LittleEndian.Uint32(data[off+1:]))
		if kind == frameEvents {
			events += uint64(payloadLen / recordSize)
		}
		off += frameHeaderSize + payloadLen
		bounds = append(bounds, boundary{offset: off, events: events})
	}
	return bounds
}

func testEvents(n int) []event.Event {
	evs := make([]event.Event, n)
	for i := range evs {
		evs[i] = event.Event{
			Type:  event.Type(i % int(event.NumTypes)),
			Fn:    event.FnID(i%3 + 1),
			Addr:  uint64(0x1000 + i*8),
			Value: uint64(i),
			Old:   uint64(i / 2),
			Size:  uint64(16 + i%32),
		}
	}
	return evs
}

func TestV2CleanSalvageIsLossless(t *testing.T) {
	sym := event.NewSymtab()
	sym.Intern("alpha")
	sym.Intern("beta")
	evs := testEvents(100)
	data := writeV2(t, evs, sym, 7)

	var got []event.Event
	gotSym, info, err := Salvage(bytes.NewReader(data), collectSink(&got))
	if err != nil {
		t.Fatal(err)
	}
	if info.Salvaged() {
		t.Errorf("clean trace reported salvage: %v", info)
	}
	if info.EventsRecovered != uint64(len(evs)) || len(got) != len(evs) {
		t.Fatalf("recovered %d events, want %d", info.EventsRecovered, len(evs))
	}
	for i := range evs {
		if got[i] != evs[i] {
			t.Fatalf("event %d = %+v, want %+v", i, got[i], evs[i])
		}
	}
	if gotSym.Len() != 2 {
		t.Errorf("symtab len = %d, want 2", gotSym.Len())
	}
}

// TestV2TruncationAtEveryOffset is the crash-safety acceptance test:
// a v2 trace cut at ANY byte offset past the header must salvage
// without panicking, recovering exactly the events of every complete
// frame before the cut.
func TestV2TruncationAtEveryOffset(t *testing.T) {
	sym := event.NewSymtab()
	sym.Intern("fn")
	evs := testEvents(60)
	data := writeV2(t, evs, sym, 5)
	bounds := frameBoundaries(t, data)

	expectAt := func(cut int) (uint64, int) {
		best := boundary{offset: 8}
		for _, b := range bounds {
			if b.offset <= cut && b.offset > best.offset {
				best = b
			}
		}
		return best.events, best.offset
	}
	for cut := 8; cut < len(data); cut++ {
		var got []event.Event
		_, info, err := Salvage(bytes.NewReader(data[:cut]), collectSink(&got))
		if err != nil {
			t.Fatalf("cut=%d: salvage failed: %v", cut, err)
		}
		wantEvents, wantOffset := expectAt(cut)
		if info.EventsRecovered != wantEvents || uint64(len(got)) != wantEvents {
			t.Fatalf("cut=%d: recovered %d events, want %d", cut, info.EventsRecovered, wantEvents)
		}
		if !info.Truncated {
			t.Fatalf("cut=%d: truncation not reported", cut)
		}
		if info.BytesDropped != uint64(cut-wantOffset) {
			t.Fatalf("cut=%d: dropped %d bytes, want %d", cut, info.BytesDropped, cut-wantOffset)
		}
		for i := range got {
			if got[i] != evs[i] {
				t.Fatalf("cut=%d: event %d corrupted in salvage", cut, i)
			}
		}
		// Strict replay of the same cut must refuse.
		if _, _, err := Replay(bytes.NewReader(data[:cut]), event.SinkFunc(func(event.Event) {})); !errors.Is(err, ErrCorrupt) {
			t.Fatalf("cut=%d: strict replay err = %v, want ErrCorrupt", cut, err)
		}
	}
}

// TestV2BitFlipDetected flips every byte of a v2 trace body in turn;
// strict replay must reject each mutant and salvage must never panic.
func TestV2BitFlipDetected(t *testing.T) {
	evs := testEvents(20)
	data := writeV2(t, evs, nil, 6)
	devNull := event.SinkFunc(func(event.Event) {})
	for i := 8; i < len(data); i++ {
		mut := bytes.Clone(data)
		mut[i] ^= 0x40
		if _, _, err := Replay(bytes.NewReader(mut), devNull); err == nil {
			t.Fatalf("flip at %d: strict replay accepted a corrupted trace", i)
		}
		if _, _, err := Salvage(bytes.NewReader(mut), devNull); err != nil {
			t.Fatalf("flip at %d: salvage errored: %v", i, err)
		}
	}
}

func TestV2SymtabCheckpointSurvivesCrash(t *testing.T) {
	sym := event.NewSymtab()
	sym.Intern("durable")
	var buf bytes.Buffer
	w, err := NewWriter(&buf)
	if err != nil {
		t.Fatal(err)
	}
	w.SetSymtab(sym)
	// Enough events to force DefaultCheckpointFrames event frames and
	// therefore at least one symtab checkpoint.
	n := DefaultBatchRecords * DefaultCheckpointFrames
	for i := 0; i < n; i++ {
		w.Emit(event.Event{Type: event.Enter, Fn: 1})
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	// Crash: no Close. The trailer-based v1 format would lose every
	// symbol here.
	var c event.Counter
	gotSym, info, err := Salvage(bytes.NewReader(buf.Bytes()), &c)
	if err != nil {
		t.Fatal(err)
	}
	if !info.Truncated {
		t.Error("crashed trace not reported truncated")
	}
	if info.EventsRecovered != uint64(n) || c.Total != uint64(n) {
		t.Errorf("recovered %d events, want %d", info.EventsRecovered, n)
	}
	if gotSym.Len() != 1 || gotSym.Name(1) != "durable" {
		t.Errorf("symtab checkpoint lost: len=%d", gotSym.Len())
	}
}

func TestV2TrailingGarbage(t *testing.T) {
	evs := testEvents(10)
	data := writeV2(t, evs, nil, 0)
	data = append(data, []byte("garbage after a clean end frame")...)
	devNull := event.SinkFunc(func(event.Event) {})
	if _, _, err := Replay(bytes.NewReader(data), devNull); !errors.Is(err, ErrCorrupt) {
		t.Errorf("strict replay of trailing garbage: err = %v, want ErrCorrupt", err)
	}
	var got []event.Event
	_, info, err := Salvage(bytes.NewReader(data), collectSink(&got))
	if err != nil {
		t.Fatal(err)
	}
	if info.Truncated {
		t.Error("trailing garbage misreported as truncation")
	}
	if len(got) != len(evs) || info.BytesDropped == 0 {
		t.Errorf("salvage: %d events, info=%v", len(got), info)
	}
}

func TestV1RoundTripCompat(t *testing.T) {
	var buf bytes.Buffer
	w, err := NewWriterV1(&buf)
	if err != nil {
		t.Fatal(err)
	}
	sym := event.NewSymtab()
	f1 := sym.Intern("legacy")
	evs := testEvents(50)
	for _, e := range evs {
		w.Emit(e)
	}
	if err := w.Close(sym); err != nil {
		t.Fatal(err)
	}
	var got []event.Event
	gotSym, n, err := Replay(bytes.NewReader(buf.Bytes()), collectSink(&got))
	if err != nil {
		t.Fatal(err)
	}
	if n != uint64(len(evs)) {
		t.Fatalf("replayed %d events, want %d", n, len(evs))
	}
	for i := range evs {
		if got[i] != evs[i] {
			t.Fatalf("event %d did not round-trip through v1", i)
		}
	}
	if gotSym.Name(f1) != "legacy" {
		t.Error("v1 symtab did not round-trip")
	}
	// Salvage of a clean v1 trace is also lossless.
	var got2 []event.Event
	_, info, err := Salvage(bytes.NewReader(buf.Bytes()), collectSink(&got2))
	if err != nil {
		t.Fatal(err)
	}
	if info.Salvaged() || len(got2) != len(evs) {
		t.Errorf("clean v1 salvage: %d events, info=%v", len(got2), info)
	}
}

// TestV1TruncatedSalvage exercises the motivating failure: a v1 trace
// whose writer died before Close, losing the symtab trailer. Strict
// replay fails wholesale; salvage reinterprets every complete record.
func TestV1TruncatedSalvage(t *testing.T) {
	var buf bytes.Buffer
	w, err := NewWriterV1(&buf)
	if err != nil {
		t.Fatal(err)
	}
	evs := testEvents(30)
	for _, e := range evs {
		w.Emit(e)
	}
	if err := w.Close(nil); err != nil {
		t.Fatal(err)
	}
	// Simulate the crash: cut mid-record, before the trailer was
	// durable.
	data := buf.Bytes()[:8+len(evs)*recordSize-5]

	devNull := event.SinkFunc(func(event.Event) {})
	if _, _, err := Replay(bytes.NewReader(data), devNull); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("strict replay of truncated v1: err = %v, want ErrCorrupt", err)
	}
	var got []event.Event
	sym, info, err := Salvage(bytes.NewReader(data), collectSink(&got))
	if err != nil {
		t.Fatal(err)
	}
	if !info.Truncated {
		t.Error("truncated v1 not reported truncated")
	}
	if want := len(evs) - 1; len(got) != want {
		t.Fatalf("salvaged %d events, want %d", len(got), want)
	}
	for i := range got {
		if got[i] != evs[i] {
			t.Fatalf("event %d corrupted in v1 salvage", i)
		}
	}
	if sym.Len() != 0 {
		t.Error("v1 salvage cannot recover symbols, yet symtab is nonempty")
	}
	if info.BytesDropped != recordSize-5 {
		t.Errorf("BytesDropped = %d, want %d", info.BytesDropped, recordSize-5)
	}
}

func TestSalvageHeaderGarbage(t *testing.T) {
	for _, data := range [][]byte{nil, []byte("HM"), []byte("XXXXYYYY and then some")} {
		if _, _, err := Salvage(bytes.NewReader(data), event.SinkFunc(func(event.Event) {})); !errors.Is(err, ErrCorrupt) {
			t.Errorf("Salvage(%q) err = %v, want ErrCorrupt", data, err)
		}
	}
	// Unknown version is an explicit error, not a salvage case.
	bad := append([]byte("HMDT"), 9, 0, 0, 0)
	if _, _, err := Salvage(bytes.NewReader(bad), event.SinkFunc(func(event.Event) {})); err == nil {
		t.Error("unknown version accepted by salvage")
	}
}

func TestWriterFlushEstablishesSalvagePoint(t *testing.T) {
	var buf bytes.Buffer
	w, err := NewWriter(&buf)
	if err != nil {
		t.Fatal(err)
	}
	w.Emit(event.Event{Type: event.Alloc, Addr: 0x10, Size: 8})
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	durable := buf.Len()
	w.Emit(event.Event{Type: event.Free, Addr: 0x10, Size: 8})
	// Second event never flushed: only the first survives the crash.
	var got []event.Event
	_, info, err := Salvage(bytes.NewReader(buf.Bytes()[:durable]), collectSink(&got))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 || info.EventsRecovered != 1 {
		t.Errorf("salvaged %d events, want 1", len(got))
	}
}
